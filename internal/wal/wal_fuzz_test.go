package wal

import (
	"bytes"
	"testing"
)

// FuzzReader asserts the frame scanner is total over arbitrary bytes:
// it never panics, every returned frame re-encodes to the bytes it was
// read from, and the scan always terminates with either a clean end or
// ErrCorrupt at a valid-prefix offset.
func FuzzReader(f *testing.F) {
	var valid []byte
	valid = AppendFrame(valid, 1, []byte("seed frame one"))
	valid = AppendFrame(valid, 9, nil)
	valid = AppendFrame(valid, 2, bytes.Repeat([]byte{0x5a}, 300))
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x49}, 40)) // runs of the magic's first byte
	flipped := append([]byte(nil), valid...)
	flipped[HeaderSize+2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		prev := 0
		for {
			kind, payload, ok := r.Next()
			if !ok {
				break
			}
			// Each accepted frame must re-encode byte-identically to the
			// region it was scanned from.
			reenc := AppendFrame(nil, kind, payload)
			if !bytes.Equal(reenc, data[prev:r.Offset()]) {
				t.Fatalf("frame at %d does not round-trip", prev)
			}
			if r.Offset() <= prev {
				t.Fatal("scanner did not advance")
			}
			prev = r.Offset()
		}
		if err := r.Err(); err == nil {
			if r.Offset() != len(data) {
				t.Fatalf("clean end at offset %d of %d bytes", r.Offset(), len(data))
			}
		} else if r.Offset() > len(data) {
			t.Fatalf("corruption offset %d beyond input", r.Offset())
		}
	})
}
