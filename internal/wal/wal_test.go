package wal

import (
	"bytes"
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf []byte
	frames := []struct {
		kind    byte
		payload []byte
	}{
		{1, []byte("hello")},
		{2, nil},
		{7, bytes.Repeat([]byte{0xab}, 5000)},
		{1, []byte("tail")},
	}
	for _, f := range frames {
		buf = AppendFrame(buf, f.kind, f.payload)
	}
	r := NewReader(buf)
	for i, f := range frames {
		kind, payload, ok := r.Next()
		if !ok {
			t.Fatalf("frame %d: scan stopped early: %v", i, r.Err())
		}
		if kind != f.kind || !bytes.Equal(payload, f.payload) {
			t.Fatalf("frame %d: got kind=%d len=%d", i, kind, len(payload))
		}
	}
	if _, _, ok := r.Next(); ok {
		t.Fatal("scan returned a frame past the end")
	}
	if r.Err() != nil {
		t.Fatalf("clean end reported error: %v", r.Err())
	}
	if r.Offset() != len(buf) {
		t.Fatalf("offset %d after clean scan of %d bytes", r.Offset(), len(buf))
	}
}

func TestTornFrameStopsScan(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, 1, []byte("first"))
	valid := len(buf)
	buf = AppendFrame(buf, 1, []byte("second record, torn"))
	buf = buf[:valid+7] // partial header+payload of the second frame

	r := NewReader(buf)
	if _, _, ok := r.Next(); !ok {
		t.Fatalf("first frame should read cleanly: %v", r.Err())
	}
	if _, _, ok := r.Next(); ok {
		t.Fatal("torn frame returned as valid")
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", r.Err())
	}
	if r.Offset() != valid {
		t.Fatalf("corruption offset %d, want %d (the valid prefix length)", r.Offset(), valid)
	}
}

func TestBitFlipFailsChecksum(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, 3, []byte("payload under test"))
	buf[HeaderSize+4] ^= 0x10
	r := NewReader(buf)
	if _, _, ok := r.Next(); ok {
		t.Fatal("bit-flipped frame passed validation")
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", r.Err())
	}
}

func TestHasFrameAfter(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, 1, []byte("aaaa"))
	mid := len(buf)
	buf = AppendFrame(buf, 1, []byte("bbbb"))
	// Corrupt the first frame: a valid frame follows, so this is
	// mid-log corruption.
	buf[HeaderSize] ^= 0xff
	if !HasFrameAfter(buf, 0) {
		t.Fatal("resync scan missed the valid second frame")
	}
	// Corrupt the second frame too: nothing valid follows it.
	buf[mid+HeaderSize] ^= 0xff
	if HasFrameAfter(buf, mid) {
		t.Fatal("resync scan found a frame in fully corrupt tail")
	}
}

func TestDevicePowerFail(t *testing.T) {
	d := NewDevice()
	d.Append(AppendFrame(nil, 1, []byte("synced")))
	d.Sync()
	syncedLen := d.Size()
	d.Append(AppendFrame(nil, 1, []byte("unsynced, lost on power fail")))

	d.PowerFail(3) // three torn bytes of the unsynced frame survive
	if got := d.Size(); got != syncedLen+3 {
		t.Fatalf("device holds %d bytes after power fail, want %d", got, syncedLen+3)
	}
	r := NewReader(d.Bytes())
	kind, payload, ok := r.Next()
	if !ok || kind != 1 || string(payload) != "synced" {
		t.Fatalf("synced frame did not survive: ok=%v err=%v", ok, r.Err())
	}
	if _, _, ok := r.Next(); ok {
		t.Fatal("torn tail read as a valid frame")
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on torn tail, got %v", r.Err())
	}
	// Truncating at the valid prefix and appending more must yield a
	// clean log again.
	d.TruncateTo(r.Offset())
	d.Append(AppendFrame(nil, 2, []byte("after recovery")))
	d.Sync()
	r = NewReader(d.Bytes())
	n := 0
	for {
		if _, _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 || r.Err() != nil {
		t.Fatalf("post-recovery log has %d frames, err=%v", n, r.Err())
	}
}

func TestDeviceStats(t *testing.T) {
	d := NewDevice()
	d.Append(AppendFrame(nil, 1, []byte("x")))
	d.Append(AppendFrame(nil, 1, []byte("y")))
	d.Sync()
	bytes_, appends, flushes := d.Stats()
	if appends != 2 || flushes != 1 || bytes_ != uint64(d.Size()) {
		t.Fatalf("stats = (%d, %d, %d)", bytes_, appends, flushes)
	}
}
