// Package wal provides the checksummed, length-prefixed write-ahead-log
// framing shared by the durable shared log (internal/sharedlog) and the
// checkpoint store (internal/kvstore), plus an in-memory Device that
// models a disk with explicit sync semantics and injectable storage
// faults (power failures, torn writes, bit flips).
//
// Frame layout (little-endian):
//
//	u32 magic | u32 payloadLen | u32 crc32c(kind ‖ payload) | u8 kind | payload
//
// The CRC is Castagnoli (CRC32C), the polynomial storage systems use
// for end-to-end integrity. A reader that encounters a frame whose
// magic, length, or checksum does not hold stops and reports the byte
// offset of the first bad frame: everything before it is a verified
// prefix of what was written, which is exactly the invariant
// truncate-at-corruption recovery needs.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// Magic marks the start of every frame ("IWAL").
const Magic uint32 = 0x4C415749

// HeaderSize is the fixed per-frame overhead: magic, payload length,
// CRC32C, and the kind byte.
const HeaderSize = 4 + 4 + 4 + 1

// MaxFrame bounds a single frame's payload (64 MiB): a length field
// larger than this is corruption, not a huge record, so the reader can
// reject it before allocating.
const MaxFrame = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of kind ‖ payload, the value stored in
// the frame header.
func Checksum(kind byte, payload []byte) uint32 {
	crc := crc32.Update(0, crcTable, []byte{kind})
	return crc32.Update(crc, crcTable, payload)
}

// AppendFrame appends one encoded frame to buf and returns the extended
// slice.
func AppendFrame(buf []byte, kind byte, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, Magic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, Checksum(kind, payload))
	buf = append(buf, kind)
	return append(buf, payload...)
}

// ErrCorrupt reports a frame that failed validation. It is the sentinel
// recovery code branches on; the wrapped message carries the offset and
// cause.
var ErrCorrupt = errors.New("wal: corrupt frame")

// Reader iterates over the frames of a WAL byte image. It is a
// prefix-validating scanner: Next returns frames until the clean end of
// the log (ok=false, Err()==nil) or the first invalid frame (ok=false,
// Err() wraps ErrCorrupt and Offset() locates it).
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf. The Reader aliases buf; returned
// payloads alias it too and must not be modified.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Offset reports the byte offset of the next unread frame — after a
// corruption error, the offset of the first bad frame, i.e. the length
// of the valid prefix.
func (r *Reader) Offset() int { return r.off }

// Err returns the corruption error that stopped the scan, or nil at a
// clean end of log.
func (r *Reader) Err() error { return r.err }

// Next returns the next frame. ok=false means the scan is over: a clean
// end (Err()==nil) or corruption (Err()!=nil).
func (r *Reader) Next() (kind byte, payload []byte, ok bool) {
	if r.err != nil || r.off >= len(r.buf) {
		return 0, nil, false
	}
	rest := r.buf[r.off:]
	if len(rest) < HeaderSize {
		r.err = fmt.Errorf("%w: truncated header at offset %d", ErrCorrupt, r.off)
		return 0, nil, false
	}
	if m := binary.LittleEndian.Uint32(rest); m != Magic {
		r.err = fmt.Errorf("%w: bad magic %#x at offset %d", ErrCorrupt, m, r.off)
		return 0, nil, false
	}
	n := binary.LittleEndian.Uint32(rest[4:])
	if n > MaxFrame {
		r.err = fmt.Errorf("%w: frame length %d exceeds limit at offset %d", ErrCorrupt, n, r.off)
		return 0, nil, false
	}
	if len(rest) < HeaderSize+int(n) {
		r.err = fmt.Errorf("%w: torn frame at offset %d (%d of %d payload bytes)",
			ErrCorrupt, r.off, len(rest)-HeaderSize, n)
		return 0, nil, false
	}
	want := binary.LittleEndian.Uint32(rest[8:])
	kind = rest[12]
	payload = rest[HeaderSize : HeaderSize+int(n)]
	if got := Checksum(kind, payload); got != want {
		r.err = fmt.Errorf("%w: checksum mismatch at offset %d (stored %#x, computed %#x)",
			ErrCorrupt, r.off, want, got)
		return 0, nil, false
	}
	r.off += HeaderSize + int(n)
	return kind, payload, true
}

// HasFrameAfter scans buf from offset for a well-formed frame starting
// at any later byte (magic resync). Recovery uses it to distinguish
// tail corruption (nothing valid follows — truncate and continue) from
// mid-log corruption (valid frames follow the bad one — data in the
// middle of the committed prefix was destroyed, which truncation cannot
// mask, so the caller should fail loudly).
func HasFrameAfter(buf []byte, offset int) bool {
	for i := offset + 1; i+HeaderSize <= len(buf); i++ {
		if binary.LittleEndian.Uint32(buf[i:]) != Magic {
			continue
		}
		n := binary.LittleEndian.Uint32(buf[i+4:])
		if n > MaxFrame || i+HeaderSize+int(n) > len(buf) {
			continue
		}
		if Checksum(buf[i+12], buf[i+HeaderSize:i+HeaderSize+int(n)]) == binary.LittleEndian.Uint32(buf[i+8:]) {
			return true
		}
	}
	return false
}

// Device is an in-memory disk with explicit sync semantics: Append
// buffers bytes, Sync makes everything appended so far survive a power
// failure. PowerFail models the crash — the unsynced suffix is lost,
// except for an optional torn prefix of it that reached the platter
// mid-write. FlipBit models silent media corruption inside the synced
// region. All methods are safe for concurrent use.
type Device struct {
	mu      sync.Mutex
	buf     []byte
	synced  int
	flushes uint64
	appends uint64
}

// NewDevice returns an empty device.
func NewDevice() *Device { return &Device{} }

// Append buffers b at the end of the device. The write is atomic with
// respect to concurrent appends (frames never interleave) but not
// durable until Sync.
func (d *Device) Append(b []byte) {
	d.mu.Lock()
	d.buf = append(d.buf, b...)
	d.appends++
	d.mu.Unlock()
}

// Sync makes everything appended so far durable across PowerFail.
func (d *Device) Sync() {
	d.mu.Lock()
	d.synced = len(d.buf)
	d.flushes++
	d.mu.Unlock()
}

// Size reports total buffered bytes; Synced the durable prefix length.
func (d *Device) Size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.buf)
}

// Synced reports the durable prefix length.
func (d *Device) Synced() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.synced
}

// Stats reports the device's write counters: bytes appended, Append
// calls, and Sync calls.
func (d *Device) Stats() (bytes uint64, appends uint64, flushes uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return uint64(len(d.buf)), d.appends, d.flushes
}

// Bytes returns a copy of the device contents (synced and unsynced).
func (d *Device) Bytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.buf...)
}

// PowerFail models a whole-machine power loss: the unsynced suffix is
// dropped, except for the first tornBytes of it — a torn write that
// reached the medium before power was lost (it will fail checksum
// validation on recovery). The synced prefix is untouched.
func (d *Device) PowerFail(tornBytes int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	keep := d.synced + tornBytes
	if keep > len(d.buf) {
		keep = len(d.buf)
	}
	d.buf = d.buf[:keep]
	if d.synced > keep {
		d.synced = keep
	}
}

// FlipBit flips one bit at the given byte offset — silent media
// corruption. Offsets outside the current contents are ignored.
func (d *Device) FlipBit(offset int, bit uint) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if offset >= 0 && offset < len(d.buf) {
		d.buf[offset] ^= 1 << (bit % 8)
	}
}

// TruncateTo discards everything at and after offset. Recovery calls it
// after validating the prefix so subsequent appends extend the valid
// log rather than burying the corrupt bytes.
func (d *Device) TruncateTo(offset int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if offset < 0 {
		offset = 0
	}
	if offset < len(d.buf) {
		d.buf = d.buf[:offset]
	}
	if d.synced > len(d.buf) {
		d.synced = len(d.buf)
	}
}
