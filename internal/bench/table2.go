package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"impeller/internal/kafkalog"
	"impeller/internal/sharedlog"
	"impeller/internal/sim"
)

// Table 2 (paper §5.2): p50/p99 latency between appending a 16 KiB
// record and consuming it from another node, for Impeller's log (Boki)
// and Kafka, at 10/50/100 appends per second, batching disabled.

// Table2Config configures the log-latency experiment.
type Table2Config struct {
	// Rates are the append rates to measure (paper: 10, 50, 100 aps).
	Rates []int
	// Duration per rate point.
	Duration time.Duration
	// RecordSize is the appended payload size (paper: 16 KiB).
	RecordSize int
	// Seed fixes the latency randomness.
	Seed uint64
}

func (c Table2Config) withDefaults() Table2Config {
	if len(c.Rates) == 0 {
		c.Rates = []int{10, 50, 100}
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.RecordSize <= 0 {
		c.RecordSize = 16 << 10
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// Table2Row is one measured rate point.
type Table2Row struct {
	Rate                     int
	BokiP50, BokiP99         time.Duration
	KafkaP50, KafkaP99       time.Duration
	SlowdownP50, SlowdownP99 float64
	// BokiLog snapshots the shared log's counters for the Boki side
	// (appends, reads, wakeups) — each record should wake its one
	// blocked consumer exactly once.
	BokiLog sharedlog.Stats
}

// RunTable2 measures both logs at every rate.
func RunTable2(cfg Table2Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	rows := make([]Table2Row, 0, len(cfg.Rates))
	for _, rate := range cfg.Rates {
		boki, bokiStats, err := measureBoki(cfg, rate)
		if err != nil {
			return nil, err
		}
		kafka, err := measureKafka(cfg, rate)
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			Rate:     rate,
			BokiP50:  boki.Percentile(50),
			BokiP99:  boki.Percentile(99),
			KafkaP50: kafka.Percentile(50),
			KafkaP99: kafka.Percentile(99),
			BokiLog:  bokiStats,
		}
		row.SlowdownP50 = float64(row.BokiP50) / float64(row.KafkaP50)
		row.SlowdownP99 = float64(row.BokiP99) / float64(row.KafkaP99)
		rows = append(rows, row)
	}
	return rows, nil
}

// measureBoki appends to the shared log and consumes via a tag read.
func measureBoki(cfg Table2Config, rate int) (*Hist, sharedlog.Stats, error) {
	r := sim.NewRand(cfg.Seed)
	log := sharedlog.Open(sharedlog.Config{
		NumShards:     4,
		Replication:   3,
		AppendLatency: sim.DefaultBokiLatency(r.Fork()),
		ReadLatency:   sim.DefaultBokiLatency(r.Fork()),
	})
	defer log.Close()

	hist := &Hist{}
	payload := make([]byte, cfg.RecordSize)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Consumer on "another node": a blocking tag read per record.
	done := make(chan struct{})
	starts := make(chan time.Time, 1024)
	go func() {
		defer close(done)
		var cursor sharedlog.LSN
		for {
			rec, err := log.ReadNextBlocking(ctx, "t2", cursor)
			if err != nil || rec == nil {
				return
			}
			cursor = rec.LSN + 1
			start, ok := <-starts
			if !ok {
				return
			}
			hist.Record(time.Since(start))
		}
	}()

	interval := time.Second / time.Duration(rate)
	deadline := time.Now().Add(cfg.Duration)
	for time.Now().Before(deadline) {
		start := time.Now()
		starts <- start
		if _, err := log.Append([]sharedlog.Tag{"t2"}, payload); err != nil {
			return nil, sharedlog.Stats{}, err
		}
		if wait := interval - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
	}
	close(starts)
	cancel()
	<-done
	return hist, log.Stats(), nil
}

// measureKafka produces to a single-partition topic and fetches it.
func measureKafka(cfg Table2Config, rate int) (*Hist, error) {
	r := sim.NewRand(cfg.Seed + 1)
	c := kafkalog.NewCluster(kafkalog.Config{
		ProduceLatency: sim.DefaultKafkaLatency(r.Fork()),
		FetchLatency:   sim.DefaultKafkaLatency(r.Fork()),
	})
	defer c.Close()
	if err := c.CreateTopic("t2", 1); err != nil {
		return nil, err
	}

	hist := &Hist{}
	payload := make([]byte, cfg.RecordSize)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan struct{})
	starts := make(chan time.Time, 1024)
	go func() {
		defer close(done)
		var off kafkalog.Offset
		for {
			m, err := c.FetchBlocking(ctx, "t2", 0, off, kafkalog.ReadUncommitted)
			if err != nil || m == nil {
				return
			}
			off = m.Offset + 1
			start, ok := <-starts
			if !ok {
				return
			}
			hist.Record(time.Since(start))
		}
	}()

	interval := time.Second / time.Duration(rate)
	deadline := time.Now().Add(cfg.Duration)
	for time.Now().Before(deadline) {
		start := time.Now()
		starts <- start
		if _, err := c.Produce("t2", 0, nil, payload); err != nil {
			return nil, err
		}
		if wait := interval - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
	}
	close(starts)
	cancel()
	<-done
	return hist, nil
}

// PrintTable2 renders rows in the paper's format.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: produce-to-consume latency, 16 KiB records")
	fmt.Fprintf(w, "%-8s | %-24s | %-24s\n", "", "Impeller's log (Boki)", "Kafka")
	fmt.Fprintf(w, "%-8s | %-11s %-11s | %-11s %-11s\n", "rate", "p50", "p99", "p50", "p99")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4d aps | (%.2fx) %-9v (%.2fx) %-9v | %-11v %-11v\n",
			r.Rate,
			r.SlowdownP50, r.BokiP50.Round(time.Microsecond),
			r.SlowdownP99, r.BokiP99.Round(time.Microsecond),
			r.KafkaP50.Round(time.Microsecond), r.KafkaP99.Round(time.Microsecond))
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-4d aps | log appends=%d reads=%d wakeups=%d useful=%d\n",
			r.Rate, r.BokiLog.Appends,
			r.BokiLog.ReadNext+r.BokiLog.ReadNextAny+r.BokiLog.ReadExact+r.BokiLog.ReadPrev,
			r.BokiLog.ReaderWakeups, r.BokiLog.UsefulWakeups)
	}
}
