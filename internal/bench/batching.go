package bench

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"impeller"
)

// Batching ablation: the same NEXMark query, same offered load, with
// the batched dataplane on (group-commit appenders at the engine
// defaults) and off (MaxRecords 1, Window 1 — every append is its own
// log operation, the dataplane as it was before group commit). The
// paper's throughput argument (§5.3) is that a task's outputs,
// change-log deltas, and markers all share one log, so amortizing the
// per-append cost moves the saturation point; this experiment measures
// exactly that movement.

// BatchingConfig configures the ablation.
type BatchingConfig struct {
	// Query selects the NEXMark query (default 1 — the append-heavy
	// stateless pipeline where the dataplane dominates).
	Query int
	// Rate is the offered load in events/s; it should sit above the
	// unbatched configuration's saturation point so the gap is visible
	// (default 32000 for Q1–Q2, 12000 otherwise).
	Rate int
	// Duration per run (default 3 s).
	Duration time.Duration
	// Parallelism and Generators override the driver defaults (2 and 4)
	// — raise both on many-core hosts so the generators do not bound the
	// measurement before the dataplane does.
	Parallelism int
	Generators  int
	// Simulate charges calibrated log/coordinator latencies; the
	// ablation is only meaningful with it on (default on in the CLI).
	Simulate bool
	// Scale scales simulated latencies.
	Scale float64
}

func (c BatchingConfig) withDefaults() BatchingConfig {
	if c.Query == 0 {
		c.Query = 1
	}
	if c.Rate == 0 {
		if c.Query <= 2 {
			c.Rate = 32000
		} else {
			c.Rate = 12000
		}
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	return c
}

// BatchingResult holds the paired runs.
type BatchingResult struct {
	Query, Rate        int
	Unbatched, Batched *RunResult
}

// Goodput is a run's received events per second of wall time.
func goodput(r *RunResult) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Received) / r.Elapsed.Seconds()
}

// Speedup is batched goodput over unbatched goodput.
func (r *BatchingResult) Speedup() float64 {
	u := goodput(r.Unbatched)
	if u == 0 {
		return 0
	}
	return goodput(r.Batched) / u
}

// RunBatchingAblation measures the same query with and without the
// batched dataplane.
func RunBatchingAblation(cfg BatchingConfig, progress io.Writer) (*BatchingResult, error) {
	cfg = cfg.withDefaults()
	base := RunConfig{
		Query:           cfg.Query,
		Protocol:        impeller.ProgressMarker,
		Rate:            cfg.Rate,
		Duration:        cfg.Duration,
		SimulateLatency: cfg.Simulate,
		LatencyScale:    cfg.Scale,
		Parallelism:     cfg.Parallelism,
		Generators:      cfg.Generators,
	}

	unb := base
	unb.BatchMaxRecords = 1
	unb.BatchWindow = 1
	unbatched, err := RunNexmark(unb)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		fmt.Fprintf(progress, "  unbatched %s\n", unbatched)
	}

	batched, err := RunNexmark(base)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		fmt.Fprintf(progress, "  batched   %s\n", batched)
	}

	return &BatchingResult{Query: cfg.Query, Rate: cfg.Rate, Unbatched: unbatched, Batched: batched}, nil
}

// PrintBatching renders the ablation.
func PrintBatching(w io.Writer, r *BatchingResult) {
	fmt.Fprintf(w, "Batching ablation: NEXMark Q%d at %d offered events/s (progress-marker protocol)\n", r.Query, r.Rate)
	fmt.Fprintf(w, "%-12s %-12s %-12s %-12s %-12s %-14s %-12s\n",
		"dataplane", "recv eps", "p50", "p99", "log appends", "append batches", "mean batch")
	for _, row := range []struct {
		name string
		res  *RunResult
	}{{"unbatched", r.Unbatched}, {"batched", r.Batched}} {
		ls := row.res.Log
		fmt.Fprintf(w, "%-12s %-12.0f %-12v %-12v %-12d %-14d %-12.1f\n",
			row.name, goodput(row.res),
			row.res.P50.Round(100*time.Microsecond), row.res.P99.Round(100*time.Microsecond),
			ls.Appends, ls.BatchAppends, ls.MeanAppendBatch)
	}
	m := r.Batched.Metrics
	fmt.Fprintf(w, "batched tasks: %d group commits carrying %d appends (%.1f/commit), %d stalls (backpressure)\n",
		m.AppendBatches, m.BatchedRecords, meanBatch(m.BatchedRecords, m.AppendBatches), m.BatchStalls)
	fmt.Fprintf(w, "goodput speedup (batched/unbatched): %.2fx\n", r.Speedup())
}

func meanBatch(records, batches uint64) float64 {
	if batches == 0 {
		return 0
	}
	return float64(records) / float64(batches)
}

// WriteBatchingCSV exports the paired runs, one row per dataplane mode.
func WriteBatchingCSV(w io.Writer, r *BatchingResult) error {
	rows := make([][]string, 0, 2)
	for _, row := range []struct {
		name string
		res  *RunResult
	}{{"unbatched", r.Unbatched}, {"batched", r.Batched}} {
		rows = append(rows, []string{
			strconv.Itoa(r.Query),
			row.name,
			strconv.Itoa(r.Rate),
			fmt.Sprintf("%.0f", goodput(row.res)),
			us(row.res.P50), us(row.res.P99),
			strconv.FormatUint(row.res.Received, 10),
			strconv.FormatUint(row.res.Log.Appends, 10),
			strconv.FormatUint(row.res.Log.BatchAppends, 10),
			fmt.Sprintf("%.2f", row.res.Log.MeanAppendBatch),
			strconv.FormatUint(row.res.Metrics.AppendBatches, 10),
			strconv.FormatUint(row.res.Metrics.BatchedRecords, 10),
			strconv.FormatUint(row.res.Metrics.BatchStalls, 10),
		})
	}
	return writeCSV(w,
		[]string{"query", "dataplane", "rate_eps", "goodput_eps", "p50_us", "p99_us", "received",
			"log_appends", "log_batch_appends", "mean_append_batch",
			"task_append_batches", "task_batched_records", "task_batch_stalls"},
		rows)
}
