package bench

import (
	"fmt"
	"io"
	"time"

	"impeller"
	"impeller/internal/chaos"
)

// Chaos table: every (query, protocol, seed) cell runs a full NEXMark
// query under a deterministic fault schedule and verifies the
// exactly-once output invariant against an oracle. The table reports
// what the robustness evaluation cares about: how many faults each
// run absorbed, how often tasks restarted and the retry layer fired,
// whether any zombie append was fenced, the worst single recovery,
// and whether the invariant held.

// ChaosConfig configures the chaos sweep.
type ChaosConfig struct {
	// Queries are the NEXMark queries with output oracles (default
	// 1, 11, 12).
	Queries []int
	// Protocols are the fault-tolerance protocols (default all three).
	Protocols []impeller.Protocol
	// Seeds select the fault schedules (default 7, 21, 42).
	Seeds []uint64
	// Engine selects the task execution engine (goroutine or tasklet).
	Engine impeller.EngineMode
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if len(c.Queries) == 0 {
		c.Queries = []int{1, 11, 12}
	}
	if len(c.Protocols) == 0 {
		c.Protocols = []impeller.Protocol{impeller.ProgressMarker, impeller.KafkaTxn, impeller.AlignedCheckpoint}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{7, 21, 42}
	}
	return c
}

// RunChaosTable executes the sweep sequentially (each run owns its
// cluster and its timing; overlapping runs would distort recovery
// times).
func RunChaosTable(cfg ChaosConfig, progress io.Writer) ([]*chaos.Result, error) {
	cfg = cfg.withDefaults()
	var rows []*chaos.Result
	for _, seed := range cfg.Seeds {
		for _, q := range cfg.Queries {
			for _, proto := range cfg.Protocols {
				res, err := chaos.Run(chaos.Config{Query: q, Protocol: proto, Seed: seed, Engine: cfg.Engine})
				if err != nil {
					return rows, err
				}
				if progress != nil {
					fmt.Fprintln(progress, res)
				}
				rows = append(rows, res)
			}
		}
	}
	return rows, nil
}

// PrintChaosTable renders the sweep.
func PrintChaosTable(w io.Writer, rows []*chaos.Result) {
	fmt.Fprintln(w, "Chaos: exactly-once under seeded fault schedules")
	fmt.Fprintln(w, "query  protocol            seed  faults  restarts  retries  fenced  dups  maxrec      invariant")
	for _, r := range rows {
		status := "pass"
		if r.Violation != "" {
			status = "VIOLATED: " + r.Violation
		} else if !r.Converged {
			status = "stuck (no convergence)"
		}
		fmt.Fprintf(w, "q%-5d %-19s %-5d %-7d %-9d %-8d %-7d %-5d %-11v %s\n",
			r.Config.Query, r.Config.Protocol, r.Config.Seed, r.Plan.Faults,
			r.Restarts, r.Retries, r.CondFailed, r.Duplicates,
			r.MaxRecovery.Round(100*time.Microsecond), status)
	}
}
