package bench

import (
	"fmt"
	"io"
	"time"

	"impeller"
	"impeller/internal/sharedlog"
)

// Figure 7 (paper §5.3.1–5.3.3): event-time latency (p50, p99) as a
// function of input throughput, per query, for Impeller's progress
// marking, the Kafka Streams transaction protocol, and aligned
// checkpoints.

// Fig7Config configures one query's sweep.
type Fig7Config struct {
	Query     int
	Rates     []int // events/s; 0-length selects a per-query default
	Protocols []impeller.Protocol
	Duration  time.Duration
	// P99Limit stops the sweep for a protocol once exceeded (the paper
	// uses 60 ms for Q1–Q2 and 1 s for Q3–Q8).
	P99Limit time.Duration
	Simulate bool
	Scale    float64
	// Engine selects the task execution engine (goroutine or tasklet).
	Engine impeller.EngineMode
}

func (c Fig7Config) withDefaults() Fig7Config {
	if len(c.Rates) == 0 {
		if c.Query <= 2 {
			c.Rates = []int{4000, 8000, 16000, 24000, 32000}
		} else {
			c.Rates = []int{2000, 4000, 8000, 12000, 16000}
		}
	}
	if len(c.Protocols) == 0 {
		c.Protocols = []impeller.Protocol{impeller.ProgressMarker, impeller.KafkaTxn, impeller.AlignedCheckpoint}
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.P99Limit <= 0 {
		if c.Query <= 2 {
			// The paper uses 60 ms against its ~15 ms stateless latency
			// floor; this harness's floor is ~30 ms (generator batch +
			// two log hops), so the limit scales proportionally.
			c.P99Limit = 120 * time.Millisecond
		} else {
			c.P99Limit = time.Second
		}
	}
	return c
}

// Fig7Series is one protocol's latency curve for one query.
type Fig7Series struct {
	Query    int
	Protocol impeller.Protocol
	Points   []*RunResult
	// SaturationRate is the highest offered rate whose p99 stayed
	// under the limit.
	SaturationRate int
}

// RunFig7 sweeps one query across rates for each protocol.
func RunFig7(cfg Fig7Config, progress io.Writer) ([]*Fig7Series, error) {
	cfg = cfg.withDefaults()
	var out []*Fig7Series
	for _, proto := range cfg.Protocols {
		series := &Fig7Series{Query: cfg.Query, Protocol: proto}
		for _, rate := range cfg.Rates {
			res, err := RunNexmark(RunConfig{
				Query:            cfg.Query,
				Protocol:         proto,
				Rate:             rate,
				Duration:         cfg.Duration,
				SimulateLatency:  cfg.Simulate,
				LatencyScale:     cfg.Scale,
				SnapshotInterval: 2 * time.Second,
				Engine:           cfg.Engine,
			})
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, res)
			if progress != nil {
				fmt.Fprintf(progress, "  %s\n", res)
			}
			if res.P99 > cfg.P99Limit {
				break // saturated; the paper stops each curve here
			}
			series.SaturationRate = rate
		}
		out = append(out, series)
	}
	return out, nil
}

// PrintFig7 renders the series like the paper's charts report them.
func PrintFig7(w io.Writer, series []*Fig7Series) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "Figure 7(%c): NEXMark Q%d event-time latency vs input throughput\n",
		'a'+series[0].Query-1, series[0].Query)
	fmt.Fprintf(w, "%-20s %-10s %-12s %-12s %-10s\n", "protocol", "rate", "p50", "p99", "recv")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(w, "%-20s %-10d %-12v %-12v %-10d\n",
				s.Protocol, p.Config.Rate,
				p.P50.Round(100*time.Microsecond), p.P99.Round(100*time.Microsecond), p.Received)
		}
		fmt.Fprintf(w, "%-20s saturation throughput: %d events/s\n", s.Protocol, s.SaturationRate)
		if n := len(s.Points); n > 0 {
			ls := s.Points[n-1].Log
			fmt.Fprintf(w, "%-20s log @%d eps: appends=%d reads=%d cache=%s cuts=%d (mean batch %.1f) wakeups=%d useful=%d group-commits=%d (mean %.1f)\n",
				s.Protocol, s.Points[n-1].Config.Rate,
				ls.Appends, ls.ReadNext+ls.ReadNextAny+ls.ReadExact+ls.ReadPrev,
				cacheHitRate(ls), ls.SequencerCuts, ls.MeanCutBatch,
				ls.ReaderWakeups, ls.UsefulWakeups,
				ls.BatchAppends, ls.MeanAppendBatch)
		}
	}
}

// cacheHitRate formats the client-cache hit ratio for a stats snapshot.
func cacheHitRate(s sharedlog.Stats) string {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return "off"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(s.CacheHits)/float64(total))
}

// Figure 8 (paper §5.3.2): p50/p99 at commit intervals 100/50/25/10 ms,
// fixed input rate, progress marking vs Kafka Streams transactions.

// Fig8Config configures the commit-interval sweep.
type Fig8Config struct {
	Query     int
	Rate      int
	Intervals []time.Duration
	Duration  time.Duration
	Simulate  bool
	Scale     float64
}

func (c Fig8Config) withDefaults() Fig8Config {
	if len(c.Intervals) == 0 {
		c.Intervals = []time.Duration{
			100 * time.Millisecond, 50 * time.Millisecond,
			25 * time.Millisecond, 10 * time.Millisecond,
		}
	}
	if c.Rate == 0 {
		if c.Query <= 2 {
			c.Rate = 8000
		} else {
			c.Rate = 4000
		}
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	return c
}

// Fig8Point is one (interval, protocol) measurement.
type Fig8Point struct {
	Interval time.Duration
	Marker   *RunResult
	Txn      *RunResult
}

// RunFig8 sweeps commit intervals for one query at a fixed rate.
func RunFig8(cfg Fig8Config, progress io.Writer) ([]Fig8Point, error) {
	cfg = cfg.withDefaults()
	var out []Fig8Point
	for _, interval := range cfg.Intervals {
		pt := Fig8Point{Interval: interval}
		for _, proto := range []impeller.Protocol{impeller.ProgressMarker, impeller.KafkaTxn} {
			res, err := RunNexmark(RunConfig{
				Query:           cfg.Query,
				Protocol:        proto,
				Rate:            cfg.Rate,
				Duration:        cfg.Duration,
				CommitInterval:  interval,
				SimulateLatency: cfg.Simulate,
				LatencyScale:    cfg.Scale,
			})
			if err != nil {
				return nil, err
			}
			if proto == impeller.ProgressMarker {
				pt.Marker = res
			} else {
				pt.Txn = res
			}
			if progress != nil {
				fmt.Fprintf(progress, "  interval=%v %s\n", interval, res)
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// PrintFig8 renders the commit-interval sweep.
func PrintFig8(w io.Writer, q int, points []Fig8Point) {
	fmt.Fprintf(w, "Figure 8: Q%d event-time latencies at different commit intervals\n", q)
	fmt.Fprintf(w, "%-10s | %-12s %-12s | %-12s %-12s | %-10s %-10s\n",
		"interval", "marker p50", "marker p99", "txn p50", "txn p99", "p50 ratio", "p99 ratio")
	for _, p := range points {
		fmt.Fprintf(w, "%-10v | %-12v %-12v | %-12v %-12v | %-10.2f %-10.2f\n",
			p.Interval,
			p.Marker.P50.Round(100*time.Microsecond), p.Marker.P99.Round(100*time.Microsecond),
			p.Txn.P50.Round(100*time.Microsecond), p.Txn.P99.Round(100*time.Microsecond),
			ratio(p.Txn.P50, p.Marker.P50), ratio(p.Txn.P99, p.Marker.P99))
	}
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Figure 9 (paper §5.3.4): Q5 with the unsafe variant (no progress
// marking) against the three protocols — the cost of exactly-once.

// RunFig9 sweeps Q5 across rates for all four protocols.
func RunFig9(rates []int, duration time.Duration, simulate bool, scale float64, progress io.Writer) ([]*Fig7Series, error) {
	if len(rates) == 0 {
		rates = []int{2000, 4000, 8000, 12000, 16000}
	}
	cfg := Fig7Config{
		Query:    5,
		Rates:    rates,
		Duration: duration,
		Simulate: simulate,
		Scale:    scale,
		Protocols: []impeller.Protocol{
			impeller.ProgressMarker, impeller.KafkaTxn,
			impeller.AlignedCheckpoint, impeller.Unsafe,
		},
	}
	return RunFig7(cfg, progress)
}

// PrintFig9 renders the unsafe-comparison sweep with the marker/unsafe
// overhead ratios the paper reports.
func PrintFig9(w io.Writer, series []*Fig7Series) {
	fmt.Fprintln(w, "Figure 9: NEXMark Q5 — cost of progress marking (vs unsafe)")
	PrintFig7(w, series)
	var marker, unsafe *Fig7Series
	for _, s := range series {
		switch s.Protocol {
		case impeller.ProgressMarker:
			marker = s
		case impeller.Unsafe:
			unsafe = s
		}
	}
	if marker == nil || unsafe == nil {
		return
	}
	fmt.Fprintf(w, "%-10s %-18s %-18s\n", "rate", "p50 marker/unsafe", "p99 marker/unsafe")
	for i := 0; i < len(marker.Points) && i < len(unsafe.Points); i++ {
		m, u := marker.Points[i], unsafe.Points[i]
		fmt.Fprintf(w, "%-10d %-18.2f %-18.2f\n", m.Config.Rate, ratio(m.P50, u.P50), ratio(m.P99, u.P99))
	}
}
