package bench

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"impeller"
	"impeller/internal/nexmark"
)

// -exp rescale: elastic rescaling under a step load. NEXMark Q1 runs at
// a steady offered rate on P slots; halfway through, the offered rate
// steps to 2× and the stage's parallelism is doubled on the live log
// (App.Rescale — no restart, no replay of history). Goodput is sampled
// at the output sink in fixed buckets across the whole run, so the
// transition shows up as a dip in the timeline: its depth and duration
// are the cost of the epoch switch, and the recovery point is when
// goodput regains the post-step steady state. The rescale call's own
// wall time (fence → floors → epoch CAS → respawn) is reported
// separately from the pipeline's observed disruption.

// RescaleBenchConfig configures the step-load rescale experiment.
type RescaleBenchConfig struct {
	// Query is the NEXMark query (default 1 — stateless, so the dip
	// isolates the assignment switch itself; no state migrates).
	Query int
	// Rate is the offered load before the step, in events/s; the step
	// doubles it (default 4000).
	Rate int
	// Parallelism is the initial slot count; the rescale doubles it.
	// MaxParallelism is the key-group headroom (defaults 2 and 8).
	Parallelism    int
	MaxParallelism int
	// Duration is the whole run; the step lands at Duration/2 (default
	// 6 s). Bucket is the goodput sampling interval (default 100 ms).
	Duration time.Duration
	Bucket   time.Duration
	// CommitInterval is the progress-marker interval (default 25 ms).
	CommitInterval time.Duration
	// Simulate charges calibrated log latencies, scaled by Scale.
	Simulate bool
	Scale    float64
	// Engine selects the task execution engine.
	Engine impeller.EngineMode
}

func (c RescaleBenchConfig) withDefaults() RescaleBenchConfig {
	if c.Query == 0 {
		c.Query = 1
	}
	if c.Rate <= 0 {
		c.Rate = 4000
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 2
	}
	if c.MaxParallelism < 2*c.Parallelism {
		c.MaxParallelism = 2 * c.Parallelism
		if c.MaxParallelism < 8 {
			c.MaxParallelism = 8
		}
	}
	if c.Duration <= 0 {
		c.Duration = 6 * time.Second
	}
	if c.Bucket <= 0 {
		c.Bucket = 100 * time.Millisecond
	}
	if c.CommitInterval <= 0 {
		c.CommitInterval = 25 * time.Millisecond
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	return c
}

// RescaleBucket is one goodput sample: records delivered at the sink
// during [Start, Start+Bucket), with the slot count and assignment
// epoch in force at the bucket boundary.
type RescaleBucket struct {
	Start     time.Duration
	Delivered uint64
	Slots     int
	Epoch     uint64
}

// Goodput is the bucket's delivered rate in events/s.
func (b RescaleBucket) Goodput(bucket time.Duration) float64 {
	return float64(b.Delivered) / bucket.Seconds()
}

// RescaleBenchResult is the outcome of one step-load rescale run.
type RescaleBenchResult struct {
	Config   RescaleBenchConfig
	Timeline []RescaleBucket
	// Epoch is the committed assignment epoch after the split;
	// RescaleWall is the Rescale call's wall time (fence through
	// respawn); StepAt is when the step landed, relative to run start.
	Epoch       uint64
	RescaleWall time.Duration
	StepAt      time.Duration
	// SteadyBefore / SteadyAfter are mean goodput (events/s) over the
	// settled window before the step and the tail of the run.
	SteadyBefore, SteadyAfter float64
	// DipMin is the worst bucket goodput in the post-step window;
	// DipDepth is its shortfall relative to SteadyBefore (0..1);
	// DipDuration is the total bucket time under 90% of SteadyBefore
	// after the step; Recovery is the time from the step until goodput
	// first sustains 90% of SteadyAfter for three buckets.
	DipMin      float64
	DipDepth    float64
	DipDuration time.Duration
	Recovery    time.Duration
	// Sent / Delivered are whole-run totals; CondFailed counts fenced
	// appends rejected by the log during the transition.
	Sent, Delivered uint64
	CondFailed      uint64
}

// RunRescaleBench executes the step-load rescale experiment.
func RunRescaleBench(cfg RescaleBenchConfig, progress io.Writer) (*RescaleBenchResult, error) {
	cfg = cfg.withDefaults()
	cluster := impeller.NewCluster(impeller.ClusterConfig{
		Protocol:             impeller.ProgressMarker,
		CommitInterval:       cfg.CommitInterval,
		DefaultParallelism:   cfg.Parallelism,
		IngressWriters:       2,
		IngressFlushInterval: 5 * time.Millisecond,
		SimulateLatency:      cfg.Simulate,
		LatencyScale:         cfg.Scale,
		Seed:                 17,
		Engine:               cfg.Engine,
	})
	defer cluster.Close()

	topo, err := nexmark.BuildOpts(cfg.Query, nexmark.Options{MaxParallelism: cfg.MaxParallelism})
	if err != nil {
		return nil, err
	}
	app, err := cluster.Run(topo)
	if err != nil {
		return nil, err
	}
	defer app.Stop()
	stage := nexmark.RescaleStage(cfg.Query)

	nBuckets := int(cfg.Duration/cfg.Bucket) + 2
	delivered := make([]atomic.Uint64, nBuckets)
	start := time.Now()
	app.Sink(nexmark.OutputStream(cfg.Query), true, func(_ impeller.Record, _ impeller.TaskID, now time.Time) {
		if i := int(now.Sub(start) / cfg.Bucket); i >= 0 && i < nBuckets {
			delivered[i].Add(1)
		}
	})

	// Load plane: rate R until the step, 2R after, paced in 5 ms ticks.
	res := &RescaleBenchResult{Config: cfg, StepAt: cfg.Duration / 2}
	gen := nexmark.NewGenerator(17)
	seq := 0
	var sent uint64
	tick := 5 * time.Millisecond
	stepped := make(chan struct{})
	loadDone := make(chan error, 1)
	go func() {
		carry := 0.0
		for {
			el := time.Since(start)
			if el >= cfg.Duration {
				loadDone <- nil
				return
			}
			rate := cfg.Rate
			select {
			case <-stepped:
				rate = 2 * cfg.Rate
			default:
			}
			carry += float64(rate) * tick.Seconds()
			n := int(carry)
			carry -= float64(n)
			for i := 0; i < n; i++ {
				now := time.Now().UnixMicro()
				ev := gen.Next(now)
				seq++
				if err := app.Send(nexmark.EventStream, []byte(fmt.Sprint(seq)), ev.Payload, now); err != nil {
					loadDone <- err
					return
				}
				sent++
			}
			time.Sleep(tick)
		}
	}()

	// Step: double the offered rate and the stage's slot count.
	time.Sleep(time.Until(start.Add(res.StepAt)))
	close(stepped)
	t0 := time.Now()
	epoch, err := app.Rescale(context.Background(), stage, 2*cfg.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("bench: rescale: %w", err)
	}
	res.RescaleWall = time.Since(t0)
	res.Epoch = epoch
	if progress != nil {
		fmt.Fprintf(progress, "  step at %v: %d→%d slots, epoch %d, rescale call %v\n",
			res.StepAt, cfg.Parallelism, 2*cfg.Parallelism, epoch, res.RescaleWall.Round(10*time.Microsecond))
	}
	if err := <-loadDone; err != nil {
		return nil, err
	}
	// Drain the tail so the last buckets aren't truncated mid-flight.
	time.Sleep(400 * time.Millisecond)

	stepBucket := int(res.StepAt / cfg.Bucket)
	used := int(cfg.Duration / cfg.Bucket)
	for i := 0; i < used; i++ {
		b := RescaleBucket{Start: time.Duration(i) * cfg.Bucket, Delivered: delivered[i].Load(),
			Slots: cfg.Parallelism, Epoch: 1}
		if i >= stepBucket {
			b.Slots, b.Epoch = 2*cfg.Parallelism, epoch
		}
		res.Timeline = append(res.Timeline, b)
	}
	res.Sent = sent
	for _, b := range res.Timeline {
		res.Delivered += b.Delivered
	}
	res.CondFailed = cluster.LogStats().CondFailed

	// Steady states: before = the settled window [25%, 95%] of the
	// pre-step half (skips warmup); after = the last quarter of the run.
	res.SteadyBefore = meanGoodput(res.Timeline, stepBucket/4, stepBucket-1, cfg.Bucket)
	res.SteadyAfter = meanGoodput(res.Timeline, used*3/4, used, cfg.Bucket)

	// Dip and recovery, scanned from the step bucket.
	res.DipMin = res.SteadyBefore
	recovered := -1
	run := 0
	for i := stepBucket; i < used; i++ {
		g := res.Timeline[i].Goodput(cfg.Bucket)
		if g < res.DipMin {
			res.DipMin = g
		}
		if g < 0.9*res.SteadyBefore {
			res.DipDuration += cfg.Bucket
		}
		if recovered < 0 {
			if g >= 0.9*res.SteadyAfter {
				run++
				if run == 3 {
					recovered = i - 2
				}
			} else {
				run = 0
			}
		}
	}
	if res.SteadyBefore > 0 {
		res.DipDepth = 1 - res.DipMin/res.SteadyBefore
		if res.DipDepth < 0 {
			res.DipDepth = 0
		}
	}
	if recovered >= 0 {
		res.Recovery = time.Duration(recovered)*cfg.Bucket - res.StepAt
		if res.Recovery < 0 {
			res.Recovery = 0
		}
	} else {
		res.Recovery = cfg.Duration - res.StepAt // never re-settled
	}
	return res, nil
}

func meanGoodput(tl []RescaleBucket, from, to int, bucket time.Duration) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(tl) {
		to = len(tl)
	}
	if to <= from {
		return 0
	}
	var sum uint64
	for _, b := range tl[from:to] {
		sum += b.Delivered
	}
	return float64(sum) / (float64(to-from) * bucket.Seconds())
}

// PrintRescaleBench renders the run: the summary line the experiment is
// about, then the goodput timeline with the step marked.
func PrintRescaleBench(w io.Writer, r *RescaleBenchResult) {
	c := r.Config
	fmt.Fprintf(w, "Rescale: NEXMark Q%d step load %d→%d events/s, %d→%d slots at t=%v (epoch %d)\n",
		c.Query, c.Rate, 2*c.Rate, c.Parallelism, 2*c.Parallelism, r.StepAt, r.Epoch)
	fmt.Fprintf(w, "  rescale call %v · steady %.0f → %.0f ev/s · dip min %.0f ev/s (depth %.0f%%, %v under 90%%) · re-steady in %v · fenced appends %d\n",
		r.RescaleWall.Round(10*time.Microsecond), r.SteadyBefore, r.SteadyAfter,
		r.DipMin, 100*r.DipDepth, r.DipDuration, r.Recovery.Round(10*time.Millisecond), r.CondFailed)
	fmt.Fprintf(w, "%-8s | %-5s | %-5s | %-9s | %s\n", "t_ms", "slots", "epoch", "goodput", "")
	for _, b := range r.Timeline {
		mark := ""
		if b.Start == r.StepAt {
			mark = "  <- step: rate and slots double"
		}
		fmt.Fprintf(w, "%-8d | %-5d | %-5d | %-9.0f |%s\n",
			b.Start.Milliseconds(), b.Slots, b.Epoch, b.Goodput(r.Config.Bucket), mark)
	}
}
