package bench

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"impeller/internal/sharedlog"
	"impeller/internal/sim"
)

// Ordering-shard scaling: aggregate append throughput against the
// number of ordering shards, at fixed offered load (strong scaling).
// The log runs in sequencer mode under calibrated latency; each shard's
// local persist is a serial resource (sharedlog.Config's
// ShardAppendLatency), so a single shard caps aggregate appends at
// roughly 1/persist-latency regardless of client count, and adding
// shards raises the cap near-linearly — the Scalog/Boki scaling
// argument the sharded ordering plane exists to reproduce. Latency is
// reported too: it should stay roughly flat across shard counts once
// the load no longer saturates a point, and fall sharply between the
// saturated and unsaturated points.

// ScalingConfig configures the -exp scaling sweep.
type ScalingConfig struct {
	// Shards are the ordering-shard counts to sweep (default 1,2,4,8).
	Shards []int
	// Clients is the number of concurrent appenders, fixed across
	// points (default 256 — enough offered load to saturate the largest
	// default shard count).
	Clients int
	// Duration per point, including Warmup (default 1.5 s).
	Duration time.Duration
	// Warmup discards samples and counts before it elapses (default
	// Duration/4).
	Warmup time.Duration
	// OrderingInterval is the global cut interval (default 1 ms).
	OrderingInterval time.Duration
	// Scale scales simulated latencies (1.0 if zero).
	Scale float64
	// Seed fixes the latency randomness (default 42).
	Seed uint64
}

func (c ScalingConfig) withDefaults() ScalingConfig {
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4, 8}
	}
	if c.Clients <= 0 {
		c.Clients = 256
	}
	if c.Duration <= 0 {
		c.Duration = 1500 * time.Millisecond
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Duration / 4
	}
	if c.OrderingInterval <= 0 {
		c.OrderingInterval = time.Millisecond
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// ScalingPoint is one measured point of the sweep.
type ScalingPoint struct {
	Shards  int
	Clients int
	// Appends committed inside the measurement window and the resulting
	// aggregate rate.
	Appends    uint64
	Throughput float64
	// Append latency percentiles over the measurement window.
	P50, P99 time.Duration
	// Cut-plane counters at the end of the point.
	Cuts    uint64
	MeanCut float64
	Skew    float64
}

// RunScaling measures aggregate append throughput at each shard count.
func RunScaling(cfg ScalingConfig, progress io.Writer) ([]ScalingPoint, error) {
	cfg = cfg.withDefaults()
	points := make([]ScalingPoint, 0, len(cfg.Shards))
	for _, n := range cfg.Shards {
		p, err := runScalingPoint(cfg, n)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			fmt.Fprintf(progress, "  shards=%-2d throughput=%8.0f appends/s p50=%-9v p99=%-9v cuts=%d mean_cut=%.1f skew=%.2f\n",
				p.Shards, p.Throughput, p.P50.Round(10*time.Microsecond), p.P99.Round(10*time.Microsecond),
				p.Cuts, p.MeanCut, p.Skew)
		}
		points = append(points, p)
	}
	return points, nil
}

func runScalingPoint(cfg ScalingConfig, shards int) (ScalingPoint, error) {
	r := sim.NewRand(cfg.Seed)
	scale := func(m sim.LatencyModel) sim.LatencyModel {
		if cfg.Scale == 1 {
			return m
		}
		return sim.Scale{M: m, F: cfg.Scale}
	}
	log := sharedlog.Open(sharedlog.Config{
		NumShards:          4,
		Replication:        3,
		OrderingInterval:   cfg.OrderingInterval,
		OrderingShards:     shards,
		AppendLatency:      scale(sim.DefaultBokiLatency(r.Fork())),
		ShardAppendLatency: scale(sim.DefaultLocalPersistLatency(r.Fork())),
	})
	defer log.Close()

	hist := &Hist{}
	var measured atomic.Uint64
	start := time.Now()
	warmupUntil := start.Add(cfg.Warmup)
	deadline := start.Add(cfg.Duration)
	payload := make([]byte, 64)

	var wg sync.WaitGroup
	var firstErr atomic.Value
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// 16 distinct tags keep the index sharded realistically
			// without per-append tag allocation noise.
			tags := []sharedlog.Tag{sharedlog.Tag("scale/" + strconv.Itoa(c%16))}
			for {
				t0 := time.Now()
				if t0.After(deadline) {
					return
				}
				if _, err := log.Append(tags, payload); err != nil {
					firstErr.Store(err)
					return
				}
				if done := time.Now(); done.After(warmupUntil) {
					measured.Add(1)
					hist.Record(done.Sub(t0))
				}
			}
		}(c)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return ScalingPoint{}, err
	}

	st := log.Stats()
	window := cfg.Duration - cfg.Warmup
	return ScalingPoint{
		Shards:     shards,
		Clients:    cfg.Clients,
		Appends:    measured.Load(),
		Throughput: float64(measured.Load()) / window.Seconds(),
		P50:        hist.Percentile(50),
		P99:        hist.Percentile(99),
		Cuts:       st.SequencerCuts,
		MeanCut:    st.MeanCutBatch,
		Skew:       st.CutSkew,
	}, nil
}

// PrintScaling renders the sweep with per-point speedup over the first
// (fewest-shards) point.
func PrintScaling(w io.Writer, points []ScalingPoint) {
	if len(points) == 0 {
		return
	}
	fmt.Fprintf(w, "Ordering-shard append scaling: %d concurrent appenders, sequencer cuts, calibrated latency\n",
		points[0].Clients)
	fmt.Fprintf(w, "%-8s %-14s %-9s %-10s %-10s %-8s %-10s %-8s\n",
		"shards", "appends/s", "speedup", "p50", "p99", "cuts", "mean cut", "skew")
	base := points[0].Throughput
	for _, p := range points {
		speedup := 0.0
		if base > 0 {
			speedup = p.Throughput / base
		}
		fmt.Fprintf(w, "%-8d %-14.0f %-9.2f %-10v %-10v %-8d %-10.1f %-8.2f\n",
			p.Shards, p.Throughput, speedup,
			p.P50.Round(10*time.Microsecond), p.P99.Round(10*time.Microsecond),
			p.Cuts, p.MeanCut, p.Skew)
	}
}

// WriteScalingCSV exports the sweep, one row per shard count.
func WriteScalingCSV(w io.Writer, points []ScalingPoint) error {
	rows := make([][]string, 0, len(points))
	base := 0.0
	if len(points) > 0 {
		base = points[0].Throughput
	}
	for _, p := range points {
		speedup := 0.0
		if base > 0 {
			speedup = p.Throughput / base
		}
		rows = append(rows, []string{
			strconv.Itoa(p.Shards),
			strconv.Itoa(p.Clients),
			strconv.FormatUint(p.Appends, 10),
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%.3f", speedup),
			us(p.P50), us(p.P99),
			strconv.FormatUint(p.Cuts, 10),
			fmt.Sprintf("%.2f", p.MeanCut),
			fmt.Sprintf("%.3f", p.Skew),
		})
	}
	return writeCSV(w,
		[]string{"ordering_shards", "clients", "appends", "throughput_aps", "speedup",
			"p50_us", "p99_us", "cuts", "mean_cut", "cut_skew"},
		rows)
}
