package bench

import (
	"fmt"
	"io"
	"time"

	"impeller"
	"impeller/internal/sharedlog"
	"impeller/internal/wal"
)

// Durability experiment (-exp durability): the durability plane's two
// costs.
//
//   - Append overhead: the same NEXMark run twice — once on the default
//     in-memory log and once with the WAL device attached, so every
//     committed cut is checksummed, framed, appended, and flushed
//     before the append is acknowledged. Under -simulate the flush is
//     charged at the calibrated device latency; the p50/p99 delta is
//     the price of ack-after-durable.
//   - Recovery time vs log length: a synthetic durable log is built to
//     each target depth (records plus a sprinkling of metadata ops,
//     like the runtime's fences and seq reservations), the process
//     "dies", and sharedlog.Recover rebuilds the whole log from the
//     device — segments, tag index, sequencer state, metadata KV. The
//     replay is CPU-bound and linear in WAL bytes, so the MB/s column
//     should be flat and the wall time proportional to depth.

// DurabilityConfig configures both phases.
type DurabilityConfig struct {
	// Query and Rate drive the append-overhead phase (default Q1 at
	// 3000 events/s, matching the egress latency phase).
	Query int
	Rate  int
	// Duration is the overhead phase's measurement window.
	Duration time.Duration
	// Protocol for the overhead phase (default ProgressMarker).
	Protocol impeller.Protocol
	// Depths are the recovery phase's target log lengths in records.
	Depths []int
	// Payload is the synthetic record size for the recovery phase
	// (default 128 bytes, the ballpark of an encoded NEXMark event).
	Payload int
	// Simulate / Scale mirror the other experiments.
	Simulate bool
	Scale    float64
}

func (c DurabilityConfig) withDefaults() DurabilityConfig {
	if c.Query == 0 {
		c.Query = 1
	}
	if c.Rate <= 0 {
		c.Rate = 3000
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Protocol == 0 {
		c.Protocol = impeller.ProgressMarker
	}
	if len(c.Depths) == 0 {
		c.Depths = []int{2000, 10000, 50000}
	}
	if c.Payload <= 0 {
		c.Payload = 128
	}
	return c
}

// DurabilityRecoveryPoint is one depth point of the recovery phase.
type DurabilityRecoveryPoint struct {
	// Depth is the records appended before the simulated crash;
	// WALBytes the device size recovery had to scan.
	Depth    int
	WALBytes uint64
	// Records / MetaOps are what Recover replayed (Records == Depth on
	// a clean device).
	Records uint64
	MetaOps uint64
	// Recovery is the wall-clock Recover duration; MBPerSec the implied
	// replay bandwidth (flat when replay is linear, the design goal).
	Recovery time.Duration
	MBPerSec float64
}

// DurabilityResult is the experiment outcome: the off/on overhead pair
// and one recovery point per depth.
type DurabilityResult struct {
	Config   DurabilityConfig
	Off, On  *RunResult
	Recovery []DurabilityRecoveryPoint
}

// RunDurability executes both phases.
func RunDurability(cfg DurabilityConfig, progress io.Writer) (*DurabilityResult, error) {
	cfg = cfg.withDefaults()
	res := &DurabilityResult{Config: cfg}
	for _, durable := range []bool{false, true} {
		point, err := RunNexmark(RunConfig{
			Query:           cfg.Query,
			Protocol:        cfg.Protocol,
			Rate:            cfg.Rate,
			Duration:        cfg.Duration,
			SimulateLatency: cfg.Simulate,
			LatencyScale:    cfg.Scale,
			Durable:         durable,
		})
		if err != nil {
			return res, err
		}
		if progress != nil {
			fmt.Fprintf(progress, "  durable=%-5v %v\n", durable, point)
		}
		if durable {
			res.On = point
		} else {
			res.Off = point
		}
	}
	for _, depth := range cfg.Depths {
		p, err := measureDurableRecovery(depth, cfg.Payload)
		if err != nil {
			return res, err
		}
		res.Recovery = append(res.Recovery, *p)
		if progress != nil {
			fmt.Fprintf(progress, "  depth=%-7d wal=%-9d recovery=%-10v %.1f MB/s\n",
				p.Depth, p.WALBytes, p.Recovery.Round(10*time.Microsecond), p.MBPerSec)
		}
	}
	return res, nil
}

// measureDurableRecovery builds a durable log to depth records (with a
// metadata op every 64 — the control-plane/data-plane mix a real run
// journals), closes it as a power failure would, and times a full
// Recover from the device.
func measureDurableRecovery(depth, payload int) (*DurabilityRecoveryPoint, error) {
	dev := wal.NewDevice()
	l := sharedlog.Open(sharedlog.Config{WAL: dev})
	buf := make([]byte, payload)
	for i := range buf {
		buf[i] = byte(i)
	}
	tags := make([]sharedlog.Tag, 4)
	for i := range tags {
		tags[i] = sharedlog.Tag(fmt.Sprintf("bench/part/%d", i))
	}
	for i := 0; i < depth; i++ {
		if _, err := l.Append([]sharedlog.Tag{tags[i%len(tags)]}, buf); err != nil {
			l.Close()
			return nil, fmt.Errorf("bench: durable build append %d: %w", i, err)
		}
		if i%64 == 0 {
			l.Meta().Set(fmt.Sprintf("bench/seq/%d", i%8), uint64(i))
		}
	}
	l.Close()

	p := &DurabilityRecoveryPoint{Depth: depth, WALBytes: uint64(dev.Size())}
	start := time.Now()
	rec, err := sharedlog.Recover(sharedlog.Config{WAL: dev})
	p.Recovery = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("bench: recover at depth %d: %w", depth, err)
	}
	stats := rec.Stats()
	rec.Close()
	p.Records = stats.RecoveredRecords
	p.MetaOps = stats.RecoveredMetaOps
	if p.Recovery > 0 {
		p.MBPerSec = float64(p.WALBytes) / (1 << 20) / p.Recovery.Seconds()
	}
	if p.Records != uint64(depth) {
		return nil, fmt.Errorf("bench: recovery at depth %d replayed %d records", depth, p.Records)
	}
	return p, nil
}

// PrintDurability renders both phases.
func PrintDurability(w io.Writer, res *DurabilityResult) {
	fmt.Fprintf(w, "Durability: WAL append overhead, q%d at %d events/s (ack-after-durable vs in-memory)\n",
		res.Config.Query, res.Config.Rate)
	fmt.Fprintln(w, "wal    p50         p99         mean        recv     wal-bytes  flushes")
	for _, p := range []*RunResult{res.Off, res.On} {
		if p == nil {
			continue
		}
		fmt.Fprintf(w, "%-6v %-11v %-11v %-11v %-8d %-10d %d\n",
			p.Config.Durable, p.P50.Round(100*time.Microsecond), p.P99.Round(100*time.Microsecond),
			p.Mean.Round(100*time.Microsecond), p.Received, p.Log.WALBytes, p.Log.WALFlushes)
	}
	if res.Off != nil && res.On != nil && res.Off.P99 > 0 {
		fmt.Fprintf(w, "     overhead: p50 %+.1f%%  p99 %+.1f%%\n",
			100*(float64(res.On.P50)/float64(res.Off.P50)-1),
			100*(float64(res.On.P99)/float64(res.Off.P99)-1))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Durability: recovery time vs log length (full replay from the WAL device)")
	fmt.Fprintln(w, "depth    wal-bytes   records  metaops  recovery     replay")
	for _, p := range res.Recovery {
		fmt.Fprintf(w, "%-8d %-11d %-8d %-8d %-12v %.1f MB/s\n",
			p.Depth, p.WALBytes, p.Records, p.MetaOps,
			p.Recovery.Round(10*time.Microsecond), p.MBPerSec)
	}
}
