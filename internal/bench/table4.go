package bench

import (
	"fmt"
	"io"
	"time"

	"impeller"
	"impeller/internal/nexmark"
)

// Table 4 (paper §5.3.5): failure recovery on Q8 — the whole query
// fails mid-run; with asynchronous checkpointing enabled the recovery
// replays only the change-log suffix after the last checkpoint, without
// it the full change log.

// Table4Config configures the recovery experiment.
type Table4Config struct {
	// Rates are the offered input rates (the paper uses 80k/96k/112k
	// events/s on its testbed; defaults are scaled to this harness).
	Rates []int
	// RunFor is how long the query processes before the failure.
	RunFor time.Duration
	// SnapshotInterval for the checkpointing configuration (the paper
	// checkpoints every 10 s on 300 s runs; default scales that ratio).
	SnapshotInterval time.Duration
	Simulate         bool
	Scale            float64
	Parallelism      int
}

func (c Table4Config) withDefaults() Table4Config {
	if len(c.Rates) == 0 {
		c.Rates = []int{4000, 4800, 5600}
	}
	if c.RunFor <= 0 {
		c.RunFor = 4 * time.Second
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = c.RunFor / 8
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 4
	}
	return c
}

// Table4Row is one rate point: recovery with and without checkpointing.
type Table4Row struct {
	Rate int
	// Baseline replays the full change log; Checkpoint restores the
	// latest snapshot and replays the suffix.
	BaselineRecovery   time.Duration
	BaselineReplayed   uint64
	CheckpointRecovery time.Duration
	CheckpointReplayed uint64
}

// Speedup reports baseline/checkpoint recovery-time ratio.
func (r Table4Row) Speedup() float64 {
	if r.CheckpointRecovery == 0 {
		return 0
	}
	return float64(r.BaselineRecovery) / float64(r.CheckpointRecovery)
}

// RunTable4 measures recovery at every rate, with and without
// checkpointing.
func RunTable4(cfg Table4Config, progress io.Writer) ([]Table4Row, error) {
	cfg = cfg.withDefaults()
	rows := make([]Table4Row, 0, len(cfg.Rates))
	for _, rate := range cfg.Rates {
		row := Table4Row{Rate: rate}
		for _, withCkpt := range []bool{false, true} {
			dur, replayed, err := measureRecovery(cfg, rate, withCkpt)
			if err != nil {
				return nil, err
			}
			if withCkpt {
				row.CheckpointRecovery, row.CheckpointReplayed = dur, replayed
			} else {
				row.BaselineRecovery, row.BaselineReplayed = dur, replayed
			}
			if progress != nil {
				fmt.Fprintf(progress, "  rate=%d ckpt=%v recovery=%v replayed=%d\n", rate, withCkpt, dur, replayed)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func measureRecovery(cfg Table4Config, rate int, withCkpt bool) (time.Duration, uint64, error) {
	snapshot := time.Duration(0)
	if withCkpt {
		snapshot = cfg.SnapshotInterval
	}
	cluster := impeller.NewCluster(impeller.ClusterConfig{
		Protocol:           impeller.ProgressMarker,
		CommitInterval:     100 * time.Millisecond,
		SnapshotInterval:   snapshot,
		DefaultParallelism: cfg.Parallelism,
		IngressWriters:     4,
		SimulateLatency:    cfg.Simulate,
		LatencyScale:       cfg.Scale,
		Seed:               99,
	})
	defer cluster.Close()

	topo, err := nexmark.BuildOpts(8, nexmark.Options{PerUpdateWindows: true})
	if err != nil {
		return 0, 0, err
	}
	app, err := cluster.Run(topo)
	if err != nil {
		return 0, 0, err
	}
	defer app.Stop()
	mgr := app.Manager()
	mgr.SetTimeouts(300*time.Millisecond, 50*time.Millisecond)

	// Offer load for RunFor.
	gen := nexmark.NewGenerator(1)
	deadline := time.Now().Add(cfg.RunFor)
	perTick := rate / 100 // 10 ms ticks
	if perTick == 0 {
		perTick = 1
	}
	seq := 0
	for time.Now().Before(deadline) {
		for i := 0; i < perTick; i++ {
			now := time.Now().UnixMicro()
			ev := gen.Next(now)
			seq++
			if err := app.Send(nexmark.EventStream, []byte(fmt.Sprint(seq)), ev.Payload, now); err != nil {
				return 0, 0, err
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Let in-flight work commit. The failure then lands at an arbitrary
	// point in the checkpoint cycle, as in the paper: the checkpointed
	// configuration replays only the change-log suffix written since
	// the last snapshot.
	time.Sleep(400 * time.Millisecond)

	replayedBefore := app.Metrics().RecoveredChanges

	// The whole query fails (paper: "The query fails at 300s then
	// recovers, and we measure the recovery time").
	mgr.KillAll()

	// Wait until every task has restarted and finished recovery.
	waitDeadline := time.Now().Add(60 * time.Second)
	for {
		allRestarted := true
		for _, id := range mgr.TaskIDs() {
			if mgr.Restarts(id) == 0 {
				allRestarted = false
				break
			}
		}
		if allRestarted {
			break
		}
		if time.Now().After(waitDeadline) {
			return 0, 0, fmt.Errorf("bench: tasks never restarted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Recovery durations settle once RecoveryNanos stops at its new
	// value; wait for quiescence.
	time.Sleep(500 * time.Millisecond)

	var maxRecovery time.Duration
	for _, id := range mgr.TaskIDs() {
		if m := mgr.TaskMetrics(id); m != nil {
			if d := time.Duration(m.RecoveryNanos.Load()); d > maxRecovery {
				maxRecovery = d
			}
		}
	}
	replayed := app.Metrics().RecoveredChanges - replayedBefore
	return maxRecovery, replayed, nil
}

// PrintTable4 renders rows in the paper's format.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4: recovery performance with and without checkpointing (NEXMark Q8)")
	fmt.Fprintf(w, "%-10s | %-22s | %-22s | %-8s\n", "rate", "baseline (time/replayed)", "+checkpoint", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d | %-12v %-9d | %-12v %-9d | %-8.1fx\n",
			r.Rate, r.BaselineRecovery.Round(time.Millisecond), r.BaselineReplayed,
			r.CheckpointRecovery.Round(time.Millisecond), r.CheckpointReplayed, r.Speedup())
	}
}
