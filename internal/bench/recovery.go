package bench

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"impeller"
	"impeller/internal/nexmark"
)

// -exp recovery: the streaming read plane's recovery experiment. A
// stateful NEXMark Q8 query builds a change log to a target depth, the
// whole query is killed, and the restarted tasks replay the change log
// via recovery cursors. Each depth point is measured twice: once with
// per-record reads (ReadBatchRecords=1, readahead disabled — the
// pre-cursor behavior) and once with the batched default. The point of
// the experiment is the round-trip count: replay cost is linear in log
// round trips (paper §3.3.4 makes recovery time a headline metric), and
// batching divides the round trips by the realized batch size.
//
// Reported per point: replay round trips (the recovery cursors' fetch
// count), the records those fetches carried, change records applied,
// the slowest task's recovery duration, and time-to-first-output — the
// wall-clock interval from the kill to the first fresh record at the
// output sink, with a trickle load offered during recovery so there is
// an output to observe.

// RecoveryConfig configures the recovery experiment.
type RecoveryConfig struct {
	// Depths are the target change-log depths (change records written
	// before the kill). The acceptance point is 10k.
	Depths []int
	// Rate is the build-phase offered load in events/s.
	Rate int
	// Simulate charges calibrated log latencies; Scale scales them so a
	// deep replay fits in a test run.
	Simulate bool
	Scale    float64
	// Parallelism is the per-stage task count.
	Parallelism int
	// BuildTimeout bounds the build phase per point.
	BuildTimeout time.Duration
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if len(c.Depths) == 0 {
		c.Depths = []int{2000, 10000}
	}
	if c.Rate <= 0 {
		c.Rate = 8000
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 2
	}
	if c.BuildTimeout <= 0 {
		c.BuildTimeout = 90 * time.Second
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	return c
}

// RecoveryPoint is one (depth, read-mode) measurement.
type RecoveryPoint struct {
	Depth       int    // requested change-log depth
	ChangeDepth uint64 // actual change records at the kill
	Mode        string // "per-record" or "batched"
	ReadBatch   int    // effective cursor batch size
	// RoundTrips counts the recovery cursors' batched fetches — the log
	// round trips replay actually paid. ReplayRecords is the records
	// they carried (ReplayRecords/RoundTrips = realized read batch).
	RoundTrips    uint64
	ReplayRecords uint64
	// Replayed counts change records applied to restored state.
	Replayed uint64
	// Recovery is the slowest task's recovery duration.
	Recovery time.Duration
	// TTFO is kill-to-first-fresh-output at the sink.
	TTFO time.Duration
}

// RunRecovery measures every depth in both read modes.
func RunRecovery(cfg RecoveryConfig, progress io.Writer) ([]RecoveryPoint, error) {
	cfg = cfg.withDefaults()
	var points []RecoveryPoint
	for _, depth := range cfg.Depths {
		for _, readBatch := range []int{1, 0} {
			p, err := measureRecoveryPoint(cfg, depth, readBatch)
			if err != nil {
				return nil, err
			}
			points = append(points, *p)
			if progress != nil {
				fmt.Fprintf(progress, "  depth=%-7d mode=%-10s roundtrips=%-6d replayed=%-6d recovery=%-10v ttfo=%v\n",
					p.Depth, p.Mode, p.RoundTrips, p.Replayed, p.Recovery.Round(time.Millisecond), p.TTFO.Round(time.Millisecond))
			}
		}
	}
	return points, nil
}

func measureRecoveryPoint(cfg RecoveryConfig, depth, readBatch int) (*RecoveryPoint, error) {
	cluster := impeller.NewCluster(impeller.ClusterConfig{
		Protocol:           impeller.ProgressMarker,
		CommitInterval:     100 * time.Millisecond,
		DefaultParallelism: cfg.Parallelism,
		IngressWriters:     2,
		SimulateLatency:    cfg.Simulate,
		LatencyScale:       cfg.Scale,
		Seed:               7,
		ReadBatchRecords:   readBatch,
	})
	defer cluster.Close()

	topo, err := nexmark.BuildOpts(8, nexmark.Options{PerUpdateWindows: true})
	if err != nil {
		return nil, err
	}
	app, err := cluster.Run(topo)
	if err != nil {
		return nil, err
	}
	defer app.Stop()
	mgr := app.Manager()
	mgr.SetTimeouts(300*time.Millisecond, 50*time.Millisecond)

	// The sink watches for the first output that lands after the kill.
	// The pipeline is drained before the kill, so any record observed
	// after it is fresh post-recovery output.
	var killedAt, firstOut atomic.Int64
	app.Sink(nexmark.OutputStream(8), false, func(_ impeller.Record, _ impeller.TaskID, now time.Time) {
		if killedAt.Load() == 0 {
			return
		}
		firstOut.CompareAndSwap(0, now.UnixNano())
	})

	// Build phase: offer load until the change log is deep enough.
	gen := nexmark.NewGenerator(11)
	perTick := cfg.Rate / 100 // 10 ms ticks
	if perTick == 0 {
		perTick = 1
	}
	seq := 0
	send := func(n int) error {
		for i := 0; i < n; i++ {
			now := time.Now().UnixMicro()
			ev := gen.Next(now)
			seq++
			if err := app.Send(nexmark.EventStream, []byte(fmt.Sprint(seq)), ev.Payload, now); err != nil {
				return err
			}
		}
		return nil
	}
	buildDeadline := time.Now().Add(cfg.BuildTimeout)
	for app.Metrics().ChangeRecords < uint64(depth) {
		if time.Now().After(buildDeadline) {
			return nil, fmt.Errorf("bench: change log reached only %d/%d records in %v",
				app.Metrics().ChangeRecords, depth, cfg.BuildTimeout)
		}
		if err := send(perTick); err != nil {
			return nil, err
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Drain: let in-flight work commit and the sink catch up, so the
	// TTFO observation below cannot be satisfied by pre-kill output.
	time.Sleep(600 * time.Millisecond)

	before := app.Metrics()
	p := &RecoveryPoint{Depth: depth, ChangeDepth: before.ChangeRecords}
	if readBatch == 1 {
		p.Mode, p.ReadBatch = "per-record", 1
	} else {
		p.Mode, p.ReadBatch = "batched", 64
	}

	killedAt.Store(time.Now().UnixNano())
	mgr.KillAll()

	// Trickle load during recovery so the restarted query has fresh
	// input to turn into the first post-recovery output.
	trickleDone := make(chan struct{})
	defer close(trickleDone)
	go func() {
		for firstOut.Load() == 0 {
			select {
			case <-trickleDone:
				return
			default:
			}
			_ = send(20)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Wait for every task to restart, then for the first fresh output.
	waitDeadline := time.Now().Add(120 * time.Second)
	for {
		allRestarted := true
		for _, id := range mgr.TaskIDs() {
			if mgr.Restarts(id) == 0 {
				allRestarted = false
				break
			}
		}
		if allRestarted {
			break
		}
		if time.Now().After(waitDeadline) {
			return nil, fmt.Errorf("bench: tasks never restarted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	for firstOut.Load() == 0 {
		if time.Now().After(waitDeadline) {
			return nil, fmt.Errorf("bench: no output after recovery")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Let recovery counters settle (RecoveryNanos stores on completion).
	time.Sleep(300 * time.Millisecond)

	after := app.Metrics()
	p.RoundTrips = after.RecoveryBatchReads - before.RecoveryBatchReads
	p.ReplayRecords = after.RecoveryBatchReadsRecords - before.RecoveryBatchReadsRecords
	p.Replayed = after.RecoveredChanges - before.RecoveredChanges
	for _, id := range mgr.TaskIDs() {
		if m := mgr.TaskMetrics(id); m != nil {
			if d := time.Duration(m.RecoveryNanos.Load()); d > p.Recovery {
				p.Recovery = d
			}
		}
	}
	p.TTFO = time.Duration(firstOut.Load() - killedAt.Load())
	return p, nil
}

// PrintRecovery renders the points with the per-record/batched
// round-trip ratio per depth.
func PrintRecovery(w io.Writer, points []RecoveryPoint) {
	fmt.Fprintln(w, "Recovery: change-log replay round trips, per-record vs batched cursor reads (NEXMark Q8)")
	fmt.Fprintf(w, "%-8s | %-10s | %-10s | %-12s | %-9s | %-10s | %-10s\n",
		"depth", "mode", "roundtrips", "replay-recs", "replayed", "recovery", "ttfo")
	perRecord := map[int]uint64{}
	for _, p := range points {
		fmt.Fprintf(w, "%-8d | %-10s | %-10d | %-12d | %-9d | %-10v | %-10v\n",
			p.Depth, p.Mode, p.RoundTrips, p.ReplayRecords, p.Replayed,
			p.Recovery.Round(time.Millisecond), p.TTFO.Round(time.Millisecond))
		if p.Mode == "per-record" {
			perRecord[p.Depth] = p.RoundTrips
		} else if base := perRecord[p.Depth]; base > 0 && p.RoundTrips > 0 {
			fmt.Fprintf(w, "%-8s   round-trip reduction at depth %d: %.1fx\n",
				"", p.Depth, float64(base)/float64(p.RoundTrips))
		}
	}
}
