package bench

import (
	"fmt"
	"io"
	"time"

	"impeller"
)

// The checkpointing crossover (paper §5.3.3): aligned checkpoints are
// competitive while state is small, but "create performance problems as
// soon as their size is non-trivial". Short sweeps keep state small, so
// this experiment runs one stateful query long enough for state to grow
// and compares aligned checkpoints against progress marking on
// delivered throughput and tail latency.

// CrossoverConfig configures the state-growth experiment.
type CrossoverConfig struct {
	// Query defaults to 6 (per-seller running state grows steadily).
	Query int
	// Rate defaults to 12000 events/s.
	Rate int
	// Duration defaults to 20 s — long enough for checkpoint size to
	// dominate the aligned protocol.
	Duration time.Duration
	Simulate bool
	Scale    float64
}

func (c CrossoverConfig) withDefaults() CrossoverConfig {
	if c.Query == 0 {
		c.Query = 6
	}
	if c.Rate == 0 {
		c.Rate = 12000
	}
	if c.Duration <= 0 {
		c.Duration = 20 * time.Second
	}
	return c
}

// CrossoverResult holds both protocols' long-run measurements.
type CrossoverResult struct {
	Config  CrossoverConfig
	Marker  *RunResult
	Aligned *RunResult
}

// RunCrossover measures the long-run comparison.
func RunCrossover(cfg CrossoverConfig, progress io.Writer) (*CrossoverResult, error) {
	cfg = cfg.withDefaults()
	out := &CrossoverResult{Config: cfg}
	for _, proto := range []impeller.Protocol{impeller.ProgressMarker, impeller.AlignedCheckpoint} {
		res, err := RunNexmark(RunConfig{
			Query:           cfg.Query,
			Protocol:        proto,
			Rate:            cfg.Rate,
			Duration:        cfg.Duration,
			Warmup:          cfg.Duration / 2,
			SimulateLatency: cfg.Simulate,
			LatencyScale:    cfg.Scale,
		})
		if err != nil {
			return nil, err
		}
		if proto == impeller.ProgressMarker {
			out.Marker = res
		} else {
			out.Aligned = res
		}
		if progress != nil {
			fmt.Fprintf(progress, "  %s\n", res)
		}
	}
	return out, nil
}

// PrintCrossover renders the comparison.
func PrintCrossover(w io.Writer, r *CrossoverResult) {
	fmt.Fprintf(w, "Checkpointing crossover (paper §5.3.3): Q%d @ %d events/s for %v\n",
		r.Config.Query, r.Config.Rate, r.Config.Duration)
	fmt.Fprintf(w, "%-20s %-12s %-12s %-12s\n", "protocol", "p50", "p99", "results")
	for _, p := range []*RunResult{r.Marker, r.Aligned} {
		fmt.Fprintf(w, "%-20s %-12v %-12v %-12d\n",
			p.Config.Protocol, p.P50.Round(time.Millisecond), p.P99.Round(time.Millisecond), p.Received)
	}
	if r.Aligned.Received > 0 {
		fmt.Fprintf(w, "progress marking delivered %.1fx the results of aligned checkpointing\n",
			float64(r.Marker.Received)/float64(r.Aligned.Received))
	}
}
