package bench

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"time"

	"impeller"
	"impeller/internal/chaos"
)

// Tail-latency comparison (-exp tail): the cooperative tasklet engine
// against the goroutine-per-task engine at increasing task density.
// The goroutine engine pays the runtime scheduler for every blocked
// read and flush wakeup; the tasklet engine multiplexes all operator
// work onto one pinned event loop per core, so its deep tail (p99.9,
// p99.99) should hold as tasks per core grow while the goroutine
// engine's degrades under scheduler churn.

// TailConfig configures the density sweep.
type TailConfig struct {
	// Query and Rate fix the workload (default Q1 at 3000 events/s —
	// stateless, so the engines' scheduling is the dominant cost).
	Query int
	Rate  int
	// TasksPerCore are the density points; Parallelism at each point is
	// TasksPerCore × GOMAXPROCS (default 1, 2, 4, 8).
	TasksPerCore []int
	Duration     time.Duration
	Simulate     bool
	Scale        float64
}

func (c TailConfig) withDefaults() TailConfig {
	if c.Query == 0 {
		c.Query = 1
	}
	if c.Rate == 0 {
		c.Rate = 3000
	}
	if len(c.TasksPerCore) == 0 {
		c.TasksPerCore = []int{1, 2, 4, 8}
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	return c
}

// TailPoint is one (density, engine) measurement.
type TailPoint struct {
	Engine       impeller.EngineMode
	TasksPerCore int
	Parallelism  int
	Point        *RunResult
}

// RunTail sweeps task density for both engines at a fixed workload.
// A short discarded warm-up run precedes the sweep: the first cluster
// run in a process otherwise absorbs one-time costs (heap growth, GC
// ramp, page faults) that land straight in the first cell's p99.9.
func RunTail(cfg TailConfig, progress io.Writer) ([]TailPoint, error) {
	cfg = cfg.withDefaults()
	cores := runtime.GOMAXPROCS(0)
	if _, err := RunNexmark(RunConfig{
		Query: cfg.Query, Protocol: impeller.ProgressMarker, Rate: cfg.Rate,
		Duration: time.Second, Parallelism: cores,
		SimulateLatency: cfg.Simulate, LatencyScale: cfg.Scale,
	}); err != nil {
		return nil, fmt.Errorf("warm-up: %w", err)
	}
	var out []TailPoint
	for _, tpc := range cfg.TasksPerCore {
		for _, engine := range []impeller.EngineMode{impeller.EngineGoroutine, impeller.EngineTasklet} {
			res, err := RunNexmark(RunConfig{
				Query:           cfg.Query,
				Protocol:        impeller.ProgressMarker,
				Rate:            cfg.Rate,
				Duration:        cfg.Duration,
				Parallelism:     tpc * cores,
				SimulateLatency: cfg.Simulate,
				LatencyScale:    cfg.Scale,
				Engine:          engine,
			})
			if err != nil {
				return nil, err
			}
			pt := TailPoint{Engine: engine, TasksPerCore: tpc, Parallelism: tpc * cores, Point: res}
			out = append(out, pt)
			if progress != nil {
				fmt.Fprintf(progress, "  %-9s tasks/core=%-3d p50=%-10v p99=%-10v p99.9=%-10v p99.99=%v\n",
					engine, tpc,
					res.P50.Round(100*time.Microsecond), res.P99.Round(100*time.Microsecond),
					res.P999.Round(100*time.Microsecond), res.P9999.Round(100*time.Microsecond))
			}
		}
	}
	return out, nil
}

// PrintTail renders the sweep with per-density goroutine/tasklet tail
// ratios (>1 means the tasklet engine's tail is shorter).
func PrintTail(w io.Writer, cfg TailConfig, points []TailPoint) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Tail latency: goroutine vs tasklet engine (Q%d @ %d events/s, %d core(s))\n",
		cfg.Query, cfg.Rate, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-10s %-7s %-5s %-10s %-10s %-10s %-10s %-8s\n",
		"engine", "t/core", "tasks", "p50", "p99", "p99.9", "p99.99", "recv")
	for _, p := range points {
		r := p.Point
		fmt.Fprintf(w, "%-10s %-7d %-5d %-10v %-10v %-10v %-10v %-8d\n",
			p.Engine, p.TasksPerCore, p.Parallelism,
			r.P50.Round(100*time.Microsecond), r.P99.Round(100*time.Microsecond),
			r.P999.Round(100*time.Microsecond), r.P9999.Round(100*time.Microsecond),
			r.Received)
	}
	fmt.Fprintf(w, "%-10s %-18s %-18s\n", "t/core", "p99.9 go/tasklet", "p99.99 go/tasklet")
	byDensity := map[int][2]*RunResult{}
	for _, p := range points {
		pair := byDensity[p.TasksPerCore]
		pair[p.Engine] = p.Point
		byDensity[p.TasksPerCore] = pair
	}
	for _, tpc := range cfg.TasksPerCore {
		pair := byDensity[tpc]
		g, t := pair[impeller.EngineGoroutine], pair[impeller.EngineTasklet]
		if g == nil || t == nil {
			continue
		}
		fmt.Fprintf(w, "%-10d %-18.2f %-18.2f\n", tpc, ratio(g.P999, t.P999), ratio(g.P9999, t.P9999))
	}
}

// WriteTailCSV exports the density sweep.
func WriteTailCSV(w io.Writer, points []TailPoint) error {
	var out [][]string
	for _, p := range points {
		r := p.Point
		out = append(out, []string{
			p.Engine.String(),
			strconv.Itoa(p.TasksPerCore),
			strconv.Itoa(p.Parallelism),
			strconv.Itoa(r.Config.Rate),
			us(r.P50), us(r.P99), us(r.P999), us(r.P9999), us(r.Mean),
			strconv.FormatUint(r.Received, 10),
		})
	}
	return writeCSV(w,
		[]string{"engine", "tasks_per_core", "tasks", "rate_eps",
			"p50_us", "p99_us", "p999_us", "p9999_us", "mean_us", "received"},
		out)
}

// SmokeRow is one engine's smoke outcome.
type SmokeRow struct {
	Engine    impeller.EngineMode
	Delivered uint64
	Elapsed   time.Duration
}

// RunTaskletSmoke runs one short, fully deterministic NEXMark pipeline
// end to end on each engine — seeded inputs, no faults — and verifies
// both against the chaos oracle's expected output set. The oracle check
// is value-exact, so two converged runs imply identical outputs; on top
// of that the distinct delivered counts must match, or the engines have
// diverged.
func RunTaskletSmoke(query int, progress io.Writer) ([]SmokeRow, error) {
	if query == 0 {
		query = 1
	}
	var rows []SmokeRow
	for _, engine := range []impeller.EngineMode{impeller.EngineGoroutine, impeller.EngineTasklet} {
		res, err := chaos.Run(chaos.Config{
			Query: query, Protocol: impeller.ProgressMarker, Seed: 7, Engine: engine,
			InfraFaults: -1, Kills: -1, Zombies: -1, NodeCrashes: -1,
			SinkKills: -1, ConsumerFaults: -1,
		})
		if err != nil {
			return nil, fmt.Errorf("tasklet-smoke: %v engine: %w", engine, err)
		}
		if res.Violation != "" {
			return nil, fmt.Errorf("tasklet-smoke: %v engine: exactly-once violation: %s", engine, res.Violation)
		}
		if !res.Converged {
			return nil, fmt.Errorf("tasklet-smoke: %v engine: output never converged (delivered %d)", engine, res.Delivered)
		}
		rows = append(rows, SmokeRow{Engine: engine, Delivered: res.Delivered, Elapsed: res.Elapsed})
		if progress != nil {
			fmt.Fprintf(progress, "  %s\n", res)
		}
	}
	if rows[0].Delivered != rows[1].Delivered {
		return rows, fmt.Errorf("tasklet-smoke: engines diverged: goroutine delivered %d records, tasklet %d",
			rows[0].Delivered, rows[1].Delivered)
	}
	return rows, nil
}

// PrintSmoke renders the smoke outcome.
func PrintSmoke(w io.Writer, query int, rows []SmokeRow) {
	if query == 0 {
		query = 1
	}
	fmt.Fprintf(w, "Tasklet smoke: Q%d end to end on both engines, oracle-verified\n", query)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s delivered=%-6d elapsed=%v\n",
			r.Engine, r.Delivered, r.Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintln(w, "  no divergence: both engines converged to the oracle's expected output")
}
