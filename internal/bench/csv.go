package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV exports for the experiment runners, so sweeps can be plotted with
// external tooling. One row per measured point; durations in
// microseconds.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func us(d time.Duration) string {
	return strconv.FormatInt(d.Microseconds(), 10)
}

// WriteTable2CSV exports Table 2 rows.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.Rate),
			us(r.BokiP50), us(r.BokiP99),
			us(r.KafkaP50), us(r.KafkaP99),
			fmt.Sprintf("%.3f", r.SlowdownP50), fmt.Sprintf("%.3f", r.SlowdownP99),
			strconv.FormatUint(r.BokiLog.Appends, 10),
			strconv.FormatUint(r.BokiLog.ReaderWakeups, 10),
			strconv.FormatUint(r.BokiLog.UsefulWakeups, 10),
		})
	}
	return writeCSV(w,
		[]string{"rate_aps", "boki_p50_us", "boki_p99_us", "kafka_p50_us", "kafka_p99_us", "slowdown_p50", "slowdown_p99",
			"boki_appends", "boki_wakeups", "boki_useful_wakeups"},
		out)
}

// WriteFig7CSV exports latency-vs-throughput series (Figures 7 and 9).
func WriteFig7CSV(w io.Writer, series []*Fig7Series) error {
	var out [][]string
	for _, s := range series {
		for _, p := range s.Points {
			out = append(out, []string{
				strconv.Itoa(s.Query),
				s.Protocol.String(),
				strconv.Itoa(p.Config.Rate),
				us(p.P50), us(p.P99), us(p.P999), us(p.P9999), us(p.Mean),
				strconv.FormatUint(p.Sent, 10),
				strconv.FormatUint(p.Received, 10),
				strconv.FormatUint(p.Log.Appends, 10),
				strconv.FormatUint(p.Log.ReadNext+p.Log.ReadNextAny+p.Log.ReadExact+p.Log.ReadPrev, 10),
				strconv.FormatUint(p.Log.CacheHits, 10),
				strconv.FormatUint(p.Log.CacheMisses, 10),
				strconv.FormatUint(p.Log.SequencerCuts, 10),
				fmt.Sprintf("%.2f", p.Log.MeanCutBatch),
				strconv.Itoa(p.Log.OrderingShards),
				fmt.Sprintf("%.3f", p.Log.CutSkew),
				strconv.FormatUint(p.Log.ReaderWakeups, 10),
				strconv.FormatUint(p.Log.UsefulWakeups, 10),
				strconv.FormatUint(p.Log.BatchAppends, 10),
				fmt.Sprintf("%.2f", p.Log.MeanAppendBatch),
				strconv.FormatUint(p.Metrics.BatchStalls, 10),
				strconv.FormatUint(p.Metrics.CursorOpens, 10),
				strconv.FormatUint(p.Metrics.CursorBatchReads, 10),
				strconv.FormatUint(p.Metrics.CursorRecords, 10),
				strconv.FormatUint(p.Metrics.CursorPrefetchHits, 10),
				strconv.FormatUint(p.Metrics.CursorPrefetchMisses, 10),
				strconv.FormatUint(p.Metrics.CursorInvalidations, 10),
				strconv.FormatUint(p.Delivery.Attempts, 10),
				strconv.FormatUint(p.Delivery.Redelivered, 10),
				strconv.FormatUint(p.Delivery.PermanentFailures, 10),
				strconv.FormatUint(p.Delivery.DeadLettered, 10),
				strconv.FormatUint(p.Log.WALBytes, 10),
				strconv.FormatUint(p.Log.WALFlushes, 10),
				strconv.FormatUint(p.Log.RecoveredRecords, 10),
				strconv.FormatUint(p.Log.WALTruncations, 10),
				strconv.FormatUint(p.AssignEpochs, 10),
			})
		}
	}
	return writeCSV(w,
		[]string{"query", "protocol", "rate_eps", "p50_us", "p99_us", "p999_us", "p9999_us", "mean_us", "sent", "received",
			"log_appends", "log_reads", "cache_hits", "cache_misses",
			"seq_cuts", "mean_cut_batch", "ordering_shards", "cut_skew", "wakeups", "useful_wakeups",
			"batch_appends", "mean_append_batch", "batch_stalls",
			"cursor_opens", "cursor_batch_reads", "cursor_records",
			"cursor_prefetch_hits", "cursor_prefetch_misses", "cursor_invalidations",
			"delivery_attempts", "delivery_redelivered", "delivery_permanent_failures", "delivery_dead_lettered",
			"wal_bytes", "wal_flushes", "recovered_records", "wal_truncations",
			"assign_epochs"},
		out)
}

// WriteFig8CSV exports the commit-interval sweep.
func WriteFig8CSV(w io.Writer, q int, points []Fig8Point) error {
	var out [][]string
	for _, p := range points {
		out = append(out, []string{
			strconv.Itoa(q),
			us(p.Interval),
			us(p.Marker.P50), us(p.Marker.P99),
			us(p.Txn.P50), us(p.Txn.P99),
		})
	}
	return writeCSV(w,
		[]string{"query", "commit_interval_us", "marker_p50_us", "marker_p99_us", "txn_p50_us", "txn_p99_us"},
		out)
}

// WriteTable4CSV exports the recovery experiment.
func WriteTable4CSV(w io.Writer, rows []Table4Row) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.Rate),
			us(r.BaselineRecovery), strconv.FormatUint(r.BaselineReplayed, 10),
			us(r.CheckpointRecovery), strconv.FormatUint(r.CheckpointReplayed, 10),
			fmt.Sprintf("%.2f", r.Speedup()),
		})
	}
	return writeCSV(w,
		[]string{"rate_eps", "baseline_recovery_us", "baseline_replayed", "ckpt_recovery_us", "ckpt_replayed", "speedup"},
		out)
}

// WriteRecoveryCSV exports the streaming-read-plane recovery experiment
// (-exp recovery): one row per (depth, read-mode) point.
func WriteRecoveryCSV(w io.Writer, points []RecoveryPoint) error {
	var out [][]string
	for _, p := range points {
		out = append(out, []string{
			strconv.Itoa(p.Depth),
			strconv.FormatUint(p.ChangeDepth, 10),
			p.Mode,
			strconv.Itoa(p.ReadBatch),
			strconv.FormatUint(p.RoundTrips, 10),
			strconv.FormatUint(p.ReplayRecords, 10),
			strconv.FormatUint(p.Replayed, 10),
			us(p.Recovery),
			us(p.TTFO),
		})
	}
	return writeCSV(w,
		[]string{"depth", "change_records", "mode", "read_batch", "replay_roundtrips",
			"replay_records", "replayed_changes", "recovery_us", "ttfo_us"},
		out)
}

// WriteDurabilityCSV exports the durability experiment, distinguished
// by the phase column: overhead rows leave the depth columns empty and
// recovery rows leave the latency columns empty.
func WriteDurabilityCSV(w io.Writer, res *DurabilityResult) error {
	u64 := func(v uint64) string { return strconv.FormatUint(v, 10) }
	var out [][]string
	for _, p := range []*RunResult{res.Off, res.On} {
		if p == nil {
			continue
		}
		out = append(out, []string{
			"overhead", strconv.FormatBool(p.Config.Durable),
			strconv.Itoa(p.Config.Query), strconv.Itoa(p.Config.Rate),
			us(p.P50), us(p.P99), us(p.Mean),
			u64(p.Sent), u64(p.Received),
			u64(p.Log.WALBytes), u64(p.Log.WALAppends), u64(p.Log.WALFlushes),
			"", "", "", "", "",
		})
	}
	for _, p := range res.Recovery {
		out = append(out, []string{
			"recovery", "true", "", "",
			"", "", "",
			"", "",
			u64(p.WALBytes), "", "",
			strconv.Itoa(p.Depth), u64(p.Records), u64(p.MetaOps),
			us(p.Recovery), fmt.Sprintf("%.2f", p.MBPerSec),
		})
	}
	return writeCSV(w,
		[]string{"phase", "durable", "query", "rate_eps",
			"p50_us", "p99_us", "mean_us", "sent", "received",
			"wal_bytes", "wal_appends", "wal_flushes",
			"depth", "recovered_records", "recovered_metaops",
			"recovery_us", "replay_mb_s"},
		out)
}

// WriteRescaleCSV exports the step-load rescale experiment: one row per
// goodput bucket, stamped with the slot count and assignment epoch in
// force, plus a final summary row (empty bucket columns).
func WriteRescaleCSV(w io.Writer, r *RescaleBenchResult) error {
	u64 := func(v uint64) string { return strconv.FormatUint(v, 10) }
	var out [][]string
	for _, b := range r.Timeline {
		out = append(out, []string{
			"bucket", strconv.FormatInt(b.Start.Milliseconds(), 10),
			strconv.Itoa(b.Slots), u64(b.Epoch),
			u64(b.Delivered), fmt.Sprintf("%.1f", b.Goodput(r.Config.Bucket)),
			"", "", "", "", "", "",
		})
	}
	out = append(out, []string{
		"summary", strconv.FormatInt(r.StepAt.Milliseconds(), 10),
		strconv.Itoa(2 * r.Config.Parallelism), u64(r.Epoch),
		u64(r.Delivered), "",
		us(r.RescaleWall),
		fmt.Sprintf("%.1f", r.SteadyBefore), fmt.Sprintf("%.1f", r.SteadyAfter),
		fmt.Sprintf("%.3f", r.DipDepth),
		strconv.FormatInt(r.DipDuration.Milliseconds(), 10),
		strconv.FormatInt(r.Recovery.Milliseconds(), 10),
	})
	return writeCSV(w,
		[]string{"row", "t_ms", "slots", "assign_epoch", "delivered", "goodput_eps",
			"rescale_wall_us", "steady_before_eps", "steady_after_eps",
			"dip_depth", "dip_under90_ms", "recovery_ms"},
		out)
}
