package bench

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"impeller"
	"impeller/internal/chaos"
)

// Egress experiment (-exp egress): the transactional egress layer's two
// costs, per fault-tolerance protocol.
//
//   - Delivered-record latency: the same NEXMark run as Figure 7, but
//     measured at the external consumer's acknowledgment instead of the
//     output operator's emission. The gap to the emission-time numbers
//     is the price of exactly-once at the system boundary: the commit
//     wait (a record is deliverable only once its marker / transaction
//     commit lands) plus the delivery window.
//   - Recovery to first delivery: a chaos run with the full egress
//     fault plane — hard sink kills mid-delivery, consumer outages,
//     lost acks — reporting how long after each kill the replacement
//     sink, resuming from the persisted ack frontier, got its first
//     record acknowledged, and whether the oracle still verified
//     exactly-once at the consumer.

// EgressConfig configures the egress experiment.
type EgressConfig struct {
	// Query is the NEXMark query (default 1; must be 1, 11, or 12 so
	// the chaos phase has an oracle).
	Query int
	// Protocols are the fault-tolerance protocols (default all three).
	Protocols []impeller.Protocol
	// Rate is the offered load for the latency phase (default 3000).
	Rate int
	// Duration is the latency phase's measurement window.
	Duration time.Duration
	// Seeds select the chaos phase's fault schedules (default 7, 21).
	Seeds []uint64
	// Simulate / Scale mirror the other experiments.
	Simulate bool
	Scale    float64
}

func (c EgressConfig) withDefaults() EgressConfig {
	if c.Query == 0 {
		c.Query = 1
	}
	if len(c.Protocols) == 0 {
		c.Protocols = []impeller.Protocol{impeller.ProgressMarker, impeller.KafkaTxn, impeller.AlignedCheckpoint}
	}
	if c.Rate <= 0 {
		c.Rate = 3000
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{7, 21}
	}
	return c
}

// EgressResult is the experiment's outcome: one latency point per
// protocol and one chaos row per (protocol, seed).
type EgressResult struct {
	Config  EgressConfig
	Latency []*RunResult
	Chaos   []*chaos.Result
}

// RunEgress executes both phases sequentially.
func RunEgress(cfg EgressConfig, progress io.Writer) (*EgressResult, error) {
	cfg = cfg.withDefaults()
	res := &EgressResult{Config: cfg}
	for _, proto := range cfg.Protocols {
		point, err := RunNexmark(RunConfig{
			Query:           cfg.Query,
			Protocol:        proto,
			Rate:            cfg.Rate,
			Duration:        cfg.Duration,
			SimulateLatency: cfg.Simulate,
			LatencyScale:    cfg.Scale,
			Egress:          true,
		})
		if err != nil {
			return res, err
		}
		if progress != nil {
			fmt.Fprintln(progress, point)
		}
		res.Latency = append(res.Latency, point)
	}
	for _, proto := range cfg.Protocols {
		for _, seed := range cfg.Seeds {
			row, err := chaos.Run(chaos.Config{Query: cfg.Query, Protocol: proto, Seed: seed})
			if err != nil {
				return res, err
			}
			if progress != nil {
				fmt.Fprintln(progress, row)
			}
			res.Chaos = append(res.Chaos, row)
		}
	}
	return res, nil
}

// PrintEgress renders both phases.
func PrintEgress(w io.Writer, res *EgressResult) {
	fmt.Fprintf(w, "Egress: delivered-record latency, q%d at %d events/s (consumer-ack measurement point)\n", res.Config.Query, res.Config.Rate)
	fmt.Fprintln(w, "protocol            p50         p99         delivered  attempts  redelivered  frontier-persists")
	for _, p := range res.Latency {
		d := p.Delivery
		fmt.Fprintf(w, "%-19s %-11v %-11v %-10d %-9d %-12d %d\n",
			p.Config.Protocol, p.P50.Round(100*time.Microsecond), p.P99.Round(100*time.Microsecond),
			d.Delivered, d.Attempts, d.Redelivered, d.FrontierPersists)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Egress: recovery to first delivery under sink kills + consumer faults (chaos-verified)")
	fmt.Fprintln(w, "protocol            seed  faults  sinks  delivered  redeliv  deduped  acks-lost  dead  recover-to-deliver  invariant")
	for _, r := range res.Chaos {
		status := "pass"
		if r.Violation != "" {
			status = "VIOLATED: " + r.Violation
		} else if !r.Converged {
			status = "stuck (no convergence)"
		}
		fmt.Fprintf(w, "%-19s %-5d %-7d %-6d %-10d %-8d %-8d %-10d %-5d %-19v %s\n",
			r.Config.Protocol, r.Config.Seed, r.Plan.Faults, r.SinkIncarnations,
			r.Delivered, r.Delivery.Redelivered, r.ConsumerDeduped, r.ConsumerAcksLost,
			r.Delivery.DeadLettered, r.RecoverToDeliver.Round(100*time.Microsecond), status)
	}
}

// WriteEgressCSV exports both phases, distinguished by the phase
// column: latency rows leave the chaos columns empty and vice versa.
func WriteEgressCSV(w io.Writer, res *EgressResult) error {
	u64 := func(v uint64) string { return strconv.FormatUint(v, 10) }
	var out [][]string
	for _, p := range res.Latency {
		d := p.Delivery
		out = append(out, []string{
			"latency", strconv.Itoa(p.Config.Query), p.Config.Protocol.String(), strconv.Itoa(p.Config.Rate), "",
			us(p.P50), us(p.P99), us(p.Mean),
			u64(d.Delivered), u64(d.Attempts), u64(d.Redelivered), u64(d.TransientErrors),
			u64(d.PermanentFailures), u64(d.DeadLettered), u64(d.FrontierPersists),
			"", "", "", "", "",
			u64(p.Log.WALBytes), u64(p.Log.WALFlushes), u64(p.Log.RecoveredRecords), u64(p.Log.WALTruncations),
		})
	}
	for _, r := range res.Chaos {
		d := r.Delivery
		out = append(out, []string{
			"chaos", strconv.Itoa(r.Config.Query), r.Config.Protocol.String(), "", strconv.FormatUint(r.Config.Seed, 10),
			"", "", "",
			u64(r.Delivered), u64(d.Attempts), u64(d.Redelivered), u64(d.TransientErrors),
			u64(d.PermanentFailures), u64(d.DeadLettered), u64(d.FrontierPersists),
			strconv.Itoa(r.SinkIncarnations), u64(r.ConsumerDeduped), u64(r.ConsumerAcksLost),
			us(r.RecoverToDeliver), strconv.FormatBool(r.Converged && r.Violation == ""),
			"", "", "", "",
		})
	}
	return writeCSV(w,
		[]string{"phase", "query", "protocol", "rate_eps", "seed",
			"p50_us", "p99_us", "mean_us",
			"delivered", "attempts", "redelivered", "transient_errors",
			"permanent_failures", "dead_lettered", "frontier_persists",
			"sink_incarnations", "consumer_deduped", "acks_lost",
			"recover_to_deliver_us", "exactly_once",
			"wal_bytes", "wal_flushes", "recovered_records", "wal_truncations"},
		out)
}
