// Package bench is the experiment harness reproducing the paper's
// evaluation (§5): the log-level latency comparison (Table 2), the
// NEXMark latency/throughput sweeps (Figures 7–9), and the failure
// recovery measurement (Table 4).
package bench

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Hist is a log-bucketed latency histogram (HDR-style): ~5% relative
// resolution from 1 µs to ~100 s, constant memory, safe for concurrent
// use.
type Hist struct {
	mu      sync.Mutex
	buckets [nBuckets]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	nBuckets = 400
	// growth chosen so bucket(100s) < nBuckets: 1µs * 1.05^400 ≈ 3e8 µs.
	growth = 1.05
)

var bucketFloor [nBuckets]time.Duration

func init() {
	v := 1.0 // µs
	for i := range bucketFloor {
		bucketFloor[i] = time.Duration(v) * time.Microsecond
		v *= growth
	}
}

func bucketOf(d time.Duration) int {
	us := float64(d) / float64(time.Microsecond)
	if us < 1 {
		return 0
	}
	b := int(math.Log(us) / math.Log(growth))
	if b >= nBuckets {
		return nBuckets - 1
	}
	return b
}

// Record adds one latency sample; negative samples clamp to zero.
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Hist) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average sample.
func (h *Hist) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest sample.
func (h *Hist) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the approximate p-th percentile (p in [0, 100]).
func (h *Hist) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			if i == 0 {
				return h.min
			}
			return bucketFloor[i]
		}
	}
	return h.max
}

// Reset clears all samples.
func (h *Hist) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets = [nBuckets]uint64{}
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

// Summary renders count/p50/p99/p99.9 in a compact form.
func (h *Hist) Summary() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p99.9=%v max=%v",
		h.Count(), h.Percentile(50).Round(10*time.Microsecond),
		h.Percentile(99).Round(10*time.Microsecond),
		h.Percentile(99.9).Round(10*time.Microsecond),
		h.Max().Round(10*time.Microsecond))
}
