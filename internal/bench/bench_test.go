package bench

import (
	"bytes"
	"testing"
	"time"

	"impeller"
)

func TestHistPercentiles(t *testing.T) {
	h := &Hist{}
	if h.Percentile(50) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Percentile(50)
	if p50 < 450*time.Millisecond || p50 > 550*time.Millisecond {
		t.Fatalf("p50 = %v, want ~500ms", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 900*time.Millisecond || p99 > 1100*time.Millisecond {
		t.Fatalf("p99 = %v, want ~990ms", p99)
	}
	if h.Max() != time.Second {
		t.Fatalf("max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 480*time.Millisecond || mean > 520*time.Millisecond {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistNegativeClampsAndReset(t *testing.T) {
	h := &Hist{}
	h.Record(-5 * time.Millisecond)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative sample handling: count=%d max=%v", h.Count(), h.Max())
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistResolution(t *testing.T) {
	h := &Hist{}
	h.Record(2500 * time.Microsecond)
	got := h.Percentile(50)
	// ~5% bucket resolution around the sample.
	if got < 2300*time.Microsecond || got > 2700*time.Microsecond {
		t.Fatalf("p50 = %v, want ~2.5ms", got)
	}
	if h.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestRunNexmarkSmoke(t *testing.T) {
	// Tiny, zero-latency run of a stateless and a stateful query to
	// validate the measurement plumbing.
	for _, q := range []int{1, 5} {
		res, err := RunNexmark(RunConfig{
			Query:      q,
			Protocol:   impeller.ProgressMarker,
			Rate:       2000,
			Duration:   700 * time.Millisecond,
			Warmup:     100 * time.Millisecond,
			Generators: 2,
		})
		if err != nil {
			t.Fatalf("q%d: %v", q, err)
		}
		if res.Sent == 0 {
			t.Fatalf("q%d: nothing sent", q)
		}
		if res.Received == 0 {
			t.Fatalf("q%d: nothing received", q)
		}
		if res.P50 <= 0 {
			t.Fatalf("q%d: p50 = %v", q, res.P50)
		}
		if res.Metrics.Markers == 0 {
			t.Fatalf("q%d: no progress markers written", q)
		}
		if res.String() == "" {
			t.Fatal("empty result string")
		}
	}
}

func TestRunNexmarkProtocols(t *testing.T) {
	for _, proto := range []impeller.Protocol{impeller.KafkaTxn, impeller.AlignedCheckpoint, impeller.Unsafe} {
		res, err := RunNexmark(RunConfig{
			Query:      2,
			Protocol:   proto,
			Rate:       2000,
			Duration:   600 * time.Millisecond,
			Warmup:     100 * time.Millisecond,
			Generators: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if res.Received == 0 {
			t.Fatalf("%v: nothing received", proto)
		}
	}
}

func TestRunTable2Smoke(t *testing.T) {
	rows, err := RunTable2(Table2Config{Rates: []int{200}, Duration: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.BokiP50 <= 0 || r.KafkaP50 <= 0 {
		t.Fatalf("empty measurements: %+v", r)
	}
	// Calibration shape (paper Table 2): Boki p50 slower than Kafka's.
	if r.SlowdownP50 < 1.0 {
		t.Fatalf("Boki p50 faster than Kafka (%.2fx); calibration broken", r.SlowdownP50)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table output")
	}
}

func TestRunFig8Smoke(t *testing.T) {
	points, err := RunFig8(Fig8Config{
		Query:     2,
		Rate:      1500,
		Intervals: []time.Duration{50 * time.Millisecond, 20 * time.Millisecond},
		Duration:  600 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Marker == nil || p.Txn == nil || p.Marker.Received == 0 || p.Txn.Received == 0 {
			t.Fatalf("incomplete point %+v", p)
		}
	}
	var buf bytes.Buffer
	PrintFig8(&buf, 2, points)
	if buf.Len() == 0 {
		t.Fatal("empty figure output")
	}
}

func TestRunTable4Smoke(t *testing.T) {
	rows, err := RunTable4(Table4Config{
		Rates:       []int{1500},
		RunFor:      1200 * time.Millisecond,
		Parallelism: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.BaselineRecovery <= 0 || r.CheckpointRecovery <= 0 {
		t.Fatalf("zero recovery times: %+v", r)
	}
	// The checkpointed configuration must replay (often far) fewer
	// change-log records than the full-replay baseline.
	if r.CheckpointReplayed >= r.BaselineReplayed {
		t.Fatalf("checkpoint replayed %d >= baseline %d", r.CheckpointReplayed, r.BaselineReplayed)
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table output")
	}
}

func TestRunCrossoverSmoke(t *testing.T) {
	res, err := RunCrossover(CrossoverConfig{
		Query:    6,
		Rate:     2000,
		Duration: 900 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Marker.Received == 0 || res.Aligned.Received == 0 {
		t.Fatalf("empty results: %+v", res)
	}
	var buf bytes.Buffer
	PrintCrossover(&buf, res)
	if buf.Len() == 0 {
		t.Fatal("empty output")
	}
}
