package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"impeller"
	"impeller/internal/core"
	"impeller/internal/nexmark"
	"impeller/internal/sharedlog"
	"impeller/internal/wal"
)

// RunConfig configures one NEXMark measurement run (one point of
// Figure 7/8/9).
type RunConfig struct {
	// Query selects the NEXMark query (1–8).
	Query int
	// Protocol selects the fault-tolerance protocol.
	Protocol impeller.Protocol
	// Rate is the offered input load in events/s.
	Rate int
	// Duration is how long the generators run.
	Duration time.Duration
	// Warmup discards latency samples recorded before it elapses.
	Warmup time.Duration
	// CommitInterval (default 100 ms) and SnapshotInterval (default 0)
	// follow the paper's settings.
	CommitInterval   time.Duration
	SnapshotInterval time.Duration
	// Parallelism is the per-stage task count (default 2).
	Parallelism int
	// Generators is the number of input generators (paper: 4).
	Generators int
	// FlushInterval is the generator batch flush (paper: 10 ms for
	// Q1–Q2, 100 ms for Q3–Q8; 0 selects by query).
	FlushInterval time.Duration
	// SimulateLatency charges calibrated log/coordinator latencies.
	SimulateLatency bool
	// LatencyScale scales simulated latencies (sub-real-time runs).
	LatencyScale float64
	// Seed fixes the generator and latency randomness.
	Seed uint64
	// BatchMaxRecords, BatchMaxBytes, BatchLinger, and BatchWindow tune
	// the batched dataplane; zero values select the engine defaults.
	// BatchMaxRecords: 1 disables coalescing (the ablation baseline).
	BatchMaxRecords int
	BatchMaxBytes   int
	BatchLinger     time.Duration
	BatchWindow     int
	// ReadBatchRecords tunes the streaming read plane; zero selects the
	// engine default (64 records per cursor fetch). 1 degenerates to
	// per-record reads with readahead disabled (the ablation baseline).
	ReadBatchRecords int
	// OrderingInterval runs the log in Scalog-style sequencer mode with
	// global cuts at that interval (0 keeps immediate ordering);
	// OrderingShards is the number of local sequencer shards appends are
	// routed across in that mode (0 means 1).
	OrderingInterval time.Duration
	OrderingShards   int
	// Egress routes output through the transactional delivery sink to
	// an in-process consumer and measures latency at the consumer's
	// acknowledgment instead of at emission — the delivered-record
	// latency, which includes the commit wait (records only become
	// deliverable once their progress marker lands).
	Egress bool
	// Engine selects the task execution engine (goroutine or tasklet).
	Engine impeller.EngineMode
	// Durable persists the shared log to a checksummed WAL device
	// (internal/wal): every committed cut is appended and flushed before
	// the append is acknowledged. Under SimulateLatency the flush is
	// charged at the calibrated device latency — the append-overhead
	// axis of -exp durability.
	Durable bool
}

func (c RunConfig) withDefaults() RunConfig {
	if c.CommitInterval <= 0 {
		c.CommitInterval = 100 * time.Millisecond
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 2
	}
	if c.Generators <= 0 {
		c.Generators = 4
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Duration / 4
	}
	if c.FlushInterval <= 0 {
		if c.Query <= 2 {
			c.FlushInterval = 10 * time.Millisecond
		} else {
			c.FlushInterval = 100 * time.Millisecond
		}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// RunResult is one measured point.
type RunResult struct {
	Config   RunConfig
	Sent     uint64
	Received uint64
	P50, P99 time.Duration
	// P999 and P9999 are the deep-tail quantiles (p99.9, p99.99) the
	// scheduler-jitter experiments target.
	P999, P9999 time.Duration
	Mean        time.Duration
	Metrics     core.QueryMetrics
	// Log snapshots the shared log's counters at the end of the run:
	// appends, reads by kind, cache traffic, sequencer cuts, and reader
	// wakeups (total vs useful — with per-tag waiters the ratio is ~1).
	Log sharedlog.Stats
	// Delivery snapshots the egress retry layer (attempts, redeliveries,
	// permanent failures, dead letters); zero unless Config.Egress.
	Delivery core.DeliveryStats
	// AssignEpochs sums the stages' committed assignment epochs at run
	// end — each stage starts at epoch 1, so any value above the stage
	// count means a live rescale happened during the run.
	AssignEpochs uint64
	Elapsed      time.Duration
}

// String renders the point like the paper's figures report it.
func (r *RunResult) String() string {
	return fmt.Sprintf("q%d %-18s rate=%-7d p50=%-10v p99=%-10v recv=%d",
		r.Config.Query, r.Config.Protocol, r.Config.Rate,
		r.P50.Round(100*time.Microsecond), r.P99.Round(100*time.Microsecond), r.Received)
}

// RunNexmark executes one measurement run: it builds the query, offers
// Rate events/s for Duration, and measures end-to-end event-time
// latency at the output operator's emission (paper §5.3: "the interval
// between the record's event-time, the time the event was generated,
// and its emission time from the output operator").
func RunNexmark(cfg RunConfig) (*RunResult, error) {
	cfg = cfg.withDefaults()
	clusterCfg := impeller.ClusterConfig{
		Protocol:             cfg.Protocol,
		CommitInterval:       cfg.CommitInterval,
		SnapshotInterval:     cfg.SnapshotInterval,
		DefaultParallelism:   cfg.Parallelism,
		IngressWriters:       cfg.Generators,
		IngressFlushInterval: cfg.FlushInterval,
		SimulateLatency:      cfg.SimulateLatency,
		LatencyScale:         cfg.LatencyScale,
		Seed:                 cfg.Seed,
		BatchMaxRecords:      cfg.BatchMaxRecords,
		BatchMaxBytes:        cfg.BatchMaxBytes,
		BatchLinger:          cfg.BatchLinger,
		BatchWindow:          cfg.BatchWindow,
		ReadBatchRecords:     cfg.ReadBatchRecords,
		OrderingInterval:     cfg.OrderingInterval,
		OrderingShards:       cfg.OrderingShards,
		Engine:               cfg.Engine,
	}
	if cfg.Durable {
		clusterCfg.WAL = wal.NewDevice()
	}
	cluster := impeller.NewCluster(clusterCfg)
	defer cluster.Close()

	topo, err := nexmark.BuildOpts(cfg.Query, nexmark.Options{PerUpdateWindows: true})
	if err != nil {
		return nil, err
	}
	app, err := cluster.Run(topo)
	if err != nil {
		return nil, err
	}
	defer app.Stop()

	hist := &Hist{}
	start := time.Now()
	warmupUntil := start.Add(cfg.Warmup)
	var sink *core.Sink
	var delivery *core.DeliverySink
	if cfg.Egress {
		// Delivered-record latency: the measurement point moves from the
		// output operator's emission to the external consumer's ack.
		delivery, err = app.NewDeliverySink(nexmark.OutputStream(cfg.Query),
			&ackLatencyConsumer{hist: hist, warmupUntil: warmupUntil}, core.DeliveryOptions{})
		if err != nil {
			return nil, err
		}
		sink = delivery.Sink()
		go func() { _ = delivery.Run(context.Background()) }()
	} else {
		sink = app.Sink(nexmark.OutputStream(cfg.Query), false, func(r impeller.Record, _ impeller.TaskID, now time.Time) {
			if now.Before(warmupUntil) {
				return
			}
			hist.Record(now.Sub(time.UnixMicro(r.EventTime)))
		})
	}

	// Generators: each paces Rate/Generators events/s in small ticks.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var sent uint64
	var sentMu sync.Mutex
	perGen := cfg.Rate / cfg.Generators
	if perGen == 0 {
		perGen = 1
	}
	for g := 0; g < cfg.Generators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen := nexmark.NewGenerator(cfg.Seed + uint64(g))
			tick := 2 * time.Millisecond
			perTick := perGen * int(tick) / int(time.Second)
			if perTick == 0 {
				perTick = 1
				tick = time.Second / time.Duration(perGen)
			}
			ticker := time.NewTicker(tick)
			defer ticker.Stop()
			deadline := start.Add(cfg.Duration)
			n := uint64(0)
			for time.Now().Before(deadline) {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				for i := 0; i < perTick; i++ {
					now := time.Now().UnixMicro()
					ev := gen.Next(now)
					n++
					key := []byte(fmt.Sprintf("%d-%d", g, n))
					if err := app.SendVia(nexmark.EventStream, g, key, ev.Payload, now); err != nil {
						return
					}
				}
			}
			sentMu.Lock()
			sent += n
			sentMu.Unlock()
		}(g)
	}
	wg.Wait()
	// Drain: give the pipeline a few commit intervals to flush results.
	drain := 5 * cfg.CommitInterval
	if drain < 300*time.Millisecond {
		drain = 300 * time.Millisecond
	}
	time.Sleep(drain)
	cancel()

	res := &RunResult{
		Config:  cfg,
		Sent:    sent,
		Metrics: app.Metrics(),
		Elapsed: time.Since(start),
	}
	if delivery != nil {
		// Graceful stop: drain the in-flight window and persist the
		// final ack frontier before reading the counters.
		delivery.Stop()
		res.Delivery = delivery.Stats()
	}
	res.Received = sink.Counts().Received
	res.P50, res.P99, res.Mean = hist.Percentile(50), hist.Percentile(99), hist.Mean()
	res.P999, res.P9999 = hist.Percentile(99.9), hist.Percentile(99.99)
	for _, s := range app.StageNames() {
		res.AssignEpochs += app.AssignmentEpoch(s)
	}
	res.Log = cluster.LogStats()
	return res, nil
}

// ackLatencyConsumer is the egress measurement consumer: event-time to
// consumer-acknowledgment latency, recorded after warmup.
type ackLatencyConsumer struct {
	hist        *Hist
	warmupUntil time.Time
}

func (c *ackLatencyConsumer) Deliver(_ context.Context, d *core.Delivery) error {
	if now := time.Now(); now.After(c.warmupUntil) {
		c.hist.Record(now.Sub(time.UnixMicro(d.Record.EventTime)))
	}
	return nil
}
