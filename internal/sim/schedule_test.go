package sim

import (
	"reflect"
	"testing"
	"time"
)

func chaosScheduleConfig() ScheduleConfig {
	return ScheduleConfig{
		Duration:  time.Second,
		Crashable: []string{"shard/0", "shard/1", "shard/2", "shard/3"},
		Pairs:     [][2]string{{"client", "sequencer"}, {"client", "shard/0"}},
		Slowable:  []string{"shard/1", "sequencer"},
		Faults:    12,
		MaxDown:   2,
	}
}

func TestGenFaultScheduleDeterministic(t *testing.T) {
	cfg := chaosScheduleConfig()
	a := GenFaultSchedule(7, cfg)
	b := GenFaultSchedule(7, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a.Events, b.Events)
	}
	c := GenFaultSchedule(8, cfg)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
	if a.Faults != cfg.Faults {
		t.Fatalf("placed %d faults, want %d", a.Faults, cfg.Faults)
	}
}

// TestGenFaultSchedulePaired asserts every fault is paired with its
// recovery, concurrent crashes stay within MaxDown, and replaying the
// whole schedule leaves the injector fault-free.
func TestGenFaultSchedulePaired(t *testing.T) {
	cfg := chaosScheduleConfig()
	for seed := uint64(1); seed <= 20; seed++ {
		sched := GenFaultSchedule(seed, cfg)
		f := NewFaultInjector()
		down := 0
		for _, ev := range sched.Events {
			switch ev.Op {
			case OpCrash:
				if f.Crashed(ev.A) {
					t.Fatalf("seed %d: double crash of %s", seed, ev.A)
				}
				down++
				if down > cfg.MaxDown {
					t.Fatalf("seed %d: %d concurrent crashes > MaxDown %d", seed, down, cfg.MaxDown)
				}
			case OpRecover:
				if !f.Crashed(ev.A) {
					t.Fatalf("seed %d: recover of live node %s", seed, ev.A)
				}
				down--
			case OpSlow:
				if ev.Delay <= 0 {
					t.Fatalf("seed %d: slow event without delay", seed)
				}
			}
			ev.Apply(f)
		}
		for _, n := range cfg.Crashable {
			if f.Crashed(n) {
				t.Fatalf("seed %d: %s still crashed after full schedule", seed, n)
			}
		}
		for _, p := range cfg.Pairs {
			if err := f.Check(p[0], p[1]); err != nil {
				t.Fatalf("seed %d: link %v still faulted: %v", seed, p, err)
			}
		}
		for _, n := range cfg.Slowable {
			if d := f.DelayOf(n); d != 0 {
				t.Fatalf("seed %d: %s still slow (%v) after full schedule", seed, n, d)
			}
		}
	}
}

// TestGenFaultScheduleCrashClasses asserts the two crash classes are
// budgeted independently: class-B (sequencer shard) outages never count
// against the storage quorum's MaxDown, and each class respects its own
// cap throughout the schedule.
func TestGenFaultScheduleCrashClasses(t *testing.T) {
	cfg := chaosScheduleConfig()
	cfg.CrashableB = []string{"sequencer/0", "sequencer/1", "sequencer/2", "sequencer/3"}
	cfg.MaxDownB = 1
	cfg.Faults = 24
	classOf := func(node string) int {
		for _, n := range cfg.CrashableB {
			if n == node {
				return 1
			}
		}
		return 0
	}
	sawB := false
	for seed := uint64(1); seed <= 20; seed++ {
		sched := GenFaultSchedule(seed, cfg)
		down := [2]int{}
		caps := [2]int{cfg.MaxDown, cfg.MaxDownB}
		for _, ev := range sched.Events {
			switch ev.Op {
			case OpCrash:
				c := classOf(ev.A)
				if c == 1 {
					sawB = true
				}
				down[c]++
				if down[c] > caps[c] {
					t.Fatalf("seed %d: class %d has %d concurrent crashes > cap %d", seed, c, down[c], caps[c])
				}
			case OpRecover:
				down[classOf(ev.A)]--
			}
		}
		if down != [2]int{} {
			t.Fatalf("seed %d: unpaired crashes: %v", seed, down)
		}
	}
	if !sawB {
		t.Fatal("no class-B crash placed across 20 seeds")
	}
	// A config without CrashableB must generate exactly what it did
	// before the class split (the rng draw sequence is unchanged).
	legacy := chaosScheduleConfig()
	a := GenFaultSchedule(7, legacy)
	b := GenFaultSchedule(7, legacy)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("legacy config no longer deterministic")
	}
}

func TestFaultInjectorDelaysAndReset(t *testing.T) {
	var nilInj *FaultInjector
	nilInj.SetDelay("x", time.Millisecond) // must not panic
	if d := nilInj.DelayOf("x"); d != 0 {
		t.Fatalf("nil injector reported delay %v", d)
	}
	nilInj.Reset()

	f := NewFaultInjector()
	f.SetDelay("shard/0", 2*time.Millisecond)
	if d := f.DelayOf("shard/0"); d != 2*time.Millisecond {
		t.Fatalf("DelayOf = %v, want 2ms", d)
	}
	f.ClearDelay("shard/0")
	if d := f.DelayOf("shard/0"); d != 0 {
		t.Fatalf("DelayOf after clear = %v", d)
	}
	f.Crash("a")
	f.Partition("b", "c")
	f.SetDelay("d", time.Millisecond)
	f.Reset()
	if f.Crashed("a") || f.Check("b", "c") != nil || f.DelayOf("d") != 0 {
		t.Fatal("Reset left faults active")
	}
}

// TestGenConsumerScheduleDeterministic: same seed, same windows;
// windows never overlap (one consumer — overlapping faults would
// shadow each other) and every window closes inside sane bounds.
func TestGenConsumerScheduleDeterministic(t *testing.T) {
	cfg := ConsumerScheduleConfig{Duration: time.Second, Faults: 10}
	s1 := GenConsumerSchedule(9, cfg)
	s2 := GenConsumerSchedule(9, cfg)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different consumer schedules")
	}
	if s3 := GenConsumerSchedule(10, cfg); reflect.DeepEqual(s1.Windows, s3.Windows) {
		t.Fatal("different seed produced the same consumer schedule")
	}
	if s1.Faults != 10 || len(s1.Windows) != 10 {
		t.Fatalf("placed %d windows, want 10", len(s1.Windows))
	}
	for i, w := range s1.Windows {
		if w.Start < 0 || w.Start >= cfg.Duration || w.End <= w.Start {
			t.Fatalf("window %d has bad bounds: %v", i, w)
		}
		if w.Kind == ConsumerLatency && w.Delay <= 0 {
			t.Fatalf("latency window %d has no delay", i)
		}
		if i > 0 && w.Start < s1.Windows[i-1].End {
			t.Fatalf("windows %d and %d overlap", i-1, i)
		}
	}
	// Active is a point query over the sorted windows.
	w0 := s1.Windows[0]
	if got := s1.Active(w0.Start); got == nil || *got != w0 {
		t.Fatal("Active missed the first window's start")
	}
	if s1.Active(w0.End) == &s1.Windows[0] {
		t.Fatal("Active treated a closed window as active")
	}
}
