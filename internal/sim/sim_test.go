package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestManualClockAdvanceWakesSleepers(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		c.Sleep(10 * time.Millisecond)
		close(done)
	}()
	// Give the sleeper a chance to register.
	for i := 0; i < 100; i++ {
		c.mu.Lock()
		n := len(c.waiters)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.Advance(5 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("sleeper woke before deadline")
	case <-time.After(10 * time.Millisecond):
	}
	c.Advance(5 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sleeper did not wake after deadline")
	}
}

func TestManualClockNow(t *testing.T) {
	start := time.Unix(100, 0)
	c := NewManualClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	c.Advance(3 * time.Second)
	if got, want := c.Now(), start.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}

func TestManualClockAfterZero(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestRealClockBasics(t *testing.T) {
	var c RealClock
	before := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(before) {
		t.Fatal("real clock did not advance")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at %d", i)
		}
	}
}

func TestRandForkIndependence(t *testing.T) {
	a := NewRand(7)
	f := a.Fork()
	// Forked stream must not mirror the parent.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked stream mirrors parent (%d/100 equal)", same)
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(1)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandNormFloat64Moments(t *testing.T) {
	r := NewRand(9)
	n := 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(11)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Rank-1 frequency should be roughly 2x rank-2 at s=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.5 || ratio > 2.8 {
		t.Fatalf("rank1/rank2 ratio = %v, want ~2", ratio)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRand(13)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("bucket %d count %d not ~uniform", i, c)
		}
	}
}

func TestLatencyModels(t *testing.T) {
	if d := (ZeroLatency{}).Sample(); d != 0 {
		t.Fatalf("ZeroLatency = %v", d)
	}
	if d := FixedLatency(time.Millisecond).Sample(); d != time.Millisecond {
		t.Fatalf("FixedLatency = %v", d)
	}
	r := NewRand(5)
	m := DefaultBokiLatency(r)
	var total time.Duration
	n := 10000
	for i := 0; i < n; i++ {
		d := m.Sample()
		if d <= 0 {
			t.Fatalf("non-positive latency %v", d)
		}
		total += d
	}
	mean := total / time.Duration(n)
	if mean < 800*time.Microsecond || mean > 2500*time.Microsecond {
		t.Fatalf("boki mean latency %v outside calibration window", mean)
	}
}

func TestScaleLatency(t *testing.T) {
	s := Scale{M: FixedLatency(time.Millisecond), F: 0.5}
	if d := s.Sample(); d != 500*time.Microsecond {
		t.Fatalf("scaled = %v, want 500µs", d)
	}
}

func TestFaultInjectorCrash(t *testing.T) {
	f := NewFaultInjector()
	if err := f.Check("a", "b"); err != nil {
		t.Fatalf("healthy check failed: %v", err)
	}
	f.Crash("b")
	if !f.Crashed("b") {
		t.Fatal("Crashed(b) = false after Crash")
	}
	if err := f.Check("a", "b"); err != ErrCrashed {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	f.Recover("b")
	if err := f.Check("a", "b"); err != nil {
		t.Fatalf("check after recover failed: %v", err)
	}
}

func TestFaultInjectorPartitionSymmetric(t *testing.T) {
	f := NewFaultInjector()
	f.Partition("x", "y")
	if err := f.Check("x", "y"); err != ErrPartitioned {
		t.Fatalf("x->y err = %v", err)
	}
	if err := f.Check("y", "x"); err != ErrPartitioned {
		t.Fatalf("y->x err = %v", err)
	}
	if err := f.Check("x", "z"); err != nil {
		t.Fatalf("unrelated link failed: %v", err)
	}
	f.Heal("y", "x")
	if err := f.Check("x", "y"); err != nil {
		t.Fatalf("healed link failed: %v", err)
	}
}

func TestNilFaultInjectorIsNoFault(t *testing.T) {
	var f *FaultInjector
	if err := f.Check("a", "b"); err != nil {
		t.Fatalf("nil injector check = %v", err)
	}
	if f.Crashed("a") {
		t.Fatal("nil injector reports crash")
	}
}

func TestZeroValueFaultInjector(t *testing.T) {
	var f FaultInjector
	if err := f.Check("a", "b"); err != nil {
		t.Fatalf("zero value check = %v", err)
	}
	f.Crash("a") // must not panic thanks to lazy map init
	if err := f.Check("a", "b"); err != ErrCrashed {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
}

func TestFaultInjectorConcurrency(t *testing.T) {
	f := NewFaultInjector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				switch j % 4 {
				case 0:
					f.Crash("n")
				case 1:
					f.Recover("n")
				case 2:
					f.Partition("a", "b")
				default:
					_ = f.Check("a", "b")
				}
			}
		}(i)
	}
	wg.Wait()
}
