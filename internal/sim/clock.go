// Package sim provides the simulation substrate used by Impeller's
// in-process cluster: clocks, deterministic randomness, network latency
// models, and fault injection.
//
// The paper evaluates Impeller on a 13-node EC2 cluster. This repository
// reproduces the deployment in a single process: each "node" is a goroutine
// group, and every cross-node interaction (log append, selective read,
// coordinator RPC) is charged a latency drawn from a seeded distribution.
// Keeping the randomness seeded makes experiments repeatable.
package sim

import (
	"sync"
	"time"
)

// Clock abstracts time so tests can run instantaneously while benchmarks
// run against the wall clock. The zero value is not usable; use RealClock
// or NewManualClock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for at least d (or advances virtual time by d).
	Sleep(d time.Duration)
	// After returns a channel that fires once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// RealClock is the wall clock. Its zero value is ready to use.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// ManualClock is a virtual clock advanced explicitly by tests. Sleepers
// wake when Advance moves time past their deadline.
type ManualClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewManualClock returns a ManualClock starting at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock. It blocks until Advance moves the clock past
// the deadline. A Sleep with d <= 0 returns immediately.
func (c *ManualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-c.After(d)
}

// After implements Clock.
func (c *ManualClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, waiter{deadline: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward by d, waking any waiter whose deadline
// has passed.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	remaining := c.waiters[:0]
	var fired []chan time.Time
	for _, w := range c.waiters {
		if !w.deadline.After(now) {
			fired = append(fired, w.ch)
		} else {
			remaining = append(remaining, w)
		}
	}
	c.waiters = remaining
	c.mu.Unlock()
	for _, ch := range fired {
		ch <- now
	}
}
