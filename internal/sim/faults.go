package sim

import (
	"errors"
	"sync"
)

// ErrPartitioned is returned by a network operation crossing a partition.
var ErrPartitioned = errors.New("sim: network partitioned")

// ErrCrashed is returned by an operation against a crashed node.
var ErrCrashed = errors.New("sim: node crashed")

// FaultInjector tracks the health of named nodes and pairwise partitions.
// Components consult it before simulated cross-node interactions. It is
// safe for concurrent use; the zero value is an injector with no faults.
type FaultInjector struct {
	mu         sync.RWMutex
	crashed    map[string]bool
	partitions map[[2]string]bool
}

// NewFaultInjector returns an injector with no active faults.
func NewFaultInjector() *FaultInjector {
	return &FaultInjector{
		crashed:    make(map[string]bool),
		partitions: make(map[[2]string]bool),
	}
}

// Crash marks node as failed; subsequent Check calls involving it fail.
func (f *FaultInjector) Crash(node string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed == nil {
		f.crashed = make(map[string]bool)
	}
	f.crashed[node] = true
}

// Recover clears a crash for node.
func (f *FaultInjector) Recover(node string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.crashed, node)
}

// Partition severs the link between a and b in both directions.
func (f *FaultInjector) Partition(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.partitions == nil {
		f.partitions = make(map[[2]string]bool)
	}
	f.partitions[pairKey(a, b)] = true
}

// Heal restores the link between a and b.
func (f *FaultInjector) Heal(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.partitions, pairKey(a, b))
}

// Crashed reports whether node is currently crashed.
func (f *FaultInjector) Crashed(node string) bool {
	if f == nil {
		return false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.crashed[node]
}

// Check validates an interaction from node a to node b, returning
// ErrCrashed or ErrPartitioned when a fault is active. A nil injector
// performs no checks, so components can treat fault injection as optional.
func (f *FaultInjector) Check(a, b string) error {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.crashed[a] || f.crashed[b] {
		return ErrCrashed
	}
	if f.partitions[pairKey(a, b)] {
		return ErrPartitioned
	}
	return nil
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}
