package sim

import (
	"errors"
	"sync"
	"time"
)

// ErrPartitioned is returned by a network operation crossing a partition.
var ErrPartitioned = errors.New("sim: network partitioned")

// ErrCrashed is returned by an operation against a crashed node.
var ErrCrashed = errors.New("sim: node crashed")

// FaultInjector tracks the health of named nodes and pairwise partitions.
// Components consult it before simulated cross-node interactions. It is
// safe for concurrent use; the zero value is an injector with no faults.
type FaultInjector struct {
	mu         sync.RWMutex
	crashed    map[string]bool
	partitions map[[2]string]bool
	delays     map[string]time.Duration
}

// NewFaultInjector returns an injector with no active faults.
func NewFaultInjector() *FaultInjector {
	return &FaultInjector{
		crashed:    make(map[string]bool),
		partitions: make(map[[2]string]bool),
		delays:     make(map[string]time.Duration),
	}
}

// Crash marks node as failed; subsequent Check calls involving it fail.
func (f *FaultInjector) Crash(node string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed == nil {
		f.crashed = make(map[string]bool)
	}
	f.crashed[node] = true
}

// Recover clears a crash for node.
func (f *FaultInjector) Recover(node string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.crashed, node)
}

// Partition severs the link between a and b in both directions.
func (f *FaultInjector) Partition(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.partitions == nil {
		f.partitions = make(map[[2]string]bool)
	}
	f.partitions[pairKey(a, b)] = true
}

// Heal restores the link between a and b.
func (f *FaultInjector) Heal(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.partitions, pairKey(a, b))
}

// Crashed reports whether node is currently crashed.
func (f *FaultInjector) Crashed(node string) bool {
	if f == nil {
		return false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.crashed[node]
}

// Check validates an interaction from node a to node b, returning
// ErrCrashed or ErrPartitioned when a fault is active. A nil injector
// performs no checks, so components can treat fault injection as optional.
func (f *FaultInjector) Check(a, b string) error {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.crashed[a] || f.crashed[b] {
		return ErrCrashed
	}
	if f.partitions[pairKey(a, b)] {
		return ErrPartitioned
	}
	return nil
}

// SetDelay injects a latency spike: operations served by node are
// charged an extra d on top of the configured latency model until
// ClearDelay. Used by chaos schedules to model slow disks and links.
func (f *FaultInjector) SetDelay(node string, d time.Duration) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.delays == nil {
		f.delays = make(map[string]time.Duration)
	}
	f.delays[node] = d
}

// ClearDelay removes a latency spike from node.
func (f *FaultInjector) ClearDelay(node string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.delays, node)
}

// DelayOf returns the extra latency currently injected at node (zero
// when none). A nil injector injects nothing.
func (f *FaultInjector) DelayOf(node string) time.Duration {
	if f == nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.delays[node]
}

// Reset clears every active fault: crashes, partitions, and delays.
// Chaos runs call it after the fault window so the system can converge.
func (f *FaultInjector) Reset() {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = make(map[string]bool)
	f.partitions = make(map[[2]string]bool)
	f.delays = make(map[string]time.Duration)
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}
