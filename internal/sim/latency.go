package sim

import (
	"math"
	"time"
)

// LatencyModel samples a latency for one simulated network interaction.
// Implementations must be safe for concurrent use.
type LatencyModel interface {
	Sample() time.Duration
}

// ZeroLatency charges no latency; unit tests use it so they run instantly.
type ZeroLatency struct{}

// Sample implements LatencyModel.
func (ZeroLatency) Sample() time.Duration { return 0 }

// FixedLatency charges a constant latency.
type FixedLatency time.Duration

// Sample implements LatencyModel.
func (f FixedLatency) Sample() time.Duration { return time.Duration(f) }

// LogNormalLatency models a datacenter RPC: a lognormal body with a small
// probability of a heavy tail event (e.g. a TCP retransmit or GC pause).
// The paper's Table 2 shows Boki append-to-read p50 ≈ 2.5–2.7 ms with
// p99 ≈ 3.6–3.8 ms; DefaultBokiLatency reproduces that shape.
type LogNormalLatency struct {
	R *Rand
	// Median is the p50 of the body.
	Median time.Duration
	// Sigma is the lognormal shape parameter (0.2–0.4 typical for RPCs).
	Sigma float64
	// TailProb is the probability of a tail event.
	TailProb float64
	// TailScale multiplies the sampled latency on a tail event.
	TailScale float64
}

// Sample implements LatencyModel.
func (l *LogNormalLatency) Sample() time.Duration {
	mu := math.Log(float64(l.Median))
	v := math.Exp(mu + l.Sigma*l.R.NormFloat64())
	if l.TailProb > 0 && l.R.Float64() < l.TailProb {
		v *= l.TailScale
	}
	return time.Duration(v)
}

// DefaultBokiLatency returns the latency model used for the shared log's
// append and read paths, calibrated against the paper's Table 2.
func DefaultBokiLatency(r *Rand) *LogNormalLatency {
	return &LogNormalLatency{R: r, Median: 1300 * time.Microsecond, Sigma: 0.18, TailProb: 0.01, TailScale: 1.9}
}

// DefaultLocalPersistLatency returns the latency model for one ordering
// shard's local persist: the group-commit write to shard-local storage
// that precedes global ordering in a Scalog-style log. It is a fraction
// of the full append round trip (DefaultBokiLatency) because it crosses
// no network — a local SSD group flush — but it is the serial per-shard
// resource, so it is what aggregate append throughput scales against.
func DefaultLocalPersistLatency(r *Rand) *LogNormalLatency {
	return &LogNormalLatency{R: r, Median: 250 * time.Microsecond, Sigma: 0.25, TailProb: 0.005, TailScale: 4}
}

// DefaultKafkaLatency returns the latency model for the Kafka-like log,
// calibrated so produce-to-consume p50 is ~1.3–1.8x lower than the shared
// log but with a heavier tail at low rates, matching Table 2.
func DefaultKafkaLatency(r *Rand) *LogNormalLatency {
	return &LogNormalLatency{R: r, Median: 800 * time.Microsecond, Sigma: 0.22, TailProb: 0.015, TailScale: 2.6}
}

// Scale wraps a model and multiplies every sample; experiments use it to
// run the whole cluster at a fraction of real-time cost.
type Scale struct {
	M LatencyModel
	F float64
}

// Sample implements LatencyModel.
func (s Scale) Sample() time.Duration {
	return time.Duration(float64(s.M.Sample()) * s.F)
}
