package sim

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// FaultOp is the kind of one scheduled fault event.
type FaultOp int

const (
	// OpCrash / OpRecover fail and restore a named node.
	OpCrash FaultOp = iota
	OpRecover
	// OpPartition / OpHeal sever and restore a link between two nodes.
	OpPartition
	OpHeal
	// OpSlow / OpFast inject and clear a latency spike at a node.
	OpSlow
	OpFast
)

func (op FaultOp) String() string {
	switch op {
	case OpCrash:
		return "crash"
	case OpRecover:
		return "recover"
	case OpPartition:
		return "partition"
	case OpHeal:
		return "heal"
	case OpSlow:
		return "slow"
	case OpFast:
		return "fast"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// FaultEvent is one scheduled fault action at offset At from the start
// of the run. B is set only for partition/heal; Delay only for slow.
type FaultEvent struct {
	At    time.Duration
	Op    FaultOp
	A, B  string
	Delay time.Duration
}

func (e FaultEvent) String() string {
	switch e.Op {
	case OpPartition, OpHeal:
		return fmt.Sprintf("%8v %s %s<->%s", e.At, e.Op, e.A, e.B)
	case OpSlow:
		return fmt.Sprintf("%8v %s %s +%v", e.At, e.Op, e.A, e.Delay)
	default:
		return fmt.Sprintf("%8v %s %s", e.At, e.Op, e.A)
	}
}

// FaultSchedule is a deterministic sequence of fault events sorted by
// At. The same (seed, config) pair always generates the same schedule.
type FaultSchedule struct {
	Seed   uint64
	Events []FaultEvent
	// Faults counts injected faults (crash/partition/slow); recovery
	// events are not faults.
	Faults int
}

// ScheduleConfig bounds what GenFaultSchedule may break.
type ScheduleConfig struct {
	// Duration is the fault window; every fault starts inside it (its
	// recovery may land shortly after).
	Duration time.Duration
	// Crashable are nodes eligible for crash/recover events.
	Crashable []string
	// CrashableB is a second, independently budgeted crash class.
	// Storage shards sit in Crashable under the quorum-derived MaxDown
	// cap; ordering-plane nodes (sequencer shards) go here so crashing
	// one never consumes the storage quorum's outage budget — the two
	// planes fail independently, as they would on separate machines.
	CrashableB []string
	// Pairs are links eligible for partition/heal events.
	Pairs [][2]string
	// Slowable are nodes eligible for latency spikes.
	Slowable []string
	// Faults is the number of faults to inject (default 8).
	Faults int
	// MinOutage/MaxOutage bound how long each fault stays active
	// (defaults 20ms / 150ms).
	MinOutage time.Duration
	MaxOutage time.Duration
	// MaxDown caps how many Crashable nodes may be down at once — with
	// replication r over n shards, n-r concurrent crashes keep every
	// LSN readable (default 1). MaxDownB is the same cap for the
	// CrashableB class, tracked separately (default 1).
	MaxDown  int
	MaxDownB int
	// MaxDelay bounds injected latency spikes (default 3ms).
	MaxDelay time.Duration
}

func (c ScheduleConfig) withDefaults() ScheduleConfig {
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Faults <= 0 {
		c.Faults = 8
	}
	if c.MinOutage <= 0 {
		c.MinOutage = 20 * time.Millisecond
	}
	if c.MaxOutage <= c.MinOutage {
		c.MaxOutage = c.MinOutage + 130*time.Millisecond
	}
	if c.MaxDown <= 0 {
		c.MaxDown = 1
	}
	if c.MaxDownB <= 0 {
		c.MaxDownB = 1
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 3 * time.Millisecond
	}
	return c
}

// interval is an active [start, end) fault window during generation.
type interval struct {
	start, end time.Duration
	key        string
}

func overlaps(list []interval, start, end time.Duration, key string) (same bool, others int) {
	for _, iv := range list {
		if start < iv.end && iv.start < end {
			if iv.key == key {
				same = true
			} else {
				others++
			}
		}
	}
	return
}

// GenFaultSchedule deterministically generates a fault schedule from
// seed. Every fault is paired with its recovery: a crash with a
// recover, a partition with a heal, a spike with a clearing — so
// after the last event the system is fault-free. Concurrent crashes
// are capped at MaxDown and no fault overlaps another on the same
// target (a shared recover would otherwise clear the wrong fault).
func GenFaultSchedule(seed uint64, cfg ScheduleConfig) FaultSchedule {
	cfg = cfg.withDefaults()
	rng := NewRand(seed)
	// Crash classes place independently: each has its own node set,
	// concurrency cap, and active-interval ledger, so an outage in one
	// class never consumes the other's budget.
	type crashClass struct {
		nodes   []string
		maxDown int
		active  []interval
	}
	var classes []*crashClass
	if len(cfg.Crashable) > 0 {
		classes = append(classes, &crashClass{nodes: cfg.Crashable, maxDown: cfg.MaxDown})
	}
	if len(cfg.CrashableB) > 0 {
		classes = append(classes, &crashClass{nodes: cfg.CrashableB, maxDown: cfg.MaxDownB})
	}
	type choice struct {
		op    FaultOp
		class *crashClass // crash target class; nil for other ops
	}
	var kinds []choice
	for _, cl := range classes {
		kinds = append(kinds, choice{op: OpCrash, class: cl})
	}
	if len(cfg.Pairs) > 0 {
		kinds = append(kinds, choice{op: OpPartition})
	}
	if len(cfg.Slowable) > 0 {
		kinds = append(kinds, choice{op: OpSlow})
	}
	sched := FaultSchedule{Seed: seed}
	if len(kinds) == 0 {
		return sched
	}
	var other []interval
	rnd := func(d time.Duration) time.Duration { return time.Duration(rng.Int63() % int64(d)) }
	for placed := 0; placed < cfg.Faults; {
		// Rejection-sample a non-overlapping slot; the window is long
		// relative to outages, so a bounded number of tries suffices.
		ok := false
		for try := 0; try < 64 && !ok; try++ {
			kind := kinds[rng.Intn(len(kinds))]
			start := rnd(cfg.Duration)
			end := start + cfg.MinOutage + rnd(cfg.MaxOutage-cfg.MinOutage)
			switch kind.op {
			case OpCrash:
				cl := kind.class
				node := cl.nodes[rng.Intn(len(cl.nodes))]
				same, down := overlaps(cl.active, start, end, node)
				if same || down >= cl.maxDown {
					continue
				}
				cl.active = append(cl.active, interval{start, end, node})
				sched.Events = append(sched.Events,
					FaultEvent{At: start, Op: OpCrash, A: node},
					FaultEvent{At: end, Op: OpRecover, A: node})
			case OpPartition:
				pair := cfg.Pairs[rng.Intn(len(cfg.Pairs))]
				key := "p:" + pair[0] + "|" + pair[1]
				if same, _ := overlaps(other, start, end, key); same {
					continue
				}
				other = append(other, interval{start, end, key})
				sched.Events = append(sched.Events,
					FaultEvent{At: start, Op: OpPartition, A: pair[0], B: pair[1]},
					FaultEvent{At: end, Op: OpHeal, A: pair[0], B: pair[1]})
			case OpSlow:
				node := cfg.Slowable[rng.Intn(len(cfg.Slowable))]
				key := "s:" + node
				if same, _ := overlaps(other, start, end, key); same {
					continue
				}
				other = append(other, interval{start, end, key})
				delay := time.Duration(1 + rng.Int63()%int64(cfg.MaxDelay)) // >= 1ns
				sched.Events = append(sched.Events,
					FaultEvent{At: start, Op: OpSlow, A: node, Delay: delay},
					FaultEvent{At: end, Op: OpFast, A: node})
			}
			ok = true
		}
		if !ok {
			break // window saturated; return what fits
		}
		placed++
		sched.Faults++
	}
	sort.SliceStable(sched.Events, func(i, j int) bool {
		return sched.Events[i].At < sched.Events[j].At
	})
	return sched
}

// Apply performs one event against the injector.
func (e FaultEvent) Apply(f *FaultInjector) {
	switch e.Op {
	case OpCrash:
		f.Crash(e.A)
	case OpRecover:
		f.Recover(e.A)
	case OpPartition:
		f.Partition(e.A, e.B)
	case OpHeal:
		f.Heal(e.A, e.B)
	case OpSlow:
		f.SetDelay(e.A, e.Delay)
	case OpFast:
		f.ClearDelay(e.A)
	}
}

// Play applies the schedule against f in real (clock) time, treating
// the call instant as offset zero. It returns when the last event has
// been applied or ctx is cancelled; on cancellation the remaining
// recovery events are applied immediately so no fault leaks past the
// run.
func (s FaultSchedule) Play(ctx context.Context, clock Clock, f *FaultInjector) {
	if clock == nil {
		clock = RealClock{}
	}
	start := clock.Now()
	for i, ev := range s.Events {
		wait := ev.At - clock.Now().Sub(start)
		if wait > 0 {
			select {
			case <-ctx.Done():
				for _, rest := range s.Events[i:] {
					switch rest.Op {
					case OpRecover, OpHeal, OpFast:
						rest.Apply(f)
					}
				}
				return
			case <-clock.After(wait):
			}
		}
		ev.Apply(f)
	}
}
