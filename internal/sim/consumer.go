package sim

import (
	"fmt"
	"sort"
	"time"
)

// ConsumerFaultKind is the kind of one consumer-side fault window: how
// an external egress consumer misbehaves while the window is active.
type ConsumerFaultKind int

const (
	// ConsumerTransient makes every delivery attempt fail with a
	// retryable error — a consumer outage the sink must wait out with
	// backoff while its in-flight window applies backpressure.
	ConsumerTransient ConsumerFaultKind = iota
	// ConsumerLatency makes the consumer slow: each delivery stalls for
	// the window's Delay before being applied.
	ConsumerLatency
	// ConsumerAckLoss makes the consumer apply a delivery but lose the
	// acknowledgment — the duplicate-ack replay: the sink retries and
	// the consumer's sequence-number dedupe must absorb the duplicate.
	ConsumerAckLoss
)

func (k ConsumerFaultKind) String() string {
	switch k {
	case ConsumerTransient:
		return "consumer-transient"
	case ConsumerLatency:
		return "consumer-latency"
	case ConsumerAckLoss:
		return "consumer-ack-loss"
	}
	return fmt.Sprintf("consumer-fault(%d)", int(k))
}

// ConsumerFault is one active fault window [Start, End) relative to the
// run's start. Delay is set only for ConsumerLatency.
type ConsumerFault struct {
	Start, End time.Duration
	Kind       ConsumerFaultKind
	Delay      time.Duration
}

func (f ConsumerFault) String() string {
	if f.Kind == ConsumerLatency {
		return fmt.Sprintf("%8v-%v %s +%v", f.Start, f.End, f.Kind, f.Delay)
	}
	return fmt.Sprintf("%8v-%v %s", f.Start, f.End, f.Kind)
}

// ConsumerSchedule is a deterministic sequence of non-overlapping
// consumer fault windows sorted by Start. The same (seed, config) pair
// always generates the same schedule.
type ConsumerSchedule struct {
	Seed    uint64
	Windows []ConsumerFault
	Faults  int
}

// Active returns the window covering offset at, or nil when the
// consumer is healthy at that instant.
func (s ConsumerSchedule) Active(at time.Duration) *ConsumerFault {
	for i := range s.Windows {
		w := &s.Windows[i]
		if at >= w.Start && at < w.End {
			return w
		}
		if w.Start > at {
			break // sorted: nothing later can cover at
		}
	}
	return nil
}

// ConsumerScheduleConfig bounds what GenConsumerSchedule may inject.
type ConsumerScheduleConfig struct {
	// Duration is the fault window; every fault starts inside it.
	Duration time.Duration
	// Faults is the number of fault windows to place (default 10).
	Faults int
	// MinOutage/MaxOutage bound each window's length (defaults
	// 5 ms / 60 ms).
	MinOutage time.Duration
	MaxOutage time.Duration
	// MaxDelay bounds a latency window's per-delivery stall
	// (default 2 ms).
	MaxDelay time.Duration
}

func (c ConsumerScheduleConfig) withDefaults() ConsumerScheduleConfig {
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Faults <= 0 {
		c.Faults = 10
	}
	if c.MinOutage <= 0 {
		c.MinOutage = 5 * time.Millisecond
	}
	if c.MaxOutage <= c.MinOutage {
		c.MaxOutage = c.MinOutage + 55*time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	return c
}

// GenConsumerSchedule deterministically generates a consumer fault
// schedule from seed. Windows never overlap — there is one consumer, so
// overlapping faults would shadow each other — and every window closes,
// leaving the consumer healthy after the last one.
func GenConsumerSchedule(seed uint64, cfg ConsumerScheduleConfig) ConsumerSchedule {
	cfg = cfg.withDefaults()
	rng := NewRand(seed)
	rnd := func(d time.Duration) time.Duration { return time.Duration(rng.Int63() % int64(d)) }
	kinds := []ConsumerFaultKind{ConsumerTransient, ConsumerLatency, ConsumerAckLoss}
	sched := ConsumerSchedule{Seed: seed}
	var placed []interval
	for sched.Faults < cfg.Faults {
		ok := false
		for try := 0; try < 64 && !ok; try++ {
			start := rnd(cfg.Duration)
			end := start + cfg.MinOutage + rnd(cfg.MaxOutage-cfg.MinOutage)
			if _, others := overlaps(placed, start, end, ""); others > 0 {
				continue
			}
			w := ConsumerFault{Start: start, End: end, Kind: kinds[rng.Intn(len(kinds))]}
			if w.Kind == ConsumerLatency {
				w.Delay = time.Duration(1 + rng.Int63()%int64(cfg.MaxDelay)) // >= 1ns
			}
			placed = append(placed, interval{start, end, "c"})
			sched.Windows = append(sched.Windows, w)
			ok = true
		}
		if !ok {
			break // window saturated; return what fits
		}
		sched.Faults++
	}
	sort.SliceStable(sched.Windows, func(i, j int) bool {
		return sched.Windows[i].Start < sched.Windows[j].Start
	})
	return sched
}
