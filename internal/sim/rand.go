package sim

import (
	"math"
	"sync"
)

// Rand is a small, allocation-free, lockable PRNG (splitmix64 core).
// math/rand would work, but a self-contained generator keeps the latency
// model deterministic across Go releases and lets several components share
// independent, reproducible streams derived from one experiment seed.
type Rand struct {
	mu    sync.Mutex
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce identical sequences.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed + 0x9e3779b97f4a7c15}
}

// Fork derives an independent generator from this one; used to hand each
// simulated node its own stream without cross-node coupling.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64())
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.mu.Lock()
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	r.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a normally distributed float64 (mean 0, stddev 1)
// using the Box–Muller transform.
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Zipf samples from a Zipf-like distribution over [0, n) with exponent s
// using rejection-free inverse CDF over a precomputed table when small,
// falling back to a quick approximation for large n. NEXMark's skewed key
// popularity uses this.
type Zipf struct {
	r   *Rand
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with skew exponent s >= 0
// (s = 0 is uniform). n must be > 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{r: r, cdf: cdf}
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
