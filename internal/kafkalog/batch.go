package kafkalog

import (
	"context"
	"fmt"

	"impeller/internal/wire"
)

// Batched produce. Kafka's wire protocol ships record batches, not
// single records: the producer accumulates records per partition and
// sends one ProduceRequest covering many of them. This file is that
// path — one latency charge, one partition lock acquisition, and one
// consumer wakeup per batch instead of per record — so the Kafka-txn
// baseline pays the same batching discount as Impeller's group-commit
// appender and the Table 2 / §5.3 comparisons stay fair. The Table 2
// produce-to-consume latency measurement keeps using the single-record
// Produce/Send path, matching the paper's "batching disabled" setup.

// KV is one record of a produce batch.
type KV struct {
	Key, Value []byte
}

// ProduceBatch appends a batch of non-transactional messages to one
// partition and returns the offset of the first. Offsets are dense, so
// record i lands at off+i. The whole batch becomes visible atomically:
// consumers are woken once, after every message is in place.
func (c *Cluster) ProduceBatch(topic string, p int, msgs []KV) (Offset, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	part, err := c.partition(topic, p)
	if err != nil {
		return 0, err
	}
	c.chargeProduce()
	return part.appendBatch(msgs, 0, 0, stateCommitted, ""), nil
}

// SendBatch produces a batch of messages within the current
// transaction, to one partition. Registration with the coordinator
// happens once for the partition (first touch), exactly as with Send;
// the batch itself costs one produce round trip.
func (p *Producer) SendBatch(topic string, part int, msgs []KV) (Offset, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	if !p.inTxn {
		return 0, ErrNoTransaction
	}
	if err := p.checkEpoch(); err != nil {
		return 0, err
	}
	if !p.isTouched(topic, part) {
		p.c.chargeCoordinator() // synchronous AddPartitionsToTxn
		p.c.mu.Lock()
		p.c.txnLog = append(p.c.txnLog, txnLogEntry{
			TxnID: p.txnID, Kind: "add-partitions",
			Detail: fmt.Sprintf("%s/%d", topic, part),
		})
		p.c.mu.Unlock()
		p.touched = append(p.touched, touchedPartition{topic, part})
	}
	pp, err := p.c.partition(topic, part)
	if err != nil {
		return 0, err
	}
	p.c.chargeProduce()
	return pp.appendBatch(msgs, p.pid, p.epoch, statePending, p.txnID), nil
}

// FetchBatch returns up to max consumable messages at or after off
// under the given isolation — the read-side dual of ProduceBatch, and
// the baseline-parity twin of the shared log's Cursor.NextBatch: one
// fetch latency charge and one partition lock acquisition cover the
// whole batch. A ReadCommitted fetch stops at the last stable offset
// (an open transaction's first pending message), exactly like the
// single-message path; control and aborted messages are skipped. An
// empty (non-nil-error) result means nothing is consumable yet.
func (c *Cluster) FetchBatch(topic string, p int, off Offset, iso Isolation, max int) ([]*Message, error) {
	part, err := c.partition(topic, p)
	if err != nil {
		return nil, err
	}
	c.chargeFetch()
	return part.fetchBatch(off, iso, max), nil
}

// FetchBatchBlocking behaves like FetchBatch but waits until at least
// one message is consumable, ctx expires, or the cluster closes.
func (c *Cluster) FetchBatchBlocking(ctx context.Context, topic string, p int, off Offset, iso Isolation, max int) ([]*Message, error) {
	part, err := c.partition(topic, p)
	if err != nil {
		return nil, err
	}
	for {
		// Register interest first, then re-check: a message that lands
		// after the fetch closes exactly the grabbed channel.
		ch := part.notifyCh()
		if ms := part.fetchBatch(off, iso, max); len(ms) > 0 {
			c.chargeFetch()
			return ms, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.done:
			return nil, ErrClusterClosed
		case <-ch:
		}
	}
}

// fetchBatch scans forward from off under one lock acquisition,
// applying the same per-message isolation rules as fetch. Messages are
// block-copied so callers never alias partition-internal state.
func (p *partition) fetchBatch(off Offset, iso Isolation, max int) []*Message {
	if max <= 0 {
		max = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var block []Message
	var out []*Message
	for i := int(off); i >= 0 && i < len(p.msgs) && len(out) < max; i++ {
		m := p.msgs[i]
		switch iso {
		case ReadUncommitted:
			if m.state == stateControl {
				continue
			}
		case ReadCommitted:
			switch m.state {
			case statePending:
				// Last stable offset: the batch may not pass an open
				// transaction's first message, even mid-batch.
				return out
			case stateAborted, stateControl:
				continue
			}
		}
		if block == nil {
			block = make([]Message, 0, max)
		}
		block = append(block, *m)
		out = append(out, &block[len(block)-1])
	}
	return out
}

// appendBatch appends msgs under one lock acquisition and wakes
// consumers once. Keys and values are copied into a shared arena — one
// allocation per chunk instead of two per record.
func (p *partition) appendBatch(msgs []KV, pid int64, epoch int32, state txnState, txn string) Offset {
	var arena wire.Arena
	block := make([]Message, len(msgs))
	p.mu.Lock()
	defer p.mu.Unlock()
	first := Offset(len(p.msgs))
	for i, kv := range msgs {
		m := &block[i]
		*m = Message{
			Offset:     first + Offset(i),
			Key:        arena.Copy(kv.Key),
			Value:      arena.Copy(kv.Value),
			ProducerID: pid,
			Epoch:      epoch,
			state:      state,
			txn:        txn,
		}
		p.msgs = append(p.msgs, m)
	}
	p.wakeLocked()
	return first
}
