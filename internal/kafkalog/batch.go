package kafkalog

import (
	"fmt"

	"impeller/internal/wire"
)

// Batched produce. Kafka's wire protocol ships record batches, not
// single records: the producer accumulates records per partition and
// sends one ProduceRequest covering many of them. This file is that
// path — one latency charge, one partition lock acquisition, and one
// consumer wakeup per batch instead of per record — so the Kafka-txn
// baseline pays the same batching discount as Impeller's group-commit
// appender and the Table 2 / §5.3 comparisons stay fair. The Table 2
// produce-to-consume latency measurement keeps using the single-record
// Produce/Send path, matching the paper's "batching disabled" setup.

// KV is one record of a produce batch.
type KV struct {
	Key, Value []byte
}

// ProduceBatch appends a batch of non-transactional messages to one
// partition and returns the offset of the first. Offsets are dense, so
// record i lands at off+i. The whole batch becomes visible atomically:
// consumers are woken once, after every message is in place.
func (c *Cluster) ProduceBatch(topic string, p int, msgs []KV) (Offset, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	part, err := c.partition(topic, p)
	if err != nil {
		return 0, err
	}
	c.chargeProduce()
	return part.appendBatch(msgs, 0, 0, stateCommitted, ""), nil
}

// SendBatch produces a batch of messages within the current
// transaction, to one partition. Registration with the coordinator
// happens once for the partition (first touch), exactly as with Send;
// the batch itself costs one produce round trip.
func (p *Producer) SendBatch(topic string, part int, msgs []KV) (Offset, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	if !p.inTxn {
		return 0, ErrNoTransaction
	}
	if err := p.checkEpoch(); err != nil {
		return 0, err
	}
	if !p.isTouched(topic, part) {
		p.c.chargeCoordinator() // synchronous AddPartitionsToTxn
		p.c.mu.Lock()
		p.c.txnLog = append(p.c.txnLog, txnLogEntry{
			TxnID: p.txnID, Kind: "add-partitions",
			Detail: fmt.Sprintf("%s/%d", topic, part),
		})
		p.c.mu.Unlock()
		p.touched = append(p.touched, touchedPartition{topic, part})
	}
	pp, err := p.c.partition(topic, part)
	if err != nil {
		return 0, err
	}
	p.c.chargeProduce()
	return pp.appendBatch(msgs, p.pid, p.epoch, statePending, p.txnID), nil
}

// appendBatch appends msgs under one lock acquisition and wakes
// consumers once. Keys and values are copied into a shared arena — one
// allocation per chunk instead of two per record.
func (p *partition) appendBatch(msgs []KV, pid int64, epoch int32, state txnState, txn string) Offset {
	var arena wire.Arena
	block := make([]Message, len(msgs))
	p.mu.Lock()
	defer p.mu.Unlock()
	first := Offset(len(p.msgs))
	for i, kv := range msgs {
		m := &block[i]
		*m = Message{
			Offset:     first + Offset(i),
			Key:        arena.Copy(kv.Key),
			Value:      arena.Copy(kv.Value),
			ProducerID: pid,
			Epoch:      epoch,
			state:      state,
			txn:        txn,
		}
		p.msgs = append(p.msgs, m)
	}
	p.wakeLocked()
	return first
}
