// Package kafkalog implements a Kafka-like partitioned log: topics split
// into independently ordered partitions addressed by offsets, consumer
// group offset tracking, and the transactional produce protocol that
// Kafka Streams builds exactly-once semantics on (Wang et al., SIGMOD '21;
// paper §3.6).
//
// Impeller's paper compares against Kafka in two places, and this package
// serves both:
//
//   - Table 2 measures raw produce-to-consume latency of Kafka vs the
//     shared log; this package is the Kafka side of that measurement.
//   - §3.6/§5.3.2 contrast Impeller's single-append progress marker with
//     Kafka's two-phase transaction (register partitions with a
//     coordinator → produce → pre-commit → commit markers appended to
//     every touched partition). The coordinator here implements that
//     protocol, including producer epochs for zombie fencing and
//     read-committed fetch semantics bounded by the last stable offset.
//
// Unlike the shared log, a multi-partition append is NOT atomic here —
// that is precisely the gap the transaction protocol exists to fill, and
// the reason it needs more round trips than a progress marker.
package kafkalog

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"impeller/internal/sim"
)

// Offset is a position within one partition. Offsets are dense per
// partition and start at 0.
type Offset int64

// Isolation selects fetch visibility.
type Isolation int

const (
	// ReadUncommitted returns every produced message.
	ReadUncommitted Isolation = iota
	// ReadCommitted returns only messages of committed transactions (and
	// non-transactional messages), and never reads past the last stable
	// offset — the first offset still owned by an open transaction.
	ReadCommitted
)

// txnState tracks a message's transaction status within a partition.
type txnState int

const (
	stateCommitted txnState = iota // non-transactional or committed
	statePending                   // transaction still open
	stateAborted
	stateControl // commit/abort marker, never delivered to consumers
)

// Message is one entry in a partition.
type Message struct {
	Offset     Offset
	Key, Value []byte
	ProducerID int64
	Epoch      int32

	state txnState
	txn   string // transactional id that produced it
}

// Errors returned by cluster operations.
var (
	ErrNoTopic        = errors.New("kafkalog: unknown topic or partition")
	ErrFenced         = errors.New("kafkalog: producer fenced by newer epoch")
	ErrNoTransaction  = errors.New("kafkalog: no transaction in progress")
	ErrTxnInProgress  = errors.New("kafkalog: transaction already in progress")
	ErrClusterClosed  = errors.New("kafkalog: cluster closed")
	ErrInvalidSession = errors.New("kafkalog: producer session invalid")
)

// Config configures a Cluster.
type Config struct {
	// ProduceLatency and FetchLatency charge simulated time per
	// operation; nil charges nothing.
	ProduceLatency sim.LatencyModel
	FetchLatency   sim.LatencyModel
	// CoordinatorLatency charges the RPC to the transaction coordinator
	// (registration, pre-commit); nil charges nothing. The first phase
	// of the protocol is synchronous (paper §3.6), so this latency is on
	// the critical path.
	CoordinatorLatency sim.LatencyModel
	// Clock defaults to the real clock.
	Clock sim.Clock
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = sim.RealClock{}
	}
	return c
}

// Cluster is an in-process Kafka-like cluster: topics, partitions, the
// consumer-offsets store, and the transaction coordinator. All methods
// are safe for concurrent use.
type Cluster struct {
	cfg Config

	mu     sync.Mutex
	topics map[string][]*partition
	// groupOffsets[group][topic/partition] = next offset to consume.
	groupOffsets map[string]map[string]Offset
	// producers maps transactional id -> latest epoch.
	producers map[string]int32
	nextPID   int64
	txnLog    []txnLogEntry // the coordinator's transaction stream
	closed    bool
	done      chan struct{} // closed on Close; unblocks every FetchBlocking
	closeOnce sync.Once
}

type txnLogEntry struct {
	TxnID  string
	Kind   string // "begin", "add-partitions", "prepare-commit", "commit", "prepare-abort", "abort"
	Detail string
}

// partition carries its own notification channel, so a produce wakes
// only consumers blocked on that partition — the same discipline as the
// shared log's per-tag waiters (a broker-wide broadcast would wake every
// blocked fetch in the cluster for each message).
type partition struct {
	mu     sync.Mutex
	msgs   []*Message
	notify chan struct{} // closed and replaced on visibility changes
}

func newPartition() *partition {
	return &partition{notify: make(chan struct{})}
}

// wakeLocked signals waiters blocked on this partition. Callers hold
// p.mu and must have changed what a fetch can observe.
func (p *partition) wakeLocked() {
	close(p.notify)
	p.notify = make(chan struct{})
}

// notifyCh returns the channel the next visibility change will close.
// Grab it BEFORE the post-registration fetch re-check: any change after
// the grab closes exactly this channel, so no wakeup is lost.
func (p *partition) notifyCh() chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.notify
}

// NewCluster creates an empty cluster.
func NewCluster(cfg Config) *Cluster {
	return &Cluster{
		cfg:          cfg.withDefaults(),
		topics:       make(map[string][]*partition),
		groupOffsets: make(map[string]map[string]Offset),
		producers:    make(map[string]int32),
		done:         make(chan struct{}),
	}
}

// Close shuts the cluster down.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		close(c.done)
		c.mu.Unlock()
	})
}

// CreateTopic creates topic with the given partition count. Creating an
// existing topic with the same partition count is a no-op.
func (c *Cluster) CreateTopic(topic string, partitions int) error {
	if partitions <= 0 {
		return fmt.Errorf("kafkalog: topic %q needs at least one partition", topic)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	if ps, ok := c.topics[topic]; ok {
		if len(ps) != partitions {
			return fmt.Errorf("kafkalog: topic %q exists with %d partitions", topic, len(ps))
		}
		return nil
	}
	ps := make([]*partition, partitions)
	for i := range ps {
		ps[i] = newPartition()
	}
	c.topics[topic] = ps
	return nil
}

// Partitions reports the partition count of topic, or 0 if unknown.
func (c *Cluster) Partitions(topic string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.topics[topic])
}

func (c *Cluster) partition(topic string, p int) (*partition, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClusterClosed
	}
	ps, ok := c.topics[topic]
	if !ok || p < 0 || p >= len(ps) {
		return nil, ErrNoTopic
	}
	return ps[p], nil
}

func (c *Cluster) chargeProduce() {
	if m := c.cfg.ProduceLatency; m != nil {
		c.cfg.Clock.Sleep(m.Sample())
	}
}

func (c *Cluster) chargeFetch() {
	if m := c.cfg.FetchLatency; m != nil {
		c.cfg.Clock.Sleep(m.Sample())
	}
}

func (c *Cluster) chargeCoordinator() {
	if m := c.cfg.CoordinatorLatency; m != nil {
		c.cfg.Clock.Sleep(m.Sample())
	}
}

// Produce appends a non-transactional message and returns its offset.
func (c *Cluster) Produce(topic string, p int, key, value []byte) (Offset, error) {
	part, err := c.partition(topic, p)
	if err != nil {
		return 0, err
	}
	c.chargeProduce()
	off := part.append(&Message{
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...),
		state: stateCommitted,
	})
	return off, nil
}

func (p *partition) append(m *Message) Offset {
	p.mu.Lock()
	defer p.mu.Unlock()
	m.Offset = Offset(len(p.msgs))
	p.msgs = append(p.msgs, m)
	p.wakeLocked()
	return m.Offset
}

// Fetch returns the first consumable message at or after off under the
// given isolation, or nil if none is available yet.
func (c *Cluster) Fetch(topic string, p int, off Offset, iso Isolation) (*Message, error) {
	part, err := c.partition(topic, p)
	if err != nil {
		return nil, err
	}
	c.chargeFetch()
	return part.fetch(off, iso), nil
}

// FetchBlocking behaves like Fetch but waits for a message or ctx.
func (c *Cluster) FetchBlocking(ctx context.Context, topic string, p int, off Offset, iso Isolation) (*Message, error) {
	part, err := c.partition(topic, p)
	if err != nil {
		return nil, err
	}
	for {
		// Register interest first, then re-check: a message that lands
		// after the fetch closes exactly the grabbed channel.
		ch := part.notifyCh()
		if m := part.fetch(off, iso); m != nil {
			c.chargeFetch()
			return m, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.done:
			return nil, ErrClusterClosed
		case <-ch:
		}
	}
}

func (p *partition) fetch(off Offset, iso Isolation) *Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := int(off); i >= 0 && i < len(p.msgs); i++ {
		m := p.msgs[i]
		switch iso {
		case ReadUncommitted:
			if m.state == stateControl {
				continue
			}
			return copyMsg(m)
		case ReadCommitted:
			switch m.state {
			case statePending:
				// Last stable offset: a reader may not pass an open
				// transaction's first message.
				return nil
			case stateAborted, stateControl:
				continue
			default:
				return copyMsg(m)
			}
		}
	}
	return nil
}

func copyMsg(m *Message) *Message {
	cp := *m
	return &cp
}

// HighWatermark returns the next offset to be assigned in the partition.
func (c *Cluster) HighWatermark(topic string, p int) (Offset, error) {
	part, err := c.partition(topic, p)
	if err != nil {
		return 0, err
	}
	part.mu.Lock()
	defer part.mu.Unlock()
	return Offset(len(part.msgs)), nil
}

// CommitOffsets records group's next-to-consume offset for a partition
// (the __consumer_offsets topic, flattened).
func (c *Cluster) CommitOffsets(group, topic string, p int, off Offset) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	g := c.groupOffsets[group]
	if g == nil {
		g = make(map[string]Offset)
		c.groupOffsets[group] = g
	}
	g[fmt.Sprintf("%s/%d", topic, p)] = off
	return nil
}

// FetchOffset returns group's committed offset for a partition, or 0.
func (c *Cluster) FetchOffset(group, topic string, p int) Offset {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groupOffsets[group]
	if g == nil {
		return 0
	}
	return g[fmt.Sprintf("%s/%d", topic, p)]
}

// TxnLogLen reports how many records the coordinator has appended to its
// transaction stream; the Fig 8 protocol comparison counts these.
func (c *Cluster) TxnLogLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.txnLog)
}

// InitProducer opens a transactional producer session for txnID. Any
// previous session with the same id is fenced: its epoch becomes stale
// and every later operation it attempts fails with ErrFenced. This is
// Kafka's zombie-fencing mechanism, the analogue of Impeller's
// conditional appends.
func (c *Cluster) InitProducer(txnID string) (*Producer, error) {
	c.chargeCoordinator()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClusterClosed
	}
	c.producers[txnID]++
	c.nextPID++
	var parts []*partition
	for _, ps := range c.topics {
		parts = append(parts, ps...)
	}
	c.mu.Unlock()
	// The coordinator aborts any in-flight transaction left by the fenced
	// predecessor, so its uncommitted messages can never become visible.
	for _, p := range parts {
		p.abortPending(txnID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClusterClosed
	}
	return &Producer{
		c:     c,
		txnID: txnID,
		pid:   c.nextPID,
		epoch: c.producers[txnID],
	}, nil
}

// Producer is a transactional producer. It is not safe for concurrent
// use, matching Kafka's producer contract.
type Producer struct {
	c     *Cluster
	txnID string
	pid   int64
	epoch int32

	inTxn   bool
	touched []touchedPartition // partitions registered in this transaction
	offsets []offsetCommit     // consumer offsets to commit with the txn
}

type touchedPartition struct {
	topic string
	p     int
}

type offsetCommit struct {
	group, topic string
	p            int
	off          Offset
}

func (p *Producer) checkEpoch() error {
	p.c.mu.Lock()
	defer p.c.mu.Unlock()
	if p.c.closed {
		return ErrClusterClosed
	}
	if p.c.producers[p.txnID] != p.epoch {
		return ErrFenced
	}
	return nil
}

// Begin starts a transaction. The registration round trip to the
// coordinator is charged when the first partition is touched, matching
// the protocol's first (synchronous) phase.
func (p *Producer) Begin() error {
	if p.inTxn {
		return ErrTxnInProgress
	}
	if err := p.checkEpoch(); err != nil {
		return err
	}
	p.inTxn = true
	p.touched = nil
	p.offsets = nil
	p.c.mu.Lock()
	p.c.txnLog = append(p.c.txnLog, txnLogEntry{TxnID: p.txnID, Kind: "begin"})
	p.c.mu.Unlock()
	return nil
}

// Send produces a message within the current transaction. The first send
// to a not-yet-registered partition performs the synchronous
// registration with the coordinator (paper §3.6: "before a task can
// append to any stream, it must register the stream name and substream
// identifier with the coordinator").
func (p *Producer) Send(topic string, part int, key, value []byte) (Offset, error) {
	if !p.inTxn {
		return 0, ErrNoTransaction
	}
	if err := p.checkEpoch(); err != nil {
		return 0, err
	}
	if !p.isTouched(topic, part) {
		p.c.chargeCoordinator() // synchronous AddPartitionsToTxn
		p.c.mu.Lock()
		p.c.txnLog = append(p.c.txnLog, txnLogEntry{
			TxnID: p.txnID, Kind: "add-partitions",
			Detail: fmt.Sprintf("%s/%d", topic, part),
		})
		p.c.mu.Unlock()
		p.touched = append(p.touched, touchedPartition{topic, part})
	}
	pp, err := p.c.partition(topic, part)
	if err != nil {
		return 0, err
	}
	p.c.chargeProduce()
	off := pp.append(&Message{
		Key:        append([]byte(nil), key...),
		Value:      append([]byte(nil), value...),
		ProducerID: p.pid,
		Epoch:      p.epoch,
		state:      statePending,
		txn:        p.txnID,
	})
	return off, nil
}

func (p *Producer) isTouched(topic string, part int) bool {
	for _, t := range p.touched {
		if t.topic == topic && t.p == part {
			return true
		}
	}
	return false
}

// SendOffsets adds a consumer-group offset commit to the transaction, so
// input progress commits atomically with the produced output.
func (p *Producer) SendOffsets(group, topic string, part int, off Offset) error {
	if !p.inTxn {
		return ErrNoTransaction
	}
	if err := p.checkEpoch(); err != nil {
		return err
	}
	p.offsets = append(p.offsets, offsetCommit{group, topic, part, off})
	return nil
}

// Commit runs the two-phase commit: a synchronous pre-commit append to
// the coordinator's transaction stream, then commit markers appended to
// every registered partition and the offsets store, then the final
// commit record. Returns the number of log appends the protocol issued —
// the quantity Impeller's single progress-marker append replaces.
func (p *Producer) Commit() (appends int, err error) {
	if !p.inTxn {
		return 0, ErrNoTransaction
	}
	if err := p.checkEpoch(); err != nil {
		return 0, err
	}
	// Phase 1: synchronous pre-commit.
	p.c.chargeCoordinator()
	p.c.mu.Lock()
	p.c.txnLog = append(p.c.txnLog, txnLogEntry{TxnID: p.txnID, Kind: "prepare-commit"})
	p.c.mu.Unlock()
	appends++

	// Phase 2: commit markers to each touched partition. Kafka performs
	// these concurrently; the elapsed time is the max of the marker
	// appends, charged by sleeping them in parallel.
	var wg sync.WaitGroup
	for _, t := range p.touched {
		wg.Add(1)
		go func(t touchedPartition) {
			defer wg.Done()
			pp, perr := p.c.partition(t.topic, t.p)
			if perr != nil {
				return
			}
			p.c.chargeProduce()
			pp.appendControlAndResolve(p.txnID, true)
		}(t)
		appends++
	}
	wg.Wait()
	for _, oc := range p.offsets {
		if err := p.c.CommitOffsets(oc.group, oc.topic, oc.p, oc.off); err != nil {
			return appends, err
		}
		appends++
	}
	// Final commit record on the transaction stream.
	p.c.mu.Lock()
	p.c.txnLog = append(p.c.txnLog, txnLogEntry{TxnID: p.txnID, Kind: "commit"})
	p.c.mu.Unlock()
	appends++
	p.inTxn = false
	return appends, nil
}

// Abort rolls the transaction back: pending messages become invisible to
// read-committed consumers.
func (p *Producer) Abort() error {
	if !p.inTxn {
		return ErrNoTransaction
	}
	if err := p.checkEpoch(); err != nil {
		return err
	}
	p.c.chargeCoordinator()
	p.c.mu.Lock()
	p.c.txnLog = append(p.c.txnLog, txnLogEntry{TxnID: p.txnID, Kind: "prepare-abort"})
	p.c.mu.Unlock()
	for _, t := range p.touched {
		pp, err := p.c.partition(t.topic, t.p)
		if err != nil {
			continue
		}
		pp.appendControlAndResolve(p.txnID, false)
	}
	p.c.mu.Lock()
	p.c.txnLog = append(p.c.txnLog, txnLogEntry{TxnID: p.txnID, Kind: "abort"})
	p.c.mu.Unlock()
	p.inTxn = false
	return nil
}

// abortPending marks every pending message of txn aborted without
// appending a control marker; used when a fenced producer's transaction
// is rolled back by the coordinator.
func (p *partition) abortPending(txn string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	changed := false
	for _, m := range p.msgs {
		if m.state == statePending && m.txn == txn {
			m.state = stateAborted
			changed = true
		}
	}
	if changed {
		// Read-committed consumers parked at the last stable offset can
		// now skip past the aborted run.
		p.wakeLocked()
	}
}

// appendControlAndResolve appends a control marker and resolves every
// pending message of txn in this partition to committed or aborted.
func (p *partition) appendControlAndResolve(txn string, commit bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.msgs {
		if m.state == statePending && m.txn == txn {
			if commit {
				m.state = stateCommitted
			} else {
				m.state = stateAborted
			}
		}
	}
	ctl := &Message{Offset: Offset(len(p.msgs)), state: stateControl, txn: txn}
	p.msgs = append(p.msgs, ctl)
	p.wakeLocked()
}
