package kafkalog

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"impeller/internal/sim"
)

func newTestCluster(t *testing.T) *Cluster {
	t.Helper()
	c := NewCluster(Config{})
	t.Cleanup(c.Close)
	return c
}

func TestCreateTopicValidation(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if err := c.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("t", 3); err != nil {
		t.Fatalf("idempotent create failed: %v", err)
	}
	if err := c.CreateTopic("t", 4); err == nil {
		t.Fatal("partition count change accepted")
	}
	if n := c.Partitions("t"); n != 3 {
		t.Fatalf("Partitions = %d", n)
	}
}

func TestProduceFetchRoundTrip(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	off, err := c.Produce("t", 1, []byte("k"), []byte("v"))
	if err != nil || off != 0 {
		t.Fatalf("Produce = %d, %v", off, err)
	}
	m, err := c.Fetch("t", 1, 0, ReadUncommitted)
	if err != nil || m == nil {
		t.Fatalf("Fetch = %v, %v", m, err)
	}
	if string(m.Key) != "k" || string(m.Value) != "v" {
		t.Fatalf("message = %q/%q", m.Key, m.Value)
	}
	if m2, _ := c.Fetch("t", 0, 0, ReadUncommitted); m2 != nil {
		t.Fatal("other partition leaked message")
	}
	if _, err := c.Fetch("nope", 0, 0, ReadUncommitted); err != ErrNoTopic {
		t.Fatalf("unknown topic err = %v", err)
	}
}

func TestPartitionsIndependentlyOrdered(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if off, _ := c.Produce("t", 0, nil, []byte{byte(i)}); off != Offset(i) {
			t.Fatalf("partition 0 offset = %d, want %d", off, i)
		}
	}
	if off, _ := c.Produce("t", 1, nil, nil); off != 0 {
		t.Fatalf("partition 1 first offset = %d, want 0", off)
	}
}

func TestFetchBlockingWakes(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got := make(chan *Message, 1)
	go func() {
		m, err := c.FetchBlocking(ctx, "t", 0, 0, ReadUncommitted)
		if err != nil {
			t.Errorf("FetchBlocking: %v", err)
		}
		got <- m
	}()
	time.Sleep(5 * time.Millisecond)
	if _, err := c.Produce("t", 0, nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m == nil || string(m.Value) != "x" {
			t.Fatalf("got %v", m)
		}
	case <-ctx.Done():
		t.Fatal("blocked fetch never woke")
	}
}

func TestConsumerGroupOffsets(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if off := c.FetchOffset("g", "t", 0); off != 0 {
		t.Fatalf("fresh group offset = %d", off)
	}
	if err := c.CommitOffsets("g", "t", 0, 42); err != nil {
		t.Fatal(err)
	}
	if off := c.FetchOffset("g", "t", 0); off != 42 {
		t.Fatalf("offset = %d, want 42", off)
	}
	if off := c.FetchOffset("other", "t", 0); off != 0 {
		t.Fatalf("group isolation broken: %d", off)
	}
}

func TestTransactionCommitVisibility(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("out", 2); err != nil {
		t.Fatal(err)
	}
	p, err := c.InitProducer("task-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send("out", 0, nil, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send("out", 1, nil, []byte("b")); err != nil {
		t.Fatal(err)
	}

	// Uncommitted data visible only to read-uncommitted consumers.
	if m, _ := c.Fetch("out", 0, 0, ReadCommitted); m != nil {
		t.Fatal("read-committed saw pending message")
	}
	if m, _ := c.Fetch("out", 0, 0, ReadUncommitted); m == nil {
		t.Fatal("read-uncommitted missed pending message")
	}

	appends, err := p.Commit()
	if err != nil {
		t.Fatal(err)
	}
	// pre-commit + 2 partition markers + final commit = 4 appends.
	if appends != 4 {
		t.Fatalf("commit issued %d appends, want 4", appends)
	}
	for part := 0; part < 2; part++ {
		m, err := c.Fetch("out", part, 0, ReadCommitted)
		if err != nil || m == nil {
			t.Fatalf("partition %d after commit: %v, %v", part, m, err)
		}
	}
}

func TestTransactionAbortHidesMessages(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("out", 1); err != nil {
		t.Fatal(err)
	}
	p, _ := c.InitProducer("task-1")
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send("out", 0, nil, []byte("dead")); err != nil {
		t.Fatal(err)
	}
	if err := p.Abort(); err != nil {
		t.Fatal(err)
	}
	if m, _ := c.Fetch("out", 0, 0, ReadCommitted); m != nil {
		t.Fatalf("aborted message visible: %v", m)
	}
	// A following committed produce is visible and skips the aborted one.
	if _, err := c.Produce("out", 0, nil, []byte("live")); err != nil {
		t.Fatal(err)
	}
	m, _ := c.Fetch("out", 0, 0, ReadCommitted)
	if m == nil || string(m.Value) != "live" {
		t.Fatalf("got %v, want live message", m)
	}
}

func TestLastStableOffsetBlocksReadCommitted(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("out", 1); err != nil {
		t.Fatal(err)
	}
	p, _ := c.InitProducer("txn")
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send("out", 0, nil, []byte("pending")); err != nil {
		t.Fatal(err)
	}
	// A later non-transactional message must NOT be readable before the
	// open transaction resolves (LSO semantics).
	if _, err := c.Produce("out", 0, nil, []byte("later")); err != nil {
		t.Fatal(err)
	}
	if m, _ := c.Fetch("out", 0, 0, ReadCommitted); m != nil {
		t.Fatalf("read past LSO: %v", m)
	}
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	m, _ := c.Fetch("out", 0, 0, ReadCommitted)
	if m == nil || string(m.Value) != "pending" {
		t.Fatalf("first committed = %v", m)
	}
}

func TestZombieProducerFenced(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("out", 1); err != nil {
		t.Fatal(err)
	}
	old, _ := c.InitProducer("task-1")
	if err := old.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := old.Send("out", 0, nil, []byte("z1")); err != nil {
		t.Fatal(err)
	}
	// Task manager restarts the task under the same transactional id.
	fresh, _ := c.InitProducer("task-1")
	if err := fresh.Begin(); err != nil {
		t.Fatal(err)
	}
	// The zombie's every subsequent operation fails.
	if _, err := old.Send("out", 0, nil, []byte("z2")); err != ErrFenced {
		t.Fatalf("zombie send err = %v, want ErrFenced", err)
	}
	if _, err := old.Commit(); err != ErrFenced {
		t.Fatalf("zombie commit err = %v, want ErrFenced", err)
	}
	if _, err := fresh.Send("out", 0, nil, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Commit(); err != nil {
		t.Fatal(err)
	}
	// Only the fresh instance's message is committed.
	m, _ := c.Fetch("out", 0, 0, ReadCommitted)
	if m == nil || string(m.Value) != "ok" {
		t.Fatalf("committed = %v", m)
	}
}

func TestSendOffsetsCommitAtomicity(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("out", 1); err != nil {
		t.Fatal(err)
	}
	p, _ := c.InitProducer("t1")
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send("out", 0, nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := p.SendOffsets("g", "in", 0, 17); err != nil {
		t.Fatal(err)
	}
	if off := c.FetchOffset("g", "in", 0); off != 0 {
		t.Fatal("offset committed before transaction commit")
	}
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if off := c.FetchOffset("g", "in", 0); off != 17 {
		t.Fatalf("offset after commit = %d, want 17", off)
	}
}

func TestTxnStateErrors(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("out", 1); err != nil {
		t.Fatal(err)
	}
	p, _ := c.InitProducer("t")
	if _, err := p.Send("out", 0, nil, nil); err != ErrNoTransaction {
		t.Fatalf("send outside txn err = %v", err)
	}
	if _, err := p.Commit(); err != ErrNoTransaction {
		t.Fatalf("commit outside txn err = %v", err)
	}
	if err := p.Abort(); err != ErrNoTransaction {
		t.Fatalf("abort outside txn err = %v", err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err != ErrTxnInProgress {
		t.Fatalf("double begin err = %v", err)
	}
}

func TestCommitAppendCountGrowsWithPartitions(t *testing.T) {
	// The crux of §3.6: Kafka's commit cost scales with touched
	// partitions, while a progress marker is always one append.
	for _, parts := range []int{1, 4, 8} {
		c := NewCluster(Config{})
		if err := c.CreateTopic("out", parts); err != nil {
			t.Fatal(err)
		}
		p, _ := c.InitProducer("t")
		if err := p.Begin(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < parts; i++ {
			if _, err := p.Send("out", i, nil, []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		appends, err := p.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if want := parts + 2; appends != want {
			t.Fatalf("parts=%d: appends = %d, want %d", parts, appends, want)
		}
		c.Close()
	}
}

func TestCoordinatorLatencyCharged(t *testing.T) {
	c := NewCluster(Config{CoordinatorLatency: sim.FixedLatency(3 * time.Millisecond)})
	defer c.Close()
	if err := c.CreateTopic("out", 1); err != nil {
		t.Fatal(err)
	}
	p, _ := c.InitProducer("t") // 1 coordinator RPC
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := p.Send("out", 0, nil, nil); err != nil { // registration RPC
		t.Fatal(err)
	}
	if d := time.Since(start); d < 3*time.Millisecond {
		t.Fatalf("registration took %v, want >= 3ms", d)
	}
}

func TestTxnLogRecordsProtocolSteps(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("out", 1); err != nil {
		t.Fatal(err)
	}
	p, _ := c.InitProducer("t")
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send("out", 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// begin + add-partitions + prepare-commit + commit.
	if n := c.TxnLogLen(); n != 4 {
		t.Fatalf("txn log entries = %d, want 4", n)
	}
}

func TestClosedClusterErrors(t *testing.T) {
	c := NewCluster(Config{})
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Produce("t", 0, nil, nil); err != ErrClusterClosed {
		t.Fatalf("produce err = %v", err)
	}
	if _, err := c.InitProducer("x"); err != ErrClusterClosed {
		t.Fatalf("init err = %v", err)
	}
}

func TestConcurrentProducersPerPartitionOrder(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 4); err != nil {
		t.Fatal(err)
	}
	const per = 100
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := c.Produce("t", w, nil, []byte{byte(i)}); err != nil {
					t.Errorf("produce: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 4; w++ {
		for i := 0; i < per; i++ {
			m, err := c.Fetch("t", w, Offset(i), ReadUncommitted)
			if err != nil || m == nil || int(m.Value[0]) != i {
				t.Fatalf("partition %d offset %d: %v %v", w, i, m, err)
			}
		}
	}
}

// Property: under read-committed isolation, consumers observe exactly the
// messages of committed transactions, in per-partition order.
func TestPropertyReadCommittedExactness(t *testing.T) {
	check := func(plan []bool) bool {
		c := NewCluster(Config{})
		defer c.Close()
		if err := c.CreateTopic("t", 1); err != nil {
			return false
		}
		var want []string
		for i, commit := range plan {
			p, err := c.InitProducer(fmt.Sprintf("p%d", i))
			if err != nil {
				return false
			}
			if err := p.Begin(); err != nil {
				return false
			}
			v := fmt.Sprintf("v%d", i)
			if _, err := p.Send("t", 0, nil, []byte(v)); err != nil {
				return false
			}
			if commit {
				if _, err := p.Commit(); err != nil {
					return false
				}
				want = append(want, v)
			} else if err := p.Abort(); err != nil {
				return false
			}
		}
		var got []string
		var off Offset
		for {
			m, err := c.Fetch("t", 0, off, ReadCommitted)
			if err != nil {
				return false
			}
			if m == nil {
				break
			}
			got = append(got, string(m.Value))
			off = m.Offset + 1
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFetchBlockingPerPartitionIsolation(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// A fetcher blocked on partition 1 must sleep through traffic on
	// partition 0 (notification is per partition, not cluster-wide) and
	// wake for its own partition's first message.
	got := make(chan *Message, 1)
	go func() {
		m, err := c.FetchBlocking(ctx, "t", 1, 0, ReadUncommitted)
		if err != nil {
			t.Errorf("FetchBlocking: %v", err)
		}
		got <- m
	}()
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < 20; i++ {
		if _, err := c.Produce("t", 0, nil, []byte("noise")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case m := <-got:
		t.Fatalf("fetcher on partition 1 returned %v for partition-0 traffic", m)
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := c.Produce("t", 1, nil, []byte("mine")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m == nil || string(m.Value) != "mine" {
			t.Fatalf("got %v", m)
		}
	case <-ctx.Done():
		t.Fatal("fetcher never woke for its own partition")
	}
}

func TestFetchBlockingWakesOnAbortResolution(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	p, err := c.InitProducer("tx")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send("t", 0, nil, []byte("pending")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Produce("t", 0, nil, []byte("after")); err != nil {
		t.Fatal(err)
	}

	// Read-committed fetcher parks at the last stable offset (the open
	// transaction's first message); the abort must wake it so it can skip
	// the aborted run and deliver the later committed message.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got := make(chan *Message, 1)
	go func() {
		m, err := c.FetchBlocking(ctx, "t", 0, 0, ReadCommitted)
		if err != nil {
			t.Errorf("FetchBlocking: %v", err)
		}
		got <- m
	}()
	time.Sleep(5 * time.Millisecond)
	if err := p.Abort(); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m == nil || string(m.Value) != "after" {
			t.Fatalf("got %v", m)
		}
	case <-ctx.Done():
		t.Fatal("read-committed fetcher never woke after abort")
	}
}
