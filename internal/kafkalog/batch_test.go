package kafkalog

import (
	"context"
	"fmt"
	"testing"
	"time"

	"impeller/internal/sim"
)

// sleepRecorder is a clock that records Sleep charges instead of
// blocking, so latency-accounting tests stay deterministic.
type sleepRecorder struct {
	sim.RealClock
	slept time.Duration
}

func (c *sleepRecorder) Sleep(d time.Duration) { c.slept += d }

func TestProduceBatchDenseOffsetsAndContents(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Produce("t", 0, []byte("pre"), []byte("pre")); err != nil {
		t.Fatal(err)
	}
	msgs := make([]KV, 10)
	for i := range msgs {
		msgs[i] = KV{Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte(fmt.Sprintf("v%d", i))}
	}
	first, err := c.ProduceBatch("t", 0, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first offset = %d, want 1", first)
	}
	for i := range msgs {
		m, err := c.Fetch("t", 0, first+Offset(i), ReadCommitted)
		if err != nil || m == nil {
			t.Fatalf("Fetch(%d) = %v, %v", i, m, err)
		}
		if m.Offset != first+Offset(i) {
			t.Fatalf("offset %d, want %d", m.Offset, first+Offset(i))
		}
		if string(m.Key) != fmt.Sprintf("k%d", i) || string(m.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("message %d = %q/%q", i, m.Key, m.Value)
		}
	}
	if off, err := c.ProduceBatch("t", 0, nil); off != 0 || err != nil {
		t.Fatalf("empty batch = %d, %v", off, err)
	}
	if hw, _ := c.HighWatermark("t", 0); hw != 11 {
		t.Fatalf("high watermark = %d, want 11", hw)
	}
}

func TestProduceBatchCopiesInputs(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	key, val := []byte("key"), []byte("val")
	if _, err := c.ProduceBatch("t", 0, []KV{{Key: key, Value: val}}); err != nil {
		t.Fatal(err)
	}
	key[0], val[0] = 'X', 'X'
	m, err := c.Fetch("t", 0, 0, ReadUncommitted)
	if err != nil || m == nil {
		t.Fatalf("Fetch = %v, %v", m, err)
	}
	if string(m.Key) != "key" || string(m.Value) != "val" {
		t.Fatalf("batch aliased caller memory: %q/%q", m.Key, m.Value)
	}
}

func TestSendBatchTransactionalVisibility(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	p, err := c.InitProducer("txn-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SendBatch("t", 0, []KV{{Value: []byte("x")}}); err != ErrNoTransaction {
		t.Fatalf("SendBatch outside txn = %v", err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	first, err := p.SendBatch("t", 0, []KV{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("2")},
	})
	if err != nil || first != 0 {
		t.Fatalf("SendBatch = %d, %v", first, err)
	}
	// Pending: invisible to read-committed, visible to read-uncommitted.
	if m, _ := c.Fetch("t", 0, 0, ReadCommitted); m != nil {
		t.Fatal("pending batch visible to read-committed consumer")
	}
	if m, _ := c.Fetch("t", 0, 0, ReadUncommitted); m == nil {
		t.Fatal("pending batch invisible to read-uncommitted consumer")
	}
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m, _ := c.Fetch("t", 0, Offset(i), ReadCommitted)
		if m == nil {
			t.Fatalf("committed batch message %d unreadable", i)
		}
		if m.ProducerID != p.pid || m.Epoch != p.epoch {
			t.Fatalf("message %d producer metadata = %d/%d", i, m.ProducerID, m.Epoch)
		}
	}
}

func TestSendBatchRegistersPartitionOnce(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	p, err := c.InitProducer("txn-b")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	before := c.TxnLogLen()
	for i := 0; i < 3; i++ {
		if _, err := p.SendBatch("t", 0, []KV{{Value: []byte{byte(i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	// One add-partitions record for three batches to the same partition.
	if got := c.TxnLogLen() - before; got != 1 {
		t.Fatalf("txn log grew by %d, want 1 (single registration)", got)
	}
	if err := p.Abort(); err != nil {
		t.Fatal(err)
	}
	if m, _ := c.Fetch("t", 0, 0, ReadCommitted); m != nil {
		t.Fatal("aborted batch visible to read-committed consumer")
	}
}

func TestFetchBatchEquivalentToSingles(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	msgs := make([]KV, 17)
	for i := range msgs {
		msgs[i] = KV{Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte(fmt.Sprintf("v%d", i))}
	}
	if _, err := c.ProduceBatch("t", 0, msgs); err != nil {
		t.Fatal(err)
	}
	for _, iso := range []Isolation{ReadUncommitted, ReadCommitted} {
		var batched []*Message
		off := Offset(0)
		for {
			ms, err := c.FetchBatch("t", 0, off, iso, 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(ms) == 0 {
				break
			}
			if len(ms) > 5 {
				t.Fatalf("batch of %d, cap 5", len(ms))
			}
			batched = append(batched, ms...)
			off = ms[len(ms)-1].Offset + 1
		}
		var singles []*Message
		off = 0
		for {
			m, err := c.Fetch("t", 0, off, iso)
			if err != nil {
				t.Fatal(err)
			}
			if m == nil {
				break
			}
			singles = append(singles, m)
			off = m.Offset + 1
		}
		if len(batched) != len(singles) {
			t.Fatalf("iso %v: batched %d msgs, singles %d", iso, len(batched), len(singles))
		}
		for i := range singles {
			if batched[i].Offset != singles[i].Offset ||
				string(batched[i].Key) != string(singles[i].Key) ||
				string(batched[i].Value) != string(singles[i].Value) {
				t.Fatalf("iso %v: message %d diverges: %+v vs %+v", iso, i, batched[i], singles[i])
			}
		}
	}
}

func TestFetchBatchStopsAtLastStableOffset(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProduceBatch("t", 0, []KV{{Value: []byte("a")}, {Value: []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	p, err := c.InitProducer("txn-lso")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SendBatch("t", 0, []KV{{Value: []byte("pending")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProduceBatch("t", 0, []KV{{Value: []byte("c")}}); err != nil {
		t.Fatal(err)
	}
	// Read-committed: the batch must stop before the open transaction
	// even though max would reach past it.
	ms, err := c.FetchBatch("t", 0, 0, ReadCommitted, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || string(ms[0].Value) != "a" || string(ms[1].Value) != "b" {
		t.Fatalf("read-committed batch = %d msgs, want 2 (a,b)", len(ms))
	}
	// Read-uncommitted sees through the transaction.
	ms, err = c.FetchBatch("t", 0, 0, ReadUncommitted, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("read-uncommitted batch = %d msgs, want 4", len(ms))
	}
	// Commit unblocks the stable-offset stop.
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	ms, err = c.FetchBatch("t", 0, 0, ReadCommitted, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 || string(ms[3].Value) != "c" {
		t.Fatalf("post-commit batch = %d msgs, want 4 ending in c", len(ms))
	}
}

func TestFetchBatchOneChargePerBatch(t *testing.T) {
	clock := &sleepRecorder{}
	lat := 2 * time.Millisecond
	c := NewCluster(Config{FetchLatency: sim.FixedLatency(lat), Clock: clock})
	defer c.Close()
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	msgs := make([]KV, 12)
	for i := range msgs {
		msgs[i] = KV{Value: []byte{byte(i)}}
	}
	if _, err := c.ProduceBatch("t", 0, msgs); err != nil {
		t.Fatal(err)
	}
	clock.slept = 0
	off := Offset(0)
	fetches := 0
	for {
		ms, err := c.FetchBatch("t", 0, off, ReadCommitted, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) == 0 {
			break
		}
		fetches++
		off = ms[len(ms)-1].Offset + 1
	}
	// 12 messages / 4 per batch = 3 charged fetches + 1 empty probe.
	if fetches != 3 {
		t.Fatalf("consumed in %d fetches, want 3", fetches)
	}
	if want := 4 * lat; clock.slept != want {
		t.Fatalf("slept %v, want %v (one charge per fetch)", clock.slept, want)
	}
}

func TestFetchBatchBlockingWakes(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	type result struct {
		ms  []*Message
		err error
	}
	done := make(chan result, 1)
	go func() {
		ms, err := c.FetchBatchBlocking(context.Background(), "t", 0, 0, ReadCommitted, 8)
		done <- result{ms, err}
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case r := <-done:
		t.Fatalf("blocking fetch returned early: %d msgs, %v", len(r.ms), r.err)
	default:
	}
	if _, err := c.ProduceBatch("t", 0, []KV{{Value: []byte("x")}, {Value: []byte("y")}}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil || len(r.ms) != 2 {
			t.Fatalf("woken fetch = %d msgs, %v; want 2", len(r.ms), r.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocking fetch not woken by produce")
	}
	// Context cancellation unblocks an idle fetch.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		_, err := c.FetchBatchBlocking(ctx, "t", 0, 100, ReadCommitted, 8)
		done <- result{nil, err}
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case r := <-done:
		if r.err != context.Canceled {
			t.Fatalf("canceled fetch err = %v", r.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled fetch did not return")
	}
}

func TestSendBatchFencedProducer(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	old, err := c.InitProducer("txn-c")
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InitProducer("txn-c"); err != nil {
		t.Fatal(err)
	}
	if _, err := old.SendBatch("t", 0, []KV{{Value: []byte("z")}}); err != ErrFenced {
		t.Fatalf("fenced SendBatch = %v", err)
	}
}
