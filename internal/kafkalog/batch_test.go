package kafkalog

import (
	"fmt"
	"testing"
)

func TestProduceBatchDenseOffsetsAndContents(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Produce("t", 0, []byte("pre"), []byte("pre")); err != nil {
		t.Fatal(err)
	}
	msgs := make([]KV, 10)
	for i := range msgs {
		msgs[i] = KV{Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte(fmt.Sprintf("v%d", i))}
	}
	first, err := c.ProduceBatch("t", 0, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first offset = %d, want 1", first)
	}
	for i := range msgs {
		m, err := c.Fetch("t", 0, first+Offset(i), ReadCommitted)
		if err != nil || m == nil {
			t.Fatalf("Fetch(%d) = %v, %v", i, m, err)
		}
		if m.Offset != first+Offset(i) {
			t.Fatalf("offset %d, want %d", m.Offset, first+Offset(i))
		}
		if string(m.Key) != fmt.Sprintf("k%d", i) || string(m.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("message %d = %q/%q", i, m.Key, m.Value)
		}
	}
	if off, err := c.ProduceBatch("t", 0, nil); off != 0 || err != nil {
		t.Fatalf("empty batch = %d, %v", off, err)
	}
	if hw, _ := c.HighWatermark("t", 0); hw != 11 {
		t.Fatalf("high watermark = %d, want 11", hw)
	}
}

func TestProduceBatchCopiesInputs(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	key, val := []byte("key"), []byte("val")
	if _, err := c.ProduceBatch("t", 0, []KV{{Key: key, Value: val}}); err != nil {
		t.Fatal(err)
	}
	key[0], val[0] = 'X', 'X'
	m, err := c.Fetch("t", 0, 0, ReadUncommitted)
	if err != nil || m == nil {
		t.Fatalf("Fetch = %v, %v", m, err)
	}
	if string(m.Key) != "key" || string(m.Value) != "val" {
		t.Fatalf("batch aliased caller memory: %q/%q", m.Key, m.Value)
	}
}

func TestSendBatchTransactionalVisibility(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	p, err := c.InitProducer("txn-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SendBatch("t", 0, []KV{{Value: []byte("x")}}); err != ErrNoTransaction {
		t.Fatalf("SendBatch outside txn = %v", err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	first, err := p.SendBatch("t", 0, []KV{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("2")},
	})
	if err != nil || first != 0 {
		t.Fatalf("SendBatch = %d, %v", first, err)
	}
	// Pending: invisible to read-committed, visible to read-uncommitted.
	if m, _ := c.Fetch("t", 0, 0, ReadCommitted); m != nil {
		t.Fatal("pending batch visible to read-committed consumer")
	}
	if m, _ := c.Fetch("t", 0, 0, ReadUncommitted); m == nil {
		t.Fatal("pending batch invisible to read-uncommitted consumer")
	}
	if _, err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m, _ := c.Fetch("t", 0, Offset(i), ReadCommitted)
		if m == nil {
			t.Fatalf("committed batch message %d unreadable", i)
		}
		if m.ProducerID != p.pid || m.Epoch != p.epoch {
			t.Fatalf("message %d producer metadata = %d/%d", i, m.ProducerID, m.Epoch)
		}
	}
}

func TestSendBatchRegistersPartitionOnce(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	p, err := c.InitProducer("txn-b")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	before := c.TxnLogLen()
	for i := 0; i < 3; i++ {
		if _, err := p.SendBatch("t", 0, []KV{{Value: []byte{byte(i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	// One add-partitions record for three batches to the same partition.
	if got := c.TxnLogLen() - before; got != 1 {
		t.Fatalf("txn log grew by %d, want 1 (single registration)", got)
	}
	if err := p.Abort(); err != nil {
		t.Fatal(err)
	}
	if m, _ := c.Fetch("t", 0, 0, ReadCommitted); m != nil {
		t.Fatal("aborted batch visible to read-committed consumer")
	}
}

func TestSendBatchFencedProducer(t *testing.T) {
	c := newTestCluster(t)
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	old, err := c.InitProducer("txn-c")
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InitProducer("txn-c"); err != nil {
		t.Fatal(err)
	}
	if _, err := old.SendBatch("t", 0, []KV{{Value: []byte("z")}}); err != ErrFenced {
		t.Fatalf("fenced SendBatch = %v", err)
	}
}
