package core

import (
	"context"
	"errors"
	"sync"

	"impeller/internal/sharedlog"
)

// Checkpointer builds asynchronous state checkpoints for a marker-mode
// stateful task (paper §3.5, "Accelerating state recovery"): it replays
// the task's owned group change streams — committed ranges only, per
// producer, exactly as recovery's groupReplay resolves them — into a
// shadow store, and periodically writes the shadow's snapshot to the
// checkpoint store. Checkpoints are incremental: each one extends the
// previous by folding only new group-stream records.
//
// The group streams, not the task's own change log, are the replay
// source because key groups migrate between slots at rescale: the state
// of an acquired group was written by its previous owners. Each
// checkpoint is stamped with the signature of the group set it was
// folded under; recovery ignores checkpoints whose signature does not
// match the task's current ownership, and the manager replaces the
// checkpointer (fresh shadow, new signature) whenever a rescale changes
// the task's groups.
//
// The checkpointer runs off the task's critical path (the paper
// checkpoints every 10 s "as a progress marker is written") and
// survives task restarts: it belongs to the manager, keyed by task id.
type Checkpointer struct {
	task   TaskID
	stage  string
	groups []int
	sig    uint64
	env    *Env

	shadow *StateStore
	retry  *retrier
	replay *groupReplay
	cur    *sharedlog.Cursor

	// mu guards covered/hasCovered and epoch, which Covered() reads
	// concurrently.
	mu sync.Mutex
	// covered is the group-stream LSN up to which the shadow is
	// complete (groupReplay.covered).
	covered    LSN
	hasCovered bool
	// epoch counts checkpoints written.
	epoch uint64

	// Metrics, when set, receives change-replay counts.
	Metrics *TaskMetrics
}

// NewCheckpointer builds a checkpointer for task, folding the change
// streams of the given owned key groups of stage.
func NewCheckpointer(task TaskID, stage string, groups []int, env *Env) *Checkpointer {
	c := &Checkpointer{
		task:   task,
		stage:  stage,
		groups: groups,
		sig:    groupsSig(groups),
		env:    env,
		shadow: NewStateStore(nil),
		// The checkpointer runs on the manager, not the task's compute
		// node, so its retrier carries no node identity — shard faults
		// still surface as retryable ErrUnavailable reads.
		retry: newRetrier(env, "", nil),
	}
	c.replay = newGroupReplay(func(cb *Batch) {
		for i := range cb.Records {
			r := &cb.Records[i]
			value, deleted, derr := DecodeChange(r.Value)
			if derr != nil {
				continue
			}
			c.shadow.ApplyChange(string(r.Key), value, deleted)
		}
	})
	return c
}

// Run checkpoints every SnapshotInterval until ctx is done.
func (c *Checkpointer) Run(ctx context.Context) {
	if c.env.SnapshotInterval <= 0 {
		return
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.env.Clock.After(c.env.SnapshotInterval):
		}
		if err := c.Checkpoint(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			// Transient failure even after retries (e.g. a long shard
			// outage): skip this round and try again next interval —
			// recovery falls back to the change log meanwhile.
			continue
		}
	}
}

// Checkpoint advances the shadow store over the group streams and
// persists a snapshot of everything resolved so far. It is exported so
// tests and the recovery benchmark can force a checkpoint
// deterministically.
func (c *Checkpointer) Checkpoint(ctx context.Context) error {
	advanced, err := c.advance(ctx)
	if err != nil {
		return err
	}
	if !advanced {
		return nil // nothing newly covered since the last checkpoint
	}
	c.mu.Lock()
	covered := c.covered
	epoch := c.epoch + 1
	c.mu.Unlock()
	ck := &markerCheckpoint{
		Epoch:      epoch,
		CoveredLSN: covered,
		GroupsSig:  c.sig,
		State:      c.shadow.Snapshot(),
	}
	if err := c.env.Checkpoints.Put(MarkerCkptKey(c.task), ck.encode()); err != nil {
		return err
	}
	c.mu.Lock()
	c.epoch = epoch
	c.mu.Unlock()
	// Annotate the covered marker with aux data indicating a checkpoint
	// exists (paper §4: "Auxiliary data in the progress marker
	// indicates the presence of a checkpoint").
	_ = c.env.Log.SetAux(covered, []byte("checkpoint"))
	if c.env.GC != nil {
		// The group-stream prefix covered by this checkpoint — and every
		// marker before it — is no longer needed for recovery.
		c.env.GC.Report("ckpt/"+c.task, covered)
	}
	return nil
}

// advance folds new group-stream records into the shadow store and
// reports whether the covered frontier moved.
func (c *Checkpointer) advance(ctx context.Context) (bool, error) {
	if c.cur == nil {
		c.cur = c.env.Log.OpenCursorOpts(c.tags(), 0, sharedlog.CursorOptions{})
	}
	for {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		var recs []*sharedlog.Record
		err := c.retry.do(ctx, "ckpt read groups", func() error {
			var e error
			recs, e = c.cur.NextBatch(DefaultReadBatch)
			return e
		})
		if errors.Is(err, sharedlog.ErrCursorInvalidated) {
			// Our position was trimmed away; everything below the horizon
			// was covered by reported floors, so skipping to it is safe.
			c.cur.Seek(c.env.Log.TrimHorizon())
			continue
		}
		if err != nil {
			return false, err
		}
		if len(recs) == 0 {
			break // caught up with the tail
		}
		for _, rec := range recs {
			cb, err := DecodeBatch(rec.Payload)
			if err != nil {
				return false, err
			}
			if err := c.replay.observe(rec.LSN, cb); err != nil {
				return false, err
			}
		}
	}
	cov, ok := c.replay.covered()
	if !ok {
		return false, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hasCovered && cov <= c.covered {
		return false, nil
	}
	c.covered = cov
	c.hasCovered = true
	return true, nil
}

func (c *Checkpointer) tags() []sharedlog.Tag {
	tags := make([]sharedlog.Tag, len(c.groups))
	for i, g := range c.groups {
		tags[i] = GroupChangeTag(c.stage, g)
	}
	return tags
}

// Covered reports the LSN up to which checkpoints cover the group
// streams; the garbage collector may trim them up to it (paper §3.5:
// "All the log records before this progress marker can be deleted").
func (c *Checkpointer) Covered() (LSN, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch == 0 {
		return 0, false
	}
	return c.covered, true
}
