package core

import (
	"context"
	"sync"

	"impeller/internal/sharedlog"
)

// Checkpointer builds asynchronous state checkpoints for a marker-mode
// stateful task (paper §3.5, "Accelerating state recovery"): it
// replays the task's change log up to and including a progress marker —
// skipping uncommitted records, since only committed ranges are
// replayed — into a shadow store, and periodically writes the shadow's
// snapshot to the checkpoint store. Checkpoints are incremental: each
// one extends the previous by replaying only new change-log ranges.
//
// The checkpointer runs off the task's critical path (the paper
// checkpoints every 10 s "as a progress marker is written") and
// survives task restarts: it belongs to the manager, keyed by task id.
type Checkpointer struct {
	task TaskID
	env  *Env

	shadow *StateStore
	retry  *retrier
	// markerAt is the next task-log position to read.
	markerAt LSN

	// mu guards covered and epoch, which Covered() reads concurrently.
	mu sync.Mutex
	// covered is the LSN of the last marker folded into the shadow.
	covered LSN
	// epoch counts checkpoints written.
	epoch uint64

	// Metrics, when set, receives change-replay counts.
	Metrics *TaskMetrics
}

// NewCheckpointer builds a checkpointer for task.
func NewCheckpointer(task TaskID, env *Env) *Checkpointer {
	return &Checkpointer{
		task:   task,
		env:    env,
		shadow: NewStateStore(nil),
		// The checkpointer runs on the manager, not the task's compute
		// node, so its retrier carries no node identity — shard faults
		// still surface as retryable ErrUnavailable reads.
		retry: newRetrier(env, "", nil),
	}
}

// Run checkpoints every SnapshotInterval until ctx is done.
func (c *Checkpointer) Run(ctx context.Context) {
	if c.env.SnapshotInterval <= 0 {
		return
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.env.Clock.After(c.env.SnapshotInterval):
		}
		if err := c.Checkpoint(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			// Transient failure even after retries (e.g. a long shard
			// outage): skip this round and try again next interval —
			// recovery falls back to the change log meanwhile.
			continue
		}
	}
}

// Checkpoint advances the shadow store to the newest progress marker
// and persists a snapshot covering it. It is exported so tests and the
// recovery benchmark can force a checkpoint deterministically.
func (c *Checkpointer) Checkpoint(ctx context.Context) error {
	advanced, err := c.advance(ctx)
	if err != nil {
		return err
	}
	if !advanced {
		return nil // no new marker since the last checkpoint
	}
	c.mu.Lock()
	covered := c.covered
	epoch := c.epoch + 1
	c.mu.Unlock()
	ck := &markerCheckpoint{
		Epoch:      epoch,
		CoveredLSN: covered,
		State:      c.shadow.Snapshot(),
	}
	if err := c.env.Checkpoints.Put(MarkerCkptKey(c.task), ck.encode()); err != nil {
		return err
	}
	c.mu.Lock()
	c.epoch = epoch
	c.mu.Unlock()
	// Annotate the covered marker with aux data indicating a checkpoint
	// exists (paper §4: "Auxiliary data in the progress marker
	// indicates the presence of a checkpoint").
	_ = c.env.Log.SetAux(covered, []byte("checkpoint"))
	if c.env.GC != nil {
		// The change-log prefix covered by this checkpoint — and every
		// marker before it — is no longer needed for recovery.
		c.env.GC.Report("ckpt/"+c.task, covered)
	}
	return nil
}

// advance replays committed change-log ranges of any new markers into
// the shadow store.
func (c *Checkpointer) advance(ctx context.Context) (bool, error) {
	taskTag := TaskLogTag(c.task)
	changeTag := ChangeLogTag(c.task)
	advanced := false
	for {
		if err := ctx.Err(); err != nil {
			return advanced, err
		}
		rec, err := c.readNext(ctx, taskTag, c.markerAt)
		if err == sharedlog.ErrTrimmed {
			c.markerAt = c.env.Log.TrimHorizon()
			continue
		}
		if err != nil || rec == nil {
			return advanced, err
		}
		c.markerAt = rec.LSN + 1
		mb, err := DecodeBatch(rec.Payload)
		if err != nil {
			return advanced, err
		}
		if mb.Kind != KindMarker {
			continue
		}
		m, err := DecodeMarker(mb.Control)
		if err != nil {
			return advanced, err
		}
		if m.ChangeFirst != NoLSN {
			pos := m.ChangeFirst
			for pos <= rec.LSN {
				crec, err := c.readNext(ctx, changeTag, pos)
				if err != nil {
					return advanced, err
				}
				if crec == nil || crec.LSN > rec.LSN {
					break
				}
				pos = crec.LSN + 1
				cb, err := DecodeBatch(crec.Payload)
				if err != nil {
					return advanced, err
				}
				if cb.Kind != KindChange {
					continue
				}
				for i := range cb.Records {
					r := &cb.Records[i]
					value, deleted, derr := DecodeChange(r.Value)
					if derr != nil {
						continue
					}
					c.shadow.ApplyChange(string(r.Key), value, deleted)
				}
			}
		}
		c.mu.Lock()
		c.covered = rec.LSN
		c.mu.Unlock()
		advanced = true
	}
}

// readNext wraps the change/task-log read in the transient-fault retry
// loop (ErrTrimmed is not retryable and passes through to the caller's
// horizon handling).
func (c *Checkpointer) readNext(ctx context.Context, tag sharedlog.Tag, from LSN) (*sharedlog.Record, error) {
	var rec *sharedlog.Record
	err := c.retry.do(ctx, "ckpt read "+string(tag), func() error {
		var e error
		rec, e = c.env.Log.ReadNext(tag, from)
		return e
	})
	return rec, err
}

// Covered reports the LSN of the newest marker folded into checkpoints;
// the garbage collector may trim the change log up to it (paper §3.5:
// "All the log records before this progress marker can be deleted").
func (c *Checkpointer) Covered() (LSN, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch == 0 {
		return 0, false
	}
	return c.covered, true
}
