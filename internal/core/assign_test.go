package core

import (
	"fmt"
	"math/rand"
	"testing"

	"impeller/internal/sharedlog"
)

// TestAssignmentTransitionProperties is the assignment-plane property
// test: for any epoch transition (split or merge) over any key-group
// count, the claimed group sets partition the key space exactly — every
// group owned by exactly one slot, no gaps, no overlap — and routing is
// epoch-invariant: a key's group (hence its data tag) never changes,
// and a key in a group whose owner survives the transition keeps
// flowing to the same task slot.
func TestAssignmentTransitionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		groups := 1 + rng.Intn(32)
		oldSlots := 1 + rng.Intn(groups)
		newSlots := 1 + rng.Intn(groups)
		old := contiguousAssignment("st", 1, groups, oldSlots)
		next := contiguousAssignment("st", 2, groups, newSlots)
		for _, a := range []*Assignment{old, next} {
			if err := a.validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			// Exact cover: the slots' claimed group sets partition
			// [0, groups) with no overlap and no gap.
			seen := make([]int, groups)
			for s := 0; s < a.Slots; s++ {
				for _, g := range a.GroupsOf(s) {
					seen[g]++
				}
			}
			for g, n := range seen {
				if n != 1 {
					t.Fatalf("trial %d: group %d claimed by %d slots (groups=%d slots=%d)", trial, g, n, groups, a.Slots)
				}
			}
			// Contiguity: each slot's range is an interval (state handoff
			// moves at most two boundary ranges per slot).
			for s := 0; s < a.Slots; s++ {
				gs := a.GroupsOf(s)
				for i := 1; i < len(gs); i++ {
					if gs[i] != gs[i-1]+1 {
						t.Fatalf("trial %d: slot %d owns non-contiguous groups %v", trial, s, gs)
					}
				}
			}
		}
		// Routing agreement: a key's group is the same at both epochs
		// (the data-tag map is fixed), and if that group's owner did not
		// change, the key reaches the same slot before and after.
		for i := 0; i < 50; i++ {
			key := []byte(fmt.Sprintf("key-%d-%d", trial, i))
			gOld := Partition(key, groups)
			gNew := Partition(key, groups)
			if gOld != gNew {
				t.Fatalf("trial %d: key routed to group %d then %d", trial, gOld, gNew)
			}
			if old.Owner[gOld] == next.Owner[gOld] {
				continue // untouched partition: same slot by construction
			}
			// Touched partition: its handoff must be observable as an
			// ownership change, or recovery would skip its floor.
			if !ownerChangedObservable(old, next, gOld) {
				t.Fatalf("trial %d: migrated group %d not observable as changed", trial, gOld)
			}
		}
	}
}

func ownerChangedObservable(old, next *Assignment, g int) bool {
	return old.Owner[g] != next.Owner[g]
}

// TestAssignmentMetaRoundTrip drives the metadata-KV protocol end to
// end: install, reload, advance an epoch with handoff floors, and check
// the stale-floor screen (ownerChangedAt) against an aborted attempt.
func TestAssignmentMetaRoundTrip(t *testing.T) {
	log := sharedlog.Open(sharedlog.Config{})
	defer log.Close()
	meta := log.Meta()

	a, err := InitAssignment(meta, "q/s0", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Epoch != 1 || a.Slots != 2 || a.Groups != 8 {
		t.Fatalf("installed %+v", a)
	}
	// Racing installer adopts the existing epoch.
	b, err := InitAssignment(meta, "q/s0", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Epoch != 1 || b.Slots != 2 {
		t.Fatalf("second install did not adopt: %+v", b)
	}

	// Simulate an aborted 2→4 attempt: epoch-2 keys and floors written,
	// epoch CAS never executed.
	aborted := contiguousAssignment("q/s0", 2, 8, 4)
	storeEpochKeys(meta, aborted)
	for g := 0; g < 8; g++ {
		setHandoffFloor(meta, "q/s0", 2, g, 1000)
	}
	cur, err := LoadAssignment(meta, "q/s0")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Epoch != 1 {
		t.Fatalf("aborted attempt advanced the epoch to %d", cur.Epoch)
	}

	// A later 2→1 merge commits epoch 2, rewriting its owner keys. The
	// stale floors for groups that did NOT change owner at the committed
	// epoch must be screened out; groups that did change keep theirs.
	committed := contiguousAssignment("q/s0", 2, 8, 1)
	storeEpochKeys(meta, committed)
	for _, g := range []int{4, 5, 6, 7} { // groups migrating slot1→slot0
		setHandoffFloor(meta, "q/s0", 2, g, 77)
	}
	if !meta.CompareAndSwap(assignEpochKey("q/s0"), 1, 2) {
		t.Fatal("epoch CAS failed")
	}
	cur, err = LoadAssignment(meta, "q/s0")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Epoch != 2 || cur.Slots != 1 {
		t.Fatalf("committed assignment %+v", cur)
	}
	for g := 0; g < 8; g++ {
		f, ok := handoffFloor(meta, "q/s0", 2, g)
		if !ok {
			t.Fatalf("group %d floor missing", g)
		}
		changed := ownerChangedAt(meta, "q/s0", 2, g)
		if g < 4 {
			// Owned by slot 0 at both epochs: the stale 1000 floor from
			// the aborted attempt must be screened.
			if changed {
				t.Fatalf("group %d wrongly reported as migrated", g)
			}
		} else {
			if !changed {
				t.Fatalf("group %d migration not visible", g)
			}
			if f != 77 {
				t.Fatalf("group %d floor %d, want 77", g, f)
			}
		}
	}
}

// TestGroupsSig pins the signature's two properties recovery relies on:
// order-insensitivity and discrimination between different group sets.
func TestGroupsSig(t *testing.T) {
	if groupsSig([]int{2, 0, 1}) != groupsSig([]int{0, 1, 2}) {
		t.Fatal("signature is order-sensitive")
	}
	sigs := map[uint64][]int{}
	for _, gs := range [][]int{{}, {0}, {1}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}, {3}} {
		sig := groupsSig(gs)
		if prev, dup := sigs[sig]; dup {
			t.Fatalf("collision: %v and %v", prev, gs)
		}
		sigs[sig] = gs
	}
}
