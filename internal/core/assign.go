package core

import (
	"fmt"
	"hash/fnv"
	"sort"

	"impeller/internal/sharedlog"
)

// Assignment plane (DESIGN.md §10). A stage's key space is split into a
// fixed number of key groups (G, chosen at build time); records route to
// groups with the same FNV hash previously used for substreams, so data
// tags d/<stream>/<g> never change. What does change — at rescale — is
// which task slot owns which group. That mapping is epoch-versioned
// state in the shared log's metadata KV:
//
//	P/<stage>/epoch        current assignment epoch E (0 = uninitialized)
//	P/<stage>/groups       key-group count G (fixed for the job's life)
//	P/<stage>/<e>/slots    task-slot count at epoch e
//	P/<stage>/<e>/owner/<g> owning slot of group g at epoch e, stored +1
//	H/<stage>/<e>/<g>      state-handoff floor for group g entering
//	                       epoch e, stored +1 (see handoff keys below)
//
// Owner and floor values are stored +1 so slot 0 / LSN 0 are
// distinguishable from a missing key (MetaStore reads missing keys as
// 0). Epoch keys for e+1 are fully written before P/<stage>/epoch is
// CAS'd e→e+1, so any reader that observes epoch e finds e's keys.

// Assignment is one epoch's group→slot map for a stage.
type Assignment struct {
	// Stage is the stage name (not a task id: groups outlive slots).
	Stage string
	// Epoch is the assignment epoch, starting at 1.
	Epoch uint64
	// Groups is the stage's fixed key-group count G.
	Groups int
	// Slots is the task-slot count at this epoch.
	Slots int
	// Owner[g] is the slot owning group g.
	Owner []int
}

// contiguousOwners returns the canonical contiguous group→slot map:
// owner(g) = g*slots/groups. Each slot owns a contiguous group range,
// every group has exactly one owner, and when groups == slots the map
// is the identity — the pre-rescaling behavior.
func contiguousOwners(groups, slots int) []int {
	owner := make([]int, groups)
	for g := range owner {
		owner[g] = g * slots / groups
	}
	return owner
}

// contiguousAssignment builds the canonical assignment at an epoch.
func contiguousAssignment(stage string, epoch uint64, groups, slots int) *Assignment {
	return &Assignment{
		Stage:  stage,
		Epoch:  epoch,
		Groups: groups,
		Slots:  slots,
		Owner:  contiguousOwners(groups, slots),
	}
}

// GroupsOf returns the groups owned by slot, in ascending order.
func (a *Assignment) GroupsOf(slot int) []int {
	var out []int
	for g, s := range a.Owner {
		if s == slot {
			out = append(out, g)
		}
	}
	return out
}

// validate checks structural well-formedness: every group owned by an
// in-range slot and every slot owning at least one group.
func (a *Assignment) validate() error {
	if a.Groups <= 0 || a.Slots <= 0 || a.Slots > a.Groups {
		return fmt.Errorf("core: assignment %s@%d: %d slots over %d groups", a.Stage, a.Epoch, a.Slots, a.Groups)
	}
	if len(a.Owner) != a.Groups {
		return fmt.Errorf("core: assignment %s@%d: owner map covers %d of %d groups", a.Stage, a.Epoch, len(a.Owner), a.Groups)
	}
	used := make([]bool, a.Slots)
	for g, s := range a.Owner {
		if s < 0 || s >= a.Slots {
			return fmt.Errorf("core: assignment %s@%d: group %d owned by out-of-range slot %d", a.Stage, a.Epoch, g, s)
		}
		used[s] = true
	}
	for s, ok := range used {
		if !ok {
			return fmt.Errorf("core: assignment %s@%d: slot %d owns no groups", a.Stage, a.Epoch, s)
		}
	}
	return nil
}

// groupsSig is an order-insensitive signature of a slot's owned group
// set, stamped into marker checkpoints so a checkpoint taken under a
// different ownership is never restored (the shadow store would be
// missing — or wrongly include — migrated groups' state).
func groupsSig(groups []int) uint64 {
	sorted := append([]int(nil), groups...)
	sort.Ints(sorted)
	h := fnv.New64a()
	var buf [8]byte
	for _, g := range sorted {
		putUint64(buf[:], uint64(g))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Metadata-KV key constructors.

func assignEpochKey(stage string) string { return "P/" + stage + "/epoch" }

func assignGroupsKey(stage string) string { return "P/" + stage + "/groups" }

func assignSlotsKey(stage string, epoch uint64) string {
	return fmt.Sprintf("P/%s/%d/slots", stage, epoch)
}

func assignOwnerKey(stage string, epoch uint64, group int) string {
	return fmt.Sprintf("P/%s/%d/owner/%d", stage, epoch, group)
}

// handoffKey holds the replay floor for group g entering epoch e: the
// donor slot's committed input frontier + 1 at the moment it was fenced,
// stored +1. A slot that acquires g at epoch e starts g's replay exactly
// there — below would re-deliver records the donor already committed,
// above would lose records the donor had not yet processed.
func handoffKey(stage string, epoch uint64, group int) string {
	return fmt.Sprintf("H/%s/%d/%d", stage, epoch, group)
}

func setHandoffFloor(meta *sharedlog.MetaStore, stage string, epoch uint64, group int, floor LSN) {
	meta.Set(handoffKey(stage, epoch, group), uint64(floor)+1)
}

func handoffFloor(meta *sharedlog.MetaStore, stage string, epoch uint64, group int) (LSN, bool) {
	v, ok := meta.Get(handoffKey(stage, epoch, group))
	if !ok {
		return 0, false
	}
	return LSN(v - 1), true
}

// ownerChangedAt reports whether group g changed owner entering epoch e
// according to the committed owner keys. Missing keys default to
// "changed" — a floor under an unreadable epoch is safer applied than
// ignored (applying merely re-reads records the per-producer dedup
// suppresses; ignoring could skip unconsumed ones).
func ownerChangedAt(meta *sharedlog.MetaStore, stage string, e uint64, g int) bool {
	if e < 2 {
		return true
	}
	prev, ok := meta.Get(assignOwnerKey(stage, e-1, g))
	if !ok {
		return true
	}
	cur, ok := meta.Get(assignOwnerKey(stage, e, g))
	if !ok {
		return true
	}
	return prev != cur
}

// storeEpochKeys writes epoch a.Epoch's slots/owner keys. It does NOT
// move P/<stage>/epoch — the caller commits the transition with a CAS
// after the keys are durably written.
func storeEpochKeys(meta *sharedlog.MetaStore, a *Assignment) {
	meta.Set(assignSlotsKey(a.Stage, a.Epoch), uint64(a.Slots))
	for g, s := range a.Owner {
		meta.Set(assignOwnerKey(a.Stage, a.Epoch, g), uint64(s)+1)
	}
}

// loadAssignmentAt reads epoch e's keys. Missing or malformed keys are
// an error: epochs are fully written before they become current.
func loadAssignmentAt(meta *sharedlog.MetaStore, stage string, epoch uint64) (*Assignment, error) {
	groups, ok := meta.Get(assignGroupsKey(stage))
	if !ok || groups == 0 {
		return nil, fmt.Errorf("core: assignment %s@%d: groups key missing", stage, epoch)
	}
	slots, ok := meta.Get(assignSlotsKey(stage, epoch))
	if !ok || slots == 0 {
		return nil, fmt.Errorf("core: assignment %s@%d: slots key missing", stage, epoch)
	}
	a := &Assignment{Stage: stage, Epoch: epoch, Groups: int(groups), Slots: int(slots), Owner: make([]int, groups)}
	for g := range a.Owner {
		v, ok := meta.Get(assignOwnerKey(stage, epoch, g))
		if !ok || v == 0 {
			return nil, fmt.Errorf("core: assignment %s@%d: owner key for group %d missing", stage, epoch, g)
		}
		a.Owner[g] = int(v - 1)
	}
	if err := a.validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// LoadAssignment reads the stage's current assignment, or (nil, nil) if
// the stage has never been initialized.
func LoadAssignment(meta *sharedlog.MetaStore, stage string) (*Assignment, error) {
	epoch, ok := meta.Get(assignEpochKey(stage))
	if !ok || epoch == 0 {
		return nil, nil
	}
	return loadAssignmentAt(meta, stage, epoch)
}

// InitAssignment installs the epoch-1 contiguous assignment for a stage
// if none exists, and returns the current assignment either way. Safe to
// race: the epoch CAS 0→1 picks one winner and losers re-load.
func InitAssignment(meta *sharedlog.MetaStore, stage string, groups, slots int) (*Assignment, error) {
	if cur, err := LoadAssignment(meta, stage); err != nil || cur != nil {
		return cur, err
	}
	a := contiguousAssignment(stage, 1, groups, slots)
	if err := a.validate(); err != nil {
		return nil, err
	}
	meta.Set(assignGroupsKey(stage), uint64(groups))
	storeEpochKeys(meta, a)
	if !meta.CompareAndSwap(assignEpochKey(stage), 0, 1) {
		return LoadAssignment(meta, stage)
	}
	return a, nil
}
