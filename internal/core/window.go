package core

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Windowed aggregation (paper §3.5, "Supporting window semantics"; §4
// "stream window aggregate"). Window metadata travels in record
// payloads/keys, orthogonal to the fault-tolerance design. Windows are
// event-time based; progress is tracked with a per-task watermark (the
// maximum event time seen minus an allowed lateness), and final-mode
// windows fire when the watermark passes their end.

// WindowSpec defines a tumbling or sliding (hopping) event-time window.
type WindowSpec struct {
	// Size is the window length.
	Size time.Duration
	// Advance is the hop between window starts; Advance == Size is a
	// tumbling window (the zero value is normalized to Size).
	Advance time.Duration
	// Grace is the allowed out-of-orderness before a window finalizes.
	Grace time.Duration
}

func (w WindowSpec) normalize() WindowSpec {
	if w.Advance <= 0 {
		w.Advance = w.Size
	}
	return w
}

// windowsFor returns the [start, end) windows containing eventTime, in
// ascending start order. All times are microseconds.
func (w WindowSpec) windowsFor(eventTime int64) []windowBounds {
	size := w.Size.Microseconds()
	adv := w.Advance.Microseconds()
	if size <= 0 || adv <= 0 {
		return nil
	}
	var out []windowBounds
	// The earliest window containing t starts at the smallest multiple
	// of adv that is > t-size; the latest starts at floor(t/adv)*adv.
	last := (eventTime / adv) * adv
	for start := last; start > eventTime-size; start -= adv {
		if start < 0 {
			break
		}
		out = append(out, windowBounds{Start: start, End: start + size})
	}
	// Reverse into ascending order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

type windowBounds struct {
	Start, End int64 // microseconds, [Start, End)
}

// WindowKey prefixes a record key with its window bounds so downstream
// consumers can group by (window, key).
func WindowKey(start, end int64, key []byte) []byte {
	out := make([]byte, 16+len(key))
	binary.BigEndian.PutUint64(out, uint64(start))
	binary.BigEndian.PutUint64(out[8:], uint64(end))
	copy(out[16:], key)
	return out
}

// SplitWindowKey parses a key produced by WindowKey.
func SplitWindowKey(wkey []byte) (start, end int64, key []byte, err error) {
	if len(wkey) < 16 {
		return 0, 0, nil, ErrBadEncoding
	}
	return int64(binary.BigEndian.Uint64(wkey)),
		int64(binary.BigEndian.Uint64(wkey[8:])),
		wkey[16:], nil
}

// WindowEmit selects when a windowed aggregate emits.
type WindowEmit int

const (
	// EmitPerUpdate emits the updated aggregate on every input record,
	// Kafka Streams' default (windowed KTable changelog).
	EmitPerUpdate WindowEmit = iota
	// EmitFinal emits once per window when the watermark passes the
	// window end plus grace, then drops the window's state.
	EmitFinal
)

type windowAggregate struct {
	name string
	spec WindowSpec
	agg  Aggregator
	mode WindowEmit
	ctx  ProcContext
}

// WindowAggregate aggregates records per (window, key). Emitted records
// are keyed with WindowKey(start, end, key).
func WindowAggregate(name string, spec WindowSpec, mode WindowEmit, agg Aggregator) Processor {
	return &windowAggregate{name: name, spec: spec.normalize(), agg: agg, mode: mode}
}

func (w *windowAggregate) Open(ctx ProcContext) error {
	w.ctx = ctx
	return nil
}

// state layout:
//
//	<name>/wm                      -> watermark (8 bytes)
//	<name>/w/<start:be64>/<key>    -> accumulator
//
// Big-endian starts make Range iterate windows in time order, so firing
// expired windows scans a prefix.
func (w *windowAggregate) Process(_ int, d Datum, emit Emit) error {
	st := w.ctx.Store()
	grace := w.spec.Grace.Microseconds()

	wm := w.watermark(st)
	if d.EventTime > wm {
		wm = d.EventTime
		st.Put(w.name+"/wm", binary.LittleEndian.AppendUint64(nil, uint64(wm)))
	}

	for _, b := range w.spec.windowsFor(d.EventTime) {
		if w.mode == EmitFinal && b.End+grace <= wm {
			continue // window already finalized; late record dropped
		}
		sk := w.stateKey(b.Start, d.Key)
		acc, _ := st.Get(sk)
		acc = w.agg(d.Key, d.Value, acc)
		st.Put(sk, acc)
		if w.mode == EmitPerUpdate {
			emit(0, Datum{Key: WindowKey(b.Start, b.End, d.Key), Value: acc, EventTime: d.EventTime})
		}
	}

	if w.mode == EmitFinal {
		w.fireExpired(wm, emit)
	}
	return nil
}

func (w *windowAggregate) watermark(st *StateStore) int64 {
	if v, ok := st.Get(w.name + "/wm"); ok && len(v) == 8 {
		return int64(binary.LittleEndian.Uint64(v))
	}
	return -1
}

func (w *windowAggregate) stateKey(start int64, key []byte) string {
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], uint64(start))
	return fmt.Sprintf("%s/w/%s/%s", w.name, sb[:], key)
}

// fireExpired emits and deletes every window whose end+grace has passed
// the watermark.
func (w *windowAggregate) fireExpired(wm int64, emit Emit) {
	st := w.ctx.Store()
	grace := w.spec.Grace.Microseconds()
	size := w.spec.Size.Microseconds()
	prefix := w.name + "/w/"
	type fired struct {
		start int64
		key   []byte
		acc   []byte
	}
	var toFire []fired
	st.Range(prefix, func(k string, v []byte) bool {
		rest := k[len(prefix):]
		if len(rest) < 9 { // 8-byte start + "/"
			return true
		}
		start := int64(binary.BigEndian.Uint64([]byte(rest[:8])))
		if start+size+grace > wm {
			return false // windows sorted by start; all later ones still open
		}
		toFire = append(toFire, fired{start: start, key: []byte(rest[9:]), acc: append([]byte(nil), v...)})
		return true
	})
	// A watermark jump can expire many windows at once; charge the bulk
	// firing so the cooperative engine yields at the next batch boundary.
	w.ctx.Charge(len(toFire))
	for _, f := range toFire {
		// Final results carry the window end as their event time (as in
		// Flink), not the time of the record whose arrival fired them.
		emit(0, Datum{Key: WindowKey(f.start, f.start+size, f.key), Value: f.acc, EventTime: f.start + size})
		st.Delete(w.stateKey(f.start, f.key))
	}
}
