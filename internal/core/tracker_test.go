package core

import (
	"testing"

	"impeller/internal/sharedlog"
)

func marker(producer TaskID, instance uint64, outFirst map[sharedlog.Tag]sharedlog.LSN) *Batch {
	m := &ProgressMarker{InputEnd: NoLSN, ChangeFirst: NoLSN, OutFirst: outFirst}
	return &Batch{Kind: KindMarker, Producer: producer, Instance: instance, Control: m.Encode()}
}

func data(producer TaskID, instance uint64) *Batch {
	return &Batch{Kind: KindData, Producer: producer, Instance: instance}
}

// TestMarkerTrackerPaperFigure5 reproduces the exact scenario of the
// paper's Figure 5: the task has buffered records at LSNs 5..8 and
// processes Task 1a's progress marker committing range [6,8].
func TestMarkerTrackerPaperFigure5(t *testing.T) {
	myTag := DataTag("X", 0)
	tr := newMarkerTracker(myTag)

	// Marker from Task 1a at LSN 9 committing output range [6, 9].
	// (The paper's committed range for 1a is [6,8]; with shrunk markers
	// the upper bound is the marker's own LSN.)
	if err := tr.observeControl(marker("1a", 1, map[sharedlog.Tag]sharedlog.LSN{myTag: 6}), 9); err != nil {
		t.Fatal(err)
	}

	// Case 1: LSN 5 from Task 1a is before the earliest committed range
	// — uncommitted, discard.
	if c := tr.classify(data("1a", 1), 5); c != classUncommitted {
		t.Fatalf("lsn 5 = %v, want uncommitted", c)
	}
	// Case 2: LSN 6 within the committed range — process.
	if c := tr.classify(data("1a", 1), 6); c != classCommitted {
		t.Fatalf("lsn 6 = %v, want committed", c)
	}
	if c := tr.classify(data("1a", 1), 8); c != classCommitted {
		t.Fatalf("lsn 8 = %v, want committed", c)
	}
	// Case 3: LSN 7 is from Task 1b, which has not committed anything —
	// unknown, keep buffering.
	if c := tr.classify(data("1b", 1), 7); c != classUnknown {
		t.Fatalf("1b lsn 7 = %v, want unknown", c)
	}
	// A record from 1a beyond the marker is unknown too.
	if c := tr.classify(data("1a", 1), 12); c != classUnknown {
		t.Fatalf("lsn 12 = %v, want unknown", c)
	}
}

func TestMarkerTrackerSourceAlwaysCommitted(t *testing.T) {
	tr := newMarkerTracker(DataTag("in", 0))
	b := &Batch{Kind: KindSource, Producer: "ingress/0", Instance: 1}
	if c := tr.classify(b, 0); c != classCommitted {
		t.Fatalf("source = %v, want committed", c)
	}
}

func TestMarkerTrackerMultipleRanges(t *testing.T) {
	myTag := DataTag("X", 1)
	tr := newMarkerTracker(myTag)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tr.observeControl(marker("p", 1, map[sharedlog.Tag]sharedlog.LSN{myTag: 2}), 4))
	must(tr.observeControl(marker("p", 1, map[sharedlog.Tag]sharedlog.LSN{myTag: 7}), 9))
	cases := []struct {
		lsn  sharedlog.LSN
		want classification
	}{
		{1, classUncommitted}, // before first range
		{2, classCommitted},
		{4, classCommitted},
		{5, classUncommitted}, // gap between ranges
		{6, classUncommitted},
		{7, classCommitted},
		{9, classCommitted},
		{10, classUnknown},
	}
	for _, c := range cases {
		if got := tr.classify(data("p", 1), c.lsn); got != c.want {
			t.Fatalf("lsn %d = %v, want %v", c.lsn, got, c.want)
		}
	}
}

func TestMarkerTrackerMarkerWithoutMyTagAdvancesTop(t *testing.T) {
	myTag := DataTag("X", 0)
	tr := newMarkerTracker(myTag)
	// Producer appended data at LSN 3 to us, then crashed before its
	// marker. Its replacement writes a marker (LSN 10) with no output
	// for our substream — our buffered record must become uncommitted,
	// not hang as unknown forever.
	if c := tr.classify(data("p", 1), 3); c != classUnknown {
		t.Fatalf("before marker = %v, want unknown", c)
	}
	if err := tr.observeControl(marker("p", 2, nil), 10); err != nil {
		t.Fatal(err)
	}
	if c := tr.classify(data("p", 1), 3); c != classUncommitted {
		t.Fatalf("after marker = %v, want uncommitted", c)
	}
}

func TestMarkerTrackerZombieInstanceFenced(t *testing.T) {
	myTag := DataTag("X", 0)
	tr := newMarkerTracker(myTag)
	// New instance (2) commits a range; zombie instance (1) data at a
	// higher LSN can never commit (paper §3.4: consumers detect and
	// discard zombie inputs when they see a higher instance number).
	if err := tr.observeControl(marker("p", 2, map[sharedlog.Tag]sharedlog.LSN{myTag: 5}), 8); err != nil {
		t.Fatal(err)
	}
	if c := tr.classify(data("p", 1), 12); c != classUncommitted {
		t.Fatalf("zombie data = %v, want uncommitted", c)
	}
	// Data from the live instance beyond the marker stays unknown.
	if c := tr.classify(data("p", 2), 12); c != classUnknown {
		t.Fatalf("live data = %v, want unknown", c)
	}
}

func TestMarkerTrackerIgnoresForeignControl(t *testing.T) {
	tr := newMarkerTracker(DataTag("X", 0))
	if err := tr.observeControl(&Batch{Kind: KindTxnCommit, Producer: "p", Epoch: 1}, 5); err != nil {
		t.Fatal(err)
	}
	if c := tr.classify(data("p", 1), 3); c != classUnknown {
		t.Fatalf("after foreign control = %v, want unknown", c)
	}
}

func TestTxnTrackerLifecycle(t *testing.T) {
	tr := newTxnTracker()
	d := func(epoch uint64) *Batch {
		return &Batch{Kind: KindData, Producer: "p", Instance: 1, Epoch: epoch}
	}
	// Non-transactional (epoch 0) commits immediately.
	if c := tr.classify(&Batch{Kind: KindData, Producer: "x", Epoch: 0}, 1); c != classCommitted {
		t.Fatalf("epoch 0 = %v", c)
	}
	// Open transaction: unknown.
	if c := tr.classify(d(1), 5); c != classUnknown {
		t.Fatalf("open txn = %v", c)
	}
	// Commit epoch 1.
	if err := tr.observeControl(&Batch{Kind: KindTxnCommit, Producer: "p", Instance: 1, Epoch: 1}, 6); err != nil {
		t.Fatal(err)
	}
	if c := tr.classify(d(1), 5); c != classCommitted {
		t.Fatalf("committed txn = %v", c)
	}
	if c := tr.classify(d(2), 7); c != classUnknown {
		t.Fatalf("next txn = %v", c)
	}
	// Abort epoch 2.
	if err := tr.observeControl(&Batch{Kind: KindTxnAbort, Producer: "p", Instance: 1, Epoch: 2}, 8); err != nil {
		t.Fatal(err)
	}
	if c := tr.classify(d(2), 7); c != classUncommitted {
		t.Fatalf("aborted txn = %v", c)
	}
	// Epoch 3 commits; earlier epochs of same instance stay resolved.
	if err := tr.observeControl(&Batch{Kind: KindTxnCommit, Producer: "p", Instance: 1, Epoch: 3}, 9); err != nil {
		t.Fatal(err)
	}
	if c := tr.classify(d(3), 9); c != classCommitted {
		t.Fatalf("epoch 3 = %v", c)
	}
	if c := tr.classify(d(2), 7); c != classUncommitted {
		t.Fatalf("aborted epoch after later commit = %v", c)
	}
}

func TestTxnTrackerFencedInstance(t *testing.T) {
	tr := newTxnTracker()
	// Instance 1 opens epoch 5, then instance 2 appears and commits.
	if err := tr.observeControl(&Batch{Kind: KindTxnCommit, Producer: "p", Instance: 2, Epoch: 1}, 10); err != nil {
		t.Fatal(err)
	}
	old := &Batch{Kind: KindData, Producer: "p", Instance: 1, Epoch: 5}
	if c := tr.classify(old, 3); c != classUncommitted {
		t.Fatalf("fenced instance data = %v, want uncommitted", c)
	}
	// But instance 1's previously committed epochs remain committed.
	if err := tr.observeControl(&Batch{Kind: KindTxnCommit, Producer: "p", Instance: 1, Epoch: 4}, 2); err != nil {
		t.Fatal(err)
	}
	oldCommitted := &Batch{Kind: KindData, Producer: "p", Instance: 1, Epoch: 4}
	if c := tr.classify(oldCommitted, 1); c != classCommitted {
		t.Fatalf("old committed epoch = %v, want committed", c)
	}
}

func TestOpenTrackerCommitsEverything(t *testing.T) {
	tr := openTracker{}
	if c := tr.classify(data("p", 1), 100); c != classCommitted {
		t.Fatalf("open tracker = %v", c)
	}
}

func TestMultiTagTrackerRoutesByTag(t *testing.T) {
	tagA, tagB := DataTag("A", 0), DataTag("B", 0)
	mt := newMultiTagMarkerTracker([]sharedlog.Tag{tagA, tagB})
	// One marker commits different ranges on the two inputs of a join.
	mk := marker("p", 1, map[sharedlog.Tag]sharedlog.LSN{tagA: 5, tagB: 8})
	if err := mt.observe(mk, 10); err != nil {
		t.Fatal(err)
	}
	if c := mt.classifyTagged(tagA, data("p", 1), 6); c != classCommitted {
		t.Fatalf("tagA lsn6 = %v", c)
	}
	if c := mt.classifyTagged(tagB, data("p", 1), 6); c != classUncommitted {
		t.Fatalf("tagB lsn6 = %v (range starts at 8)", c)
	}
	if c := mt.classifyTagged(tagB, data("p", 1), 9); c != classCommitted {
		t.Fatalf("tagB lsn9 = %v", c)
	}
}

func TestMarkerTrackerRejectsCorruptRanges(t *testing.T) {
	myTag := DataTag("X", 0)
	tr := newMarkerTracker(myTag)
	// Inverted range: first > marker LSN.
	if err := tr.observeControl(marker("p", 1, map[sharedlog.Tag]sharedlog.LSN{myTag: 20}), 10); err == nil {
		t.Fatal("inverted range accepted")
	}
	// Overlapping range: a second marker whose range dips below the
	// previous committed top.
	tr = newMarkerTracker(myTag)
	if err := tr.observeControl(marker("p", 1, map[sharedlog.Tag]sharedlog.LSN{myTag: 5}), 9); err != nil {
		t.Fatal(err)
	}
	if err := tr.observeControl(marker("p", 1, map[sharedlog.Tag]sharedlog.LSN{myTag: 7}), 12); err == nil {
		t.Fatal("overlapping range accepted")
	}
}
