package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"impeller/internal/sharedlog"
)

// TxnCoordinator implements the Kafka Streams transaction coordinator
// over the shared log (paper §5.1: "we place one transaction
// coordinator on each storage node"; topics and partitions are emulated
// by shared log tags). Every coordinator interaction a task performs in
// phase one is a synchronous RPC charged with the configured latency;
// phase two (commit markers to every touched substream, the offsets
// record, the final commit record) runs asynchronously inside the
// coordinator, exactly as in §3.6.
//
// The coordinator runs on the storage nodes, which the evaluated fault
// model keeps alive (the paper's baselines assume the same), so its
// in-memory state survives task failures and it can finish or abort a
// failed task's transaction during fencing.
type TxnCoordinator struct {
	log    *sharedlog.Log
	env    *Env
	shards int
	retry  *retrier

	mu        sync.Mutex
	instances map[TaskID]uint64
	open      map[TaskID]*openTxn
}

type openTxn struct {
	instance uint64
	epoch    uint64
	touched  []sharedlog.Tag
	prepared bool
	offsets  *ProgressMarker
	done     chan struct{}
}

// NewTxnCoordinator builds a coordinator for the query's log. shards
// models the number of coordinator replicas (one per storage node).
func NewTxnCoordinator(env *Env, shards int) *TxnCoordinator {
	if shards <= 0 {
		shards = 1
	}
	return &TxnCoordinator{
		log:    env.Log,
		env:    env,
		shards: shards,
		// The coordinator lives on the storage nodes, so it has no
		// compute-node identity; its appends still retry transient
		// sequencer faults — losing a phase-two commit marker would
		// leave the transaction's outputs unclassifiable downstream.
		retry:     newRetrier(env, "", nil),
		instances: make(map[TaskID]uint64),
		open:      make(map[TaskID]*openTxn),
	}
}

func (c *TxnCoordinator) shardOf(task TaskID) int {
	return Partition([]byte(task), c.shards)
}

func (c *TxnCoordinator) chargeRPC() {
	if m := c.env.CoordinatorLatency; m != nil {
		c.env.Clock.Sleep(m.Sample())
	}
}

// appendTxnLog writes a coordinator transaction-stream record.
func (c *TxnCoordinator) appendTxnLog(task TaskID, kind string, epoch uint64) {
	payload := (&Batch{
		Kind:     KindTxnLog,
		Producer: task,
		Epoch:    epoch,
		Control:  []byte(kind),
	}).Encode()
	// Best-effort: the coordinator's own stream is bookkeeping; a
	// closed log during shutdown is not an error path tasks care about.
	c.appendRetry([]sharedlog.Tag{TxnStreamTag(c.shardOf(task))}, payload)
}

// appendRetry appends through the transient-fault retry loop. Phase-two
// records (commit/abort markers, offsets) are commit points: dropping
// one on a fault that will heal would leave the transaction's outputs
// permanently unclassifiable, so the coordinator waits outages out.
func (c *TxnCoordinator) appendRetry(tags []sharedlog.Tag, payload []byte) {
	_ = c.retry.do(context.Background(), "txn append", func() error {
		_, err := c.log.Append(tags, payload)
		return err
	})
}

// markerBatch builds one AppendEntry per tag, all sharing payload (the
// log copies payloads on entry). Phase-two markers fan out to every
// touched substream; shipping them as one group commit models Kafka's
// concurrent per-partition marker appends, whose elapsed time is their
// maximum — and keeps the Kafka-txn baseline on the batched dataplane
// so the comparison stays fair.
func markerBatch(tags []sharedlog.Tag, payload []byte) []sharedlog.AppendEntry {
	entries := make([]sharedlog.AppendEntry, len(tags))
	for i, tag := range tags {
		entries[i] = sharedlog.AppendEntry{Tags: []sharedlog.Tag{tag}, Payload: payload}
	}
	return entries
}

// appendBatchRetry appends a marker group through the retry loop.
func (c *TxnCoordinator) appendBatchRetry(entries []sharedlog.AppendEntry) {
	if len(entries) == 0 {
		return
	}
	_ = c.retry.do(context.Background(), "txn append", func() error {
		_, err := c.log.AppendBatch(entries)
		return err
	})
}

// Register adds output substreams to the task's current transaction —
// the synchronous AddPartitionsToTxn round trip of phase one.
func (c *TxnCoordinator) Register(task TaskID, instance, epoch uint64, tags []sharedlog.Tag) {
	c.chargeRPC()
	c.mu.Lock()
	if cur, ok := c.instances[task]; ok && instance < cur {
		c.mu.Unlock()
		return // fenced; the zombie learns at prepare time
	}
	c.instances[task] = instance
	txn := c.open[task]
	if txn == nil || txn.epoch != epoch || txn.instance != instance {
		txn = &openTxn{instance: instance, epoch: epoch}
		c.open[task] = txn
	}
	txn.touched = append(txn.touched, tags...)
	c.mu.Unlock()
	c.appendTxnLog(task, "add-partitions", epoch)
}

// Prepare runs the synchronous pre-commit of phase one and launches
// phase two. It returns a channel closed when phase two completes;
// the next transaction must wait on it before committing.
func (c *TxnCoordinator) Prepare(task TaskID, instance, epoch uint64, touched []sharedlog.Tag, offsets *ProgressMarker) (<-chan struct{}, error) {
	c.chargeRPC()
	c.mu.Lock()
	if cur, ok := c.instances[task]; ok && instance < cur {
		c.mu.Unlock()
		return nil, ErrZombie
	}
	c.instances[task] = instance
	txn := c.open[task]
	if txn == nil || txn.instance != instance || txn.epoch != epoch {
		txn = &openTxn{instance: instance, epoch: epoch}
	}
	txn.touched = dedupTags(append(txn.touched, touched...))
	txn.prepared = true
	txn.offsets = offsets
	txn.done = make(chan struct{})
	c.open[task] = txn
	c.mu.Unlock()

	c.appendTxnLog(task, "prepare-commit", epoch)
	go c.completePhase2(task, txn)
	return txn.done, nil
}

// completePhase2 appends a commit marker to every touched substream,
// the offsets record, and the final commit record (paper §3.6, second
// phase). Kafka appends the per-partition markers concurrently (the
// elapsed time is their maximum); here that is one group commit.
func (c *TxnCoordinator) completePhase2(task TaskID, txn *openTxn) {
	defer close(txn.done)
	if len(txn.touched) > 0 {
		payload := (&Batch{
			Kind:     KindTxnCommit,
			Producer: task,
			Instance: txn.instance,
			Epoch:    txn.epoch,
		}).Encode()
		c.appendBatchRetry(markerBatch(txn.touched, payload))
	}
	if txn.offsets != nil {
		payload := (&Batch{
			Kind:     KindTxnOffsets,
			Producer: task,
			Instance: txn.instance,
			Epoch:    txn.epoch,
			Control:  txn.offsets.Encode(),
		}).Encode()
		c.appendRetry([]sharedlog.Tag{OffsetStreamTag(task)}, payload)
	}
	c.appendTxnLog(task, "commit", txn.epoch)

	c.mu.Lock()
	if c.open[task] == txn {
		delete(c.open, task)
	}
	c.mu.Unlock()
}

// Fence registers a new instance for task and resolves any transaction
// left by the previous one: prepared transactions complete (their
// pre-commit record is the commit point); unprepared ones abort, making
// their records permanently invisible downstream.
func (c *TxnCoordinator) Fence(task TaskID, newInstance uint64) {
	c.mu.Lock()
	txn := c.open[task]
	if txn != nil && txn.instance >= newInstance {
		txn = nil // not an older instance; nothing to resolve
	}
	old := c.instances[task]
	if newInstance > old {
		c.instances[task] = newInstance
	}
	if txn != nil {
		delete(c.open, task)
	}
	c.mu.Unlock()
	if txn == nil {
		return
	}
	if txn.prepared {
		<-txn.done // phase two already running; let it finish
		return
	}
	c.appendTxnLog(task, "prepare-abort", txn.epoch)
	if tags := dedupTags(txn.touched); len(tags) > 0 {
		payload := (&Batch{
			Kind:     KindTxnAbort,
			Producer: task,
			Instance: txn.instance,
			Epoch:    txn.epoch,
		}).Encode()
		c.appendBatchRetry(markerBatch(tags, payload))
	}
	c.appendTxnLog(task, "abort", txn.epoch)
}

func dedupTags(tags []sharedlog.Tag) []sharedlog.Tag {
	seen := make(map[sharedlog.Tag]bool, len(tags))
	out := tags[:0]
	for _, t := range tags {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// --- Aligned checkpoint coordinator (paper §5.1 baseline) ---

// CkptCoordinator drives Flink-style aligned checkpoints: it initiates
// a checkpoint every commit interval, sources inject barriers, every
// task snapshots its state to the checkpoint store when its barriers
// align, and the checkpoint completes when all participants have acked.
// At most one checkpoint is in progress (paper §5.1: "we allow one
// in-progress checkpoint in the system").
type CkptCoordinator struct {
	mu           sync.Mutex
	epoch        uint64 // currently initiated checkpoint
	completed    uint64 // last fully acked checkpoint
	pending      map[TaskID]bool
	participants map[TaskID]bool
	sources      map[TaskID]uint64 // source id -> last epoch it emitted barriers for
	started      time.Time
	clock        interface{ Now() time.Time }
	timeout      time.Duration
	meta         *sharedlog.MetaStore // durable completed-epoch record
}

// ckptCompletedKey is the log-metadata key recording the newest fully
// acked aligned checkpoint. The coordinator's other state is
// reconstructible (a restart simply initiates the next epoch), but the
// completed epoch gates recovery — losing it to a power failure would
// silently roll every task back to scratch even though their snapshots
// survived in the checkpoint store.
const ckptCompletedKey = "ckpt/completed"

// NewCkptCoordinator builds a coordinator; participants are registered
// before Start. On a recovered log it resumes from the durably recorded
// completed epoch, so post-restart checkpoints continue the epoch
// sequence instead of reusing epochs tasks already snapshotted.
func NewCkptCoordinator(env *Env) *CkptCoordinator {
	c := &CkptCoordinator{
		pending:      make(map[TaskID]bool),
		participants: make(map[TaskID]bool),
		sources:      make(map[TaskID]uint64),
		clock:        env.Clock,
		timeout:      10 * env.CommitInterval,
	}
	if env.Log != nil {
		c.meta = env.Log.Meta()
		if v, ok := c.meta.Get(ckptCompletedKey); ok {
			c.completed = v
			c.epoch = v
		}
	}
	return c
}

// AddParticipant registers a task (or source) whose ack gates
// checkpoint completion.
func (c *CkptCoordinator) AddParticipant(id TaskID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.participants[id] = true
}

// RemoveParticipant unregisters a participant (e.g. a stopped source).
func (c *CkptCoordinator) RemoveParticipant(id TaskID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.participants, id)
	delete(c.pending, id)
	c.maybeCompleteLocked()
}

// Tick is called on the coordinator's interval: it initiates the next
// checkpoint if none is in progress, and aborts one that timed out.
func (c *CkptCoordinator) Tick(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pending) > 0 {
		if now.Sub(c.started) <= c.timeout {
			return
		}
		// Abort the stuck checkpoint (a participant crashed, or its
		// barriers were lost to a fault) and fall through to initiate
		// the next epoch immediately: the new epoch's barriers
		// supersede the aborted alignment downstream, so the system
		// rolls forward instead of wedging on an epoch that can never
		// complete.
		c.pending = make(map[TaskID]bool)
	}
	c.epoch++
	c.started = now
	for id := range c.participants {
		c.pending[id] = true
	}
}

// BarrierEpoch reports the checkpoint epoch a source should emit
// barriers for, if it has not already done so.
func (c *CkptCoordinator) BarrierEpoch(source TaskID) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch == 0 || c.sources[source] >= c.epoch || !c.pending[source] {
		return 0, false
	}
	c.sources[source] = c.epoch
	return c.epoch, true
}

// Ack records that a participant finished snapshotting for epoch; the
// checkpoint completes when the last participant acks.
func (c *CkptCoordinator) Ack(id TaskID, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		return
	}
	delete(c.pending, id)
	c.maybeCompleteLocked()
}

func (c *CkptCoordinator) maybeCompleteLocked() {
	if len(c.pending) == 0 && c.epoch > c.completed {
		c.completed = c.epoch
		if c.meta != nil {
			// Every task's snapshot Put for this epoch has completed (the
			// acks gate on them), so recording the epoch now means a
			// recovered cluster only ever points at snapshots that exist.
			c.meta.Set(ckptCompletedKey, c.completed)
		}
	}
}

// LastCompleted returns the newest fully acked checkpoint epoch.
func (c *CkptCoordinator) LastCompleted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed
}

// Loop ticks the coordinator until ctx is done.
func (c *CkptCoordinator) Loop(ctx context.Context, env *Env) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-env.Clock.After(env.CommitInterval):
			c.Tick(env.Clock.Now())
		}
	}
}

// CkptKey is the checkpoint store key for a task's aligned snapshot.
func CkptKey(task TaskID, epoch uint64) string {
	return fmt.Sprintf("ackpt/%s/%d", task, epoch)
}

// MarkerCkptKey is the checkpoint store key for a task's marker-mode
// asynchronous state checkpoint (paper §3.5).
func MarkerCkptKey(task TaskID) string {
	return "mckpt/" + string(task)
}
