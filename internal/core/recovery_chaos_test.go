package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"impeller/internal/kvstore"
	"impeller/internal/sharedlog"
)

// startWordCountProbe is startWordCount with a recovery probe installed
// before the manager starts: recovery-crash tests use it to kill a task
// at a deterministic point inside its own recovery.
func startWordCountProbe(t *testing.T, proto FTProtocol, p1, p2 int, probe func(TaskID, string)) *testCluster {
	t.Helper()
	env := &Env{
		Log:            sharedlog.Open(sharedlog.Config{}),
		Checkpoints:    kvstore.Open(kvstore.Config{}),
		Protocol:       proto,
		CommitInterval: 25 * time.Millisecond,
	}
	env.SetRecoveryProbe(probe)
	q := wordCountQuery(p1, p2, 1)
	mgr, err := NewManager(env, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	c := &testCluster{t: t, env: mgr.Env(), mgr: mgr, cancel: cancel, counts: make(map[string]uint64)}

	if ck := mgr.Ckpt(); ck != nil {
		ck.AddParticipant("ingress/0")
	}
	c.ingress = NewIngress("ingress/0", "lines", p1, mgr.Env(), mgr.Ckpt())
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		_ = c.ingress.Run(ctx, 5*time.Millisecond)
	}()

	c.sink = NewGatedSink("counts", 1, mgr.Env())
	c.sink.OnRecord = func(r Record, _ TaskID, _ time.Time) {
		c.mu.Lock()
		c.counts[string(r.Key)] = binary.LittleEndian.Uint64(r.Value)
		c.mu.Unlock()
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		_ = c.sink.Run(ctx)
	}()

	t.Cleanup(func() {
		c.cancel()
		c.mgr.Stop()
		c.wg.Wait()
		c.env.Log.Close()
	})
	return c
}

// midRecoveryCrash is the shared scaffold: process a first wave, kill
// the target task, kill its replacement again at `point` inside its
// recovery, and assert the third instance converges to exact counts.
func midRecoveryCrash(t *testing.T, proto FTProtocol, target TaskID, point string) {
	var (
		tc     *testCluster
		armed  atomic.Bool
		fired  atomic.Bool
		reKill sync.Once
	)
	probe := func(id TaskID, p string) {
		if !armed.Load() || id != target || p != point {
			return
		}
		reKill.Do(func() {
			fired.Store(true)
			_ = tc.mgr.Kill(id)
		})
	}
	tc = startWordCountProbe(t, proto, 2, 2, probe)

	want := sendLoad(tc, 600)
	tc.waitCounts(want, 30*time.Second)
	if proto == ProtoAlignedCheckpoint {
		// Wait for a completed checkpoint so the mid-recovery crash hits
		// a recovery that actually restores state.
		deadline := time.Now().Add(10 * time.Second)
		for tc.mgr.Ckpt().LastCompleted() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("no aligned checkpoint ever completed")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	armed.Store(true)
	if err := tc.mgr.Kill(target); err != nil {
		t.Fatal(err)
	}
	// The replacement enters recovery, the probe kills it at `point`,
	// and the instance after that must recover to a consistent state.
	deadline := time.Now().Add(15 * time.Second)
	for !fired.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("recovery probe %q never fired for %s", point, target)
		}
		time.Sleep(5 * time.Millisecond)
	}
	armed.Store(false) // let the final recovery run to completion

	for k, v := range sendLoad(tc, 600) {
		want[k] += v
	}
	tc.waitCounts(want, 30*time.Second)
	if r := tc.mgr.Restarts(target); r < 2 {
		t.Fatalf("restarts = %d, want >= 2 (initial kill + mid-recovery kill)", r)
	}
}

func TestCrashDuringMarkerRecovery(t *testing.T) {
	// "replay" fires after the tail marker is read, before the change
	// log is replayed — the window where state is partially restored.
	midRecoveryCrash(t, ProtoProgressMarker, "wc/count/0", "replay")
}

func TestCrashDuringMarkerRecoveryTailRead(t *testing.T) {
	midRecoveryCrash(t, ProtoProgressMarker, "wc/count/1", "marker")
}

func TestCrashDuringTxnRecovery(t *testing.T) {
	// "txn" fires after the offsets record is read and the epoch bumped,
	// before the epoch-gated change-log replay.
	midRecoveryCrash(t, ProtoKafkaTxn, "wc/count/0", "txn")
}

func TestCrashDuringAlignedRecovery(t *testing.T) {
	// "aligned" fires after the last completed epoch is resolved, before
	// the snapshot is loaded.
	midRecoveryCrash(t, ProtoAlignedCheckpoint, "wc/count/0", "aligned")
}

// TestZombieFencedAppendRejected is the fencing regression test: a
// zombified task keeps running after its replacement starts, and its
// next progress-marker append — conditional on the instance number the
// replacement already bumped — must be rejected by the log. The
// rejection is observable as a CondFailed count, and exactly-once
// output must hold throughout.
func TestZombieFencedAppendRejected(t *testing.T) {
	c := startWordCount(t, ProtoProgressMarker, 1, 1)
	c.mgr.SetTimeouts(100*time.Millisecond, 0)

	want := sendLoad(c, 300)
	c.waitCounts(want, 30*time.Second)
	if got := c.env.Log.Stats().CondFailed; got != 0 {
		t.Fatalf("CondFailed = %d before any zombie existed", got)
	}

	if err := c.mgr.Zombify("wc/count/0"); err != nil {
		t.Fatal(err)
	}
	// Keep input flowing so both the zombie and its replacement have
	// activity to commit; the zombie's conditional append must lose.
	deadline := time.Now().Add(30 * time.Second)
	i := 0
	for c.env.Log.Stats().CondFailed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("zombie marker append was never rejected")
		}
		c.ingress.Send([]byte(fmt.Sprint(i)), []byte("fence"), time.Now().UnixMicro())
		want["fence"]++
		i++
		time.Sleep(2 * time.Millisecond)
	}
	if c.mgr.Restarts("wc/count/0") == 0 {
		t.Fatal("zombie was never replaced")
	}

	// Exactly-once must hold across the fencing: every input counted
	// once, no duplicate deliveries at the gated sink.
	for k, v := range sendLoad(c, 300) {
		want[k] += v
	}
	c.waitCounts(want, 30*time.Second)
	counts := c.sink.Counts()
	received, dups := counts.Received, counts.Duplicates
	if dups != 0 {
		t.Fatalf("gated sink saw %d duplicate deliveries", dups)
	}
	if received == 0 {
		t.Fatal("gated sink delivered nothing")
	}
}
