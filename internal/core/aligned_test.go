package core

import (
	"context"
	"testing"
	"time"

	"impeller/internal/kvstore"
	"impeller/internal/sharedlog"
)

// TestAlignedBarrierBlocking drives one aligned-checkpoint task by hand:
// after producer A's barrier arrives, A's records must buffer until
// producer B's barrier completes the alignment; then the task snapshots,
// forwards the barrier, and replays the buffered records (paper §5.1,
// Flink's channel blocking).
func TestAlignedBarrierBlocking(t *testing.T) {
	env := (&Env{
		Log:            sharedlog.Open(sharedlog.Config{}),
		Checkpoints:    kvstore.Open(kvstore.Config{}),
		Protocol:       ProtoAlignedCheckpoint,
		CommitInterval: 50 * time.Millisecond,
	}).withDefaults()
	defer env.Log.Close()

	stage := &Stage{
		Name:              "al",
		Parallelism:       1,
		Inputs:            []StreamID{"in"},
		Outputs:           []OutputSpec{{Stream: "out", Partitions: 1}},
		NewProcessor:      func() Processor { return Map(func(d Datum) *Datum { return &d }) },
		UpstreamProducers: []int{2}, // producers "a" and "b"
	}
	ck := NewCkptCoordinator(env)
	ck.AddParticipant("al/0")
	ck.Tick(time.Now()) // initiate checkpoint epoch 1

	task := NewTask(stage, 0, 1, env, TaskOptions{Ckpt: ck})
	env.Log.Meta().Set(InstanceKey(task.ID), 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- task.Run(ctx) }()

	in := DataTag("in", 0)
	appendData := func(producer TaskID, seq uint64, val string) {
		b := &Batch{Kind: KindData, Producer: producer, Instance: 1,
			Records: []Record{{Seq: seq, Value: []byte(val)}}}
		if _, err := env.Log.Append([]sharedlog.Tag{in}, b.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	appendBarrier := func(producer TaskID) {
		b := &Batch{Kind: KindBarrier, Producer: producer, Instance: 1, Epoch: 1}
		if _, err := env.Log.Append([]sharedlog.Tag{in}, b.Encode()); err != nil {
			t.Fatal(err)
		}
	}

	appendData("a", 1, "a1")
	appendData("b", 1, "b1")
	appendBarrier("a")
	appendData("a", 2, "a2-post-barrier") // must buffer during alignment
	appendData("b", 2, "b2-pre-barrier")  // still processes (b not blocked)

	// Wait for the pre-barrier records to flow to the output.
	readOutputs := func() []string {
		var out []string
		var cursor LSN
		for {
			rec, err := env.Log.ReadNext(DataTag("out", 0), cursor)
			if err != nil || rec == nil {
				return out
			}
			cursor = rec.LSN + 1
			ob, err := DecodeBatch(rec.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if ob.Kind == KindData {
				for _, r := range ob.Records {
					out = append(out, string(r.Value))
				}
			}
		}
	}
	waitFor := func(desc string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !pred() {
			if time.Now().After(deadline) {
				t.Fatalf("%s never happened (outputs=%v)", desc, readOutputs())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	contains := func(vals []string, want string) bool {
		for _, v := range vals {
			if v == want {
				return true
			}
		}
		return false
	}

	waitFor("pre-barrier records processed", func() bool {
		out := readOutputs()
		return contains(out, "a1") && contains(out, "b1") && contains(out, "b2-pre-barrier")
	})
	if contains(readOutputs(), "a2-post-barrier") {
		t.Fatal("post-barrier record processed during alignment")
	}
	if ck.LastCompleted() != 0 {
		t.Fatal("checkpoint completed before all barriers aligned")
	}

	appendBarrier("b") // completes alignment
	waitFor("checkpoint completed", func() bool { return ck.LastCompleted() == 1 })
	waitFor("buffered record replayed", func() bool {
		return contains(readOutputs(), "a2-post-barrier")
	})

	// The snapshot exists and decodes, carrying both producers' barrier
	// positions.
	blob, ok := env.Checkpoints.Get(CkptKey("al/0", 1))
	if !ok {
		t.Fatal("aligned snapshot missing")
	}
	snap, err := decodeAlignedSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Barriers) != 2 {
		t.Fatalf("snapshot barriers = %v", snap.Barriers)
	}

	// The forwarded barrier reached the output substream.
	var sawBarrier bool
	var cursor LSN
	for {
		rec, err := env.Log.ReadNext(DataTag("out", 0), cursor)
		if err != nil || rec == nil {
			break
		}
		cursor = rec.LSN + 1
		ob, _ := DecodeBatch(rec.Payload)
		if ob.Kind == KindBarrier && ob.Epoch == 1 {
			sawBarrier = true
		}
	}
	if !sawBarrier {
		t.Fatal("barrier not forwarded downstream")
	}
	cancel()
	<-done
}

// TestUnsafeRecoveryReplaysChangelogAndSkipsToTail verifies the unsafe
// variant's documented behavior: state is rebuilt from the full change
// log, but the input cursor resumes at the log tail — records appended
// while the task was down are lost (why it is unsafe, paper §5.3.4).
func TestUnsafeRecoveryReplaysChangelogAndSkipsToTail(t *testing.T) {
	env := (&Env{
		Log:            sharedlog.Open(sharedlog.Config{}),
		Checkpoints:    kvstore.Open(kvstore.Config{}),
		Protocol:       ProtoUnsafe,
		CommitInterval: 20 * time.Millisecond,
	}).withDefaults()
	defer env.Log.Close()

	stage := &Stage{
		Name:         "un",
		Parallelism:  1,
		Inputs:       []StreamID{"in"},
		Outputs:      []OutputSpec{{Stream: "out", Partitions: 1}},
		NewProcessor: func() Processor { return Count("c") },
		Stateful:     true,
	}
	mgr, err := NewManager(env, &Query{Name: "un", Stages: []*Stage{stage}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	ing := NewIngress("ingress/0", "in", 1, env, nil)
	send := func(n int) {
		for i := 0; i < n; i++ {
			ing.Send([]byte("k"), []byte("x"), time.Now().UnixMicro())
		}
		if err := ing.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Unsafe recovery resumes at the log tail, so records appended
	// before the instance finishes recovering would be skipped — wait
	// for the first recovery before sending.
	id := TaskID("un/0")
	deadline := time.Now().Add(10 * time.Second)
	for mgr.TaskMetrics(id).RecoveryNanos.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("task never recovered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	send(5)
	for mgr.TaskMetrics(id).Processed.Load() < 5 {
		if time.Now().After(deadline) {
			t.Fatal("records never processed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Flush the change log (commit tick flushes outputs).
	time.Sleep(100 * time.Millisecond)

	// Kill; while the task is down, 3 more records arrive — lost.
	if err := mgr.Kill(id); err != nil {
		t.Fatal(err)
	}
	send(3)
	// Wait for restart and recovery.
	for mgr.Restarts(id) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("never restarted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)

	// New input is processed on top of the replayed state of 5.
	send(2)

	var last uint64
	deadline = time.Now().Add(10 * time.Second)
	for {
		var seen uint64
		// Read the output stream directly for the final count value.
		var cursor LSN
		for {
			rec, err := env.Log.ReadNext(DataTag("out", 0), cursor)
			if err != nil || rec == nil {
				break
			}
			cursor = rec.LSN + 1
			ob, _ := DecodeBatch(rec.Payload)
			if ob.Kind != KindData {
				continue
			}
			for _, r := range ob.Records {
				v := getUint64(r.Value)
				if v > seen {
					seen = v
				}
			}
		}
		last = seen
		if last == 7 { // 5 replayed + 2 new; the 3 lost records never count
			return
		}
		if last > 7 {
			t.Fatalf("count = %d, want 7 (unsafe must still not double-count)", last)
		}
		if time.Now().After(deadline) {
			t.Fatalf("count = %d, want 7", last)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGCForgetAndRun(t *testing.T) {
	log := sharedlog.Open(sharedlog.Config{})
	defer log.Close()
	gc := NewGCController(log)
	if _, ok := gc.SafeHorizon(); ok {
		t.Fatal("empty controller has a horizon")
	}
	gc.Report("a", 5)
	gc.Report("b", 2)
	if h, _ := gc.SafeHorizon(); h != 2 {
		t.Fatalf("horizon = %d, want 2", h)
	}
	gc.Report("b", 1) // non-monotonic report ignored
	if h, _ := gc.SafeHorizon(); h != 2 {
		t.Fatalf("horizon after stale report = %d", h)
	}
	gc.Forget("b")
	if h, _ := gc.SafeHorizon(); h != 5 {
		t.Fatalf("horizon after forget = %d, want 5", h)
	}
	// Collect with no appends clamps to tail.
	if _, err := gc.Collect(); err != nil {
		t.Fatal(err)
	}
}

func TestManagerKillAllAndMetrics(t *testing.T) {
	env := &Env{
		Log:            sharedlog.Open(sharedlog.Config{}),
		Checkpoints:    kvstore.Open(kvstore.Config{}),
		CommitInterval: 20 * time.Millisecond,
	}
	defer env.Log.Close()
	mgr, err := NewManager(env, wordCountQuery(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	if mgr.Txn() != nil {
		t.Fatal("marker-protocol manager has a txn coordinator")
	}
	mgr.KillAll()
	deadline := time.Now().Add(10 * time.Second)
	for mgr.Restarts("wc/split/0") == 0 || mgr.Restarts("wc/count/0") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("KillAll tasks never restarted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = mgr.Metrics() // aggregates without panicking while tasks churn
}
