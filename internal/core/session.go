package core

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Session windows: per-key windows that grow with activity and close
// after an inactivity gap — the third classic window type alongside the
// tumbling and sliding windows of window.go. The paper's design carries
// window metadata in record payloads (§3.5, "Supporting window
// semantics"), so sessions need no engine support beyond state.

// SessionMerger combines the accumulators of two sessions bridged by a
// new record (Kafka Streams' session merger).
type SessionMerger func(key, leftAcc, rightAcc []byte) []byte

// sessionAggregate merges per-key sessions separated by less than Gap.
type sessionAggregate struct {
	name  string
	gap   time.Duration
	mode  WindowEmit
	agg   Aggregator
	merge SessionMerger
	ctx   ProcContext
}

// SessionAggregate aggregates records into per-key sessions: a record
// within Gap of an existing session extends it, merging sessions it
// bridges with merge; emitted records are keyed WindowKey(start, end,
// key) where end is the last event time plus the gap.
func SessionAggregate(name string, gap time.Duration, mode WindowEmit, agg Aggregator, merge SessionMerger) Processor {
	return &sessionAggregate{name: name, gap: gap, mode: mode, agg: agg, merge: merge}
}

func (s *sessionAggregate) Open(ctx ProcContext) error {
	s.ctx = ctx
	return nil
}

// state layout:
//
//	<name>/wm            -> watermark (8 bytes, little endian)
//	<name>/s/<key>       -> sessions blob for key (see encodeSessions)
//
// Sessions per key are few (they merge), so one blob per key keeps
// bookkeeping simple and change-logs compactly.
type session struct {
	Start, Last int64 // event-time bounds of observed records
	Acc         []byte
}

func encodeSessions(ss []session) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(ss)))
	for _, x := range ss {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(x.Start))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(x.Last))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x.Acc)))
		buf = append(buf, x.Acc...)
	}
	return buf
}

func decodeSessions(buf []byte) ([]session, error) {
	if len(buf) < 4 {
		return nil, ErrBadEncoding
	}
	n := int(binary.LittleEndian.Uint32(buf))
	p := 4
	// Each session occupies at least 20 bytes; reject corrupt counts
	// before sizing the slice by an untrusted length prefix.
	if n > (len(buf)-p)/20 {
		return nil, ErrBadEncoding
	}
	out := make([]session, 0, n)
	for i := 0; i < n; i++ {
		if p+20 > len(buf) {
			return nil, ErrBadEncoding
		}
		x := session{
			Start: int64(binary.LittleEndian.Uint64(buf[p:])),
			Last:  int64(binary.LittleEndian.Uint64(buf[p+8:])),
		}
		l := int(binary.LittleEndian.Uint32(buf[p+16:]))
		p += 20
		if p+l > len(buf) {
			return nil, ErrBadEncoding
		}
		x.Acc = append([]byte(nil), buf[p:p+l]...)
		p += l
		out = append(out, x)
	}
	if p != len(buf) {
		return nil, ErrBadEncoding
	}
	return out, nil
}

func (s *sessionAggregate) Process(_ int, d Datum, emit Emit) error {
	st := s.ctx.Store()
	gap := s.gap.Microseconds()

	wm := int64(-1)
	if v, ok := st.Get(s.name + "/wm"); ok && len(v) == 8 {
		wm = int64(binary.LittleEndian.Uint64(v))
	}
	if d.EventTime > wm {
		wm = d.EventTime
		st.Put(s.name+"/wm", binary.LittleEndian.AppendUint64(nil, uint64(wm)))
	}

	sk := s.name + "/s/" + string(d.Key)
	var sessions []session
	if blob, ok := st.Get(sk); ok {
		var err error
		if sessions, err = decodeSessions(blob); err != nil {
			return fmt.Errorf("session %s: %w", s.name, err)
		}
	}

	// Fold the record into every session it touches (within gap), then
	// merge the touched sessions into one. The per-key session list is
	// the bulk work here; charge it for the cooperative engine.
	s.ctx.Charge(len(sessions))
	merged := session{Start: d.EventTime, Last: d.EventTime}
	var rest []session
	for _, x := range sessions {
		if d.EventTime >= x.Start-gap && d.EventTime <= x.Last+gap {
			if x.Start < merged.Start {
				merged.Start = x.Start
			}
			if x.Last > merged.Last {
				merged.Last = x.Last
			}
			if merged.Acc == nil {
				merged.Acc = x.Acc
			} else {
				merged.Acc = s.merge(d.Key, x.Acc, merged.Acc)
			}
		} else {
			rest = append(rest, x)
		}
	}
	merged.Acc = s.agg(d.Key, d.Value, merged.Acc)
	rest = append(rest, merged)
	st.Put(sk, encodeSessions(rest))

	if s.mode == EmitPerUpdate {
		emit(0, Datum{
			Key:       WindowKey(merged.Start, merged.Last+gap, d.Key),
			Value:     merged.Acc,
			EventTime: d.EventTime,
		})
	} else {
		s.fireClosed(d.Key, wm, emit)
	}
	return nil
}

// fireClosed emits and removes this key's sessions whose inactivity gap
// has fully elapsed before the watermark.
//
// Final-mode sessions fire lazily per key (on that key's next record):
// watermark state is per task, but session state is per key, and firing
// on access keeps the scan bounded. A session for an idle key fires on
// the key's next arrival.
func (s *sessionAggregate) fireClosed(key []byte, wm int64, emit Emit) {
	st := s.ctx.Store()
	gap := s.gap.Microseconds()
	sk := s.name + "/s/" + string(key)
	blob, ok := st.Get(sk)
	if !ok {
		return
	}
	sessions, err := decodeSessions(blob)
	if err != nil {
		return
	}
	var open []session
	for _, x := range sessions {
		if x.Last+gap <= wm {
			emit(0, Datum{
				Key:       WindowKey(x.Start, x.Last+gap, key),
				Value:     x.Acc,
				EventTime: x.Last + gap,
			})
		} else {
			open = append(open, x)
		}
	}
	if len(open) == 0 {
		st.Delete(sk)
	} else if len(open) != len(sessions) {
		st.Put(sk, encodeSessions(open))
	}
}
