package core

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"impeller/internal/sharedlog"
)

func TestBatchRoundTrip(t *testing.T) {
	in := &Batch{
		Kind:     KindData,
		Producer: "q/stage1/0",
		Instance: 3,
		Epoch:    7,
		Records: []Record{
			{Seq: 1, EventTime: 123456, Key: []byte("k1"), Value: []byte("v1")},
			{Seq: 2, EventTime: -1, Key: nil, Value: []byte{}},
			{Seq: 9, EventTime: 0, Key: []byte("k3"), Value: bytes.Repeat([]byte("x"), 1000)},
		},
	}
	out, err := DecodeBatch(in.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Kind != in.Kind || out.Producer != in.Producer || out.Instance != in.Instance || out.Epoch != in.Epoch {
		t.Fatalf("header mismatch: %+v", out)
	}
	if len(out.Records) != 3 {
		t.Fatalf("records = %d", len(out.Records))
	}
	for i := range in.Records {
		if out.Records[i].Seq != in.Records[i].Seq ||
			out.Records[i].EventTime != in.Records[i].EventTime ||
			!bytes.Equal(out.Records[i].Key, in.Records[i].Key) ||
			!bytes.Equal(out.Records[i].Value, in.Records[i].Value) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, out.Records[i], in.Records[i])
		}
	}
}

func TestBatchControlRoundTrip(t *testing.T) {
	in := &Batch{Kind: KindMarker, Producer: "t", Instance: 1, Control: []byte("ctrl")}
	out, err := DecodeBatch(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Control) != "ctrl" || len(out.Records) != 0 {
		t.Fatalf("decoded %+v", out)
	}
}

func TestDecodeBatchRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                        // kind 0 invalid
		{200, 1, 2, 3},             // unknown kind
		bytes.Repeat([]byte{1}, 5), // truncated header
	}
	for i, c := range cases {
		if _, err := DecodeBatch(c); err == nil {
			t.Fatalf("case %d: garbage decoded", i)
		}
	}
	// Truncated valid prefix.
	full := (&Batch{Kind: KindData, Producer: "p", Records: []Record{{Seq: 1, Key: []byte("k"), Value: []byte("v")}}}).Encode()
	for cut := 1; cut < len(full); cut++ {
		if _, err := DecodeBatch(full[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	// Trailing junk.
	if _, err := DecodeBatch(append(full, 0)); err == nil {
		t.Fatal("trailing junk decoded")
	}
}

func TestPropertyBatchRoundTrip(t *testing.T) {
	check := func(producer string, instance, epoch uint64, seqs []uint64, keys [][]byte) bool {
		if len(producer) > 1000 {
			producer = producer[:1000]
		}
		b := &Batch{Kind: KindData, Producer: TaskID(producer), Instance: instance, Epoch: epoch}
		for i, s := range seqs {
			var key []byte
			if i < len(keys) {
				key = keys[i]
			}
			b.Records = append(b.Records, Record{Seq: s, EventTime: int64(s) - 5, Key: key, Value: key})
		}
		out, err := DecodeBatch(b.Encode())
		if err != nil {
			return false
		}
		if out.Producer != b.Producer || out.Instance != b.Instance || out.Epoch != b.Epoch {
			return false
		}
		if len(out.Records) != len(b.Records) {
			return false
		}
		for i := range b.Records {
			if out.Records[i].Seq != b.Records[i].Seq ||
				out.Records[i].EventTime != b.Records[i].EventTime ||
				!bytes.Equal(out.Records[i].Key, b.Records[i].Key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindSource; k <= kindMax; k++ {
		if s := k.String(); s == "" || s[0] == 'k' && s != "kind(0)" {
			// every known kind has a proper name
			if len(s) > 5 && s[:5] == "kind(" {
				t.Fatalf("kind %d has no name", k)
			}
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatalf("unknown kind string = %q", Kind(99).String())
	}
}

func TestIsControl(t *testing.T) {
	want := map[Kind]bool{
		KindSource: false, KindData: false, KindChange: false,
		KindMarker: true, KindTxnCommit: true, KindTxnAbort: true, KindBarrier: true,
		KindTxnLog: false, KindTxnOffsets: false,
	}
	for k, w := range want {
		if k.isControl() != w {
			t.Fatalf("%v.isControl() = %v, want %v", k, k.isControl(), w)
		}
	}
}

func TestMarkerRoundTrip(t *testing.T) {
	in := &ProgressMarker{
		InputEnd:        42,
		ChangeFirst:     17,
		SeqEnd:          999,
		CheckpointEpoch: 3,
		OutFirst: map[sharedlog.Tag]sharedlog.LSN{
			DataTag("X", 0): 30,
			DataTag("X", 1): 31,
			DataTag("Y", 0): 35,
		},
	}
	out, err := DecodeMarker(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestMarkerEmptyFields(t *testing.T) {
	in := &ProgressMarker{InputEnd: NoLSN, ChangeFirst: NoLSN}
	out, err := DecodeMarker(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.InputEnd != NoLSN || out.ChangeFirst != NoLSN || out.OutFirst != nil {
		t.Fatalf("decoded %+v", out)
	}
}

func TestMarkerEncodingDeterministic(t *testing.T) {
	m := &ProgressMarker{OutFirst: map[sharedlog.Tag]sharedlog.LSN{"b": 2, "a": 1, "c": 3}}
	first := m.Encode()
	for i := 0; i < 10; i++ {
		if !bytes.Equal(first, m.Encode()) {
			t.Fatal("marker encoding depends on map iteration order")
		}
	}
}

func TestMarkerDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeMarker(nil); err == nil {
		t.Fatal("nil decoded")
	}
	full := (&ProgressMarker{OutFirst: map[sharedlog.Tag]sharedlog.LSN{"tag": 5}}).Encode()
	for cut := 1; cut < len(full); cut++ {
		if _, err := DecodeMarker(full[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}

func TestMarkerShrinkingSavesBytes(t *testing.T) {
	// §3.5: the shrunk marker drops one LSN per range. With three
	// output substreams that is 8*(1+3+1) = 40 bytes saved.
	m := &ProgressMarker{
		InputEnd:    100,
		ChangeFirst: 90,
		OutFirst:    map[sharedlog.Tag]sharedlog.LSN{"a": 1, "b": 2, "c": 3},
	}
	shrunk := len(m.Encode())
	if m.UnshrunkSize()-shrunk != 8*(1+3+1) {
		t.Fatalf("unshrunk-shrunk = %d, want 40", m.UnshrunkSize()-shrunk)
	}
}

func TestPropertyMarkerRoundTrip(t *testing.T) {
	check := func(inputEnd, changeFirst, seqEnd uint64, tags []uint8, firsts []uint64) bool {
		m := &ProgressMarker{
			InputEnd:    sharedlog.LSN(inputEnd),
			ChangeFirst: sharedlog.LSN(changeFirst),
			SeqEnd:      seqEnd,
		}
		if len(tags) > 0 {
			m.OutFirst = make(map[sharedlog.Tag]sharedlog.LSN)
			for i, tg := range tags {
				var f uint64
				if i < len(firsts) {
					f = firsts[i]
				}
				m.OutFirst[DataTag(StreamID(string(rune('A'+tg%26))), int(tg))] = sharedlog.LSN(f)
			}
		}
		out, err := DecodeMarker(m.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, out)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTagConstruction(t *testing.T) {
	if DataTag("X", 2) != "d/X/2" {
		t.Fatalf("DataTag = %s", DataTag("X", 2))
	}
	if TaskLogTag("s1/0") != "T/s1/0" {
		t.Fatalf("TaskLogTag = %s", TaskLogTag("s1/0"))
	}
	if ChangeLogTag("s1/0") != "C/s1/0" {
		t.Fatalf("ChangeLogTag = %s", ChangeLogTag("s1/0"))
	}
	if InstanceKey("s1/0") != "inst/s1/0" {
		t.Fatalf("InstanceKey = %s", InstanceKey("s1/0"))
	}
}

func TestPartitionStableAndBounded(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16} {
		for _, key := range []string{"", "a", "hello", "Zylberjberg"} {
			p1 := Partition([]byte(key), n)
			p2 := Partition([]byte(key), n)
			if p1 != p2 {
				t.Fatalf("unstable partition for %q", key)
			}
			if p1 < 0 || p1 >= n {
				t.Fatalf("partition %d out of [0,%d)", p1, n)
			}
		}
	}
	if Partition([]byte("anything"), 1) != 0 {
		t.Fatal("n=1 must map to 0")
	}
}

func TestPartitionSpreads(t *testing.T) {
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		counts[Partition([]byte{byte(i), byte(i >> 8)}, 8)]++
	}
	for i, c := range counts {
		if c < 500 || c > 1800 {
			t.Fatalf("partition %d count %d badly skewed", i, c)
		}
	}
}
