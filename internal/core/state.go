package core

import (
	"encoding/binary"
	"sort"
	"sync"
)

// StateStore is a task's in-memory state (paper §4: "Impeller stores
// state in memory for low access latency and high bandwidth"). Every
// mutation is reported to an onChange hook, which the task runtime uses
// to append change-log records; replaying those records (or restoring a
// snapshot and replaying the suffix) reconstructs the store exactly.
//
// The store is single-writer (its owning task), but snapshots may be
// taken concurrently by the asynchronous checkpointer, so access is
// guarded.
type StateStore struct {
	mu   sync.RWMutex
	data map[string][]byte
	// keys mirrors data's keys in sorted order so prefix Range is
	// O(log n + matches) — joins and window stores scan prefixes on
	// every record, which would otherwise cost O(total keys) per call.
	keys []string
	// onChange, when set, observes every mutation before it applies.
	onChange func(key string, value []byte, deleted bool)
	// mutations counts applied changes; checkpoint bookkeeping uses it.
	mutations uint64
}

// NewStateStore returns an empty store; onChange may be nil.
func NewStateStore(onChange func(key string, value []byte, deleted bool)) *StateStore {
	return &StateStore{data: make(map[string][]byte), onChange: onChange}
}

// insertKeyLocked adds key to the sorted index if absent from data.
func (s *StateStore) insertKeyLocked(key string) {
	if _, exists := s.data[key]; exists {
		return
	}
	i := sort.SearchStrings(s.keys, key)
	s.keys = append(s.keys, "")
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = key
}

// removeKeyLocked drops key from the sorted index if present in data.
func (s *StateStore) removeKeyLocked(key string) {
	if _, exists := s.data[key]; !exists {
		return
	}
	i := sort.SearchStrings(s.keys, key)
	if i < len(s.keys) && s.keys[i] == key {
		s.keys = append(s.keys[:i], s.keys[i+1:]...)
	}
}

// Get returns the value for key, or nil,false if absent. The returned
// slice must not be modified.
func (s *StateStore) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Put stores value under key, logging the change.
func (s *StateStore) Put(key string, value []byte) {
	v := append([]byte(nil), value...)
	if s.onChange != nil {
		s.onChange(key, v, false)
	}
	s.mu.Lock()
	s.insertKeyLocked(key)
	s.data[key] = v
	s.mutations++
	s.mu.Unlock()
}

// Delete removes key, logging the change.
func (s *StateStore) Delete(key string) {
	if s.onChange != nil {
		s.onChange(key, nil, true)
	}
	s.mu.Lock()
	s.removeKeyLocked(key)
	delete(s.data, key)
	s.mutations++
	s.mu.Unlock()
}

// Range calls fn for keys with the given prefix in sorted order until fn
// returns false. Values must not be modified.
func (s *StateStore) Range(prefix string, fn func(key string, value []byte) bool) {
	s.mu.RLock()
	start := sort.SearchStrings(s.keys, prefix)
	var keys []string
	for i := start; i < len(s.keys); i++ {
		k := s.keys[i]
		if len(k) < len(prefix) || k[:len(prefix)] != prefix {
			break
		}
		keys = append(keys, k)
	}
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = s.data[k]
	}
	s.mu.RUnlock()
	for i, k := range keys {
		if !fn(k, vals[i]) {
			return
		}
	}
}

// Len reports the number of keys.
func (s *StateStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Mutations reports how many changes have been applied since creation.
func (s *StateStore) Mutations() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mutations
}

// ApplyChange applies one change-log record without re-logging it;
// recovery replay uses it (paper §3.3.4).
func (s *StateStore) ApplyChange(key string, value []byte, deleted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if deleted {
		s.removeKeyLocked(key)
		delete(s.data, key)
	} else {
		s.insertKeyLocked(key)
		s.data[key] = append([]byte(nil), value...)
	}
	s.mutations++
}

// Snapshot serializes the full store contents; the asynchronous
// checkpointer writes this blob to the checkpoint store (paper §3.5).
func (s *StateStore) Snapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	size := 8
	for k := range s.data {
		keys = append(keys, k)
		size += 4 + len(k) + 4 + len(s.data[k])
	}
	sort.Strings(keys)
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
		v := s.data[k]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

// RestoreSnapshot replaces the store contents with a snapshot produced
// by Snapshot.
func (s *StateStore) RestoreSnapshot(buf []byte) error {
	if len(buf) < 8 {
		return ErrBadEncoding
	}
	n := int(binary.LittleEndian.Uint64(buf))
	p := 8
	// Each entry occupies at least 8 bytes (two length prefixes), so a
	// count beyond that is corrupt — reject it before pre-allocating a
	// map sized by an untrusted length prefix.
	if n < 0 || n > (len(buf)-p)/8 {
		return ErrBadEncoding
	}
	data := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		if p+4 > len(buf) {
			return ErrBadEncoding
		}
		kl := int(binary.LittleEndian.Uint32(buf[p:]))
		p += 4
		if p+kl > len(buf) {
			return ErrBadEncoding
		}
		k := string(buf[p : p+kl])
		p += kl
		if p+4 > len(buf) {
			return ErrBadEncoding
		}
		vl := int(binary.LittleEndian.Uint32(buf[p:]))
		p += 4
		if p+vl > len(buf) {
			return ErrBadEncoding
		}
		data[k] = append([]byte(nil), buf[p:p+vl]...)
		p += vl
	}
	if p != len(buf) {
		return ErrBadEncoding
	}
	keys := make([]string, 0, len(data))
	for k := range data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.mu.Lock()
	s.data = data
	s.keys = keys
	s.mu.Unlock()
	return nil
}

// change-log record encoding: 1-byte op + value bytes, stored in an
// Envelope with Kind=KindChange and Key=state key.
const (
	changePut    byte = 1
	changeDelete byte = 2
)

// EncodeChange builds the change-log value for a mutation.
func EncodeChange(value []byte, deleted bool) []byte {
	if deleted {
		return []byte{changeDelete}
	}
	out := make([]byte, 1+len(value))
	out[0] = changePut
	copy(out[1:], value)
	return out
}

// DecodeChange parses a change-log value.
func DecodeChange(buf []byte) (value []byte, deleted bool, err error) {
	if len(buf) == 0 {
		return nil, false, ErrBadEncoding
	}
	switch buf[0] {
	case changePut:
		return buf[1:], false, nil
	case changeDelete:
		return nil, true, nil
	default:
		return nil, false, ErrBadEncoding
	}
}
