package core

import (
	"context"
	"sync"

	"impeller/internal/sharedlog"
)

// GCController implements Impeller's garbage collection (paper §3.5):
// consumers report the lowest LSN they still need (their "floor"); a
// master GC task computes the global minimum and issues the shared
// log's prefix-trim. A task's floor accounts for
//
//   - consumed inputs: everything at or below its committed InputEnd is
//     released,
//   - its own recovery needs: its latest progress marker, and the
//     change-log suffix not yet covered by a state checkpoint.
//
// Stateful tasks without checkpoints pin the log at their first change
// record — exactly why the paper pairs GC with asynchronous
// checkpointing.
type GCController struct {
	log *sharedlog.Log

	mu     sync.Mutex
	floors map[TaskID]LSN
}

// NewGCController builds a controller for log.
func NewGCController(log *sharedlog.Log) *GCController {
	return &GCController{log: log, floors: make(map[TaskID]LSN)}
}

// Report records a consumer's floor: the lowest LSN it may still read.
// Reports are monotonic; a lower report than before is ignored.
func (g *GCController) Report(id TaskID, floor LSN) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if cur, ok := g.floors[id]; !ok || floor > cur {
		g.floors[id] = floor
	}
}

// Reset overwrites a consumer's floor regardless of monotonicity. The
// rescaler uses it when a task slot acquires key groups: the slot's new
// replay needs may sit below everything it previously reported, so its
// floor must drop until it re-establishes a frontier.
func (g *GCController) Reset(id TaskID, floor LSN) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.floors[id] = floor
}

// Forget removes a consumer (e.g. a stopped sink) from the floor set.
func (g *GCController) Forget(id TaskID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.floors, id)
}

// SafeHorizon returns the global minimum floor, and false when no
// consumer has reported yet.
func (g *GCController) SafeHorizon() (LSN, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.floors) == 0 {
		return 0, false
	}
	min := sharedlog.MaxLSN
	for _, f := range g.floors {
		if f < min {
			min = f
		}
	}
	return min, true
}

// Collect trims the log to the current safe horizon and returns the new
// horizon.
func (g *GCController) Collect() (LSN, error) {
	h, ok := g.SafeHorizon()
	if !ok {
		return g.log.TrimHorizon(), nil
	}
	if err := g.log.Trim(h); err != nil {
		return 0, err
	}
	return g.log.TrimHorizon(), nil
}

// Run collects on every tick of interval until ctx is done.
func (g *GCController) Run(ctx context.Context, env *Env) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-env.Clock.After(env.CommitInterval * 10):
		}
		if _, err := g.Collect(); err != nil {
			return
		}
	}
}
