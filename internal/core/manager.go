package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Manager schedules a query's tasks and monitors their health (paper
// §3.2: "we use a task manager for scheduling tasks and monitoring the
// status of each task"). It assigns each task a stable id and an instance
// number registered in the shared log's metadata store; restarting a
// task atomically increments the instance number, which fences the old
// instance's progress markers (paper §3.4).
type Manager struct {
	env   *Env
	query *Query

	txn  *TxnCoordinator
	ckpt *CkptCoordinator

	// HeartbeatTimeout is how long a silent task survives before being
	// declared failed; MonitorInterval is the health-check cadence.
	// Set them before Start, or afterwards via SetTimeouts.
	HeartbeatTimeout time.Duration
	MonitorInterval  time.Duration
	// RestartBackoffMax caps the exponential restart backoff applied to
	// flapping tasks (default 1 s). A task whose previous instance
	// survived at least two monitor intervals restarts immediately;
	// one that died faster waits MonitorInterval, then doubles per
	// consecutive flap up to this cap — so a task whose compute node is
	// down cannot hot-loop the spawn/recover/die cycle.
	RestartBackoffMax time.Duration

	mu            sync.Mutex
	handles       map[TaskID]*taskHandle
	checkpointers map[TaskID]*Checkpointer
	metrics       map[TaskID]*TaskMetrics
	restarts      map[TaskID]int
	backoff       map[TaskID]time.Duration
	backoffUntil  map[TaskID]time.Time
	spawnedAt     map[TaskID]time.Time
	started       bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

type taskHandle struct {
	task     *Task
	cancel   context.CancelFunc
	done     chan struct{}
	err      error
	lastHB   atomic.Int64 // unix nanos of last heartbeat
	exitedAt atomic.Int64 // unix nanos when Run returned (0 = still running)
	zombie   atomic.Bool  // heartbeats suppressed (simulated partition)
	lastProg uint64       // SchedulerProgress at last monitor tick (monitor-only)
}

// NewManager builds a manager for query over env. It validates the
// query and constructs the protocol coordinators.
func NewManager(env *Env, query *Query) (*Manager, error) {
	if err := query.Validate(); err != nil {
		return nil, err
	}
	e := env.withDefaults()
	m := &Manager{
		env:               e,
		query:             query,
		HeartbeatTimeout:  20 * e.CommitInterval,
		MonitorInterval:   e.CommitInterval,
		RestartBackoffMax: time.Second,
		handles:           make(map[TaskID]*taskHandle),
		checkpointers:     make(map[TaskID]*Checkpointer),
		metrics:           make(map[TaskID]*TaskMetrics),
		restarts:          make(map[TaskID]int),
		backoff:           make(map[TaskID]time.Duration),
		backoffUntil:      make(map[TaskID]time.Time),
		spawnedAt:         make(map[TaskID]time.Time),
	}
	switch e.Protocol {
	case ProtoKafkaTxn:
		shards := 1
		if e.Log != nil {
			shards = e.Log.NumShards()
		}
		m.txn = NewTxnCoordinator(e, shards)
	case ProtoAlignedCheckpoint:
		m.ckpt = NewCkptCoordinator(e)
		for _, s := range query.Stages {
			if len(s.UpstreamProducers) == 0 {
				return nil, fmt.Errorf("core: aligned checkpoints need UpstreamProducers on stage %s", s.Name)
			}
		}
	}
	return m, nil
}

// Env returns the manager's effective environment (defaults applied).
func (m *Manager) Env() *Env { return m.env }

// SetTimeouts adjusts failure detection while the manager runs.
func (m *Manager) SetTimeouts(heartbeat, monitor time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if heartbeat > 0 {
		m.HeartbeatTimeout = heartbeat
	}
	if monitor > 0 {
		m.MonitorInterval = monitor
	}
}

// Ckpt returns the aligned-checkpoint coordinator, or nil.
func (m *Manager) Ckpt() *CkptCoordinator { return m.ckpt }

// Txn returns the transaction coordinator, or nil.
func (m *Manager) Txn() *TxnCoordinator { return m.txn }

// Start launches every task, the health monitor, and the protocol
// coordinators. Tasks keep running until Stop or ctx cancellation.
func (m *Manager) Start(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return errors.New("core: manager already started")
	}
	m.started = true
	m.ctx, m.cancel = context.WithCancel(ctx)
	if m.env.Engine == EngineTasklet && m.env.loops == nil {
		// The manager owns this env copy (withDefaults), so the pool it
		// creates here flows to every task and sink built from Env().
		m.env.loops = newLoopPool(m.env.EngineLoops)
	}

	for _, stage := range m.query.Stages {
		for sub := 0; sub < stage.Parallelism; sub++ {
			id := TaskID(fmt.Sprintf("%s/%d", stage.Name, sub))
			m.metrics[id] = &TaskMetrics{}
			if m.ckpt != nil {
				m.ckpt.AddParticipant(id)
			}
			if m.env.GC != nil {
				m.env.GC.Report(id, 0)
				if stage.Stateful {
					m.env.GC.Report("ckpt/"+id, 0)
				}
			}
			m.spawnLocked(stage, sub, id)
			if stage.Stateful && m.env.Protocol == ProtoProgressMarker && m.env.SnapshotInterval > 0 {
				cp := NewCheckpointer(id, m.env)
				cp.Metrics = m.metrics[id]
				m.checkpointers[id] = cp
				m.wg.Add(1)
				go func() {
					defer m.wg.Done()
					cp.Run(m.ctx)
				}()
			}
		}
	}
	if m.ckpt != nil {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.ckpt.Loop(m.ctx, m.env)
		}()
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.monitor()
	}()
	return nil
}

// spawnLocked starts a fresh instance of a task. Caller holds m.mu.
func (m *Manager) spawnLocked(stage *Stage, sub int, id TaskID) {
	instance := m.env.Log.FenceIncrement(InstanceKey(id))
	if m.txn != nil {
		m.txn.Fence(id, instance)
	}
	h := &taskHandle{done: make(chan struct{})}
	h.lastHB.Store(time.Now().UnixNano())
	m.spawnedAt[id] = time.Now()
	task := NewTask(stage, sub, instance, m.env, TaskOptions{
		Txn:     m.txn,
		Ckpt:    m.ckpt,
		Metrics: m.metrics[id],
		Heartbeat: func() {
			if !h.zombie.Load() {
				h.lastHB.Store(time.Now().UnixNano())
			}
		},
	})
	h.task = task
	tctx, cancel := context.WithCancel(m.ctx)
	h.cancel = cancel
	m.handles[id] = h
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		h.err = task.Run(tctx)
		h.exitedAt.Store(time.Now().UnixNano())
		close(h.done)
	}()
}

// monitor restarts tasks whose heartbeat went stale or whose goroutine
// exited with a failure (paper §2.2, "Neutralizing zombies": a silent
// task is replaced; if it was merely partitioned it becomes a zombie
// and is fenced at its next progress marker).
func (m *Manager) monitor() {
	for {
		m.mu.Lock()
		interval, hbTimeout := m.MonitorInterval, m.HeartbeatTimeout
		m.mu.Unlock()
		select {
		case <-m.ctx.Done():
			return
		case <-m.env.Clock.After(interval):
		}
		now := time.Now().UnixNano()
		m.mu.Lock()
		for id, h := range m.handles {
			stale := now-h.lastHB.Load() > hbTimeout.Nanoseconds()
			// Staleness is progress-driven, not wall-clock-driven: a task
			// resident on a loop that is busy stepping other tasklets may
			// heartbeat late, but a loop making progress means the task is
			// scheduled, not dead. Zombified handles are exempt — their
			// suppressed heartbeats simulate a partition, and the
			// replacement must spawn regardless of loop liveness.
			prog := h.task.SchedulerProgress()
			progressed := prog != h.lastProg
			h.lastProg = prog
			if stale && progressed && !h.zombie.Load() {
				stale = false
			}
			exited := false
			select {
			case <-h.done:
				exited = true
			default:
			}
			if exited && (h.err == nil || errors.Is(h.err, context.Canceled) && m.ctx.Err() != nil) {
				continue // clean shutdown
			}
			if exited && errors.Is(h.err, ErrZombie) {
				continue // fenced zombie; replacement already running
			}
			if !exited && !stale {
				continue
			}
			stage, sub := m.locate(id)
			if stage == nil {
				continue
			}
			// Bounded restart backoff: a task that keeps dying right
			// after spawn (e.g. its compute node is crashed, so every
			// replacement fails during recovery) is paced instead of
			// hot-looped. A healthy uptime resets the backoff.
			wall := time.Now()
			if wall.Before(m.backoffUntil[id]) {
				continue
			}
			// Uptime is measured to the instance's actual death, not to
			// when the monitor noticed it — detection lags by up to a
			// tick, which would make an instantly-dying task look
			// healthy and defeat the backoff ramp.
			diedAt := wall
			if exited {
				diedAt = time.Unix(0, h.exitedAt.Load())
			}
			if diedAt.Sub(m.spawnedAt[id]) >= 2*interval {
				m.backoff[id] = 0
			} else {
				next := 2 * m.backoff[id]
				if next < interval {
					next = interval
				}
				if next > m.RestartBackoffMax {
					next = m.RestartBackoffMax
				}
				m.backoff[id] = next
				m.backoffUntil[id] = wall.Add(next)
			}
			m.restarts[id]++
			// The stale instance may still be alive (zombie); leave it
			// running — the shared log fences it (paper §3.4). A truly
			// crashed instance's context is cancelled defensively.
			if exited {
				h.cancel()
			}
			m.spawnLocked(stage, sub, id)
		}
		m.mu.Unlock()
	}
}

func (m *Manager) locate(id TaskID) (*Stage, int) {
	for _, stage := range m.query.Stages {
		for sub := 0; sub < stage.Parallelism; sub++ {
			if TaskID(fmt.Sprintf("%s/%d", stage.Name, sub)) == id {
				return stage, sub
			}
		}
	}
	return nil, 0
}

// Kill simulates a crash of the task's current instance: its goroutine
// stops abruptly and its in-memory state is lost. The monitor restarts
// it on the next tick.
func (m *Manager) Kill(id TaskID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.handles[id]
	if !ok {
		return fmt.Errorf("core: unknown task %s", id)
	}
	h.cancel()
	h.lastHB.Store(0) // ensure the monitor sees it as failed immediately
	return nil
}

// KillAll crashes every task (the Table 4 whole-query failure).
func (m *Manager) KillAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, h := range m.handles {
		h.cancel()
		h.lastHB.Store(0)
	}
}

// Zombify simulates a network partition between the task and the
// manager: heartbeats stop arriving, the monitor starts a replacement,
// but the old instance keeps running until the log fences it. If the
// current instance has already exited — a zombify racing a concurrent
// kill/restart — there is nothing left to partition, so Zombify
// reports an error instead of marking a dead handle (which would plant
// no zombie yet still count as one in chaos accounting).
func (m *Manager) Zombify(id TaskID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.handles[id]
	if !ok {
		return fmt.Errorf("core: unknown task %s", id)
	}
	select {
	case <-h.done:
		return fmt.Errorf("core: task %s instance already exited; no zombie to plant", id)
	default:
	}
	h.zombie.Store(true)
	h.lastHB.Store(0)
	return nil
}

// RestartNow forces an immediate restart of a task (deterministic
// alternative to waiting for the monitor).
func (m *Manager) RestartNow(id TaskID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.handles[id]
	if !ok {
		return fmt.Errorf("core: unknown task %s", id)
	}
	h.cancel()
	<-h.done
	stage, sub := m.locate(id)
	if stage == nil {
		return fmt.Errorf("core: cannot locate task %s", id)
	}
	m.restarts[id]++
	m.spawnLocked(stage, sub, id)
	return nil
}

// Restarts reports how many times the task was restarted.
func (m *Manager) Restarts(id TaskID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.restarts[id]
}

// Checkpointer returns a stateful task's asynchronous checkpointer
// (marker protocol only), or nil.
func (m *Manager) Checkpointer(id TaskID) *Checkpointer {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpointers[id]
}

// TaskMetrics returns a task's (instance-spanning) metrics, or nil.
func (m *Manager) TaskMetrics(id TaskID) *TaskMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.metrics[id]
}

// Metrics aggregates all task metrics.
func (m *Manager) Metrics() QueryMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	var q QueryMetrics
	for _, tm := range m.metrics {
		q.Add(tm)
	}
	return q
}

// TaskIDs lists the query's task ids in stage order.
func (m *Manager) TaskIDs() []TaskID {
	var ids []TaskID
	for _, stage := range m.query.Stages {
		for sub := 0; sub < stage.Parallelism; sub++ {
			ids = append(ids, TaskID(fmt.Sprintf("%s/%d", stage.Name, sub)))
		}
	}
	return ids
}

// Stop cancels every task and waits for shutdown.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.cancel != nil {
		m.cancel()
	}
	loops := m.env.loops
	m.mu.Unlock()
	m.wg.Wait()
	if loops != nil {
		// After every task goroutine has unwound; closing the pool also
		// finishes any sink tasklets still resident so their Run calls
		// return.
		loops.close()
	}
}
