package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Manager schedules a query's tasks and monitors their health (paper
// §3.2: "we use a task manager for scheduling tasks and monitoring the
// status of each task"). It assigns each task a stable id and an instance
// number registered in the shared log's metadata store; restarting a
// task atomically increments the instance number, which fences the old
// instance's progress markers (paper §3.4).
type Manager struct {
	env   *Env
	query *Query

	txn  *TxnCoordinator
	ckpt *CkptCoordinator

	// HeartbeatTimeout is how long a silent task survives before being
	// declared failed; MonitorInterval is the health-check cadence.
	// Set them before Start, or afterwards via SetTimeouts.
	HeartbeatTimeout time.Duration
	MonitorInterval  time.Duration
	// RestartBackoffMax caps the exponential restart backoff applied to
	// flapping tasks (default 1 s). A task whose previous instance
	// survived at least two monitor intervals restarts immediately;
	// one that died faster waits MonitorInterval, then doubles per
	// consecutive flap up to this cap — so a task whose compute node is
	// down cannot hot-loop the spawn/recover/die cycle.
	RestartBackoffMax time.Duration

	mu            sync.Mutex
	handles       map[TaskID]*taskHandle
	checkpointers map[TaskID]*Checkpointer
	ckptCancel    map[TaskID]context.CancelFunc
	metrics       map[TaskID]*TaskMetrics
	restarts      map[TaskID]int
	backoff       map[TaskID]time.Duration
	backoffUntil  map[TaskID]time.Time
	spawnedAt     map[TaskID]time.Time
	// assign is each stage's current assignment (assign.go): the live
	// group→slot map tasks are spawned under. Under the marker protocol
	// it mirrors the log's metadata KV (the source of truth, advanced by
	// the Rescaler); other protocols pin the static epoch-1 map.
	assign map[string]*Assignment
	// rescaling marks stages mid-transition. The monitor must not spawn
	// replacements for such a stage: a replacement committing markers
	// after the rescaler read a fenced slot's frontier would advance the
	// donor past its published handoff floor, and the acquiring slot
	// would re-deliver records the replacement already committed.
	rescaling map[string]bool
	started   bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

type taskHandle struct {
	task     *Task
	cancel   context.CancelFunc
	done     chan struct{}
	err      error
	lastHB   atomic.Int64 // unix nanos of last heartbeat
	exitedAt atomic.Int64 // unix nanos when Run returned (0 = still running)
	zombie   atomic.Bool  // heartbeats suppressed (simulated partition)
	lastProg uint64       // SchedulerProgress at last monitor tick (monitor-only)
}

// NewManager builds a manager for query over env. It validates the
// query and constructs the protocol coordinators.
func NewManager(env *Env, query *Query) (*Manager, error) {
	if err := query.Validate(); err != nil {
		return nil, err
	}
	e := env.withDefaults()
	m := &Manager{
		env:               e,
		query:             query,
		HeartbeatTimeout:  20 * e.CommitInterval,
		MonitorInterval:   e.CommitInterval,
		RestartBackoffMax: time.Second,
		handles:           make(map[TaskID]*taskHandle),
		checkpointers:     make(map[TaskID]*Checkpointer),
		ckptCancel:        make(map[TaskID]context.CancelFunc),
		metrics:           make(map[TaskID]*TaskMetrics),
		restarts:          make(map[TaskID]int),
		backoff:           make(map[TaskID]time.Duration),
		backoffUntil:      make(map[TaskID]time.Time),
		spawnedAt:         make(map[TaskID]time.Time),
		assign:            make(map[string]*Assignment),
		rescaling:         make(map[string]bool),
	}
	if e.Protocol != ProtoProgressMarker {
		// Only the marker protocol has per-group change streams and
		// epoch-stamped markers; the other protocols must run the identity
		// layout (one key group per slot) and cannot rescale.
		for _, s := range query.Stages {
			if s.KeyGroups != 0 && s.KeyGroups != s.Parallelism {
				return nil, fmt.Errorf("core: stage %s: KeyGroups %d != Parallelism %d requires the progress-marker protocol", s.Name, s.KeyGroups, s.Parallelism)
			}
		}
	}
	switch e.Protocol {
	case ProtoKafkaTxn:
		shards := 1
		if e.Log != nil {
			shards = e.Log.NumShards()
		}
		m.txn = NewTxnCoordinator(e, shards)
	case ProtoAlignedCheckpoint:
		m.ckpt = NewCkptCoordinator(e)
		for _, s := range query.Stages {
			if len(s.UpstreamProducers) == 0 {
				return nil, fmt.Errorf("core: aligned checkpoints need UpstreamProducers on stage %s", s.Name)
			}
		}
	}
	return m, nil
}

// Env returns the manager's effective environment (defaults applied).
func (m *Manager) Env() *Env { return m.env }

// SetTimeouts adjusts failure detection while the manager runs.
func (m *Manager) SetTimeouts(heartbeat, monitor time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if heartbeat > 0 {
		m.HeartbeatTimeout = heartbeat
	}
	if monitor > 0 {
		m.MonitorInterval = monitor
	}
}

// Ckpt returns the aligned-checkpoint coordinator, or nil.
func (m *Manager) Ckpt() *CkptCoordinator { return m.ckpt }

// Txn returns the transaction coordinator, or nil.
func (m *Manager) Txn() *TxnCoordinator { return m.txn }

// Start launches every task, the health monitor, and the protocol
// coordinators. Tasks keep running until Stop or ctx cancellation.
func (m *Manager) Start(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return errors.New("core: manager already started")
	}
	m.started = true
	m.ctx, m.cancel = context.WithCancel(ctx)
	if m.env.Engine == EngineTasklet && m.env.loops == nil {
		// The manager owns this env copy (withDefaults), so the pool it
		// creates here flows to every task and sink built from Env().
		m.env.loops = newLoopPool(m.env.EngineLoops)
	}

	for _, stage := range m.query.Stages {
		a, err := m.initAssignment(stage)
		if err != nil {
			m.cancel()
			return err
		}
		m.assign[stage.Name] = a
		for sub := 0; sub < a.Slots; sub++ {
			id := TaskID(fmt.Sprintf("%s/%d", stage.Name, sub))
			m.metrics[id] = &TaskMetrics{}
			if m.ckpt != nil {
				m.ckpt.AddParticipant(id)
			}
			if m.env.GC != nil {
				m.env.GC.Report(id, 0)
				if stage.Stateful {
					m.env.GC.Report("ckpt/"+id, 0)
				}
			}
			m.spawnLocked(stage, sub, id)
			m.startCheckpointerLocked(stage, id, a.GroupsOf(sub))
		}
	}
	if m.ckpt != nil {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.ckpt.Loop(m.ctx, m.env)
		}()
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.monitor()
	}()
	return nil
}

// spawnLocked starts a fresh instance of a task. Caller holds m.mu.
func (m *Manager) spawnLocked(stage *Stage, sub int, id TaskID) {
	instance := m.env.Log.FenceIncrement(InstanceKey(id))
	if m.txn != nil {
		m.txn.Fence(id, instance)
	}
	h := &taskHandle{done: make(chan struct{})}
	h.lastHB.Store(time.Now().UnixNano())
	m.spawnedAt[id] = time.Now()
	var groups []int
	var epoch uint64
	if a := m.assign[stage.Name]; a != nil {
		groups = a.GroupsOf(sub)
		epoch = a.Epoch
	}
	task := NewTask(stage, sub, instance, m.env, TaskOptions{
		Txn:         m.txn,
		Ckpt:        m.ckpt,
		Groups:      groups,
		AssignEpoch: epoch,
		Metrics:     m.metrics[id],
		Heartbeat: func() {
			if !h.zombie.Load() {
				h.lastHB.Store(time.Now().UnixNano())
			}
		},
	})
	h.task = task
	tctx, cancel := context.WithCancel(m.ctx)
	h.cancel = cancel
	m.handles[id] = h
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		h.err = task.Run(tctx)
		h.exitedAt.Store(time.Now().UnixNano())
		close(h.done)
	}()
}

// monitor restarts tasks whose heartbeat went stale or whose goroutine
// exited with a failure (paper §2.2, "Neutralizing zombies": a silent
// task is replaced; if it was merely partitioned it becomes a zombie
// and is fenced at its next progress marker).
func (m *Manager) monitor() {
	for {
		m.mu.Lock()
		interval, hbTimeout := m.MonitorInterval, m.HeartbeatTimeout
		m.mu.Unlock()
		select {
		case <-m.ctx.Done():
			return
		case <-m.env.Clock.After(interval):
		}
		now := time.Now().UnixNano()
		m.mu.Lock()
		for id, h := range m.handles {
			stale := now-h.lastHB.Load() > hbTimeout.Nanoseconds()
			// Staleness is progress-driven, not wall-clock-driven: a task
			// resident on a loop that is busy stepping other tasklets may
			// heartbeat late, but a loop making progress means the task is
			// scheduled, not dead. Zombified handles are exempt — their
			// suppressed heartbeats simulate a partition, and the
			// replacement must spawn regardless of loop liveness.
			prog := h.task.SchedulerProgress()
			progressed := prog != h.lastProg
			h.lastProg = prog
			if stale && progressed && !h.zombie.Load() {
				stale = false
			}
			exited := false
			select {
			case <-h.done:
				exited = true
			default:
			}
			if exited && (h.err == nil || errors.Is(h.err, context.Canceled) && m.ctx.Err() != nil) {
				continue // clean shutdown
			}
			// An ErrZombie exit is NOT skipped: when the monitor itself
			// replaced the instance, the old handle is no longer in the
			// map, so an in-map fenced handle means something fenced the
			// task without spawning a successor — a rescale interrupted
			// between fencing and the epoch commit. Restarting it under
			// the current assignment re-converges the stage.
			if !exited && !stale {
				continue
			}
			stage, sub := m.locate(id)
			if stage == nil {
				continue
			}
			if m.rescaling[stage.Name] {
				// Mid-rescale the stage's fences are intentional; heal
				// whatever is left on the next tick, after the transition
				// either commits (applyAssignment replaces the handles)
				// or aborts (the flag clears and the restart path
				// re-converges the stage on its current epoch).
				continue
			}
			// Bounded restart backoff: a task that keeps dying right
			// after spawn (e.g. its compute node is crashed, so every
			// replacement fails during recovery) is paced instead of
			// hot-looped. A healthy uptime resets the backoff.
			wall := time.Now()
			if wall.Before(m.backoffUntil[id]) {
				continue
			}
			// Uptime is measured to the instance's actual death, not to
			// when the monitor noticed it — detection lags by up to a
			// tick, which would make an instantly-dying task look
			// healthy and defeat the backoff ramp.
			diedAt := wall
			if exited {
				diedAt = time.Unix(0, h.exitedAt.Load())
			}
			if diedAt.Sub(m.spawnedAt[id]) >= 2*interval {
				m.backoff[id] = 0
			} else {
				next := 2 * m.backoff[id]
				if next < interval {
					next = interval
				}
				if next > m.RestartBackoffMax {
					next = m.RestartBackoffMax
				}
				m.backoff[id] = next
				m.backoffUntil[id] = wall.Add(next)
			}
			m.restarts[id]++
			// The stale instance may still be alive (zombie); leave it
			// running — the shared log fences it (paper §3.4). A truly
			// crashed instance's context is cancelled defensively.
			if exited {
				h.cancel()
			}
			m.spawnLocked(stage, sub, id)
		}
		m.mu.Unlock()
	}
}

func (m *Manager) locate(id TaskID) (*Stage, int) {
	for _, stage := range m.query.Stages {
		for sub := 0; sub < m.slotsLocked(stage); sub++ {
			if TaskID(fmt.Sprintf("%s/%d", stage.Name, sub)) == id {
				return stage, sub
			}
		}
	}
	return nil, 0
}

// slotsLocked is the stage's current task-slot count. Caller holds m.mu.
func (m *Manager) slotsLocked(stage *Stage) int {
	if a := m.assign[stage.Name]; a != nil {
		return a.Slots
	}
	return stage.Parallelism
}

// initAssignment resolves a stage's starting assignment. Under the
// marker protocol it lives in the log's metadata KV: the first manager
// to attach installs the epoch-1 contiguous map, a re-attach adopts
// whatever epoch the log already carries (a crashed job resumes at its
// last committed assignment, not its build-time parallelism). The other
// protocols pin the static epoch-1 identity map.
func (m *Manager) initAssignment(stage *Stage) (*Assignment, error) {
	if m.env.Protocol != ProtoProgressMarker || m.env.Log == nil {
		return contiguousAssignment(stage.Name, 1, stage.KeyGroups, stage.Parallelism), nil
	}
	return InitAssignment(m.env.Log.Meta(), stage.Name, stage.KeyGroups, stage.Parallelism)
}

// startCheckpointerLocked (re)creates the asynchronous checkpointer for
// a stateful marker-mode task under its current group set, cancelling
// any previous one (its shadow store was folded under a different group
// set and must not survive a rescale). Caller holds m.mu.
func (m *Manager) startCheckpointerLocked(stage *Stage, id TaskID, groups []int) {
	if !stage.Stateful || m.env.Protocol != ProtoProgressMarker || m.env.SnapshotInterval <= 0 {
		return
	}
	if cancel, ok := m.ckptCancel[id]; ok {
		cancel()
	}
	cp := NewCheckpointer(id, stage.Name, groups, m.env)
	cp.Metrics = m.metrics[id]
	m.checkpointers[id] = cp
	cctx, cancel := context.WithCancel(m.ctx)
	m.ckptCancel[id] = cancel
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		cp.Run(cctx)
	}()
}

// applyAssignment installs a committed assignment: spawns instances for
// new and re-grouped slots, retires handles of slots beyond the new
// slot count, and resets GC floors so trimming cannot outrun the new
// owners' replay needs. The previous instances of changed slots were
// already fenced by the rescaler; they keep running detached until
// their next conditional append fails.
func (m *Manager) applyAssignment(stage *Stage, next *Assignment) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prev := m.assign[stage.Name]
	m.assign[stage.Name] = next
	maxSlots := next.Slots
	if prev != nil && prev.Slots > maxSlots {
		maxSlots = prev.Slots
	}
	for sub := 0; sub < maxSlots; sub++ {
		id := TaskID(fmt.Sprintf("%s/%d", stage.Name, sub))
		if sub >= next.Slots {
			// Retired slot: the rescaler fenced it and appended its
			// tombstone marker. Drop the handle so the monitor stops
			// resurrecting it; the detached instance exits with
			// ErrZombie at its next commit attempt.
			delete(m.handles, id)
			if cancel, ok := m.ckptCancel[id]; ok {
				cancel()
				delete(m.ckptCancel, id)
			}
			delete(m.checkpointers, id)
			if m.env.GC != nil {
				m.env.GC.Forget(id)
				m.env.GC.Forget("ckpt/" + id)
			}
			continue
		}
		groups := next.GroupsOf(sub)
		if prev != nil && sub < prev.Slots && equalInts(prev.GroupsOf(sub), groups) {
			continue // untouched slot keeps its running instance
		}
		if m.metrics[id] == nil {
			m.metrics[id] = &TaskMetrics{}
		}
		if m.env.GC != nil {
			// The slot may have acquired groups whose change-stream
			// prefix sits below everything it previously reported; drop
			// its floors (non-monotonically) until recovery and
			// checkpointing re-establish them, or the collector could
			// trim records the new owner still needs to replay.
			m.env.GC.Reset(id, 0)
			if stage.Stateful {
				m.env.GC.Reset("ckpt/"+id, 0)
			}
		}
		m.spawnLocked(stage, sub, id)
		m.startCheckpointerLocked(stage, id, groups)
	}
}

// Assignment returns the stage's current assignment, or nil.
func (m *Manager) Assignment(stage string) *Assignment {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.assign[stage]
}

// AssignmentEpoch returns the stage's current assignment epoch (0 if
// the stage is unknown or the manager has not started).
func (m *Manager) AssignmentEpoch(stage string) uint64 {
	if a := m.Assignment(stage); a != nil {
		return a.Epoch
	}
	return 0
}

func (m *Manager) stageByName(name string) *Stage {
	for _, s := range m.query.Stages {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Kill simulates a crash of the task's current instance: its goroutine
// stops abruptly and its in-memory state is lost. The monitor restarts
// it on the next tick.
func (m *Manager) Kill(id TaskID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.handles[id]
	if !ok {
		return fmt.Errorf("core: unknown task %s", id)
	}
	h.cancel()
	h.lastHB.Store(0) // ensure the monitor sees it as failed immediately
	return nil
}

// KillAll crashes every task (the Table 4 whole-query failure).
func (m *Manager) KillAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, h := range m.handles {
		h.cancel()
		h.lastHB.Store(0)
	}
}

// Zombify simulates a network partition between the task and the
// manager: heartbeats stop arriving, the monitor starts a replacement,
// but the old instance keeps running until the log fences it. If the
// current instance has already exited — a zombify racing a concurrent
// kill/restart — there is nothing left to partition, so Zombify
// reports an error instead of marking a dead handle (which would plant
// no zombie yet still count as one in chaos accounting).
func (m *Manager) Zombify(id TaskID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.handles[id]
	if !ok {
		return fmt.Errorf("core: unknown task %s", id)
	}
	select {
	case <-h.done:
		return fmt.Errorf("core: task %s instance already exited; no zombie to plant", id)
	default:
	}
	h.zombie.Store(true)
	h.lastHB.Store(0)
	return nil
}

// RestartNow forces an immediate restart of a task (deterministic
// alternative to waiting for the monitor).
func (m *Manager) RestartNow(id TaskID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.handles[id]
	if !ok {
		return fmt.Errorf("core: unknown task %s", id)
	}
	stage, sub := m.locate(id)
	if stage == nil {
		return fmt.Errorf("core: cannot locate task %s", id)
	}
	if m.rescaling[stage.Name] {
		return fmt.Errorf("core: stage %s is mid-rescale; retry after the transition", stage.Name)
	}
	h.cancel()
	<-h.done
	m.restarts[id]++
	m.spawnLocked(stage, sub, id)
	return nil
}

// Restarts reports how many times the task was restarted.
func (m *Manager) Restarts(id TaskID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.restarts[id]
}

// Checkpointer returns a stateful task's asynchronous checkpointer
// (marker protocol only), or nil.
func (m *Manager) Checkpointer(id TaskID) *Checkpointer {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpointers[id]
}

// TaskMetrics returns a task's (instance-spanning) metrics, or nil.
func (m *Manager) TaskMetrics(id TaskID) *TaskMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.metrics[id]
}

// Metrics aggregates all task metrics.
func (m *Manager) Metrics() QueryMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	var q QueryMetrics
	for _, tm := range m.metrics {
		q.Add(tm)
	}
	return q
}

// TaskIDs lists the query's live task ids in stage order, reflecting
// the current assignment's slot counts.
func (m *Manager) TaskIDs() []TaskID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ids []TaskID
	for _, stage := range m.query.Stages {
		for sub := 0; sub < m.slotsLocked(stage); sub++ {
			ids = append(ids, TaskID(fmt.Sprintf("%s/%d", stage.Name, sub)))
		}
	}
	return ids
}

// Stop cancels every task and waits for shutdown.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.cancel != nil {
		m.cancel()
	}
	loops := m.env.loops
	m.mu.Unlock()
	m.wg.Wait()
	if loops != nil {
		// After every task goroutine has unwound; closing the pool also
		// finishes any sink tasklets still resident so their Run calls
		// return.
		loops.close()
	}
}
