package core

import (
	"testing"
	"testing/quick"

	"impeller/internal/sharedlog"
)

// oracleEvent is one step of a randomly generated producer history used
// to cross-check the marker tracker against a brute-force oracle.
type oracleEvent struct {
	// IsMarker appends a marker committing all of this producer's data
	// records since its previous marker; otherwise appends a data
	// record.
	IsMarker bool
	// Producer selects one of two producers.
	Producer bool
	// Crash, on a data record, marks the producer's current instance
	// dead: a new instance starts and the pending (unmarked) records
	// can never be committed.
	Crash bool
}

// TestPropertyMarkerTrackerMatchesOracle replays random histories of
// interleaved data records, markers, and crashes, and verifies that the
// tracker's final classification of every data record matches ground
// truth: committed iff some marker of its producer covered it.
func TestPropertyMarkerTrackerMatchesOracle(t *testing.T) {
	myTag := DataTag("X", 0)
	check := func(events []oracleEvent) bool {
		tr := newMarkerTracker(myTag)
		type rec struct {
			lsn       LSN
			producer  TaskID
			instance  uint64
			committed bool // oracle's verdict
		}
		var records []rec
		instance := map[TaskID]uint64{"p0": 1, "p1": 1}
		// pending data records per producer awaiting a marker.
		pending := map[TaskID][]int{}
		lsn := LSN(0)

		for _, ev := range events {
			prod := TaskID("p0")
			if ev.Producer {
				prod = "p1"
			}
			if ev.IsMarker {
				m := &ProgressMarker{InputEnd: NoLSN, ChangeFirst: NoLSN}
				if idxs := pending[prod]; len(idxs) > 0 {
					first := records[idxs[0]].lsn
					m.OutFirst = map[sharedlog.Tag]sharedlog.LSN{myTag: first}
					for _, i := range idxs {
						records[i].committed = true
					}
					pending[prod] = nil
				}
				b := &Batch{Kind: KindMarker, Producer: prod, Instance: instance[prod], Control: m.Encode()}
				if err := tr.observeControl(b, lsn); err != nil {
					return false
				}
				lsn++
				continue
			}
			records = append(records, rec{lsn: lsn, producer: prod, instance: instance[prod]})
			pending[prod] = append(pending[prod], len(records)-1)
			lsn++
			if ev.Crash {
				// Instance dies with unmarked records; replacement
				// writes an empty marker (its first commit), which
				// resolves the orphans as uncommitted.
				instance[prod]++
				pending[prod] = nil
				b := &Batch{
					Kind: KindMarker, Producer: prod, Instance: instance[prod],
					Control: (&ProgressMarker{InputEnd: NoLSN, ChangeFirst: NoLSN}).Encode(),
				}
				if err := tr.observeControl(b, lsn); err != nil {
					return false
				}
				lsn++
			}
		}
		// Final flush: each live producer writes one more marker so no
		// record is left genuinely unknown.
		for _, prod := range []TaskID{"p0", "p1"} {
			m := &ProgressMarker{InputEnd: NoLSN, ChangeFirst: NoLSN}
			if idxs := pending[prod]; len(idxs) > 0 {
				m.OutFirst = map[sharedlog.Tag]sharedlog.LSN{myTag: records[idxs[0]].lsn}
				for _, i := range idxs {
					records[i].committed = true
				}
			}
			b := &Batch{Kind: KindMarker, Producer: prod, Instance: instance[prod], Control: m.Encode()}
			if err := tr.observeControl(b, lsn); err != nil {
				return false
			}
			lsn++
		}

		for _, r := range records {
			got := tr.classify(&Batch{Kind: KindData, Producer: r.producer, Instance: r.instance}, r.lsn)
			want := classUncommitted
			if r.committed {
				want = classCommitted
			}
			if got != want {
				t.Logf("record lsn=%d producer=%s instance=%d: got %v want %v",
					r.lsn, r.producer, r.instance, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTxnTrackerMatchesOracle does the same for the transaction
// tracker: epochs resolve to their commit/abort verdicts.
func TestPropertyTxnTrackerMatchesOracle(t *testing.T) {
	type txnEvent struct {
		Producer bool
		Commit   bool // else abort
	}
	check := func(events []txnEvent) bool {
		tr := newTxnTracker()
		type txn struct {
			producer TaskID
			epoch    uint64
			commit   bool
		}
		var txns []txn
		epochs := map[TaskID]uint64{}
		for _, ev := range events {
			prod := TaskID("p0")
			if ev.Producer {
				prod = "p1"
			}
			epochs[prod]++
			e := epochs[prod]
			txns = append(txns, txn{prod, e, ev.Commit})
			kind := KindTxnAbort
			if ev.Commit {
				kind = KindTxnCommit
			}
			if err := tr.observeControl(&Batch{Kind: kind, Producer: prod, Instance: 1, Epoch: e}, 0); err != nil {
				return false
			}
		}
		for _, x := range txns {
			got := tr.classify(&Batch{Kind: KindData, Producer: x.producer, Instance: 1, Epoch: x.epoch}, 0)
			want := classUncommitted
			if x.commit {
				want = classCommitted
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
