// Package core implements the Impeller stream processing engine
// (paper §3–§4): stages of tasks exchanging records through a shared
// log, with exactly-once semantics provided by the progress-marking
// protocol — plus the three baseline fault-tolerance protocols the
// paper evaluates against it (Kafka Streams transactions, Flink-style
// aligned checkpoints, and an unsafe variant with no protocol).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"impeller/internal/sharedlog"
	"impeller/internal/wire"
)

// TaskID identifies a task: a unit of execution processing one
// substream of a stage's input (paper Table 1). By convention ids look
// like "q5/stage1/0". Task ids are stable across restarts; the instance
// number distinguishes incarnations.
type TaskID string

// StreamID names a stream: a named sequence of records flowing between
// two consecutive stages (paper Table 1).
type StreamID string

// LSN aliases the shared log's sequence number for brevity within core.
type LSN = sharedlog.LSN

// Tag aliases the shared log's tag type.
type Tag = sharedlog.Tag

// Kind discriminates the record types Impeller stores in the shared log.
type Kind byte

const (
	// KindSource is input data materialized by the ingress gateway.
	// Source records are committed the moment they are appended: the
	// log itself is the canonical input (paper §3.2 steps ②-③).
	KindSource Kind = iota + 1
	// KindData is task-produced data. Under a gating protocol it is
	// uncommitted until a control record covers it.
	KindData
	// KindMarker is an Impeller progress marker (paper §3.3).
	KindMarker
	// KindTxnCommit is a Kafka-style transaction commit marker appended
	// per output substream during phase two of the transaction protocol
	// (paper §3.6).
	KindTxnCommit
	// KindTxnAbort marks a transaction's records as discarded.
	KindTxnAbort
	// KindTxnLog is a coordinator transaction-stream record (begin,
	// add-partitions, prepare-commit, commit); consumers never read
	// these, but they cost real appends, which is the point of §3.6.
	KindTxnLog
	// KindTxnOffsets is the per-task LSN-stream record committing the
	// task's input position within a transaction (paper §3.6).
	KindTxnOffsets
	// KindBarrier is a Flink-style aligned-checkpoint barrier flowing
	// through data streams (paper §5.1, "Aligned checkpoint" baseline).
	KindBarrier
	// KindChange is a batch of state-change records in a task's change
	// log substream (paper §3.2, "Supporting fault tolerance").
	KindChange
	// KindEgressFrontier is a delivery sink's persisted ack frontier:
	// the resume LSN plus the highest consumer-acknowledged sequence
	// number per (partition, producer). A restarted sink reads the
	// latest one from its egress-offsets substream and resumes there
	// instead of re-reading (and re-delivering) from zero.
	KindEgressFrontier
	// KindDeadLetter wraps an output record that exhausted its
	// permanent-error delivery attempts; it is appended to the sink's
	// dead-letter substream so the pipeline drains instead of wedging.
	KindDeadLetter

	kindMax = KindDeadLetter
)

func (k Kind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindData:
		return "data"
	case KindMarker:
		return "marker"
	case KindTxnCommit:
		return "txn-commit"
	case KindTxnAbort:
		return "txn-abort"
	case KindTxnLog:
		return "txn-log"
	case KindTxnOffsets:
		return "txn-offsets"
	case KindBarrier:
		return "barrier"
	case KindChange:
		return "change"
	case KindEgressFrontier:
		return "egress-frontier"
	case KindDeadLetter:
		return "dead-letter"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// isControl reports whether records of this kind resolve the commit
// status of data records (and are therefore observed, not queued).
func (k Kind) isControl() bool {
	switch k {
	case KindMarker, KindTxnCommit, KindTxnAbort, KindBarrier:
		return true
	}
	return false
}

// Record is one application record inside a batch.
type Record struct {
	// Seq is the producer's per-record monotonically increasing
	// sequence number, used to suppress duplicate appends (paper §3.5,
	// "Duplicate appends to a single substream").
	Seq uint64
	// EventTime is the application event time in microseconds since the
	// Unix epoch; end-to-end latency is measured against it (paper §5.3).
	EventTime int64
	// Key and Value carry the application payload.
	Key, Value []byte
}

// Batch is the payload of every shared-log record Impeller appends:
// engine metadata (paper Figure 3 — producer task id etc.) followed by
// either a control payload or a batch of application records. Both
// Impeller and Kafka Streams batch appends through an in-memory output
// buffer (paper §5.3), so the log-record granularity is the batch.
type Batch struct {
	// Kind discriminates data batches from control records.
	Kind Kind
	// Producer is the task (or ingress writer) that appended the batch.
	Producer TaskID
	// Instance is the producer's instance number; restarted tasks get a
	// higher instance so consumers can detect zombies (paper §3.4).
	Instance uint64
	// Epoch is the commit epoch: the transaction number under the Kafka
	// protocol, or the checkpoint number for barriers. Zero means
	// non-transactional.
	Epoch uint64
	// Control is the control payload (e.g. an encoded ProgressMarker);
	// empty for data batches.
	Control []byte
	// Records are the application records of a data or change batch.
	Records []Record
}

// ErrBadEncoding reports a malformed batch or marker payload.
var ErrBadEncoding = errors.New("core: bad record encoding")

// EncodedSize returns the exact length Encode/AppendTo produce, so
// callers sizing flush thresholds or pre-growing buffers need no trial
// encoding.
func (b *Batch) EncodedSize() int {
	size := 1 + 8 + 8 + 2 + len(b.Producer) + 4 + len(b.Control) + 4
	for i := range b.Records {
		size += 8 + 8 + 4 + len(b.Records[i].Key) + 4 + len(b.Records[i].Value)
	}
	return size
}

// Encode serializes the batch.
//
// wire format:
//
//	kind(1) | instance(8) | epoch(8) | producerLen(2) producer
//	| controlLen(4) control | count(4)
//	| per record: seq(8) eventTime(8) keyLen(4) key valueLen(4) value
func (b *Batch) Encode() []byte {
	return b.AppendTo(make([]byte, 0, b.EncodedSize()))
}

// AppendTo appends the batch's encoding to buf and returns the extended
// slice. This is the allocation-free entry point of the hot path: with
// a pooled buffer (internal/wire) whose backing array has warmed up to
// the working batch size, encoding allocates nothing.
func (b *Batch) AppendTo(buf []byte) []byte {
	buf = append(buf, byte(b.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, b.Instance)
	buf = binary.LittleEndian.AppendUint64(buf, b.Epoch)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(b.Producer)))
	buf = append(buf, b.Producer...)
	buf = wire.AppendBytes32(buf, b.Control)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Records)))
	for i := range b.Records {
		r := &b.Records[i]
		buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.EventTime))
		buf = wire.AppendBytes32(buf, r.Key)
		buf = wire.AppendBytes32(buf, r.Value)
	}
	return buf
}

// DecodeBatch parses a batch previously produced by Encode.
func DecodeBatch(buf []byte) (*Batch, error) {
	if len(buf) < 1+8+8+2 {
		return nil, ErrBadEncoding
	}
	b := &Batch{}
	b.Kind = Kind(buf[0])
	if b.Kind < KindSource || b.Kind > kindMax {
		return nil, ErrBadEncoding
	}
	p := 1
	b.Instance = binary.LittleEndian.Uint64(buf[p:])
	p += 8
	b.Epoch = binary.LittleEndian.Uint64(buf[p:])
	p += 8
	plen := int(binary.LittleEndian.Uint16(buf[p:]))
	p += 2
	if p+plen > len(buf) {
		return nil, ErrBadEncoding
	}
	b.Producer = TaskID(buf[p : p+plen])
	p += plen
	var err error
	b.Control, p, err = readBytes32(buf, p)
	if err != nil {
		return nil, err
	}
	if p+4 > len(buf) {
		return nil, ErrBadEncoding
	}
	count := int(binary.LittleEndian.Uint32(buf[p:]))
	p += 4
	if count > len(buf) { // cheap sanity bound before allocating
		return nil, ErrBadEncoding
	}
	if count > 0 {
		b.Records = make([]Record, count)
	}
	for i := 0; i < count; i++ {
		r := &b.Records[i]
		if p+16 > len(buf) {
			return nil, ErrBadEncoding
		}
		r.Seq = binary.LittleEndian.Uint64(buf[p:])
		r.EventTime = int64(binary.LittleEndian.Uint64(buf[p+8:]))
		p += 16
		r.Key, p, err = readBytes32(buf, p)
		if err != nil {
			return nil, err
		}
		r.Value, p, err = readBytes32(buf, p)
		if err != nil {
			return nil, err
		}
	}
	if p != len(buf) {
		return nil, ErrBadEncoding
	}
	return b, nil
}

func readBytes32(buf []byte, p int) ([]byte, int, error) {
	if p+4 > len(buf) {
		return nil, 0, ErrBadEncoding
	}
	n := int(binary.LittleEndian.Uint32(buf[p:]))
	p += 4
	if n < 0 || p+n > len(buf) {
		return nil, 0, ErrBadEncoding
	}
	if n == 0 {
		return nil, p, nil
	}
	out := make([]byte, n)
	copy(out, buf[p:p+n])
	return out, p + n, nil
}
