package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"impeller/internal/sharedlog"
)

// Regression tests for the marker-ordering invariant (invariant.go): a
// commit record must never be submitted while a covered data or
// change-log append is still buffered or in flight in the batcher —
// that marker would be ordered ahead of records it claims to cover.

func TestMarkerInvariantAssertionFires(t *testing.T) {
	log := sharedlog.Open(sharedlog.Config{})
	defer log.Close()

	type violation struct {
		pending  int64
		buffered int
	}
	var got []violation
	markerOrderHook = func(_ TaskID, pending int64, buffered int) {
		got = append(got, violation{pending, buffered})
	}
	defer func() { markerOrderHook = nil }()

	// A batcher holding an unsealed entry: thresholds high enough that
	// nothing auto-flushes.
	cfg := BatchConfig{MaxRecords: 1024, MaxBytes: 1 << 30, Linger: time.Hour, Window: 4}
	b := newBatcher(log, cfg, nil, context.Background(), nil, nil, nil)
	defer b.close()
	b.submit([]sharedlog.Tag{"t"}, []byte("covered"), nil, nil)

	task := &Task{ID: "inv/0", appender: b}
	task.assertAppendsDrained("progress marker")
	if len(got) != 1 || got[0].pending != 1 {
		t.Fatalf("undrained batcher: hook observed %+v, want one violation with pending=1", got)
	}

	// Records sitting in an unflushed output buffer (and change buffer)
	// count too: they are covered appends the marker would overtake.
	buf := &batchBuf{}
	buf.add(Record{Seq: 1, Key: []byte("k"), Value: []byte("v")})
	task2 := &Task{
		ID:         "inv/1",
		outBufs:    [][]*batchBuf{{buf}},
		changeBufs: [][]Record{{{Seq: 2, Key: []byte("s"), Value: []byte("c")}}},
	}
	got = nil
	task2.assertAppendsDrained("progress marker")
	if len(got) != 1 || got[0].buffered != 2 {
		t.Fatalf("unflushed buffers: hook observed %+v, want one violation with buffered=2", got)
	}

	// After the drain the assertion must be silent.
	if err := b.drain(); err != nil {
		t.Fatal(err)
	}
	got = nil
	task.assertAppendsDrained("progress marker")
	if len(got) != 0 {
		t.Fatalf("drained batcher still reported violations: %+v", got)
	}
}

// TestMarkerInvariantHoldsEndToEnd runs real pipelines with the
// violation hook installed: the commit paths (progress markers and txn
// prepares) must always drain before appending their commit record.
func TestMarkerInvariantHoldsEndToEnd(t *testing.T) {
	for _, proto := range []FTProtocol{ProtoProgressMarker, ProtoKafkaTxn} {
		t.Run(proto.String(), func(t *testing.T) {
			var mu sync.Mutex
			var violations []string
			markerOrderHook = func(id TaskID, pending int64, buffered int) {
				mu.Lock()
				violations = append(violations, string(id))
				mu.Unlock()
			}
			defer func() { markerOrderHook = nil }()

			c := startWordCount(t, proto, 2, 2)
			want := c.send(testLines)
			c.waitCounts(want, 10*time.Second)

			mu.Lock()
			defer mu.Unlock()
			if len(violations) != 0 {
				t.Fatalf("marker-ordering invariant violated by tasks %v", violations)
			}
		})
	}
}
