package core

import (
	"fmt"
	"sort"

	"impeller/internal/sharedlog"
)

// Classification of an input batch against committed progress
// (paper §3.3.3, the three cases).
type classification int

const (
	// classCommitted: the batch is covered by a commit — process it.
	classCommitted classification = iota
	// classUncommitted: the batch can never be committed (output of a
	// failed instance, or an aborted transaction) — discard it.
	classUncommitted
	// classUnknown: a later control record may commit it — buffer.
	classUnknown
)

func (c classification) String() string {
	switch c {
	case classCommitted:
		return "committed"
	case classUncommitted:
		return "uncommitted"
	default:
		return "unknown"
	}
}

// commitTracker classifies incoming data batches using the control
// records (progress markers, transaction commits/aborts) seen so far.
// Each task owns one tracker; trackers are not safe for concurrent use.
type commitTracker interface {
	// observeControl ingests a control record addressed to this
	// consumer's substream; lsn is the control record's position.
	observeControl(b *Batch, lsn LSN) error
	// classify judges a data batch at position lsn.
	classify(b *Batch, lsn LSN) classification
}

// --- Impeller progress markers ---

// lsnRange is a closed interval of LSNs committed by one marker, by the
// producer instance that appended the marker. The instance matters: a
// zombie's orphan batch can land between its replacement's first output
// and the replacement's marker — inside the replacement's range — and
// only the instance stamp distinguishes it from the records the marker
// actually covers.
type lsnRange struct {
	first, last LSN
	instance    uint64
}

// producerProgress tracks one upstream task's committed output ranges
// in this consumer's substream.
type producerProgress struct {
	maxInstance uint64
	ranges      []lsnRange // ascending, non-overlapping
	top         LSN        // max committed LSN (range end or marker LSN)
	hasTop      bool
}

// markerTracker implements the three-case algorithm of §3.3.3: it maps
// producer task ids to committed LSN ranges extracted from progress
// markers, and classifies data batches against them. Source batches
// (ingress data) are committed on arrival — the log is the canonical
// input.
type markerTracker struct {
	// myTag is the substream tag this consumer reads; markers carry the
	// OutFirst entry for it.
	myTag sharedlog.Tag
	prods map[TaskID]*producerProgress
}

func newMarkerTracker(myTag sharedlog.Tag) *markerTracker {
	return &markerTracker{myTag: myTag, prods: make(map[TaskID]*producerProgress)}
}

func (t *markerTracker) producer(id TaskID) *producerProgress {
	p := t.prods[id]
	if p == nil {
		p = &producerProgress{}
		t.prods[id] = p
	}
	return p
}

func (t *markerTracker) observeControl(b *Batch, lsn LSN) error {
	if b.Kind != KindMarker {
		return nil
	}
	m, err := DecodeMarker(b.Control)
	if err != nil {
		return err
	}
	p := t.producer(b.Producer)
	if b.Instance > p.maxInstance {
		p.maxInstance = b.Instance
	}
	if first, ok := m.OutFirst[t.myTag]; ok {
		// The committed range is [OutFirst, markerLSN]: the marker's
		// own LSN is the shrunk upper bound (§3.5). Protocol invariants
		// (paper §3.3): ranges are well-formed and strictly monotonic
		// per producer — outputs follow the previous marker and precede
		// their own marker in the log's total order, and fencing makes
		// post-restart markers later still. A violation means log or
		// protocol corruption; fail loudly rather than misclassify.
		if first > lsn {
			return fmt.Errorf("core: marker invariant violated: range [%d, %d] inverted (producer %s)",
				first, lsn, b.Producer)
		}
		if p.hasTop && first <= p.top {
			return fmt.Errorf("core: marker invariant violated: range [%d, %d] overlaps committed top %d (producer %s)",
				first, lsn, p.top, b.Producer)
		}
		p.ranges = append(p.ranges, lsnRange{first: first, last: lsn, instance: b.Instance})
	}
	// Even without output for this substream the marker advances the
	// producer's committed top: everything below it that is not inside
	// a range can never be committed.
	if lsn > p.top || !p.hasTop {
		p.top = lsn
		p.hasTop = true
	}
	return nil
}

func (t *markerTracker) classify(b *Batch, lsn LSN) classification {
	if b.Kind == KindSource {
		return classCommitted
	}
	p, ok := t.prods[b.Producer]
	if !ok || !p.hasTop {
		// "A record from a producer that has not committed anything
		// also falls in this case" — unknown, buffer (§3.3.3).
		return classUnknown
	}
	if lsn > p.top {
		if b.Instance < p.maxInstance {
			// Zombie or dead instance: a marker from a newer instance
			// exists, so this batch can never be committed (§3.4).
			return classUncommitted
		}
		return classUnknown
	}
	// lsn <= top: committed iff inside some range appended by the same
	// instance; otherwise it lies before or between committed ranges —
	// or it is a fenced zombie's orphan that interleaved with the
	// covering instance's outputs — and can never be committed. A
	// marker only ever covers its own instance's outputs: the fence
	// guarantees every committed old-instance marker precedes the
	// replacement's first output in the log's total order.
	i := sort.Search(len(p.ranges), func(i int) bool { return p.ranges[i].last >= lsn })
	if i < len(p.ranges) && p.ranges[i].first <= lsn && p.ranges[i].instance == b.Instance {
		return classCommitted
	}
	return classUncommitted
}

// --- Kafka-style transactions ---

// txnProducer tracks commit state of one upstream producer's epochs.
type txnProducer struct {
	maxInstance uint64
	// committed[instance] is the highest committed epoch.
	committed map[uint64]uint64
	// aborted[instance] holds individually aborted epochs.
	aborted map[uint64]map[uint64]bool
}

// txnTracker classifies batches under the Kafka Streams transaction
// protocol: data batches carry their transaction epoch; commit and
// abort control records resolve them (paper §3.6).
type txnTracker struct {
	prods map[TaskID]*txnProducer
}

func newTxnTracker() *txnTracker {
	return &txnTracker{prods: make(map[TaskID]*txnProducer)}
}

func (t *txnTracker) producer(id TaskID) *txnProducer {
	p := t.prods[id]
	if p == nil {
		p = &txnProducer{committed: make(map[uint64]uint64), aborted: make(map[uint64]map[uint64]bool)}
		t.prods[id] = p
	}
	return p
}

func (t *txnTracker) observeControl(b *Batch, _ LSN) error {
	switch b.Kind {
	case KindTxnCommit:
		p := t.producer(b.Producer)
		if b.Instance > p.maxInstance {
			p.maxInstance = b.Instance
		}
		if b.Epoch > p.committed[b.Instance] {
			p.committed[b.Instance] = b.Epoch
		}
	case KindTxnAbort:
		p := t.producer(b.Producer)
		if b.Instance > p.maxInstance {
			p.maxInstance = b.Instance
		}
		ab := p.aborted[b.Instance]
		if ab == nil {
			ab = make(map[uint64]bool)
			p.aborted[b.Instance] = ab
		}
		ab[b.Epoch] = true
	}
	return nil
}

func (t *txnTracker) classify(b *Batch, _ LSN) classification {
	if b.Kind == KindSource || b.Epoch == 0 {
		// Non-transactional produce: committed on arrival, exactly as
		// Kafka's read_committed treats non-transactional messages.
		return classCommitted
	}
	p, ok := t.prods[b.Producer]
	if !ok {
		return classUnknown
	}
	if ab := p.aborted[b.Instance]; ab != nil && ab[b.Epoch] {
		return classUncommitted
	}
	if b.Epoch <= p.committed[b.Instance] {
		return classCommitted
	}
	if b.Instance < p.maxInstance {
		// The producer was fenced; the coordinator aborted its open
		// transaction.
		return classUncommitted
	}
	return classUnknown
}

// --- No gating (aligned checkpoints, unsafe) ---

// openTracker treats every batch as committed immediately. The aligned
// checkpoint protocol consumes eagerly and relies on checkpoint rewind
// plus sequence-number deduplication for exactly-once; unsafe makes no
// guarantee.
type openTracker struct{}

func (openTracker) observeControl(*Batch, LSN) error    { return nil }
func (openTracker) classify(*Batch, LSN) classification { return classCommitted }
