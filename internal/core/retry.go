package core

import (
	"context"
	"fmt"
	"time"

	"impeller/internal/sharedlog"
	"impeller/internal/sim"
)

// RetryPolicy bounds the transient-fault retry loop wrapped around log
// operations. The taxonomy is: transient faults (a crashed storage
// shard, a partition between the client and the log, an unreachable
// replica quorum) are retried with jittered exponential backoff; fatal
// outcomes (a fencing conflict, a closed log, a cancelled context, the
// client's own node crashing) are returned immediately — retrying a
// fence rejection cannot change the answer, and a crashed node must
// die so the manager can restart it.
type RetryPolicy struct {
	// MaxAttempts caps tries per operation (default 10).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 2 ms); each retry
	// doubles it up to MaxDelay (default 100 ms), jittered ±50%.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// OpTimeout bounds one operation's total retry budget (default
	// 2 s): once exceeded, the next transient error is returned.
	OpTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 10
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.OpTimeout <= 0 {
		p.OpTimeout = 2 * time.Second
	}
	return p
}

// retrier retries transient log faults on behalf of one client node.
// It is safe for concurrent use (sim.Rand locks internally; everything
// else is immutable after construction).
type retrier struct {
	policy  RetryPolicy
	clock   sim.Clock
	faults  *sim.FaultInjector
	node    string
	rng     *sim.Rand
	metrics *TaskMetrics
}

// newRetrier builds a retrier for the named client node. The jitter
// stream is derived deterministically from (env.Seed, node) so chaos
// runs with a fixed seed replay the same backoff choices. metrics may
// be nil.
func newRetrier(env *Env, node string, m *TaskMetrics) *retrier {
	seed := env.Seed
	if seed == 0 {
		seed = 1
	}
	for _, c := range node {
		seed = seed*1099511628211 + uint64(c) // FNV-style fold
	}
	clock := env.Clock
	if clock == nil {
		clock = sim.RealClock{}
	}
	return &retrier{
		policy:  env.Retry.withDefaults(),
		clock:   clock,
		faults:  env.Faults,
		node:    node,
		rng:     sim.NewRand(seed),
		metrics: m,
	}
}

// preflight consults the fault injector before an operation: the
// node's own crash is fatal (the task must die and be restarted once
// the node recovers); a partition between the node and the log is
// transient (it heals).
func (r *retrier) preflight() (fatal, transient error) {
	if r.faults == nil || r.node == "" {
		return nil, nil
	}
	if r.faults.Crashed(r.node) {
		return fmt.Errorf("core: %s: %w", r.node, sim.ErrCrashed), nil
	}
	if err := r.faults.Check(r.node, "log"); err != nil {
		return nil, err
	}
	return nil, nil
}

// do runs fn, retrying transient faults with jittered exponential
// backoff until it succeeds, turns fatal, exhausts MaxAttempts /
// OpTimeout, or ctx is cancelled (then ctx.Err() is returned so
// callers can classify a clean shutdown).
func (r *retrier) do(ctx context.Context, op string, fn func() error) error {
	deadline := r.clock.Now().Add(r.policy.OpTimeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		fatal, transient := r.preflight()
		if fatal != nil {
			return fmt.Errorf("core: %s: %w", op, fatal)
		}
		err := transient
		if err == nil {
			err = fn()
		}
		if err == nil {
			return nil
		}
		if !sharedlog.IsRetryable(err) {
			return err
		}
		lastErr = err
		if attempt+1 >= r.policy.MaxAttempts || !r.clock.Now().Before(deadline) {
			break
		}
		if r.metrics != nil {
			r.metrics.Retries.Add(1)
		}
		if !r.sleep(ctx, r.backoff(attempt)) {
			return ctx.Err()
		}
	}
	return fmt.Errorf("core: %s: retries exhausted: %w", op, lastErr)
}

// backoff computes the jittered exponential delay for attempt (0-based).
func (r *retrier) backoff(attempt int) time.Duration {
	d := r.policy.BaseDelay
	for i := 0; i < attempt && d < r.policy.MaxDelay; i++ {
		d *= 2
	}
	if d > r.policy.MaxDelay {
		d = r.policy.MaxDelay
	}
	// Jitter over [d/2, d]: desynchronizes clients retrying the same
	// outage without ever collapsing the wait to ~0.
	half := d / 2
	if half > 0 {
		d = half + time.Duration(r.rng.Uint64()%uint64(half+1))
	}
	return d
}

// sleep waits d on the environment clock, returning false if ctx was
// cancelled first.
func (r *retrier) sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	select {
	case <-ctx.Done():
		return false
	case <-r.clock.After(d):
		return true
	}
}
