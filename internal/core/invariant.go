package core

import "fmt"

// The marker-ordering invariant: a commit record (progress marker, txn
// prepare) must follow, in the log's total order, every data and
// change-log append it covers. The commit paths enforce it by draining
// the batcher before appending the commit record synchronously; this
// assertion makes a violation — a marker submitted while a covered
// append is still buffered, sealed-but-in-flight, or unsubmitted in an
// output buffer — loud instead of silently producing a marker that
// gates records it cannot see.

// markerOrderHook, when non-nil, observes violations instead of
// panicking. Test-only: the regression test installs it to prove the
// assertion actually fires.
var markerOrderHook func(id TaskID, pendingAppends int64, bufferedRecords int)

// assertAppendsDrained checks the invariant at the point a commit
// record is about to be appended. Pending batcher entries are checked
// always (the counter is one atomic load); the unflushed-buffer sweep
// is gated behind the impellerdebug build tag.
func (t *Task) assertAppendsDrained(where string) {
	var pending int64
	if t.appender != nil {
		pending = t.appender.pending()
	}
	buffered := 0
	if debugChecks || markerOrderHook != nil {
		for out := range t.outBufs {
			for sub := range t.outBufs[out] {
				buffered += len(t.outBufs[out][sub].records)
			}
		}
		for i := range t.changeBufs {
			buffered += len(t.changeBufs[i])
		}
	}
	if pending == 0 && buffered == 0 {
		return
	}
	if markerOrderHook != nil {
		markerOrderHook(t.ID, pending, buffered)
		return
	}
	if debugChecks {
		panic(fmt.Sprintf("core: task %s: %s with %d undrained appends and %d unflushed records — marker would be ordered ahead of records it covers",
			t.ID, where, pending, buffered))
	}
}
