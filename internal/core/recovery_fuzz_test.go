package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"impeller/internal/kvstore"
	"impeller/internal/sharedlog"
)

// FuzzDecodeMarkerCheckpoint asserts the checkpoint decoder is total:
// arbitrary bytes either decode or error — never panic — and a decoded
// blob's state either restores into a store or fails cleanly, leaving
// the store empty (the property recoverMarker's corruption fallback
// relies on).
func FuzzDecodeMarkerCheckpoint(f *testing.F) {
	valid := (&markerCheckpoint{Epoch: 3, CoveredLSN: 17, State: NewStateStore(nil).Snapshot()}).encode()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:8])
	f.Add(valid[:15])
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	store := NewStateStore(nil)
	store.Put("k", []byte("v"))
	f.Add((&markerCheckpoint{Epoch: 1, CoveredLSN: 0, State: store.Snapshot()}).encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := decodeMarkerCheckpoint(data)
		if err != nil {
			if ck != nil {
				t.Fatal("error with non-nil checkpoint")
			}
			return
		}
		// Round trip: decode(encode(decode(x))) is stable.
		again, err := decodeMarkerCheckpoint(ck.encode())
		if err != nil {
			t.Fatalf("re-decode of re-encoded checkpoint failed: %v", err)
		}
		if again.Epoch != ck.Epoch || again.CoveredLSN != ck.CoveredLSN || !bytes.Equal(again.State, ck.State) {
			t.Fatal("checkpoint round trip not stable")
		}
		// Restoring the (possibly garbage) state must not panic, and on
		// failure must leave the store untouched (atomicity is what lets
		// recovery fall back to a full change-log replay).
		s := NewStateStore(nil)
		if err := s.RestoreSnapshot(ck.State); err != nil {
			if n := s.Len(); n != 0 {
				t.Fatalf("failed restore left %d keys behind", n)
			}
		}
	})
}

// TestRecoveryCorruptCheckpointFallsBack plants corrupt bytes under the
// task's checkpoint key and restarts it: recovery must not fail — it
// falls back to a full change-log replay — and exactly-once counts must
// still converge. Both corruption shapes are covered: bytes the decoder
// rejects, and a well-formed header whose state snapshot is garbage.
func TestRecoveryCorruptCheckpointFallsBack(t *testing.T) {
	cases := []struct {
		name string
		blob []byte
	}{
		{"truncated", []byte{1, 2, 3}},
		// GroupsSig must match the task's ownership ([0] at parallelism
		// 1) or the signature gate skips the blob before the corrupt
		// state is ever decoded.
		{"garbage-state", (&markerCheckpoint{Epoch: 1, CoveredLSN: 0, GroupsSig: groupsSig([]int{0}),
			State: bytes.Repeat([]byte{0xee}, 40)}).encode()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := startWordCount(t, ProtoProgressMarker, 1, 1)
			want := c.send(testLines)
			c.waitCounts(want, 10*time.Second)

			id := TaskID("wc/count/0")
			if err := c.env.Checkpoints.Put(MarkerCkptKey(id), tc.blob); err != nil {
				t.Fatal(err)
			}
			if err := c.mgr.RestartNow(id); err != nil {
				t.Fatal(err)
			}

			deadline := time.Now().Add(10 * time.Second)
			m := c.mgr.TaskMetrics(id)
			for m.CheckpointDecodeFailures.Load() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("corrupt checkpoint never detected")
				}
				time.Sleep(5 * time.Millisecond)
			}
			if m.RecoveredFromCheckpoint.Load() != 0 {
				t.Fatal("recovery claims it used the corrupt checkpoint")
			}

			// State must have been rebuilt from the change log alone.
			for k, v := range c.send(testLines) {
				want[k] += v
			}
			c.waitCounts(want, 10*time.Second)
		})
	}
}

// TestRecoveryCorruptAlignedSnapshotFails covers the aligned decoder's
// totality the same way: junk under the checkpoint key yields an error,
// not a panic (aligned recovery has no change log to fall back on, so
// the instance dies and the monitor respawns it; an intact earlier
// snapshot would be found by the next instance in a real deployment).
func TestRecoveryCorruptAlignedSnapshotFails(t *testing.T) {
	for _, blob := range [][]byte{nil, {1}, bytes.Repeat([]byte{0xff}, 48)} {
		if _, err := decodeAlignedSnapshot(blob); err == nil {
			t.Fatalf("decodeAlignedSnapshot(%d junk bytes) succeeded", len(blob))
		}
	}
}

// TestCheckpointerSurvivesDecodeOnRestart ensures the checkpoint path
// end to end (write via checkpointer, read via recovery) still works
// after a corrupt blob was overwritten by a fresh good checkpoint.
func TestCheckpointerSurvivesDecodeOnRestart(t *testing.T) {
	env := &Env{
		Log:              sharedlog.Open(sharedlog.Config{}),
		Checkpoints:      kvstore.Open(kvstore.Config{}),
		Protocol:         ProtoProgressMarker,
		CommitInterval:   20 * time.Millisecond,
		SnapshotInterval: time.Hour, // checkpoint manually below
	}
	defer env.Log.Close()
	mgr, err := NewManager(env, wordCountQuery(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	id := TaskID("wc/count/0")
	if err := env.Checkpoints.Put(MarkerCkptKey(id), []byte("junk")); err != nil {
		t.Fatal(err)
	}

	ing := NewIngress("ingress/0", "lines", 1, mgr.Env(), nil)
	go func() { _ = ing.Run(ctx, 5*time.Millisecond) }()
	for i := 0; i < 200; i++ {
		ing.Send([]byte("k"), []byte("w w w"), time.Now().UnixMicro())
	}

	// A fresh checkpoint overwrites the junk once a marker lands.
	cp := mgr.Checkpointer(id)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := cp.Checkpoint(ctx); err != nil {
			t.Fatal(err)
		}
		if _, ok := cp.Covered(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpointer never covered a marker")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c0RestartAndVerify(mgr); err != nil {
		t.Fatal(err)
	}
}
