package core

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeAlignedSnapshot asserts the aligned-checkpoint decoder is
// total over arbitrary bytes — it either decodes or errors, never
// panics or over-allocates — and that a successful decode round-trips
// through the canonical encoding (maps are sorted on encode, so
// re-encoding a decoded snapshot is byte-stable).
func FuzzDecodeAlignedSnapshot(f *testing.F) {
	store := NewStateStore(nil)
	store.Put("word", []byte("7"))
	valid := (&alignedSnapshot{
		Epoch:    5,
		OutSeq:   42,
		Barriers: map[TaskID]LSN{"wc/split/0": 17, "ingress/0": 3},
		LastSeq:  map[TaskID]uint64{"wc/split/0": 9},
		State:    store.Snapshot(),
	}).encode()
	f.Add(valid)
	f.Add((&alignedSnapshot{}).encode())
	f.Add([]byte{})
	f.Add(valid[:16])
	f.Add(valid[:len(valid)-3])
	f.Add(bytes.Repeat([]byte{0xff}, 48))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeAlignedSnapshot(data)
		if err != nil {
			if s != nil {
				t.Fatal("error with non-nil snapshot")
			}
			return
		}
		enc := s.encode()
		again, err := decodeAlignedSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if again.Epoch != s.Epoch || again.OutSeq != s.OutSeq ||
			!reflect.DeepEqual(again.Barriers, s.Barriers) ||
			!reflect.DeepEqual(again.LastSeq, s.LastSeq) ||
			!bytes.Equal(again.State, s.State) {
			t.Fatal("aligned snapshot round trip not stable")
		}
		if !bytes.Equal(enc, again.encode()) {
			t.Fatal("canonical encoding not byte-stable")
		}
	})
}

// FuzzDecodeFrontier asserts the egress ack-frontier decoder is total
// and round-trips through the canonical sorted encoding — the property
// a restarted delivery sink relies on when it loads the last persisted
// frontier from the log.
func FuzzDecodeFrontier(f *testing.F) {
	valid := encodeFrontier(1234, map[ackKey]uint64{
		{0, "q1/map/0"}: 17,
		{1, "q1/map/0"}: 9,
		{0, "q1/map/1"}: 2,
	})
	f.Add(valid)
	f.Add(encodeFrontier(0, nil))
	f.Add([]byte{})
	f.Add(valid[:12])
	f.Add(valid[:len(valid)-5])
	f.Add(bytes.Repeat([]byte{0xff}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		resume, acked, err := decodeFrontier(data)
		if err != nil {
			return
		}
		enc := encodeFrontier(resume, acked)
		resume2, acked2, err := decodeFrontier(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frontier failed: %v", err)
		}
		if resume2 != resume || !reflect.DeepEqual(acked2, acked) {
			t.Fatal("frontier round trip not stable")
		}
		if !bytes.Equal(enc, encodeFrontier(resume2, acked2)) {
			t.Fatal("canonical encoding not byte-stable")
		}
	})
}
