package core

import (
	"context"
	"errors"

	"impeller/internal/sharedlog"
)

// commit performs the periodic exactly-once bookkeeping for the task's
// configured protocol. For Impeller this is one conditional multi-tag
// append (paper §3.3); for Kafka transactions it is the two-phase
// protocol of §3.6; aligned checkpoints are driven by barriers rather
// than the commit tick; unsafe does nothing.
func (t *Task) commit(ctx context.Context) error {
	switch t.env.Protocol {
	case ProtoProgressMarker:
		return t.commitMarker(ctx)
	case ProtoKafkaTxn:
		return t.commitTxn(ctx)
	case ProtoAlignedCheckpoint, ProtoUnsafe:
		t.flushOutputs()
		return t.drainAppends()
	default:
		return errors.New("core: unknown protocol")
	}
}

// commitMarker writes one progress marker: a consistent cut of input,
// output, and state-change progress, atomically visible in every
// downstream substream, the task log, and the change log through the
// log's multi-tag append (paper §3.3.1, Figure 4 and Figure 6).
func (t *Task) commitMarker(ctx context.Context) error {
	t.flushOutputs()
	if err := t.drainAppends(); err != nil {
		return err
	}
	if !t.activity && !t.firstCommit {
		return nil
	}

	t.progressMu.Lock()
	m := &ProgressMarker{
		InputEnd:        t.inputEnd(),
		ChangeFirst:     t.changeFirst,
		SeqEnd:          t.outSeq,
		CheckpointEpoch: t.ckptEpoch,
	}
	if len(t.outFirst) > 0 {
		m.OutFirst = make(map[sharedlog.Tag]LSN, len(t.outFirst))
		for tag, lsn := range t.outFirst {
			m.OutFirst[tag] = lsn
		}
	}
	t.progressMu.Unlock()

	// The marker's tag set (every downstream substream, the task log,
	// the change log) is precomputed at construction: t.markerTags.
	t.assertAppendsDrained("progress marker")

	// Epoch on a marker batch carries the assignment epoch the instance
	// runs under; recovery reads it off the last marker to bound its
	// handoff-floor scan (applyHandoffFloors).
	payload := (&Batch{
		Kind:     KindMarker,
		Producer: t.ID,
		Instance: t.Instance,
		Epoch:    t.assignEpoch,
		Control:  m.Encode(),
	}).Encode()

	// The conditional append fences zombies: it succeeds only while the
	// metadata store still maps our task id to our instance number
	// (paper §3.4). Transient log faults are retried — the guard makes
	// the retry safe: either no attempt committed (retry is a fresh
	// try) or one did and the next returns ErrCondFailed only if we
	// were fenced meanwhile. A fencing rejection is fatal, never
	// retried: the answer cannot change.
	var markerLSN LSN
	err := t.retry.do(ctx, "marker append", func() error {
		var e error
		markerLSN, e = t.log.ConditionalAppend(t.markerTags, payload, InstanceKey(t.ID), t.Instance)
		return e
	})
	if errors.Is(err, sharedlog.ErrCondFailed) {
		return ErrZombie
	}
	if err != nil {
		return err
	}
	if t.env.GC != nil {
		// Everything at or below the committed InputEnd is consumed; we
		// still need our latest marker (and the change-log suffix,
		// whose floor the checkpointer reports separately).
		floor := markerLSN
		if in := t.inputEnd(); in != NoLSN && in+1 < floor {
			floor = in + 1
		}
		if !t.stage.Stateful || t.env.SnapshotInterval > 0 {
			t.env.GC.Report(t.ID, floor)
		}
	}
	t.Metrics.Appends.Add(1)
	t.Metrics.Markers.Add(1)
	t.Metrics.MarkerBytes.Add(uint64(len(m.Encode())))
	t.Metrics.MarkerBytesUnshrunk.Add(uint64(m.UnshrunkSize()))

	t.resetProgress()
	return nil
}

func (t *Task) resetProgress() {
	t.progressMu.Lock()
	t.outFirst = make(map[sharedlog.Tag]LSN)
	t.changeFirst = NoLSN
	t.progressMu.Unlock()
	t.activity = false
	t.firstCommit = false
}

// --- Kafka Streams transaction protocol (paper §3.6) ---

// txnTouched tracks the output substream tags registered with the
// coordinator for the current transaction.
func (t *Task) txnRegister(tags []sharedlog.Tag) {
	if t.txnTouchedSet == nil {
		t.txnTouchedSet = make(map[sharedlog.Tag]bool)
	}
	var fresh []sharedlog.Tag
	for _, tag := range tags {
		if !t.txnTouchedSet[tag] {
			t.txnTouchedSet[tag] = true
			fresh = append(fresh, tag)
		}
	}
	if len(fresh) == 0 {
		return
	}
	// Registration is the synchronous part of phase one: "before a task
	// can append to any stream, it must register the stream name and
	// substream identifier with the coordinator" (§3.6).
	t.txn.Register(t.ID, t.Instance, t.epoch, fresh)
}

// commitTxn runs the two-phase commit. Phase one (pre-commit) is
// synchronous; phase two (commit markers to every touched substream,
// the offsets record, the final commit record) runs asynchronously in
// the coordinator — but a new transaction cannot commit before the
// previous one completes, so short commit intervals stall (paper §3.6,
// §5.3.2; the CommitStalls metric counts these waits).
func (t *Task) commitTxn(ctx context.Context) error {
	t.flushOutputs()
	if err := t.drainAppends(); err != nil {
		return err
	}
	if !t.activity && !t.firstCommit {
		return nil
	}
	if t.pendingP2 != nil {
		select {
		case <-t.pendingP2:
		default:
			t.Metrics.CommitStalls.Add(1)
			select {
			case <-t.pendingP2:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	// Also register the change log with the coordinator so its commit
	// marker covers the epoch's state changes.
	if t.stage.Stateful && t.changedThisEpoch {
		t.txnRegister([]sharedlog.Tag{ChangeLogTag(t.ID)})
	}

	touched := make([]sharedlog.Tag, 0, len(t.txnTouchedSet))
	for tag := range t.txnTouchedSet {
		touched = append(touched, tag)
	}
	offsets := &ProgressMarker{InputEnd: t.inputEnd(), SeqEnd: t.outSeq}

	t.assertAppendsDrained("transaction prepare")
	done, err := t.txn.Prepare(t.ID, t.Instance, t.epoch, touched, offsets)
	if err != nil {
		if errors.Is(err, ErrZombie) {
			return ErrZombie
		}
		return err
	}
	t.Metrics.Markers.Add(1) // one committed transaction ≈ one progress unit
	t.pendingP2 = done
	t.epoch++
	t.txnTouchedSet = nil
	t.changedThisEpoch = false
	t.activity = false
	t.firstCommit = false
	return nil
}
