package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"impeller/internal/kvstore"
	"impeller/internal/sharedlog"
	"impeller/internal/sim"
)

func testRetrier(t *testing.T, node string, p RetryPolicy) (*retrier, *sim.FaultInjector, *TaskMetrics) {
	t.Helper()
	faults := sim.NewFaultInjector()
	m := &TaskMetrics{}
	env := &Env{Faults: faults, Retry: p, Seed: 7}
	return newRetrier(env, node, m), faults, m
}

func TestRetryTransientThenSuccess(t *testing.T) {
	r, _, m := testRetrier(t, "", RetryPolicy{BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond})
	calls := 0
	err := r.do(context.Background(), "op", func() error {
		calls++
		if calls < 3 {
			return sharedlog.ErrUnavailable
		}
		return nil
	})
	if err != nil {
		t.Fatalf("do() = %v, want success after transient failures", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
	if got := m.Retries.Load(); got != 2 {
		t.Fatalf("Retries metric = %d, want 2", got)
	}
}

func TestRetryFatalNotRetried(t *testing.T) {
	r, _, m := testRetrier(t, "", RetryPolicy{})
	for _, fatal := range []error{sharedlog.ErrCondFailed, sharedlog.ErrClosed, sharedlog.ErrTrimmed} {
		calls := 0
		err := r.do(context.Background(), "op", func() error {
			calls++
			return fatal
		})
		if !errors.Is(err, fatal) {
			t.Fatalf("do() = %v, want %v passed through", err, fatal)
		}
		if calls != 1 {
			t.Fatalf("fatal %v retried (%d calls)", fatal, calls)
		}
	}
	if got := m.Retries.Load(); got != 0 {
		t.Fatalf("Retries metric = %d, want 0 for fatal errors", got)
	}
}

func TestRetryExhausted(t *testing.T) {
	r, _, _ := testRetrier(t, "", RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 2 * time.Microsecond})
	calls := 0
	err := r.do(context.Background(), "op", func() error {
		calls++
		return sharedlog.ErrUnavailable
	})
	if calls != 3 {
		t.Fatalf("fn called %d times, want MaxAttempts=3", calls)
	}
	if !errors.Is(err, sharedlog.ErrUnavailable) {
		t.Fatalf("exhausted error %v does not wrap the last transient error", err)
	}
}

func TestRetryOwnNodeCrashIsFatal(t *testing.T) {
	r, faults, _ := testRetrier(t, "node/x", RetryPolicy{})
	faults.Crash("node/x")
	calls := 0
	err := r.do(context.Background(), "op", func() error { calls++; return nil })
	if !errors.Is(err, sim.ErrCrashed) {
		t.Fatalf("do() on crashed node = %v, want sim.ErrCrashed", err)
	}
	if calls != 0 {
		t.Fatal("operation ran on a crashed node")
	}
}

func TestRetryPartitionFromLogHeals(t *testing.T) {
	r, faults, _ := testRetrier(t, "node/x", RetryPolicy{
		MaxAttempts: 100, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
	})
	faults.Partition("node/x", "log")
	go func() {
		time.Sleep(10 * time.Millisecond)
		faults.Heal("node/x", "log")
	}()
	calls := 0
	err := r.do(context.Background(), "op", func() error { calls++; return nil })
	if err != nil {
		t.Fatalf("do() = %v, want success after partition healed", err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want exactly 1 (preflight blocks while partitioned)", calls)
	}
}

func TestRetryCtxCancelled(t *testing.T) {
	r, _, _ := testRetrier(t, "", RetryPolicy{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := r.do(ctx, "op", func() error { t.Fatal("fn ran under cancelled ctx"); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("do() = %v, want context.Canceled", err)
	}
}

func TestRetryBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 2 * time.Millisecond, MaxDelay: 100 * time.Millisecond}.withDefaults()
	r, _, _ := testRetrier(t, "", p)
	for attempt := 0; attempt < 12; attempt++ {
		ceil := p.BaseDelay << uint(attempt)
		if ceil > p.MaxDelay || ceil <= 0 {
			ceil = p.MaxDelay
		}
		for i := 0; i < 50; i++ {
			d := r.backoff(attempt)
			if d < ceil/2 || d > ceil {
				t.Fatalf("backoff(%d) = %v outside jitter range [%v, %v]", attempt, d, ceil/2, ceil)
			}
		}
	}
}

func TestRetryJitterDeterministicPerNode(t *testing.T) {
	mk := func(node string) []time.Duration {
		r, _, _ := testRetrier(t, node, RetryPolicy{})
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = r.backoff(i)
		}
		return out
	}
	a, b := mk("node/a"), mk("node/a")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed, node) produced different jitter at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := mk("node/b")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different nodes share an identical jitter stream")
	}
}

// TestManagerRestartBackoff crashes a task's compute node so every
// replacement instance dies during startup, and checks the monitor
// paces restarts instead of hot-looping, then resets the backoff once
// the node recovers and an instance stays healthy.
func TestManagerRestartBackoff(t *testing.T) {
	faults := sim.NewFaultInjector()
	env := &Env{
		Log:            sharedlog.Open(sharedlog.Config{Faults: faults}),
		Checkpoints:    kvstore.Open(kvstore.Config{}),
		Protocol:       ProtoProgressMarker,
		CommitInterval: 5 * time.Millisecond,
		Faults:         faults,
	}
	defer env.Log.Close()
	mgr, err := NewManager(env, wordCountQuery(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	mgr.RestartBackoffMax = 50 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	mgr.SetTimeouts(40*time.Millisecond, 5*time.Millisecond)

	id := TaskID("wc/count/0")
	faults.Crash(ComputeNode(id))
	if err := mgr.Kill(id); err != nil {
		t.Fatal(err)
	}

	// While the node stays down every respawned instance exits with
	// sim.ErrCrashed almost immediately. Without backoff the monitor
	// would restart ~2 per monitor tick-pair (~300ms / 5ms = 60 times);
	// with exponential backoff capped at 50ms it is bounded by roughly
	// 300/50 + the ramp-up (~5) — allow generous slack for scheduling.
	time.Sleep(300 * time.Millisecond)
	down := mgr.Restarts(id)
	if down == 0 {
		t.Fatal("crashed-node task was never restarted")
	}
	if down > 20 {
		t.Fatalf("restarted %d times in 300ms with a down node; backoff is not pacing", down)
	}

	// Recover the node; the next instance should come up, stay healthy,
	// and processing should work end to end again.
	faults.Recover(ComputeNode(id))
	deadline := time.Now().Add(10 * time.Second)
	for mgr.Restarts(id) == down {
		if time.Now().After(deadline) {
			t.Fatal("task never restarted after node recovery")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ing := NewIngress("ingress/0", "lines", 1, mgr.Env(), nil)
	go func() { _ = ing.Run(ctx, 5*time.Millisecond) }()
	sink := NewGatedSink("counts", 1, mgr.Env())
	got := make(chan struct{}, 1)
	sink.OnRecord = func(Record, TaskID, time.Time) {
		select {
		case got <- struct{}{}:
		default:
		}
	}
	go func() { _ = sink.Run(ctx) }()
	for i := 0; i < 20; i++ {
		ing.Send([]byte(fmt.Sprint(i)), []byte("alive"), time.Now().UnixMicro())
	}
	select {
	case <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("no output after node recovery")
	}
}
