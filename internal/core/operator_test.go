package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeCtx is a minimal ProcContext for operator unit tests.
type fakeCtx struct {
	store *StateStore
}

func newFakeCtx() *fakeCtx            { return &fakeCtx{store: NewStateStore(nil)} }
func (f *fakeCtx) Store() *StateStore { return f.store }
func (f *fakeCtx) TaskID() TaskID     { return "test/0" }
func (f *fakeCtx) Substream() int     { return 0 }
func (f *fakeCtx) Charge(int)         {}

type emitted struct {
	out int
	d   Datum
}

// run feeds records through a processor and collects emissions.
func runOp(t *testing.T, p Processor, inputs []struct {
	port int
	d    Datum
}) []emitted {
	t.Helper()
	ctx := newFakeCtx()
	if err := p.Open(ctx); err != nil {
		t.Fatalf("Open: %v", err)
	}
	var out []emitted
	emit := func(o int, d Datum) { out = append(out, emitted{o, d}) }
	for _, in := range inputs {
		if err := p.Process(in.port, in.d, emit); err != nil {
			t.Fatalf("Process: %v", err)
		}
	}
	return out
}

func d(key, value string, et int64) Datum {
	return Datum{Key: []byte(key), Value: []byte(value), EventTime: et}
}

func in(port int, dd Datum) struct {
	port int
	d    Datum
} {
	return struct {
		port int
		d    Datum
	}{port, dd}
}

func TestMapTransformsAndDrops(t *testing.T) {
	p := Map(func(x Datum) *Datum {
		if string(x.Value) == "drop" {
			return nil
		}
		x.Value = append(x.Value, '!')
		return &x
	})
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{in(0, d("k", "a", 1)), in(0, d("k", "drop", 2)), in(0, d("k", "b", 3))})
	if len(out) != 2 || string(out[0].d.Value) != "a!" || string(out[1].d.Value) != "b!" {
		t.Fatalf("out = %+v", out)
	}
}

func TestFilter(t *testing.T) {
	p := Filter(func(x Datum) bool { return len(x.Value) > 1 })
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{in(0, d("k", "a", 1)), in(0, d("k", "ab", 2))})
	if len(out) != 1 || string(out[0].d.Value) != "ab" {
		t.Fatalf("out = %+v", out)
	}
}

func TestFlatMap(t *testing.T) {
	p := FlatMap(func(x Datum) []Datum {
		var outs []Datum
		for _, w := range bytes.Fields(x.Value) {
			outs = append(outs, Datum{Key: w, Value: []byte("1"), EventTime: x.EventTime})
		}
		return outs
	})
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{in(0, d("", "hello world hello", 5))})
	if len(out) != 3 || string(out[0].d.Key) != "hello" || string(out[1].d.Key) != "world" {
		t.Fatalf("out = %+v", out)
	}
}

func TestBranchRoutesFirstMatch(t *testing.T) {
	p := Branch(
		func(x Datum) bool { return x.Value[0] == 'a' },
		func(x Datum) bool { return x.Value[0] == 'b' },
	)
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{in(0, d("k", "a1", 1)), in(0, d("k", "b1", 2)), in(0, d("k", "c1", 3))})
	if len(out) != 2 || out[0].out != 0 || out[1].out != 1 {
		t.Fatalf("out = %+v", out)
	}
}

func TestSelectKey(t *testing.T) {
	p := SelectKey(func(x Datum) []byte { return x.Value[:1] })
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{in(0, d("old", "xyz", 1))})
	if string(out[0].d.Key) != "x" {
		t.Fatalf("key = %q", out[0].d.Key)
	}
}

func TestChainComposesAndPropagatesErrors(t *testing.T) {
	p := Chain(
		Map(func(x Datum) *Datum { x.Value = append(x.Value, 'A'); return &x }),
		Filter(func(x Datum) bool { return len(x.Value) > 1 }),
		Map(func(x Datum) *Datum { x.Value = append(x.Value, 'B'); return &x }),
	)
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{in(0, d("k", "x", 1)), in(0, d("k", "", 2))})
	if len(out) != 1 || string(out[0].d.Value) != "xAB" {
		t.Fatalf("out = %+v", out)
	}

	boom := errors.New("boom")
	failing := Chain(
		Map(func(x Datum) *Datum { return &x }),
		ProcessorFunc(func(int, Datum, Emit) error { return boom }),
	)
	ctx := newFakeCtx()
	if err := failing.Open(ctx); err != nil {
		t.Fatal(err)
	}
	err := func() (err error) {
		defer func() { err = RecoverChainError(recover()) }()
		return failing.Process(0, d("k", "v", 1), func(int, Datum) {})
	}()
	if !errors.Is(err, boom) {
		t.Fatalf("chain error = %v, want boom", err)
	}
}

func TestStreamAggregateEmitsRunningState(t *testing.T) {
	p := Count("cnt")
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{in(0, d("a", "", 1)), in(0, d("b", "", 2)), in(0, d("a", "", 3))})
	if len(out) != 3 {
		t.Fatalf("out = %+v", out)
	}
	counts := func(e emitted) uint64 { return binary.LittleEndian.Uint64(e.d.Value) }
	if counts(out[0]) != 1 || counts(out[1]) != 1 || counts(out[2]) != 2 {
		t.Fatalf("counts = %d %d %d", counts(out[0]), counts(out[1]), counts(out[2]))
	}
}

func TestReduce(t *testing.T) {
	p := Reduce("max", func(_, value, acc []byte) []byte {
		if bytes.Compare(value, acc) > 0 {
			return value
		}
		return acc
	})
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{in(0, d("k", "b", 1)), in(0, d("k", "a", 2)), in(0, d("k", "c", 3))})
	if string(out[2].d.Value) != "c" || string(out[1].d.Value) != "b" {
		t.Fatalf("out = %+v", out)
	}
}

func TestTableAggregateRetraction(t *testing.T) {
	// Sum grouped by the value's first byte; table upserts must
	// subtract the row's previous contribution.
	sum := TableAggregator{
		Add: func(_, value, acc []byte) []byte {
			n := int64(0)
			if len(acc) == 8 {
				n = int64(binary.LittleEndian.Uint64(acc))
			}
			n += int64(value[1])
			return binary.LittleEndian.AppendUint64(nil, uint64(n))
		},
		Subtract: func(_, value, acc []byte) []byte {
			n := int64(binary.LittleEndian.Uint64(acc))
			n -= int64(value[1])
			return binary.LittleEndian.AppendUint64(nil, uint64(n))
		},
	}
	// Record key is the group ("g"); the row id lives in the value.
	p := TableAggregate("agg", func(x Datum) []byte { return x.Value[2:] }, sum)
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{
		in(0, Datum{Key: []byte("g"), Value: []byte{'g', 10, 'r', '1'}}),
		in(0, Datum{Key: []byte("g"), Value: []byte{'g', 5, 'r', '2'}}),
		// row1 updated: 10 must be retracted, 3 added => total 8.
		in(0, Datum{Key: []byte("g"), Value: []byte{'g', 3, 'r', '1'}}),
	})
	last := out[len(out)-1]
	if got := binary.LittleEndian.Uint64(last.d.Value); got != 8 {
		t.Fatalf("aggregate after retraction = %d, want 8", got)
	}
	if string(last.d.Key) != "g" {
		t.Fatalf("group key = %q", last.d.Key)
	}
}

func TestMapValues(t *testing.T) {
	p := MapValues(func(k, v []byte) []byte { return append(v, v...) })
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{in(0, d("k", "ab", 1))})
	if string(out[0].d.Value) != "abab" || string(out[0].d.Key) != "k" {
		t.Fatalf("out = %+v", out)
	}
}

func us(dur time.Duration) int64 { return dur.Microseconds() }

func TestWindowSpecAssignment(t *testing.T) {
	// Tumbling 10s: event at 25s lands in [20,30).
	w := (WindowSpec{Size: 10 * time.Second}).normalize()
	ws := w.windowsFor(us(25 * time.Second))
	if len(ws) != 1 || ws[0].Start != us(20*time.Second) || ws[0].End != us(30*time.Second) {
		t.Fatalf("tumbling windows = %+v", ws)
	}
	// Sliding 10s advance 2s: event at 25s is in starts 16,18,20,22,24.
	w = (WindowSpec{Size: 10 * time.Second, Advance: 2 * time.Second}).normalize()
	ws = w.windowsFor(us(25 * time.Second))
	if len(ws) != 5 {
		t.Fatalf("sliding window count = %d, want 5 (%+v)", len(ws), ws)
	}
	if ws[0].Start != us(16*time.Second) || ws[4].Start != us(24*time.Second) {
		t.Fatalf("sliding bounds = %+v", ws)
	}
	// Ascending order.
	for i := 1; i < len(ws); i++ {
		if ws[i].Start <= ws[i-1].Start {
			t.Fatalf("not ascending: %+v", ws)
		}
	}
	// Near zero: no negative starts.
	ws = w.windowsFor(us(1 * time.Second))
	for _, b := range ws {
		if b.Start < 0 {
			t.Fatalf("negative window start: %+v", ws)
		}
	}
}

func TestWindowKeyRoundTrip(t *testing.T) {
	k := WindowKey(100, 200, []byte("key"))
	s, e, key, err := SplitWindowKey(k)
	if err != nil || s != 100 || e != 200 || string(key) != "key" {
		t.Fatalf("split = %d %d %q %v", s, e, key, err)
	}
	if _, _, _, err := SplitWindowKey([]byte("short")); err == nil {
		t.Fatal("short window key split")
	}
}

func sumAgg(_, value, acc []byte) []byte {
	n := uint64(0)
	if len(acc) == 8 {
		n = binary.LittleEndian.Uint64(acc)
	}
	return binary.LittleEndian.AppendUint64(nil, n+uint64(value[0]))
}

func TestWindowAggregatePerUpdate(t *testing.T) {
	p := WindowAggregate("w", WindowSpec{Size: 10 * time.Second}, EmitPerUpdate, sumAgg)
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{
		in(0, Datum{Key: []byte("k"), Value: []byte{2}, EventTime: us(11 * time.Second)}),
		in(0, Datum{Key: []byte("k"), Value: []byte{3}, EventTime: us(12 * time.Second)}),
		in(0, Datum{Key: []byte("k"), Value: []byte{5}, EventTime: us(21 * time.Second)}),
	})
	if len(out) != 3 {
		t.Fatalf("emissions = %d", len(out))
	}
	// Second emission: window [10,20) accumulated 2+3.
	if got := binary.LittleEndian.Uint64(out[1].d.Value); got != 5 {
		t.Fatalf("window sum = %d, want 5", got)
	}
	s, e, key, err := SplitWindowKey(out[1].d.Key)
	if err != nil || s != us(10*time.Second) || e != us(20*time.Second) || string(key) != "k" {
		t.Fatalf("window key = %d %d %q %v", s, e, key, err)
	}
	// Third emission belongs to the next window with a fresh sum.
	if got := binary.LittleEndian.Uint64(out[2].d.Value); got != 5 {
		t.Fatalf("next window sum = %d, want 5", got)
	}
}

func TestWindowAggregateEmitFinal(t *testing.T) {
	p := WindowAggregate("w", WindowSpec{Size: 10 * time.Second}, EmitFinal, sumAgg)
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{
		in(0, Datum{Key: []byte("k"), Value: []byte{2}, EventTime: us(11 * time.Second)}),
		in(0, Datum{Key: []byte("k"), Value: []byte{3}, EventTime: us(19 * time.Second)}),
		// Watermark passes 20s: window [10,20) fires with 5.
		in(0, Datum{Key: []byte("k"), Value: []byte{7}, EventTime: us(21 * time.Second)}),
	})
	if len(out) != 1 {
		t.Fatalf("emissions = %d, want 1 (%+v)", len(out), out)
	}
	if got := binary.LittleEndian.Uint64(out[0].d.Value); got != 5 {
		t.Fatalf("final sum = %d, want 5", got)
	}
	// Late record for the fired window is dropped.
	ctx := newFakeCtx()
	p2 := WindowAggregate("w", WindowSpec{Size: 10 * time.Second}, EmitFinal, sumAgg)
	if err := p2.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var emissions int
	emit := func(int, Datum) { emissions++ }
	_ = p2.Process(0, Datum{Key: []byte("k"), Value: []byte{1}, EventTime: us(15 * time.Second)}, emit)
	_ = p2.Process(0, Datum{Key: []byte("k"), Value: []byte{1}, EventTime: us(25 * time.Second)}, emit) // fires [10,20)
	before := emissions
	_ = p2.Process(0, Datum{Key: []byte("k"), Value: []byte{9}, EventTime: us(15 * time.Second)}, emit) // late
	if emissions != before {
		t.Fatal("late record re-fired a closed window")
	}
}

func TestWindowAggregateGrace(t *testing.T) {
	p := WindowAggregate("w", WindowSpec{Size: 10 * time.Second, Grace: 5 * time.Second}, EmitFinal, sumAgg)
	ctx := newFakeCtx()
	if err := p.Open(ctx); err != nil {
		t.Fatal(err)
	}
	fired := 0
	emit := func(int, Datum) { fired++ }
	_ = p.Process(0, Datum{Key: []byte("k"), Value: []byte{1}, EventTime: us(15 * time.Second)}, emit)
	// 21s: within grace — [10,20) must NOT fire yet.
	_ = p.Process(0, Datum{Key: []byte("k"), Value: []byte{1}, EventTime: us(21 * time.Second)}, emit)
	if fired != 0 {
		t.Fatal("window fired inside grace period")
	}
	// 26s: grace expired — fires.
	_ = p.Process(0, Datum{Key: []byte("k"), Value: []byte{1}, EventTime: us(26 * time.Second)}, emit)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestStreamStreamJoinWithinWindow(t *testing.T) {
	j := StreamStreamJoin("j", 10*time.Second, func(key, l, r []byte) []byte {
		return []byte(fmt.Sprintf("%s+%s", l, r))
	})
	out := runOp(t, j, []struct {
		port int
		d    Datum
	}{
		in(0, d("k", "L1", us(10*time.Second))),
		in(1, d("k", "R1", us(15*time.Second))), // within window: join
		in(1, d("k", "R2", us(50*time.Second))), // outside window: no join
		in(0, d("other", "L2", us(15*time.Second))),
	})
	if len(out) != 1 || string(out[0].d.Value) != "L1+R1" {
		t.Fatalf("out = %+v", out)
	}
	// Joined event time is the max of the two sides.
	if out[0].d.EventTime != us(15*time.Second) {
		t.Fatalf("join event time = %d", out[0].d.EventTime)
	}
}

func TestStreamStreamJoinBothDirections(t *testing.T) {
	j := StreamStreamJoin("j", 10*time.Second, func(key, l, r []byte) []byte {
		return append(append([]byte{}, l...), r...)
	})
	// Right arrives first; left finds it later.
	out := runOp(t, j, []struct {
		port int
		d    Datum
	}{
		in(1, d("k", "R", us(10*time.Second))),
		in(0, d("k", "L", us(12*time.Second))),
	})
	if len(out) != 1 || string(out[0].d.Value) != "LR" {
		t.Fatalf("out = %+v", out)
	}
}

func TestStreamTableJoin(t *testing.T) {
	j := StreamTableJoin("j", func(key, stream, table []byte) []byte {
		return append(append([]byte{}, stream...), table...)
	})
	out := runOp(t, j, []struct {
		port int
		d    Datum
	}{
		in(0, d("k", "S0", 1)), // no table row yet: dropped (inner join)
		in(1, d("k", "T1", 2)), // table upsert
		in(0, d("k", "S1", 3)), // joins against T1
		in(1, Datum{Key: []byte("k"), Value: nil, EventTime: 4}), // table delete
		in(0, d("k", "S2", 5)), // dropped again
	})
	if len(out) != 1 || string(out[0].d.Value) != "S1T1" {
		t.Fatalf("out = %+v", out)
	}
}

func TestTableTableJoinEmitsOnEitherUpdate(t *testing.T) {
	j := TableTableJoin("j", func(key, l, r []byte) []byte {
		return []byte(string(l) + "|" + string(r))
	})
	out := runOp(t, j, []struct {
		port int
		d    Datum
	}{
		in(0, d("k", "L1", 1)), // right missing: nothing
		in(1, d("k", "R1", 2)), // both present: L1|R1
		in(0, d("k", "L2", 3)), // left update: L2|R1
	})
	if len(out) != 2 || string(out[0].d.Value) != "L1|R1" || string(out[1].d.Value) != "L2|R1" {
		t.Fatalf("out = %+v", out)
	}
}

func TestJoinBadPort(t *testing.T) {
	j := StreamStreamJoin("j", time.Second, func(_, l, r []byte) []byte { return nil })
	ctx := newFakeCtx()
	if err := j.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if err := j.Process(2, d("k", "v", 1), func(int, Datum) {}); err == nil {
		t.Fatal("port 2 accepted")
	}
}
