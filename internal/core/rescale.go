package core

import (
	"context"
	"errors"
	"fmt"

	"impeller/internal/sharedlog"
)

// Rescaler executes an elastic split or merge of a stage's task slots
// on the live log (DESIGN.md §10). Data tags never change — the stage's
// key space stays partitioned into its fixed key groups — so rescaling
// is purely a re-assignment of groups to slots, committed as a new
// assignment epoch in the log's metadata KV. The transition happens at
// a marker boundary: fencing a slot makes its last committed progress
// marker final, and that marker's input frontier is exactly where the
// acquiring slot resumes the migrated groups.
type Rescaler struct {
	M *Manager
	// Hook, when set, is called at named transition points
	// ("assignment-written" after step 1, "fenced" after step 4); a
	// non-nil error aborts the transition at that point. Chaos tests
	// use it to kill the rescaler mid-transition.
	Hook func(point string) error
}

func (r *Rescaler) hook(point string) error {
	if r.Hook == nil {
		return nil
	}
	return r.Hook(point)
}

// Rescale is a convenience wrapper running a hook-less Rescaler.
func (m *Manager) Rescale(ctx context.Context, stage string, newSlots int) (uint64, error) {
	return (&Rescaler{M: m}).Rescale(ctx, stage, newSlots)
}

// Rescale moves stage to newSlots task slots and returns the committed
// assignment epoch.
//
// Protocol, in order:
//
//  1. write epoch-(E+1) assignment keys (slot count + owner map) to the
//     metadata KV; P/<stage>/epoch still reads E,
//  2. fence every changed or retired slot (FenceIncrement) — the marker
//     boundary: no further marker of the old instance can be ordered,
//  3. read each fenced slot's last marker and publish every migrating
//     group's handoff floor (the donor's committed InputEnd + 1) under
//     epoch E+1,
//  4. append a tombstone marker for each retired slot so downstream
//     trackers stop waiting for the fenced instance's covering markers
//     and classify its in-flight batches as uncommitted,
//  5. CAS P/<stage>/epoch E→E+1 — the commit point; a lost CAS means a
//     concurrent rescale won,
//  6. install the assignment in the manager: spawn changed and new
//     slots, retire handles beyond the new slot count.
//
// Dying anywhere before step 5 leaves the job on epoch E: the fenced
// instances exit with ErrZombie and the monitor restarts them under the
// old assignment once the transition flag clears. Handoff and owner
// keys already written for the unreached epoch are inert — recovery
// never scans past the committed epoch, and a later attempt rewrites
// them (stale floors are additionally screened by ownerChangedAt).
func (r *Rescaler) Rescale(ctx context.Context, stageName string, newSlots int) (uint64, error) {
	m := r.M
	if m == nil {
		return 0, errors.New("core: rescaler has no manager")
	}
	if m.env.Protocol != ProtoProgressMarker {
		return 0, errors.New("core: rescaling requires the progress-marker protocol")
	}
	stage := m.stageByName(stageName)
	if stage == nil {
		return 0, fmt.Errorf("core: unknown stage %s", stageName)
	}
	meta := m.env.Log.Meta()
	cur, err := LoadAssignment(meta, stage.Name)
	if err != nil {
		return 0, err
	}
	if cur == nil {
		return 0, fmt.Errorf("core: stage %s has no assignment (manager not started?)", stageName)
	}
	if newSlots < 1 || newSlots > cur.Groups {
		return 0, fmt.Errorf("core: stage %s: %d slots out of range 1..%d key groups", stageName, newSlots, cur.Groups)
	}
	if newSlots == cur.Slots {
		return cur.Epoch, nil
	}

	// Pause the monitor's healing for this stage: a replacement spawned
	// between our fence and the epoch commit could advance a donor's
	// frontier past its published handoff floor.
	m.mu.Lock()
	if m.rescaling[stage.Name] {
		m.mu.Unlock()
		return 0, fmt.Errorf("core: stage %s is already mid-rescale", stageName)
	}
	m.rescaling[stage.Name] = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.rescaling, stage.Name)
		m.mu.Unlock()
	}()

	next := contiguousAssignment(stage.Name, cur.Epoch+1, cur.Groups, newSlots)
	storeEpochKeys(meta, next)
	if err := r.hook("assignment-written"); err != nil {
		return 0, err
	}

	retry := newRetrier(m.env, "", nil)
	for sub := 0; sub < cur.Slots; sub++ {
		oldGroups := cur.GroupsOf(sub)
		retired := sub >= next.Slots
		var newGroups []int
		if !retired {
			newGroups = next.GroupsOf(sub)
		}
		if !retired && equalInts(oldGroups, newGroups) {
			continue // untouched slot keeps running across the epoch
		}
		id := TaskID(fmt.Sprintf("%s/%d", stage.Name, sub))
		inst := m.env.Log.FenceIncrement(InstanceKey(id))
		// The fence precedes this read, so the marker it returns is the
		// slot's final committed frontier. Markers stamped past the
		// committed epoch — tombstones left by an earlier attempt that
		// died mid-transition — are skipped: their empty InputEnd would
		// publish a zero floor and make the acquirer re-commit history.
		last, b, err := lastMarkerAtEpoch(func(from LSN) (*sharedlog.Record, error) {
			var rec *sharedlog.Record
			e := retry.do(ctx, "rescale read marker "+string(id), func() error {
				var re error
				rec, re = m.env.Log.ReadPrev(TaskLogTag(id), from)
				return re
			})
			return rec, e
		}, cur.Epoch)
		if err != nil {
			return 0, err
		}
		floor := LSN(0)
		var seqEnd uint64
		if last != nil {
			mk, err := DecodeMarker(b.Control)
			if err != nil {
				return 0, err
			}
			if mk.InputEnd != NoLSN {
				floor = mk.InputEnd + 1
			}
			seqEnd = mk.SeqEnd
		}
		for _, g := range oldGroups {
			if retired || !containsInt(newGroups, g) {
				setHandoffFloor(meta, stage.Name, next.Epoch, g, floor)
			}
		}
		if retired {
			if err := r.tombstone(ctx, retry, stage, id, oldGroups, inst, next.Epoch, seqEnd); err != nil {
				return 0, err
			}
		}
	}
	if err := r.hook("fenced"); err != nil {
		return 0, err
	}

	if !meta.CompareAndSwap(assignEpochKey(stage.Name), cur.Epoch, next.Epoch) {
		return 0, fmt.Errorf("core: stage %s: epoch %d committed by a concurrent rescale", stageName, next.Epoch)
	}
	m.applyAssignment(stage, next)
	return next.Epoch, nil
}

// tombstone appends a final empty marker for a retired slot, tagged
// with the slot's output substreams, its task log, and (stateful) its
// old group change streams. Downstream trackers bump the producer's
// instance past the fenced one and stop waiting for a covering marker;
// group replays drop the fenced instance's uncommitted pending changes.
// A later scale-up reviving the slot reads the tombstone as its last
// marker: SeqEnd carries the retired instance's output counter forward
// for dedup continuity, while InputEnd/ChangeFirst are empty — every
// group the revived slot owns arrives with a handoff floor.
func (r *Rescaler) tombstone(ctx context.Context, retry *retrier, stage *Stage, id TaskID, oldGroups []int, inst uint64, epoch uint64, seqEnd uint64) error {
	var tags []sharedlog.Tag
	for _, out := range stage.Outputs {
		tags = append(tags, out.Tags()...)
	}
	tags = append(tags, TaskLogTag(id))
	if stage.Stateful {
		for _, g := range oldGroups {
			tags = append(tags, GroupChangeTag(stage.Name, g))
		}
	}
	mk := &ProgressMarker{InputEnd: NoLSN, ChangeFirst: NoLSN, SeqEnd: seqEnd}
	payload := (&Batch{
		Kind:     KindMarker,
		Producer: id,
		Instance: inst,
		Epoch:    epoch,
		Control:  mk.Encode(),
	}).Encode()
	err := retry.do(ctx, "rescale tombstone "+string(id), func() error {
		_, e := r.M.env.Log.ConditionalAppend(tags, payload, InstanceKey(id), inst)
		return e
	})
	if errors.Is(err, sharedlog.ErrCondFailed) {
		return fmt.Errorf("core: rescale of %s lost a fencing race on %s", stage.Name, id)
	}
	return err
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
