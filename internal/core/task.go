package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"impeller/internal/sharedlog"
	"impeller/internal/sim"
	"impeller/internal/wire"
)

// DefaultFlushBytes is the output buffer size before a forced flush
// (paper §5.3: 128 KiB chosen by sensitivity study).
const DefaultFlushBytes = 128 << 10

// DefaultFlushInterval bounds how long an output record may sit in the
// in-memory batch buffer before being appended.
const DefaultFlushInterval = 4 * time.Millisecond

// DefaultReadBatch is how many records a task's input cursor pulls per
// log round trip when Env.ReadBatch is 0 — the read-side counterpart
// of BatchConfig.MaxRecords.
const DefaultReadBatch = 64

// ErrZombie reports that this task instance was fenced: a newer
// instance exists and the shared log rejected its progress marker, so
// the instance must terminate (paper §3.4).
var ErrZombie = errors.New("core: task instance fenced as zombie")

// Task executes one substream of a stage (paper §3.2): it repeatedly
// reads records from its input substreams, processes them, writes
// output records, and periodically records its progress using the
// configured fault-tolerance protocol.
type Task struct {
	ID       TaskID
	Instance uint64

	stage *Stage
	env   *Env
	log   *sharedlog.Log

	proc  Processor
	store *StateStore

	// slot is the task-slot index within the stage (the <sub> of the
	// task id); groups are the key groups the slot owns under the
	// assignment epoch this instance was spawned at (assign.go). With no
	// rescale headroom groups == [slot] and everything degenerates to
	// the one-substream-per-task layout.
	slot        int
	groups      []int       // owned key groups, ascending
	groupIdx    map[int]int // group -> index into groups/changeBufs
	assignEpoch uint64

	// --- input side (task goroutine only) ---
	inputTags []sharedlog.Tag
	tagPort   map[sharedlog.Tag]int
	tagGroup  map[sharedlog.Tag]int
	cursor    LSN
	inCursor  *sharedlog.Cursor // streaming reader over inputTags
	readBatch int               // records per cursor fetch
	queue     []queuedBatch
	tracker   commitTracker
	lastSeq   map[seqKey]uint64
	// groupFloor, set by recovery from the handoff keys, suppresses data
	// records below an acquired group's transfer floor: the donor slot
	// already committed them under the previous assignment epoch.
	groupFloor map[int]LSN
	// skipBelow suppresses re-reads below a producer's checkpointed
	// barrier position after an aligned-checkpoint recovery.
	skipBelow map[TaskID]LSN
	align     *alignState

	// --- output side ---
	outBufs [][]*batchBuf // [port][substream]
	// changeBufs holds buffered state changes per owned group (parallel
	// to groups); curGroup indexes the group whose records are being
	// processed so mutations land in that group's change stream.
	changeBufs [][]Record
	curGroup   int
	outSeq     uint64
	epoch      uint64

	// appender is the task's batched append pipeline; outDests and
	// changeDest are its precomputed destinations — tag sets and
	// completion callbacks built once at construction, so the per-flush
	// path allocates neither key strings nor closures.
	appender    *batcher
	batchCfg    BatchConfig
	outDests    [][]appendDest // [port][substream]
	changeDests []appendDest   // per owned group (parallel to groups)
	markerTags  []sharedlog.Tag

	// progress accounting, updated from batcher callbacks under
	// progressMu (the callbacks run on the batcher goroutine); the task
	// reads it after drain().
	progressMu  sync.Mutex
	outFirst    map[sharedlog.Tag]LSN
	changeFirst LSN

	activity    bool // anything consumed/produced since last commit
	firstCommit bool // force one commit after recovery

	// --- protocol machinery ---
	txn              *TxnCoordinator
	ckpt             *CkptCoordinator
	pendingP2        <-chan struct{} // closed when txn phase 2 completes
	txnTouchedSet    map[sharedlog.Tag]bool
	changedThisEpoch bool
	ckptEpoch        uint64 // latest checkpoint epoch known (marker mode)

	heartbeat func()
	// progress counts heartbeats; with the loop's round counter it forms
	// SchedulerProgress, the monitor's busy-vs-dead signal.
	progress atomic.Uint64
	Metrics  *TaskMetrics

	// --- cooperative engine (Env.Engine == EngineTasklet) ---
	tl       *taskletRun // per-run scheduling state; nil on the goroutine engine
	tlLoop   *taskLoop   // the loop this task is placed on; nil otherwise
	doneRing *spsc[doneEvent]

	// node is the simulated compute node this task runs on; retry
	// wraps log operations with transient-fault retries on its behalf.
	node   string
	retry  *retrier
	runCtx context.Context
}

type queuedBatch struct {
	lsn   LSN
	port  int
	group int           // key group the record arrived on
	tag   sharedlog.Tag // arrival tag (data tag of port×group)
	batch *Batch
}

// seqKey keys duplicate-suppression state by (key group, producer). The
// group matters once a slot owns several groups: the task merges its
// groups' substreams in LSN order, so one producer's seqs interleave
// across groups and a single per-producer floor would drop live
// records. Per-group floors are also what migrates at rescale — a
// group's _seq entries travel in that group's change stream.
type seqKey struct {
	group    int
	producer TaskID
}

// NewTask builds a task instance. The manager supplies the instance
// number it registered in the log's metadata store.
func NewTask(stage *Stage, sub int, instance uint64, env *Env, opts TaskOptions) *Task {
	t := &Task{
		ID:          TaskID(fmt.Sprintf("%s/%d", stage.Name, sub)),
		Instance:    instance,
		slot:        sub,
		groups:      opts.Groups,
		assignEpoch: opts.AssignEpoch,
		stage:       stage,
		env:         env,
		log:         env.Log,
		proc:        stage.NewProcessor(),
		lastSeq:     make(map[seqKey]uint64),
		groupFloor:  make(map[int]LSN),
		skipBelow:   make(map[TaskID]LSN),
		outFirst:    make(map[sharedlog.Tag]LSN),
		changeFirst: NoLSN,
		firstCommit: true,
		txn:         opts.Txn,
		ckpt:        opts.Ckpt,
		heartbeat:   opts.Heartbeat,
		Metrics:     &TaskMetrics{},
	}
	if t.groups == nil {
		// Direct construction (tests): derive the slot's groups from the
		// canonical contiguous epoch-1 assignment.
		kg, slots := stage.KeyGroups, stage.Parallelism
		if slots <= 0 {
			slots = 1
		}
		if kg < slots {
			kg = slots
		}
		t.groups = contiguousAssignment(stage.Name, 1, kg, slots).GroupsOf(sub)
		t.assignEpoch = 1
	}
	t.groupIdx = make(map[int]int, len(t.groups))
	for i, g := range t.groups {
		t.groupIdx[g] = i
	}
	if opts.Metrics != nil {
		t.Metrics = opts.Metrics
	}
	hb := t.heartbeat
	t.heartbeat = func() {
		t.progress.Add(1)
		if hb != nil {
			hb()
		}
	}
	if env.loops != nil {
		t.tlLoop = env.loops.place(string(t.ID))
		t.doneRing = newSPSC[doneEvent](taskletDoneEvents, t.tlLoop.notify)
	}
	t.node = ComputeNode(t.ID)
	t.retry = newRetrier(env, t.node, t.Metrics)
	t.store = NewStateStore(t.onStateChange)

	t.inputTags = make([]sharedlog.Tag, 0, len(stage.Inputs)*len(t.groups))
	t.tagPort = make(map[sharedlog.Tag]int, len(stage.Inputs)*len(t.groups))
	t.tagGroup = make(map[sharedlog.Tag]int, len(stage.Inputs)*len(t.groups))
	for port, in := range stage.Inputs {
		for _, g := range t.groups {
			tag := DataTag(in, g)
			t.inputTags = append(t.inputTags, tag)
			t.tagPort[tag] = port
			t.tagGroup[tag] = g
		}
	}

	t.outBufs = make([][]*batchBuf, len(stage.Outputs))
	t.outDests = make([][]appendDest, len(stage.Outputs))
	for i, out := range stage.Outputs {
		t.outBufs[i] = make([]*batchBuf, out.Partitions)
		t.outDests[i] = make([]appendDest, out.Partitions)
		for p := range t.outBufs[i] {
			t.outBufs[i][p] = &batchBuf{}
		}
		if out.Broadcast {
			// Broadcast batches park in substream 0's buffer and carry
			// every substream tag in one atomic append.
			t.outDests[i][0] = t.newOutDest(out.Tags())
		} else {
			for p := range t.outDests[i] {
				t.outDests[i][p] = t.newOutDest([]sharedlog.Tag{DataTag(out.Stream, p)})
			}
		}
	}
	// Change destinations are per owned key group under the marker and
	// unsafe protocols (GroupChangeTag: the group's state migrates with
	// it at rescale); the Kafka-txn baseline keeps its per-task change
	// log, whose epoch-gated replay is inherently per-task.
	t.changeBufs = make([][]Record, len(t.groups))
	t.changeDests = make([]appendDest, len(t.groups))
	for i, g := range t.groups {
		if env.Protocol == ProtoKafkaTxn {
			t.changeDests[i] = t.newChangeDest(ChangeLogTag(t.ID))
		} else {
			t.changeDests[i] = t.newChangeDest(GroupChangeTag(stage.Name, g))
		}
	}

	// Marker tags — every downstream substream, the task log, and (for
	// stateful tasks) the owned groups' change logs (paper Figure 6) —
	// never vary between commits of one instance; build them once.
	for _, out := range stage.Outputs {
		t.markerTags = append(t.markerTags, out.Tags()...)
	}
	t.markerTags = append(t.markerTags, TaskLogTag(t.ID))
	if stage.Stateful {
		for _, g := range t.groups {
			t.markerTags = append(t.markerTags, GroupChangeTag(stage.Name, g))
		}
	}

	t.batchCfg = env.Batch
	if opts.Batch != (BatchConfig{}) {
		t.batchCfg = opts.Batch
	}
	t.batchCfg = t.batchCfg.withDefaults()
	t.readBatch = env.ReadBatch
	if t.readBatch <= 0 {
		t.readBatch = DefaultReadBatch
	}

	switch env.Protocol {
	case ProtoProgressMarker:
		// A task may read several input substreams; committed ranges
		// are resolved against the first input tag for single-input
		// stages and per-tag for joins. One tracker per tag would be
		// fully general; markers carry OutFirst per tag, and a task's
		// tags are disjoint, so a combined tracker keyed by tag works:
		// we use a multiTagTracker wrapping one markerTracker per tag.
		t.tracker = newMultiTagMarkerTracker(t.inputTags)
	case ProtoKafkaTxn:
		t.tracker = newTxnTracker()
	default:
		t.tracker = openTracker{}
	}
	if env.Protocol == ProtoAlignedCheckpoint {
		t.align = newAlignState(stage)
	}
	return t
}

// TaskOptions carries optional manager-provided wiring.
type TaskOptions struct {
	Txn       *TxnCoordinator
	Ckpt      *CkptCoordinator
	Heartbeat func()
	Metrics   *TaskMetrics
	// Batch, when non-zero, overrides Env.Batch for this task.
	Batch BatchConfig
	// Groups are the key groups this slot owns under AssignEpoch (the
	// manager reads them from the assignment plane). Nil derives the
	// contiguous epoch-1 assignment from the stage — the pre-rescaling
	// identity layout when KeyGroups == Parallelism.
	Groups      []int
	AssignEpoch uint64
}

// appendDest is a precomputed append destination: the tag set for one
// output substream (or the broadcast set, or the change log) plus the
// completion callback that folds the assigned LSN into the task's
// progress accounting. Computed once at construction — the old path
// formatted a map key string and allocated a fresh closure on every
// flush.
type appendDest struct {
	tags   []sharedlog.Tag
	onDone func(lsn LSN, err error)
}

func (t *Task) newOutDest(tags []sharedlog.Tag) appendDest {
	return appendDest{tags: tags, onDone: func(lsn LSN, err error) {
		if err != nil {
			return
		}
		// On the cooperative engine the completion posts to the owning
		// loop's ring and is folded there; the direct fold below is the
		// goroutine-engine path and the ring-overflow fallback.
		if r := t.doneRing; r != nil && r.tryPush(doneEvent{tags: tags, lsn: lsn}) {
			return
		}
		t.progressMu.Lock()
		for _, tag := range tags {
			if cur, ok := t.outFirst[tag]; !ok || lsn < cur {
				t.outFirst[tag] = lsn
			}
		}
		t.progressMu.Unlock()
	}}
}

func (t *Task) newChangeDest(tag sharedlog.Tag) appendDest {
	return appendDest{tags: []sharedlog.Tag{tag}, onDone: func(lsn LSN, err error) {
		if err != nil {
			return
		}
		if r := t.doneRing; r != nil && r.tryPush(doneEvent{change: true, lsn: lsn}) {
			return
		}
		t.progressMu.Lock()
		if t.changeFirst == NoLSN || lsn < t.changeFirst {
			t.changeFirst = lsn
		}
		t.progressMu.Unlock()
	}}
}

// multiTagMarkerTracker dispatches classification to a per-input-tag
// markerTracker. A data batch belongs to exactly one of the task's
// input tags; a marker may address several of them.
type multiTagMarkerTracker struct {
	byTag map[sharedlog.Tag]*markerTracker
	tags  []sharedlog.Tag
}

func newMultiTagMarkerTracker(tags []sharedlog.Tag) *multiTagMarkerTracker {
	m := &multiTagMarkerTracker{byTag: make(map[sharedlog.Tag]*markerTracker, len(tags)), tags: tags}
	for _, tag := range tags {
		m.byTag[tag] = newMarkerTracker(tag)
	}
	return m
}

func (m *multiTagMarkerTracker) observeControl(b *Batch, lsn LSN) error {
	for _, t := range m.byTag {
		if err := t.observeControl(b, lsn); err != nil {
			return err
		}
	}
	return nil
}

// classifyTagged classifies a batch that arrived via tag.
func (m *multiTagMarkerTracker) classifyTagged(tag sharedlog.Tag, b *Batch, lsn LSN) classification {
	t := m.byTag[tag]
	if t == nil {
		return classUnknown
	}
	return t.classify(b, lsn)
}

func (m *multiTagMarkerTracker) observe(b *Batch, lsn LSN) error { return m.observeControl(b, lsn) }

// observeControl/classify satisfy commitTracker; classify uses the
// first tag (single-input fast path). The task runtime calls
// classifyTagged directly when it knows the arrival tag.
func (m *multiTagMarkerTracker) classify(b *Batch, lsn LSN) classification {
	return m.classifyTagged(m.tags[0], b, lsn)
}

// batchBuf accumulates records destined for one output substream.
type batchBuf struct {
	records []Record
	bytes   int
}

func (b *batchBuf) add(r Record) {
	b.records = append(b.records, r)
	b.bytes += 16 + len(r.Key) + len(r.Value)
}

func (b *batchBuf) take() []Record {
	out := b.records
	b.records = nil
	b.bytes = 0
	return out
}

// recycle hands a taken records slice back for reuse after its contents
// have been encoded. References are dropped first so the backing array
// does not pin application payloads.
func (b *batchBuf) recycle(records []Record) {
	for i := range records {
		records[i] = Record{}
	}
	if b.records == nil {
		b.records = records[:0]
	}
}

// --- ProcContext ---

// Store implements ProcContext.
func (t *Task) Store() *StateStore { return t.store }

// TaskID implements ProcContext.
func (t *Task) TaskID() TaskID { return t.ID }

// Substream implements ProcContext: the task-slot index.
func (t *Task) Substream() int { return t.slot }

// Charge implements ProcContext: processors doing bulk internal work in
// one Process call (a join scanning its buffers, a window firing many
// panes) report it so the cooperative engine accounts it against the
// step budget. No-op on the goroutine engine.
func (t *Task) Charge(n int) {
	if t.tl != nil {
		t.tl.budget -= n
	}
}

// onStateChange captures a state mutation into the change-log buffer.
// Only stateful stages under change-log protocols persist changes;
// aligned checkpoints persist state via snapshots instead.
func (t *Task) onStateChange(key string, value []byte, deleted bool) {
	if !t.stage.Stateful {
		return
	}
	if t.env.Protocol == ProtoAlignedCheckpoint {
		return
	}
	t.outSeq++
	t.changeBufs[t.curGroup] = append(t.changeBufs[t.curGroup], Record{
		Seq:   t.outSeq,
		Key:   []byte(key),
		Value: EncodeChange(value, deleted),
	})
	t.Metrics.ChangeRecords.Add(1)
	t.activity = true
	t.changedThisEpoch = true
}

// Run recovers the task's position and state, then processes input
// until ctx is cancelled or the instance is fenced. It always returns a
// non-nil error: ctx.Err() on clean shutdown, ErrZombie when fenced.
func (t *Task) Run(ctx context.Context) error {
	if t.tlLoop != nil {
		return t.runTasklet(ctx)
	}
	t.runCtx = ctx
	defer t.closeAppenders()
	recoverStart := time.Now()
	if err := t.recover(ctx); err != nil {
		return fmt.Errorf("task %s: recover: %w", t.ID, err)
	}
	t.Metrics.RecoveryNanos.Store(time.Since(recoverStart).Nanoseconds())
	if err := t.proc.Open(t); err != nil {
		return fmt.Errorf("task %s: open: %w", t.ID, err)
	}

	// The input hot path is a streaming cursor over every input tag:
	// one log round trip serves up to readBatch records (plus bounded
	// readahead) where the old loop paid one ReadNextAnyBlocking per
	// record.
	t.inCursor = t.log.OpenCursorOpts(t.inputTags, t.cursor, t.inputCursorOpts())

	clock := t.env.Clock
	nextFlush := clock.Now().Add(DefaultFlushInterval)
	nextCommit := clock.Now().Add(t.env.CommitInterval)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if t.env.Faults.Crashed(t.node) {
			// This instance's compute node crashed: everything in
			// flight is lost. Die; the manager restarts us with backoff
			// (replacements keep failing until the node recovers).
			return fmt.Errorf("task %s: %w", t.ID, sim.ErrCrashed)
		}
		t.heartbeat()

		now := clock.Now()
		deadline := nextFlush
		if nextCommit.Before(deadline) {
			deadline = nextCommit
		}
		if wait := deadline.Sub(now); wait > 0 {
			rctx, cancel := context.WithTimeout(ctx, wait)
			recs, err := t.inCursor.NextBatchBlocking(rctx, t.readBatch)
			cancel()
			switch {
			case err == nil && len(recs) > 0:
				if err := t.ingestBatch(recs); err != nil {
					return fmt.Errorf("task %s: %w", t.ID, err)
				}
			case errors.Is(err, context.DeadlineExceeded):
				// fall through to flush/commit
			case errors.Is(err, context.Canceled):
				return ctx.Err()
			case errors.Is(err, sharedlog.ErrCursorInvalidated):
				// Our resume point was garbage-collected along with
				// everything we had consumed; skip to the horizon.
				t.cursor = t.log.TrimHorizon()
				t.inCursor.Seek(t.cursor)
			case sharedlog.IsRetryable(err):
				// Transient: a storage shard is down or we are cut off
				// from the log. Back off briefly and re-poll; the
				// deadline checks below still run, so commits are not
				// starved while the fault lasts. The cursor stays valid
				// across transient errors.
				t.Metrics.Retries.Add(1)
				if !t.retry.sleep(ctx, t.retry.backoff(0)) {
					return ctx.Err()
				}
			case err != nil:
				return fmt.Errorf("task %s: read: %w", t.ID, err)
			}
		}

		now = clock.Now()
		if !now.Before(nextFlush) {
			t.flushOutputs()
			nextFlush = now.Add(DefaultFlushInterval)
		}
		if !now.Before(nextCommit) {
			if err := t.commit(ctx); err != nil {
				return fmt.Errorf("task %s: commit: %w", t.ID, err)
			}
			nextCommit = now.Add(t.env.CommitInterval)
		}
	}
}

// inputCursorOpts builds the input cursor's options from the task's
// read-batch setting: readBatch 1 is the per-record ablation, so
// readahead is disabled to keep it a faithful point-read baseline.
func (t *Task) inputCursorOpts() sharedlog.CursorOptions {
	opts := sharedlog.CursorOptions{Stats: &t.Metrics.Cursor}
	if t.readBatch == 1 {
		opts.Prefetch = -1
	} else {
		opts.Prefetch = 3 * t.readBatch
	}
	return opts
}

// ingestBatch handles one cursor read batch, in LSN order: control
// records update the tracker (or barrier alignment), data records enter
// the queue, and the queue drains as far as classification allows
// (paper §3.3.3).
//
// Batching does not move the marker boundary: classification state only
// changes when a control record is observed, so draining once per run
// of data records is equivalent to the old drain-after-every-record —
// and each control record still drains the pending run first, then is
// processed at its exact LSN position. The impellerdebug marker-order
// asserts hold unchanged.
func (t *Task) ingestBatch(recs []*sharedlog.Record) error {
	pendingDrain := false
	for _, rec := range recs {
		t.cursor = rec.LSN + 1
		b, err := DecodeBatch(rec.Payload)
		if err != nil {
			return err
		}
		port, group, tag := t.routeFor(rec)

		if b.Kind.isControl() {
			if pendingDrain {
				if err := t.drainQueue(); err != nil {
					return err
				}
				pendingDrain = false
			}
			if b.Kind == KindBarrier && t.align != nil {
				complete, err := t.onBarrier(b, rec.LSN)
				if err != nil {
					return err
				}
				if complete {
					if err := t.completeAlignment(); err != nil {
						return err
					}
				}
				continue
			}
			if err := t.observeControl(b, rec.LSN); err != nil {
				return err
			}
			if err := t.drainQueue(); err != nil {
				return err
			}
			continue
		}

		switch b.Kind {
		case KindSource, KindData:
			if fl, ok := t.groupFloor[group]; ok && rec.LSN < fl {
				// Below the group's handoff floor: the donor slot
				// committed this record before the group migrated here.
				t.Metrics.DroppedBelowFloor.Add(uint64(len(b.Records)))
				continue
			}
			if t.align != nil && t.align.blocked(b.Producer) {
				// Aligned checkpoint in progress: post-barrier records
				// from producers whose barrier already arrived wait out
				// the alignment (Flink's channel blocking).
				t.align.buffer(queuedBatch{lsn: rec.LSN, port: port, group: group, tag: tag, batch: b})
				continue
			}
			t.queue = append(t.queue, queuedBatch{lsn: rec.LSN, port: port, group: group, tag: tag, batch: b})
			t.Metrics.Buffered.Add(uint64(len(b.Records)))
			pendingDrain = true
		default:
			// Change-log, offset, and txn-log records carry our own tags
			// only; another task's never reach us. Ignore defensively.
		}
	}
	if pendingDrain {
		return t.drainQueue()
	}
	return nil
}

func (t *Task) observeControl(b *Batch, lsn LSN) error {
	if mt, ok := t.tracker.(*multiTagMarkerTracker); ok {
		return mt.observe(b, lsn)
	}
	return t.tracker.observeControl(b, lsn)
}

func (t *Task) classify(q queuedBatch) classification {
	if mt, ok := t.tracker.(*multiTagMarkerTracker); ok {
		return mt.classifyTagged(q.tag, q.batch, q.lsn)
	}
	return t.tracker.classify(q.batch, q.lsn)
}

// routeFor maps a log record to the input port, key group, and tag it
// arrived on. Group and tag are meaningful for data records only —
// control records may carry several of our tags.
func (t *Task) routeFor(rec *sharedlog.Record) (port, group int, tag sharedlog.Tag) {
	for _, tg := range rec.Tags {
		if p, ok := t.tagPort[tg]; ok {
			return p, t.tagGroup[tg], tg
		}
	}
	if len(t.inputTags) > 0 {
		return 0, t.tagGroup[t.inputTags[0]], t.inputTags[0]
	}
	return 0, 0, ""
}

// drainQueue repeatedly examines the head of the queue: committed
// batches are processed, uncommitted ones discarded, and the first
// unknown batch stops the drain (paper §3.3.3, Figure 5).
func (t *Task) drainQueue() error {
	for len(t.queue) > 0 {
		head := t.queue[0]
		switch t.classify(head) {
		case classCommitted:
			t.queue = t.queue[1:]
			if err := t.processBatch(head); err != nil {
				return err
			}
		case classUncommitted:
			t.queue = t.queue[1:]
			t.Metrics.DroppedUncommitted.Add(uint64(len(head.batch.Records)))
			t.activity = true
		case classUnknown:
			return nil
		}
	}
	return nil
}

// inputEnd is the highest LSN such that every input record at or below
// it has been consumed (processed or discarded); progress markers
// record it and recovery resumes just past it.
func (t *Task) inputEnd() LSN {
	if len(t.queue) > 0 {
		return t.queue[0].lsn - 1
	}
	if t.align != nil {
		if l, ok := t.align.earliestBuffered(); ok {
			return l - 1
		}
	}
	if t.cursor == 0 {
		return NoLSN
	}
	return t.cursor - 1
}

// processBatch runs the committed batch's records through duplicate
// suppression and the processor.
func (t *Task) processBatch(q queuedBatch) error {
	// Long drains (e.g. a join scanning large buffers) must not look
	// like a dead task to the manager.
	t.heartbeat()
	t.Charge(len(q.batch.Records))
	b := q.batch
	if skip, ok := t.skipBelow[b.Producer]; ok && q.lsn <= skip {
		// Already reflected in the restored aligned checkpoint.
		t.Metrics.DroppedDuplicate.Add(uint64(len(b.Records)))
		return nil
	}
	// Attribute state mutations (and the _seq mirror below) to the
	// arrival group's change stream.
	t.curGroup = t.groupIdx[q.group]
	sk := seqKey{group: q.group, producer: b.Producer}
	for i := range b.Records {
		r := &b.Records[i]
		if r.Seq <= t.lastSeq[sk] {
			t.Metrics.DroppedDuplicate.Add(1)
			continue
		}
		t.lastSeq[sk] = r.Seq
		d := Datum{Key: r.Key, Value: r.Value, EventTime: r.EventTime}
		if err := t.invokeProcessor(q.port, d); err != nil {
			return err
		}
		t.Metrics.Processed.Add(1)
	}
	t.persistSeq(sk)
	t.activity = true
	return nil
}

func (t *Task) invokeProcessor(port int, d Datum) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = RecoverChainError(r)
		}
	}()
	return t.proc.Process(port, d, t.emit)
}

// persistSeq mirrors duplicate-suppression state into the state store
// for stateful tasks so it survives recovery with the change log (or
// the aligned snapshot). Stateless marker-mode tasks keep it in memory
// only: their gating already excludes cross-instance duplicates.
func (t *Task) persistSeq(sk seqKey) {
	if !t.stage.Stateful && t.env.Protocol != ProtoAlignedCheckpoint {
		return
	}
	var buf [8]byte
	putUint64(buf[:], t.lastSeq[sk])
	t.store.Put(seqStoreKey(sk), buf[:])
}

// seqStoreKey is the state-store key mirroring one (group, producer)
// duplicate-suppression floor; the group prefix keeps the entry in its
// group's change stream so it migrates with the group at rescale.
func seqStoreKey(sk seqKey) string {
	return fmt.Sprintf("_seq/%d/%s", sk.group, sk.producer)
}

// emit buffers one output record for the given port, flushing if the
// buffer reaches DefaultFlushBytes.
func (t *Task) emit(out int, d Datum) {
	spec := t.stage.Outputs[out]
	t.outSeq++
	r := Record{Seq: t.outSeq, EventTime: d.EventTime, Key: d.Key, Value: d.Value}
	t.Metrics.Emitted.Add(1)
	t.activity = true
	if spec.Broadcast {
		// One multi-tag append reaches every substream atomically; park
		// it in substream 0's buffer and tag at flush time.
		buf := t.outBufs[out][0]
		buf.add(r)
		if buf.bytes >= DefaultFlushBytes {
			t.flushBuf(out, 0)
		}
		return
	}
	sub := spec.substreamFor(d.Key)
	buf := t.outBufs[out][sub]
	buf.add(r)
	if buf.bytes >= DefaultFlushBytes {
		t.flushBuf(out, sub)
	}
}

// flushOutputs flushes every non-empty output and change-log buffer,
// then seals the accumulating append batch — so one flush tick becomes
// one group commit covering the tick's data and change-log appends
// together instead of one log append per destination.
func (t *Task) flushOutputs() {
	for out := range t.outBufs {
		for sub := range t.outBufs[out] {
			if len(t.outBufs[out][sub].records) > 0 {
				t.flushBuf(out, sub)
			}
		}
	}
	t.flushChanges()
	if t.appender != nil {
		t.appender.flush()
	}
}

// flushBuf submits one output substream's buffered records as a batch.
func (t *Task) flushBuf(out, sub int) {
	buf := t.outBufs[out][sub]
	records := buf.take()
	if len(records) == 0 {
		return
	}
	batch := Batch{
		Kind:     KindData,
		Producer: t.ID,
		Instance: t.Instance,
		Epoch:    t.dataEpoch(),
		Records:  records,
	}
	dest := &t.outDests[out][sub]
	if t.env.Protocol == ProtoKafkaTxn {
		t.txnRegister(dest.tags)
	}
	eb := wire.GetBuf()
	eb.B = batch.AppendTo(eb.B)
	t.submitAppend(dest.tags, eb.B, eb, dest.onDone)
	buf.recycle(records)
}

// flushChanges submits buffered change-log records, one batch per owned
// group with pending changes.
func (t *Task) flushChanges() {
	for i := range t.changeBufs {
		records := t.changeBufs[i]
		if len(records) == 0 {
			continue
		}
		batch := Batch{
			Kind:     KindChange,
			Producer: t.ID,
			Instance: t.Instance,
			Epoch:    t.dataEpoch(),
			Records:  records,
		}
		eb := wire.GetBuf()
		eb.B = batch.AppendTo(eb.B)
		dest := &t.changeDests[i]
		t.submitAppend(dest.tags, eb.B, eb, dest.onDone)
		for j := range records {
			records[j] = Record{}
		}
		t.changeBufs[i] = records[:0]
	}
}

// dataEpoch is the commit epoch stamped on data batches: the open
// transaction under the Kafka protocol, zero otherwise.
func (t *Task) dataEpoch() uint64 {
	if t.env.Protocol == ProtoKafkaTxn {
		return t.epoch
	}
	return 0
}

// submitAppend hands one encoded payload to the task's batcher. eb, if
// non-nil, is the pooled buffer backing payload, recycled once the
// append completes.
func (t *Task) submitAppend(tags []sharedlog.Tag, payload []byte, eb *wire.Buf, onDone func(LSN, error)) {
	if t.appender == nil {
		ctx := t.runCtx
		if ctx == nil {
			ctx = context.Background()
		}
		var notify func()
		if t.tlLoop != nil {
			// Wake the owning loop once per completed append batch so the
			// done ring is drained promptly.
			loop := t.tlLoop
			notify = func() { poke(loop.notify) }
		}
		t.appender = newBatcher(t.log, t.batchCfg, t.retry, ctx, t.env.Clock, t.Metrics, notify)
	}
	t.Metrics.Appends.Add(1)
	t.appender.submit(tags, payload, eb, onDone)
}

// drainAppends waits for all in-flight appends; a commit record must
// follow everything it covers in the log's total order.
func (t *Task) drainAppends() error {
	if t.appender == nil {
		return nil
	}
	err := t.appender.drain()
	// On the cooperative engine completions sit in the done ring; fold
	// them before the caller builds a marker from outFirst/changeFirst.
	// The caller owns the task exclusively here (blocker during commit),
	// so this cannot race the loop's per-step drain.
	t.drainCompletions()
	return err
}

func (t *Task) closeAppenders() {
	if t.appender != nil {
		t.appender.close()
	}
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
