package core

import (
	"context"
	"errors"
	"fmt"

	"impeller/internal/sharedlog"
)

// probe invokes the test-only recovery probe, if installed, at a named
// point inside recovery — chaos tests use it to crash a task while it
// is mid-recovery deterministically.
func (t *Task) probe(point string) {
	if t.env.recoveryProbe != nil {
		t.env.recoveryProbe(t.ID, point)
	}
}

// readPrevRetry and readNextRetry wrap recovery's log reads in the
// transient-fault retry loop: a recovering task whose shard is briefly
// down waits it out instead of dying and re-entering recovery.
func (t *Task) readPrevRetry(ctx context.Context, tag sharedlog.Tag, from LSN) (*sharedlog.Record, error) {
	var rec *sharedlog.Record
	err := t.retry.do(ctx, "read-prev "+string(tag), func() error {
		var e error
		rec, e = t.log.ReadPrev(tag, from)
		return e
	})
	return rec, err
}

// readNextRetry is the retry wrapper around recovery's forward reads.
// Those are cursor batch fetches now — one round trip per batch instead
// of per record — but the retry semantics are unchanged: a recovering
// task whose shard is briefly down waits it out instead of dying and
// re-entering recovery. Safe to call from the parallel restore
// goroutines (each owns its cursor; the retrier is concurrency-safe).
func (t *Task) readNextRetry(ctx context.Context, label string, cur *sharedlog.Cursor, max int) ([]*sharedlog.Record, error) {
	var recs []*sharedlog.Record
	err := t.retry.do(ctx, label, func() error {
		var e error
		recs, e = cur.NextBatch(max)
		return e
	})
	return recs, err
}

// recoveryCursorOpts routes a replay cursor's counters into the
// recovery-specific metrics sink (so the recovery experiment can count
// replay round trips without input-loop noise), mirroring the input
// cursor's prefetch policy.
func (t *Task) recoveryCursorOpts() sharedlog.CursorOptions {
	opts := sharedlog.CursorOptions{Stats: &t.Metrics.RecoveryCursor}
	if t.readBatch == 1 {
		opts.Prefetch = -1
	} else {
		opts.Prefetch = 3 * t.readBatch
	}
	return opts
}

// runParallel runs recovery's independent restore substreams in
// parallel goroutines and joins them before the task goes live. The
// first error cancels the rest and is returned.
func runParallel(ctx context.Context, fns ...func(context.Context) error) error {
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errc := make(chan error, len(fns))
	for _, fn := range fns {
		go func(fn func(context.Context) error) { errc <- fn(gctx) }(fn)
	}
	var first error
	for range fns {
		if err := <-errc; err != nil && first == nil {
			first = err
			cancel()
		}
	}
	return first
}

// recover restores a restarted task instance to a consistent point
// before it processes new input (paper §3.3.2 for stateless stages,
// §3.3.4 for stateful ones; §3.6/§5.1 for the baseline protocols).
func (t *Task) recover(ctx context.Context) error {
	switch t.env.Protocol {
	case ProtoProgressMarker:
		return t.recoverMarker(ctx)
	case ProtoKafkaTxn:
		return t.recoverTxn(ctx)
	case ProtoAlignedCheckpoint:
		return t.recoverAligned(ctx)
	case ProtoUnsafe:
		return t.recoverUnsafe(ctx)
	default:
		return fmt.Errorf("core: unknown protocol %v", t.env.Protocol)
	}
}

// recoverMarker implements Impeller recovery: find the most recent
// progress marker by reading the tail of the task-log substream, resume
// input just past its InputEnd, restore the sequence counter, and for
// stateful tasks restore state from the latest checkpoint plus a replay
// of the remaining committed change-log ranges.
func (t *Task) recoverMarker(ctx context.Context) error {
	last, err := t.readPrevRetry(ctx, TaskLogTag(t.ID), sharedlog.MaxLSN)
	if err != nil {
		return err
	}
	t.probe("marker")
	if last == nil {
		return nil // fresh task: cursor 0, empty state
	}
	b, err := DecodeBatch(last.Payload)
	if err != nil {
		return err
	}
	m, err := DecodeMarker(b.Control)
	if err != nil {
		return err
	}
	if m.InputEnd != NoLSN {
		t.cursor = m.InputEnd + 1
	}
	t.outSeq = m.SeqEnd
	t.ckptEpoch = m.CheckpointEpoch

	if !t.stage.Stateful {
		return nil
	}

	// State restore: load the asynchronous checkpoint if one exists,
	// then replay committed change-log ranges marker by marker from the
	// checkpoint's coverage point to the most recent marker (paper §3.3.4,
	// §3.5 "Accelerating state recovery").
	var replayFrom LSN // read markers strictly after this LSN
	if blob, ok := t.env.Checkpoints.Get(MarkerCkptKey(t.ID)); ok {
		switch ck, err := decodeMarkerCheckpoint(blob); {
		case err != nil:
			// Corrupt checkpoint bytes: fall back to a full change-log
			// replay instead of failing recovery permanently — the
			// change log is the durable source of truth, the snapshot
			// only an accelerator (paper §3.5).
			t.Metrics.CheckpointDecodeFailures.Add(1)
		case ck.CoveredLSN <= last.LSN:
			if err := t.store.RestoreSnapshot(ck.State); err != nil {
				// Same fallback: RestoreSnapshot is atomic, so the
				// store is still empty and a full replay is correct.
				t.Metrics.CheckpointDecodeFailures.Add(1)
			} else {
				replayFrom = ck.CoveredLSN + 1
				t.Metrics.RecoveredFromCheckpoint.Store(1)
			}
		}
	}
	t.probe("replay")
	if err := t.replayChangeLog(ctx, replayFrom, last.LSN); err != nil {
		return err
	}
	t.restoreSeqFromStore()
	return nil
}

// replayChangeLog restores state from the change log: every committed
// change-log range [ChangeFirst, markerLSN] of the markers in (from,
// lastMarker] is applied; uncommitted change records (from failed
// instances) fall outside every range and are skipped (paper §3.3.4).
//
// The two substreams involved — the task-log markers and the change
// log — are independent tags, so they are streamed by two cursors in
// parallel goroutines (one batched round trip per readBatch records
// instead of one per record) and joined before anything is applied.
// The old walk paid one read per marker plus one per change record,
// strictly sequentially; this is the linear-in-round-trips recovery
// cost the -exp recovery experiment measures.
//
// Collect-then-apply is equivalent to the old interleaved walk: the
// drain-before-marker invariant orders marker N's append after every
// change it covers, and after marker N-1, so ranges are disjoint and
// ascending — applying all committed changes afterwards in LSN order
// yields the same state.
func (t *Task) replayChangeLog(ctx context.Context, from, lastMarker LSN) error {
	type markerRange struct{ first, last LSN }
	type changeRec struct {
		lsn LSN
		b   *Batch
	}
	var ranges []markerRange
	var changes []changeRec

	err := runParallel(ctx,
		func(ctx context.Context) error {
			cur := t.log.OpenCursorOpts([]sharedlog.Tag{TaskLogTag(t.ID)}, from, t.recoveryCursorOpts())
			for {
				if err := ctx.Err(); err != nil {
					return err
				}
				t.heartbeat() // recovery can be long; stay visibly alive
				recs, err := t.readNextRetry(ctx, "replay-markers", cur, t.readBatch)
				if err != nil {
					return err
				}
				if len(recs) == 0 {
					return nil
				}
				for _, rec := range recs {
					if rec.LSN > lastMarker {
						return nil
					}
					mb, err := DecodeBatch(rec.Payload)
					if err != nil {
						return err
					}
					if mb.Kind != KindMarker {
						continue
					}
					m, err := DecodeMarker(mb.Control)
					if err != nil {
						return err
					}
					if m.ChangeFirst == NoLSN {
						continue
					}
					ranges = append(ranges, markerRange{first: m.ChangeFirst, last: rec.LSN})
				}
			}
		},
		func(ctx context.Context) error {
			cur := t.log.OpenCursorOpts([]sharedlog.Tag{ChangeLogTag(t.ID)}, from, t.recoveryCursorOpts())
			for {
				if err := ctx.Err(); err != nil {
					return err
				}
				t.heartbeat()
				recs, err := t.readNextRetry(ctx, "replay-changes", cur, t.readBatch)
				if err != nil {
					return err
				}
				if len(recs) == 0 {
					return nil
				}
				for _, rec := range recs {
					if rec.LSN > lastMarker {
						return nil
					}
					cb, err := DecodeBatch(rec.Payload)
					if err != nil {
						return err
					}
					if cb.Kind != KindChange {
						continue
					}
					changes = append(changes, changeRec{lsn: rec.LSN, b: cb})
				}
			}
		},
	)
	if err != nil {
		return err
	}

	// Apply the changes covered by a committed range, in LSN order.
	// Ranges are disjoint and ascending (see above), so one forward
	// pass with a range pointer matches each change record against the
	// only range that can contain it.
	ri := 0
	for _, c := range changes {
		for ri < len(ranges) && ranges[ri].last < c.lsn {
			ri++
		}
		if ri == len(ranges) {
			break
		}
		if c.lsn >= ranges[ri].first && c.lsn <= ranges[ri].last {
			t.applyChangeBatch(c.b)
		}
	}
	return nil
}

func (t *Task) applyChangeBatch(cb *Batch) {
	for i := range cb.Records {
		r := &cb.Records[i]
		value, deleted, err := DecodeChange(r.Value)
		if err != nil {
			continue // tolerate unknown change encodings
		}
		t.store.ApplyChange(string(r.Key), value, deleted)
		t.Metrics.RecoveredChanges.Add(1)
	}
}

// restoreSeqFromStore reloads duplicate-suppression state mirrored into
// the state store by persistSeq.
func (t *Task) restoreSeqFromStore() {
	t.store.Range("_seq/", func(k string, v []byte) bool {
		t.lastSeq[TaskID(k[len("_seq/"):])] = getUint64(v)
		return true
	})
}

// recoverTxn implements the Kafka Streams baseline's recovery: the last
// committed offsets record gives the resume cursor and sequence
// counter; stateful tasks replay change-log batches of committed epochs
// only, resolving them with the commit/abort markers the coordinator
// appended to the change-log substream.
func (t *Task) recoverTxn(ctx context.Context) error {
	// The offsets tail and the change-log replay touch independent
	// substreams (and the replay's epoch gating is resolved entirely by
	// the commit/abort markers inside the change substream itself), so
	// the two restore phases run in parallel goroutines joined before
	// the task goes live.
	var off *sharedlog.Record
	err := runParallel(ctx,
		func(ctx context.Context) error {
			var e error
			off, e = t.readPrevRetry(ctx, OffsetStreamTag(t.ID), sharedlog.MaxLSN)
			return e
		},
		func(ctx context.Context) error {
			if !t.stage.Stateful {
				return nil
			}
			// Replay the change log with epoch-level gating: change
			// batches buffer per (instance, epoch) and apply when the
			// epoch's commit marker arrives; batches whose epoch never
			// commits are dropped.
			type epochKey struct {
				instance, epoch uint64
			}
			pending := make(map[epochKey][]*Batch)
			cur := t.log.OpenCursorOpts([]sharedlog.Tag{ChangeLogTag(t.ID)}, 0, t.recoveryCursorOpts())
			for {
				if err := ctx.Err(); err != nil {
					return err
				}
				t.heartbeat()
				recs, err := t.readNextRetry(ctx, "replay-txn", cur, t.readBatch)
				if err != nil {
					return err
				}
				if len(recs) == 0 {
					return nil
				}
				for _, rec := range recs {
					cb, err := DecodeBatch(rec.Payload)
					if err != nil {
						return err
					}
					switch cb.Kind {
					case KindChange:
						k := epochKey{cb.Instance, cb.Epoch}
						pending[k] = append(pending[k], cb)
					case KindTxnCommit:
						k := epochKey{cb.Instance, cb.Epoch}
						for _, batch := range pending[k] {
							t.applyChangeBatch(batch)
						}
						delete(pending, k)
					case KindTxnAbort:
						delete(pending, epochKey{cb.Instance, cb.Epoch})
					}
				}
			}
		},
	)
	if err != nil {
		return err
	}
	if off != nil {
		b, err := DecodeBatch(off.Payload)
		if err != nil {
			return err
		}
		m, err := DecodeMarker(b.Control)
		if err != nil {
			return err
		}
		if m.InputEnd != NoLSN {
			t.cursor = m.InputEnd + 1
		}
		t.outSeq = m.SeqEnd
		t.epoch = b.Epoch
	}
	t.epoch++ // first transaction of the new instance
	t.probe("txn")

	if t.stage.Stateful {
		t.restoreSeqFromStore()
	}
	return nil
}

// recoverAligned restores the last completed aligned checkpoint: state
// snapshot, per-producer barrier positions (re-reads below them are
// suppressed), sequence counters, and the resume cursor (paper §5.1).
func (t *Task) recoverAligned(_ context.Context) error {
	if t.ckpt == nil {
		return nil
	}
	epoch := t.ckpt.LastCompleted()
	t.probe("aligned")
	if epoch == 0 {
		return nil // no completed checkpoint yet: restart from scratch
	}
	blob, ok := t.env.Checkpoints.Get(CkptKey(t.ID, epoch))
	if !ok {
		return fmt.Errorf("core: aligned checkpoint %d missing for %s", epoch, t.ID)
	}
	s, err := decodeAlignedSnapshot(blob)
	if err != nil {
		return err
	}
	if err := t.store.RestoreSnapshot(s.State); err != nil {
		return err
	}
	t.outSeq = s.OutSeq
	t.epoch = s.Epoch
	for p, seq := range s.LastSeq {
		t.lastSeq[p] = seq
	}
	cursor := sharedlog.MaxLSN
	for p, lsn := range s.Barriers {
		t.skipBelow[p] = lsn
		if lsn < cursor {
			cursor = lsn
		}
	}
	if cursor != sharedlog.MaxLSN {
		t.cursor = cursor + 1
	}
	t.Metrics.RecoveredFromCheckpoint.Store(1)
	return nil
}

// recoverUnsafe has no recovery point: it resumes at the log tail and
// replays the entire change log best-effort — the variant trades
// exactly-once for speed (paper §5.3.4).
func (t *Task) recoverUnsafe(ctx context.Context) error {
	t.cursor = t.log.Tail()
	// Sequence numbers restart; namespace them by instance so consumers
	// never confuse new output with old (monotonicity preserved).
	t.outSeq = t.Instance << 40
	if !t.stage.Stateful {
		return nil
	}
	cur := t.log.OpenCursorOpts([]sharedlog.Tag{ChangeLogTag(t.ID)}, 0, t.recoveryCursorOpts())
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		t.heartbeat()
		recs, err := t.readNextRetry(ctx, "replay-unsafe", cur, t.readBatch)
		if err != nil {
			if errors.Is(err, sharedlog.ErrCursorInvalidated) {
				// Best-effort replay: skip the trimmed prefix.
				cur.Seek(t.log.TrimHorizon())
				continue
			}
			return err
		}
		if len(recs) == 0 {
			return nil
		}
		for _, rec := range recs {
			cb, err := DecodeBatch(rec.Payload)
			if err != nil {
				return err
			}
			if cb.Kind == KindChange {
				t.applyChangeBatch(cb)
			}
		}
	}
}

// markerCheckpoint is the blob the asynchronous checkpointer writes for
// marker-mode tasks: a state snapshot plus the LSN of the progress
// marker it covers (replay resumes after it).
type markerCheckpoint struct {
	Epoch      uint64
	CoveredLSN LSN
	State      []byte
}

func (c *markerCheckpoint) encode() []byte {
	buf := make([]byte, 0, 16+len(c.State))
	var tmp [8]byte
	putUint64(tmp[:], c.Epoch)
	buf = append(buf, tmp[:]...)
	putUint64(tmp[:], uint64(c.CoveredLSN))
	buf = append(buf, tmp[:]...)
	return append(buf, c.State...)
}

func decodeMarkerCheckpoint(buf []byte) (*markerCheckpoint, error) {
	if len(buf) < 16 {
		return nil, ErrBadEncoding
	}
	return &markerCheckpoint{
		Epoch:      getUint64(buf),
		CoveredLSN: LSN(getUint64(buf[8:])),
		State:      append([]byte(nil), buf[16:]...),
	}, nil
}
