package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"impeller/internal/sharedlog"
)

// probe invokes the test-only recovery probe, if installed, at a named
// point inside recovery — chaos tests use it to crash a task while it
// is mid-recovery deterministically.
func (t *Task) probe(point string) {
	if t.env.recoveryProbe != nil {
		t.env.recoveryProbe(t.ID, point)
	}
}

// readPrevRetry and readNextRetry wrap recovery's log reads in the
// transient-fault retry loop: a recovering task whose shard is briefly
// down waits it out instead of dying and re-entering recovery.
func (t *Task) readPrevRetry(ctx context.Context, tag sharedlog.Tag, from LSN) (*sharedlog.Record, error) {
	var rec *sharedlog.Record
	err := t.retry.do(ctx, "read-prev "+string(tag), func() error {
		var e error
		rec, e = t.log.ReadPrev(tag, from)
		return e
	})
	return rec, err
}

// readNextRetry is the retry wrapper around recovery's forward reads.
// Those are cursor batch fetches now — one round trip per batch instead
// of per record — but the retry semantics are unchanged: a recovering
// task whose shard is briefly down waits it out instead of dying and
// re-entering recovery. Safe to call from the parallel restore
// goroutines (each owns its cursor; the retrier is concurrency-safe).
func (t *Task) readNextRetry(ctx context.Context, label string, cur *sharedlog.Cursor, max int) ([]*sharedlog.Record, error) {
	var recs []*sharedlog.Record
	err := t.retry.do(ctx, label, func() error {
		var e error
		recs, e = cur.NextBatch(max)
		return e
	})
	return recs, err
}

// recoveryCursorOpts routes a replay cursor's counters into the
// recovery-specific metrics sink (so the recovery experiment can count
// replay round trips without input-loop noise), mirroring the input
// cursor's prefetch policy.
func (t *Task) recoveryCursorOpts() sharedlog.CursorOptions {
	opts := sharedlog.CursorOptions{Stats: &t.Metrics.RecoveryCursor}
	if t.readBatch == 1 {
		opts.Prefetch = -1
	} else {
		opts.Prefetch = 3 * t.readBatch
	}
	return opts
}

// runParallel runs recovery's independent restore substreams in
// parallel goroutines and joins them before the task goes live. The
// first error cancels the rest and is returned.
func runParallel(ctx context.Context, fns ...func(context.Context) error) error {
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errc := make(chan error, len(fns))
	for _, fn := range fns {
		go func(fn func(context.Context) error) { errc <- fn(gctx) }(fn)
	}
	var first error
	for range fns {
		if err := <-errc; err != nil && first == nil {
			first = err
			cancel()
		}
	}
	return first
}

// recover restores a restarted task instance to a consistent point
// before it processes new input (paper §3.3.2 for stateless stages,
// §3.3.4 for stateful ones; §3.6/§5.1 for the baseline protocols).
func (t *Task) recover(ctx context.Context) error {
	switch t.env.Protocol {
	case ProtoProgressMarker:
		return t.recoverMarker(ctx)
	case ProtoKafkaTxn:
		return t.recoverTxn(ctx)
	case ProtoAlignedCheckpoint:
		return t.recoverAligned(ctx)
	case ProtoUnsafe:
		return t.recoverUnsafe(ctx)
	default:
		return fmt.Errorf("core: unknown protocol %v", t.env.Protocol)
	}
}

// lastMarkerAtEpoch reads the newest task-log marker stamped with an
// assignment epoch <= maxEpoch, skipping any stamped newer. The only
// way a newer-epoch marker reaches a slot's task log while the reader
// holds committed epoch maxEpoch is an aborted rescale attempt's
// retirement tombstone: the attempt fenced the slot and appended the
// tombstone, then died before its epoch CAS, so the slot lives on under
// the old assignment. Resuming from the tombstone would be ruinous —
// its InputEnd is empty and no handoff floor exists under the
// uncommitted epoch, so the revived slot (or, in the rescaler's floor
// computation, the group's acquirer) would re-commit records earlier
// instances already committed.
func lastMarkerAtEpoch(readPrev func(LSN) (*sharedlog.Record, error), maxEpoch uint64) (*sharedlog.Record, *Batch, error) {
	from := sharedlog.MaxLSN
	for {
		rec, err := readPrev(from)
		if err != nil || rec == nil {
			return nil, nil, err
		}
		b, err := DecodeBatch(rec.Payload)
		if err != nil {
			return nil, nil, err
		}
		if b.Epoch <= maxEpoch {
			return rec, b, nil
		}
		if rec.LSN == 0 {
			return nil, nil, nil
		}
		from = rec.LSN - 1
	}
}

// recoverMarker implements Impeller recovery: find the most recent
// progress marker by reading the tail of the task-log substream, resume
// input just past its InputEnd, restore the sequence counter, and for
// stateful tasks restore state from the latest checkpoint plus a replay
// of the remaining committed change-log ranges.
func (t *Task) recoverMarker(ctx context.Context) error {
	last, b, err := lastMarkerAtEpoch(func(from LSN) (*sharedlog.Record, error) {
		return t.readPrevRetry(ctx, TaskLogTag(t.ID), from)
	}, t.assignEpoch)
	if err != nil {
		return err
	}
	t.probe("marker")
	var markerEpoch uint64 // assignment epoch stamped on our last marker
	if last != nil {
		m, err := DecodeMarker(b.Control)
		if err != nil {
			return err
		}
		if m.InputEnd != NoLSN {
			t.cursor = m.InputEnd + 1
		}
		t.outSeq = m.SeqEnd
		t.ckptEpoch = m.CheckpointEpoch
		markerEpoch = b.Epoch
	}

	// Handoff floors: groups acquired since our last marker's assignment
	// epoch replay and resume from the donor slot's transfer floor, not
	// from our own frontier (assign.go). No-op when nothing migrated.
	t.applyHandoffFloors(markerEpoch, t.cursor)

	if !t.stage.Stateful {
		return nil
	}

	// State restore: load the asynchronous checkpoint if one covers the
	// current group ownership, then replay the owned groups' change
	// streams from its coverage point (paper §3.3.4, §3.5 "Accelerating
	// state recovery"). A checkpoint taken under a different group set is
	// unusable — it misses acquired groups and includes migrated ones —
	// so a signature mismatch falls back to a full group-stream replay.
	var replayFrom LSN
	if blob, ok := t.env.Checkpoints.Get(MarkerCkptKey(t.ID)); ok {
		switch ck, err := decodeMarkerCheckpoint(blob); {
		case err != nil:
			// Corrupt checkpoint bytes: fall back to a full change-log
			// replay instead of failing recovery permanently — the
			// change log is the durable source of truth, the snapshot
			// only an accelerator (paper §3.5).
			t.Metrics.CheckpointDecodeFailures.Add(1)
		case ck.GroupsSig == groupsSig(t.groups):
			if err := t.store.RestoreSnapshot(ck.State); err != nil {
				// Same fallback: RestoreSnapshot is atomic, so the
				// store is still empty and a full replay is correct.
				t.Metrics.CheckpointDecodeFailures.Add(1)
			} else {
				replayFrom = ck.CoveredLSN + 1
				t.Metrics.RecoveredFromCheckpoint.Store(1)
			}
		}
	}
	t.probe("replay")
	replay := newGroupReplay(func(cb *Batch) { t.applyChangeBatch(cb) })
	cur := t.log.OpenCursorOpts(t.groupChangeTags(), replayFrom, t.recoveryCursorOpts())
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		t.heartbeat() // recovery can be long; stay visibly alive
		recs, err := t.readNextRetry(ctx, "replay-groups", cur, t.readBatch)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			break
		}
		for _, rec := range recs {
			cb, err := DecodeBatch(rec.Payload)
			if err != nil {
				return err
			}
			if err := replay.observe(rec.LSN, cb); err != nil {
				return err
			}
		}
	}
	// Change batches still pending at the tail have no covering marker:
	// either their producer's in-flight flush outran its failed commit,
	// or a fenced zombie kept appending — both uncommitted. Drop them.
	t.restoreSeqFromStore()
	return nil
}

// groupChangeTags returns the change-stream tags of the owned groups.
func (t *Task) groupChangeTags() []sharedlog.Tag {
	tags := make([]sharedlog.Tag, len(t.groups))
	for i, g := range t.groups {
		tags[i] = GroupChangeTag(t.stage.Name, g)
	}
	return tags
}

// applyHandoffFloors resolves each owned group's replay floor across the
// assignment epochs between markerEpoch (stamped on our last marker, 0
// if none) and the epoch this instance was spawned at. For a group that
// migrated to us at epoch e, the newest handoff key in that window holds
// the donor's committed frontier — resuming there is exact: below it the
// donor already committed every record, above it nothing of the group
// was consumed. Groups we held continuously floor at our own frontier,
// which suppresses re-reads when an acquired group pulls the shared
// cursor below it. The cursor starts at the minimum floor — possibly
// above the task's own frontier: a fresh slot spawned by a scale-up
// starts every group at its donor's floor rather than scanning the log
// from zero, which is safe because a record below every owned group's
// floor is never processed, and the marker committing a record at
// LSN ≥ min always sits above that record.
func (t *Task) applyHandoffFloors(markerEpoch uint64, base LSN) {
	if t.env.Protocol != ProtoProgressMarker || len(t.groups) == 0 {
		return
	}
	meta := t.log.Meta()
	min := sharedlog.MaxLSN
	for _, g := range t.groups {
		floor := base
		for e := t.assignEpoch; e > markerEpoch; e-- {
			// The ownership check guards against handoff keys left behind
			// by an aborted rescale attempt at this epoch number: the
			// committed epoch's owner keys (rewritten in full by the
			// attempt that won) decide whether the group really moved.
			if f, ok := handoffFloor(meta, t.stage.Name, e, g); ok && ownerChangedAt(meta, t.stage.Name, e, g) {
				floor = f
				break
			}
		}
		t.groupFloor[g] = floor
		if floor < min {
			min = floor
		}
	}
	t.cursor = min
}

// groupReplay restores state from the owned groups' change streams.
// Unlike the pre-rescaling replay (one producer: the task's own
// predecessors), a group stream carries every slot that ever owned the
// group, so committedness is resolved per producer: change batches
// buffer until a marker from the same producer instance covers them
// ([ChangeFirst, markerLSN]); observing a record from a newer instance
// of a producer drops the older instance's buffered changes, since its
// fenced markers can no longer reach the log (the conditional-append
// guard orders every surviving marker before the successor's first
// record).
type groupReplay struct {
	apply    func(*Batch)
	pending  map[TaskID][]pendingChange
	pendInst map[TaskID]uint64
	maxInst  map[TaskID]uint64
	// applied is the highest covering-marker LSN whose range was
	// applied, or NoLSN if none yet.
	applied LSN
}

type pendingChange struct {
	lsn LSN
	b   *Batch
}

func newGroupReplay(apply func(*Batch)) *groupReplay {
	return &groupReplay{
		apply:    apply,
		pending:  make(map[TaskID][]pendingChange),
		pendInst: make(map[TaskID]uint64),
		maxInst:  make(map[TaskID]uint64),
		applied:  NoLSN,
	}
}

// observe folds one group-stream record. Records arrive in LSN order.
func (g *groupReplay) observe(lsn LSN, cb *Batch) error {
	switch cb.Kind {
	case KindChange:
		if cb.Instance < g.maxInst[cb.Producer] || cb.Instance < g.pendInst[cb.Producer] {
			// Fenced instance: a newer instance's marker or change record
			// precedes this one in the log, so no covering marker of the
			// old instance can follow (the fence orders every committed
			// old-instance marker before the successor's first record). A
			// zombie flushing change batches after its replacement started
			// lands here — the batches must not evict the replacement's
			// buffered committed changes.
			return nil
		}
		if cb.Instance != g.pendInst[cb.Producer] {
			// A newer instance took over; the old one's buffered changes
			// are permanently uncovered.
			g.pending[cb.Producer] = g.pending[cb.Producer][:0]
			g.pendInst[cb.Producer] = cb.Instance
		}
		g.pending[cb.Producer] = append(g.pending[cb.Producer], pendingChange{lsn: lsn, b: cb})
	case KindMarker:
		if cb.Instance < g.maxInst[cb.Producer] || cb.Instance < g.pendInst[cb.Producer] {
			// Stale marker; defensive — the conditional append forbids a
			// fenced instance from committing one.
			return nil
		}
		g.maxInst[cb.Producer] = cb.Instance
		m, err := DecodeMarker(cb.Control)
		if err != nil {
			return err
		}
		if g.pendInst[cb.Producer] != cb.Instance {
			// Marker from a newer instance than the buffered changes:
			// drop them (same fencing argument as above).
			g.pending[cb.Producer] = g.pending[cb.Producer][:0]
			g.pendInst[cb.Producer] = cb.Instance
		}
		if m.ChangeFirst == NoLSN {
			return nil // no changes this interval (or a retirement tombstone)
		}
		pend := g.pending[cb.Producer]
		keep := pend[:0]
		for _, p := range pend {
			switch {
			case p.lsn < m.ChangeFirst:
				// Covered by an earlier marker (already applied) or
				// permanently uncovered; either way not ours to apply.
			case p.lsn <= lsn:
				g.apply(p.b)
			default:
				keep = append(keep, p) // after this marker: next interval
			}
		}
		g.pending[cb.Producer] = keep
		if g.applied == NoLSN || lsn > g.applied {
			g.applied = lsn
		}
	}
	return nil
}

// covered is the LSN up to which every group-stream record is resolved:
// a replay (or checkpoint) from covered+1 loses nothing. It trails the
// newest applied marker while another producer's changes are still
// awaiting their covering marker. ok is false while nothing is covered.
func (g *groupReplay) covered() (LSN, bool) {
	if g.applied == NoLSN {
		return 0, false
	}
	c := g.applied
	for _, pend := range g.pending {
		for _, p := range pend {
			if p.lsn == 0 {
				return 0, false
			}
			if p.lsn-1 < c {
				c = p.lsn - 1
			}
		}
	}
	return c, true
}

func (t *Task) applyChangeBatch(cb *Batch) {
	for i := range cb.Records {
		r := &cb.Records[i]
		value, deleted, err := DecodeChange(r.Value)
		if err != nil {
			continue // tolerate unknown change encodings
		}
		t.store.ApplyChange(string(r.Key), value, deleted)
		t.Metrics.RecoveredChanges.Add(1)
	}
}

// restoreSeqFromStore reloads duplicate-suppression state mirrored into
// the state store by persistSeq. Keys are "_seq/<group>/<producer>";
// entries for groups this slot no longer owns (possible transiently
// after a rescale restored them via an acquired group's change stream)
// are loaded too — harmless, they can only suppress records of groups
// the task does not subscribe to.
func (t *Task) restoreSeqFromStore() {
	t.store.Range("_seq/", func(k string, v []byte) bool {
		rest := k[len("_seq/"):]
		i := strings.IndexByte(rest, '/')
		if i <= 0 {
			return true // unknown layout; ignore defensively
		}
		g, err := strconv.Atoi(rest[:i])
		if err != nil {
			return true
		}
		t.lastSeq[seqKey{group: g, producer: TaskID(rest[i+1:])}] = getUint64(v)
		return true
	})
}

// recoverTxn implements the Kafka Streams baseline's recovery: the last
// committed offsets record gives the resume cursor and sequence
// counter; stateful tasks replay change-log batches of committed epochs
// only, resolving them with the commit/abort markers the coordinator
// appended to the change-log substream.
func (t *Task) recoverTxn(ctx context.Context) error {
	// The offsets tail and the change-log replay touch independent
	// substreams (and the replay's epoch gating is resolved entirely by
	// the commit/abort markers inside the change substream itself), so
	// the two restore phases run in parallel goroutines joined before
	// the task goes live.
	var off *sharedlog.Record
	err := runParallel(ctx,
		func(ctx context.Context) error {
			var e error
			off, e = t.readPrevRetry(ctx, OffsetStreamTag(t.ID), sharedlog.MaxLSN)
			return e
		},
		func(ctx context.Context) error {
			if !t.stage.Stateful {
				return nil
			}
			// Replay the change log with epoch-level gating: change
			// batches buffer per (instance, epoch) and apply when the
			// epoch's commit marker arrives; batches whose epoch never
			// commits are dropped.
			type epochKey struct {
				instance, epoch uint64
			}
			pending := make(map[epochKey][]*Batch)
			cur := t.log.OpenCursorOpts([]sharedlog.Tag{ChangeLogTag(t.ID)}, 0, t.recoveryCursorOpts())
			for {
				if err := ctx.Err(); err != nil {
					return err
				}
				t.heartbeat()
				recs, err := t.readNextRetry(ctx, "replay-txn", cur, t.readBatch)
				if err != nil {
					return err
				}
				if len(recs) == 0 {
					return nil
				}
				for _, rec := range recs {
					cb, err := DecodeBatch(rec.Payload)
					if err != nil {
						return err
					}
					switch cb.Kind {
					case KindChange:
						k := epochKey{cb.Instance, cb.Epoch}
						pending[k] = append(pending[k], cb)
					case KindTxnCommit:
						k := epochKey{cb.Instance, cb.Epoch}
						for _, batch := range pending[k] {
							t.applyChangeBatch(batch)
						}
						delete(pending, k)
					case KindTxnAbort:
						delete(pending, epochKey{cb.Instance, cb.Epoch})
					}
				}
			}
		},
	)
	if err != nil {
		return err
	}
	if off != nil {
		b, err := DecodeBatch(off.Payload)
		if err != nil {
			return err
		}
		m, err := DecodeMarker(b.Control)
		if err != nil {
			return err
		}
		if m.InputEnd != NoLSN {
			t.cursor = m.InputEnd + 1
		}
		t.outSeq = m.SeqEnd
		t.epoch = b.Epoch
	}
	t.epoch++ // first transaction of the new instance
	t.probe("txn")

	if t.stage.Stateful {
		t.restoreSeqFromStore()
	}
	return nil
}

// recoverAligned restores the last completed aligned checkpoint: state
// snapshot, per-producer barrier positions (re-reads below them are
// suppressed), sequence counters, and the resume cursor (paper §5.1).
func (t *Task) recoverAligned(_ context.Context) error {
	if t.ckpt == nil {
		return nil
	}
	epoch := t.ckpt.LastCompleted()
	t.probe("aligned")
	if epoch == 0 {
		return nil // no completed checkpoint yet: restart from scratch
	}
	blob, ok := t.env.Checkpoints.Get(CkptKey(t.ID, epoch))
	if !ok {
		return fmt.Errorf("core: aligned checkpoint %d missing for %s", epoch, t.ID)
	}
	s, err := decodeAlignedSnapshot(blob)
	if err != nil {
		return err
	}
	if err := t.store.RestoreSnapshot(s.State); err != nil {
		return err
	}
	t.outSeq = s.OutSeq
	t.epoch = s.Epoch
	// Aligned tasks run the identity group layout (one group per slot),
	// so the snapshot's per-producer floors map onto the single group.
	for p, seq := range s.LastSeq {
		t.lastSeq[seqKey{group: t.groups[0], producer: p}] = seq
	}
	cursor := sharedlog.MaxLSN
	for p, lsn := range s.Barriers {
		t.skipBelow[p] = lsn
		if lsn < cursor {
			cursor = lsn
		}
	}
	if cursor != sharedlog.MaxLSN {
		t.cursor = cursor + 1
	}
	t.Metrics.RecoveredFromCheckpoint.Store(1)
	return nil
}

// recoverUnsafe has no recovery point: it resumes at the log tail and
// replays the entire change log best-effort — the variant trades
// exactly-once for speed (paper §5.3.4).
func (t *Task) recoverUnsafe(ctx context.Context) error {
	t.cursor = t.log.Tail()
	// Sequence numbers restart; namespace them by instance so consumers
	// never confuse new output with old (monotonicity preserved).
	t.outSeq = t.Instance << 40
	if !t.stage.Stateful {
		return nil
	}
	cur := t.log.OpenCursorOpts(t.groupChangeTags(), 0, t.recoveryCursorOpts())
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		t.heartbeat()
		recs, err := t.readNextRetry(ctx, "replay-unsafe", cur, t.readBatch)
		if err != nil {
			if errors.Is(err, sharedlog.ErrCursorInvalidated) {
				// Best-effort replay: skip the trimmed prefix.
				cur.Seek(t.log.TrimHorizon())
				continue
			}
			return err
		}
		if len(recs) == 0 {
			return nil
		}
		for _, rec := range recs {
			cb, err := DecodeBatch(rec.Payload)
			if err != nil {
				return err
			}
			if cb.Kind == KindChange {
				t.applyChangeBatch(cb)
			}
		}
	}
}

// markerCheckpoint is the blob the asynchronous checkpointer writes for
// marker-mode tasks: a state snapshot plus the group-stream LSN it
// covers (replay resumes after it) and the signature of the group set
// the snapshot was folded under — a restore under different ownership
// must fall back to full replay (see recoverMarker).
type markerCheckpoint struct {
	Epoch      uint64
	CoveredLSN LSN
	GroupsSig  uint64
	State      []byte
}

func (c *markerCheckpoint) encode() []byte {
	buf := make([]byte, 0, 24+len(c.State))
	var tmp [8]byte
	putUint64(tmp[:], c.Epoch)
	buf = append(buf, tmp[:]...)
	putUint64(tmp[:], uint64(c.CoveredLSN))
	buf = append(buf, tmp[:]...)
	putUint64(tmp[:], c.GroupsSig)
	buf = append(buf, tmp[:]...)
	return append(buf, c.State...)
}

func decodeMarkerCheckpoint(buf []byte) (*markerCheckpoint, error) {
	if len(buf) < 24 {
		return nil, ErrBadEncoding
	}
	return &markerCheckpoint{
		Epoch:      getUint64(buf),
		CoveredLSN: LSN(getUint64(buf[8:])),
		GroupsSig:  getUint64(buf[16:]),
		State:      append([]byte(nil), buf[24:]...),
	}, nil
}
