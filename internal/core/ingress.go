package core

import (
	"context"
	"sync"
	"time"

	"impeller/internal/sharedlog"
	"impeller/internal/wire"
)

// Ingress materializes external input records as shared-log entries
// (paper §3.2, Figure 2 steps ①–③: gateway → data ingress → log).
// Generators call Send; the ingress batches per destination substream
// and flushes on its interval (the paper's generators flush every
// 10–100 ms). Source batches are committed on arrival — the log is the
// canonical input — so the ingress needs no progress markers; under the
// aligned-checkpoint protocol it additionally injects barriers when the
// coordinator starts a checkpoint, acting as the query's source
// operator.
type Ingress struct {
	// ID names this writer, e.g. "ingress/0"; multiple generators write
	// concurrently under distinct ids.
	ID TaskID

	stream     StreamID
	partitions int
	env        *Env
	ckpt       *CkptCoordinator
	retry      *retrier

	// batched selects the AppendBatch flush path (one group commit per
	// flush instead of one concurrent append per substream); set from
	// Env.Batch at construction, off when MaxRecords is pinned to 1.
	batched bool

	mu       sync.Mutex
	bufs     []*batchBuf
	seq      uint64
	sent     uint64
	reserved uint64 // highest seq persisted to the log's metadata KV
}

// seqReservationKey is the log-metadata key an ingress writer reserves
// its sequence counter under, so a writer restarted after a power
// failure resumes above every sequence number that may already be
// durable. Downstream dedup is a per-producer floor, so the gap a crash
// leaves between the reservation and the last durable record is safe.
func seqReservationKey(id TaskID) string { return "iseq/" + string(id) }

// NewIngress builds an ingress writer for stream with the given
// substream count (the consuming stage's parallelism).
func NewIngress(id TaskID, stream StreamID, partitions int, env *Env, ckpt *CkptCoordinator) *Ingress {
	bufs := make([]*batchBuf, partitions)
	for i := range bufs {
		bufs[i] = &batchBuf{}
	}
	g := &Ingress{
		ID: id, stream: stream, partitions: partitions, env: env, ckpt: ckpt,
		bufs:    bufs,
		batched: env.Batch.withDefaults().MaxRecords > 1,
		retry:   newRetrier(env, ComputeNode(id), nil),
	}
	// Resume the sequence counter above this writer's durable
	// reservation (zero on a fresh log): records sent after a
	// whole-cluster restart must not collide with sequence numbers the
	// downstream dedup floors already absorbed.
	if v, ok := env.Log.Meta().Get(seqReservationKey(id)); ok {
		g.seq = v
		g.reserved = v
	}
	return g
}

// Send buffers one input record; key selects the substream.
func (g *Ingress) Send(key, value []byte, eventTime int64) {
	g.mu.Lock()
	g.seq++
	g.sent++
	sub := Partition(key, g.partitions)
	g.bufs[sub].add(Record{Seq: g.seq, EventTime: eventTime, Key: key, Value: value})
	g.mu.Unlock()
}

// Sent reports how many records have been accepted.
func (g *Ingress) Sent() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sent
}

// Flush appends all buffered batches — one AppendBatch group commit
// covering every non-empty substream when batching is enabled, or one
// concurrent append per substream when it is not — and, under aligned
// checkpoints, injects a barrier when the coordinator has started a new
// checkpoint.
func (g *Ingress) Flush() error {
	return g.flush(context.Background())
}

type ingressPending struct {
	sub     int
	records []Record
}

func (g *Ingress) flush(ctx context.Context) error {
	g.mu.Lock()
	var out []ingressPending
	for sub, buf := range g.bufs {
		if len(buf.records) > 0 {
			out = append(out, ingressPending{sub: sub, records: buf.take()})
		}
	}
	reserve := uint64(0)
	if len(out) > 0 && g.seq > g.reserved {
		reserve = g.seq
		g.reserved = g.seq
	}
	g.mu.Unlock()

	// Reserve before appending: the metadata journal entry reaches the
	// log's WAL (and is synced) before any of this flush's data frames,
	// so if a power failure preserves a data record, the reservation
	// covering its sequence number is durable too.
	if reserve > 0 {
		g.env.Log.Meta().Set(seqReservationKey(g.ID), reserve)
	}

	var err error
	if g.batched {
		err = g.flushBatched(ctx, out)
	} else {
		err = g.flushSingly(ctx, out)
	}
	if err != nil {
		return err
	}

	if g.ckpt != nil {
		if epoch, ok := g.ckpt.BarrierEpoch(g.ID); ok {
			// One atomic multi-tag append delivers the barrier to every
			// substream; the source's "state" (its send counter) needs
			// no snapshot because the log retains the input.
			tags := make([]sharedlog.Tag, g.partitions)
			for i := range tags {
				tags[i] = DataTag(g.stream, i)
			}
			payload := (&Batch{Kind: KindBarrier, Producer: g.ID, Instance: 1, Epoch: epoch}).Encode()
			err := g.retry.do(ctx, "barrier append", func() error {
				_, e := g.env.Log.Append(tags, payload)
				return e
			})
			if err != nil {
				// Not acked: the coordinator times the epoch out and
				// aborts it; the next flush injects the next barrier.
				return err
			}
			g.ckpt.Ack(g.ID, epoch)
		}
	}
	return nil
}

// flushBatched ships every non-empty substream's batch through one
// AppendBatch group commit: one simulated append latency and one
// sequencer interaction for the whole flush, instead of one per
// substream. The log either commits the whole group or fails before
// committing anything, so error handling re-buffers everything.
func (g *Ingress) flushBatched(ctx context.Context, out []ingressPending) error {
	if len(out) == 0 {
		return nil
	}
	entries := make([]sharedlog.AppendEntry, len(out))
	bufs := make([]*wire.Buf, len(out))
	for i, p := range out {
		batch := Batch{Kind: KindSource, Producer: g.ID, Instance: 1, Records: p.records}
		eb := wire.GetBuf()
		eb.B = batch.AppendTo(eb.B)
		bufs[i] = eb
		entries[i] = sharedlog.AppendEntry{
			Tags:    []sharedlog.Tag{DataTag(g.stream, p.sub)},
			Payload: eb.B,
		}
	}
	err := g.retry.do(ctx, "ingress append", func() error {
		_, e := g.env.Log.AppendBatch(entries)
		return e
	})
	for _, eb := range bufs {
		wire.PutBuf(eb)
	}
	if err != nil {
		// Input must never be silently lost: put every substream's
		// records back at the front of its buffer (they keep their
		// assigned sequence numbers, so a later re-append preserves
		// per-substream order and exact dedup) and let a future flush
		// retry.
		g.mu.Lock()
		for _, p := range out {
			g.rebufferLocked(p)
		}
		g.mu.Unlock()
		return err
	}
	return nil
}

// flushSingly is the unbatched path (Env.Batch.MaxRecords == 1): one
// append per non-empty substream, issued concurrently — the dataplane
// as it was before group commit, kept for the batching ablation.
func (g *Ingress) flushSingly(ctx context.Context, out []ingressPending) error {
	var wg sync.WaitGroup
	errs := make([]error, len(out))
	for i, p := range out {
		wg.Add(1)
		go func(i int, p ingressPending) {
			defer wg.Done()
			batch := &Batch{Kind: KindSource, Producer: g.ID, Instance: 1, Records: p.records}
			payload := batch.Encode()
			errs[i] = g.retry.do(ctx, "ingress append", func() error {
				_, err := g.env.Log.Append([]sharedlog.Tag{DataTag(g.stream, p.sub)}, payload)
				return err
			})
			if errs[i] != nil {
				g.mu.Lock()
				g.rebufferLocked(p)
				g.mu.Unlock()
			}
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// rebufferLocked puts a failed flush's records back at the front of
// their substream buffer. Caller holds g.mu.
func (g *Ingress) rebufferLocked(p ingressPending) {
	buf := g.bufs[p.sub]
	buf.records = append(p.records, buf.records...)
	for _, r := range p.records {
		buf.bytes += 16 + len(r.Key) + len(r.Value)
	}
}

// Run flushes every interval until ctx is done, then performs one final
// flush so buffered records are not lost on shutdown. A flush that
// fails even after retries (a long outage) keeps its records buffered
// and is re-attempted at the next interval rather than killing the
// ingress — losing input would break the exactly-once invariant at the
// source.
func (g *Ingress) Run(ctx context.Context, interval time.Duration) error {
	for {
		select {
		case <-ctx.Done():
			// Final flush on a fresh context: the run context is
			// already cancelled, but buffered input must still reach
			// the log (retries bounded by the policy's OpTimeout).
			return g.flush(context.Background())
		case <-g.env.Clock.After(interval):
			if err := g.flush(ctx); err != nil && ctx.Err() != nil {
				return g.flush(context.Background())
			}
		}
	}
}
