package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"impeller/internal/kvstore"
	"impeller/internal/sharedlog"
)

func TestBatcherPreservesSubmissionOrder(t *testing.T) {
	log := sharedlog.Open(sharedlog.Config{})
	defer log.Close()
	// Small batches and a narrow window so the 100 submissions cross
	// many sealed batches (and exercise the backpressure path).
	a := newBatcher(log, BatchConfig{MaxRecords: 8, Window: 2}, nil, context.Background(), nil, nil, nil)
	defer a.close()

	var mu sync.Mutex
	var lsns []LSN
	for i := 0; i < 100; i++ {
		payload := []byte{byte(i)}
		a.submit([]sharedlog.Tag{"t"}, payload, nil, func(lsn LSN, err error) {
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			mu.Lock()
			lsns = append(lsns, lsn)
			mu.Unlock()
		})
	}
	if err := a.drain(); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 100 {
		t.Fatalf("completed %d appends", len(lsns))
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Fatalf("order violated at %d: %v", i, lsns[i-1:i+1])
		}
	}
	// Payload order must match submission order in the log.
	var cursor LSN
	for i := 0; i < 100; i++ {
		rec, err := log.ReadNext("t", cursor)
		if err != nil || rec == nil {
			t.Fatal(err)
		}
		if rec.Payload[0] != byte(i) {
			t.Fatalf("payload %d at position %d", rec.Payload[0], i)
		}
		cursor = rec.LSN + 1
	}
}

func TestBatcherReportsFirstError(t *testing.T) {
	log := sharedlog.Open(sharedlog.Config{})
	a := newBatcher(log, BatchConfig{}, nil, context.Background(), nil, nil, nil)
	defer a.close()
	log.Close() // force append failures
	a.submit([]sharedlog.Tag{"t"}, nil, nil, nil)
	if err := a.drain(); !errors.Is(err, sharedlog.ErrClosed) {
		t.Fatalf("drain err = %v, want ErrClosed", err)
	}
	if n := a.pending(); n != 0 {
		t.Fatalf("pending after drain = %d", n)
	}
}

func TestIngressPartitionsByKey(t *testing.T) {
	env := (&Env{Log: sharedlog.Open(sharedlog.Config{}), Checkpoints: kvstore.Open(kvstore.Config{})}).withDefaults()
	defer env.Log.Close()
	g := NewIngress("ingress/t", "in", 4, env, nil)
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d"), []byte("e")}
	for i, k := range keys {
		g.Send(k, []byte{byte(i)}, int64(i))
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if g.Sent() != uint64(len(keys)) {
		t.Fatalf("Sent = %d", g.Sent())
	}
	// Every record must be in the substream its key hashes to.
	found := 0
	for sub := 0; sub < 4; sub++ {
		var cursor LSN
		for {
			rec, err := env.Log.ReadNext(DataTag("in", sub), cursor)
			if err != nil {
				t.Fatal(err)
			}
			if rec == nil {
				break
			}
			cursor = rec.LSN + 1
			b, err := DecodeBatch(rec.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if b.Kind != KindSource {
				t.Fatalf("kind = %v", b.Kind)
			}
			for _, r := range b.Records {
				if Partition(r.Key, 4) != sub {
					t.Fatalf("key %q in wrong substream %d", r.Key, sub)
				}
				found++
			}
		}
	}
	if found != len(keys) {
		t.Fatalf("found %d records, want %d", found, len(keys))
	}
}

func TestIngressSeqMonotonicAcrossFlushes(t *testing.T) {
	env := (&Env{Log: sharedlog.Open(sharedlog.Config{}), Checkpoints: kvstore.Open(kvstore.Config{})}).withDefaults()
	defer env.Log.Close()
	g := NewIngress("ingress/t", "in", 1, env, nil)
	var want uint64
	for flush := 0; flush < 3; flush++ {
		for i := 0; i < 5; i++ {
			g.Send([]byte("k"), nil, 0)
		}
		if err := g.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	var cursor LSN
	for {
		rec, err := env.Log.ReadNext(DataTag("in", 0), cursor)
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			break
		}
		cursor = rec.LSN + 1
		b, _ := DecodeBatch(rec.Payload)
		for _, r := range b.Records {
			if r.Seq <= want {
				t.Fatalf("seq %d after %d", r.Seq, want)
			}
			want = r.Seq
		}
	}
	if want != 15 {
		t.Fatalf("last seq = %d, want 15", want)
	}
}

func TestUngatedSinkSeesUncommitted(t *testing.T) {
	// An ungated sink observes records at emission, before any marker;
	// a gated sink holds them until the marker commits.
	env := (&Env{Log: sharedlog.Open(sharedlog.Config{}), Checkpoints: kvstore.Open(kvstore.Config{}), Protocol: ProtoProgressMarker}).withDefaults()
	defer env.Log.Close()

	batch := &Batch{
		Kind: KindData, Producer: "up/0", Instance: 1,
		Records: []Record{{Seq: 1, Key: []byte("k"), Value: []byte("v")}},
	}
	lsn, err := env.Log.Append([]sharedlog.Tag{DataTag("out", 0)}, batch.Encode())
	if err != nil {
		t.Fatal(err)
	}

	runSink := func(s *Sink) (uint64, context.CancelFunc) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() { _ = s.Run(ctx) }()
		return 0, cancel
	}

	ungated := NewSink("out", 1, env)
	_, cancelU := runSink(ungated)
	defer cancelU()
	gated := NewGatedSink("out", 1, env)
	_, cancelG := runSink(gated)
	defer cancelG()

	waitFor := func(desc string, pred func() bool) {
		deadline := time.Now().Add(5 * time.Second)
		for !pred() {
			if time.Now().After(deadline) {
				t.Fatalf("%s never happened", desc)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("ungated delivery", func() bool { return ungated.Counts().Received == 1 })
	if n := gated.Counts().Received; n != 0 {
		t.Fatal("gated sink delivered uncommitted record")
	}

	// Commit via a marker covering the batch.
	m := &ProgressMarker{InputEnd: NoLSN, ChangeFirst: NoLSN,
		OutFirst: map[sharedlog.Tag]sharedlog.LSN{DataTag("out", 0): lsn}}
	mb := &Batch{Kind: KindMarker, Producer: "up/0", Instance: 1, Control: m.Encode()}
	if _, err := env.Log.Append([]sharedlog.Tag{DataTag("out", 0)}, mb.Encode()); err != nil {
		t.Fatal(err)
	}
	waitFor("gated delivery after marker", func() bool { return gated.Counts().Received == 1 })
}

func TestGatedSinkDiscardsUncommitted(t *testing.T) {
	env := (&Env{Log: sharedlog.Open(sharedlog.Config{}), Checkpoints: kvstore.Open(kvstore.Config{}), Protocol: ProtoProgressMarker}).withDefaults()
	defer env.Log.Close()

	// Instance 1 writes a record, dies; instance 2's marker commits
	// nothing — the record must be counted as dropped, not delivered.
	orphan := &Batch{Kind: KindData, Producer: "up/0", Instance: 1,
		Records: []Record{{Seq: 1, Key: []byte("k"), Value: []byte("dead")}}}
	if _, err := env.Log.Append([]sharedlog.Tag{DataTag("out", 0)}, orphan.Encode()); err != nil {
		t.Fatal(err)
	}
	m := &ProgressMarker{InputEnd: NoLSN, ChangeFirst: NoLSN}
	mb := &Batch{Kind: KindMarker, Producer: "up/0", Instance: 2, Control: m.Encode()}
	if _, err := env.Log.Append([]sharedlog.Tag{DataTag("out", 0)}, mb.Encode()); err != nil {
		t.Fatal(err)
	}

	gated := NewGatedSink("out", 1, env)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = gated.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		c := gated.Counts()
		if c.DroppedUncommitted == 1 && c.Received == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphan not discarded: delivered=%d dropped=%d", c.Received, c.DroppedUncommitted)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// failingOnceProcessor errors on its first record, then works; the
// manager must restart the task and the record must still be processed
// exactly once.
type failingOnceProcessor struct {
	mu     *sync.Mutex
	failed *bool
}

func (p *failingOnceProcessor) Open(ProcContext) error { return nil }
func (p *failingOnceProcessor) Process(_ int, d Datum, emit Emit) error {
	p.mu.Lock()
	first := !*p.failed
	*p.failed = true
	p.mu.Unlock()
	if first {
		return errors.New("transient processor failure")
	}
	emit(0, d)
	return nil
}

func TestManagerRestartsOnProcessorError(t *testing.T) {
	env := &Env{
		Log:            sharedlog.Open(sharedlog.Config{}),
		Checkpoints:    kvstore.Open(kvstore.Config{}),
		Protocol:       ProtoProgressMarker,
		CommitInterval: 20 * time.Millisecond,
	}
	defer env.Log.Close()
	var mu sync.Mutex
	failed := false
	q := &Query{
		Name: "fo",
		Stages: []*Stage{{
			Name:        "fo/s",
			Parallelism: 1,
			Inputs:      []StreamID{"in"},
			Outputs:     []OutputSpec{{Stream: "out", Partitions: 1}},
			NewProcessor: func() Processor {
				return &failingOnceProcessor{mu: &mu, failed: &failed}
			},
		}},
	}
	mgr, err := NewManager(env, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	ing := NewIngress("ingress/0", "in", 1, mgr.Env(), nil)
	ing.Send([]byte("k"), []byte("v"), time.Now().UnixMicro())
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}

	sink := NewGatedSink("out", 1, mgr.Env())
	go func() { _ = sink.Run(ctx) }()

	deadline := time.Now().Add(15 * time.Second)
	for {
		c := sink.Counts()
		if c.Received == 1 && c.Duplicates == 0 {
			if mgr.Restarts("fo/s/0") == 0 {
				t.Fatal("task was not restarted after processor error")
			}
			return
		}
		if c.Received > 1 {
			t.Fatalf("record delivered %d times", c.Received)
		}
		if time.Now().After(deadline) {
			t.Fatalf("record never delivered (restarts=%d)", mgr.Restarts("fo/s/0"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosExactlyOnce runs word count under a seeded schedule of
// crashes and zombie partitions for each gating protocol, checking the
// final counts are exact every time.
func TestChaosExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	protocols := []FTProtocol{ProtoProgressMarker, ProtoKafkaTxn, ProtoAlignedCheckpoint}
	for _, proto := range protocols {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			c := startWordCount(t, proto, 2, 2)
			c.mgr.SetTimeouts(150*time.Millisecond, 20*time.Millisecond)

			victims := []TaskID{"wc/count/0", "wc/count/1", "wc/split/0"}
			done := make(chan map[string]uint64)
			go func() { done <- sendLoad(c, 2000) }()

			for i := 0; i < 5; i++ {
				time.Sleep(60 * time.Millisecond)
				victim := victims[i%len(victims)]
				if proto == ProtoProgressMarker && i == 2 {
					_ = c.mgr.Zombify(victim)
				} else {
					_ = c.mgr.Kill(victim)
				}
			}
			want := <-done
			c.waitCounts(want, 60*time.Second)

			total := 0
			for _, id := range c.mgr.TaskIDs() {
				total += c.mgr.Restarts(id)
			}
			if total == 0 {
				t.Fatal("chaos schedule caused no restarts")
			}
			t.Logf("%s: survived %d restarts with exact counts", proto, total)
		})
	}
}

// TestZombifyExitedInstanceErrors pins the zombify/restart race:
// zombifying a task whose current instance has already exited must
// report an error (there is no running instance to turn into a
// zombie), so chaos accounting counts only zombies actually planted.
func TestZombifyExitedInstanceErrors(t *testing.T) {
	c := startWordCount(t, ProtoProgressMarker, 1, 1)

	// Park the monitor so the killed instance is not replaced while the
	// test probes the exited window; sleep past the old 25 ms tick so
	// the monitor loop has re-armed with the long interval.
	c.mgr.SetTimeouts(time.Hour, time.Hour)
	time.Sleep(100 * time.Millisecond)

	victim := TaskID("wc/count/0")
	if err := c.mgr.Zombify(victim); err != nil {
		t.Fatalf("zombify of a live instance failed: %v", err)
	}

	if err := c.mgr.Kill(victim); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := c.mgr.Zombify(victim)
		if err != nil {
			if !strings.Contains(err.Error(), "already exited") {
				t.Fatalf("unexpected zombify error: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("zombify kept succeeding after the instance was killed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A replacement instance is zombifiable again.
	if err := c.mgr.RestartNow(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.mgr.Zombify(victim); err != nil {
		t.Fatalf("zombify of the replacement failed: %v", err)
	}
}

func TestManagerKillUnknownTask(t *testing.T) {
	env := &Env{Log: sharedlog.Open(sharedlog.Config{}), Checkpoints: kvstore.Open(kvstore.Config{})}
	defer env.Log.Close()
	mgr, err := NewManager(env, wordCountQuery(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Kill("nope"); err == nil {
		t.Fatal("killing unknown task succeeded")
	}
	if err := mgr.Zombify("nope"); err == nil {
		t.Fatal("zombifying unknown task succeeded")
	}
	if err := mgr.RestartNow("nope"); err == nil {
		t.Fatal("restarting unknown task succeeded")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	env := &Env{Log: sharedlog.Open(sharedlog.Config{}), Checkpoints: kvstore.Open(kvstore.Config{})}
	defer env.Log.Close()
	mgr, err := NewManager(env, wordCountQuery(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	if err := mgr.Start(ctx); err == nil {
		t.Fatal("second Start succeeded")
	}
}

func TestQueryMetricsAggregation(t *testing.T) {
	var q QueryMetrics
	m1, m2 := &TaskMetrics{}, &TaskMetrics{}
	m1.Processed.Store(10)
	m2.Processed.Store(5)
	m1.Markers.Store(2)
	q.Add(m1)
	q.Add(m2)
	if q.Processed != 15 || q.Markers != 2 {
		t.Fatalf("aggregate = %+v", q)
	}
}

func TestTaskIDsStableOrder(t *testing.T) {
	env := &Env{Log: sharedlog.Open(sharedlog.Config{}), Checkpoints: kvstore.Open(kvstore.Config{})}
	defer env.Log.Close()
	mgr, err := NewManager(env, wordCountQuery(2, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	ids := mgr.TaskIDs()
	want := []TaskID{"wc/split/0", "wc/split/1", "wc/count/0", "wc/count/1", "wc/count/2"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}
