package core

import (
	"encoding/binary"
	"sort"

	"impeller/internal/sharedlog"
)

// ProgressMarker is the payload of a KindMarker envelope: a consistent
// cut of a task's input, output, and state-change progress (paper §3.3).
//
// The encoding is "shrunk" per §3.5:
//
//   - only the END of the input range is stored (the start is never used
//     in recovery — the marker represents progress up to the end);
//   - only the STARTS of the output and change-log ranges are stored —
//     the marker's own LSN is a valid upper bound for both, because the
//     marker is the log record that logically follows the last output
//     and state-change record.
//
// A record is "committed" once a marker references its range; downstream
// tasks use the per-substream output ranges to run the three-case
// classification of §3.3.3, and the recovering task itself uses InputEnd
// (resume point), ChangeFirst (change-log replay), and SeqEnd (resume
// its duplicate-suppression sequence).
type ProgressMarker struct {
	// InputEnd is the LSN of the last input record processed, per input
	// cursor. Impeller tasks read all their input tags through a single
	// global cursor, so one LSN suffices. NoLSN means nothing consumed.
	InputEnd sharedlog.LSN
	// OutFirst maps each output substream tag to the first output LSN
	// appended to it since the previous marker. Substreams with no
	// output since the last marker are absent.
	OutFirst map[sharedlog.Tag]sharedlog.LSN
	// ChangeFirst is the first change-log LSN since the previous
	// marker, or NoLSN if the task made no state changes.
	ChangeFirst sharedlog.LSN
	// SeqEnd is the producer sequence number after the last output, so
	// a recovering instance resumes duplicate-suppression numbering.
	SeqEnd uint64
	// CheckpointEpoch is the latest state checkpoint covering this
	// marker (0 = none); recovery replays the change log only from
	// after that checkpoint (paper §3.5, "Accelerating state recovery").
	CheckpointEpoch uint64
}

// NoLSN marks an absent LSN field in a progress marker.
const NoLSN = sharedlog.MaxLSN

// Encode serializes the marker.
func (m *ProgressMarker) Encode() []byte {
	buf := make([]byte, 0, 8*4+2+len(m.OutFirst)*24)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.InputEnd))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.ChangeFirst))
	buf = binary.LittleEndian.AppendUint64(buf, m.SeqEnd)
	buf = binary.LittleEndian.AppendUint64(buf, m.CheckpointEpoch)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.OutFirst)))
	// Sort tags so encoding is deterministic (maps iterate randomly).
	tags := make([]string, 0, len(m.OutFirst))
	for t := range m.OutFirst {
		tags = append(tags, string(t))
	}
	sort.Strings(tags)
	for _, t := range tags {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t)))
		buf = append(buf, t...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.OutFirst[sharedlog.Tag(t)]))
	}
	return buf
}

// DecodeMarker parses a marker payload.
func DecodeMarker(buf []byte) (*ProgressMarker, error) {
	if len(buf) < 8*4+2 {
		return nil, ErrBadEncoding
	}
	m := &ProgressMarker{}
	m.InputEnd = sharedlog.LSN(binary.LittleEndian.Uint64(buf[0:]))
	m.ChangeFirst = sharedlog.LSN(binary.LittleEndian.Uint64(buf[8:]))
	m.SeqEnd = binary.LittleEndian.Uint64(buf[16:])
	m.CheckpointEpoch = binary.LittleEndian.Uint64(buf[24:])
	n := int(binary.LittleEndian.Uint16(buf[32:]))
	p := 34
	if n > 0 {
		m.OutFirst = make(map[sharedlog.Tag]sharedlog.LSN, n)
	}
	for i := 0; i < n; i++ {
		if p+2 > len(buf) {
			return nil, ErrBadEncoding
		}
		tl := int(binary.LittleEndian.Uint16(buf[p:]))
		p += 2
		if p+tl+8 > len(buf) {
			return nil, ErrBadEncoding
		}
		tag := sharedlog.Tag(buf[p : p+tl])
		p += tl
		m.OutFirst[tag] = sharedlog.LSN(binary.LittleEndian.Uint64(buf[p:]))
		p += 8
	}
	if p != len(buf) {
		return nil, ErrBadEncoding
	}
	return m, nil
}

// UnshrunkSize reports what the marker would occupy without the §3.5
// shrinking optimization (full first+last LSN pairs for input, every
// output substream, and the change log); the marker-shrinking ablation
// bench compares it against len(Encode()).
func (m *ProgressMarker) UnshrunkSize() int {
	size := len(m.Encode())
	// One extra LSN for the input range start, one per output substream
	// range end, and one for the change-log range end.
	size += 8 + len(m.OutFirst)*8 + 8
	return size
}
