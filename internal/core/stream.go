package core

import (
	"fmt"
	"hash/fnv"

	"impeller/internal/sharedlog"
)

// Tag construction (paper §3.2, Figure 3 and Figure 4). A stream is
// logically partitioned into substreams by tagging each record with
// (stream name, substream index); the task log and change log are
// per-task substreams tagged (T, task id) and (C, task id).

// DataTag returns the tag for substream sub of a data stream. Records
// carrying this tag are consumed by the downstream task that owns
// substream sub.
func DataTag(stream StreamID, sub int) sharedlog.Tag {
	return sharedlog.Tag(fmt.Sprintf("d/%s/%d", stream, sub))
}

// TaskLogTag returns the (T, task id) tag. A task's progress markers are
// additionally tagged with it so a recovering task finds its last marker
// by reading the substream tail (paper §3.3.1).
func TaskLogTag(task TaskID) sharedlog.Tag {
	return sharedlog.Tag("T/" + string(task))
}

// ChangeLogTag returns the (C, task id) tag carrying a stateful task's
// state-change records (paper §3.2).
func ChangeLogTag(task TaskID) sharedlog.Tag {
	return sharedlog.Tag("C/" + string(task))
}

// GroupChangeTag returns the change-log tag for one key group of a
// stage. Keyed by stage name — not task id — because key groups migrate
// between slots at rescale: whichever slot owns group g writes g's state
// changes here, and whichever slot acquires g later replays them. The
// Kafka-transaction baseline keeps the per-task ChangeLogTag (it has no
// rescale support and its epoch-gated replay is per-task).
func GroupChangeTag(stage string, group int) sharedlog.Tag {
	return sharedlog.Tag(fmt.Sprintf("C/%s/g%d", stage, group))
}

// TxnStreamTag returns the transaction stream tag for a coordinator in
// the Kafka-transaction baseline (paper §3.6). Coordinators are sharded;
// shard selects which coordinator's stream.
func TxnStreamTag(shard int) sharedlog.Tag {
	return sharedlog.Tag(fmt.Sprintf("X/%d", shard))
}

// OffsetStreamTag returns the per-task LSN-stream tag used by the
// Kafka-transaction baseline to record the latest input a task has
// processed (paper §3.6: "a per-task, per-stream LSN stream").
func OffsetStreamTag(task TaskID) sharedlog.Tag {
	return sharedlog.Tag("L/" + string(task))
}

// EgressOffsetsTag returns the egress-offsets substream tag for a named
// delivery sink over a stream. It carries KindEgressFrontier records:
// the sink's consumer-acknowledged delivery frontier, read back on
// restart so delivery resumes from the last ack instead of from zero.
func EgressOffsetsTag(stream StreamID, sink string) sharedlog.Tag {
	return sharedlog.Tag(fmt.Sprintf("E/%s/%s", stream, sink))
}

// DeadLetterTag returns the dead-letter substream tag for a named
// delivery sink: output records that exhausted their permanent-error
// delivery budget are parked here instead of wedging the pipeline.
func DeadLetterTag(stream StreamID, sink string) sharedlog.Tag {
	return sharedlog.Tag(fmt.Sprintf("DL/%s/%s", stream, sink))
}

// InstanceKey returns the metadata-store key holding a task's current
// instance number (paper §3.4). Conditional appends guard against it.
func InstanceKey(task TaskID) string {
	return "inst/" + string(task)
}

// Partition maps a record key to a substream index in [0, n) with an
// FNV-1a hash, so identical keys always land in the same substream and
// are processed by the same task (paper §2.1, word-count example).
func Partition(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(n))
}
