package core

import (
	"encoding/binary"
	"sort"

	"impeller/internal/sharedlog"
)

// Aligned checkpointing (paper §5.1 baseline): barriers flow through
// the data streams; a multi-input task blocks each upstream producer's
// records once that producer's barrier arrives, and snapshots its state
// when barriers from every upstream producer have aligned. "This
// approach creates a logical snapshot, but can only be done as fast as
// data flows through the system" — the alignment stall is the cost the
// paper measures.

// alignState tracks barrier alignment for one task.
type alignState struct {
	// expected is the number of upstream producers across all inputs.
	expected int
	// epoch is the checkpoint currently aligning (0 = none).
	epoch uint64
	// arrived maps producers whose barrier we received to its LSN.
	arrived map[TaskID]LSN
	// side buffers post-barrier batches from blocked producers.
	side []queuedBatch
}

func newAlignState(stage *Stage) *alignState {
	expected := 0
	for _, n := range stage.UpstreamProducers {
		expected += n
	}
	return &alignState{expected: expected, arrived: make(map[TaskID]LSN)}
}

func (a *alignState) blocked(p TaskID) bool {
	if a.epoch == 0 {
		return false
	}
	_, ok := a.arrived[p]
	return ok
}

func (a *alignState) buffer(q queuedBatch) {
	a.side = append(a.side, q)
}

// earliestBuffered returns the lowest LSN held in the side buffer.
func (a *alignState) earliestBuffered() (LSN, bool) {
	if len(a.side) == 0 {
		return 0, false
	}
	best := a.side[0].lsn
	for _, q := range a.side[1:] {
		if q.lsn < best {
			best = q.lsn
		}
	}
	return best, true
}

// onBarrier handles one barrier record and reports whether alignment is
// now complete. The caller runs completeAlignment — inline on the
// goroutine engine, on the blocker goroutine on the cooperative engine
// (the completion snapshots synchronously and drains appends, which a
// tasklet step must not await).
func (t *Task) onBarrier(b *Batch, lsn LSN) (complete bool, err error) {
	a := t.align
	if b.Epoch <= t.epoch {
		return false, nil // stale barrier from before our restore point
	}
	if a.epoch != 0 && b.Epoch > a.epoch {
		// A newer epoch's barrier means the coordinator aborted the
		// checkpoint we were aligning on (a participant crashed before
		// its barrier reached us). Abandon it — unblock the producers
		// and replay their side-buffered records — and align on the
		// new epoch instead, so the task does not stall forever behind
		// an epoch that can never complete.
		if err := t.releaseAlignment(); err != nil {
			return false, err
		}
	}
	if a.epoch == 0 {
		a.epoch = b.Epoch
	}
	if b.Epoch != a.epoch {
		return false, nil // stale barrier for an aborted earlier epoch
	}
	a.arrived[b.Producer] = lsn
	return len(a.arrived) >= a.expected, nil
}

func (t *Task) completeAlignment() error {
	a := t.align

	// Everything pre-barrier is processed; drain what classification
	// allows (openTracker commits everything, so the queue empties).
	if err := t.drainQueue(); err != nil {
		return err
	}
	t.flushOutputs()
	if err := t.drainAppends(); err != nil {
		return err
	}

	// Snapshot synchronously to the checkpoint store (the paper
	// configures Kvrocks to flush synchronously; the write stalls the
	// task, which is where checkpointing loses to progress markers as
	// state grows).
	snap := t.alignedSnapshot()
	if err := t.env.Checkpoints.Put(CkptKey(t.ID, a.epoch), snap); err != nil {
		return err
	}

	// Forward the barrier to all downstream substreams in one atomic
	// multi-tag append, then ack.
	var tags []sharedlog.Tag
	for _, out := range t.stage.Outputs {
		tags = append(tags, out.Tags()...)
	}
	payload := (&Batch{
		Kind:     KindBarrier,
		Producer: t.ID,
		Instance: t.Instance,
		Epoch:    a.epoch,
	}).Encode()
	if _, err := t.log.Append(tags, payload); err != nil {
		return err
	}
	t.Metrics.Appends.Add(1)
	t.Metrics.Markers.Add(1) // checkpoints are this protocol's progress unit
	if t.ckpt != nil {
		t.ckpt.Ack(t.ID, a.epoch)
	}
	t.epoch = a.epoch
	return t.releaseAlignment()
}

// releaseAlignment resets alignment state and replays the buffered
// post-barrier batches in LSN order — used both when an alignment
// completes and when a newer epoch's barrier abandons an aborted one.
func (t *Task) releaseAlignment() error {
	a := t.align
	side := a.side
	a.side = nil
	a.arrived = make(map[TaskID]LSN)
	a.epoch = 0
	sort.Slice(side, func(i, j int) bool { return side[i].lsn < side[j].lsn })
	for _, q := range side {
		t.queue = append(t.queue, q)
	}
	return t.drainQueue()
}

// alignedSnapshot serializes everything a task needs to resume from
// this checkpoint: per-producer barrier positions (Flink's per-channel
// offsets), duplicate-suppression state, the output sequence counter,
// and the state store contents.
type alignedSnapshot struct {
	Epoch    uint64
	OutSeq   uint64
	Barriers map[TaskID]LSN
	LastSeq  map[TaskID]uint64
	State    []byte
}

func (t *Task) alignedSnapshot() []byte {
	// Aligned tasks run the identity group layout (one group per slot:
	// the manager rejects rescale headroom outside the marker protocol),
	// so flattening lastSeq to its per-producer wire form is lossless.
	seqs := make(map[TaskID]uint64, len(t.lastSeq))
	for k, v := range t.lastSeq {
		seqs[k.producer] = v
	}
	s := alignedSnapshot{
		Epoch:    t.align.epoch,
		OutSeq:   t.outSeq,
		Barriers: t.align.arrived,
		LastSeq:  seqs,
		State:    t.store.Snapshot(),
	}
	return s.encode()
}

func (s *alignedSnapshot) encode() []byte {
	buf := binary.LittleEndian.AppendUint64(nil, s.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, s.OutSeq)
	buf = appendTaskLSNMap(buf, s.Barriers)
	m := make(map[TaskID]LSN, len(s.LastSeq))
	for k, v := range s.LastSeq {
		m[k] = LSN(v)
	}
	buf = appendTaskLSNMap(buf, m)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.State)))
	return append(buf, s.State...)
}

func decodeAlignedSnapshot(buf []byte) (*alignedSnapshot, error) {
	if len(buf) < 16 {
		return nil, ErrBadEncoding
	}
	s := &alignedSnapshot{}
	s.Epoch = binary.LittleEndian.Uint64(buf)
	s.OutSeq = binary.LittleEndian.Uint64(buf[8:])
	p := 16
	var err error
	s.Barriers, p, err = readTaskLSNMap(buf, p)
	if err != nil {
		return nil, err
	}
	var seqs map[TaskID]LSN
	seqs, p, err = readTaskLSNMap(buf, p)
	if err != nil {
		return nil, err
	}
	s.LastSeq = make(map[TaskID]uint64, len(seqs))
	for k, v := range seqs {
		s.LastSeq[k] = uint64(v)
	}
	if p+4 > len(buf) {
		return nil, ErrBadEncoding
	}
	n := int(binary.LittleEndian.Uint32(buf[p:]))
	p += 4
	if p+n != len(buf) {
		return nil, ErrBadEncoding
	}
	s.State = append([]byte(nil), buf[p:]...)
	return s, nil
}

func appendTaskLSNMap(buf []byte, m map[TaskID]LSN) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m[TaskID(k)]))
	}
	return buf
}

func readTaskLSNMap(buf []byte, p int) (map[TaskID]LSN, int, error) {
	if p+4 > len(buf) {
		return nil, 0, ErrBadEncoding
	}
	n := int(binary.LittleEndian.Uint32(buf[p:]))
	p += 4
	// An entry is at least 10 bytes (2-byte key length + 8-byte LSN);
	// reject corrupt counts before allocating.
	if n > (len(buf)-p)/10 {
		return nil, 0, ErrBadEncoding
	}
	m := make(map[TaskID]LSN, n)
	for i := 0; i < n; i++ {
		if p+2 > len(buf) {
			return nil, 0, ErrBadEncoding
		}
		kl := int(binary.LittleEndian.Uint16(buf[p:]))
		p += 2
		if p+kl+8 > len(buf) {
			return nil, 0, ErrBadEncoding
		}
		k := TaskID(buf[p : p+kl])
		p += kl
		m[k] = LSN(binary.LittleEndian.Uint64(buf[p:]))
		p += 8
	}
	return m, p, nil
}
