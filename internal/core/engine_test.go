package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"impeller/internal/kvstore"
	"impeller/internal/sharedlog"
)

// wordCountQuery builds the paper's running example (Figure 1): stage 1
// tokenizes lines into words repartitioned by word; stage 2 counts per
// word. The final counts stream has one partition consumed by the sink.
func wordCountQuery(p1, p2, ingressWriters int) *Query {
	return &Query{
		Name: "wc",
		Stages: []*Stage{
			{
				Name:        "wc/split",
				Parallelism: p1,
				Inputs:      []StreamID{"lines"},
				Outputs:     []OutputSpec{{Stream: "words", Partitions: p2}},
				NewProcessor: func() Processor {
					return FlatMap(func(d Datum) []Datum {
						var out []Datum
						for _, w := range bytes.Fields(d.Value) {
							out = append(out, Datum{Key: w, Value: []byte("1"), EventTime: d.EventTime})
						}
						return out
					})
				},
				UpstreamProducers: []int{ingressWriters},
			},
			{
				Name:              "wc/count",
				Parallelism:       p2,
				Inputs:            []StreamID{"words"},
				Outputs:           []OutputSpec{{Stream: "counts", Partitions: 1}},
				NewProcessor:      func() Processor { return Count("cnt") },
				Stateful:          true,
				UpstreamProducers: []int{p1},
			},
		},
	}
}

// testCluster wires a query, ingress, and gated sink over a zero-latency
// log for correctness tests.
type testCluster struct {
	t       *testing.T
	env     *Env
	mgr     *Manager
	ingress *Ingress
	sink    *Sink
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu     sync.Mutex
	counts map[string]uint64 // word -> last count seen
}

func startWordCount(t *testing.T, proto FTProtocol, p1, p2 int) *testCluster {
	t.Helper()
	return startWordCountEngine(t, proto, p1, p2, EngineGoroutine)
}

// startWordCountEngine is startWordCount with an explicit execution
// engine; tasklet runs pin two event loops so tasks share loops even on
// a single-core host.
func startWordCountEngine(t *testing.T, proto FTProtocol, p1, p2 int, engine EngineMode) *testCluster {
	t.Helper()
	env := &Env{
		Log:            sharedlog.Open(sharedlog.Config{}),
		Checkpoints:    kvstore.Open(kvstore.Config{}),
		Protocol:       proto,
		CommitInterval: 25 * time.Millisecond,
		Engine:         engine,
		EngineLoops:    2,
	}
	q := wordCountQuery(p1, p2, 1)
	mgr, err := NewManager(env, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	c := &testCluster{t: t, env: mgr.Env(), mgr: mgr, cancel: cancel, counts: make(map[string]uint64)}

	if ck := mgr.Ckpt(); ck != nil {
		ck.AddParticipant("ingress/0")
	}
	c.ingress = NewIngress("ingress/0", "lines", p1, mgr.Env(), mgr.Ckpt())
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		_ = c.ingress.Run(ctx, 5*time.Millisecond)
	}()

	c.sink = NewGatedSink("counts", 1, mgr.Env())
	c.sink.OnRecord = func(r Record, _ TaskID, _ time.Time) {
		c.mu.Lock()
		c.counts[string(r.Key)] = binary.LittleEndian.Uint64(r.Value)
		c.mu.Unlock()
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		_ = c.sink.Run(ctx)
	}()

	t.Cleanup(func() {
		c.cancel()
		c.mgr.Stop()
		c.wg.Wait()
		c.env.Log.Close()
	})
	return c
}

func (c *testCluster) send(lines []string) map[string]uint64 {
	want := make(map[string]uint64)
	for i, line := range lines {
		c.ingress.Send([]byte(fmt.Sprint(i)), []byte(line), time.Now().UnixMicro())
		for _, w := range bytes.Fields([]byte(line)) {
			want[string(w)]++
		}
	}
	return want
}

// waitCounts polls until the sink's last-seen counts match want.
func (c *testCluster) waitCounts(want map[string]uint64, timeout time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		ok := len(c.counts) >= len(want)
		if ok {
			for w, n := range want {
				if c.counts[w] != n {
					ok = false
					break
				}
			}
		}
		snapshot := fmt.Sprint(c.counts)
		c.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("counts never converged.\nwant: %v\ngot:  %s", want, snapshot)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var testLines = []string{
	"the quick brown fox",
	"the lazy dog",
	"the quick dog jumps",
	"brown dog brown fox",
	"jumps over the lazy fox",
}

func expectedCounts(lines []string) map[string]uint64 {
	want := make(map[string]uint64)
	for _, l := range lines {
		for _, w := range bytes.Fields([]byte(l)) {
			want[string(w)]++
		}
	}
	return want
}

func TestWordCountExactlyOnceMarker(t *testing.T) {
	c := startWordCount(t, ProtoProgressMarker, 2, 2)
	want := c.send(testLines)
	c.waitCounts(want, 10*time.Second)
}

func TestWordCountExactlyOnceTxn(t *testing.T) {
	c := startWordCount(t, ProtoKafkaTxn, 2, 2)
	want := c.send(testLines)
	c.waitCounts(want, 10*time.Second)
}

func TestWordCountExactlyOnceAligned(t *testing.T) {
	c := startWordCount(t, ProtoAlignedCheckpoint, 2, 2)
	want := c.send(testLines)
	c.waitCounts(want, 10*time.Second)
}

func TestWordCountUnsafeNoFailures(t *testing.T) {
	c := startWordCount(t, ProtoUnsafe, 2, 2)
	want := c.send(testLines)
	c.waitCounts(want, 10*time.Second)
}

// sendLoad streams many lines while the test injects failures.
func sendLoad(c *testCluster, n int) map[string]uint64 {
	want := make(map[string]uint64)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for i := 0; i < n; i++ {
		line := fmt.Sprintf("%s %s %s", words[i%6], words[(i*7)%6], words[(i*13)%6])
		c.ingress.Send([]byte(fmt.Sprint(i)), []byte(line), time.Now().UnixMicro())
		for _, w := range bytes.Fields([]byte(line)) {
			want[string(w)]++
		}
		if i%50 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	return want
}

func TestWordCountExactlyOnceUnderCrashMarker(t *testing.T) {
	c := startWordCount(t, ProtoProgressMarker, 2, 2)
	done := make(chan map[string]uint64)
	go func() { done <- sendLoad(c, 1500) }()

	// Crash a stateful task twice and a stateless task once mid-stream.
	time.Sleep(60 * time.Millisecond)
	if err := c.mgr.Kill("wc/count/0"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if err := c.mgr.Kill("wc/split/1"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if err := c.mgr.Kill("wc/count/0"); err != nil {
		t.Fatal(err)
	}

	want := <-done
	c.waitCounts(want, 30*time.Second)
	if c.mgr.Restarts("wc/count/0") == 0 {
		t.Fatal("task was never restarted")
	}
}

func TestWordCountExactlyOnceUnderCrashTxn(t *testing.T) {
	c := startWordCount(t, ProtoKafkaTxn, 2, 2)
	done := make(chan map[string]uint64)
	go func() { done <- sendLoad(c, 1000) }()
	time.Sleep(80 * time.Millisecond)
	if err := c.mgr.Kill("wc/count/1"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if err := c.mgr.Kill("wc/split/0"); err != nil {
		t.Fatal(err)
	}
	want := <-done
	c.waitCounts(want, 30*time.Second)
}

func TestWordCountExactlyOnceUnderCrashAligned(t *testing.T) {
	c := startWordCount(t, ProtoAlignedCheckpoint, 2, 2)
	done := make(chan map[string]uint64)
	go func() { done <- sendLoad(c, 1000) }()
	// Let at least one checkpoint complete before crashing.
	deadline := time.Now().Add(5 * time.Second)
	for c.mgr.Ckpt().LastCompleted() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no aligned checkpoint ever completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.mgr.Kill("wc/count/0"); err != nil {
		t.Fatal(err)
	}
	want := <-done
	c.waitCounts(want, 30*time.Second)
}

func TestWordCountZombieNeutralized(t *testing.T) {
	c := startWordCount(t, ProtoProgressMarker, 1, 1)
	c.mgr.SetTimeouts(100*time.Millisecond, 0)

	// First wave of load, then partition the counting task from the
	// manager: it keeps running (zombie) while a replacement starts
	// (paper §3.4).
	want := sendLoad(c, 400)
	time.Sleep(50 * time.Millisecond)
	if err := c.mgr.Zombify("wc/count/0"); err != nil {
		t.Fatal(err)
	}

	// Keep data flowing while zombie and replacement overlap.
	deadline := time.Now().Add(15 * time.Second)
	i := 0
	for c.mgr.Restarts("wc/count/0") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("zombie was never replaced")
		}
		c.ingress.Send([]byte(fmt.Sprint(i)), []byte("zomb"), time.Now().UnixMicro())
		want["zomb"]++
		i++
		time.Sleep(2 * time.Millisecond)
	}
	// Second wave processed after the replacement took over; counts
	// must stay exact even though the zombie may still emit until its
	// next (fenced) progress marker.
	for k, v := range sendLoad(c, 400) {
		want[k] += v
	}
	c.waitCounts(want, 30*time.Second)
}

func TestDuplicateAppendSuppression(t *testing.T) {
	// A producer retry appends the same batch twice (paper §3.5,
	// "Duplicate appends to a single substream"); the consumer must
	// process it once.
	c := startWordCount(t, ProtoProgressMarker, 1, 1)
	batch := &Batch{
		Kind:     KindSource,
		Producer: "flaky-ingress",
		Instance: 1,
		Records: []Record{
			{Seq: 1, EventTime: time.Now().UnixMicro(), Key: []byte("k"), Value: []byte("dup dup")},
		},
	}
	payload := batch.Encode()
	for i := 0; i < 2; i++ { // duplicate append
		if _, err := c.env.Log.Append([]sharedlog.Tag{DataTag("lines", 0)}, payload); err != nil {
			t.Fatal(err)
		}
	}
	c.waitCounts(map[string]uint64{"dup": 2}, 10*time.Second)
	// Give it one more interval to be sure no double count arrives.
	time.Sleep(100 * time.Millisecond)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.counts["dup"] != 2 {
		t.Fatalf("dup count = %d after duplicate append, want 2", c.counts["dup"])
	}
}

func TestMarkerModeRecoveryUsesCheckpoint(t *testing.T) {
	env := &Env{
		Log:              sharedlog.Open(sharedlog.Config{}),
		Checkpoints:      kvstore.Open(kvstore.Config{}),
		Protocol:         ProtoProgressMarker,
		CommitInterval:   20 * time.Millisecond,
		SnapshotInterval: 50 * time.Millisecond,
	}
	defer env.Log.Close()
	q := wordCountQuery(1, 1, 1)
	mgr, err := NewManager(env, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	ing := NewIngress("ingress/0", "lines", 1, mgr.Env(), nil)
	go func() { _ = ing.Run(ctx, 5*time.Millisecond) }()
	for i := 0; i < 500; i++ {
		ing.Send([]byte("k"), []byte("word word word"), time.Now().UnixMicro())
	}

	// Wait for a checkpoint to cover some progress.
	cp := mgr.Checkpointer("wc/count/0")
	if cp == nil {
		t.Fatal("no checkpointer for stateful task")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := cp.Covered(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never covered a marker")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := c0RestartAndVerify(mgr); err != nil {
		t.Fatal(err)
	}
}

func c0RestartAndVerify(mgr *Manager) error {
	id := TaskID("wc/count/0")
	if err := mgr.RestartNow(id); err != nil {
		return err
	}
	// The restarted instance should report a checkpoint-based recovery.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if mgr.TaskMetrics(id).RecoveredFromCheckpoint.Load() == 1 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("recovery did not use the checkpoint")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGCTrimsConsumedPrefix(t *testing.T) {
	env := &Env{
		Log:              sharedlog.Open(sharedlog.Config{}),
		Checkpoints:      kvstore.Open(kvstore.Config{}),
		Protocol:         ProtoProgressMarker,
		CommitInterval:   20 * time.Millisecond,
		SnapshotInterval: 40 * time.Millisecond,
	}
	env.GC = NewGCController(env.Log)
	defer env.Log.Close()
	q := wordCountQuery(1, 1, 1)
	mgr, err := NewManager(env, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	ing := NewIngress("ingress/0", "lines", 1, mgr.Env(), nil)
	go func() { _ = ing.Run(ctx, 5*time.Millisecond) }()
	for i := 0; i < 300; i++ {
		ing.Send([]byte("k"), []byte("a b c"), time.Now().UnixMicro())
	}
	// Wait until both tasks committed and checkpoints covered progress,
	// then collect and verify the horizon advanced.
	deadline := time.Now().Add(15 * time.Second)
	for {
		h, err := env.GC.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if h > 0 {
			// Recovery must still work after trimming.
			if err := mgr.RestartNow("wc/count/0"); err != nil {
				t.Fatal(err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("GC never advanced the trim horizon")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestManagerValidatesQuery(t *testing.T) {
	env := &Env{Log: sharedlog.Open(sharedlog.Config{}), Checkpoints: kvstore.Open(kvstore.Config{})}
	defer env.Log.Close()
	if _, err := NewManager(env, &Query{Name: "bad"}); err == nil {
		t.Fatal("empty query accepted")
	}
	q := wordCountQuery(1, 1, 1)
	q.Stages[0].UpstreamProducers = nil
	env.Protocol = ProtoAlignedCheckpoint
	if _, err := NewManager(env, q); err == nil {
		t.Fatal("aligned protocol without UpstreamProducers accepted")
	}
}

func TestQueryValidate(t *testing.T) {
	q := wordCountQuery(2, 2, 1)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	dup := wordCountQuery(1, 1, 1)
	dup.Stages = append(dup.Stages, dup.Stages[0])
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate stage accepted")
	}
	bad := wordCountQuery(1, 1, 1)
	bad.Stages[0].Parallelism = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero parallelism accepted")
	}
}
