package core

import (
	"sync/atomic"

	"impeller/internal/sharedlog"
)

// TaskMetrics counts a task's work; all fields are safe for concurrent
// reads while the task runs. The benchmark harness aggregates these per
// query and the ablation benches read the marker byte counters.
type TaskMetrics struct {
	// Processed counts data records actually applied to the processor.
	Processed atomic.Uint64
	// Emitted counts records produced to output streams.
	Emitted atomic.Uint64
	// DroppedUncommitted counts records discarded by the three-case
	// classification (outputs of failed instances, aborted txns).
	DroppedUncommitted atomic.Uint64
	// DroppedDuplicate counts records suppressed by per-producer
	// sequence numbers (paper §3.5, duplicate appends).
	DroppedDuplicate atomic.Uint64
	// DroppedBelowFloor counts records suppressed below an acquired key
	// group's handoff floor: the donor slot committed them before the
	// group migrated here at a rescale.
	DroppedBelowFloor atomic.Uint64
	// Buffered counts records that entered the unknown-state queue.
	Buffered atomic.Uint64
	// Markers counts progress markers written.
	Markers atomic.Uint64
	// MarkerBytes and MarkerBytesUnshrunk compare the §3.5 shrunk
	// encoding against the naive one (ablation).
	MarkerBytes         atomic.Uint64
	MarkerBytesUnshrunk atomic.Uint64
	// Appends counts log appends issued (outputs, change log, control).
	Appends atomic.Uint64
	// AppendBatches counts group commits the batcher shipped;
	// BatchedRecords counts the appends they carried. BatchedRecords /
	// AppendBatches is the realized batch size.
	AppendBatches  atomic.Uint64
	BatchedRecords atomic.Uint64
	// BatchStalls counts batch submissions that blocked because the
	// in-flight append window was full (output backpressure).
	BatchStalls atomic.Uint64
	// CommitStalls counts commit ticks that had to wait for a previous
	// in-flight commit (Kafka transactions, aligned checkpoints).
	CommitStalls atomic.Uint64
	// ChangeRecords counts state-change records written.
	ChangeRecords atomic.Uint64
	// RecoveredChanges counts change-log records replayed at recovery
	// (Table 4 reports this).
	RecoveredChanges atomic.Uint64
	// RecoveredFromCheckpoint reports whether recovery loaded a state
	// checkpoint (1) or replayed the full change log (0).
	RecoveredFromCheckpoint atomic.Uint64
	// RecoveryNanos is the duration of the last recovery (Table 4).
	RecoveryNanos atomic.Int64
	// Retries counts log operations re-attempted after a transient
	// fault (crashed shard, partition, unreachable quorum).
	Retries atomic.Uint64
	// CheckpointDecodeFailures counts corrupt marker checkpoints that
	// forced recovery to fall back to full change-log replay.
	CheckpointDecodeFailures atomic.Uint64
	// Cursor counts the streaming read plane's activity on the task's
	// input loop: Cursor.BatchReads is the read round trips the hot
	// path paid, Cursor.Records the records they carried (the dual of
	// AppendBatches / BatchedRecords on the write side).
	Cursor sharedlog.CursorStats
	// RecoveryCursor isolates the cursor activity of recovery's replay
	// phase, so the recovery experiment can count replay round trips
	// without input-loop noise.
	RecoveryCursor sharedlog.CursorStats
}

// QueryMetrics aggregates counters across a query's current tasks.
type QueryMetrics struct {
	Processed, Emitted, DroppedUncommitted, DroppedDuplicate uint64
	DroppedBelowFloor                                        uint64
	Markers, MarkerBytes, MarkerBytesUnshrunk, Appends       uint64
	AppendBatches, BatchedRecords, BatchStalls               uint64
	CommitStalls, ChangeRecords, RecoveredChanges            uint64
	Retries, CheckpointDecodeFailures                        uint64

	// Streaming read plane (input loops + recovery replay combined,
	// except the Recovery* pair, which is the replay phase alone).
	CursorOpens, CursorBatchReads, CursorRecords  uint64
	CursorPrefetchHits, CursorPrefetchMisses      uint64
	CursorInvalidations                           uint64
	RecoveryBatchReads, RecoveryBatchReadsRecords uint64
}

// Add folds one task's metrics into the aggregate.
func (q *QueryMetrics) Add(m *TaskMetrics) {
	q.Processed += m.Processed.Load()
	q.Emitted += m.Emitted.Load()
	q.DroppedUncommitted += m.DroppedUncommitted.Load()
	q.DroppedDuplicate += m.DroppedDuplicate.Load()
	q.DroppedBelowFloor += m.DroppedBelowFloor.Load()
	q.Markers += m.Markers.Load()
	q.MarkerBytes += m.MarkerBytes.Load()
	q.MarkerBytesUnshrunk += m.MarkerBytesUnshrunk.Load()
	q.Appends += m.Appends.Load()
	q.AppendBatches += m.AppendBatches.Load()
	q.BatchedRecords += m.BatchedRecords.Load()
	q.BatchStalls += m.BatchStalls.Load()
	q.CommitStalls += m.CommitStalls.Load()
	q.ChangeRecords += m.ChangeRecords.Load()
	q.RecoveredChanges += m.RecoveredChanges.Load()
	q.Retries += m.Retries.Load()
	q.CheckpointDecodeFailures += m.CheckpointDecodeFailures.Load()
	q.CursorOpens += m.Cursor.Opens.Load() + m.RecoveryCursor.Opens.Load()
	q.CursorBatchReads += m.Cursor.BatchReads.Load() + m.RecoveryCursor.BatchReads.Load()
	q.CursorRecords += m.Cursor.Records.Load() + m.RecoveryCursor.Records.Load()
	q.CursorPrefetchHits += m.Cursor.PrefetchHits.Load() + m.RecoveryCursor.PrefetchHits.Load()
	q.CursorPrefetchMisses += m.Cursor.PrefetchMisses.Load() + m.RecoveryCursor.PrefetchMisses.Load()
	q.CursorInvalidations += m.Cursor.Invalidations.Load() + m.RecoveryCursor.Invalidations.Load()
	q.RecoveryBatchReads += m.RecoveryCursor.BatchReads.Load()
	q.RecoveryBatchReadsRecords += m.RecoveryCursor.Records.Load()
}
