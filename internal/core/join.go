package core

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Join operators (paper §4: stream-stream inner join, stream-table
// inner join, table-table inner join), following Kafka Streams
// algorithms. Joins are two-input processors: port 0 is the left input,
// port 1 the right. Both inputs must be co-partitioned on the join key
// (the topology repartitions to guarantee it, paper §3.2 "Reading from
// multiple inputs").

// Joiner combines a left and right value into the joined output value.
type Joiner func(key, left, right []byte) []byte

// streamStreamJoin buffers both sides in state and emits a join result
// for every pair of records with equal keys whose event times are
// within the window of each other.
type streamStreamJoin struct {
	name   string
	window time.Duration
	joiner Joiner
	ctx    ProcContext
	seq    uint64
}

// StreamStreamJoin builds a windowed stream-stream inner join.
func StreamStreamJoin(name string, window time.Duration, joiner Joiner) Processor {
	return &streamStreamJoin{name: name, window: window, joiner: joiner}
}

func (j *streamStreamJoin) Open(ctx ProcContext) error {
	j.ctx = ctx
	return nil
}

// Buffer layout: <name>/<side>/<key>/<eventTime:be64>/<seq:be64> -> value.
// Event-time-ordered keys let eviction scan old entries first.
func (j *streamStreamJoin) bufKey(side int, key []byte, et int64, seq uint64) string {
	var ts [16]byte
	binary.BigEndian.PutUint64(ts[:8], uint64(et))
	binary.BigEndian.PutUint64(ts[8:], seq)
	return fmt.Sprintf("%s/%d/%s/%s", j.name, side, key, ts[:])
}

func (j *streamStreamJoin) Process(port int, d Datum, emit Emit) error {
	if port != 0 && port != 1 {
		return fmt.Errorf("stream-stream join: bad port %d", port)
	}
	st := j.ctx.Store()
	j.seq++
	st.Put(j.bufKey(port, d.Key, d.EventTime, j.seq), d.Value)

	// Scan the opposite side's buffer for this key within the window.
	// The scan is the join's bulk work; charge each visited entry so the
	// cooperative engine yields between batches when buffers grow large.
	other := 1 - port
	win := j.window.Microseconds()
	prefix := fmt.Sprintf("%s/%d/%s/", j.name, other, d.Key)
	st.Range(prefix, func(k string, v []byte) bool {
		j.ctx.Charge(1)
		rest := []byte(k[len(prefix):])
		if len(rest) < 16 {
			return true
		}
		et := int64(binary.BigEndian.Uint64(rest[:8]))
		if et < d.EventTime-win {
			return true // too old for this record; keep scanning
		}
		if et > d.EventTime+win {
			return false // sorted by time: all later entries out of window
		}
		var left, right []byte
		if port == 0 {
			left, right = d.Value, v
		} else {
			left, right = v, d.Value
		}
		out := d.EventTime
		if et > out {
			out = et
		}
		emit(0, Datum{Key: d.Key, Value: j.joiner(d.Key, left, right), EventTime: out})
		return true
	})
	j.evict(port, d)
	return nil
}

// evict drops buffered entries of this key older than twice the window
// behind the newest record, bounding state size.
func (j *streamStreamJoin) evict(port int, d Datum) {
	st := j.ctx.Store()
	horizon := d.EventTime - 2*j.window.Microseconds()
	if horizon <= 0 {
		return
	}
	for side := 0; side < 2; side++ {
		prefix := fmt.Sprintf("%s/%d/%s/", j.name, side, d.Key)
		var dead []string
		st.Range(prefix, func(k string, v []byte) bool {
			j.ctx.Charge(1)
			rest := []byte(k[len(prefix):])
			if len(rest) < 16 {
				return true
			}
			if int64(binary.BigEndian.Uint64(rest[:8])) >= horizon {
				return false
			}
			dead = append(dead, k)
			return true
		})
		for _, k := range dead {
			st.Delete(k)
		}
	}
	_ = port
}

// streamTableJoin joins a stream (port 0) against a materialized table
// (port 1). Table updates upsert state; stream records look the key up.
type streamTableJoin struct {
	name   string
	joiner Joiner
	ctx    ProcContext
}

// StreamTableJoin builds a stream-table inner join: stream records that
// find no table row are dropped (inner semantics).
func StreamTableJoin(name string, joiner Joiner) Processor {
	return &streamTableJoin{name: name, joiner: joiner}
}

func (j *streamTableJoin) Open(ctx ProcContext) error {
	j.ctx = ctx
	return nil
}

func (j *streamTableJoin) Process(port int, d Datum, emit Emit) error {
	st := j.ctx.Store()
	tk := j.name + "/t/" + string(d.Key)
	switch port {
	case 1: // table side: materialize
		if d.Value == nil {
			st.Delete(tk)
		} else {
			st.Put(tk, d.Value)
		}
		return nil
	case 0: // stream side: lookup
		row, ok := st.Get(tk)
		if !ok {
			return nil
		}
		emit(0, Datum{Key: d.Key, Value: j.joiner(d.Key, d.Value, row), EventTime: d.EventTime})
		return nil
	default:
		return fmt.Errorf("stream-table join: bad port %d", port)
	}
}

// tableTableJoin materializes both sides and emits the joined row
// whenever either side updates and both sides are present.
type tableTableJoin struct {
	name   string
	joiner Joiner
	ctx    ProcContext
}

// TableTableJoin builds a table-table inner join (NEXMark Q3 joins the
// auctions and persons tables this way).
func TableTableJoin(name string, joiner Joiner) Processor {
	return &tableTableJoin{name: name, joiner: joiner}
}

func (j *tableTableJoin) Open(ctx ProcContext) error {
	j.ctx = ctx
	return nil
}

func (j *tableTableJoin) Process(port int, d Datum, emit Emit) error {
	if port != 0 && port != 1 {
		return fmt.Errorf("table-table join: bad port %d", port)
	}
	st := j.ctx.Store()
	mine := fmt.Sprintf("%s/%d/%s", j.name, port, d.Key)
	theirs := fmt.Sprintf("%s/%d/%s", j.name, 1-port, d.Key)
	if d.Value == nil {
		st.Delete(mine)
		return nil
	}
	st.Put(mine, d.Value)
	row, ok := st.Get(theirs)
	if !ok {
		return nil
	}
	var left, right []byte
	if port == 0 {
		left, right = d.Value, row
	} else {
		left, right = row, d.Value
	}
	emit(0, Datum{Key: d.Key, Value: j.joiner(d.Key, left, right), EventTime: d.EventTime})
	return nil
}
