package core

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestEngineModeParse(t *testing.T) {
	cases := []struct {
		in   string
		want EngineMode
		err  bool
	}{
		{"", EngineGoroutine, false},
		{"goroutine", EngineGoroutine, false},
		{"tasklet", EngineTasklet, false},
		{"fibers", 0, true},
	}
	for _, c := range cases {
		got, err := ParseEngineMode(c.in)
		if c.err != (err != nil) || (!c.err && got != c.want) {
			t.Fatalf("ParseEngineMode(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	if EngineGoroutine.String() != "goroutine" || EngineTasklet.String() != "tasklet" {
		t.Fatal("EngineMode.String mismatch")
	}
}

func TestSPSCRing(t *testing.T) {
	wake := make(chan struct{}, 1)
	r := newSPSC[int](4, wake)
	for i := 0; i < 4; i++ {
		if !r.tryPush(i) {
			t.Fatalf("tryPush(%d) failed on non-full ring", i)
		}
	}
	if r.tryPush(99) {
		t.Fatal("tryPush succeeded on a full ring")
	}
	for i := 0; i < 4; i++ {
		v, ok := r.tryPop()
		if !ok || v != i {
			t.Fatalf("tryPop = %d, %v; want %d, true", v, ok, i)
		}
	}
	if _, ok := r.tryPop(); ok {
		t.Fatal("tryPop succeeded on an empty ring")
	}
}

// TestSPSCRingConcurrent drives a full producer/consumer pair through a
// small ring: every element must arrive exactly once, in order, with no
// lost wakeups. Run under -race this is the ring's memory-model check.
func TestSPSCRingConcurrent(t *testing.T) {
	wake := make(chan struct{}, 1)
	r := newSPSC[int](8, wake)
	const n = 50000
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if !r.push(context.Background(), i) {
				done <- fmt.Errorf("push(%d) failed", i)
				return
			}
		}
		done <- nil
	}()
	next := 0
	for next < n {
		if v, ok := r.tryPop(); ok {
			if v != next {
				t.Fatalf("out of order: got %d, want %d", v, next)
			}
			next++
			continue
		}
		select {
		case <-wake:
		case <-time.After(5 * time.Second):
			t.Fatalf("consumer stalled at %d/%d (lost wakeup)", next, n)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestSPSCPushCancel(t *testing.T) {
	wake := make(chan struct{}, 1)
	r := newSPSC[int](2, wake)
	for r.tryPush(0) {
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if r.push(ctx, 1) {
		t.Fatal("push into a full ring succeeded after context cancel")
	}
}

// TestTaskletWordCountExactlyOnce: the cooperative engine must produce
// the goroutine engine's exact output for all three FT protocols.
func TestTaskletWordCountExactlyOnce(t *testing.T) {
	for _, proto := range []FTProtocol{ProtoProgressMarker, ProtoKafkaTxn, ProtoAlignedCheckpoint} {
		proto := proto
		t.Run(fmt.Sprint(proto), func(t *testing.T) {
			c := startWordCountEngine(t, proto, 2, 2, EngineTasklet)
			want := c.send(testLines)
			c.waitCounts(want, 10*time.Second)
		})
	}
}

// TestTaskletWordCountUnderCrash stresses kill/recovery while tasklets
// share event loops: killed tasklets must unregister from their loop,
// and their replacements must re-place and recover exactly-once state.
// Under -race this doubles as the loop/blocker/feeder handoff check.
func TestTaskletWordCountUnderCrash(t *testing.T) {
	c := startWordCountEngine(t, ProtoProgressMarker, 2, 2, EngineTasklet)
	done := make(chan map[string]uint64)
	go func() { done <- sendLoad(c, 1500) }()

	time.Sleep(60 * time.Millisecond)
	if err := c.mgr.Kill("wc/count/0"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if err := c.mgr.Kill("wc/split/1"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if err := c.mgr.Kill("wc/count/0"); err != nil {
		t.Fatal(err)
	}

	want := <-done
	c.waitCounts(want, 30*time.Second)
	if c.mgr.Restarts("wc/count/0") == 0 {
		t.Fatal("task was never restarted")
	}
}

// TestTaskletZombieNeutralized: a zombified tasklet keeps running on
// its loop — so its loop keeps making progress — but the monitor must
// still replace it (the progress exemption does not shield zombies),
// and the zombie's next marker must lose the fencing race.
func TestTaskletZombieNeutralized(t *testing.T) {
	c := startWordCountEngine(t, ProtoProgressMarker, 1, 1, EngineTasklet)
	c.mgr.SetTimeouts(100*time.Millisecond, 0)

	want := sendLoad(c, 400)
	time.Sleep(50 * time.Millisecond)
	if err := c.mgr.Zombify("wc/count/0"); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(15 * time.Second)
	i := 0
	for c.mgr.Restarts("wc/count/0") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("zombie was never replaced")
		}
		c.ingress.Send([]byte(fmt.Sprint(i)), []byte("zomb"), time.Now().UnixMicro())
		want["zomb"]++
		i++
		time.Sleep(2 * time.Millisecond)
	}
	for k, v := range sendLoad(c, 400) {
		want[k] += v
	}
	c.waitCounts(want, 30*time.Second)
}

// TestTaskletBusyTaskNotRestartedAsStale: under staleness timeouts
// shorter than a commit interval, a busy-but-healthy tasklet must not
// be declared stale — the monitor reads loop/task progress, not just
// heartbeat wall-clock age.
func TestTaskletBusyTaskNotRestartedAsStale(t *testing.T) {
	c := startWordCountEngine(t, ProtoProgressMarker, 2, 2, EngineTasklet)
	c.mgr.SetTimeouts(30*time.Millisecond, 10*time.Millisecond)
	want := sendLoad(c, 800)
	c.waitCounts(want, 30*time.Second)
	for _, id := range c.mgr.TaskIDs() {
		if n := c.mgr.Restarts(id); n != 0 {
			t.Fatalf("busy task %s restarted %d times under aggressive staleness timeouts", id, n)
		}
	}
}
