package core

import (
	"encoding/binary"
	"testing"
	"testing/quick"
	"time"
)

func countAgg(_, _, acc []byte) []byte {
	n := uint64(0)
	if len(acc) == 8 {
		n = binary.LittleEndian.Uint64(acc)
	}
	return binary.LittleEndian.AppendUint64(nil, n+1)
}

func sumMerge(_, a, b []byte) []byte {
	var x, y uint64
	if len(a) == 8 {
		x = binary.LittleEndian.Uint64(a)
	}
	if len(b) == 8 {
		y = binary.LittleEndian.Uint64(b)
	}
	return binary.LittleEndian.AppendUint64(nil, x+y)
}

func TestSessionAggregateExtendsWithinGap(t *testing.T) {
	p := SessionAggregate("s", 10*time.Second, EmitPerUpdate, countAgg, sumMerge)
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{
		in(0, Datum{Key: []byte("k"), EventTime: us(100 * time.Second)}),
		in(0, Datum{Key: []byte("k"), EventTime: us(105 * time.Second)}), // within gap: same session
		in(0, Datum{Key: []byte("k"), EventTime: us(130 * time.Second)}), // new session
	})
	if len(out) != 3 {
		t.Fatalf("emissions = %d", len(out))
	}
	// Second update: session [100, 105+10) with count 2.
	s, e, key, err := SplitWindowKey(out[1].d.Key)
	if err != nil || string(key) != "k" {
		t.Fatalf("key = %v %v", key, err)
	}
	if s != us(100*time.Second) || e != us(115*time.Second) {
		t.Fatalf("session bounds = [%d, %d)", s, e)
	}
	if binary.LittleEndian.Uint64(out[1].d.Value) != 2 {
		t.Fatalf("count = %d", binary.LittleEndian.Uint64(out[1].d.Value))
	}
	// Third record starts a fresh session with count 1.
	s, _, _, _ = SplitWindowKey(out[2].d.Key)
	if s != us(130*time.Second) {
		t.Fatalf("new session start = %d", s)
	}
	if binary.LittleEndian.Uint64(out[2].d.Value) != 1 {
		t.Fatal("new session inherited old count")
	}
}

func TestSessionAggregateMergesBridgedSessions(t *testing.T) {
	p := SessionAggregate("s", 10*time.Second, EmitPerUpdate, countAgg, sumMerge)
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{
		in(0, Datum{Key: []byte("k"), EventTime: us(100 * time.Second)}), // session A
		in(0, Datum{Key: []byte("k"), EventTime: us(125 * time.Second)}), // session B (gap 25s > 10s)
		// Bridges A and B: within 10s of A's last (100) ... no, of B's
		// start; 112 is within 10s of 105? A: [100,100], B: [125,125];
		// 112 is within gap of neither... use 109: within A's gap
		// [90,110] and not B. Then 118 bridges [100..109]+gap=119 and
		// B's start-gap=115: yes both.
		in(0, Datum{Key: []byte("k"), EventTime: us(109 * time.Second)}), // extends A
		in(0, Datum{Key: []byte("k"), EventTime: us(118 * time.Second)}), // bridges A and B
	})
	last := out[len(out)-1]
	s, e, _, err := SplitWindowKey(last.d.Key)
	if err != nil {
		t.Fatal(err)
	}
	if s != us(100*time.Second) || e != us(135*time.Second) {
		t.Fatalf("merged bounds = [%d, %d), want [100s, 135s)", s, e)
	}
	// Counts: A had 2, B had 1, bridge adds 1 → 4.
	if got := binary.LittleEndian.Uint64(last.d.Value); got != 4 {
		t.Fatalf("merged count = %d, want 4", got)
	}
}

func TestSessionAggregateEmitFinal(t *testing.T) {
	p := SessionAggregate("s", 10*time.Second, EmitFinal, countAgg, sumMerge)
	ctx := newFakeCtx()
	if err := p.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var fired []Datum
	emit := func(_ int, d Datum) { fired = append(fired, d) }
	must := func(et time.Duration) {
		if err := p.Process(0, Datum{Key: []byte("k"), EventTime: us(et)}, emit); err != nil {
			t.Fatal(err)
		}
	}
	must(100 * time.Second)
	must(105 * time.Second)
	if len(fired) != 0 {
		t.Fatal("session fired while open")
	}
	// Watermark far past the gap: the closed session fires on the key's
	// next record.
	must(200 * time.Second)
	if len(fired) != 1 {
		t.Fatalf("fired = %d, want 1", len(fired))
	}
	s, e, _, _ := SplitWindowKey(fired[0].Key)
	if s != us(100*time.Second) || e != us(115*time.Second) {
		t.Fatalf("fired bounds [%d, %d)", s, e)
	}
	if binary.LittleEndian.Uint64(fired[0].Value) != 2 {
		t.Fatalf("fired count = %d", binary.LittleEndian.Uint64(fired[0].Value))
	}
}

func TestPropertySessionEncoding(t *testing.T) {
	check := func(starts []int64, accs [][]byte) bool {
		var ss []session
		for i, st := range starts {
			var acc []byte
			if i < len(accs) {
				acc = accs[i]
			}
			ss = append(ss, session{Start: st, Last: st + 5, Acc: acc})
		}
		out, err := decodeSessions(encodeSessions(ss))
		if err != nil {
			return false
		}
		if len(out) != len(ss) {
			return false
		}
		for i := range ss {
			if out[i].Start != ss[i].Start || out[i].Last != ss[i].Last {
				return false
			}
			if string(out[i].Acc) != string(ss[i].Acc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeSessions([]byte{1, 2}); err == nil {
		t.Fatal("short blob decoded")
	}
}

func TestStreamTableLeftJoin(t *testing.T) {
	j := StreamTableLeftJoin("j", func(key, stream, table []byte) []byte {
		if table == nil {
			return append(append([]byte{}, stream...), []byte("+none")...)
		}
		return append(append([]byte{}, stream...), table...)
	})
	out := runOp(t, j, []struct {
		port int
		d    Datum
	}{
		in(0, d("k", "S0", 1)), // no row: joins with nil
		in(1, d("k", "T1", 2)),
		in(0, d("k", "S1", 3)), // joins with T1
	})
	if len(out) != 2 {
		t.Fatalf("out = %+v", out)
	}
	if string(out[0].d.Value) != "S0+none" {
		t.Fatalf("left-null join = %q", out[0].d.Value)
	}
	if string(out[1].d.Value) != "S1T1" {
		t.Fatalf("matched join = %q", out[1].d.Value)
	}
}

func TestStreamStreamLeftJoinMatchAndExpiry(t *testing.T) {
	j := StreamStreamLeftJoin("j", 10*time.Second, func(key, l, r []byte) []byte {
		if r == nil {
			return append(append([]byte{}, l...), []byte("+nil")...)
		}
		return append(append([]byte{}, l...), r...)
	})
	out := runOp(t, j, []struct {
		port int
		d    Datum
	}{
		in(0, d("k", "L1", us(10*time.Second))), // will match
		in(1, d("k", "R1", us(12*time.Second))),
		in(0, d("k", "L2", us(40*time.Second))), // will expire unmatched
		// Advance far past L2's window: eviction emits (L2, nil).
		in(0, d("k", "L3", us(200*time.Second))),
	})
	var matched, leftNull bool
	for _, o := range out {
		switch string(o.d.Value) {
		case "L1R1":
			matched = true
		case "L2+nil":
			leftNull = true
		case "L1+nil":
			t.Fatal("matched left emitted a spurious null join")
		}
	}
	if !matched || !leftNull {
		t.Fatalf("matched=%v leftNull=%v (out=%d)", matched, leftNull, len(out))
	}
}

func TestTableTableLeftJoin(t *testing.T) {
	j := TableTableLeftJoin("j", func(key, l, r []byte) []byte {
		if r == nil {
			return append(append([]byte{}, l...), '?')
		}
		return append(append([]byte{}, l...), r...)
	})
	out := runOp(t, j, []struct {
		port int
		d    Datum
	}{
		in(1, d("k", "R1", 1)), // right first: no left row, no output
		in(0, d("k", "L1", 2)), // left arrives: L1R1
		in(1, Datum{Key: []byte("k"), Value: nil, EventTime: 3}), // right deleted: L1?
	})
	if len(out) != 2 || string(out[0].d.Value) != "L1R1" || string(out[1].d.Value) != "L1?" {
		t.Fatalf("out = %+v", out)
	}
}

func TestMergeUnionsPorts(t *testing.T) {
	p := Merge()
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{in(0, d("a", "1", 1)), in(1, d("b", "2", 2)), in(0, d("c", "3", 3))})
	if len(out) != 3 {
		t.Fatalf("out = %+v", out)
	}
	for _, o := range out {
		if o.out != 0 {
			t.Fatalf("merge emitted to port %d", o.out)
		}
	}
}

func TestPeekObservesWithoutChanging(t *testing.T) {
	var seen []string
	p := Peek(func(d Datum) { seen = append(seen, string(d.Value)) })
	out := runOp(t, p, []struct {
		port int
		d    Datum
	}{in(0, d("k", "v1", 1)), in(0, d("k", "v2", 2))})
	if len(out) != 2 || len(seen) != 2 || seen[0] != "v1" {
		t.Fatalf("out=%d seen=%v", len(out), seen)
	}
}
