//go:build impellerdebug

package core

// debugChecks gates the expensive invariant assertions; this build has
// them on, and a marker-ordering violation panics.
const debugChecks = true
