package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"impeller/internal/sharedlog"
)

// Sink consumes a query's final output stream and hands each record to
// a callback.
//
// Ungated (default), it observes records at their emission from the
// output operator — the paper's latency measurement point (§5.3: "the
// interval between the record's event-time ... and its emission time
// from the output operator").
//
// Gated, it behaves like a downstream consumer: it runs the same
// commit-classification as a task and delivers only committed records —
// what exactly-once verification must count.
//
// Either way the sink deduplicates by producer sequence number.
type Sink struct {
	stream     StreamID
	partitions int
	env        *Env
	gated      bool
	tracker    commitTracker
	queue      []queuedBatch
	start      LSN

	// delivery, when set, receives every distinct record for
	// transactional handoff to an external consumer. Submission can
	// block (bounded in-flight window), which is how a consumer outage
	// propagates backpressure into the read loop instead of queueing
	// without bound.
	delivery *DeliverySink

	// safe tracks the oldest LSN the sink has not fully resolved: the
	// head of the gated queue when batches await classification,
	// otherwise the cursor position. Everything below it has been
	// delivered or discarded, so a restarted sink may begin there.
	safe atomic.Uint64

	// OnRecord, when set, observes each distinct output record along
	// with the wall-clock time it became available.
	OnRecord func(r Record, producer TaskID, now time.Time)

	mu            sync.Mutex
	lastSeq       map[TaskID]uint64
	received      uint64
	duplicate     uint64
	dropped       uint64
	trimmedLost   uint64
	undrained     uint64
	invalidations uint64
}

// SinkCounts is a snapshot of a sink's delivery accounting.
type SinkCounts struct {
	// Received counts distinct records handed to OnRecord/delivery.
	Received uint64
	// Duplicates counts records suppressed by producer-seq dedupe.
	Duplicates uint64
	// DroppedUncommitted counts gated records discarded because their
	// batch classified uncommitted (zombie or aborted producer).
	DroppedUncommitted uint64
	// TrimmedLost counts records the sink can prove it never delivered
	// because the log trimmed past them while it lagged: after a
	// cursor invalidation, a gap in a producer's committed sequence
	// numbers is loss, not reordering (committed seqs are contiguous).
	TrimmedLost uint64
	// Undrained counts records still queued awaiting a commit decision
	// when the sink shut down, after the drain-on-cancel sweep ingested
	// every control record already durable in the log. They were
	// neither delivered nor discarded.
	Undrained uint64
	// Invalidations counts cursor invalidations (trims past the read
	// position) the sink recovered from.
	Invalidations uint64
}

// Add accumulates another snapshot (aggregation across the sink
// incarnations of a restarted delivery sink).
func (c *SinkCounts) Add(o SinkCounts) {
	c.Received += o.Received
	c.Duplicates += o.Duplicates
	c.DroppedUncommitted += o.DroppedUncommitted
	c.TrimmedLost += o.TrimmedLost
	c.Undrained += o.Undrained
	c.Invalidations += o.Invalidations
}

// NewSink builds an ungated sink over the final output stream.
func NewSink(stream StreamID, partitions int, env *Env) *Sink {
	return &Sink{stream: stream, partitions: partitions, env: env, lastSeq: make(map[TaskID]uint64)}
}

// NewGatedSink builds a sink that delivers only committed records,
// using the tracker matching env.Protocol. Gated sinks read substream 0
// semantics across all partitions: each partition tag gets its own
// marker tracker.
func NewGatedSink(stream StreamID, partitions int, env *Env) *Sink {
	s := NewSink(stream, partitions, env)
	s.gated = true
	switch env.Protocol {
	case ProtoProgressMarker:
		s.tracker = newMultiTagMarkerTracker(s.tags())
	case ProtoKafkaTxn:
		s.tracker = newTxnTracker()
	default:
		s.tracker = openTracker{}
	}
	return s
}

// SetStart positions the first read at from instead of LSN 0. A
// delivery sink resuming from a persisted ack frontier uses this so the
// restarted cursor skips the prefix that was already acknowledged.
func (s *Sink) SetStart(from LSN) { s.start = from }

func (s *Sink) tags() []sharedlog.Tag {
	tags := make([]sharedlog.Tag, s.partitions)
	for i := range tags {
		tags[i] = DataTag(s.stream, i)
	}
	return tags
}

// SafePos reports the oldest LSN not yet fully resolved by the sink
// (see the safe field). It is monotone while the sink runs.
func (s *Sink) SafePos() LSN { return LSN(s.safe.Load()) }

// Run consumes until ctx is done, streaming the partition substreams
// through one cursor (batched reads, like the task input loop).
// Transient log faults (a crashed shard, a partition) are waited out
// with backoff instead of killing the consumer — records are not lost,
// only delayed.
//
// On cancellation Run does not abandon the queue: a bounded
// non-blocking sweep ingests whatever is already durable in the log, so
// gated batches whose commit markers landed during shutdown are
// delivered (or discarded) rather than dropped. Anything still lacking
// a commit decision after the sweep is counted in Counts().Undrained.
func (s *Sink) Run(ctx context.Context) error {
	if s.env.loops != nil && s.delivery == nil {
		// Cooperative engine: the sink runs as a tasklet on the shared
		// loop pool. Delivery sinks keep the dedicated goroutine — their
		// submit path blocks on the in-flight window by design.
		return s.runTasklet(ctx)
	}
	tags := s.tags()
	tagIndex := make(map[sharedlog.Tag]int, len(tags))
	for i, t := range tags {
		tagIndex[t] = i
	}
	retry := newRetrier(s.env, "", nil)
	readBatch := s.env.ReadBatch
	if readBatch <= 0 {
		readBatch = DefaultReadBatch
	}
	s.safe.Store(uint64(s.start))
	cur := s.env.Log.OpenCursor(tags, s.start)
	for {
		recs, err := cur.NextBatchBlocking(ctx, readBatch)
		if err != nil {
			if ctx.Err() != nil {
				s.shutdownSweep(cur, tags, tagIndex, readBatch)
				return ctx.Err()
			}
			if errors.Is(err, sharedlog.ErrCursorInvalidated) {
				s.noteInvalidation()
				cur.Seek(s.env.Log.TrimHorizon())
				continue
			}
			if sharedlog.IsRetryable(err) {
				if !retry.sleep(ctx, retry.backoff(0)) {
					s.shutdownSweep(cur, tags, tagIndex, readBatch)
					return ctx.Err()
				}
				continue
			}
			return err
		}
		for _, rec := range recs {
			if err := s.ingest(ctx, rec, tags, tagIndex); err != nil {
				return err
			}
		}
		if len(recs) > 0 {
			s.updateSafe(recs[len(recs)-1].LSN + 1)
		}
	}
}

// ingest decodes and routes one log record: control records observe the
// tracker and drain the queue; data records deliver (ungated) or queue
// for classification (gated).
func (s *Sink) ingest(ctx context.Context, rec *sharedlog.Record, tags []sharedlog.Tag, tagIndex map[sharedlog.Tag]int) error {
	b, err := DecodeBatch(rec.Payload)
	if err != nil {
		return err
	}
	if b.Kind.isControl() {
		if s.gated {
			if err := s.observe(b, rec.LSN); err != nil {
				return err
			}
			s.drain(ctx, tags)
		}
		return nil
	}
	if b.Kind != KindData && b.Kind != KindSource {
		return nil
	}
	port := 0
	for _, t := range rec.Tags {
		if i, ok := tagIndex[t]; ok {
			port = i
			break
		}
	}
	if !s.gated {
		s.deliver(ctx, port, rec.LSN, b)
		return nil
	}
	s.queue = append(s.queue, queuedBatch{lsn: rec.LSN, port: port, batch: b})
	s.drain(ctx, tags)
	return nil
}

// shutdownSweep is the drain-on-cancel path: a bounded non-blocking
// read of records already durable in the log, so commit markers that
// raced the shutdown still classify their queued batches. It then
// counts the still-unclassified remainder as undrained.
func (s *Sink) shutdownSweep(cur *sharedlog.Cursor, tags []sharedlog.Tag, tagIndex map[sharedlog.Tag]int, readBatch int) {
	const maxSweep = 4096
	swept := 0
	for swept < maxSweep {
		recs, err := cur.NextBatch(readBatch)
		if err != nil {
			if errors.Is(err, sharedlog.ErrCursorInvalidated) {
				s.noteInvalidation()
				cur.Seek(s.env.Log.TrimHorizon())
				continue
			}
			break
		}
		if len(recs) == 0 {
			break
		}
		swept += len(recs)
		for _, rec := range recs {
			if err := s.ingest(context.Background(), rec, tags, tagIndex); err != nil {
				break
			}
		}
		s.updateSafe(recs[len(recs)-1].LSN + 1)
	}
	var undrained uint64
	for _, qb := range s.queue {
		undrained += uint64(len(qb.batch.Records))
	}
	s.mu.Lock()
	s.undrained = undrained
	s.mu.Unlock()
}

// updateSafe advances the resolved frontier after a batch of ingests:
// next is one past the last ingested LSN, clamped back to the gated
// queue head when batches still await classification.
func (s *Sink) updateSafe(next LSN) {
	if len(s.queue) > 0 && s.queue[0].lsn < next {
		next = s.queue[0].lsn
	}
	if uint64(next) > s.safe.Load() {
		s.safe.Store(uint64(next))
	}
}

func (s *Sink) noteInvalidation() {
	s.mu.Lock()
	s.invalidations++
	s.mu.Unlock()
}

func (s *Sink) observe(b *Batch, lsn LSN) error {
	if mt, ok := s.tracker.(*multiTagMarkerTracker); ok {
		return mt.observe(b, lsn)
	}
	return s.tracker.observeControl(b, lsn)
}

func (s *Sink) drain(ctx context.Context, tags []sharedlog.Tag) {
	for len(s.queue) > 0 {
		head := s.queue[0]
		var c classification
		if mt, ok := s.tracker.(*multiTagMarkerTracker); ok {
			c = mt.classifyTagged(tags[head.port], head.batch, head.lsn)
		} else {
			c = s.tracker.classify(head.batch, head.lsn)
		}
		switch c {
		case classCommitted:
			s.queue = s.queue[1:]
			s.deliver(ctx, head.port, head.lsn, head.batch)
		case classUncommitted:
			s.queue = s.queue[1:]
			s.mu.Lock()
			s.dropped += uint64(len(head.batch.Records))
			s.mu.Unlock()
		case classUnknown:
			return
		}
	}
}

func (s *Sink) deliver(ctx context.Context, port int, lsn LSN, b *Batch) {
	now := s.env.Clock.Now()
	var accepted []int
	s.mu.Lock()
	armed := s.invalidations > 0
	for i := range b.Records {
		r := &b.Records[i]
		last, seen := s.lastSeq[b.Producer]
		if seen && r.Seq <= last {
			s.duplicate++
			continue
		}
		if armed && seen && r.Seq > last+1 {
			// A committed stream carries contiguous per-producer seqs
			// (retried producers reuse them), so a gap after a trim
			// invalidation is records the trim took before delivery.
			s.trimmedLost += r.Seq - last - 1
		}
		s.lastSeq[b.Producer] = r.Seq
		s.received++
		if s.OnRecord != nil {
			s.OnRecord(*r, b.Producer, now)
		}
		if s.delivery != nil {
			accepted = append(accepted, i)
		}
	}
	s.mu.Unlock()
	// Hand accepted records to the delivery window outside s.mu:
	// submission blocks when the window is full (backpressure), and
	// Counts() must stay reachable meanwhile.
	for _, i := range accepted {
		s.delivery.submit(ctx, port, lsn, b.Producer, b.Records[i])
	}
}

// Counts reports the sink's delivery accounting so far.
func (s *Sink) Counts() SinkCounts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SinkCounts{
		Received:           s.received,
		Duplicates:         s.duplicate,
		DroppedUncommitted: s.dropped,
		TrimmedLost:        s.trimmedLost,
		Undrained:          s.undrained,
		Invalidations:      s.invalidations,
	}
}
