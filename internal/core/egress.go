package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"impeller/internal/sharedlog"
)

// Sink consumes a query's final output stream and hands each record to
// a callback.
//
// Ungated (default), it observes records at their emission from the
// output operator — the paper's latency measurement point (§5.3: "the
// interval between the record's event-time ... and its emission time
// from the output operator").
//
// Gated, it behaves like a downstream consumer: it runs the same
// commit-classification as a task and delivers only committed records —
// what exactly-once verification must count.
//
// Either way the sink deduplicates by producer sequence number.
type Sink struct {
	stream     StreamID
	partitions int
	env        *Env
	gated      bool
	tracker    commitTracker
	queue      []queuedBatch

	// OnRecord, when set, observes each distinct output record along
	// with the wall-clock time it became available.
	OnRecord func(r Record, producer TaskID, now time.Time)

	mu        sync.Mutex
	lastSeq   map[TaskID]uint64
	received  uint64
	duplicate uint64
	dropped   uint64
}

// NewSink builds an ungated sink over the final output stream.
func NewSink(stream StreamID, partitions int, env *Env) *Sink {
	return &Sink{stream: stream, partitions: partitions, env: env, lastSeq: make(map[TaskID]uint64)}
}

// NewGatedSink builds a sink that delivers only committed records,
// using the tracker matching env.Protocol. Gated sinks read substream 0
// semantics across all partitions: each partition tag gets its own
// marker tracker.
func NewGatedSink(stream StreamID, partitions int, env *Env) *Sink {
	s := NewSink(stream, partitions, env)
	s.gated = true
	switch env.Protocol {
	case ProtoProgressMarker:
		s.tracker = newMultiTagMarkerTracker(s.tags())
	case ProtoKafkaTxn:
		s.tracker = newTxnTracker()
	default:
		s.tracker = openTracker{}
	}
	return s
}

func (s *Sink) tags() []sharedlog.Tag {
	tags := make([]sharedlog.Tag, s.partitions)
	for i := range tags {
		tags[i] = DataTag(s.stream, i)
	}
	return tags
}

// Run consumes until ctx is done, streaming the partition substreams
// through one cursor (batched reads, like the task input loop).
// Transient log faults (a crashed shard, a partition) are waited out
// with backoff instead of killing the consumer — records are not lost,
// only delayed.
func (s *Sink) Run(ctx context.Context) error {
	tags := s.tags()
	tagIndex := make(map[sharedlog.Tag]int, len(tags))
	for i, t := range tags {
		tagIndex[t] = i
	}
	retry := newRetrier(s.env, "", nil)
	readBatch := s.env.ReadBatch
	if readBatch <= 0 {
		readBatch = DefaultReadBatch
	}
	cur := s.env.Log.OpenCursor(tags, 0)
	for {
		recs, err := cur.NextBatchBlocking(ctx, readBatch)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, sharedlog.ErrCursorInvalidated) {
				cur.Seek(s.env.Log.TrimHorizon())
				continue
			}
			if sharedlog.IsRetryable(err) {
				if !retry.sleep(ctx, retry.backoff(0)) {
					return ctx.Err()
				}
				continue
			}
			return err
		}
		for _, rec := range recs {
			b, err := DecodeBatch(rec.Payload)
			if err != nil {
				return err
			}
			if b.Kind.isControl() {
				if s.gated {
					if err := s.observe(b, rec.LSN); err != nil {
						return err
					}
					s.drain(tags)
				}
				continue
			}
			if b.Kind != KindData && b.Kind != KindSource {
				continue
			}
			port := 0
			for _, t := range rec.Tags {
				if i, ok := tagIndex[t]; ok {
					port = i
					break
				}
			}
			if !s.gated {
				s.deliver(b)
				continue
			}
			s.queue = append(s.queue, queuedBatch{lsn: rec.LSN, port: port, batch: b})
			s.drain(tags)
		}
	}
}

func (s *Sink) observe(b *Batch, lsn LSN) error {
	if mt, ok := s.tracker.(*multiTagMarkerTracker); ok {
		return mt.observe(b, lsn)
	}
	return s.tracker.observeControl(b, lsn)
}

func (s *Sink) drain(tags []sharedlog.Tag) {
	for len(s.queue) > 0 {
		head := s.queue[0]
		var c classification
		if mt, ok := s.tracker.(*multiTagMarkerTracker); ok {
			c = mt.classifyTagged(tags[head.port], head.batch, head.lsn)
		} else {
			c = s.tracker.classify(head.batch, head.lsn)
		}
		switch c {
		case classCommitted:
			s.queue = s.queue[1:]
			s.deliver(head.batch)
		case classUncommitted:
			s.queue = s.queue[1:]
			s.mu.Lock()
			s.dropped += uint64(len(head.batch.Records))
			s.mu.Unlock()
		case classUnknown:
			return
		}
	}
}

func (s *Sink) deliver(b *Batch) {
	now := s.env.Clock.Now()
	s.mu.Lock()
	for i := range b.Records {
		r := &b.Records[i]
		if r.Seq <= s.lastSeq[b.Producer] {
			s.duplicate++
			continue
		}
		s.lastSeq[b.Producer] = r.Seq
		s.received++
		if s.OnRecord != nil {
			s.OnRecord(*r, b.Producer, now)
		}
	}
	s.mu.Unlock()
}

// Counts reports distinct, duplicate, and (gated) discarded-uncommitted
// record counts seen so far.
func (s *Sink) Counts() (received, duplicates, droppedUncommitted uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received, s.duplicate, s.dropped
}
