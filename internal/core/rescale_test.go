package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"impeller/internal/kvstore"
	"impeller/internal/sharedlog"
)

// rescaleQuery is the word-count pipeline with rescale headroom on the
// stateful stage: 8 key groups over an initial 2 slots. The split
// stage's output is partitioned into the consumer's key-group count.
func rescaleQuery(keyGroups, slots int) *Query {
	q := wordCountQuery(1, slots, 1)
	q.Stages[0].Outputs[0].Partitions = keyGroups
	q.Stages[1].KeyGroups = keyGroups
	return q
}

func startRescaleCluster(t *testing.T, engine EngineMode) *testCluster {
	t.Helper()
	env := &Env{
		Log:              sharedlog.Open(sharedlog.Config{}),
		Checkpoints:      kvstore.Open(kvstore.Config{}),
		Protocol:         ProtoProgressMarker,
		CommitInterval:   20 * time.Millisecond,
		SnapshotInterval: 60 * time.Millisecond,
		Engine:           engine,
		EngineLoops:      2,
	}
	mgr, err := NewManager(env, rescaleQuery(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	c := &testCluster{t: t, env: mgr.Env(), mgr: mgr, cancel: cancel, counts: make(map[string]uint64)}
	c.ingress = NewIngress("ingress/0", "lines", 1, mgr.Env(), nil)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		_ = c.ingress.Run(ctx, 5*time.Millisecond)
	}()
	c.sink = NewGatedSink("counts", 1, mgr.Env())
	c.sink.OnRecord = func(r Record, _ TaskID, _ time.Time) {
		c.mu.Lock()
		c.counts[string(r.Key)] = bytesToCount(r.Value)
		c.mu.Unlock()
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		_ = c.sink.Run(ctx)
	}()
	t.Cleanup(func() {
		c.cancel()
		c.mgr.Stop()
		c.wg.Wait()
		c.env.Log.Close()
	})
	return c
}

func bytesToCount(v []byte) uint64 {
	var n uint64
	for i := 0; i < 8 && i < len(v); i++ {
		n |= uint64(v[i]) << (8 * i)
	}
	return n
}

func addCounts(dst, src map[string]uint64) {
	for k, v := range src {
		dst[k] += v
	}
}

// runLiveRescale drives a split (2→4) and a merge (4→1) of the stateful
// count stage on the live log, with traffic flowing across both
// transitions. Counts are cumulative per key, so any lost or duplicated
// record — a group replayed from the wrong floor, a zombie's output
// surviving, state dropped in the handoff — shows up as a wrong total.
func runLiveRescale(t *testing.T, engine EngineMode) {
	c := startRescaleCluster(t, engine)
	const stage = "wc/count"

	want := c.send(testLines)
	c.waitCounts(want, 10*time.Second)

	epoch, err := c.mgr.Rescale(context.Background(), stage, 4)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("split committed epoch %d, want 2", epoch)
	}
	if got := len(c.mgr.TaskIDs()); got != 1+4 {
		t.Fatalf("task count after split: %d, want 5", got)
	}
	addCounts(want, c.send(testLines))
	c.waitCounts(want, 15*time.Second)

	epoch, err = c.mgr.Rescale(context.Background(), stage, 1)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 3 {
		t.Fatalf("merge committed epoch %d, want 3", epoch)
	}
	addCounts(want, c.send(testLines))
	c.waitCounts(want, 15*time.Second)

	if got := c.mgr.AssignmentEpoch(stage); got != 3 {
		t.Fatalf("assignment epoch %d, want 3", got)
	}
	// The transitions fenced old instances; the fences must have been
	// observed as conditional-append rejections (zombies neutralized by
	// the log, paper §3.4).
	if c.env.Log.Stats().CondFailed == 0 {
		t.Fatal("no conditional append was ever rejected; fencing untested")
	}
}

func TestRescaleLiveSplitMerge(t *testing.T) {
	runLiveRescale(t, EngineGoroutine)
}

func TestRescaleLiveSplitMergeTasklet(t *testing.T) {
	runLiveRescale(t, EngineTasklet)
}

// TestRescaleValidation pins the argument checks.
func TestRescaleValidation(t *testing.T) {
	c := startRescaleCluster(t, EngineGoroutine)
	ctx := context.Background()
	if _, err := c.mgr.Rescale(ctx, "nope", 2); err == nil {
		t.Fatal("unknown stage accepted")
	}
	if _, err := c.mgr.Rescale(ctx, "wc/count", 0); err == nil {
		t.Fatal("zero slots accepted")
	}
	if _, err := c.mgr.Rescale(ctx, "wc/count", 9); err == nil {
		t.Fatal("slots beyond key groups accepted")
	}
	if epoch, err := c.mgr.Rescale(ctx, "wc/count", 2); err != nil || epoch != 1 {
		t.Fatalf("no-op rescale: epoch %d err %v", epoch, err)
	}
}

// TestGroupReplayZombieChangeAfterSuccessor pins the ordering hazard
// that makes group-stream committedness subtle: a fenced zombie's change
// batches are plain appends, so they can land in the group stream after
// the successor instance's committed change but before the successor's
// covering marker. The zombie record must be dropped — it can never be
// covered — and must not evict the successor's buffered committed
// changes.
func TestGroupReplayZombieChangeAfterSuccessor(t *testing.T) {
	prod := TaskID("wc/count/1")
	change := func(inst uint64, tag string) *Batch {
		return &Batch{Kind: KindChange, Producer: prod, Instance: inst,
			Records: []Record{{Key: []byte(tag)}}}
	}
	marker := func(inst uint64, changeFirst LSN) *Batch {
		mk := &ProgressMarker{InputEnd: 5, ChangeFirst: changeFirst, SeqEnd: 1}
		return &Batch{Kind: KindMarker, Producer: prod, Instance: inst, Control: mk.Encode()}
	}

	var applied []string
	g := newGroupReplay(func(b *Batch) { applied = append(applied, string(b.Records[0].Key)) })

	feed := []struct {
		lsn LSN
		b   *Batch
	}{
		{10, change(1, "i1-a")},
		{15, marker(1, 10)},     // instance 1 commits i1-a
		{24, change(3, "i3-a")}, // successor's change, committed by the marker at 39
		{36, change(1, "zombie")},
		{37, change(1, "zombie")}, // fenced instance 1 flushing late
		{39, marker(3, 24)},       // successor's covering marker
	}
	for _, f := range feed {
		if err := g.observe(f.lsn, f.b); err != nil {
			t.Fatalf("observe lsn %d: %v", f.lsn, err)
		}
	}
	want := []string{"i1-a", "i3-a"}
	if len(applied) != len(want) || applied[0] != want[0] || applied[1] != want[1] {
		t.Fatalf("applied %v, want %v", applied, want)
	}
	if c, ok := g.covered(); !ok || c != 39 {
		t.Fatalf("covered = %d,%v; want 39,true", c, ok)
	}

	// A stale marker from the fenced instance (impossible on a real log —
	// the conditional append rejects it — but screened defensively) must
	// not regress instance tracking or apply anything.
	if err := g.observe(41, marker(1, 36)); err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 {
		t.Fatalf("stale marker applied changes: %v", applied)
	}
}

// TestRescaleAbortedMergeTombstone pins the aborted-transition hazard:
// a merge attempt that dies after fencing — and tombstoning — its
// retired slots leaves those tombstones on the log while the epoch CAS
// never happens, so the slots live on under the old assignment. Both
// readers of a slot's last marker must skip the orphaned tombstone:
// the revived slot's recovery (resuming from its empty InputEnd with no
// handoff floor under the uncommitted epoch re-commits the slot's whole
// history) and the committed attempt's floor computation (the tombstone
// would publish floor zero for every migrating group). The stage is
// stateless, so no migrated _seq state can mask a re-commit: any key
// delivered twice fails immediately.
func TestRescaleAbortedMergeTombstone(t *testing.T) {
	env := &Env{
		Log:            sharedlog.Open(sharedlog.Config{}),
		Checkpoints:    kvstore.Open(kvstore.Config{}),
		Protocol:       ProtoProgressMarker,
		CommitInterval: 20 * time.Millisecond,
	}
	q := &Query{
		Name: "fw",
		Stages: []*Stage{{
			Name:              "fw/pass",
			Parallelism:       2,
			KeyGroups:         8,
			Inputs:            []StreamID{"in"},
			Outputs:           []OutputSpec{{Stream: "out", Partitions: 1}},
			NewProcessor:      func() Processor { return Map(func(d Datum) *Datum { return &d }) },
			UpstreamProducers: []int{1},
		}},
	}
	mgr, err := NewManager(env, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	ingress := NewIngress("ingress/0", "in", 8, mgr.Env(), nil)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = ingress.Run(ctx, 5*time.Millisecond)
	}()
	var mu sync.Mutex
	delivered := make(map[string]int)
	sink := NewGatedSink("out", 1, mgr.Env())
	sink.OnRecord = func(r Record, _ TaskID, _ time.Time) {
		mu.Lock()
		delivered[string(r.Key)]++
		mu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = sink.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		mgr.Stop()
		wg.Wait()
		env.Log.Close()
	})

	next := 0
	send := func(n int) {
		for i := 0; i < n; i++ {
			key := []byte(fmt.Sprintf("k%d", next))
			next++
			ingress.Send(key, []byte("v"), time.Now().UnixMicro())
		}
	}
	waitOnce := func(total int) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			mu.Lock()
			n := len(delivered)
			for k, c := range delivered {
				if c != 1 {
					mu.Unlock()
					t.Fatalf("key %s delivered %d times", k, c)
				}
			}
			mu.Unlock()
			if n == total {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("delivered %d of %d keys", n, total)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	send(40)
	waitOnce(40)

	// Doomed merge: fences both slots and tombstones the retired one,
	// then dies before the epoch CAS.
	abort := errors.New("die mid-transition")
	doomed := &Rescaler{M: mgr, Hook: func(p string) error {
		if p == "fenced" {
			return abort
		}
		return nil
	}}
	if _, err := doomed.Rescale(ctx, "fw/pass", 1); !errors.Is(err, abort) {
		t.Fatalf("doomed attempt returned %v", err)
	}
	if e := mgr.AssignmentEpoch("fw/pass"); e != 1 {
		t.Fatalf("aborted attempt moved the epoch to %d", e)
	}

	// New traffic forces the fenced zombies onto their next conditional
	// append; the monitor revives them under the old epoch, and the
	// revived slots must resume from their real markers, not the
	// orphaned tombstone.
	send(40)
	waitOnce(80)

	// The committed merge's floors must likewise come from the real
	// markers, not the doomed attempt's tombstone.
	if epoch, err := mgr.Rescale(ctx, "fw/pass", 1); err != nil || epoch != 2 {
		t.Fatalf("committed merge: epoch %d, err %v", epoch, err)
	}
	send(40)
	waitOnce(120)

	if env.Log.Stats().CondFailed == 0 {
		t.Fatal("no conditional append was ever rejected; fencing untested")
	}
}
