package core

import (
	"fmt"
	"time"

	"impeller/internal/kvstore"
	"impeller/internal/sharedlog"
	"impeller/internal/sim"
)

// OutputSpec describes one output stream of a stage: where records go
// and how they are partitioned across the downstream substreams.
type OutputSpec struct {
	// Stream is the output stream name.
	Stream StreamID
	// Partitions is the downstream substream count (the consuming
	// stage's key-group count; its parallelism when it has no rescale
	// headroom).
	Partitions int
	// Broadcast sends every record to all substreams instead of
	// hash-partitioning by key (used for small dimension tables).
	Broadcast bool
}

func (o OutputSpec) substreamFor(key []byte) int {
	return Partition(key, o.Partitions)
}

// Tags returns every substream tag of this output.
func (o OutputSpec) Tags() []Tag {
	tags := make([]Tag, o.Partitions)
	for i := range tags {
		tags[i] = DataTag(o.Stream, i)
	}
	return tags
}

// Stage is one stage of a stream query: a pipelined operator chain
// executed in parallel by Parallelism tasks, each consuming one
// substream of every input stream (paper §2.1).
type Stage struct {
	// Name identifies the stage; task ids are "<query>/<stage>/<sub>".
	Name string
	// Parallelism is the initial task count. Under the progress-marker
	// protocol it can change at runtime via Manager.Rescale; Parallelism
	// then only seeds the epoch-1 assignment.
	Parallelism int
	// KeyGroups is the stage's fixed key-group count: the substream
	// count of each input stream and the unit of state migration at
	// rescale. Parallelism can be raised at runtime up to KeyGroups but
	// never beyond it. 0 defaults to Parallelism (no rescale headroom,
	// the identity group→task map).
	KeyGroups int
	// Inputs are the stream names feeding this stage. Input i arrives
	// at processor port i. All inputs must have KeyGroups substreams.
	Inputs []StreamID
	// Outputs are the stage's output streams, one per processor port.
	Outputs []OutputSpec
	// NewProcessor builds a fresh processor for a task instance.
	NewProcessor func() Processor
	// Stateful marks stages whose processors use the state store; only
	// stateful tasks write change logs and checkpoints.
	Stateful bool
	// UpstreamProducers lists the producer counts feeding each input
	// stream (the upstream stage's parallelism, or the ingress writer
	// count); barrier alignment needs to know how many producers feed
	// each substream.
	UpstreamProducers []int
}

func (s *Stage) validate() error {
	if s.Name == "" {
		return fmt.Errorf("core: stage with empty name")
	}
	if s.Parallelism <= 0 {
		return fmt.Errorf("core: stage %s: non-positive parallelism", s.Name)
	}
	if s.KeyGroups == 0 {
		s.KeyGroups = s.Parallelism
	}
	if s.KeyGroups < s.Parallelism {
		return fmt.Errorf("core: stage %s: %d key groups < parallelism %d", s.Name, s.KeyGroups, s.Parallelism)
	}
	if len(s.Inputs) == 0 {
		return fmt.Errorf("core: stage %s: no inputs", s.Name)
	}
	if len(s.Outputs) == 0 {
		return fmt.Errorf("core: stage %s: no outputs", s.Name)
	}
	if s.NewProcessor == nil {
		return fmt.Errorf("core: stage %s: nil NewProcessor", s.Name)
	}
	if len(s.UpstreamProducers) != 0 && len(s.UpstreamProducers) != len(s.Inputs) {
		return fmt.Errorf("core: stage %s: UpstreamProducers length mismatch", s.Name)
	}
	for _, o := range s.Outputs {
		if o.Partitions <= 0 {
			return fmt.Errorf("core: stage %s: output %s has no partitions", s.Name, o.Stream)
		}
	}
	return nil
}

// Query is a DAG of stages plus the configuration shared by its tasks.
type Query struct {
	// Name prefixes task ids.
	Name string
	// Stages in topological order (upstream before downstream).
	Stages []*Stage
}

// Validate checks structural well-formedness.
func (q *Query) Validate() error {
	if q.Name == "" {
		return fmt.Errorf("core: query with empty name")
	}
	if len(q.Stages) == 0 {
		return fmt.Errorf("core: query %s has no stages", q.Name)
	}
	seen := make(map[string]bool)
	for _, s := range q.Stages {
		if err := s.validate(); err != nil {
			return err
		}
		if seen[s.Name] {
			return fmt.Errorf("core: query %s: duplicate stage %s", q.Name, s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// FTProtocol selects the fault-tolerance protocol tasks run (paper §5.1
// evaluates all four within the same engine).
type FTProtocol int

const (
	// ProtoProgressMarker is Impeller's protocol (paper §3.3).
	ProtoProgressMarker FTProtocol = iota
	// ProtoKafkaTxn is Kafka Streams' two-phase transaction protocol
	// implemented over the shared log (paper §3.6, §5.1).
	ProtoKafkaTxn
	// ProtoAlignedCheckpoint is Flink's aligned checkpoint protocol
	// (paper §5.1).
	ProtoAlignedCheckpoint
	// ProtoUnsafe disables the commit protocol entirely (paper §5.3.4);
	// fast, but exactly-once is not guaranteed under failures.
	ProtoUnsafe
)

func (p FTProtocol) String() string {
	switch p {
	case ProtoProgressMarker:
		return "progress-marker"
	case ProtoKafkaTxn:
		return "kafka-txn"
	case ProtoAlignedCheckpoint:
		return "aligned-checkpoint"
	case ProtoUnsafe:
		return "unsafe"
	default:
		return fmt.Sprintf("proto(%d)", int(p))
	}
}

// Env is the shared runtime environment for a query's tasks.
type Env struct {
	// Log is the query's shared log instance (paper §3.1 assumes one
	// log per query).
	Log *sharedlog.Log
	// Checkpoints is the Kvrocks-like checkpoint store.
	Checkpoints *kvstore.Store
	// Clock defaults to the real clock.
	Clock sim.Clock
	// Protocol selects the fault-tolerance protocol.
	Protocol FTProtocol
	// CommitInterval is the progress-marking / transaction / checkpoint
	// interval (paper default 100 ms).
	CommitInterval time.Duration
	// SnapshotInterval is the asynchronous state checkpoint interval
	// (paper default 10 s); 0 disables checkpointing.
	SnapshotInterval time.Duration
	// CoordinatorLatency charges the synchronous coordinator RPCs of
	// the Kafka transaction protocol.
	CoordinatorLatency sim.LatencyModel
	// GC, when set, receives consumed-LSN reports from tasks and
	// checkpointers and periodically trims the log (paper §3.5).
	GC *GCController
	// Faults, if non-nil, lets chaos experiments crash the compute
	// nodes tasks run on: a task whose node (ComputeNode(id)) is
	// crashed fails its in-flight log operations until the node
	// recovers. The shared log consults its own injector for shard and
	// sequencer faults; this one covers the compute side.
	Faults *sim.FaultInjector
	// Retry bounds the transient-fault retry loop around log
	// operations; the zero value selects the defaults.
	Retry RetryPolicy
	// Batch tunes the batched dataplane (task append batchers and the
	// ingress group-commit path); the zero value selects the defaults.
	// MaxRecords: 1 disables coalescing for ablations.
	Batch BatchConfig
	// ReadBatch is the streaming read plane's batch size: how many
	// records a task's input cursor (and recovery's replay cursors) pull
	// per log round trip. 0 selects DefaultReadBatch; 1 degenerates to
	// per-record reads with readahead disabled (the ablation baseline).
	ReadBatch int
	// Seed fixes the retry jitter stream (0 selects a fixed default).
	Seed uint64
	// Engine selects the task execution engine: goroutine-per-task (the
	// default) or the cooperative tasklet engine (one event loop per
	// core; see tasklet.go).
	Engine EngineMode
	// EngineLoops overrides the tasklet engine's worker-loop count; 0
	// selects GOMAXPROCS. Ignored on the goroutine engine.
	EngineLoops int

	// loops is the tasklet engine's loop pool, owned by the manager that
	// holds this env copy (created in Start, closed in Stop).
	loops *loopPool

	// recoveryProbe, if set, is called at named points inside recovery
	// ("marker", "replay", "txn", "aligned") so chaos tests can crash a
	// task mid-recovery deterministically. Test-only.
	recoveryProbe func(TaskID, string)
}

// SetRecoveryProbe installs a hook called at named points inside task
// recovery; chaos tests use it to kill tasks mid-recovery. It must be
// set before the manager starts.
func (e *Env) SetRecoveryProbe(fn func(TaskID, string)) { e.recoveryProbe = fn }

// ComputeNode names the simulated compute node a task runs on, for
// fault injection against Env.Faults. Every instance of a task runs on
// the same node: crashing the node keeps killing replacements until
// the node recovers.
func ComputeNode(id TaskID) string { return "node/" + string(id) }

func (e *Env) withDefaults() *Env {
	out := *e
	if out.Clock == nil {
		out.Clock = sim.RealClock{}
	}
	if out.CommitInterval <= 0 {
		out.CommitInterval = 100 * time.Millisecond
	}
	out.Retry = out.Retry.withDefaults()
	if out.Seed == 0 {
		out.Seed = 1
	}
	return &out
}
