package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"impeller/internal/sharedlog"
)

// The transactional egress layer: exactly-once from the committed-read
// plane all the way to an external consumer.
//
// The gated Sink classifies commit status, but handing records to a
// callback fire-and-forget means a crash between classification and
// delivery silently loses or duplicates output. DeliverySink closes
// that gap with the LogPlayer recipe: sequence-numbered at-least-once
// delivery through a bounded in-flight window, consumer acknowledgments
// folded into a per-(partition, producer) ack frontier that is
// persisted to a dedicated egress-offsets substream, and consumer-side
// dedupe keyed by the same sequence numbers. A restarted sink reads the
// latest frontier and resumes from its LSN, re-delivering only the
// unacknowledged suffix — which the consumer's dedupe absorbs — so the
// guarantee holds at the system boundary, not just the commit point.

// Consumer is the external system a DeliverySink feeds. Deliver is
// called at-least-once per record in per-partition FIFO order; the
// Delivery's (Partition, Producer, Seq) triple identifies a record
// stably across redeliveries, so consumers deduplicate by tracking the
// highest applied Seq per (Partition, Producer).
//
// Returning nil acknowledges the record. Any other error is treated as
// transient and retried with jittered backoff — losing data must be an
// explicit choice, made by wrapping the error with PermanentError.
// After DeliveryOptions.PermanentAttempts permanent failures the record
// routes to the dead-letter substream instead of wedging the window.
type Consumer interface {
	Deliver(ctx context.Context, d *Delivery) error
}

// Delivery is one record handed to a Consumer.
type Delivery struct {
	Stream    StreamID
	Partition int
	// Producer and Seq are the record's exactly-once identity: the
	// producing task and its per-record sequence number.
	Producer TaskID
	Seq      uint64
	// EgressSeq numbers deliveries globally per sink incarnation
	// (1-based, gaps-free at first attempt).
	EgressSeq uint64
	// Attempt is 1 on first delivery and increments per retry.
	Attempt int
	Record  Record
}

// PermanentError marks a consumer error as non-retryable: the record
// is malformed for this consumer and retrying cannot succeed. Unmarked
// errors are assumed transient.
func PermanentError(err error) error { return permanentDeliveryError{err} }

type permanentDeliveryError struct{ err error }

func (e permanentDeliveryError) Error() string { return "permanent: " + e.err.Error() }
func (e permanentDeliveryError) Unwrap() error { return e.err }

// IsPermanentDeliveryError reports whether err (or anything it wraps)
// was marked with PermanentError.
func IsPermanentDeliveryError(err error) bool {
	var p permanentDeliveryError
	return errors.As(err, &p)
}

// DeliveryOptions tunes a DeliverySink.
type DeliveryOptions struct {
	// Window bounds the in-flight deliveries (queued + executing)
	// across all partitions (default 64). When the consumer stalls the
	// window fills and the sink's read loop blocks — backpressure, not
	// unbounded queueing.
	Window int
	// PermanentAttempts is how many permanent-error attempts a record
	// gets before routing to the dead-letter substream (default 3).
	PermanentAttempts int
	// FrontierInterval is how often the ack frontier is persisted to
	// the egress-offsets substream (default 25ms). Everything delivered
	// since the last persisted frontier is redelivered after a crash.
	FrontierInterval time.Duration
	// SinkID names this sink's egress-offsets and dead-letter
	// substreams (default "0"); distinct consumers of one stream use
	// distinct ids.
	SinkID string
	// Retry overrides the backoff policy for consumer retries and
	// frontier/dead-letter appends; zero values fall back to env.Retry.
	Retry RetryPolicy
}

func (o DeliveryOptions) withDefaults(env *Env) DeliveryOptions {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.PermanentAttempts <= 0 {
		o.PermanentAttempts = 3
	}
	if o.FrontierInterval <= 0 {
		o.FrontierInterval = 25 * time.Millisecond
	}
	if o.SinkID == "" {
		o.SinkID = "0"
	}
	if o.Retry == (RetryPolicy{}) {
		o.Retry = env.Retry
	}
	return o
}

// DeliveryStats is a snapshot of a DeliverySink's counters.
type DeliveryStats struct {
	// Enqueued counts records admitted to the in-flight window.
	Enqueued uint64
	// Delivered counts consumer acknowledgments.
	Delivered uint64
	// Attempts counts Deliver calls (>= Delivered under faults).
	Attempts uint64
	// Redelivered counts records that needed more than one attempt.
	Redelivered uint64
	// TransientErrors and PermanentFailures split rejected attempts by
	// the error taxonomy.
	TransientErrors   uint64
	PermanentFailures uint64
	// DeadLettered counts records parked on the dead-letter substream
	// after exhausting PermanentAttempts.
	DeadLettered uint64
	// SkippedAcked counts records the resumed sink re-read but did not
	// re-deliver because the persisted frontier already covered them.
	SkippedAcked uint64
	// FrontierPersists counts ack-frontier appends.
	FrontierPersists uint64
	// ResumeLSN is where this incarnation began reading; Resumed is
	// true when that came from a persisted frontier.
	ResumeLSN LSN
	Resumed   bool
}

type ackKey struct {
	partition int
	producer  TaskID
}

type pendingDelivery struct {
	lsn      LSN
	producer TaskID
	seq      uint64
	eseq     uint64
	rec      Record
}

// DeliverySink drives exactly-once delivery of a stream's committed
// output to a Consumer. Construct with NewDeliverySink, then call Run
// exactly once; stop either gracefully with Stop (drains the window and
// persists a final frontier) or abruptly by cancelling Run's context (a
// hard crash — the next incarnation resumes from the last periodic
// frontier and redelivers the tail).
type DeliverySink struct {
	sink       *Sink
	consumer   Consumer
	opts       DeliveryOptions
	env        *Env
	stream     StreamID
	partitions int
	egressTag  sharedlog.Tag
	deadTag    sharedlog.Tag
	producerID TaskID

	appendRetry *retrier // frontier + dead-letter appends
	backoffR    *retrier // consumer retry backoff/jitter

	mu          sync.Mutex
	cond        *sync.Cond
	queues      [][]*pendingDelivery
	current     []*pendingDelivery // per partition, the entry being delivered
	inflight    int
	eseq        uint64
	acked       map[ackKey]uint64
	resumeAcked map[ackKey]uint64
	ackDirty    bool
	lastResume  LSN
	workCtx     context.Context

	stopping atomic.Bool
	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}

	enqueued          atomic.Uint64
	delivered         atomic.Uint64
	attempts          atomic.Uint64
	redelivered       atomic.Uint64
	transientErrors   atomic.Uint64
	permanentFailures atomic.Uint64
	deadLettered      atomic.Uint64
	skippedAcked      atomic.Uint64
	frontierPersists  atomic.Uint64
	resumeLSN         LSN
	resumed           bool
}

// NewDeliverySink builds a delivery sink over a stream's committed
// output (a gated sink using env.Protocol's tracker). It reads the
// latest persisted ack frontier from the egress-offsets substream — a
// restarted sink resumes from the last ack instead of re-reading from
// zero — so construction can fail on a faulted log.
func NewDeliverySink(stream StreamID, partitions int, env *Env, consumer Consumer, opts DeliveryOptions) (*DeliverySink, error) {
	if consumer == nil {
		return nil, errors.New("core: delivery sink needs a consumer")
	}
	opts = opts.withDefaults(env)
	node := "egress/" + string(stream) + "/" + opts.SinkID
	ds := &DeliverySink{
		sink:        NewGatedSink(stream, partitions, env),
		consumer:    consumer,
		opts:        opts,
		env:         env,
		stream:      stream,
		partitions:  partitions,
		egressTag:   EgressOffsetsTag(stream, opts.SinkID),
		deadTag:     DeadLetterTag(stream, opts.SinkID),
		producerID:  TaskID(node),
		queues:      make([][]*pendingDelivery, partitions),
		current:     make([]*pendingDelivery, partitions),
		acked:       make(map[ackKey]uint64),
		resumeAcked: make(map[ackKey]uint64),
		stopCh:      make(chan struct{}),
		done:        make(chan struct{}),
	}
	ds.cond = sync.NewCond(&ds.mu)
	retryEnv := *env
	retryEnv.Retry = opts.Retry
	ds.appendRetry = newRetrier(&retryEnv, "", nil)
	ds.backoffR = newRetrier(&retryEnv, node, nil)
	if err := ds.loadFrontier(); err != nil {
		return nil, err
	}
	ds.sink.delivery = ds
	return ds, nil
}

// Sink exposes the wrapped gated sink (for Counts and OnRecord taps).
func (ds *DeliverySink) Sink() *Sink { return ds.sink }

// loadFrontier reads the newest KindEgressFrontier record and primes
// the resume position and acked floors from it.
func (ds *DeliverySink) loadFrontier() error {
	var rec *sharedlog.Record
	err := ds.appendRetry.do(context.Background(), "egress frontier read", func() error {
		r, err := ds.env.Log.ReadPrev(ds.egressTag, ds.env.Log.Tail())
		if err != nil {
			if errors.Is(err, sharedlog.ErrTrimmed) {
				// The frontier itself was trimmed: start at the horizon
				// with no ack floors (deliveries below it are gone).
				r, err = nil, nil
			} else {
				return err
			}
		}
		rec = r
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: egress %s: %w", ds.producerID, err)
	}
	if rec == nil {
		return nil
	}
	b, err := DecodeBatch(rec.Payload)
	if err != nil {
		return fmt.Errorf("core: egress %s: frontier decode: %w", ds.producerID, err)
	}
	if b.Kind != KindEgressFrontier {
		return fmt.Errorf("core: egress %s: unexpected %s on offsets stream", ds.producerID, b.Kind)
	}
	resume, acked, err := decodeFrontier(b.Control)
	if err != nil {
		return fmt.Errorf("core: egress %s: %w", ds.producerID, err)
	}
	ds.resumeLSN = resume
	ds.resumed = true
	ds.lastResume = resume
	ds.resumeAcked = acked
	for k, v := range acked {
		ds.acked[k] = v
	}
	ds.sink.SetStart(resume)
	return nil
}

// Run consumes and delivers until ctx is cancelled (hard crash) or Stop
// is called (graceful drain). It returns nil after a graceful stop.
func (ds *DeliverySink) Run(ctx context.Context) error {
	sinkCtx, cancelSink := context.WithCancel(ctx)
	workCtx, cancelWork := context.WithCancel(ctx)
	defer cancelWork()
	defer cancelSink()
	ds.mu.Lock()
	ds.workCtx = workCtx
	ds.mu.Unlock()
	// Stop signals through stopCh so it cannot race Run's startup.
	go func() {
		select {
		case <-ds.stopCh:
			cancelSink()
		case <-sinkCtx.Done():
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < ds.partitions; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ds.worker(workCtx, p)
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ds.frontierLoop(workCtx)
	}()
	// Waiters (submit's window wait, awaitDrained) block on the cond,
	// which cannot watch a context; wake them when work is cancelled.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-workCtx.Done()
		ds.mu.Lock()
		ds.cond.Broadcast()
		ds.mu.Unlock()
	}()

	err := ds.sink.Run(sinkCtx)

	if ds.stopping.Load() && ctx.Err() == nil {
		ds.awaitDrained(workCtx)
	}
	cancelWork()
	wg.Wait()
	if ds.stopping.Load() && ctx.Err() == nil {
		// Final durable frontier: a consumer restarted after a clean
		// stop sees zero redeliveries.
		ds.persistFrontier(context.Background())
	}
	close(ds.done)
	if ds.stopping.Load() && errors.Is(err, context.Canceled) && ctx.Err() == nil {
		return nil
	}
	return err
}

// Stop shuts down gracefully: stops reading, waits for the in-flight
// window to drain, persists a final ack frontier, and waits for Run to
// return. Call only after Run has started.
func (ds *DeliverySink) Stop() {
	ds.stopping.Store(true)
	ds.stopOnce.Do(func() { close(ds.stopCh) })
	<-ds.done
}

func (ds *DeliverySink) awaitDrained(ctx context.Context) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	for ds.inflight > 0 && ctx.Err() == nil {
		ds.cond.Wait()
	}
}

// submit admits one committed record into the delivery window, blocking
// while the window is full (the backpressure edge: the caller is the
// sink's read loop). Records at or below the resumed ack floor are
// skipped — they were acknowledged by a previous incarnation.
func (ds *DeliverySink) submit(ctx context.Context, partition int, lsn LSN, producer TaskID, r Record) bool {
	k := ackKey{partition, producer}
	ds.mu.Lock()
	if r.Seq <= ds.resumeAcked[k] {
		ds.mu.Unlock()
		ds.skippedAcked.Add(1)
		return true
	}
	// Block on the worker context only: during a graceful stop the
	// read-side context is already cancelled but workers are draining,
	// and dropping here would let the final frontier advance past an
	// undelivered record. Only a hard kill (workCtx dead) may drop.
	_ = ctx
	work := ds.workCtx
	for ds.inflight >= ds.opts.Window && work.Err() == nil {
		ds.cond.Wait()
	}
	if work.Err() != nil {
		// Hard shutdown: drop. The record is above every persisted
		// frontier (safe-position order), so the next incarnation
		// re-reads it.
		ds.mu.Unlock()
		return false
	}
	ds.eseq++
	e := &pendingDelivery{lsn: lsn, producer: producer, seq: r.Seq, eseq: ds.eseq, rec: r}
	ds.queues[partition] = append(ds.queues[partition], e)
	ds.inflight++
	ds.cond.Broadcast()
	ds.mu.Unlock()
	ds.enqueued.Add(1)
	return true
}

func (ds *DeliverySink) worker(ctx context.Context, p int) {
	for {
		e := ds.next(ctx, p)
		if e == nil {
			return
		}
		ds.deliverOne(ctx, p, e)
	}
}

// next pops the partition's queue head into the current slot, waiting
// for work; nil means shutdown.
func (ds *DeliverySink) next(ctx context.Context, p int) *pendingDelivery {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	for len(ds.queues[p]) == 0 {
		if ctx.Err() != nil {
			return nil
		}
		ds.cond.Wait()
	}
	e := ds.queues[p][0]
	ds.queues[p] = ds.queues[p][1:]
	ds.current[p] = e
	return e
}

// deliverOne drives one record to acknowledgment, dead-letter, or
// shutdown. Unknown errors retry forever with jittered backoff — the
// occupied window slot is what turns a consumer outage into
// backpressure instead of loss.
func (ds *DeliverySink) deliverOne(ctx context.Context, p int, e *pendingDelivery) {
	permFails := 0
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			return
		}
		d := &Delivery{
			Stream:    ds.stream,
			Partition: p,
			Producer:  e.producer,
			Seq:       e.seq,
			EgressSeq: e.eseq,
			Attempt:   attempt,
			Record:    e.rec,
		}
		err := ds.consumer.Deliver(ctx, d)
		ds.attempts.Add(1)
		if err == nil {
			ds.delivered.Add(1)
			if attempt > 1 {
				ds.redelivered.Add(1)
			}
			ds.resolve(p, e)
			return
		}
		if ctx.Err() != nil {
			return
		}
		if IsPermanentDeliveryError(err) {
			permFails++
			ds.permanentFailures.Add(1)
			if permFails >= ds.opts.PermanentAttempts {
				ds.deadLetter(ctx, e, err)
				ds.resolve(p, e)
				return
			}
		} else {
			ds.transientErrors.Add(1)
		}
		if !ds.backoffR.sleep(ctx, ds.backoffR.backoff(attempt-1)) {
			return
		}
	}
}

// resolve retires a delivery (acknowledged or dead-lettered): the ack
// floor advances and a window slot frees.
func (ds *DeliverySink) resolve(p int, e *pendingDelivery) {
	ds.mu.Lock()
	ds.current[p] = nil
	k := ackKey{p, e.producer}
	if e.seq > ds.acked[k] {
		ds.acked[k] = e.seq
	}
	ds.inflight--
	ds.ackDirty = true
	ds.cond.Broadcast()
	ds.mu.Unlock()
}

// deadLetter parks a permanently-undeliverable record on the
// dead-letter substream (with the final error as the control payload)
// so the window can move on.
func (ds *DeliverySink) deadLetter(ctx context.Context, e *pendingDelivery, cause error) {
	b := &Batch{
		Kind:     KindDeadLetter,
		Producer: e.producer,
		Control:  []byte(cause.Error()),
		Records:  []Record{e.rec},
	}
	payload := b.Encode()
	_ = ds.appendRetry.do(ctx, "egress dead-letter append", func() error {
		_, err := ds.env.Log.Append([]sharedlog.Tag{ds.deadTag}, payload)
		return err
	})
	ds.deadLettered.Add(1)
}

// frontierSnapshot computes the resumable state: the lowest LSN not yet
// fully resolved (so a restart re-reads nothing acknowledged) plus the
// per-(partition, producer) ack floors (so the re-read suffix is not
// re-delivered when it was acknowledged).
func (ds *DeliverySink) frontierSnapshot() (resume LSN, acked map[ackKey]uint64, changed bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	resume = ds.sink.SafePos()
	for p := range ds.queues {
		if c := ds.current[p]; c != nil && c.lsn < resume {
			resume = c.lsn
		}
		if len(ds.queues[p]) > 0 && ds.queues[p][0].lsn < resume {
			resume = ds.queues[p][0].lsn
		}
	}
	changed = ds.ackDirty || resume != ds.lastResume
	if !changed {
		return resume, nil, false
	}
	acked = make(map[ackKey]uint64, len(ds.acked))
	for k, v := range ds.acked {
		acked[k] = v
	}
	ds.ackDirty = false
	ds.lastResume = resume
	return resume, acked, true
}

func (ds *DeliverySink) frontierLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-ds.appendRetry.clock.After(ds.opts.FrontierInterval):
		}
		ds.persistFrontier(ctx)
	}
}

func (ds *DeliverySink) persistFrontier(ctx context.Context) {
	resume, acked, changed := ds.frontierSnapshot()
	if !changed {
		return
	}
	b := &Batch{
		Kind:     KindEgressFrontier,
		Producer: ds.producerID,
		Control:  encodeFrontier(resume, acked),
	}
	payload := b.Encode()
	err := ds.appendRetry.do(ctx, "egress frontier append", func() error {
		_, err := ds.env.Log.Append([]sharedlog.Tag{ds.egressTag}, payload)
		return err
	})
	if err != nil {
		// Not persisted: re-arm so the next tick retries the append.
		ds.mu.Lock()
		ds.ackDirty = true
		ds.mu.Unlock()
		return
	}
	ds.frontierPersists.Add(1)
}

// Stats snapshots the delivery counters.
func (ds *DeliverySink) Stats() DeliveryStats {
	return DeliveryStats{
		Enqueued:          ds.enqueued.Load(),
		Delivered:         ds.delivered.Load(),
		Attempts:          ds.attempts.Load(),
		Redelivered:       ds.redelivered.Load(),
		TransientErrors:   ds.transientErrors.Load(),
		PermanentFailures: ds.permanentFailures.Load(),
		DeadLettered:      ds.deadLettered.Load(),
		SkippedAcked:      ds.skippedAcked.Load(),
		FrontierPersists:  ds.frontierPersists.Load(),
		ResumeLSN:         ds.resumeLSN,
		Resumed:           ds.resumed,
	}
}

// Add merges another stats snapshot (aggregation across sink
// incarnations in the chaos harness and benches).
func (s *DeliveryStats) Add(o DeliveryStats) {
	s.Enqueued += o.Enqueued
	s.Delivered += o.Delivered
	s.Attempts += o.Attempts
	s.Redelivered += o.Redelivered
	s.TransientErrors += o.TransientErrors
	s.PermanentFailures += o.PermanentFailures
	s.DeadLettered += o.DeadLettered
	s.SkippedAcked += o.SkippedAcked
	s.FrontierPersists += o.FrontierPersists
	if o.Resumed {
		s.Resumed = true
		s.ResumeLSN = o.ResumeLSN
	}
}

// Frontier wire format (KindEgressFrontier control payload):
//
//	u64 resumeLSN | u32 n | n × (u32 partition | u16 len | producer | u64 seq)
//
// Entries are sorted by (partition, producer) so identical frontiers
// encode to identical bytes.
func encodeFrontier(resume LSN, acked map[ackKey]uint64) []byte {
	keys := make([]ackKey, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].partition != keys[j].partition {
			return keys[i].partition < keys[j].partition
		}
		return keys[i].producer < keys[j].producer
	})
	size := 8 + 4
	for _, k := range keys {
		size += 4 + 2 + len(k.producer) + 8
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(resume))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k.partition))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k.producer)))
		buf = append(buf, k.producer...)
		buf = binary.LittleEndian.AppendUint64(buf, acked[k])
	}
	return buf
}

var errBadFrontier = errors.New("core: malformed egress frontier")

func decodeFrontier(b []byte) (LSN, map[ackKey]uint64, error) {
	if len(b) < 12 {
		return 0, nil, errBadFrontier
	}
	resume := LSN(binary.LittleEndian.Uint64(b))
	n := int(binary.LittleEndian.Uint32(b[8:]))
	b = b[12:]
	// An entry is at least 14 bytes (u32 partition + u16 length + u64
	// seq); reject corrupt counts before allocating.
	if n > len(b)/14 {
		return 0, nil, errBadFrontier
	}
	acked := make(map[ackKey]uint64, n)
	for i := 0; i < n; i++ {
		if len(b) < 6 {
			return 0, nil, errBadFrontier
		}
		part := int(binary.LittleEndian.Uint32(b))
		plen := int(binary.LittleEndian.Uint16(b[4:]))
		b = b[6:]
		if len(b) < plen+8 {
			return 0, nil, errBadFrontier
		}
		prod := TaskID(b[:plen])
		seq := binary.LittleEndian.Uint64(b[plen:])
		b = b[plen+8:]
		acked[ackKey{part, prod}] = seq
	}
	if len(b) != 0 {
		return 0, nil, errBadFrontier
	}
	return resume, acked, nil
}
