package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"impeller/internal/sharedlog"
	"impeller/internal/sim"
	"impeller/internal/wire"
)

// Defaults for the append batcher. Records and bytes bound how much a
// group commit carries; linger bounds how long an entry may wait for
// company; the window bounds how many sealed batches may be in flight
// before submission blocks (backpressure).
const (
	DefaultBatchRecords = 64
	DefaultBatchBytes   = 256 << 10
	DefaultBatchLinger  = time.Millisecond
	DefaultBatchWindow  = 4
)

// BatchConfig tunes the per-task append batcher of the batched
// dataplane. The zero value selects the defaults above. MaxRecords: 1
// disables coalescing — every append becomes its own group commit,
// which is the pre-batching dataplane (the `-exp batching` ablation
// runs exactly that as its baseline).
type BatchConfig struct {
	// MaxRecords seals a batch after this many appends.
	MaxRecords int
	// MaxBytes seals a batch when its encoded payloads reach this size.
	MaxBytes int
	// Linger seals a batch when its oldest entry has waited this long
	// (checked at submission; flush ticks seal unconditionally).
	Linger time.Duration
	// Window is how many sealed batches may be in flight to the log
	// before submit blocks the task's processing loop.
	Window int
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxRecords <= 0 {
		c.MaxRecords = DefaultBatchRecords
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultBatchBytes
	}
	if c.Linger <= 0 {
		c.Linger = DefaultBatchLinger
	}
	if c.Window <= 0 {
		c.Window = DefaultBatchWindow
	}
	return c
}

// batcher is a task's append pipeline, rebuilt around group commit.
// Appends to the shared log cost network latency, so a task never
// blocks its processing loop on one: it submits entries, the batcher
// coalesces them — data batches, change-log batches, whatever flushes
// together — and ships each sealed group through one AppendBatch call,
// amortizing the per-append latency and sequencer work across the
// group.
//
// One goroutine drains sealed batches FIFO, and only the owning task
// goroutine submits, so all of a task's appends reach the log in
// submission order — per-substream sequence numbers stay monotonic
// (duplicate suppression relies on that), and a record never overtakes
// another it must follow. Commit records are NOT submitted here: the
// task drains the batcher first and appends its marker synchronously,
// which is what keeps a marker behind every output it covers in the
// log's total order (paper §3.5); see (*Task).assertAppendsDrained.
type batcher struct {
	log     *sharedlog.Log
	cfg     BatchConfig
	clock   sim.Clock
	metrics *TaskMetrics

	// retry, when non-nil, retries transient log faults per sealed
	// batch under ctx (the owning task's run context).
	retry *retrier
	ctx   context.Context

	ch   chan *appendBatch
	done chan struct{}

	// inflight counts sealed-but-incomplete batches. Only the owning
	// task goroutine seals and drains, so Add cannot race Wait.
	inflight sync.WaitGroup

	// pendingN counts submitted entries whose append has not completed;
	// the marker-ordering assertion reads it from the task goroutine
	// after drain, where it must be zero.
	pendingN atomic.Int64

	mu  sync.Mutex
	err error

	// notify, when non-nil, runs once per completed append batch after
	// its callbacks have fired — the cooperative engine uses it to wake
	// the owning loop so the completion ring drains promptly.
	notify func()

	// cur is the accumulating batch; task goroutine only.
	cur     *appendBatch
	curBorn time.Time
}

// appendBatch is one sealed group of appends plus the bookkeeping to
// complete them: per-entry callbacks and the pooled encode buffers to
// recycle once the group has been fully appended (including retries).
type appendBatch struct {
	entries []sharedlog.AppendEntry
	onDone  []func(lsn LSN, err error)
	bufs    []*wire.Buf
	bytes   int
}

var appendBatchPool = sync.Pool{New: func() any { return &appendBatch{} }}

func getAppendBatch() *appendBatch {
	return appendBatchPool.Get().(*appendBatch)
}

func putAppendBatch(b *appendBatch) {
	// Drop the references (payloads, closures) so the pool does not pin
	// them, but keep the slice capacity — that is the point.
	for i := range b.entries {
		b.entries[i] = sharedlog.AppendEntry{}
	}
	for i := range b.onDone {
		b.onDone[i] = nil
	}
	for i := range b.bufs {
		b.bufs[i] = nil
	}
	b.entries = b.entries[:0]
	b.onDone = b.onDone[:0]
	b.bufs = b.bufs[:0]
	b.bytes = 0
	appendBatchPool.Put(b)
}

func newBatcher(log *sharedlog.Log, cfg BatchConfig, retry *retrier, ctx context.Context, clock sim.Clock, metrics *TaskMetrics, notify func()) *batcher {
	if clock == nil {
		clock = sim.RealClock{}
	}
	b := &batcher{
		log:     log,
		cfg:     cfg.withDefaults(),
		clock:   clock,
		metrics: metrics,
		retry:   retry,
		ctx:     ctx,
		notify:  notify,
		done:    make(chan struct{}),
	}
	b.ch = make(chan *appendBatch, b.cfg.Window)
	go b.run()
	return b
}

// submit adds one append to the accumulating batch. buf, if non-nil, is
// the pooled buffer backing payload; it is recycled after the append
// completes. onDone runs on the batcher goroutine once the entry's LSN
// is known; it must synchronize its own state.
func (b *batcher) submit(tags []sharedlog.Tag, payload []byte, buf *wire.Buf, onDone func(lsn LSN, err error)) {
	b.pendingN.Add(1)
	if b.cur == nil {
		b.cur = getAppendBatch()
		b.curBorn = b.clock.Now()
	}
	cur := b.cur
	cur.entries = append(cur.entries, sharedlog.AppendEntry{Tags: tags, Payload: payload})
	cur.onDone = append(cur.onDone, onDone)
	if buf != nil {
		cur.bufs = append(cur.bufs, buf)
	}
	cur.bytes += len(payload)
	if len(cur.entries) >= b.cfg.MaxRecords || cur.bytes >= b.cfg.MaxBytes ||
		b.clock.Now().Sub(b.curBorn) >= b.cfg.Linger {
		b.flush()
	}
}

// flush seals the accumulating batch and hands it to the append
// goroutine. If the in-flight window is full it blocks — that is the
// output-buffer backpressure of paper §3.6 (a task "must pause
// processing" when its buffer fills), counted in Metrics.BatchStalls.
func (b *batcher) flush() {
	if b.cur == nil || len(b.cur.entries) == 0 {
		return
	}
	batch := b.cur
	b.cur = nil
	b.inflight.Add(1)
	select {
	case b.ch <- batch:
	default:
		if b.metrics != nil {
			b.metrics.BatchStalls.Add(1)
		}
		b.ch <- batch
	}
}

func (b *batcher) run() {
	defer close(b.done)
	for batch := range b.ch {
		var results []sharedlog.AppendResult
		var err error
		if b.retry != nil {
			err = b.retry.do(b.ctx, "append", func() error {
				var e error
				results, e = b.log.AppendBatch(batch.entries)
				return e
			})
		} else {
			results, err = b.log.AppendBatch(batch.entries)
		}
		for i, done := range batch.onDone {
			entryErr := err
			var lsn LSN
			if err == nil {
				lsn, entryErr = results[i].LSN, results[i].Err
			}
			if entryErr != nil {
				b.fail(entryErr)
			}
			if done != nil {
				done(lsn, entryErr)
			}
		}
		if b.metrics != nil {
			b.metrics.AppendBatches.Add(1)
			b.metrics.BatchedRecords.Add(uint64(len(batch.entries)))
		}
		n := len(batch.entries)
		// The log copied every payload on entry and no retry can still
		// re-read them, so the pooled buffers are free now.
		for _, buf := range batch.bufs {
			wire.PutBuf(buf)
		}
		putAppendBatch(batch)
		b.pendingN.Add(int64(-n))
		b.inflight.Done()
		if b.notify != nil {
			b.notify()
		}
	}
}

func (b *batcher) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

// pending reports how many submitted entries have not completed their
// append — including those still sitting in the unsealed batch.
func (b *batcher) pending() int64 {
	return b.pendingN.Load()
}

// drain seals the current batch, blocks until every submitted entry has
// completed, and returns the first append error observed, if any.
func (b *batcher) drain() error {
	b.flush()
	b.inflight.Wait()
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// close shuts the batcher down after draining.
func (b *batcher) close() {
	b.flush()
	b.inflight.Wait()
	close(b.ch)
	<-b.done
}
