package core

import (
	"context"
	"sync"

	"impeller/internal/sharedlog"
)

// appender is a per-destination append pipeline. Appends to the shared
// log cost network latency, so a task never blocks its processing loop
// on them: it submits jobs to appenders and only waits for them at
// commit boundaries (a progress marker must follow every output it
// covers in the log's total order, paper §3.5).
//
// One appender serves one destination (an output substream, the change
// log, ...). Jobs are processed FIFO by a single goroutine, so appends
// to a destination stay in submission order and sequence numbers within
// a substream remain monotonic — which duplicate suppression relies on.
type appender struct {
	log *sharedlog.Log
	ch  chan appendJob

	// retry, when non-nil, retries transient log faults per job under
	// ctx (the owning task's run context); a nil retry appends once.
	retry *retrier
	ctx   context.Context

	// inflight counts submitted-but-incomplete jobs. Only the owning
	// task goroutine calls submit and drain, so Add cannot race Wait.
	inflight sync.WaitGroup

	mu   sync.Mutex
	err  error
	done chan struct{}
}

type appendJob struct {
	tags    []sharedlog.Tag
	payload []byte
	// onDone runs on the appender goroutine after the append completes;
	// it must synchronize its own state.
	onDone func(lsn LSN, err error)
}

func newAppender(log *sharedlog.Log, depth int) *appender {
	a := &appender{log: log, ch: make(chan appendJob, depth), done: make(chan struct{})}
	go a.run()
	return a
}

// newRetryingAppender builds an appender that retries transient log
// faults (crashed shards, partitions) per job before giving up.
func newRetryingAppender(log *sharedlog.Log, depth int, retry *retrier, ctx context.Context) *appender {
	a := &appender{
		log: log, ch: make(chan appendJob, depth), done: make(chan struct{}),
		retry: retry, ctx: ctx,
	}
	go a.run()
	return a
}

func (a *appender) run() {
	defer close(a.done)
	for job := range a.ch {
		var lsn LSN
		var err error
		if a.retry != nil {
			err = a.retry.do(a.ctx, "append", func() error {
				var e error
				lsn, e = a.log.Append(job.tags, job.payload)
				return e
			})
		} else {
			lsn, err = a.log.Append(job.tags, job.payload)
		}
		if err != nil {
			a.mu.Lock()
			if a.err == nil {
				a.err = err
			}
			a.mu.Unlock()
		}
		if job.onDone != nil {
			job.onDone(lsn, err)
		}
		a.inflight.Done()
	}
}

// submit enqueues an append. It may block if the pipeline is full,
// which models output-buffer backpressure (paper §3.6: a task "must
// pause processing" when its buffer fills).
func (a *appender) submit(job appendJob) {
	a.inflight.Add(1)
	a.ch <- job
}

// drain blocks until every submitted job has completed and returns the
// first append error observed, if any.
func (a *appender) drain() error {
	a.inflight.Wait()
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// close shuts the appender down after draining.
func (a *appender) close() {
	a.inflight.Wait()
	close(a.ch)
	<-a.done
}
