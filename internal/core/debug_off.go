//go:build !impellerdebug

package core

// debugChecks gates the expensive invariant assertions; build with
// -tags impellerdebug to turn marker-ordering violations into panics.
const debugChecks = false
