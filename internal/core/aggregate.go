package core

import "encoding/binary"

// Stateful aggregation operators (paper §4: groupby, stream/table
// aggregate, table aggregate). All follow Kafka Streams semantics: the
// result of an aggregation is a table — every input record emits the
// key's updated aggregate downstream as an upsert.

// Aggregator folds a record's value into an accumulator. acc is nil for
// the key's first record; the returned slice becomes the new
// accumulator.
type Aggregator func(key, value, acc []byte) []byte

// streamAggregate is a per-key stream aggregation.
type streamAggregate struct {
	name string
	agg  Aggregator
	ctx  ProcContext
}

// StreamAggregate aggregates records per key and emits the updated
// accumulator for each input (stream → table). name namespaces the
// operator's keys in the task's state store so multiple stateful
// operators can share one store.
func StreamAggregate(name string, agg Aggregator) Processor {
	return &streamAggregate{name: name, agg: agg}
}

func (a *streamAggregate) Open(ctx ProcContext) error {
	a.ctx = ctx
	return nil
}

func (a *streamAggregate) Process(_ int, d Datum, emit Emit) error {
	sk := a.name + "/" + string(d.Key)
	acc, _ := a.ctx.Store().Get(sk)
	acc = a.agg(d.Key, d.Value, acc)
	a.ctx.Store().Put(sk, acc)
	emit(0, Datum{Key: d.Key, Value: acc, EventTime: d.EventTime})
	return nil
}

// Count emits the running count per key as a little-endian uint64.
func Count(name string) Processor {
	return StreamAggregate(name, func(_, _, acc []byte) []byte {
		var n uint64
		if len(acc) == 8 {
			n = binary.LittleEndian.Uint64(acc)
		}
		return binary.LittleEndian.AppendUint64(nil, n+1)
	})
}

// TableAggregator folds table updates: when a key's upstream value is
// replaced, the old contribution must be subtracted and the new one
// added (Kafka Streams' adder/subtractor pair).
type TableAggregator struct {
	// Add folds value into acc.
	Add Aggregator
	// Subtract removes value from acc.
	Subtract Aggregator
}

// tableAggregate implements table → table aggregation with retraction.
type tableAggregate struct {
	name string
	// rowKey extracts the table's primary key from the update; the
	// record key is the (already repartitioned) aggregation group key.
	rowKey func(d Datum) []byte
	agg    TableAggregator
	ctx    ProcContext
}

// TableAggregate aggregates a table grouped by the record key, with
// retraction: each upsert of a row (identified by rowKey) subtracts the
// row's previous value — remembered in state — and adds the new one,
// emitting the updated aggregate (NEXMark Q4/Q6 average winning bids
// use this). Rows of a group must share the group key, so the upstream
// repartition co-locates a row's updates with its group.
func TableAggregate(name string, rowKey func(d Datum) []byte, agg TableAggregator) Processor {
	return &tableAggregate{name: name, rowKey: rowKey, agg: agg}
}

func (t *tableAggregate) Open(ctx ProcContext) error {
	t.ctx = ctx
	return nil
}

func (t *tableAggregate) Process(_ int, d Datum, emit Emit) error {
	st := t.ctx.Store()
	groupKey := d.Key
	prevKey := t.name + "/prev/" + string(t.rowKey(d))
	accKey := t.name + "/acc/" + string(groupKey)

	acc, _ := st.Get(accKey)
	if prev, ok := st.Get(prevKey); ok {
		acc = t.agg.Subtract(groupKey, prev, acc)
	}
	acc = t.agg.Add(groupKey, d.Value, acc)
	st.Put(prevKey, d.Value)
	st.Put(accKey, acc)
	emit(0, Datum{Key: groupKey, Value: acc, EventTime: d.EventTime})
	return nil
}

// MapValues transforms a table's values without re-keying (paper Table 3
// lists "table map values" in Q4/Q6).
func MapValues(fn func(key, value []byte) []byte) Processor {
	return ProcessorFunc(func(_ int, d Datum, emit Emit) error {
		emit(0, Datum{Key: d.Key, Value: fn(d.Key, d.Value), EventTime: d.EventTime})
		return nil
	})
}

// Reduce is StreamAggregate with acc and value of the same type.
func Reduce(name string, fn func(key, value, acc []byte) []byte) Processor {
	return StreamAggregate(name, func(key, value, acc []byte) []byte {
		if acc == nil {
			return append([]byte(nil), value...)
		}
		return fn(key, value, acc)
	})
}
