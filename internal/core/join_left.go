package core

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Left-join variants of the inner joins in join.go, following Kafka
// Streams semantics: the left side always produces a result, with a nil
// right value when no match exists (stream-table), or when the join
// window expires unmatched (stream-stream).

// streamTableLeftJoin joins a stream (port 0) against a materialized
// table (port 1); stream records without a table row emit with a nil
// right value instead of being dropped.
type streamTableLeftJoin struct {
	name   string
	joiner Joiner
	ctx    ProcContext
}

// StreamTableLeftJoin builds a stream-table left join.
func StreamTableLeftJoin(name string, joiner Joiner) Processor {
	return &streamTableLeftJoin{name: name, joiner: joiner}
}

func (j *streamTableLeftJoin) Open(ctx ProcContext) error {
	j.ctx = ctx
	return nil
}

func (j *streamTableLeftJoin) Process(port int, d Datum, emit Emit) error {
	st := j.ctx.Store()
	tk := j.name + "/t/" + string(d.Key)
	switch port {
	case 1:
		if d.Value == nil {
			st.Delete(tk)
		} else {
			st.Put(tk, d.Value)
		}
		return nil
	case 0:
		row, _ := st.Get(tk) // nil when absent: left semantics
		emit(0, Datum{Key: d.Key, Value: j.joiner(d.Key, d.Value, row), EventTime: d.EventTime})
		return nil
	default:
		return fmt.Errorf("stream-table left join: bad port %d", port)
	}
}

// streamStreamLeftJoin is a windowed stream-stream left join: matched
// pairs emit immediately; left records whose window expires unmatched
// emit once with a nil right value at eviction time.
type streamStreamLeftJoin struct {
	name   string
	window time.Duration
	joiner Joiner
	ctx    ProcContext
	seq    uint64
}

// StreamStreamLeftJoin builds a windowed stream-stream left join.
func StreamStreamLeftJoin(name string, window time.Duration, joiner Joiner) Processor {
	return &streamStreamLeftJoin{name: name, window: window, joiner: joiner}
}

func (j *streamStreamLeftJoin) Open(ctx ProcContext) error {
	j.ctx = ctx
	return nil
}

// Buffer layout mirrors streamStreamJoin's, with a 1-byte matched flag
// prepended to the stored value:
//
//	<name>/<side>/<key>/<eventTime:be64>/<seq:be64> -> matched(1) value
func (j *streamStreamLeftJoin) bufKey(side int, key []byte, et int64, seq uint64) string {
	var ts [16]byte
	binary.BigEndian.PutUint64(ts[:8], uint64(et))
	binary.BigEndian.PutUint64(ts[8:], seq)
	return fmt.Sprintf("%s/%d/%s/%s", j.name, side, key, ts[:])
}

func (j *streamStreamLeftJoin) Process(port int, d Datum, emit Emit) error {
	if port != 0 && port != 1 {
		return fmt.Errorf("stream-stream left join: bad port %d", port)
	}
	st := j.ctx.Store()
	j.seq++
	myKey := j.bufKey(port, d.Key, d.EventTime, j.seq)
	myMatched := false

	other := 1 - port
	win := j.window.Microseconds()
	prefix := fmt.Sprintf("%s/%d/%s/", j.name, other, d.Key)
	type match struct {
		key   string
		value []byte
		et    int64
	}
	var matches []match
	st.Range(prefix, func(k string, v []byte) bool {
		rest := []byte(k[len(prefix):])
		if len(rest) < 16 || len(v) < 1 {
			return true
		}
		et := int64(binary.BigEndian.Uint64(rest[:8]))
		if et < d.EventTime-win {
			return true
		}
		if et > d.EventTime+win {
			return false
		}
		matches = append(matches, match{key: k, value: v, et: et})
		return true
	})
	for _, m := range matches {
		myMatched = true
		if m.value[0] == 0 {
			// Mark the counterpart matched so eviction won't emit a
			// spurious left-null for it.
			st.Put(m.key, append([]byte{1}, m.value[1:]...))
		}
		var left, right []byte
		if port == 0 {
			left, right = d.Value, m.value[1:]
		} else {
			left, right = m.value[1:], d.Value
		}
		out := d.EventTime
		if m.et > out {
			out = m.et
		}
		emit(0, Datum{Key: d.Key, Value: j.joiner(d.Key, left, right), EventTime: out})
	}

	flag := byte(0)
	if myMatched {
		flag = 1
	}
	st.Put(myKey, append([]byte{flag}, d.Value...))
	j.evict(d, emit)
	return nil
}

// evict drops buffered entries of this key older than twice the window
// behind the newest record; unmatched LEFT entries emit (left, nil) as
// they expire — the left-join contract.
func (j *streamStreamLeftJoin) evict(d Datum, emit Emit) {
	st := j.ctx.Store()
	horizon := d.EventTime - 2*j.window.Microseconds()
	if horizon <= 0 {
		return
	}
	for side := 0; side < 2; side++ {
		prefix := fmt.Sprintf("%s/%d/%s/", j.name, side, d.Key)
		type dead struct {
			key   string
			value []byte
			et    int64
		}
		var expired []dead
		st.Range(prefix, func(k string, v []byte) bool {
			rest := []byte(k[len(prefix):])
			if len(rest) < 16 || len(v) < 1 {
				return true
			}
			et := int64(binary.BigEndian.Uint64(rest[:8]))
			if et >= horizon {
				return false
			}
			expired = append(expired, dead{key: k, value: v, et: et})
			return true
		})
		for _, e := range expired {
			if side == 0 && e.value[0] == 0 {
				emit(0, Datum{Key: d.Key, Value: j.joiner(d.Key, e.value[1:], nil), EventTime: e.et})
			}
			st.Delete(e.key)
		}
	}
}

// tableTableLeftJoin emits on either side's update whenever the left
// row exists; a missing right row joins as nil.
type tableTableLeftJoin struct {
	name   string
	joiner Joiner
	ctx    ProcContext
}

// TableTableLeftJoin builds a table-table left join.
func TableTableLeftJoin(name string, joiner Joiner) Processor {
	return &tableTableLeftJoin{name: name, joiner: joiner}
}

func (j *tableTableLeftJoin) Open(ctx ProcContext) error {
	j.ctx = ctx
	return nil
}

func (j *tableTableLeftJoin) Process(port int, d Datum, emit Emit) error {
	if port != 0 && port != 1 {
		return fmt.Errorf("table-table left join: bad port %d", port)
	}
	st := j.ctx.Store()
	mine := fmt.Sprintf("%s/%d/%s", j.name, port, d.Key)
	if d.Value == nil {
		st.Delete(mine)
	} else {
		st.Put(mine, d.Value)
	}
	left, lok := st.Get(fmt.Sprintf("%s/0/%s", j.name, d.Key))
	if !lok {
		return nil // left semantics: no output without a left row
	}
	right, _ := st.Get(fmt.Sprintf("%s/1/%s", j.name, d.Key))
	emit(0, Datum{Key: d.Key, Value: j.joiner(d.Key, left, right), EventTime: d.EventTime})
	return nil
}

// Merge forwards records from every input port unchanged — the union
// operator (paper §3.2: "Other operators, such as union, can be
// supported similarly"). Inputs must be co-partitioned.
func Merge() Processor {
	return ProcessorFunc(func(_ int, d Datum, emit Emit) error {
		emit(0, d)
		return nil
	})
}

// Peek observes records without altering the stream (diagnostics).
func Peek(fn func(d Datum)) Processor {
	return ProcessorFunc(func(_ int, d Datum, emit Emit) error {
		fn(d)
		emit(0, d)
		return nil
	})
}
