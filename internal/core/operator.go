package core

import "fmt"

// Datum is one application record flowing through operators: a key, an
// opaque value, and the event time the record logically occurred at.
type Datum struct {
	Key, Value []byte
	// EventTime is in microseconds since the Unix epoch.
	EventTime int64
}

// Emit forwards a datum to logical output port out of the stage. Ports
// map 1:1 onto the stage's output streams.
type Emit func(out int, d Datum)

// ProcContext gives a processor access to its task's environment.
type ProcContext interface {
	// Store returns the task's state store (nil for stateless stages).
	Store() *StateStore
	// TaskID identifies the executing task.
	TaskID() TaskID
	// Substream is the task's substream index within its stage.
	Substream() int
	// Charge reports n units of bulk internal work done inside a single
	// Process call (a join scanning its buffers, a window firing many
	// panes at once). Cooperative processors call it so the tasklet
	// engine can account the work against its step budget and yield at
	// the next batch boundary; it is a no-op on the goroutine engine.
	Charge(n int)
}

// Processor is the per-task compute of a stage: a sequence of operators
// compiled into one unit (paper §2.1 — data between operators in a
// stage is pipelined, so a fused processor is the natural execution
// form). A fresh Processor is built for every task instance; stateful
// processors find their state in ctx.Store(), reconstructed by recovery
// before Open is called.
type Processor interface {
	// Open prepares the processor; called once before any Process.
	Open(ctx ProcContext) error
	// Process handles one record arriving on an input port.
	Process(port int, d Datum, emit Emit) error
}

// ProcessorFunc adapts a function to Processor for stateless logic.
type ProcessorFunc func(port int, d Datum, emit Emit) error

// Open implements Processor.
func (f ProcessorFunc) Open(ProcContext) error { return nil }

// Process implements Processor.
func (f ProcessorFunc) Process(port int, d Datum, emit Emit) error { return f(port, d, emit) }

// --- Stateless operators (paper §4: scan, stream/table filter, map) ---

// Map transforms each record; fn may change key, value, and event time.
// A nil result drops the record (map+filter fusion).
func Map(fn func(d Datum) *Datum) Processor {
	return ProcessorFunc(func(_ int, d Datum, emit Emit) error {
		if out := fn(d); out != nil {
			emit(0, *out)
		}
		return nil
	})
}

// Filter keeps records satisfying pred.
func Filter(pred func(d Datum) bool) Processor {
	return ProcessorFunc(func(_ int, d Datum, emit Emit) error {
		if pred(d) {
			emit(0, d)
		}
		return nil
	})
}

// FlatMap expands each record into zero or more records.
func FlatMap(fn func(d Datum) []Datum) Processor {
	return ProcessorFunc(func(_ int, d Datum, emit Emit) error {
		for _, out := range fn(d) {
			emit(0, out)
		}
		return nil
	})
}

// Branch routes each record to the output port of the first matching
// predicate, dropping records that match none (NEXMark queries use
// branch to split the composite event stream into bids, auctions, and
// persons).
func Branch(preds ...func(d Datum) bool) Processor {
	return ProcessorFunc(func(_ int, d Datum, emit Emit) error {
		for i, p := range preds {
			if p(d) {
				emit(i, d)
				return nil
			}
		}
		return nil
	})
}

// SelectKey re-keys each record; the repartition between stages then
// groups records by the new key (the "groupby" boundary of §2.1).
func SelectKey(fn func(d Datum) []byte) Processor {
	return ProcessorFunc(func(_ int, d Datum, emit Emit) error {
		d.Key = fn(d)
		emit(0, d)
		return nil
	})
}

// chain composes processors sequentially: each element's port-0 output
// feeds the next element's port 0; the final element's emissions leave
// the chain. Multi-output processors (Branch) may only appear last.
type chain struct {
	procs []Processor
}

// Chain fuses processors into one (operator pipelining within a stage).
func Chain(procs ...Processor) Processor {
	if len(procs) == 1 {
		return procs[0]
	}
	return &chain{procs: procs}
}

// Open implements Processor.
func (c *chain) Open(ctx ProcContext) error {
	for i, p := range c.procs {
		if err := p.Open(ctx); err != nil {
			return fmt.Errorf("chain[%d]: %w", i, err)
		}
	}
	return nil
}

// Process implements Processor.
func (c *chain) Process(port int, d Datum, emit Emit) error {
	return c.process(0, port, d, emit)
}

func (c *chain) process(i, port int, d Datum, emit Emit) error {
	if i == len(c.procs)-1 {
		return c.procs[i].Process(port, d, emit)
	}
	return c.procs[i].Process(port, d, func(_ int, out Datum) {
		// Errors inside fused downstream operators surface via panic to
		// keep Emit's signature simple; the task runtime recovers them.
		if err := c.process(i+1, 0, out, emit); err != nil {
			panic(chainError{err})
		}
	})
}

type chainError struct{ err error }

// RecoverChainError converts a chain panic back into an error; the task
// runtime calls it around Process.
func RecoverChainError(r any) error {
	if r == nil {
		return nil
	}
	if ce, ok := r.(chainError); ok {
		return ce.err
	}
	panic(r)
}
