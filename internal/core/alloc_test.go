package core

import (
	"fmt"
	"testing"

	"impeller/internal/testutil"
	"impeller/internal/wire"
)

// Allocation gates for the encode/append hot path. The batched
// dataplane's claim is that steady-state flushes do not allocate for
// encoding: AppendTo into a warm buffer is zero-alloc, and the pooled
// round trip (GetBuf → AppendTo → PutBuf) amortizes to zero. These run
// in `make check` (non-race builds; the race detector's instrumentation
// allocates, so the gates skip there). Budgets are recorded in
// results/sharedlog_bench.md.

func benchBatch(records int) Batch {
	b := Batch{Kind: KindData, Producer: "q/stage/0", Instance: 3, Epoch: 1}
	for i := 0; i < records; i++ {
		b.Records = append(b.Records, Record{
			Seq:       uint64(i + 1),
			EventTime: int64(1000 + i),
			Key:       []byte(fmt.Sprintf("key-%03d", i)),
			Value:     make([]byte, 64),
		})
	}
	return b
}

func TestEncodeAppendToZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; gate runs in non-race builds")
	}
	batch := benchBatch(64)
	buf := make([]byte, 0, batch.EncodedSize())
	allocs := testing.AllocsPerRun(100, func() {
		buf = batch.AppendTo(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendTo into a warm buffer allocates %.1f times, budget 0", allocs)
	}
	if sz := batch.EncodedSize(); sz != len(buf) {
		t.Fatalf("EncodedSize = %d but encoding is %d bytes", sz, len(buf))
	}
}

func TestEncodePooledRoundTripAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; gate runs in non-race builds")
	}
	batch := benchBatch(64)
	// Warm the pool so the steady state is measured, not the first Get.
	for i := 0; i < 4; i++ {
		eb := wire.GetBuf()
		eb.B = batch.AppendTo(eb.B)
		wire.PutBuf(eb)
	}
	allocs := testing.AllocsPerRun(100, func() {
		eb := wire.GetBuf()
		eb.B = batch.AppendTo(eb.B)
		wire.PutBuf(eb)
	})
	// Budget 0.5: the pool may be drained by a GC mid-run; steady state
	// is zero.
	if allocs > 0.5 {
		t.Errorf("pooled encode round trip allocates %.2f times, budget 0 (tolerance 0.5)", allocs)
	}
}

func BenchmarkEncodeAppendTo(b *testing.B) {
	batch := benchBatch(64)
	buf := make([]byte, 0, batch.EncodedSize())
	b.ReportAllocs()
	b.SetBytes(int64(batch.EncodedSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = batch.AppendTo(buf[:0])
	}
}

// BenchmarkEncodeLegacy is the pre-refactor shape — one fresh
// allocation per encoded batch — kept for the before/after table.
func BenchmarkEncodeLegacy(b *testing.B) {
	batch := benchBatch(64)
	b.ReportAllocs()
	b.SetBytes(int64(batch.EncodedSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = batch.Encode()
	}
}
