package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestStateStoreBasics(t *testing.T) {
	s := NewStateStore(nil)
	if _, ok := s.Get("k"); ok {
		t.Fatal("missing key present")
	}
	s.Put("k", []byte("v"))
	if v, ok := s.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Delete("k")
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key present")
	}
	if s.Mutations() != 2 {
		t.Fatalf("Mutations = %d", s.Mutations())
	}
}

func TestStateStoreChangeCapture(t *testing.T) {
	type change struct {
		key     string
		value   string
		deleted bool
	}
	var log []change
	s := NewStateStore(func(k string, v []byte, del bool) {
		log = append(log, change{k, string(v), del})
	})
	s.Put("a", []byte("1"))
	s.Put("a", []byte("2"))
	s.Delete("a")
	want := []change{{"a", "1", false}, {"a", "2", false}, {"a", "", true}}
	if len(log) != len(want) {
		t.Fatalf("captured %d changes, want %d", len(log), len(want))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("change %d = %+v, want %+v", i, log[i], want[i])
		}
	}
}

func TestStateStoreApplyChangeDoesNotRelog(t *testing.T) {
	calls := 0
	s := NewStateStore(func(string, []byte, bool) { calls++ })
	s.ApplyChange("k", []byte("v"), false)
	if calls != 0 {
		t.Fatal("ApplyChange invoked onChange")
	}
	if v, ok := s.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("state = %q,%v", v, ok)
	}
	s.ApplyChange("k", nil, true)
	if _, ok := s.Get("k"); ok {
		t.Fatal("delete replay failed")
	}
}

func TestStateStoreRangeSortedPrefix(t *testing.T) {
	s := NewStateStore(nil)
	for _, k := range []string{"w/3", "w/1", "w/2", "other"} {
		s.Put(k, []byte(k))
	}
	var got []string
	s.Range("w/", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	want := []string{"w/1", "w/2", "w/3"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Range = %v", got)
	}
	// Early stop.
	n := 0
	s.Range("w/", func(string, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewStateStore(nil)
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("key/%d", i), []byte(fmt.Sprintf("val/%d", i)))
	}
	s.Delete("key/50")
	snap := s.Snapshot()

	r := NewStateStore(nil)
	r.Put("stale", []byte("gone")) // restore must replace, not merge
	if err := r.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 99 {
		t.Fatalf("restored Len = %d, want 99", r.Len())
	}
	if _, ok := r.Get("stale"); ok {
		t.Fatal("restore merged instead of replacing")
	}
	if v, ok := r.Get("key/7"); !ok || string(v) != "val/7" {
		t.Fatalf("key/7 = %q,%v", v, ok)
	}
}

func TestRestoreSnapshotRejectsGarbage(t *testing.T) {
	s := NewStateStore(nil)
	if err := s.RestoreSnapshot([]byte{1, 2}); err == nil {
		t.Fatal("short snapshot restored")
	}
	good := s.Snapshot()
	if err := s.RestoreSnapshot(append(good, 9)); err == nil {
		t.Fatal("trailing junk restored")
	}
}

func TestEncodeDecodeChange(t *testing.T) {
	v, del, err := DecodeChange(EncodeChange([]byte("hello"), false))
	if err != nil || del || string(v) != "hello" {
		t.Fatalf("put round trip: %q %v %v", v, del, err)
	}
	v, del, err = DecodeChange(EncodeChange(nil, true))
	if err != nil || !del || v != nil {
		t.Fatalf("delete round trip: %q %v %v", v, del, err)
	}
	if _, _, err := DecodeChange(nil); err == nil {
		t.Fatal("empty change decoded")
	}
	if _, _, err := DecodeChange([]byte{77}); err == nil {
		t.Fatal("unknown op decoded")
	}
}

// Property: replaying captured changes into a fresh store reproduces the
// original contents exactly — the recovery invariant (paper §3.3.4).
func TestPropertyChangelogReplayEquivalence(t *testing.T) {
	type op struct {
		Key    uint8
		Value  uint16
		Delete bool
	}
	check := func(ops []op) bool {
		type change struct {
			key     string
			value   []byte
			deleted bool
		}
		var log []change
		s := NewStateStore(func(k string, v []byte, del bool) {
			log = append(log, change{k, append([]byte(nil), v...), del})
		})
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%8)
			if o.Delete {
				s.Delete(k)
			} else {
				s.Put(k, []byte(fmt.Sprint(o.Value)))
			}
		}
		r := NewStateStore(nil)
		for _, c := range log {
			r.ApplyChange(c.key, c.value, c.deleted)
		}
		if r.Len() != s.Len() {
			return false
		}
		equal := true
		s.Range("", func(k string, v []byte) bool {
			rv, ok := r.Get(k)
			if !ok || !bytes.Equal(rv, v) {
				equal = false
				return false
			}
			return true
		})
		return equal
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot/restore is lossless for arbitrary contents.
func TestPropertySnapshotRoundTrip(t *testing.T) {
	check := func(keys []string, values [][]byte) bool {
		s := NewStateStore(nil)
		for i, k := range keys {
			var v []byte
			if i < len(values) {
				v = values[i]
			}
			s.Put(k, v)
		}
		r := NewStateStore(nil)
		if err := r.RestoreSnapshot(s.Snapshot()); err != nil {
			return false
		}
		if r.Len() != s.Len() {
			return false
		}
		ok := true
		s.Range("", func(k string, v []byte) bool {
			rv, found := r.Get(k)
			if !found || !bytes.Equal(rv, v) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
