package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"impeller/internal/sharedlog"
	"impeller/internal/sim"
)

// The cooperative tasklet engine (opt-in via Env.Engine): instead of one
// goroutine per task, a fixed pool of worker loops — one per core by
// default — runs every task as a non-blocking tasklet. A tasklet's step
// does a bounded slice of work (ingest, classify, process, flush) and
// yields; the loop round-robins its resident tasklets and parks only
// when none made progress. The blocking edges stay on dedicated
// goroutines and hand batches into the loop through bounded SPSC rings:
//
//   - a feeder goroutine owns the input cursor and blocks in
//     NextBatchBlocking, pushing record batches into the tasklet's input
//     ring (a full ring blocks the feeder — natural backpressure);
//   - a blocker goroutine runs the operations that must wait on the log
//     (commit's drain-and-mark, aligned-checkpoint completion); while one
//     is in flight the tasklet reports "blocked" and its step only polls
//     for the result, so the loop never stalls;
//   - the append batcher's completion callbacks post {tags, lsn} events
//     to a per-task done ring drained on the loop, instead of waking a
//     goroutine per completion.
//
// Ownership of all task state transfers between the loop, the feeder,
// and the blocker exclusively through channels and the rings' atomics,
// so the engine is race-detector clean. The correctness invariants are
// untouched: a step never yields inside a producer batch (so a commit
// can never cover half of one), drain-before-marker still runs on the
// blocker with exclusive ownership, and batch-exact classification is
// the same code path as the goroutine engine.

// EngineMode selects the task execution engine.
type EngineMode int

const (
	// EngineGoroutine is the default goroutine-per-task engine.
	EngineGoroutine EngineMode = iota
	// EngineTasklet is the cooperative engine: one event loop per core,
	// tasks scheduled as non-blocking tasklets.
	EngineTasklet
)

func (m EngineMode) String() string {
	switch m {
	case EngineGoroutine:
		return "goroutine"
	case EngineTasklet:
		return "tasklet"
	default:
		return fmt.Sprintf("engine(%d)", int(m))
	}
}

// ParseEngineMode parses an engine name as accepted by -engine.
func ParseEngineMode(s string) (EngineMode, error) {
	switch s {
	case "", "goroutine":
		return EngineGoroutine, nil
	case "tasklet":
		return EngineTasklet, nil
	default:
		return EngineGoroutine, fmt.Errorf("core: unknown engine %q (want goroutine or tasklet)", s)
	}
}

// errEngineStopped terminates resident tasklets when the loop pool shuts
// down before their own context does.
var errEngineStopped = errors.New("core: tasklet engine stopped")

const (
	// taskletStepBudget bounds the work units (records processed, plus
	// whatever processors Charge) one step may consume before yielding.
	// Yields happen only at producer-batch boundaries, so a step may
	// overshoot by at most one batch's cost.
	taskletStepBudget = 512
	// taskletInputEvents is the input ring capacity in cursor batches; a
	// full ring blocks the feeder (backpressure toward the log).
	taskletInputEvents = 8
	// taskletDoneEvents sizes the append-completion ring: enough for the
	// batcher's whole in-flight window at defaults, with slack. Overflow
	// falls back to the direct mutex fold, so sizing is latency, not
	// correctness.
	taskletDoneEvents = 512
	// loopMaxPark bounds how long an idle loop sleeps between rounds;
	// wait() deadlines and notify pokes usually wake it much sooner.
	loopMaxPark = 5 * time.Millisecond
	// loopMinPark avoids timer churn when a deadline is essentially now.
	loopMinPark = 50 * time.Microsecond
)

// spsc is a bounded single-producer single-consumer ring. The producer
// and consumer synchronize through the head/tail atomics; the cap-1
// channels are pure wakeups (wake is typically the owning loop's notify
// channel, shared by every ring feeding that loop).
type spsc[T any] struct {
	buf   []T
	mask  uint64
	head  atomic.Uint64 // consumer position
	tail  atomic.Uint64 // producer position
	wake  chan struct{} // consumer-side wake; may be shared
	space chan struct{} // producer-side wake
}

func newSPSC[T any](capacity int, wake chan struct{}) *spsc[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &spsc[T]{
		buf:   make([]T, n),
		mask:  uint64(n - 1),
		wake:  wake,
		space: make(chan struct{}, 1),
	}
}

// poke delivers a non-blocking wakeup; a cap-1 channel coalesces them.
func poke(ch chan struct{}) {
	if ch == nil {
		return
	}
	select {
	case ch <- struct{}{}:
	default:
	}
}

// tryPush enqueues v unless the ring is full.
func (r *spsc[T]) tryPush(v T) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	poke(r.wake)
	return true
}

// push blocks until the ring has space or ctx is done.
func (r *spsc[T]) push(ctx context.Context, v T) bool {
	for {
		if r.tryPush(v) {
			return true
		}
		select {
		case <-r.space:
		case <-ctx.Done():
			return false
		}
	}
}

// tryPop dequeues the oldest element, clearing its slot so the ring does
// not pin payloads.
func (r *spsc[T]) tryPop() (T, bool) {
	var zero T
	head := r.head.Load()
	if head == r.tail.Load() {
		return zero, false
	}
	v := r.buf[head&r.mask]
	r.buf[head&r.mask] = zero
	r.head.Store(head + 1)
	poke(r.space)
	return v, true
}

// tasklet is one unit of cooperatively scheduled work resident on a
// loop. step runs a bounded slice and reports (progress, done, err);
// wait reports how long until the tasklet next needs the CPU absent
// external events (its flush/commit deadlines). The loop delivers the
// terminal error on result exactly once.
type tasklet struct {
	name   string
	step   func() (progress bool, done bool, err error)
	wait   func() time.Duration
	result chan error
}

// taskLoop is one worker of the pool: it steps its resident tasklets
// round-robin and parks when none of them progressed.
type taskLoop struct {
	id       int
	notify   chan struct{} // cap 1; poked by rings, blockers, registration
	incoming chan *tasklet
	quit     chan struct{}
	quitOnce sync.Once
	done     chan struct{}
	resident atomic.Int64  // sticky placement weight
	rounds   atomic.Uint64 // step rounds; the monitor's progress signal
}

func newTaskLoop(id int) *taskLoop {
	return &taskLoop{
		id:       id,
		notify:   make(chan struct{}, 1),
		incoming: make(chan *tasklet, 8),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// register hands a tasklet to the loop; if the pool already shut down
// the tasklet is finished immediately with errEngineStopped.
func (l *taskLoop) register(t *tasklet) {
	select {
	case l.incoming <- t:
		poke(l.notify)
	case <-l.quit:
		t.result <- errEngineStopped
	}
}

func (l *taskLoop) run() {
	defer close(l.done)
	// Pin the loop to one OS thread: the scheduler-jitter the engine
	// removes must not come back as thread migration.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()

	var ts []*tasklet
	adopt := func() {
		for {
			select {
			case t := <-l.incoming:
				ts = append(ts, t)
			default:
				return
			}
		}
	}
	shutdown := func() {
		adopt()
		for _, t := range ts {
			t.result <- errEngineStopped
		}
	}
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		select {
		case <-l.quit:
			shutdown()
			return
		default:
		}
		adopt()
		progressed := false
		for i := 0; i < len(ts); {
			prog, done, err := ts[i].step()
			if prog {
				progressed = true
			}
			if done {
				ts[i].result <- err
				ts = append(ts[:i], ts[i+1:]...)
				continue
			}
			i++
		}
		l.rounds.Add(1)
		if progressed {
			continue
		}
		// Nothing moved: park until an event arrives, the earliest
		// tasklet deadline passes, or the pool closes.
		park := loopMaxPark
		for _, t := range ts {
			if w := t.wait(); w < park {
				park = w
			}
		}
		if park <= 0 {
			continue
		}
		if park < loopMinPark {
			park = loopMinPark
		}
		timer.Reset(park)
		select {
		case <-l.notify:
		case t := <-l.incoming:
			ts = append(ts, t)
		case <-l.quit:
			shutdown()
			return
		case <-timer.C:
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
}

// loopPool is the fixed set of worker loops for one Env. Placement is
// sticky per key so a restarted task instance lands on the same loop.
type loopPool struct {
	loops []*taskLoop

	mu       sync.Mutex
	assigned map[string]*taskLoop
}

func newLoopPool(n int) *loopPool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &loopPool{assigned: make(map[string]*taskLoop)}
	for i := 0; i < n; i++ {
		l := newTaskLoop(i)
		p.loops = append(p.loops, l)
		go l.run()
	}
	return p
}

// place assigns key to the least-loaded loop (sticky across calls).
func (p *loopPool) place(key string) *taskLoop {
	p.mu.Lock()
	defer p.mu.Unlock()
	if l, ok := p.assigned[key]; ok {
		return l
	}
	best := p.loops[0]
	for _, l := range p.loops[1:] {
		if l.resident.Load() < best.resident.Load() {
			best = l
		}
	}
	best.resident.Add(1)
	p.assigned[key] = best
	return best
}

// close stops every loop; resident tasklets are finished with
// errEngineStopped so their Run wrappers can unwind.
func (p *loopPool) close() {
	for _, l := range p.loops {
		l.quitOnce.Do(func() { close(l.quit) })
	}
	for _, l := range p.loops {
		<-l.done
	}
}

// --- task tasklet ---

type taskletEventKind uint8

const (
	evRecords taskletEventKind = iota // recs: one copied cursor batch
	evSeek                            // seek: cursor repositioned after invalidation
	evErr                             // err: fatal read error; feeder exited
)

// taskletEvent is one input-ring element from the feeder.
type taskletEvent struct {
	recs []*sharedlog.Record
	seek LSN
	err  error
	kind taskletEventKind
}

// doneEvent is one append completion posted to the owning loop.
type doneEvent struct {
	tags   []sharedlog.Tag // output substream tags; nil for change log
	lsn    LSN
	change bool
}

// taskletRun is the per-instance scheduling state of a task running on
// the cooperative engine. Only the current owner (loop, or blocker while
// blocked) touches it.
type taskletRun struct {
	ctx      context.Context
	in       *spsc[taskletEvent]
	blockReq chan func() error
	blockRes chan error
	// blocked marks a blocker operation in flight: steps only poll
	// blockRes until it completes, so the blocker has exclusive
	// ownership of all task state meanwhile.
	blocked bool
	// recs/ri is the partially ingested input event (resumable position;
	// always at a record boundary).
	recs []*sharedlog.Record
	ri   int
	// pendingDrain marks a queue drain paused by the step budget; it
	// resumes before any new input is ingested.
	pendingDrain bool
	// budget is the work remaining in the current step; processors
	// charge bulk work against it via ProcContext.Charge.
	budget      int
	nextFlush   time.Time
	nextCommit  time.Time
	feederDone  chan struct{}
	blockerDone chan struct{}
}

// runTasklet is Task.Run on the cooperative engine: the blocking
// prologue (recovery, processor open, cursor open) runs on the spawn
// goroutine, then the task registers as a tasklet and the spawn
// goroutine just waits for the terminal result.
func (t *Task) runTasklet(ctx context.Context) error {
	t.runCtx = ctx
	defer t.closeAppenders()
	recoverStart := time.Now()
	if err := t.recover(ctx); err != nil {
		return fmt.Errorf("task %s: recover: %w", t.ID, err)
	}
	t.Metrics.RecoveryNanos.Store(time.Since(recoverStart).Nanoseconds())
	if err := t.proc.Open(t); err != nil {
		return fmt.Errorf("task %s: open: %w", t.ID, err)
	}
	t.inCursor = t.log.OpenCursorOpts(t.inputTags, t.cursor, t.inputCursorOpts())

	now := t.env.Clock.Now()
	tl := &taskletRun{
		ctx:         ctx,
		in:          newSPSC[taskletEvent](taskletInputEvents, t.tlLoop.notify),
		blockReq:    make(chan func() error, 1),
		blockRes:    make(chan error, 1),
		nextFlush:   now.Add(DefaultFlushInterval),
		nextCommit:  now.Add(t.env.CommitInterval),
		feederDone:  make(chan struct{}),
		blockerDone: make(chan struct{}),
	}
	t.tl = tl

	feedCtx, stopFeed := context.WithCancel(ctx)
	go t.feed(feedCtx)
	go t.blockerLoop()

	result := make(chan error, 1)
	t.tlLoop.register(&tasklet{
		name:   string(t.ID),
		step:   t.taskletStep,
		wait:   t.taskletWait,
		result: result,
	})
	err := <-result

	// Teardown order matters: the feeder owns the input cursor and the
	// blocker may own the appender mid-commit; both must finish before
	// the deferred closeAppenders runs.
	stopFeed()
	<-tl.feederDone
	close(tl.blockReq)
	<-tl.blockerDone
	if errors.Is(err, errEngineStopped) && ctx.Err() != nil {
		err = ctx.Err()
	}
	return err
}

// feed is the cursor-waiter goroutine: it owns t.inCursor exclusively
// and converts blocking reads into input-ring events. Cursor state
// changes that the step machine must see in order (a post-invalidation
// seek) travel through the ring too.
func (t *Task) feed(ctx context.Context) {
	tl := t.tl
	defer close(tl.feederDone)
	for {
		if ctx.Err() != nil {
			return
		}
		recs, err := t.inCursor.NextBatchBlocking(ctx, t.readBatch)
		switch {
		case err == nil && len(recs) > 0:
			// The cursor's batch is a view into its internal buffer,
			// invalidated by the next fetch; the records themselves are
			// immutable and safely shared, so copying the slice header's
			// worth of pointers is enough.
			cp := make([]*sharedlog.Record, len(recs))
			copy(cp, recs)
			if !tl.in.push(ctx, taskletEvent{kind: evRecords, recs: cp}) {
				return
			}
		case err == nil:
			// Defensive: NextBatchBlocking does not return empty success.
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return
		case errors.Is(err, sharedlog.ErrCursorInvalidated):
			horizon := t.log.TrimHorizon()
			t.inCursor.Seek(horizon)
			if !tl.in.push(ctx, taskletEvent{kind: evSeek, seek: horizon}) {
				return
			}
		case sharedlog.IsRetryable(err):
			t.Metrics.Retries.Add(1)
			if !t.retry.sleep(ctx, t.retry.backoff(0)) {
				return
			}
		default:
			tl.in.push(ctx, taskletEvent{kind: evErr, err: err})
			return
		}
	}
}

// blockerLoop runs the task's blocking operations (commit,
// aligned-checkpoint completion) off the loop. At most one is in flight;
// blockRes is buffered so delivery never blocks, and the poke wakes the
// loop to collect the result promptly.
func (t *Task) blockerLoop() {
	tl := t.tl
	defer close(tl.blockerDone)
	for fn := range tl.blockReq {
		tl.blockRes <- fn()
		poke(t.tlLoop.notify)
	}
}

// blockOn hands fn to the blocker and puts the tasklet into the blocked
// state. Caller must yield immediately after.
func (t *Task) blockOn(fn func() error) {
	t.tl.blocked = true
	t.tl.blockReq <- fn
}

// taskletStep is one bounded slice of the task's processing loop. The
// phases mirror the goroutine engine's iteration — ingest, classify,
// drain, flush, commit — but each invocation is budgeted and every
// blocking edge is handed off instead of awaited.
func (t *Task) taskletStep() (progress, done bool, err error) {
	tl := t.tl
	if tl.blocked {
		select {
		case err := <-tl.blockRes:
			tl.blocked = false
			if err != nil {
				return true, true, err
			}
			return true, false, nil
		default:
			return false, false, nil
		}
	}
	if err := tl.ctx.Err(); err != nil {
		return true, true, err
	}
	if t.env.Faults.Crashed(t.node) {
		return true, true, fmt.Errorf("task %s: %w", t.ID, sim.ErrCrashed)
	}
	t.heartbeat()
	t.drainCompletions()

	tl.budget = taskletStepBudget
	progressed := false

	// Finish a budget-paused queue drain before ingesting new input.
	if tl.pendingDrain {
		progressed = true
		if err := t.drainQueueCoop(); err != nil {
			return true, true, fmt.Errorf("task %s: %w", t.ID, err)
		}
	}
	if !tl.pendingDrain {
		if tl.recs == nil {
			if ev, ok := tl.in.tryPop(); ok {
				progressed = true
				switch ev.kind {
				case evRecords:
					tl.recs, tl.ri = ev.recs, 0
				case evSeek:
					t.cursor = ev.seek
				case evErr:
					return true, true, fmt.Errorf("task %s: read: %w", t.ID, ev.err)
				}
			}
		} else {
			progressed = true
		}
		if tl.recs != nil && tl.budget > 0 {
			if err := t.ingestEventStep(); err != nil {
				return true, true, fmt.Errorf("task %s: %w", t.ID, err)
			}
			if tl.blocked {
				return true, false, nil
			}
		}
	}

	now := t.env.Clock.Now()
	if !now.Before(tl.nextFlush) {
		t.flushOutputs()
		tl.nextFlush = now.Add(DefaultFlushInterval)
		progressed = true
	}
	if !now.Before(tl.nextCommit) {
		// Commits drain in-flight appends and append the commit record —
		// blocking work, so it runs on the blocker with exclusive
		// ownership. Yielding here is always at a producer-batch
		// boundary: ingest pauses only between batches.
		tl.nextCommit = now.Add(t.env.CommitInterval)
		t.blockOn(func() error {
			if err := t.commit(tl.ctx); err != nil {
				return fmt.Errorf("task %s: commit: %w", t.ID, err)
			}
			return nil
		})
		return true, false, nil
	}
	return progressed, false, nil
}

// taskletWait reports the time until the task's next internal deadline;
// the loop parks at most this long when idle.
func (t *Task) taskletWait() time.Duration {
	tl := t.tl
	if tl.blocked {
		return loopMaxPark // the blocker pokes the loop on completion
	}
	now := t.env.Clock.Now()
	d := tl.nextFlush.Sub(now)
	if c := tl.nextCommit.Sub(now); c < d {
		d = c
	}
	return d
}

// ingestEventStep consumes the current input event from the resumable
// position tl.ri, mirroring ingestBatch record-for-record, but pausing
// (without consuming the record in hand) whenever the budget runs out
// and handing alignment completion to the blocker.
func (t *Task) ingestEventStep() error {
	tl := t.tl
	for tl.ri < len(tl.recs) {
		if tl.budget <= 0 {
			return nil // yield; resume at tl.ri next step
		}
		rec := tl.recs[tl.ri]
		b, err := DecodeBatch(rec.Payload)
		if err != nil {
			return err
		}
		port, group, tag := t.routeFor(rec)

		if b.Kind.isControl() {
			// Data queued ahead of this control record drains first so
			// classification happens at the control's exact LSN position
			// (the same order ingestBatch preserves).
			if len(t.queue) > 0 {
				if err := t.drainQueueCoop(); err != nil {
					return err
				}
				if tl.pendingDrain {
					return nil // budget out; rec is reprocessed next step
				}
			}
			t.cursor = rec.LSN + 1
			tl.ri++
			if b.Kind == KindBarrier && t.align != nil {
				complete, err := t.onBarrier(b, rec.LSN)
				if err != nil {
					return err
				}
				if complete {
					// The final barrier arrived: completing the alignment
					// snapshots synchronously and drains appends, so it
					// runs on the blocker; ingest resumes at tl.ri after.
					t.blockOn(func() error {
						if err := t.completeAlignment(); err != nil {
							return fmt.Errorf("task %s: %w", t.ID, err)
						}
						return nil
					})
					return nil
				}
				continue
			}
			if err := t.observeControl(b, rec.LSN); err != nil {
				return err
			}
			if err := t.drainQueueCoop(); err != nil {
				return err
			}
			if tl.pendingDrain {
				return nil
			}
			continue
		}

		t.cursor = rec.LSN + 1
		tl.ri++
		switch b.Kind {
		case KindSource, KindData:
			if fl, ok := t.groupFloor[group]; ok && rec.LSN < fl {
				// Below the group's handoff floor (same as ingestBatch).
				t.Metrics.DroppedBelowFloor.Add(uint64(len(b.Records)))
				continue
			}
			if t.align != nil && t.align.blocked(b.Producer) {
				t.align.buffer(queuedBatch{lsn: rec.LSN, port: port, group: group, tag: tag, batch: b})
				continue
			}
			t.queue = append(t.queue, queuedBatch{lsn: rec.LSN, port: port, group: group, tag: tag, batch: b})
			t.Metrics.Buffered.Add(uint64(len(b.Records)))
		default:
			// Foreign control-plane kinds; ignore defensively (same as
			// ingestBatch).
		}
	}
	tl.recs, tl.ri = nil, 0
	return t.drainQueueCoop()
}

// drainQueueCoop is drainQueue under the step budget: it pauses between
// producer batches when the budget runs out (tl.pendingDrain) instead
// of draining to exhaustion. Classification and processing are the
// shared code paths.
func (t *Task) drainQueueCoop() error {
	tl := t.tl
	for len(t.queue) > 0 {
		if tl.budget <= 0 {
			tl.pendingDrain = true
			return nil
		}
		head := t.queue[0]
		switch t.classify(head) {
		case classCommitted:
			t.queue = t.queue[1:]
			if err := t.processBatch(head); err != nil {
				return err
			}
		case classUncommitted:
			t.queue = t.queue[1:]
			t.Metrics.DroppedUncommitted.Add(uint64(len(head.batch.Records)))
			t.activity = true
		case classUnknown:
			tl.pendingDrain = false
			return nil
		}
	}
	tl.pendingDrain = false
	return nil
}

// drainCompletions folds append completions posted by the batcher into
// the progress accounting. Called from whichever goroutine currently
// owns the task (the loop each step; the blocker inside drainAppends),
// never both at once.
func (t *Task) drainCompletions() {
	r := t.doneRing
	if r == nil {
		return
	}
	for {
		ev, ok := r.tryPop()
		if !ok {
			return
		}
		t.foldProgress(ev)
	}
}

func (t *Task) foldProgress(ev doneEvent) {
	t.progressMu.Lock()
	if ev.change {
		if t.changeFirst == NoLSN || ev.lsn < t.changeFirst {
			t.changeFirst = ev.lsn
		}
	} else {
		for _, tag := range ev.tags {
			if cur, ok := t.outFirst[tag]; !ok || ev.lsn < cur {
				t.outFirst[tag] = ev.lsn
			}
		}
	}
	t.progressMu.Unlock()
}

// SchedulerProgress is a monotone counter the manager's monitor samples
// to tell a busy-but-healthy task from a dead one: the task's own
// heartbeat count, plus — on the cooperative engine — its loop's round
// counter, so a resident of a loop that is busy stepping other tasklets
// is not declared stale just because its own steps (and heartbeats)
// were delayed.
func (t *Task) SchedulerProgress() uint64 {
	p := t.progress.Load()
	if t.tlLoop != nil {
		p += t.tlLoop.rounds.Load()
	}
	return p
}

// --- sink tasklet ---

// runTasklet is Sink.Run on the cooperative engine: same feeder/ring
// shape as the task tasklet, with the shutdown sweep kept on the Run
// goroutine after the tasklet unwinds.
func (s *Sink) runTasklet(ctx context.Context) error {
	tags := s.tags()
	tagIndex := make(map[sharedlog.Tag]int, len(tags))
	for i, t := range tags {
		tagIndex[t] = i
	}
	retry := newRetrier(s.env, "", nil)
	readBatch := s.env.ReadBatch
	if readBatch <= 0 {
		readBatch = DefaultReadBatch
	}
	s.safe.Store(uint64(s.start))
	cur := s.env.Log.OpenCursor(tags, s.start)

	name := "sink/" + string(s.stream)
	loop := s.env.loops.place(name)
	in := newSPSC[taskletEvent](taskletInputEvents, loop.notify)
	feederDone := make(chan struct{})
	feedCtx, stopFeed := context.WithCancel(ctx)
	go func() {
		defer close(feederDone)
		for {
			if feedCtx.Err() != nil {
				return
			}
			recs, err := cur.NextBatchBlocking(feedCtx, readBatch)
			switch {
			case err == nil && len(recs) > 0:
				cp := make([]*sharedlog.Record, len(recs))
				copy(cp, recs)
				if !in.push(feedCtx, taskletEvent{kind: evRecords, recs: cp}) {
					return
				}
			case err == nil:
			case errors.Is(err, context.Canceled):
				return
			case errors.Is(err, sharedlog.ErrCursorInvalidated):
				s.noteInvalidation()
				cur.Seek(s.env.Log.TrimHorizon())
			case sharedlog.IsRetryable(err):
				if !retry.sleep(feedCtx, retry.backoff(0)) {
					return
				}
			default:
				in.push(feedCtx, taskletEvent{kind: evErr, err: err})
				return
			}
		}
	}()

	result := make(chan error, 1)
	loop.register(&tasklet{
		name: name,
		step: func() (bool, bool, error) {
			if err := ctx.Err(); err != nil {
				return true, true, err
			}
			ev, ok := in.tryPop()
			if !ok {
				return false, false, nil
			}
			if ev.kind == evErr {
				return true, true, ev.err
			}
			for _, rec := range ev.recs {
				if err := s.ingest(ctx, rec, tags, tagIndex); err != nil {
					return true, true, err
				}
			}
			if len(ev.recs) > 0 {
				s.updateSafe(ev.recs[len(ev.recs)-1].LSN + 1)
			}
			return true, false, nil
		},
		wait:   func() time.Duration { return loopMaxPark },
		result: result,
	})
	err := <-result
	stopFeed()
	<-feederDone
	if errors.Is(err, errEngineStopped) && ctx.Err() != nil {
		err = ctx.Err()
	}
	if ctx.Err() != nil {
		// Cancellation path: first ingest the events the feeder had
		// already read (the cursor is past them, so the sweep alone would
		// skip them), then run the usual drain-on-cancel sweep.
		for {
			ev, ok := in.tryPop()
			if !ok {
				break
			}
			if ev.kind != evRecords {
				continue
			}
			for _, rec := range ev.recs {
				if e := s.ingest(context.Background(), rec, tags, tagIndex); e != nil {
					break
				}
			}
			s.updateSafe(ev.recs[len(ev.recs)-1].LSN + 1)
		}
		s.shutdownSweep(cur, tags, tagIndex, readBatch)
		return ctx.Err()
	}
	return err
}
