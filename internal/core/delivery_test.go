package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"impeller/internal/kvstore"
	"impeller/internal/sharedlog"
)

// Test scaffolding for the egress layer: a marker-protocol environment
// driven by hand-appended data batches and progress markers, delivering
// to an in-memory consumer that deduplicates by (partition, producer,
// seq) exactly as an external system following the protocol would.

func newEgressEnv() *Env {
	return (&Env{
		Log:         sharedlog.Open(sharedlog.Config{}),
		Checkpoints: kvstore.Open(kvstore.Config{}),
		Protocol:    ProtoProgressMarker,
		Retry:       RetryPolicy{BaseDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond, MaxAttempts: 10, OpTimeout: 2 * time.Second},
	}).withDefaults()
}

// appendCommitted appends one data batch carrying seqs and the marker
// that commits it, returning the data record's LSN.
func appendCommitted(t testing.TB, env *Env, stream StreamID, part int, producer TaskID, seqs ...uint64) LSN {
	t.Helper()
	lsn := appendData(t, env, stream, part, producer, seqs...)
	appendMarker(t, env, stream, part, producer, lsn)
	return lsn
}

func appendData(t testing.TB, env *Env, stream StreamID, part int, producer TaskID, seqs ...uint64) LSN {
	t.Helper()
	b := &Batch{Kind: KindData, Producer: producer, Instance: 1}
	for _, seq := range seqs {
		b.Records = append(b.Records, Record{Seq: seq, Key: []byte(fmt.Sprintf("k%d", seq)), Value: []byte("v")})
	}
	lsn, err := env.Log.Append([]sharedlog.Tag{DataTag(stream, part)}, b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	return lsn
}

func appendMarker(t testing.TB, env *Env, stream StreamID, part int, producer TaskID, first LSN) {
	t.Helper()
	m := &ProgressMarker{InputEnd: NoLSN, ChangeFirst: NoLSN,
		OutFirst: map[sharedlog.Tag]sharedlog.LSN{DataTag(stream, part): first}}
	mb := &Batch{Kind: KindMarker, Producer: producer, Instance: 1, Control: m.Encode()}
	if _, err := env.Log.Append([]sharedlog.Tag{DataTag(stream, part)}, mb.Encode()); err != nil {
		t.Fatal(err)
	}
}

// memConsumer is a protocol-following external system: it applies each
// (partition, producer, seq) once, counting redundant deliveries as
// deduped. script, when set, runs before the apply and its error is
// returned without applying.
type memConsumer struct {
	script func(d *Delivery) error

	mu      sync.Mutex
	applied []Delivery
	floors  map[string]uint64
	deduped int
}

func newMemConsumer() *memConsumer { return &memConsumer{floors: make(map[string]uint64)} }

func (c *memConsumer) Deliver(ctx context.Context, d *Delivery) error {
	if c.script != nil {
		if err := c.script(d); err != nil {
			return err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := fmt.Sprintf("%d/%s", d.Partition, d.Producer)
	if d.Seq <= c.floors[k] {
		c.deduped++
		return nil
	}
	c.floors[k] = d.Seq
	c.applied = append(c.applied, *d)
	return nil
}

func (c *memConsumer) appliedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.applied)
}

func (c *memConsumer) appliedSeqs() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, len(c.applied))
	for i := range c.applied {
		out[i] = c.applied[i].Seq
	}
	return out
}

func waitUntil(t testing.TB, desc string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("%s never happened", desc)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDeliverySinkDeliversCommittedInOrder(t *testing.T) {
	env := newEgressEnv()
	defer env.Log.Close()
	cons := newMemConsumer()
	ds, err := NewDeliverySink("out", 1, env, cons, DeliveryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- ds.Run(context.Background()) }()

	appendCommitted(t, env, "out", 0, "up/0", 1, 2, 3)
	appendData(t, env, "out", 0, "up/0", 4, 5) // uncommitted: must not deliver

	waitUntil(t, "3 committed deliveries", func() bool { return cons.appliedCount() == 3 })
	seqs := cons.appliedSeqs()
	for i, want := range []uint64{1, 2, 3} {
		if seqs[i] != want {
			t.Fatalf("delivery order = %v, want [1 2 3]", seqs)
		}
	}
	if got := ds.Stats().Delivered; got != 3 {
		t.Fatalf("Delivered = %d, want 3", got)
	}
	if cons.appliedCount() != 3 {
		t.Fatal("uncommitted records leaked to the consumer")
	}
	ds.Stop()
	if err := <-runErr; err != nil {
		t.Fatalf("graceful stop returned %v", err)
	}
}

func TestDeliverySinkRetriesTransientErrors(t *testing.T) {
	env := newEgressEnv()
	defer env.Log.Close()
	cons := newMemConsumer()
	var mu sync.Mutex
	failures := 0
	cons.script = func(d *Delivery) error {
		mu.Lock()
		defer mu.Unlock()
		// Unmarked errors are transient by default: retried in place.
		if d.Seq == 1 && failures < 2 {
			failures++
			return errors.New("consumer unavailable")
		}
		return nil
	}
	ds, err := NewDeliverySink("out", 1, env, cons, DeliveryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ds.Run(context.Background()) }()

	appendCommitted(t, env, "out", 0, "up/0", 1, 2)
	waitUntil(t, "deliveries after transient faults", func() bool { return cons.appliedCount() == 2 })
	st := ds.Stats()
	if st.TransientErrors != 2 || st.Redelivered != 1 {
		t.Fatalf("stats = %+v, want 2 transient errors and 1 redelivered", st)
	}
	if st.DeadLettered != 0 || st.PermanentFailures != 0 {
		t.Fatalf("transient faults must not dead-letter: %+v", st)
	}
	ds.Stop()
}

func TestDeliverySinkDeadLettersPermanentFailures(t *testing.T) {
	env := newEgressEnv()
	defer env.Log.Close()
	cons := newMemConsumer()
	cons.script = func(d *Delivery) error {
		if d.Seq == 2 {
			return PermanentError(errors.New("schema mismatch"))
		}
		return nil
	}
	ds, err := NewDeliverySink("out", 1, env, cons, DeliveryOptions{PermanentAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ds.Run(context.Background()) }()

	appendCommitted(t, env, "out", 0, "up/0", 1, 2, 3)
	// The pipeline must move past the poisoned record.
	waitUntil(t, "deliveries around the dead letter", func() bool { return cons.appliedCount() == 2 })
	waitUntil(t, "dead-letter accounting", func() bool { return ds.Stats().DeadLettered == 1 })
	st := ds.Stats()
	if st.PermanentFailures != 2 {
		t.Fatalf("PermanentFailures = %d, want 2 (PermanentAttempts)", st.PermanentFailures)
	}
	ds.Stop()

	// The record itself is parked on the dead-letter substream.
	rec, err := env.Log.ReadNext(DeadLetterTag("out", "0"), 0)
	if err != nil || rec == nil {
		t.Fatalf("dead-letter stream read: rec=%v err=%v", rec, err)
	}
	b, err := DecodeBatch(rec.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind != KindDeadLetter || len(b.Records) != 1 || b.Records[0].Seq != 2 {
		t.Fatalf("dead letter = kind %s records %v", b.Kind, b.Records)
	}
	if b.Producer != "up/0" {
		t.Fatalf("dead letter producer = %s", b.Producer)
	}
}

func TestDeliverySinkBackpressure(t *testing.T) {
	env := newEgressEnv()
	defer env.Log.Close()
	cons := newMemConsumer()
	release := make(chan struct{})
	cons.script = func(d *Delivery) error {
		<-release
		return nil
	}
	ds, err := NewDeliverySink("out", 1, env, cons, DeliveryOptions{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = ds.Run(ctx) }()

	lsn := appendData(t, env, "out", 0, "up/0", 1, 2, 3, 4, 5, 6, 7, 8)
	appendMarker(t, env, "out", 0, "up/0", lsn)

	// With the consumer wedged, admission stops at the window bound —
	// the read loop is blocked in submit, not queueing without bound.
	waitUntil(t, "window fill", func() bool { return ds.Stats().Enqueued == 2 })
	time.Sleep(20 * time.Millisecond)
	if got := ds.Stats().Enqueued; got != 2 {
		t.Fatalf("enqueued %d deliveries past a window of 2", got)
	}
	close(release)
	waitUntil(t, "drain after release", func() bool { return cons.appliedCount() == 8 })
	ds.Stop()
}

// TestDeliverySinkResumesFromFrontier is the regression test for the
// restart contract: a killed-and-restarted sink resumes from the
// persisted ack frontier and does not re-deliver acknowledged records.
func TestDeliverySinkResumesFromFrontier(t *testing.T) {
	env := newEgressEnv()
	defer env.Log.Close()
	cons1 := newMemConsumer()
	ds1, err := NewDeliverySink("out", 1, env, cons1, DeliveryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ds1.Run(context.Background()) }()
	appendCommitted(t, env, "out", 0, "up/0", 1, 2, 3, 4, 5)
	waitUntil(t, "first incarnation deliveries", func() bool { return cons1.appliedCount() == 5 })
	ds1.Stop() // graceful: persists the final ack frontier

	// A fresh consumer proves nothing is re-delivered: any redelivery
	// of seqs 1-5 would show up as an apply here.
	cons2 := newMemConsumer()
	ds2, err := NewDeliverySink("out", 1, env, cons2, DeliveryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := ds2.Stats(); !st.Resumed {
		t.Fatal("second incarnation did not find the persisted frontier")
	}
	go func() { _ = ds2.Run(context.Background()) }()
	appendCommitted(t, env, "out", 0, "up/0", 6, 7)
	waitUntil(t, "new deliveries after resume", func() bool { return cons2.appliedCount() == 2 })
	for _, seq := range cons2.appliedSeqs() {
		if seq <= 5 {
			t.Fatalf("acknowledged seq %d was re-delivered after restart", seq)
		}
	}
	ds2.Stop()
}

// TestDeliverySinkHardKillRedelivers: a crash (context cancellation,
// no final frontier) redelivers the tail after the last periodic
// frontier; the consumer's dedupe absorbs it and every record is
// applied exactly once.
func TestDeliverySinkHardKillRedelivers(t *testing.T) {
	env := newEgressEnv()
	defer env.Log.Close()
	cons := newMemConsumer() // shared across incarnations: it is the external system
	ds1, err := NewDeliverySink("out", 1, env, cons, DeliveryOptions{FrontierInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, kill := context.WithCancel(context.Background())
	done1 := make(chan struct{})
	go func() { _ = ds1.Run(ctx1); close(done1) }()

	const total = 40
	for seq := uint64(1); seq <= total; seq += 2 {
		appendCommitted(t, env, "out", 0, "up/0", seq, seq+1)
	}
	waitUntil(t, "partial delivery before kill", func() bool { return cons.appliedCount() >= 10 })
	kill()
	<-done1

	ds2, err := NewDeliverySink("out", 1, env, cons, DeliveryOptions{FrontierInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ds2.Run(context.Background()) }()
	waitUntil(t, "exactly-once completion after crash", func() bool { return cons.appliedCount() == total })
	seen := make(map[uint64]bool)
	for _, seq := range cons.appliedSeqs() {
		if seen[seq] {
			t.Fatalf("seq %d applied twice", seq)
		}
		seen[seq] = true
	}
	ds2.Stop()
}

// TestSinkCountsTrimmedLost is the satellite-1 regression: a trim past
// a lagging sink's position must be accounted as loss, not silently
// skipped by the TrimHorizon reseek.
func TestSinkCountsTrimmedLost(t *testing.T) {
	env := newEgressEnv()
	defer env.Log.Close()
	sink := NewGatedSink("out", 1, env)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	// First pass: seqs 1-2 delivered, establishing the seq floor.
	appendCommitted(t, env, "out", 0, "up/0", 1, 2)
	_ = sink.Run(cancelled) // drain-on-cancel sweep ingests what is durable
	if c := sink.Counts(); c.Received != 2 || c.TrimmedLost != 0 {
		t.Fatalf("first pass counts = %+v", c)
	}

	// Seqs 3-4 land and are trimmed away before the sink reads them.
	appendCommitted(t, env, "out", 0, "up/0", 3, 4)
	if err := env.Log.Trim(env.Log.Tail()); err != nil {
		t.Fatal(err)
	}
	appendCommitted(t, env, "out", 0, "up/0", 5, 6)
	_ = sink.Run(cancelled)

	c := sink.Counts()
	if c.Invalidations == 0 {
		t.Fatal("sink never observed the trim invalidation")
	}
	if c.TrimmedLost != 2 {
		t.Fatalf("TrimmedLost = %d, want 2 (seqs 3-4 trimmed undelivered)", c.TrimmedLost)
	}
	if c.Received != 4 {
		t.Fatalf("Received = %d, want 4", c.Received)
	}
}

// TestSinkDrainOnCancel is the satellite-2 regression: batches whose
// commit markers are already durable at shutdown are delivered by the
// cancellation sweep, and batches still lacking a commit decision are
// counted as undrained instead of vanishing.
func TestSinkDrainOnCancel(t *testing.T) {
	env := newEgressEnv()
	defer env.Log.Close()
	sink := NewGatedSink("out", 1, env)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	// Data and its marker are both durable before Run is ever
	// scheduled: without the sweep, cancellation would drop them.
	appendCommitted(t, env, "out", 0, "up/0", 1, 2)
	if err := sink.Run(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v", err)
	}
	c := sink.Counts()
	if c.Received != 2 || c.Undrained != 0 {
		t.Fatalf("marked batch not drained on cancel: %+v", c)
	}

	// A batch with no marker has no commit decision: the sweep must
	// leave it undelivered but accounted. (A fresh sink, as after a
	// restart: it re-reads the committed prefix too.)
	appendData(t, env, "out", 0, "up/0", 3, 4, 5)
	sink2 := NewGatedSink("out", 1, env)
	_ = sink2.Run(cancelled)
	c = sink2.Counts()
	if c.Received != 2 {
		t.Fatalf("unmarked batch delivered: %+v", c)
	}
	if c.Undrained != 3 {
		t.Fatalf("Undrained = %d, want 3", c.Undrained)
	}
}

func TestFrontierCodecRoundTrip(t *testing.T) {
	acked := map[ackKey]uint64{
		{0, "q1/out/0"}: 17,
		{3, "q1/out/1"}: 9,
		{1, ""}:         1,
	}
	buf := encodeFrontier(1234, acked)
	resume, got, err := decodeFrontier(buf)
	if err != nil {
		t.Fatal(err)
	}
	if resume != 1234 || len(got) != len(acked) {
		t.Fatalf("decoded resume=%d acked=%v", resume, got)
	}
	for k, v := range acked {
		if got[k] != v {
			t.Fatalf("acked[%v] = %d, want %d", k, got[k], v)
		}
	}
	if _, _, err := decodeFrontier(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated frontier decoded")
	}
	if _, _, err := decodeFrontier(nil); err == nil {
		t.Fatal("empty frontier decoded")
	}
}

func TestPermanentErrorMarking(t *testing.T) {
	base := errors.New("bad record")
	if !IsPermanentDeliveryError(PermanentError(base)) {
		t.Fatal("PermanentError not detected")
	}
	if !IsPermanentDeliveryError(fmt.Errorf("wrapped: %w", PermanentError(base))) {
		t.Fatal("wrapped PermanentError not detected")
	}
	if IsPermanentDeliveryError(base) {
		t.Fatal("plain error classified permanent")
	}
	if !errors.Is(PermanentError(base), base) {
		t.Fatal("PermanentError does not unwrap to its cause")
	}
}
