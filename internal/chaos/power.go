package chaos

import (
	"context"
	"fmt"
	"time"

	"impeller"
	"impeller/internal/nexmark"
	"impeller/internal/sharedlog"
	"impeller/internal/wal"
)

// Corruption selects the storage fault injected between the two phases
// of a power-failure run.
type Corruption int

const (
	// CorruptNone is a clean power cycle: everything the log
	// acknowledged is on the device, recovery replays it all.
	CorruptNone Corruption = iota
	// CorruptTornWrite tears the tail of the device mid-frame — the
	// final durable frame is half-written, as if the disk lied about
	// its last sync. Recovery must truncate the torn frame and the run
	// must still converge: everything the torn frame held is
	// re-derivable (markers, frontier persists), never input data.
	CorruptTornWrite
	// CorruptBitFlip flips one bit in the middle of the synced region —
	// silent media corruption destroying committed history. Recovery
	// truncates from the flipped frame; the run cannot be expected to
	// converge (inputs may be gone) but must never emit wrong output.
	CorruptBitFlip
)

func (c Corruption) String() string {
	switch c {
	case CorruptNone:
		return "none"
	case CorruptTornWrite:
		return "torn-write"
	case CorruptBitFlip:
		return "bit-flip"
	}
	return fmt.Sprintf("corruption(%d)", int(c))
}

// PowerConfig parameterizes one two-phase power-failure run: phase one
// runs a query on a durable cluster and hard-stops it (power loss),
// phase two recovers a new cluster from the WAL device and the
// checkpoint store's image, sends the rest of the input, and verifies
// the oracle across the restart boundary.
type PowerConfig struct {
	// Query selects the NEXMark query (1, 11, or 12 — the oracles).
	Query int
	// Protocol selects the fault-tolerance protocol under test.
	Protocol impeller.Protocol
	// Seed fixes the generators (0 uses 1).
	Seed uint64
	// Events is the input count per generator across both phases
	// (default 400; the first half is sent before the power failure).
	Events int
	// Parallelism is the per-stage task count (default 2); Generators
	// the ingress writer count (default 2).
	Parallelism int
	Generators  int
	// CommitInterval is the protocol's commit interval (default 20 ms).
	CommitInterval time.Duration
	// SnapshotInterval enables asynchronous state checkpoints (marker
	// protocol); corruption runs leave it 0 so recovery replays the log
	// alone and a truncated tail cannot strand a checkpoint that
	// references positions beyond it.
	SnapshotInterval time.Duration
	// Engine selects the task execution engine.
	Engine impeller.EngineMode
	// Corruption is the storage fault injected while the power is out.
	Corruption Corruption
	// MidFlight pulls the plug as soon as the input is durable instead
	// of waiting for phase one to converge: tasks die mid-computation,
	// the egress sink is hard-killed (no drain, no final frontier), and
	// recovery must finish the interrupted work from the log and the
	// checkpoint store alone.
	MidFlight bool
	// Timeout bounds each phase's convergence wait (default 30 s).
	Timeout time.Duration
}

func (c PowerConfig) withDefaults() PowerConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Events <= 0 {
		c.Events = 400
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 2
	}
	if c.Generators <= 0 {
		c.Generators = 2
	}
	if c.CommitInterval <= 0 {
		c.CommitInterval = 20 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// PowerResult is the outcome of one power-failure run.
type PowerResult struct {
	Config PowerConfig
	// Phase1Converged reports the pre-failure half converged before the
	// plug was pulled; Converged reports full convergence after the
	// restart. Violation is terminal and must stay empty in every cell.
	Phase1Converged bool
	Converged       bool
	Violation       string
	// Delivered/Deduped are the consumer's distinct and absorbed
	// deliveries across both phases (its state survives the failure, as
	// a real downstream system's would).
	Delivered, Deduped uint64
	// Resumed reports whether the phase-two egress sink resumed from an
	// ack frontier persisted before the power failure.
	Resumed bool
	// Recovery snapshots the recovered log's counters right after phase
	// two's cluster came up: records and metadata ops replayed, and the
	// truncation counters the corruption cells assert on.
	Recovery sharedlog.Stats
	// CkptTruncated is how many bytes of checkpoint-store WAL tail the
	// kvstore recovery discarded (0 on a clean cycle).
	CkptTruncated int
	// RecoveryTime is how long phase two's cluster construction took —
	// WAL replay plus checkpoint-store recovery.
	RecoveryTime time.Duration
}

func (r *PowerResult) String() string {
	status := "ok"
	if r.Violation != "" {
		status = "VIOLATION: " + r.Violation
	} else if !r.Converged {
		status = "NOT CONVERGED"
	}
	return fmt.Sprintf("q%-2d %-18s %-10s recovered=%d metaops=%d trunc=%d(%dB) ckpttrunc=%dB rec=%v delivered=%d dedup=%d resumed=%v %s",
		r.Config.Query, r.Config.Protocol, r.Config.Corruption,
		r.Recovery.RecoveredRecords, r.Recovery.RecoveredMetaOps,
		r.Recovery.WALTruncations, r.Recovery.WALTruncatedBytes, r.CkptTruncated,
		r.RecoveryTime.Round(100*time.Microsecond),
		r.Delivered, r.Deduped, r.Resumed, status)
}

// tornTailBytes is how much CorruptTornWrite shaves off the device.
// Smaller than the minimum frame size (HeaderSize+1), so the final
// durable frame is always left torn, never removed whole — the
// truncation counter is deterministically exercised.
const tornTailBytes = wal.HeaderSize - 6

// RunPower executes one power-failure run. Phase one: run the query on
// a cluster whose shared log persists to a WAL device, send the first
// half of the input, converge, then pull the plug — the log is closed
// mid-flight, the task goroutines die, and the configured storage
// corruption is applied to the device. Phase two: build a new cluster
// that recovers from the device and the checkpoint store's surviving
// image, reattach the same external consumer, send the second half, and
// poll the oracle. The consumer's applied set must never contradict
// exactly-once semantics across the boundary; clean and torn-tail runs
// must additionally converge to the oracle's exact output.
func RunPower(cfg PowerConfig) (*PowerResult, error) {
	cfg = cfg.withDefaults()
	orc, err := newOracle(cfg.Query)
	if err != nil {
		return nil, err
	}
	res := &PowerResult{Config: cfg}
	topo, err := nexmark.BuildOpts(cfg.Query, nexmark.Options{PerUpdateWindows: true})
	if err != nil {
		return nil, err
	}
	clusterCfg := impeller.ClusterConfig{
		Protocol:             cfg.Protocol,
		CommitInterval:       cfg.CommitInterval,
		SnapshotInterval:     cfg.SnapshotInterval,
		DefaultParallelism:   cfg.Parallelism,
		IngressWriters:       cfg.Generators,
		IngressFlushInterval: 5 * time.Millisecond,
		LogShards:            logShards,
		OrderingInterval:     time.Millisecond,
		OrderingShards:       2,
		Seed:                 cfg.Seed,
		Engine:               cfg.Engine,
	}

	// The external world: the WAL device the log persists to, and the
	// consumer whose applied set (and dedupe floors) outlives the
	// cluster, as a downstream database would.
	dev := wal.NewDevice()
	outs := newOutputs()
	cons := newEgressConsumer(outs)
	stream := nexmark.OutputStream(cfg.Query)
	half := cfg.Events / 2
	spacing := eventSpacing(cfg.Query)

	// send replays each generator's deterministic event stream and sends
	// the half selected by [from, to) — phase two regenerates the same
	// stream and skips the prefix, so the input is identical to what a
	// single uninterrupted run would have produced.
	send := func(app *impeller.App, from, to int) error {
		for g := 0; g < cfg.Generators; g++ {
			gen := nexmark.NewGenerator(cfg.Seed + uint64(g))
			for i := 0; i < to; i++ {
				et := eventBase + int64(i)*spacing
				ev := gen.Next(et)
				if i < from {
					continue
				}
				key := []byte(fmt.Sprintf("%d-%d", g, i))
				orc.record(key, ev.Payload)
				if err := app.SendVia(nexmark.EventStream, g, key, ev.Payload, et); err != nil {
					return err
				}
			}
		}
		return nil
	}
	converge := func(deadline time.Time) (bool, string) {
		for {
			done, violation := orc.check(outs)
			if done || violation != "" || time.Now().After(deadline) {
				return done, violation
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// ---- Phase one: durable cluster up to the power failure. ----
	phase1Cfg := clusterCfg
	phase1Cfg.WAL = dev
	cluster1 := impeller.NewCluster(phase1Cfg)
	app1, err := cluster1.Run(topo)
	if err != nil {
		cluster1.Close()
		return nil, err
	}
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runner1 := newEgressRunner(app1, stream, cons, impeller.DeliveryOptions{})
	if !runner1.launch(runCtx) {
		return nil, fmt.Errorf("chaos: phase-one egress sink never started")
	}
	if err := send(app1, 0, half); err != nil {
		return nil, err
	}
	// Drain the ingress buffers so every phase-one input is in the log
	// before the plug is pulled: input loss is a controlled variable,
	// not an accident of flush timing.
	if err := app1.FlushIngress(); err != nil {
		return nil, fmt.Errorf("chaos: phase-one ingress flush: %w", err)
	}
	if cfg.MidFlight {
		// Hard-kill the sink — no drain, no final frontier — exactly as
		// a power loss would; whatever frontier its periodic persists
		// reached is all phase two gets.
		runner1.kill()
	} else {
		done, violation := converge(time.Now().Add(cfg.Timeout))
		res.Phase1Converged = done
		if violation != "" {
			res.Violation = violation
			return res, nil
		}
		if !done {
			return res, fmt.Errorf("chaos: phase one never converged (%d inputs)", orc.inputs())
		}
		// Graceful egress stop persists the final ack frontier; the
		// tasks and the log are then hard-stopped — everything after
		// this point must come off the device.
		runner1.finish()
	}
	ckptWAL := cluster1.Checkpoints().WAL()
	app1.PowerFail()

	// ---- The power is out: apply the configured storage fault. ----
	dev.PowerFail(0) // drop anything appended but never synced
	switch cfg.Corruption {
	case CorruptTornWrite:
		dev.TruncateTo(dev.Size() - tornTailBytes)
	case CorruptBitFlip:
		dev.FlipBit(dev.Size()/2, 3)
	}

	// ---- Phase two: recover and finish the run. ----
	phase2Cfg := clusterCfg
	phase2Cfg.WAL = dev
	phase2Cfg.CheckpointWAL = ckptWAL
	recoverStart := time.Now()
	cluster2 := impeller.NewCluster(phase2Cfg)
	res.RecoveryTime = time.Since(recoverStart)
	res.Recovery = cluster2.LogStats()
	res.CkptTruncated = cluster2.Checkpoints().TruncatedBytes()
	defer cluster2.Close()
	app2, err := cluster2.Run(topo)
	if err != nil {
		return nil, err
	}
	defer app2.Stop()
	runner2 := newEgressRunner(app2, stream, cons, impeller.DeliveryOptions{})
	if !runner2.launch(runCtx) {
		return nil, fmt.Errorf("chaos: phase-two egress sink never started")
	}
	if err := send(app2, half, cfg.Events); err != nil {
		return nil, err
	}
	// Corrupted history may have destroyed committed input, so a
	// bit-flip run polls for a bounded grace window instead of a full
	// timeout: convergence is not expected, wrong output is still fatal.
	wait := cfg.Timeout
	if cfg.Corruption == CorruptBitFlip {
		wait = 3 * time.Second
		if wait > cfg.Timeout {
			wait = cfg.Timeout
		}
	}
	done, violation := converge(time.Now().Add(wait))
	res.Converged = done
	res.Violation = violation

	runner2.finish()
	stats, _, _ := runner2.snapshot()
	res.Resumed = stats.Resumed
	res.Delivered, res.Deduped, _ = cons.snapshot()
	return res, nil
}
