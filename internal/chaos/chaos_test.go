package chaos

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"impeller"
)

var protocols = []impeller.Protocol{
	impeller.ProgressMarker,
	impeller.KafkaTxn,
	impeller.AlignedCheckpoint,
}

// TestChaos is the exactly-once chaos matrix: three NEXMark queries ×
// three fault-tolerance protocols, each under a seeded fault schedule
// of at least 20 injected faults across the log and process planes.
// In -short mode one query runs per protocol.
func TestChaos(t *testing.T) {
	queries := []int{1, 11, 12}
	for i, proto := range protocols {
		for j, query := range queries {
			if testing.Short() && j != i {
				continue
			}
			proto, query := proto, query
			t.Run(fmt.Sprintf("q%d-%s", query, proto), func(t *testing.T) {
				t.Parallel()
				res, err := Run(Config{Query: query, Protocol: proto, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				t.Log(res)
				if res.Violation != "" {
					t.Fatalf("exactly-once violation: %s", res.Violation)
				}
				if !res.Converged {
					t.Fatalf("output never converged: sent=%d bids=%d delivered=%d restarts=%d",
						res.Sent, res.Bids, res.Delivered, res.Restarts)
				}
				if res.Plan.Faults < 20 {
					t.Fatalf("plan injected %d faults, want >= 20", res.Plan.Faults)
				}
				if res.Restarts == 0 {
					t.Fatal("no task ever restarted; the schedule injected nothing")
				}
				assertEgress(t, res)
				if proto == impeller.ProgressMarker {
					if res.Zombified == 0 {
						t.Fatal("no zombie was ever planted")
					}
					if res.CondFailed == 0 {
						t.Fatal("no zombie append was fenced (CondFailed = 0)")
					}
				}
			})
		}
	}
}

// assertEgress checks the transactional egress layer's invariants on a
// converged run: the killed sink's replacements actually resumed from a
// persisted frontier, redelivered work was absorbed by the consumer's
// dedupe rather than double-applied (the oracle would have flagged a
// double-apply as a violation), and nothing was dead-lettered — the
// fault plane injects only transient consumer errors.
func assertEgress(t *testing.T, res *Result) {
	t.Helper()
	wantSinks := res.Config.SinkKills + 1
	if res.SinkIncarnations != wantSinks {
		t.Fatalf("egress ran %d sink incarnations, want %d", res.SinkIncarnations, wantSinks)
	}
	if !res.Delivery.Resumed {
		t.Fatal("no sink incarnation ever resumed from a persisted ack frontier")
	}
	if res.Delivery.DeadLettered != 0 {
		t.Fatalf("%d records dead-lettered under purely transient faults", res.Delivery.DeadLettered)
	}
	if res.Delivery.TransientErrors == 0 {
		t.Fatal("no consumer fault window ever rejected a delivery")
	}
	if res.RecoverToDeliver <= 0 {
		t.Fatal("no delivery observed after a sink kill (recovery-to-first-delivery unmeasured)")
	}
	// Every consumer apply is either a distinct record or an absorbed
	// duplicate, and every apply was acked except the ones whose ack the
	// fault plane dropped: distinct + deduped = acked + acksLost.
	if res.Delivered == 0 || res.Delivered+res.ConsumerDeduped != res.Delivery.Delivered+res.ConsumerAcksLost {
		t.Fatalf("consumer applied %d distinct + %d deduped; sink acked %d with %d acks lost",
			res.Delivered, res.ConsumerDeduped, res.Delivery.Delivered, res.ConsumerAcksLost)
	}
}

// TestChaosShards4 runs the matrix's hardest ordering configuration:
// four sequencer shards, so the global cut aggregates across twice as
// many crash/delay targets as the default, on top of the full egress
// fault plane. One cell per protocol keeps the runtime bounded.
func TestChaosShards4(t *testing.T) {
	queries := []int{1, 11, 12}
	for i, proto := range protocols {
		proto, query := proto, queries[i]
		t.Run(fmt.Sprintf("q%d-%s", query, proto), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Query: query, Protocol: proto, Seed: 11, OrderingShards: 4})
			if err != nil {
				t.Fatal(err)
			}
			t.Log(res)
			if res.Violation != "" {
				t.Fatalf("exactly-once violation: %s", res.Violation)
			}
			if !res.Converged {
				t.Fatalf("output never converged: sent=%d bids=%d delivered=%d restarts=%d",
					res.Sent, res.Bids, res.Delivered, res.Restarts)
			}
			assertEgress(t, res)
		})
	}
}

// TestChaosTasklet pins chaos cells to the cooperative tasklet engine:
// the full fault plan (kills, zombies, node crashes, infra faults, sink
// kills, consumer faults) must produce the same exactly-once outcome
// when every operator runs as a tasklet on shared event loops. One cell
// per protocol; the progress-marker cell also requires a fenced zombie,
// proving the fencing race exists under cooperative scheduling too.
// In -short mode only the progress-marker cell runs.
func TestChaosTasklet(t *testing.T) {
	queries := []int{1, 11, 12}
	for i, proto := range protocols {
		if testing.Short() && proto != impeller.ProgressMarker {
			continue
		}
		proto, query := proto, queries[i]
		t.Run(fmt.Sprintf("q%d-%s", query, proto), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Query: query, Protocol: proto, Seed: 7, Engine: impeller.EngineTasklet})
			if err != nil {
				t.Fatal(err)
			}
			t.Log(res)
			if res.Violation != "" {
				t.Fatalf("exactly-once violation: %s", res.Violation)
			}
			if !res.Converged {
				t.Fatalf("output never converged: sent=%d bids=%d delivered=%d restarts=%d",
					res.Sent, res.Bids, res.Delivered, res.Restarts)
			}
			if res.Restarts == 0 {
				t.Fatal("no task ever restarted; the schedule injected nothing")
			}
			assertEgress(t, res)
			if proto == impeller.ProgressMarker {
				if res.Zombified == 0 {
					t.Fatal("no zombie was ever planted")
				}
				if res.CondFailed == 0 {
					t.Fatal("no zombie append was fenced (CondFailed = 0)")
				}
			}
		})
	}
}

// faultFree disables every fault plane: the run is a plain end-to-end
// execution whose output the oracle still verifies, so two engines can
// be compared on identical inputs.
func faultFree(query int, proto impeller.Protocol, engine impeller.EngineMode) Config {
	return Config{
		Query: query, Protocol: proto, Seed: 7, Engine: engine,
		InfraFaults: -1, Kills: -1, Zombies: -1, NodeCrashes: -1,
		SinkKills: -1, ConsumerFaults: -1,
	}
}

// TestEngineEquivalence: for every (query, protocol) the goroutine and
// tasklet engines must deliver the same oracle-verified output on
// identical fault-free inputs — same distinct delivered count, zero
// duplicates reaching the consumer, full convergence. The inputs are
// seeded and the fault planes are disabled, so any divergence is an
// engine bug, not scheduling noise. In -short mode the diagonal runs.
func TestEngineEquivalence(t *testing.T) {
	queries := []int{1, 11, 12}
	for i, proto := range protocols {
		for j, query := range queries {
			if testing.Short() && j != i {
				continue
			}
			proto, query := proto, query
			t.Run(fmt.Sprintf("q%d-%s", query, proto), func(t *testing.T) {
				t.Parallel()
				var delivered [2]uint64
				for _, engine := range []impeller.EngineMode{impeller.EngineGoroutine, impeller.EngineTasklet} {
					res, err := Run(faultFree(query, proto, engine))
					if err != nil {
						t.Fatalf("%v: %v", engine, err)
					}
					if res.Violation != "" {
						t.Fatalf("%v: exactly-once violation: %s", engine, res.Violation)
					}
					if !res.Converged {
						t.Fatalf("%v: output never converged: sent=%d bids=%d delivered=%d",
							engine, res.Sent, res.Bids, res.Delivered)
					}
					delivered[engine] = res.Delivered
				}
				if delivered[impeller.EngineGoroutine] != delivered[impeller.EngineTasklet] {
					t.Fatalf("engines diverged: goroutine delivered %d records, tasklet %d",
						delivered[impeller.EngineGoroutine], delivered[impeller.EngineTasklet])
				}
			})
		}
	}
}

// TestGenPlanDeterministic: the same (config, targets) must yield the
// same plan, and a different seed a different one.
func TestGenPlanDeterministic(t *testing.T) {
	targets := []impeller.TaskID{"a/0", "a/1", "b/0", "b/1"}
	cfg := Config{Query: 11, Protocol: impeller.ProgressMarker, Seed: 42}
	p1 := GenPlan(cfg, targets)
	p2 := GenPlan(cfg, targets)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed produced different plans")
	}
	// Target order must not matter: the plan sorts before sampling.
	shuffled := []impeller.TaskID{"b/1", "a/0", "b/0", "a/1"}
	if p3 := GenPlan(cfg, shuffled); !reflect.DeepEqual(p1, p3) {
		t.Fatal("target order changed the plan")
	}
	cfg.Seed = 43
	if p4 := GenPlan(cfg, targets); reflect.DeepEqual(p1.Tasks, p4.Tasks) {
		t.Fatal("different seed produced the same task-fault stream")
	}
	if p1.Faults < 20 {
		t.Fatalf("default plan has %d faults, want >= 20", p1.Faults)
	}
	// The egress plane is part of the plan: two sink kills inside the
	// window, sorted, plus the consumer fault schedule.
	if len(p1.SinkKills) != 2 {
		t.Fatalf("plan has %d sink kills, want 2", len(p1.SinkKills))
	}
	for i, at := range p1.SinkKills {
		if at <= 0 || at >= cfgDuration(cfg) {
			t.Fatalf("sink kill %d at %v is outside the fault window", i, at)
		}
		if i > 0 && at < p1.SinkKills[i-1] {
			t.Fatal("sink kills are not sorted")
		}
	}
	if p1.Consumer.Faults < 10 {
		t.Fatalf("consumer schedule has %d fault windows, want >= 10", p1.Consumer.Faults)
	}
}

func cfgDuration(c Config) (d time.Duration) { return c.withDefaults().Duration }

// TestGenPlanAlignedHasNoZombies: aligned-checkpoint runs convert
// zombies to kills (no fencing race to exercise) without shrinking
// the fault budget.
func TestGenPlanAlignedHasNoZombies(t *testing.T) {
	targets := []impeller.TaskID{"a/0", "a/1"}
	marker := GenPlan(Config{Query: 1, Protocol: impeller.ProgressMarker, Seed: 5}, targets)
	aligned := GenPlan(Config{Query: 1, Protocol: impeller.AlignedCheckpoint, Seed: 5}, targets)
	for _, f := range aligned.Tasks {
		if f.Kind == ZombifyTask {
			t.Fatalf("aligned plan contains a zombify at %v", f.At)
		}
	}
	if aligned.Faults < marker.Faults {
		t.Fatalf("aligned plan has %d faults, marker has %d", aligned.Faults, marker.Faults)
	}
	found := false
	for _, f := range marker.Tasks {
		if f.Kind == ZombifyTask {
			found = true
		}
	}
	if !found {
		t.Fatal("marker plan contains no zombify")
	}
}
