package chaos

import (
	"context"
	"sync"
	"time"

	"impeller"
	"impeller/internal/core"
)

// egressRunner supervises the delivery sink across scheduled hard
// kills. A kill cancels the running incarnation's context — no drain,
// no final frontier, exactly the crash the egress protocol must survive
// — and the next incarnation is a fresh DeliverySink that resumes from
// the last ack frontier persisted to the egress-offsets substream. The
// consumer (and its dedupe state) persists across incarnations.
type egressRunner struct {
	app      *impeller.App
	stream   impeller.StreamID
	consumer core.Consumer
	opts     core.DeliveryOptions

	mu           sync.Mutex
	ds           *core.DeliverySink
	cancel       context.CancelFunc
	runDone      chan struct{}
	incarnations int
	stats        core.DeliveryStats
	counts       core.SinkCounts
}

func newEgressRunner(app *impeller.App, stream impeller.StreamID, consumer core.Consumer, opts core.DeliveryOptions) *egressRunner {
	return &egressRunner{app: app, stream: stream, consumer: consumer, opts: opts}
}

// launch starts a new sink incarnation, retrying construction while the
// log rides out infra faults (loading the persisted frontier reads the
// log). Returns false only if ctx dies first.
func (e *egressRunner) launch(ctx context.Context) bool {
	for {
		ds, err := e.app.NewDeliverySink(e.stream, e.consumer, e.opts)
		if err == nil {
			ictx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			e.mu.Lock()
			e.ds, e.cancel, e.runDone = ds, cancel, done
			e.incarnations++
			e.mu.Unlock()
			go func() {
				_ = ds.Run(ictx)
				close(done)
			}()
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// kill hard-crashes the current incarnation: cancel, wait for Run to
// unwind, fold its counters. Unpersisted acks die with it — the next
// incarnation redelivers that suffix and the consumer's dedupe absorbs
// it.
func (e *egressRunner) kill() {
	e.mu.Lock()
	ds, cancel, done := e.ds, e.cancel, e.runDone
	e.mu.Unlock()
	if ds == nil {
		return
	}
	cancel()
	<-done
	e.fold(ds)
}

// finish gracefully stops the current incarnation (drain the window,
// persist the final frontier) and folds its counters.
func (e *egressRunner) finish() {
	e.mu.Lock()
	ds, cancel := e.ds, e.cancel
	e.ds = nil
	e.mu.Unlock()
	if ds == nil {
		return
	}
	ds.Stop()
	cancel()
	e.fold(ds)
}

func (e *egressRunner) fold(ds *core.DeliverySink) {
	e.mu.Lock()
	e.stats.Add(ds.Stats())
	c := ds.Sink().Counts()
	e.counts.Add(c)
	if ds == e.ds {
		e.ds = nil
	}
	e.mu.Unlock()
}

func (e *egressRunner) snapshot() (core.DeliveryStats, core.SinkCounts, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats, e.counts, e.incarnations
}
