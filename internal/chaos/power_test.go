package chaos

import (
	"fmt"
	"testing"
	"time"

	"impeller"
)

// TestChaosPowerFailure is the whole-cluster power-failure matrix: all
// three fault-tolerance protocols × both execution engines run a
// NEXMark query on a durable cluster, lose power mid-run (hard stop,
// log closed first), recover a fresh cluster from the WAL device plus
// the checkpoint store's surviving image, and must converge to the
// oracle's exact exactly-once output across the restart — including the
// egress sink resuming from the ack frontier persisted before the
// failure. In -short mode each protocol runs on one engine.
func TestChaosPowerFailure(t *testing.T) {
	queries := []int{1, 11, 12}
	engines := []impeller.EngineMode{impeller.EngineGoroutine, impeller.EngineTasklet}
	for i, proto := range protocols {
		for j, engine := range engines {
			if testing.Short() && j != i%2 {
				continue
			}
			proto, query, engine := proto, queries[i], engine
			t.Run(fmt.Sprintf("q%d-%s-%v", query, proto, engine), func(t *testing.T) {
				t.Parallel()
				res, err := RunPower(PowerConfig{
					Query:    query,
					Protocol: proto,
					Seed:     7,
					Engine:   engine,
					// Exercise the checkpoint-store recovery path too:
					// phase one persists async snapshots (marker
					// protocol) that phase two rebuilds from the
					// CheckpointWAL image.
					SnapshotInterval: 60 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Log(res)
				if res.Violation != "" {
					t.Fatalf("exactly-once violation across power failure: %s", res.Violation)
				}
				if !res.Phase1Converged {
					t.Fatal("phase one never converged before the power failure")
				}
				if !res.Converged {
					t.Fatalf("output never converged after recovery: delivered=%d deduped=%d recovered=%d",
						res.Delivered, res.Deduped, res.Recovery.RecoveredRecords)
				}
				if res.Recovery.RecoveredRecords == 0 {
					t.Fatal("recovery replayed no records; the WAL was empty")
				}
				if res.Recovery.RecoveredMetaOps == 0 {
					t.Fatal("recovery replayed no metadata ops (fences, seq reservations)")
				}
				if res.Recovery.WALTruncations != 0 {
					t.Fatalf("clean power cycle truncated the WAL %d times (%d bytes)",
						res.Recovery.WALTruncations, res.Recovery.WALTruncatedBytes)
				}
				if !res.Resumed {
					t.Fatal("phase-two egress sink did not resume from the persisted ack frontier")
				}
			})
		}
	}
}

// TestChaosPowerFailureMidFlight pulls the plug while the query is
// still computing: input is durable but processing, delivery, and the
// egress frontier are all mid-flight when the cluster hard-stops. The
// recovered cluster must finish the interrupted work from the log and
// checkpoint store alone and converge to the exact oracle output — any
// re-delivery the replayed suffix causes must be absorbed by the
// consumer's dedupe, never double-applied.
func TestChaosPowerFailureMidFlight(t *testing.T) {
	queries := []int{1, 11, 12}
	for i, proto := range protocols {
		proto, query := proto, queries[i]
		t.Run(fmt.Sprintf("q%d-%s", query, proto), func(t *testing.T) {
			t.Parallel()
			res, err := RunPower(PowerConfig{
				Query:            query,
				Protocol:         proto,
				Seed:             7,
				MidFlight:        true,
				SnapshotInterval: 60 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Log(res)
			if res.Violation != "" {
				t.Fatalf("exactly-once violation across mid-flight power failure: %s", res.Violation)
			}
			if !res.Converged {
				t.Fatalf("output never converged after mid-flight recovery: delivered=%d deduped=%d recovered=%d",
					res.Delivered, res.Deduped, res.Recovery.RecoveredRecords)
			}
			if res.Recovery.RecoveredRecords == 0 {
				t.Fatal("recovery replayed no records; the WAL was empty")
			}
		})
	}
}

// TestChaosPowerFailureCorruption is the storage-corruption plane: the
// power failure additionally damages the WAL device. A torn tail (the
// disk lied about its final sync) must be truncated at the last valid
// frame and the run must still converge exactly — torn frames hold only
// re-derivable state. A bit flip destroying committed mid-log history
// must also be truncated, and while convergence cannot be promised
// (input may be gone), the output must never contradict exactly-once
// semantics. Both cells leave SnapshotInterval at 0 so recovery replays
// the log alone: a truncated log must not strand a checkpoint that
// references positions beyond the recovered tail.
func TestChaosPowerFailureCorruption(t *testing.T) {
	cases := []struct {
		corruption   Corruption
		mustConverge bool
	}{
		{CorruptTornWrite, true},
		{CorruptBitFlip, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.corruption.String(), func(t *testing.T) {
			t.Parallel()
			res, err := RunPower(PowerConfig{
				Query:      1,
				Protocol:   impeller.ProgressMarker,
				Seed:       7,
				Corruption: tc.corruption,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Log(res)
			if res.Violation != "" {
				t.Fatalf("corrupted WAL produced wrong output: %s", res.Violation)
			}
			if res.Recovery.WALTruncations == 0 || res.Recovery.WALTruncatedBytes == 0 {
				t.Fatalf("recovery did not truncate the corrupt region (truncations=%d bytes=%d)",
					res.Recovery.WALTruncations, res.Recovery.WALTruncatedBytes)
			}
			if res.Recovery.RecoveredRecords == 0 {
				t.Fatal("recovery replayed no records from the valid prefix")
			}
			if tc.mustConverge && !res.Converged {
				t.Fatalf("torn-tail run never converged: delivered=%d deduped=%d recovered=%d truncated=%dB",
					res.Delivered, res.Deduped, res.Recovery.RecoveredRecords, res.Recovery.WALTruncatedBytes)
			}
		})
	}
}
