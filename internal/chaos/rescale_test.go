package chaos

import (
	"testing"

	"impeller"
)

// runRescaleCell runs one rescale chaos cell and enforces the cell's
// invariants: the oracle converged with no exactly-once violation,
// every scheduled step committed exactly one epoch, the doomed
// mid-transition attempts all aborted without moving the epoch, and at
// least one fenced append was actually rejected by the log (otherwise
// no zombie raced its replacement and the run proved nothing).
func runRescaleCell(t *testing.T, cfg RescaleConfig) *RescaleResult {
	t.Helper()
	res, err := RunRescale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.Violation != "" {
		t.Fatalf("exactly-once violation: %s", res.Violation)
	}
	if !res.Converged {
		t.Fatalf("output never converged: delivered %d of %d inputs", res.Delivered, res.Sent)
	}
	if res.Steps != len(res.Config.Steps) {
		t.Fatalf("committed %d of %d rescale steps", res.Steps, len(res.Config.Steps))
	}
	if want := res.Steps * len(rescalerAbortPoints); !res.Config.NoAborts && res.Aborted != want {
		t.Fatalf("aborted %d doomed attempts, want %d", res.Aborted, want)
	}
	if res.CondFailed == 0 {
		t.Fatal("no conditional append was ever rejected; fencing untested")
	}
	return res
}

// TestChaosRescale kills the rescaler mid-transition (after the
// next-epoch assignment is written; after the old slots are fenced)
// before every committed split/merge of Q12's window stage, with task
// kills riding along, and verifies exactly-once at the consumer.
func TestChaosRescale(t *testing.T) {
	runRescaleCell(t, RescaleConfig{Seed: 3})
}

// TestChaosRescaleTasklet is the same cell on the cooperative engine.
func TestChaosRescaleTasklet(t *testing.T) {
	runRescaleCell(t, RescaleConfig{Seed: 3, Engine: impeller.EngineTasklet})
}

// TestChaosRescaleStateless runs the cell over Q1: no state handoff,
// but assignment epochs, fencing, and ingress routing still transition.
func TestChaosRescaleStateless(t *testing.T) {
	runRescaleCell(t, RescaleConfig{Query: 1, Seed: 7, Kills: -1})
}
