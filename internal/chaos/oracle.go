package chaos

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"impeller"
	"impeller/internal/nexmark"
)

// outputs collects what the gated sink delivered: per output key, how
// many distinct (non-duplicate) deliveries happened and the last value
// in delivery order. The sink delivers each key's records in log
// order from a single producing task, so "last" is well-defined.
type outputs struct {
	mu    sync.Mutex
	cells map[string]*cell
}

type cell struct {
	count uint64
	last  []byte
}

func newOutputs() *outputs {
	return &outputs{cells: make(map[string]*cell)}
}

func (o *outputs) add(key, value []byte) {
	o.mu.Lock()
	c := o.cells[string(key)]
	if c == nil {
		c = &cell{}
		o.cells[string(key)] = c
	}
	c.count++
	c.last = append(c.last[:0], value...)
	o.mu.Unlock()
}

// oracle verifies a query's output against a replay of the recorded
// inputs. record is called once per input event before it is sent;
// check is polled with the sink's observed outputs and reports
// (done, violation): done once every expected output has converged,
// violation (terminal) the moment any output contradicts exactly-once
// semantics — a duplicated delivery, an over-counted aggregate, or an
// output no input explains.
type oracle interface {
	record(key, payload []byte)
	check(o *outputs) (done bool, violation string)
	inputs() int
}

func newOracle(query int) (oracle, error) {
	switch query {
	case 1:
		return &q1Oracle{expect: make(map[string][]byte)}, nil
	case 11:
		return &q11Oracle{bidders: make(map[uint64]*span)}, nil
	case 12:
		return &q12Oracle{expect: make(map[q12Key]uint64)}, nil
	}
	return nil, fmt.Errorf("chaos: no oracle for query %d (want 1, 11, or 12)", query)
}

func u64le(v uint64) []byte { return binary.LittleEndian.AppendUint64(nil, v) }

// q1Oracle checks the currency-conversion map: every input bid must
// appear exactly once under its input key with the converted price;
// non-bids must not appear at all.
type q1Oracle struct {
	mu     sync.Mutex
	expect map[string][]byte
}

func (q *q1Oracle) record(key, payload []byte) {
	bid, err := nexmark.DecodeBid(payload)
	if err != nil {
		return // person or auction: filtered out by the query
	}
	bid.Price = bid.Price * 908 / 1000
	q.mu.Lock()
	q.expect[string(key)] = bid.Encode()
	q.mu.Unlock()
}

func (q *q1Oracle) inputs() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.expect)
}

func (q *q1Oracle) check(o *outputs) (bool, string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	for key, c := range o.cells {
		want, ok := q.expect[key]
		if !ok {
			return false, fmt.Sprintf("q1: output %q has no matching input", key)
		}
		if c.count > 1 {
			return false, fmt.Sprintf("q1: key %q delivered %d times", key, c.count)
		}
		if !bytes.Equal(c.last, want) {
			return false, fmt.Sprintf("q1: key %q has wrong converted bid", key)
		}
	}
	return len(o.cells) == len(q.expect), ""
}

// span is one bidder's expected session: the harness spaces event
// times far inside the session gap, so all of a bidder's bids belong
// to a single session spanning [min, max].
type span struct {
	count    uint64
	min, max int64
}

// q11Oracle checks session counts. Per-update emission keys carry the
// session's current bounds, so intermediate keys differ from the
// final one; the invariant is that no emission for a bidder ever
// exceeds that bidder's total (an over-count means a double-applied
// input), and the final session key converges to exactly the total.
type q11Oracle struct {
	mu      sync.Mutex
	bidders map[uint64]*span
}

func (q *q11Oracle) record(key, payload []byte) {
	bid, err := nexmark.DecodeBid(payload)
	if err != nil {
		return
	}
	q.mu.Lock()
	s := q.bidders[bid.Bidder]
	if s == nil {
		s = &span{min: bid.DateTime, max: bid.DateTime}
		q.bidders[bid.Bidder] = s
	}
	if bid.DateTime < s.min {
		s.min = bid.DateTime
	}
	if bid.DateTime > s.max {
		s.max = bid.DateTime
	}
	s.count++
	q.mu.Unlock()
}

func (q *q11Oracle) inputs() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, s := range q.bidders {
		n += int(s.count)
	}
	return n
}

func (q *q11Oracle) check(o *outputs) (bool, string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	for key, c := range o.cells {
		_, _, kb, err := impeller.SplitWindowKey([]byte(key))
		if err != nil || len(kb) != 8 {
			return false, fmt.Sprintf("q11: malformed session key %x", key)
		}
		bidder := binary.LittleEndian.Uint64(kb)
		s, ok := q.bidders[bidder]
		if !ok {
			return false, fmt.Sprintf("q11: session output for unknown bidder %d", bidder)
		}
		if n := nexmark.CountValue(c.last); n > s.count {
			return false, fmt.Sprintf("q11: bidder %d counted %d bids, only %d sent", bidder, n, s.count)
		}
	}
	gap := nexmark.Q11Gap.Microseconds()
	for bidder, s := range q.bidders {
		final := impeller.WindowKey(s.min, s.max+gap, u64le(bidder))
		c, ok := o.cells[string(final)]
		if !ok || nexmark.CountValue(c.last) != s.count {
			return false, ""
		}
	}
	return true, ""
}

type q12Key struct {
	bidder uint64
	start  int64
}

// q12Oracle checks tumbling-window counts: per (bidder, window), the
// last delivered value must converge to exactly the number of bids
// that bidder placed inside the window, and no emission may exceed it.
type q12Oracle struct {
	mu     sync.Mutex
	expect map[q12Key]uint64
}

func (q *q12Oracle) record(key, payload []byte) {
	bid, err := nexmark.DecodeBid(payload)
	if err != nil {
		return
	}
	size := nexmark.Q12Window.Size.Microseconds()
	q.mu.Lock()
	q.expect[q12Key{bid.Bidder, (bid.DateTime / size) * size}]++
	q.mu.Unlock()
}

func (q *q12Oracle) inputs() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, c := range q.expect {
		n += int(c)
	}
	return n
}

func (q *q12Oracle) check(o *outputs) (bool, string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	size := nexmark.Q12Window.Size.Microseconds()
	for key, c := range o.cells {
		start, end, kb, err := impeller.SplitWindowKey([]byte(key))
		if err != nil || len(kb) != 8 || end != start+size {
			return false, fmt.Sprintf("q12: malformed window key %x", key)
		}
		want, ok := q.expect[q12Key{binary.LittleEndian.Uint64(kb), start}]
		if !ok {
			return false, fmt.Sprintf("q12: output for window %d with no input", start)
		}
		if n := nexmark.CountValue(c.last); n > want {
			return false, fmt.Sprintf("q12: window %d counted %d bids, only %d sent", start, n, want)
		}
	}
	for k, want := range q.expect {
		key := impeller.WindowKey(k.start, k.start+size, u64le(k.bidder))
		c, ok := o.cells[string(key)]
		if !ok || nexmark.CountValue(c.last) != want {
			return false, ""
		}
	}
	return true, ""
}
