package chaos

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"impeller"
	"impeller/internal/core"
	"impeller/internal/nexmark"
	"impeller/internal/sim"
)

// Rescale chaos cell: a NEXMark oracle query runs under a schedule of
// live rescales — splits and merges of the stateful stage's slot count
// on the live log — while the rescaler itself is repeatedly killed
// mid-transition. Before every committed step, doomed Rescaler attempts
// abort at each protocol point (after the epoch-(E+1) assignment keys
// are written; after the old slots are fenced and handoff floors
// published), leaving fenced instances, inert next-epoch keys, and
// stale handoff floors behind for the committed attempt — and for
// recovery — to tolerate. Task kills ride along so slot restarts land
// between (and inside) transitions. The oracle then verifies the same
// exactly-once output invariant as the main harness.
type RescaleConfig struct {
	// Query selects the NEXMark query: 1, 11, or 12 (the queries with
	// closed-form output oracles; default 12 — stateful, so rescales
	// migrate window state between slots).
	Query int
	// Seed fixes the step targets, abort points, and kill schedule.
	Seed uint64
	// Events is the input count per generator (default 600).
	Events int
	// Parallelism is the stage's initial slot count (default 2).
	Parallelism int
	// MaxParallelism is the stage's key-group count — the rescale
	// ceiling (default 8).
	MaxParallelism int
	// Generators is the number of ingress writers (default 2).
	Generators int
	// CommitInterval is the progress-marker interval (default 20 ms).
	CommitInterval time.Duration
	// Steps are the committed slot counts applied in order across the
	// run (default derived from the seed: 3 steps alternating
	// scale-up/scale-down within 1..MaxParallelism).
	Steps []int
	// NoAborts skips the doomed mid-transition attempts (default off:
	// every committed step is preceded by one abort at each point).
	NoAborts bool
	// Kills is the number of task kills riding along (default 3;
	// negative disables).
	Kills int
	// Duration is the input window; steps are spread across it
	// (default 1.2 s). Timeout bounds convergence (default 30 s).
	Duration time.Duration
	Timeout  time.Duration
	// Engine selects the task execution engine; both must pass.
	Engine impeller.EngineMode
}

func (c RescaleConfig) withDefaults() RescaleConfig {
	if c.Query == 0 {
		c.Query = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Events <= 0 {
		c.Events = 600
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 2
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = 8
	}
	if c.Generators <= 0 {
		c.Generators = 2
	}
	if c.CommitInterval <= 0 {
		c.CommitInterval = 20 * time.Millisecond
	}
	if c.Kills == 0 {
		c.Kills = 3
	}
	if c.Duration <= 0 {
		c.Duration = 1200 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if len(c.Steps) == 0 {
		// Alternate away from the current slot count so every step is a
		// real transition; the derivation is deterministic in the seed.
		rng := sim.NewRand(c.Seed ^ 0xa076_1d64_78bd_642f)
		cur := c.Parallelism
		for i := 0; i < 3; i++ {
			next := cur
			for next == cur {
				next = 1 + rng.Intn(c.MaxParallelism)
			}
			c.Steps = append(c.Steps, next)
			cur = next
		}
	}
	return c
}

// RescaleResult is the outcome of one rescale chaos run.
type RescaleResult struct {
	Config RescaleConfig
	// Epochs are the committed assignment epochs after each step.
	Epochs []uint64
	// Aborted counts rescaler attempts killed mid-transition; Steps
	// counts committed transitions.
	Aborted, Steps int
	// Sent / Delivered are input events and the consumer's distinct
	// applied count; ConsumerDeduped counts redeliveries absorbed.
	Sent, Delivered, ConsumerDeduped uint64
	// Restarts sums task restarts (fenced instances exiting with
	// ErrZombie count here once the monitor replaces them); CondFailed
	// counts fencing rejections observed by the log — zero means no
	// zombie was ever fenced and the cell proved nothing.
	Restarts   int
	CondFailed uint64
	// Converged / Violation mirror the main harness's oracle verdict.
	Converged bool
	Violation string
	Elapsed   time.Duration
}

// String renders one run as a table row.
func (r *RescaleResult) String() string {
	status := "ok"
	if r.Violation != "" {
		status = "VIOLATION: " + r.Violation
	} else if !r.Converged {
		status = "STUCK"
	}
	epochs := make([]string, len(r.Epochs))
	for i, e := range r.Epochs {
		epochs[i] = fmt.Sprint(e)
	}
	return fmt.Sprintf("q%-2d seed=%-3d steps=%d aborted=%d epochs=%s restarts=%-2d fenced=%-3d dedup=%-3d %s",
		r.Config.Query, r.Config.Seed, r.Steps, r.Aborted, strings.Join(epochs, "→"),
		r.Restarts, r.CondFailed, r.ConsumerDeduped, status)
}

// errAbortRescale is returned by the doomed attempts' hook: the
// rescaler "dies" at that point and the transition never commits.
var errAbortRescale = errors.New("chaos: rescaler killed mid-transition")

// rescalerAbortPoints are the hook points a doomed attempt dies at, in
// protocol order.
var rescalerAbortPoints = []string{"assignment-written", "fenced"}

// RunRescale executes one rescale chaos run.
func RunRescale(cfg RescaleConfig) (*RescaleResult, error) {
	cfg = cfg.withDefaults()
	orc, err := newOracle(cfg.Query)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	cluster := impeller.NewCluster(impeller.ClusterConfig{
		Protocol:             impeller.ProgressMarker,
		CommitInterval:       cfg.CommitInterval,
		DefaultParallelism:   cfg.Parallelism,
		IngressWriters:       cfg.Generators,
		IngressFlushInterval: 5 * time.Millisecond,
		Seed:                 cfg.Seed,
		Engine:               cfg.Engine,
	})
	defer cluster.Close()
	topo, err := nexmark.BuildOpts(cfg.Query, nexmark.Options{
		PerUpdateWindows: true,
		MaxParallelism:   cfg.MaxParallelism,
	})
	if err != nil {
		return nil, err
	}
	app, err := cluster.Run(topo)
	if err != nil {
		return nil, err
	}
	defer app.Stop()
	mgr := app.Manager()
	mgr.SetTimeouts(6*cfg.CommitInterval, cfg.CommitInterval)
	stage := nexmark.RescaleStage(cfg.Query)
	res := &RescaleResult{Config: cfg}

	// Egress: same exactly-once measurement point as the main harness —
	// the external consumer's applied set behind a delivery sink.
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	outs := newOutputs()
	cons := newEgressConsumer(outs)
	runner := newEgressRunner(app, nexmark.OutputStream(cfg.Query), cons, core.DeliveryOptions{})
	if !runner.launch(runCtx) {
		return nil, fmt.Errorf("chaos: egress sink never started")
	}

	var wg sync.WaitGroup
	spacing := eventSpacing(cfg.Query)
	pace := cfg.Duration / time.Duration(cfg.Events)
	for g := 0; g < cfg.Generators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen := nexmark.NewGenerator(cfg.Seed + uint64(g))
			for i := 0; i < cfg.Events; i++ {
				et := eventBase + int64(i)*spacing
				ev := gen.Next(et)
				key := []byte(fmt.Sprintf("%d-%d", g, i))
				orc.record(key, ev.Payload)
				if err := app.SendVia(nexmark.EventStream, g, key, ev.Payload, et); err != nil {
					return
				}
				select {
				case <-runCtx.Done():
					return
				case <-time.After(pace):
				}
			}
		}(g)
	}

	// Kill plane: each kill targets a random live task (sampled at kill
	// time — the task set changes across epochs).
	krng := sim.NewRand(cfg.Seed ^ planSeedSalt)
	for i := 0; i < max(0, cfg.Kills); i++ {
		at := cfg.Duration/10 + time.Duration(krng.Int63()%int64(cfg.Duration*9/10))
		wg.Add(1)
		go func(at time.Duration) {
			defer wg.Done()
			select {
			case <-runCtx.Done():
				return
			case <-time.After(at):
			}
			if ids := mgr.TaskIDs(); len(ids) > 0 {
				_ = mgr.Kill(ids[int(at)%len(ids)])
			}
		}(at)
	}

	// Rescale plane, on the caller's goroutine: steps spread across the
	// input window, each preceded (unless NoAborts) by one doomed
	// attempt per protocol point. An aborted attempt must leave the
	// epoch unmoved; the monitor restarts its fenced instances under the
	// old assignment and processing resumes before the committed step.
	t0 := time.Now()
	interval := cfg.Duration / time.Duration(len(cfg.Steps)+1)
	for i, slots := range cfg.Steps {
		if wait := time.Duration(i+1)*interval - time.Since(t0); wait > 0 {
			time.Sleep(wait)
		}
		before := mgr.AssignmentEpoch(stage)
		if !cfg.NoAborts {
			for _, point := range rescalerAbortPoints {
				doomed := &core.Rescaler{M: mgr, Hook: func(p string) error {
					if p == point {
						return errAbortRescale
					}
					return nil
				}}
				if _, err := doomed.Rescale(runCtx, stage, slots); !errors.Is(err, errAbortRescale) {
					res.Violation = fmt.Sprintf("doomed attempt at %q returned %v", point, err)
				}
				res.Aborted++
				if e := mgr.AssignmentEpoch(stage); e != before {
					res.Violation = fmt.Sprintf("aborted attempt at %q moved the epoch %d→%d", point, before, e)
				}
			}
		}
		epoch, err := mgr.Rescale(runCtx, stage, slots)
		if err != nil {
			res.Violation = fmt.Sprintf("step %d (to %d slots): %v", i, slots, err)
			break
		}
		if epoch != before+1 {
			res.Violation = fmt.Sprintf("step %d committed epoch %d, want %d", i, epoch, before+1)
			break
		}
		res.Epochs = append(res.Epochs, epoch)
		res.Steps++
	}

	wg.Wait()

	deadline := start.Add(cfg.Timeout)
	for res.Violation == "" {
		done, violation := orc.check(outs)
		if violation != "" {
			res.Violation = violation
			break
		}
		if done {
			res.Converged = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	runner.finish()
	res.Delivered, res.ConsumerDeduped, _ = cons.snapshot()
	res.Sent = app.InputCount()
	for _, id := range mgr.TaskIDs() {
		res.Restarts += mgr.Restarts(id)
	}
	res.CondFailed = cluster.LogStats().CondFailed
	res.Elapsed = time.Since(start)
	return res, nil
}
