// Package chaos is a deterministic fault-injection harness: it runs a
// full NEXMark query under a seeded schedule of crashes, partitions,
// latency spikes, task kills, and zombie resurrections, and verifies
// the exactly-once output invariant against an oracle replay of the
// inputs. The same (seed, config) pair always generates the same fault
// plan, so a failing run reproduces.
//
// The harness exercises both fault planes:
//
//   - infrastructure faults (log-shard and sequencer-shard crashes,
//     client↔sequencer and client↔shard partitions, sequencer/shard
//     latency spikes) come from sim.GenFaultSchedule and stress the
//     log's replication, its sharded ordering plane (the log runs in
//     sequencer mode here, so cuts race crashes and delays of
//     individual local sequencers), and the runtime's transient-fault
//     retry layer;
//   - process faults (task kills, double-kills that land mid-recovery,
//     zombie resurrection via Manager.Zombify, compute-node crashes)
//     come from a second deterministic stream and stress recovery,
//     restart backoff, and fencing;
//   - egress faults (hard kills of the delivery sink mid-delivery,
//     consumer transient outages, latency spikes, and lost
//     acknowledgments) come from a third deterministic stream and
//     stress the transactional egress layer: every run delivers its
//     output through a DeliverySink to an external consumer, the
//     killed sink's replacement resumes from the persisted ack
//     frontier, and the oracle verifies exactly-once at the consumer's
//     applied set — the system boundary, not the commit point.
package chaos

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"impeller"
	"impeller/internal/core"
	"impeller/internal/nexmark"
	"impeller/internal/sim"
)

// Config parameterizes one chaos run. The zero value is not runnable;
// Query must be one of 1, 11, 12 (the queries with closed-form output
// oracles).
type Config struct {
	// Query selects the NEXMark query: 1 (stateless map), 11 (session
	// windows), or 12 (tumbling windows).
	Query int
	// Protocol selects the fault-tolerance protocol under test.
	Protocol impeller.Protocol
	// Seed fixes the fault plan, the generators, and the log simulation
	// (0 uses 1).
	Seed uint64
	// Events is the input count per generator (default 600).
	Events int
	// Parallelism is the per-stage task count (default 2).
	Parallelism int
	// Generators is the number of ingress writers (default 2).
	Generators int
	// CommitInterval is the protocol's commit interval (default 20 ms —
	// short, so faults land between many commit points).
	CommitInterval time.Duration
	// InfraFaults is the number of log-side faults to schedule via
	// sim.GenFaultSchedule (default 8).
	InfraFaults int
	// Kills is the number of task kills (default 8); every third kill
	// is a double-kill whose second kill lands while the replacement is
	// recovering.
	Kills int
	// Zombies is the number of zombie resurrections (default 4). The
	// aligned-checkpoint protocol has no zombie fencing race (recovery
	// is epoch-gated by the coordinator), so its zombies are converted
	// to kills to keep the fault count.
	Zombies int
	// NodeCrashes is the number of compute-node crash/recover pairs
	// (default 2); a crashed node fails every log operation of its
	// task, exercising the fatal path of the retry layer and the
	// manager's restart backoff.
	NodeCrashes int
	// OrderingShards runs the log in Scalog-style sequencer mode with
	// that many local sequencer shards, each an individual crash/delay
	// target of the infra schedule (default 2; negative runs immediate
	// ordering, the pre-split configuration). OrderingInterval is the
	// global cut interval (default 1 ms).
	OrderingShards   int
	OrderingInterval time.Duration
	// SinkKills is the number of hard egress-sink kills (default 2;
	// negative disables). Each kill cancels the delivery sink's context
	// mid-delivery — no drain, no final frontier — and a fresh
	// incarnation resumes from the last persisted ack frontier.
	SinkKills int
	// ConsumerFaults is the number of consumer-side fault windows
	// (default 10; negative disables): transient-error outages, latency
	// spikes, and lost acknowledgments, via sim.GenConsumerSchedule.
	ConsumerFaults int
	// Duration is the fault window; inputs are paced across it and
	// every fault starts inside it (default 1.2 s).
	Duration time.Duration
	// Timeout bounds how long the run may take to converge after the
	// faults heal (default 30 s).
	Timeout time.Duration
	// Engine selects the task execution engine (goroutine or tasklet);
	// both must satisfy the same exactly-once oracle.
	Engine impeller.EngineMode
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Events <= 0 {
		c.Events = 600
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 2
	}
	if c.Generators <= 0 {
		c.Generators = 2
	}
	if c.CommitInterval <= 0 {
		c.CommitInterval = 20 * time.Millisecond
	}
	// Negative fault counts disable that plane (fault-free runs for
	// engine-equivalence checks); zero selects the default. Negatives
	// survive defaulting — withDefaults is applied both by Run and by
	// GenPlan, so mapping them to zero here would resurrect the default
	// on the second pass — and are clamped to zero at the use sites.
	if c.InfraFaults == 0 {
		c.InfraFaults = 8
	}
	if c.Kills == 0 {
		c.Kills = 8
	}
	if c.Zombies == 0 {
		c.Zombies = 4
	}
	if c.NodeCrashes == 0 {
		c.NodeCrashes = 2
	}
	if c.OrderingShards < 0 {
		c.OrderingInterval = 0 // immediate ordering, no shard layer
	} else {
		if c.OrderingShards == 0 {
			c.OrderingShards = 2
		}
		if c.OrderingInterval <= 0 {
			c.OrderingInterval = time.Millisecond
		}
	}
	if c.SinkKills == 0 {
		c.SinkKills = 2
	}
	if c.ConsumerFaults == 0 {
		c.ConsumerFaults = 10
	}
	if c.Duration <= 0 {
		c.Duration = 1200 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// FaultKind is the kind of one scheduled process fault.
type FaultKind int

const (
	// KillTask crashes a task once; the manager restarts it.
	KillTask FaultKind = iota
	// DoubleKillTask crashes a task, then crashes its replacement a
	// few monitor ticks later — usually mid-recovery.
	DoubleKillTask
	// ZombifyTask keeps the old instance running while the manager
	// starts a replacement; the zombie's next conditional append must
	// lose to the replacement's fence.
	ZombifyTask
	// CrashNode crashes the task's compute node for Outage: every log
	// operation of that task fails fatally until the node recovers.
	CrashNode
)

func (k FaultKind) String() string {
	switch k {
	case KillTask:
		return "kill"
	case DoubleKillTask:
		return "double-kill"
	case ZombifyTask:
		return "zombify"
	case CrashNode:
		return "node-crash"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// TaskFault is one scheduled process fault at offset At from the start
// of the run.
type TaskFault struct {
	At     time.Duration
	Kind   FaultKind
	Target impeller.TaskID
	// Outage is how long a CrashNode fault lasts.
	Outage time.Duration
}

// Plan is the full deterministic fault plan of one run.
type Plan struct {
	// Infra is the log-side schedule (shard crashes, partitions,
	// latency spikes), played by sim.FaultSchedule.Play.
	Infra sim.FaultSchedule
	// Tasks are the process faults, sorted by At.
	Tasks []TaskFault
	// SinkKills are the offsets at which the egress delivery sink is
	// hard-killed, sorted ascending.
	SinkKills []time.Duration
	// Consumer is the consumer-side fault schedule.
	Consumer sim.ConsumerSchedule
	// Faults counts injected faults across all planes (a double-kill
	// counts twice; recoveries are not faults).
	Faults int
}

// logShards mirrors the cluster default (4 shards, replication 3).
const logShards = 3 + 1

// planSeedSalt decouples the process-fault stream from the infra
// schedule's randomness so tuning one plane does not reshuffle the
// other.
const planSeedSalt = 0x9e3779b97f4a7c15

// egressSeedSalt likewise decouples the egress plane (sink kills and
// consumer faults) from the other two.
const egressSeedSalt = 0xc2b2ae3d27d4eb4f

// GenPlan deterministically generates the fault plan for a run over
// the given task set. The same (cfg, targets) always yields the same
// plan. Kills land anywhere in the window; zombies land in its first
// 70% so input keeps flowing while the zombie races its replacement —
// that race is what forces a fenced append onto the log.
func GenPlan(cfg Config, targets []impeller.TaskID) Plan {
	cfg = cfg.withDefaults()
	shards := make([]string, logShards)
	pairs := [][2]string{{"client", "sequencer"}}
	for i := range shards {
		shards[i] = fmt.Sprintf("shard/%d", i)
		pairs = append(pairs, [2]string{"client", shards[i]})
	}
	// Sequencer shards are their own crash class: crashing one stalls
	// its local pending until recovery (and fails fresh appends routed
	// to it), without ever drawing down the storage quorum's outage
	// budget. They are also slowable — a slow local sequencer stalls the
	// global cut — and partitionable from clients.
	seqShards := make([]string, max(0, cfg.OrderingShards))
	for i := range seqShards {
		seqShards[i] = fmt.Sprintf("sequencer/%d", i)
		pairs = append(pairs, [2]string{"client", seqShards[i]})
	}
	var plan Plan
	if cfg.InfraFaults > 0 {
		// sim defaults Faults <= 0 back to 8, so a disabled infra plane
		// must skip generation entirely rather than ask for zero.
		plan.Infra = sim.GenFaultSchedule(cfg.Seed, sim.ScheduleConfig{
			Duration:   cfg.Duration,
			Crashable:  shards,
			CrashableB: seqShards,
			Pairs:      pairs,
			Slowable:   append(append([]string{"sequencer"}, shards...), seqShards...),
			Faults:     cfg.InfraFaults,
			// Replication 3 over 4 shards: two concurrent shard crashes
			// still leave every LSN with a live replica.
			MaxDown: 2,
			// One sequencer shard down at a time: the cut keeps advancing
			// on the others while the crashed shard's pending waits.
			MaxDownB: 1,
		})
	}
	plan.Faults = plan.Infra.Faults

	// Egress plane: sink kills land in the middle stretch of the window
	// — late enough that acks have been persisted (so resume is a real
	// mid-stream restart), early enough that input still flows while the
	// replacement catches up. Consumer fault windows cover the whole run.
	ern := sim.NewRand(cfg.Seed ^ egressSeedSalt)
	for i := 0; i < max(0, cfg.SinkKills); i++ {
		lo, hi := cfg.Duration/4, cfg.Duration*9/10
		plan.SinkKills = append(plan.SinkKills, lo+time.Duration(ern.Int63()%int64(hi-lo)))
		plan.Faults++
	}
	sort.Slice(plan.SinkKills, func(i, j int) bool { return plan.SinkKills[i] < plan.SinkKills[j] })
	if cfg.ConsumerFaults > 0 {
		plan.Consumer = sim.GenConsumerSchedule(cfg.Seed^egressSeedSalt, sim.ConsumerScheduleConfig{
			Duration: cfg.Duration,
			Faults:   cfg.ConsumerFaults,
		})
		plan.Faults += plan.Consumer.Faults
	}

	sorted := append([]impeller.TaskID(nil), targets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(sorted) == 0 {
		return plan
	}
	rng := sim.NewRand(cfg.Seed ^ planSeedSalt)
	between := func(lo, hi time.Duration) time.Duration {
		return lo + time.Duration(rng.Int63()%int64(hi-lo))
	}
	pick := func() impeller.TaskID { return sorted[rng.Intn(len(sorted))] }

	kills, zombies := max(0, cfg.Kills), max(0, cfg.Zombies)
	if cfg.Protocol == impeller.AlignedCheckpoint {
		kills += zombies
		zombies = 0
	}
	for i := 0; i < kills; i++ {
		f := TaskFault{At: between(cfg.Duration/10, cfg.Duration), Kind: KillTask, Target: pick()}
		if i%3 == 0 {
			f.Kind = DoubleKillTask
			plan.Faults++ // the second kill is its own fault
		}
		plan.Tasks = append(plan.Tasks, f)
		plan.Faults++
	}
	for i := 0; i < zombies; i++ {
		plan.Tasks = append(plan.Tasks, TaskFault{
			At:     between(cfg.Duration/5, cfg.Duration*7/10),
			Kind:   ZombifyTask,
			Target: pick(),
		})
		plan.Faults++
	}
	for i := 0; i < max(0, cfg.NodeCrashes); i++ {
		plan.Tasks = append(plan.Tasks, TaskFault{
			At:     between(cfg.Duration/10, cfg.Duration*8/10),
			Kind:   CrashNode,
			Target: pick(),
			Outage: between(30*time.Millisecond, 150*time.Millisecond),
		})
		plan.Faults++
	}
	sort.SliceStable(plan.Tasks, func(i, j int) bool { return plan.Tasks[i].At < plan.Tasks[j].At })
	return plan
}

// Result is the outcome of one chaos run.
type Result struct {
	Config Config
	Plan   Plan
	// Sent counts input events accepted by the ingress writers; Bids is
	// the subset the oracle tracks.
	Sent uint64
	Bids int
	// Delivered is the external consumer's distinct applied count — the
	// exactly-once measurement point. Duplicates / DroppedUncommitted
	// are the gated sinks' counters summed across incarnations: replayed
	// records suppressed by sequence-number dedup and uncommitted
	// records discarded.
	Delivered, Duplicates, DroppedUncommitted uint64
	// Delivery aggregates the delivery sinks' counters (attempts,
	// redeliveries, transient errors, dead letters, frontier persists)
	// across incarnations; SinkIncarnations counts delivery-sink
	// processes (1 + kills).
	Delivery         core.DeliveryStats
	SinkIncarnations int
	// ConsumerDeduped counts duplicate deliveries absorbed by the
	// consumer's sequence-number dedupe (sink restarts, lost acks);
	// ConsumerAcksLost counts acknowledgments the fault plane dropped
	// after the record was applied.
	ConsumerDeduped, ConsumerAcksLost uint64
	// RecoverToDeliver is the longest gap between a sink kill and the
	// replacement's first successful delivery.
	RecoverToDeliver time.Duration
	// Restarts sums task restarts; Zombified counts exactly the zombies
	// actually planted: Manager.Zombify refuses an instance that has
	// already exited, so a zombify racing a concurrent kill/restart is
	// reported as an error and not counted.
	Restarts, Zombified int
	// Retries / CondFailed / DecodeFailures observe the retry layer,
	// the log's fencing rejections, and corrupt-checkpoint fallbacks.
	Retries, CondFailed, DecodeFailures uint64
	// MaxRecovery is the longest single task recovery.
	MaxRecovery time.Duration
	// Converged reports whether the oracle's expected output was fully
	// observed before Timeout; Violation is non-empty if the output
	// ever contradicted exactly-once semantics (terminal).
	Converged bool
	Violation string
	Elapsed   time.Duration
}

// String renders one run as a table row.
func (r *Result) String() string {
	status := "ok"
	if r.Violation != "" {
		status = "VIOLATION: " + r.Violation
	} else if !r.Converged {
		status = "STUCK"
	}
	return fmt.Sprintf("q%-2d %-18s seed=%-3d faults=%-2d restarts=%-2d retries=%-4d fenced=%-2d maxrec=%-8v sinks=%d redel=%-3d dedup=%-3d rtd=%-8v %s",
		r.Config.Query, r.Config.Protocol, r.Config.Seed, r.Plan.Faults,
		r.Restarts, r.Retries, r.CondFailed, r.MaxRecovery.Round(100*time.Microsecond),
		r.SinkIncarnations, r.Delivery.Redelivered, r.ConsumerDeduped,
		r.RecoverToDeliver.Round(100*time.Microsecond), status)
}

// eventSpacing returns the synthetic event-time step for a query,
// chosen so the run exercises that query's window semantics: Q11's
// span stays far inside one session gap (one session per bidder, so
// the oracle's expected count is closed-form), Q12's span crosses a
// tumbling-window boundary.
func eventSpacing(query int) int64 {
	if query == 12 {
		return 25_000 // 25 ms × 600 events ≈ 15 s: crosses the 10 s window
	}
	return 1_000 // 1 ms × 600 events ≈ 0.6 s: well inside Q11's 10 s gap
}

// eventBase offsets synthetic event times so no tumbling window start
// precedes time zero (negative window starts are dropped).
const eventBase int64 = 1_000_000 // 1 s in µs

// Run executes one chaos run: build the query, pace the input across
// the fault window while both fault planes play their schedules, heal
// everything, and poll the oracle until the output converges or the
// invariant breaks.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	orc, err := newOracle(cfg.Query)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	cluster := impeller.NewCluster(impeller.ClusterConfig{
		Protocol:             cfg.Protocol,
		CommitInterval:       cfg.CommitInterval,
		DefaultParallelism:   cfg.Parallelism,
		IngressWriters:       cfg.Generators,
		IngressFlushInterval: 5 * time.Millisecond,
		LogShards:            logShards,
		OrderingInterval:     cfg.OrderingInterval,
		OrderingShards:       max(0, cfg.OrderingShards),
		Seed:                 cfg.Seed,
		Engine:               cfg.Engine,
	})
	defer cluster.Close()
	topo, err := nexmark.BuildOpts(cfg.Query, nexmark.Options{PerUpdateWindows: true})
	if err != nil {
		return nil, err
	}
	app, err := cluster.Run(topo)
	if err != nil {
		return nil, err
	}
	defer app.Stop()
	mgr := app.Manager()
	// Short failure detection: a 20 ms commit interval pairs with fast
	// heartbeats so kills are detected within a few commit points.
	mgr.SetTimeouts(6*cfg.CommitInterval, cfg.CommitInterval)

	plan := GenPlan(cfg, mgr.TaskIDs())
	res := &Result{Config: cfg, Plan: plan}

	// Egress: output flows through a transactional delivery sink to an
	// external consumer whose state (and dedupe floors) outlives sink
	// incarnations; the oracle watches the consumer's applied set. The
	// consumer itself is wrapped in the plan's fault schedule.
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	outs := newOutputs()
	cons := newEgressConsumer(outs)
	faulty := newFaultyConsumer(cons, plan.Consumer)
	runner := newEgressRunner(app, nexmark.OutputStream(cfg.Query), faulty, core.DeliveryOptions{})
	if !runner.launch(runCtx) {
		return nil, fmt.Errorf("chaos: egress sink never started")
	}

	// Input: each generator paces Events records across the fault
	// window with deterministic synthetic event times; the oracle
	// records every event before it is sent.
	var wg sync.WaitGroup
	spacing := eventSpacing(cfg.Query)
	pace := cfg.Duration / time.Duration(cfg.Events)
	for g := 0; g < cfg.Generators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen := nexmark.NewGenerator(cfg.Seed + uint64(g))
			for i := 0; i < cfg.Events; i++ {
				et := eventBase + int64(i)*spacing
				ev := gen.Next(et)
				key := []byte(fmt.Sprintf("%d-%d", g, i))
				orc.record(key, ev.Payload)
				if err := app.SendVia(nexmark.EventStream, g, key, ev.Payload, et); err != nil {
					return
				}
				select {
				case <-runCtx.Done():
					return
				case <-time.After(pace):
				}
			}
		}(g)
	}

	// Fault planes. Play applies any outstanding recoveries when its
	// context is cancelled, and Reset below heals whatever is left
	// (e.g. node crashes whose recovery timer has not fired).
	faults := cluster.Faults()
	playCtx, stopPlay := context.WithCancel(runCtx)
	wg.Add(1)
	go func() {
		defer wg.Done()
		plan.Infra.Play(playCtx, nil, faults)
	}()
	// Egress fault plane: hard-kill the delivery sink at each scheduled
	// instant and immediately start a replacement, which resumes from
	// the persisted ack frontier.
	wg.Add(1)
	go func() {
		defer wg.Done()
		t0 := time.Now()
		for _, at := range plan.SinkKills {
			if wait := at - time.Since(t0); wait > 0 {
				select {
				case <-runCtx.Done():
					return
				case <-time.After(wait):
				}
			}
			runner.kill()
			cons.noteRestart()
			if !runner.launch(runCtx) {
				return
			}
		}
	}()
	var zombified int64
	var zmu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		t0 := time.Now()
		for _, f := range plan.Tasks {
			if wait := f.At - time.Since(t0); wait > 0 {
				select {
				case <-runCtx.Done():
					return
				case <-time.After(wait):
				}
			}
			switch f.Kind {
			case KillTask:
				_ = mgr.Kill(f.Target)
			case DoubleKillTask:
				_ = mgr.Kill(f.Target)
				wg.Add(1)
				go func(id impeller.TaskID) {
					defer wg.Done()
					// Three monitor ticks: enough for the replacement to
					// spawn and enter recovery before the second kill.
					select {
					case <-runCtx.Done():
					case <-time.After(3 * cfg.CommitInterval):
						_ = mgr.Kill(id)
					}
				}(f.Target)
			case ZombifyTask:
				if mgr.Zombify(f.Target) == nil {
					zmu.Lock()
					zombified++
					zmu.Unlock()
				}
			case CrashNode:
				node := core.ComputeNode(core.TaskID(f.Target))
				faults.Crash(node)
				wg.Add(1)
				go func(outage time.Duration) {
					defer wg.Done()
					select {
					case <-runCtx.Done():
					case <-time.After(outage):
					}
					faults.Recover(node)
				}(f.Outage)
			}
		}
	}()

	// Wait for the senders and both fault planes, then heal the world:
	// from here on the run must converge on its own.
	wg.Wait()
	stopPlay()
	faults.Reset()

	deadline := start.Add(cfg.Timeout)
	for {
		done, violation := orc.check(outs)
		if violation != "" {
			res.Violation = violation
			break
		}
		if done {
			res.Converged = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Graceful final stop: drain the window, persist the last frontier,
	// then collect the egress counters aggregated across incarnations.
	runner.finish()
	stats, counts, incarnations := runner.snapshot()
	res.Delivery = stats
	res.SinkIncarnations = incarnations
	res.Duplicates, res.DroppedUncommitted = counts.Duplicates, counts.DroppedUncommitted
	res.Delivered, res.ConsumerDeduped, res.RecoverToDeliver = cons.snapshot()
	_, _, res.ConsumerAcksLost = faulty.injected()

	res.Sent = app.InputCount()
	res.Bids = orc.inputs()
	res.Zombified = int(zombified)
	for _, id := range mgr.TaskIDs() {
		res.Restarts += mgr.Restarts(id)
		if m := mgr.TaskMetrics(id); m != nil {
			if d := time.Duration(m.RecoveryNanos.Load()); d > res.MaxRecovery {
				res.MaxRecovery = d
			}
		}
	}
	qm := app.Metrics()
	res.Retries = qm.Retries
	res.DecodeFailures = qm.CheckpointDecodeFailures
	res.CondFailed = cluster.LogStats().CondFailed
	res.Elapsed = time.Since(start)
	return res, nil
}
