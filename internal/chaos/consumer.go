package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"impeller/internal/core"
	"impeller/internal/sim"
)

// egressConsumer is the harness's external system: the far side of the
// exactly-once boundary. It receives at-least-once deliveries from the
// delivery sink, deduplicates by the highest applied sequence number
// per (partition, producer) — the consumer-side half of the egress
// protocol — and applies each distinct record to the oracle's observed
// outputs. Its state outlives sink incarnations, exactly as a real
// downstream database would outlive a crashed egress process, so the
// oracle verifies exactly-once at the consumer's applied set, not at
// the sink's hand-off.
type egressConsumer struct {
	outs *outputs

	mu          sync.Mutex
	applied     map[string]uint64 // highest applied seq per partition/producer
	distinct    uint64
	deduped     uint64
	awaitFirst  bool
	restartedAt time.Time
	maxRecover  time.Duration
}

func newEgressConsumer(outs *outputs) *egressConsumer {
	return &egressConsumer{outs: outs, applied: make(map[string]uint64)}
}

// Deliver applies one delivery. Per-partition FIFO order plus ascending
// per-producer sequence numbers make max-seq dedupe sufficient: a
// redelivered record (sink restart, lost ack) always arrives with a seq
// at or below the applied floor.
func (c *egressConsumer) Deliver(_ context.Context, d *core.Delivery) error {
	k := fmt.Sprintf("%d/%s", d.Partition, d.Producer)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.awaitFirst {
		if rec := time.Since(c.restartedAt); rec > c.maxRecover {
			c.maxRecover = rec
		}
		c.awaitFirst = false
	}
	if d.Seq <= c.applied[k] {
		c.deduped++
		return nil
	}
	c.applied[k] = d.Seq
	c.distinct++
	c.outs.add(d.Record.Key, d.Record.Value)
	return nil
}

// noteRestart marks a sink kill: the gap to the next successful
// delivery is the recovery-to-first-delivery measurement.
func (c *egressConsumer) noteRestart() {
	c.mu.Lock()
	c.awaitFirst = true
	c.restartedAt = time.Now()
	c.mu.Unlock()
}

func (c *egressConsumer) snapshot() (distinct, deduped uint64, maxRecover time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.distinct, c.deduped, c.maxRecover
}

var (
	errConsumerOutage = errors.New("chaos: consumer transient outage")
	errAckLost        = errors.New("chaos: consumer acknowledgment lost")
)

// faultyConsumer wraps the real consumer with a seeded schedule of
// consumer-side faults: transient-error outages, latency spikes, and
// lost acknowledgments (the record is applied but the sink is told it
// failed, forcing a duplicate delivery the inner dedupe must absorb).
// All injected errors are unmarked — transient — so the sink retries
// forever; permanent failures are exercised by the unit tests, where
// the oracle is not watching for the records they drop.
type faultyConsumer struct {
	inner core.Consumer
	sched sim.ConsumerSchedule
	start time.Time

	mu        sync.Mutex
	ackLost   map[string]bool // deliveries whose ack was already dropped once
	transient uint64
	latent    uint64
	acksLost  uint64
}

func newFaultyConsumer(inner core.Consumer, sched sim.ConsumerSchedule) *faultyConsumer {
	return &faultyConsumer{inner: inner, sched: sched, start: time.Now(), ackLost: make(map[string]bool)}
}

func (f *faultyConsumer) Deliver(ctx context.Context, d *core.Delivery) error {
	w := f.sched.Active(time.Since(f.start))
	if w == nil {
		return f.inner.Deliver(ctx, d)
	}
	switch w.Kind {
	case sim.ConsumerTransient:
		f.mu.Lock()
		f.transient++
		f.mu.Unlock()
		return errConsumerOutage
	case sim.ConsumerLatency:
		f.mu.Lock()
		f.latent++
		f.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(w.Delay):
		}
		return f.inner.Deliver(ctx, d)
	case sim.ConsumerAckLoss:
		if err := f.inner.Deliver(ctx, d); err != nil {
			return err
		}
		key := fmt.Sprintf("%d/%s/%d", d.Partition, d.Producer, d.Seq)
		f.mu.Lock()
		if f.ackLost[key] {
			// Already replayed once for this record; ack this time.
			f.mu.Unlock()
			return nil
		}
		f.ackLost[key] = true
		f.acksLost++
		f.mu.Unlock()
		return errAckLost
	}
	return f.inner.Deliver(ctx, d)
}

func (f *faultyConsumer) injected() (transient, latent, acksLost uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.transient, f.latent, f.acksLost
}
