//go:build !race

// Package testutil holds small helpers shared by the packages' tests.
package testutil

// RaceEnabled reports whether the binary was built with the race
// detector. Allocation gates consult it: the detector's instrumentation
// allocates on its own, so testing.AllocsPerRun budgets only hold in
// non-race builds.
const RaceEnabled = false
