package sharedlog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"impeller/internal/sim"
	"impeller/internal/testutil"
)

// Tests for the sharded ordering plane: per-shard local sequencers
// joined by the global cut aggregator. The contract is that sharding is
// pure mechanism — the observable log (committed record set, per-tag
// order of any one client's appends, conditional-guard outcomes) must
// be indistinguishable from the single-sequencer configuration.

// shardedScenario drives one log through a deterministic two-phase
// workload and returns, per tag, the sorted multiset of committed
// payloads. Phase A: workers append to their own tag and a shared tag
// (multi-tag atomicity), every few appends conditionally guarded on the
// pre-fence instance (all must succeed). Then one fence. Phase B: each
// worker issues stale-guard conditionals (all must fail) and
// fresh-guard conditionals (all must succeed).
func shardedScenario(t *testing.T, orderingShards int) map[Tag][]string {
	t.Helper()
	const workers, perWorker = 8, 40
	l := Open(Config{
		OrderingInterval: 200 * time.Microsecond,
		OrderingShards:   orderingShards,
	})
	defer l.Close()
	l.Meta().Set("inst", 1)

	run := func(phase func(w int)) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				phase(w)
			}(w)
		}
		wg.Wait()
	}

	run(func(w int) {
		own := Tag(fmt.Sprintf("w/%d", w))
		for i := 0; i < perWorker; i++ {
			payload := []byte(fmt.Sprintf("a:%d:%d", w, i))
			var err error
			if i%5 == 0 {
				_, err = l.ConditionalAppend([]Tag{own, "all"}, payload, "inst", 1)
			} else {
				_, err = l.Append([]Tag{own, "all"}, payload)
			}
			if err != nil {
				t.Errorf("phase A worker %d append %d: %v", w, i, err)
				return
			}
		}
	})
	if got := l.FenceIncrement("inst"); got != 2 {
		t.Fatalf("fence -> %d, want 2", got)
	}
	run(func(w int) {
		own := Tag(fmt.Sprintf("w/%d", w))
		for i := 0; i < 10; i++ {
			if _, err := l.ConditionalAppend([]Tag{own, "all"}, []byte("stale"), "inst", 1); !errors.Is(err, ErrCondFailed) {
				t.Errorf("phase B worker %d stale guard: err=%v, want ErrCondFailed", w, err)
				return
			}
			payload := []byte(fmt.Sprintf("b:%d:%d", w, i))
			if _, err := l.ConditionalAppend([]Tag{own, "all"}, payload, "inst", 2); err != nil {
				t.Errorf("phase B worker %d fresh guard: %v", w, err)
				return
			}
		}
	})

	// Per-worker order: one client's appends must appear in issue order
	// in its tag's substream regardless of how cuts interleaved the
	// workers globally.
	byTag := make(map[Tag][]string)
	for w := 0; w < workers; w++ {
		own := Tag(fmt.Sprintf("w/%d", w))
		var seq []string
		for from := LSN(0); ; {
			rec, err := l.ReadNext(own, from)
			if err != nil || rec == nil {
				break
			}
			seq = append(seq, string(rec.Payload))
			from = rec.LSN + 1
		}
		wantA, wantB := 0, 0
		for _, p := range seq {
			var phase string
			var pw, pi int
			if _, err := fmt.Sscanf(p, "%1s:%d:%d", &phase, &pw, &pi); err != nil {
				t.Fatalf("worker %d: unparseable payload %q", w, p)
			}
			switch phase {
			case "a":
				if pi != wantA {
					t.Fatalf("worker %d: phase A order broken: got index %d, want %d", w, pi, wantA)
				}
				wantA++
			case "b":
				if wantA != perWorker {
					t.Fatalf("worker %d: phase B record before phase A finished", w)
				}
				if pi != wantB {
					t.Fatalf("worker %d: phase B order broken: got index %d, want %d", w, pi, wantB)
				}
				wantB++
			}
		}
		if wantA != perWorker || wantB != 10 {
			t.Fatalf("worker %d: committed %d phase A + %d phase B records, want %d + 10",
				w, wantA, wantB, perWorker)
		}
		sort.Strings(seq)
		byTag[own] = seq
	}
	var all []string
	for from := LSN(0); ; {
		rec, err := l.ReadNext("all", from)
		if err != nil || rec == nil {
			break
		}
		all = append(all, string(rec.Payload))
		from = rec.LSN + 1
	}
	sort.Strings(all)
	byTag["all"] = all
	return byTag
}

// TestShardedOrderingEquivalentToSingleSequencer is the sharded ≡
// single-sequencer property test: the same workload against 1 and 4
// ordering shards must commit the same record set per tag, preserve
// each client's per-tag append order, and resolve every conditional
// guard identically (stale guards fail, pre-fence and fresh guards
// succeed — asserted inside the scenario for both runs).
func TestShardedOrderingEquivalentToSingleSequencer(t *testing.T) {
	single := shardedScenario(t, 1)
	sharded := shardedScenario(t, 4)
	if len(single) != len(sharded) {
		t.Fatalf("tag sets differ: %d vs %d", len(single), len(sharded))
	}
	for tag, want := range single {
		got := sharded[tag]
		if len(got) != len(want) {
			t.Fatalf("tag %s: %d records sharded vs %d single", tag, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tag %s: committed multiset differs at %d: %q vs %q", tag, i, got[i], want[i])
			}
		}
	}
}

// TestShardedCutsCountPerShard sanity-checks the per-shard stats:
// round-robin routing over 4 shards must land records on every shard,
// and the skew of an even load must stay near 1.
func TestShardedCutsCountPerShard(t *testing.T) {
	l := Open(Config{OrderingInterval: 200 * time.Microsecond, OrderingShards: 4})
	defer l.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				if _, err := l.Append([]Tag{"t"}, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.OrderingShards != 4 || len(st.ShardCuts) != 4 || len(st.ShardCutRecords) != 4 {
		t.Fatalf("per-shard stats missing: %+v", st)
	}
	var total uint64
	for i, n := range st.ShardCutRecords {
		if n == 0 {
			t.Fatalf("shard %d ordered no records: %v", i, st.ShardCutRecords)
		}
		total += n
	}
	if total != 256 {
		t.Fatalf("shards ordered %d records, want 256", total)
	}
	if st.CutSkew < 1 || st.CutSkew > 1.5 {
		t.Fatalf("cut skew %.3f for round-robin load, want ~1", st.CutSkew)
	}
	if st.MeanCutBatch <= 0 || st.SequencerCuts == 0 {
		t.Fatalf("global cut stats not accounted: %+v", st)
	}
}

// TestCloseFailsPendingAcrossAllShards is the shutdown regression test:
// with a cut interval that never fires, appends and batches pending on
// every shard must fail promptly with ErrClosed — no goroutine stays
// stuck in <-resp.
func TestCloseFailsPendingAcrossAllShards(t *testing.T) {
	l := Open(Config{OrderingInterval: time.Hour, OrderingShards: 4})
	const appenders, batchers = 16, 4
	errs := make(chan error, appenders+batchers)
	var started, wg sync.WaitGroup
	started.Add(appenders + batchers)
	for i := 0; i < appenders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			_, err := l.Append([]Tag{"x"}, []byte("p"))
			errs <- err
		}()
	}
	for i := 0; i < batchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			_, err := l.AppendBatch([]AppendEntry{
				{Tags: []Tag{"x"}, Payload: []byte("b0")},
				{Tags: []Tag{"y"}, Payload: []byte("b1")},
			})
			errs <- err
		}()
	}
	started.Wait()
	// Give the appenders time to enqueue on their shards (the cut will
	// not fire for an hour, so anything enqueued stays pending).
	time.Sleep(20 * time.Millisecond)
	closeDone := make(chan struct{})
	go func() {
		l.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return")
	}
	waitDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-time.After(2 * time.Second):
		t.Fatal("appenders still blocked after Close — a shard's pending was stranded")
	}
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pending append resolved with %v, want ErrClosed", err)
		}
	}
}

// TestSequencerShardCrashExcludesFromCut: a crashed local sequencer is
// left out of the cut — its already-pending appends stall until it
// recovers, while the other shards' appends keep committing — and new
// appends routed to it fail fast with a retryable error.
func TestSequencerShardCrashExcludesFromCut(t *testing.T) {
	clock := sim.NewManualClock(time.Unix(0, 0))
	faults := sim.NewFaultInjector()
	l := Open(Config{
		OrderingInterval: time.Millisecond,
		OrderingShards:   2,
		Clock:            clock,
		Faults:           faults,
	})
	defer l.Close()

	// Round-robin assigns append k to shard (k+1) mod 2: the first
	// append lands on shard 1, the second on shard 0.
	faults.Crash("sequencer/1")
	type res struct {
		lsn LSN
		err error
	}
	crashedCh := make(chan res, 1)
	liveCh := make(chan res, 1)
	go func() {
		// Routed to crashed shard 1: fails fast, retryably.
		lsn, err := l.Append([]Tag{"t"}, []byte("to-crashed"))
		crashedCh <- res{lsn, err}
	}()
	r := <-crashedCh
	if !IsRetryable(r.err) {
		t.Fatalf("append to crashed sequencer shard: err=%v, want retryable", r.err)
	}
	go func() {
		// Routed to live shard 0: commits at the next cut.
		lsn, err := l.Append([]Tag{"t"}, []byte("to-live"))
		liveCh <- res{lsn, err}
	}()
	// Let the append enqueue, then fire cuts until it commits.
	deadline := time.Now().Add(2 * time.Second)
	for l.Tail() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("live shard's append never committed")
		}
		clock.Advance(time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	r = <-liveCh
	if r.err != nil {
		t.Fatalf("append via live shard: %v", r.err)
	}
	if l.Tail() != 1 {
		t.Fatalf("tail = %d, want 1 (only the live shard's append)", l.Tail())
	}

	// Recover the shard; a fresh append routed to it commits at a
	// later cut.
	faults.Recover("sequencer/1")
	go func() {
		lsn, err := l.Append([]Tag{"t"}, []byte("post-recovery"))
		crashedCh <- res{lsn, err}
	}()
	deadline = time.Now().Add(2 * time.Second)
	for l.Tail() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("append after shard recovery never committed")
		}
		clock.Advance(time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	r = <-crashedCh
	if r.err != nil {
		t.Fatalf("append after recovery: %v", r.err)
	}
}

// TestSequencerShardDelayStallsCut: an injected delay at one local
// sequencer stalls the global cut (Scalog advances at the pace of the
// slowest live shard), so appends on other shards see it too.
func TestSequencerShardDelayStallsCut(t *testing.T) {
	faults := sim.NewFaultInjector()
	l := Open(Config{
		OrderingInterval: 200 * time.Microsecond,
		OrderingShards:   2,
		Faults:           faults,
	})
	defer l.Close()
	if _, err := l.Append([]Tag{"t"}, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	const delay = 30 * time.Millisecond
	faults.SetDelay("sequencer/0", delay)
	start := time.Now()
	if _, err := l.Append([]Tag{"t"}, []byte("stalled")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("append took %v with a %v sequencer-shard delay — cut did not stall", took, delay)
	}
	faults.ClearDelay("sequencer/0")
}

// TestOrderingAppendAllocsPooled gates the warm ordering-mode single
// Append: the request (entry slot, result slot, response channel) is
// pooled, so steady state allocates only the record itself (Record +
// tag copy + payload copy = 3) plus the cut loop's timer machinery
// amortized across the appends sharing a cut. Budget: 8 per append —
// reintroducing the per-call response channel and result slice (2+
// more, plus pool churn) fails the gate.
func TestOrderingAppendAllocsPooled(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; gate runs in non-race builds")
	}
	l := Open(Config{OrderingInterval: 100 * time.Microsecond, OrderingShards: 2})
	defer l.Close()
	payload := make([]byte, 64)
	tags := []Tag{"alloc"}
	for i := 0; i < 32; i++ { // warm the pool, segments, and index
		if _, err := l.Append(tags, payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := l.Append(tags, payload); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("ordering-mode Append: %.1f allocs (budget 8)", allocs)
	if allocs > 8 {
		t.Errorf("ordering-mode Append allocates %.1f, budget 8 — pooled request path regressed", allocs)
	}
}

// TestShardedAppendRaceStress drives concurrent multi-shard appends
// against FenceIncrement and Trim (plus readers) — the -race gate for
// the split ordering plane. Invariants: per-tag LSNs strictly increase,
// and after the final fence no conditional append guarded on a stale
// instance ever commits.
func TestShardedAppendRaceStress(t *testing.T) {
	l := Open(Config{OrderingInterval: 100 * time.Microsecond, OrderingShards: 4})
	defer l.Close()
	l.Meta().Set("inst", 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tag := Tag(fmt.Sprintf("s/%d", w%3))
			var last LSN
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var lsn LSN
				var err error
				if i%7 == 0 {
					lsn, err = l.ConditionalAppend([]Tag{tag, "all"}, []byte{byte(i)}, "inst", 1)
					if errors.Is(err, ErrCondFailed) {
						continue // fenced; expected once the fencer has run
					}
				} else {
					lsn, err = l.Append([]Tag{tag, "all"}, []byte{byte(i)})
				}
				if err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("appender %d: %v", w, err)
					return
				}
				if lsn <= last && last != 0 {
					t.Errorf("appender %d: LSN went backwards: %d after %d", w, lsn, last)
					return
				}
				last = lsn
			}
		}(w)
	}
	wg.Add(1)
	go func() { // fencer
		defer wg.Done()
		for i := 0; i < 20; i++ {
			l.FenceIncrement("inst")
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() { // trimmer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if tail := l.Tail(); tail > 64 {
				_ = l.Trim(tail - 64)
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() { // reader: per-tag LSN order must be strictly increasing
		defer wg.Done()
		from := LSN(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec, err := l.ReadNext("all", from)
			if err != nil || rec == nil {
				if errors.Is(err, ErrTrimmed) {
					from = l.TrimHorizon()
					continue
				}
				time.Sleep(time.Millisecond)
				continue
			}
			if rec.LSN < from {
				t.Errorf("reader: LSN %d below cursor %d", rec.LSN, from)
				return
			}
			from = rec.LSN + 1
		}
	}()

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	st := l.Stats()
	if st.OrderingShards != 4 {
		t.Fatalf("stats report %d ordering shards, want 4", st.OrderingShards)
	}
	if st.Appends == 0 || st.SequencerCuts == 0 {
		t.Fatalf("stress ordered nothing: %+v", st)
	}
}
