package sharedlog

// Group commit: AppendBatch orders a group of records through one
// sequencer interaction. The paper's throughput argument (§5.3) is that
// a task's outputs, change-log deltas, and markers are all appends to
// the same log, so the dataplane wins by amortizing the per-append
// costs — the client↔sequencer exchange (one simulated latency charge
// per batch instead of per record), the ordering mutex, and the tag
// index locks (one vectorized pass per group) — while preserving
// exactly the semantics of the same records appended singly:
//
//   - entries are ordered contiguously in submission order, so per-tag
//     read order matches the singly-appended interleaving;
//   - each record still appears atomically in every tag it carries;
//   - conditional entries are guard-checked individually at ordering
//     time, so a fence between submission and the cut still excludes
//     them (a failed guard skips that entry only — the rest of the
//     batch commits).

// AppendEntry is one record submitted through AppendBatch. Tags must be
// non-empty. A Conditional entry commits only if the metadata key still
// holds CondWant when the batch is ordered, mirroring ConditionalAppend.
type AppendEntry struct {
	Tags    []Tag
	Payload []byte

	Conditional bool
	CondKey     string
	CondWant    uint64
}

// AppendResult is the per-entry outcome of an AppendBatch: the assigned
// LSN, or ErrCondFailed for a conditional entry whose guard no longer
// held. Batch-level failures (closed log, unreachable sequencer) are
// returned as the call's error instead.
type AppendResult struct {
	LSN LSN
	Err error
}

// AppendBatch appends entries as one group commit. The whole group is
// charged a single append latency and ordered under a single ordering
// decision (in sequencer mode, within a single cut); entries receive
// contiguous LSNs in slice order. On success the returned slice has one
// result per entry, index-aligned. An empty batch is a no-op.
func (l *Log) AppendBatch(entries []AppendEntry) ([]AppendResult, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	for i := range entries {
		if len(entries[i].Tags) == 0 {
			return nil, errAppendNeedsTag
		}
	}
	if err := l.cfg.Faults.Check("client", "sequencer"); err != nil {
		return nil, err
	}
	if d := l.cfg.Faults.DelayOf("sequencer"); d > 0 {
		l.cfg.Clock.Sleep(d)
	}
	// One latency charge for the whole group: this is the group-commit
	// amortization (a single client→sequencer→storage exchange carries
	// every record in the batch).
	if m := l.cfg.AppendLatency; m != nil {
		l.cfg.Clock.Sleep(m.Sample())
	}
	// Materialize the group with block allocations: one Record block,
	// one tag block, one payload block for the whole batch instead of
	// three allocations per entry. Sub-slices are full-slice-capped so an
	// append on one record's view cannot clobber its neighbor. This is
	// the vectorized record path: per-record cost is two memcpys, the
	// per-batch cost is three allocations.
	totalTags, totalPayload := 0, 0
	for i := range entries {
		totalTags += len(entries[i].Tags)
		totalPayload += len(entries[i].Payload)
	}
	recBlock := make([]Record, len(entries))
	tagBlock := make([]Tag, 0, totalTags)
	payloadBlock := make([]byte, 0, totalPayload)
	pend := make([]pendingEntry, len(entries))
	for i, e := range entries {
		tagFrom, payFrom := len(tagBlock), len(payloadBlock)
		tagBlock = append(tagBlock, e.Tags...)
		payloadBlock = append(payloadBlock, e.Payload...)
		rec := &recBlock[i]
		rec.Tags = tagBlock[tagFrom:len(tagBlock):len(tagBlock)]
		rec.Payload = payloadBlock[payFrom:len(payloadBlock):len(payloadBlock)]
		pend[i] = pendingEntry{
			rec:         rec,
			conditional: e.Conditional,
			condKey:     e.CondKey,
			condWant:    e.CondWant,
		}
	}
	l.stats.batchAppends.Add(1)
	l.stats.batchRecords.Add(uint64(len(entries)))

	if !l.ordering {
		// Immediate mode: guard checks, LSN assignment, and publication
		// for the whole group happen under one acquisition of the
		// ordering mutex, then one vectorized index pass.
		l.mu.Lock()
		if l.closed.Load() {
			l.mu.Unlock()
			return nil, ErrClosed
		}
		results := make([]appendResult, len(pend))
		recs := l.orderLocked(pend, results, make([]*Record, 0, len(pend)))
		l.publishLocked(recs)
		if l.dur != nil {
			// One frame, one sync for the whole group — the durability
			// plane inherits the group-commit amortization.
			l.dur.writeCut(recs)
		}
		l.mu.Unlock()
		return publicResults(results), nil
	}
	// Sequencer mode: the group rides one ordering shard — one serial
	// local-persist charge for the whole batch — then waits for the next
	// cut as one unit and is ordered contiguously within it.
	s := l.routeShard()
	if err := l.cfg.Faults.Check("client", s.name); err != nil {
		return nil, err
	}
	l.chargeShardPersist(s)
	b := &pendingBatch{
		entries: pend,
		results: make([]appendResult, len(pend)),
		resp:    make(chan error, 1),
	}
	if err := s.enqueue(l, b); err != nil {
		return nil, err
	}
	if err := <-b.resp; err != nil {
		return nil, err
	}
	return publicResults(b.results), nil
}

func publicResults(in []appendResult) []AppendResult {
	out := make([]AppendResult, len(in))
	for i, r := range in {
		out[i] = AppendResult{LSN: r.lsn, Err: r.err}
	}
	return out
}
