package sharedlog

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestReadNextAnyPicksEarliest(t *testing.T) {
	l := openTest(t)
	mustAppend(t, l, "other", "z")
	b := mustAppend(t, l, "b-first", "b")
	a := mustAppend(t, l, "a-later", "a")

	rec, err := l.ReadNextAny([]Tag{"a", "b"}, 0)
	if err != nil || rec == nil || rec.LSN != b {
		t.Fatalf("ReadNextAny = %v, %v, want LSN %d", rec, err, b)
	}
	rec, err = l.ReadNextAny([]Tag{"a", "b"}, b+1)
	if err != nil || rec == nil || rec.LSN != a {
		t.Fatalf("ReadNextAny(from) = %v, %v, want LSN %d", rec, err, a)
	}
	rec, err = l.ReadNextAny([]Tag{"a", "b"}, a+1)
	if err != nil || rec != nil {
		t.Fatalf("past tail = %v, %v", rec, err)
	}
}

func TestReadNextAnySingleMultiTagRecord(t *testing.T) {
	// One record carrying both tags must be returned once (the earliest
	// position is the same record for both).
	l := openTest(t)
	lsn := mustAppend(t, l, "multi", "a", "b")
	rec, err := l.ReadNextAny([]Tag{"a", "b"}, 0)
	if err != nil || rec == nil || rec.LSN != lsn {
		t.Fatalf("ReadNextAny = %v, %v", rec, err)
	}
}

func TestReadNextAnyTrimmed(t *testing.T) {
	l := openTest(t)
	mustAppend(t, l, "x", "a")
	if err := l.Trim(1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadNextAny([]Tag{"a"}, 0); err != ErrTrimmed {
		t.Fatalf("err = %v, want ErrTrimmed", err)
	}
}

func TestReadNextAnyBlockingWakes(t *testing.T) {
	l := openTest(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got := make(chan *Record, 1)
	go func() {
		rec, err := l.ReadNextAnyBlocking(ctx, []Tag{"p", "q"}, 0)
		if err != nil {
			t.Errorf("blocking read: %v", err)
		}
		got <- rec
	}()
	time.Sleep(10 * time.Millisecond)
	mustAppend(t, l, "wake", "q")
	select {
	case rec := <-got:
		if rec == nil || string(rec.Payload) != "wake" {
			t.Fatalf("got %v", rec)
		}
	case <-ctx.Done():
		t.Fatal("never woke")
	}
}

// Property: ReadNextAny over a tag set returns exactly the union of the
// per-tag substreams, in global LSN order.
func TestPropertyReadNextAnyIsOrderedUnion(t *testing.T) {
	check := func(choices []uint8) bool {
		l := Open(Config{})
		defer l.Close()
		watch := map[Tag]bool{"t0": true, "t1": true}
		var want []LSN
		for _, c := range choices {
			tag := Tag(fmt.Sprintf("t%d", c%4))
			lsn, err := l.Append([]Tag{tag}, []byte{c})
			if err != nil {
				return false
			}
			if watch[tag] {
				want = append(want, lsn)
			}
		}
		var got []LSN
		var cursor LSN
		for {
			rec, err := l.ReadNextAny([]Tag{"t0", "t1"}, cursor)
			if err != nil {
				return false
			}
			if rec == nil {
				break
			}
			got = append(got, rec.LSN)
			cursor = rec.LSN + 1
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSequencerOrderingPreservesPerClientOrder(t *testing.T) {
	// With a nonzero ordering interval (Scalog-style cuts), appends
	// from one client must still appear in issue order because each
	// append blocks until its LSN is assigned.
	l := Open(Config{OrderingInterval: time.Millisecond})
	defer l.Close()
	var lsns []LSN
	for i := 0; i < 50; i++ {
		lsn, err := l.Append([]Tag{"seq"}, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Fatalf("out of order: %v", lsns)
		}
	}
}

func TestAuxSurvivesUntilTrim(t *testing.T) {
	l := openTest(t)
	lsn := mustAppend(t, l, "m", "t")
	if err := l.SetAux(lsn, []byte("note")); err != nil {
		t.Fatal(err)
	}
	if err := l.Trim(lsn + 1); err != nil {
		t.Fatal(err)
	}
	if err := l.SetAux(lsn, []byte("late")); err != ErrTrimmed {
		t.Fatalf("SetAux on trimmed = %v, want ErrTrimmed", err)
	}
}

func TestConditionalAppendConcurrentFence(t *testing.T) {
	// A fence (meta increment) racing with conditional appends must
	// never let two instances both commit after the fence point.
	l := openTest(t)
	l.Meta().Set("inst/x", 1)
	stop := make(chan struct{})
	appended := make(chan LSN, 1024)
	go func() {
		for {
			select {
			case <-stop:
				close(appended)
				return
			default:
			}
			if lsn, err := l.ConditionalAppend([]Tag{"t"}, []byte("old"), "inst/x", 1); err == nil {
				appended <- lsn
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	l.Meta().Increment("inst/x") // fence
	fencePoint := l.Tail()
	// Give the zombie a chance to keep trying.
	time.Sleep(5 * time.Millisecond)
	close(stop)
	for lsn := range appended {
		if lsn >= fencePoint+1 {
			// Appends with LSN >= fencePoint+1 were ordered strictly
			// after we observed the fence; none may exist.
			rec, _ := l.Read(lsn)
			if rec != nil && string(rec.Payload) == "old" {
				t.Fatalf("zombie append at %d after fence %d", lsn, fencePoint)
			}
		}
	}
}

func TestOrderingModeConditionalAppendRevalidatesAtCut(t *testing.T) {
	// In Scalog-style ordering mode the conditional guard must be
	// re-validated when the LSN is assigned (the cut), not when the
	// append is enqueued: a fence landing between enqueue and cut must
	// exclude the append.
	l := Open(Config{OrderingInterval: 20 * time.Millisecond})
	defer l.Close()
	l.Meta().Set("inst/t", 1)

	errc := make(chan error, 1)
	go func() {
		_, err := l.ConditionalAppend([]Tag{"t"}, []byte("zombie"), "inst/t", 1)
		errc <- err
	}()
	// Enqueue happens quickly; fence before the first cut fires.
	time.Sleep(2 * time.Millisecond)
	l.FenceIncrement("inst/t")
	select {
	case err := <-errc:
		if err != ErrCondFailed {
			t.Fatalf("err = %v, want ErrCondFailed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("conditional append never resolved")
	}
	if n := l.CountTag("t"); n != 0 {
		t.Fatalf("zombie record ordered: %d records", n)
	}
}

func TestOrderingModeConditionalAppendSucceedsWhenValid(t *testing.T) {
	l := Open(Config{OrderingInterval: 5 * time.Millisecond})
	defer l.Close()
	l.Meta().Set("inst/t", 3)
	if _, err := l.ConditionalAppend([]Tag{"t"}, []byte("ok"), "inst/t", 3); err != nil {
		t.Fatalf("valid conditional append in ordering mode: %v", err)
	}
	if n := l.CountTag("t"); n != 1 {
		t.Fatalf("records = %d", n)
	}
}
