package sharedlog

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"impeller/internal/wal"
)

// reopen builds a fresh device holding exactly the given bytes and
// recovers a log from it — the "new process after the crash" half of
// every durability test.
func reopen(t *testing.T, cfg Config, image []byte) *Log {
	t.Helper()
	dev := wal.NewDevice()
	dev.Append(image)
	dev.Sync()
	cfg.WAL = dev
	l, err := Recover(cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	t.Cleanup(l.Close)
	return l
}

func TestDurableRoundTripRestart(t *testing.T) {
	dev := wal.NewDevice()
	l := Open(Config{WAL: dev})

	var lsns []LSN
	for i := 0; i < 20; i++ {
		lsn, err := l.Append([]Tag{Tag(fmt.Sprintf("t/%d", i%3)), "all"}, []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		lsns = append(lsns, lsn)
	}
	l.Meta().Set("instance/a", 7)
	l.FenceIncrement("instance/a")
	l.Meta().Set("gone", 1)
	l.Meta().Delete("gone")
	if err := l.SetAux(lsns[3], []byte("aux-3")); err != nil {
		t.Fatalf("SetAux: %v", err)
	}
	if err := l.Trim(2); err != nil {
		t.Fatalf("Trim: %v", err)
	}
	tail := l.Tail()
	l.Close()

	r := reopen(t, Config{}, dev.Bytes())
	if r.Tail() != tail {
		t.Fatalf("recovered tail %d, want %d", r.Tail(), tail)
	}
	if r.TrimHorizon() != 2 {
		t.Fatalf("recovered trim horizon %d, want 2", r.TrimHorizon())
	}
	for i := 2; i < 20; i++ {
		rec, err := r.Read(LSN(i))
		if err != nil || rec == nil {
			t.Fatalf("read %d: rec=%v err=%v", i, rec, err)
		}
		if want := fmt.Sprintf("payload-%d", i); string(rec.Payload) != want {
			t.Fatalf("lsn %d payload %q, want %q", i, rec.Payload, want)
		}
		if len(rec.Tags) != 2 || rec.Tags[1] != "all" {
			t.Fatalf("lsn %d tags %v", i, rec.Tags)
		}
	}
	if _, err := r.Read(0); err != ErrTrimmed {
		t.Fatalf("read below horizon: %v, want ErrTrimmed", err)
	}
	if rec, _ := r.Read(lsns[3]); !bytes.Equal(rec.Aux, []byte("aux-3")) {
		t.Fatalf("aux not recovered: %q", rec.Aux)
	}
	if v, ok := r.Meta().Get("instance/a"); !ok || v != 8 {
		t.Fatalf("meta instance/a = %d,%v want 8,true", v, ok)
	}
	if _, ok := r.Meta().Get("gone"); ok {
		t.Fatal("deleted meta key resurrected")
	}
	// Tag index rebuilt: selective reads see the substreams.
	rec, err := r.ReadNext("t/1", 0)
	if err != nil || rec == nil || rec.LSN != 4 {
		t.Fatalf("ReadNext(t/1) = %v, %v; want lsn 4", rec, err)
	}
	st := r.Stats()
	if st.RecoveredRecords != 20 || st.RecoveredMetaOps != 4 || st.WALTruncations != 0 {
		t.Fatalf("recovery counters: %+v", st)
	}
	// The recovered log accepts appends continuing the order.
	lsn, err := r.Append([]Tag{"all"}, []byte("after"))
	if err != nil || lsn != tail {
		t.Fatalf("post-recovery append: lsn=%d err=%v, want %d", lsn, err, tail)
	}
}

func TestRecoverTornTail(t *testing.T) {
	dev := wal.NewDevice()
	l := Open(Config{WAL: dev})
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]Tag{"t"}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	image := dev.Bytes()
	// A torn write: the first 9 bytes of an 11th frame reached the disk.
	torn := append(append([]byte(nil), image...), wal.AppendFrame(nil, frameCut, []byte("partial"))[:9]...)

	r := reopen(t, Config{}, torn)
	if r.Tail() != 10 {
		t.Fatalf("tail %d after torn-tail recovery, want 10", r.Tail())
	}
	st := r.Stats()
	if st.WALTruncations != 1 || st.WALTruncatedBytes != 9 || st.RecoveredRecords != 10 {
		t.Fatalf("truncation counters: truncations=%d bytes=%d records=%d",
			st.WALTruncations, st.WALTruncatedBytes, st.RecoveredRecords)
	}
	// The device was truncated to the valid prefix: appending and
	// recovering again must yield a clean log with the new record.
	if _, err := r.Append([]Tag{"t"}, []byte("post")); err != nil {
		t.Fatal(err)
	}
	r2 := reopen(t, Config{}, r.dur.dev.Bytes())
	if r2.Tail() != 11 || r2.Stats().WALTruncations != 0 {
		t.Fatalf("second recovery: tail=%d truncations=%d", r2.Tail(), r2.Stats().WALTruncations)
	}
}

func TestRecoverBitFlip(t *testing.T) {
	dev := wal.NewDevice()
	l := Open(Config{WAL: dev})
	var offsets []int // device size after each append = frame boundaries
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]Tag{"t"}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, dev.Size())
	}
	l.Close()
	// Flip one bit inside the 8th frame (silent media corruption in the
	// synced region). Recovery must keep the 7 frames before it and drop
	// the flipped frame and everything after.
	dev.FlipBit(offsets[6]+wal.HeaderSize+2, 3)

	cfg := Config{WAL: dev}
	r, err := Recover(cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer r.Close()
	if r.Tail() != 7 {
		t.Fatalf("tail %d after bit-flip recovery, want 7", r.Tail())
	}
	st := r.Stats()
	if st.WALTruncations != 1 || st.RecoveredRecords != 7 {
		t.Fatalf("counters after bit flip: truncations=%d records=%d", st.WALTruncations, st.RecoveredRecords)
	}
	for i := 0; i < 7; i++ {
		rec, err := r.Read(LSN(i))
		if err != nil || rec == nil || rec.Payload[0] != byte(i) {
			t.Fatalf("surviving record %d: %v %v", i, rec, err)
		}
	}
}

func TestRecoverTrimClampedToTail(t *testing.T) {
	// Hand-build a WAL whose trim horizon outruns its surviving records:
	// cut frames for LSNs 0..4, then a trim frame claiming horizon 10
	// (its covering cuts were lost to a crash). Recovery must clamp the
	// horizon to the rebuilt tail instead of racing the segment directory
	// past the store.
	var image []byte
	for i := 0; i < 5; i++ {
		payload := encodeCutPayload(nil, []*Record{{LSN: LSN(i), Tags: []Tag{"t"}, Payload: []byte{byte(i)}}})
		image = wal.AppendFrame(image, frameCut, payload)
	}
	var trim [8]byte
	trim[0] = 10
	image = wal.AppendFrame(image, frameTrim, trim[:])

	r := reopen(t, Config{}, image)
	if r.Tail() != 5 {
		t.Fatalf("tail %d, want 5", r.Tail())
	}
	if r.TrimHorizon() != 5 {
		t.Fatalf("horizon %d, want clamp to 5", r.TrimHorizon())
	}
	// Appends continue cleanly past the clamped horizon.
	lsn, err := r.Append([]Tag{"t"}, []byte("next"))
	if err != nil || lsn != 5 {
		t.Fatalf("append after clamp: %d, %v", lsn, err)
	}
}

func TestRecoverUnknownFrameTruncates(t *testing.T) {
	payload := encodeCutPayload(nil, []*Record{{LSN: 0, Tags: []Tag{"t"}, Payload: []byte("x")}})
	image := wal.AppendFrame(nil, frameCut, payload)
	image = wal.AppendFrame(image, 0x7f, []byte("from the future"))
	image = wal.AppendFrame(image, frameCut, encodeCutPayload(nil, []*Record{{LSN: 1, Tags: []Tag{"t"}, Payload: []byte("y")}}))

	r := reopen(t, Config{}, image)
	if r.Tail() != 1 {
		t.Fatalf("tail %d, want 1 (stop at unknown frame)", r.Tail())
	}
	if r.Stats().WALTruncations != 1 {
		t.Fatal("unknown frame did not count as a truncation")
	}
}

func TestAckAfterDurableSequencerMode(t *testing.T) {
	dev := wal.NewDevice()
	l := Open(Config{
		WAL:              dev,
		OrderingInterval: 200 * time.Microsecond,
		OrderingShards:   2,
	})
	defer l.Close()
	// The moment an append returns, its record must already be durable:
	// a power failure right now (drop all unsynced bytes) must preserve
	// it through recovery.
	for i := 0; i < 25; i++ {
		lsn, err := l.Append([]Tag{"t"}, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		// Model the crash on the device's durable prefix only.
		synced := dev.Synced()
		durable := dev.Bytes()[:synced]
		r := reopen(t, Config{}, durable)
		rec, err := r.Read(lsn)
		if err != nil || rec == nil {
			t.Fatalf("append %d (lsn %d) acked but not durable: rec=%v err=%v", i, lsn, rec, err)
		}
		r.Close()
	}
}

func TestDurableBatchAndSequencerRecovery(t *testing.T) {
	dev := wal.NewDevice()
	l := Open(Config{
		WAL:              dev,
		OrderingInterval: 200 * time.Microsecond,
		OrderingShards:   2,
		NumShards:        4,
	})
	entries := make([]AppendEntry, 8)
	for i := range entries {
		entries[i] = AppendEntry{Tags: []Tag{Tag(fmt.Sprintf("b/%d", i%2))}, Payload: []byte{byte(i)}}
	}
	res, err := l.AppendBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Tag{"b/0"}, []byte("single")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	r := reopen(t, Config{NumShards: 4, OrderingInterval: 200 * time.Microsecond, OrderingShards: 2}, dev.Bytes())
	if r.Tail() != 9 {
		t.Fatalf("tail %d, want 9", r.Tail())
	}
	for _, ar := range res {
		rec, err := r.Read(ar.LSN)
		if err != nil || rec == nil {
			t.Fatalf("batched record %d lost: %v", ar.LSN, err)
		}
	}
	// Sequencer state recovered: the next append continues the order.
	lsn, err := r.Append([]Tag{"b/1"}, []byte("cont"))
	if err != nil || lsn != 9 {
		t.Fatalf("post-recovery sequencer append: %d, %v", lsn, err)
	}
}

func TestRecoverRequiresWAL(t *testing.T) {
	if _, err := Recover(Config{}); err != ErrNoWAL {
		t.Fatalf("Recover without device: %v, want ErrNoWAL", err)
	}
}

func TestRecoverEmptyDeviceIsFreshLog(t *testing.T) {
	r := reopen(t, Config{}, nil)
	if r.Tail() != 0 {
		t.Fatalf("fresh tail %d", r.Tail())
	}
	if _, err := r.Append([]Tag{"t"}, []byte("first")); err != nil {
		t.Fatal(err)
	}
}

func TestCondFailedNotPersisted(t *testing.T) {
	dev := wal.NewDevice()
	l := Open(Config{WAL: dev})
	l.Meta().Set("k", 1)
	if _, err := l.ConditionalAppend([]Tag{"t"}, []byte("no"), "k", 2); err != ErrCondFailed {
		t.Fatalf("guard should fail: %v", err)
	}
	if _, err := l.ConditionalAppend([]Tag{"t"}, []byte("yes"), "k", 1); err != nil {
		t.Fatal(err)
	}
	l.Close()

	r := reopen(t, Config{}, dev.Bytes())
	if r.Tail() != 1 {
		t.Fatalf("tail %d, want 1 — rejected append must not be replayed", r.Tail())
	}
	rec, _ := r.Read(0)
	if string(rec.Payload) != "yes" {
		t.Fatalf("recovered %q", rec.Payload)
	}
}
