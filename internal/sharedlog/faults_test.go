package sharedlog

import (
	"context"
	"errors"
	"testing"
	"time"

	"impeller/internal/sim"
)

func TestIsRetryable(t *testing.T) {
	for _, err := range []error{ErrUnavailable, sim.ErrCrashed, sim.ErrPartitioned} {
		if !IsRetryable(err) {
			t.Errorf("IsRetryable(%v) = false, want true", err)
		}
	}
	for _, err := range []error{nil, ErrCondFailed, ErrTrimmed, ErrClosed,
		context.Canceled, context.DeadlineExceeded, errors.New("other")} {
		if IsRetryable(err) {
			t.Errorf("IsRetryable(%v) = true, want false", err)
		}
	}
}

// TestReadPartitionedShard asserts a partition between the client and
// every replica of a record makes reads fail ErrUnavailable, and that
// healing the partition restores them.
func TestReadPartitionedShard(t *testing.T) {
	faults := sim.NewFaultInjector()
	l := Open(Config{NumShards: 4, Replication: 2, Faults: faults})
	defer l.Close()

	lsn, err := l.Append([]Tag{"t"}, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// Record lsn lives on shards lsn%4 and (lsn+1)%4.
	s0 := l.shards[int(lsn)%4].name
	s1 := l.shards[(int(lsn)+1)%4].name
	faults.Partition("client", s0)
	if _, err := l.ReadNext("t", lsn); err != nil {
		t.Fatalf("one partitioned replica should not block reads: %v", err)
	}
	faults.Partition("client", s1)
	if _, err := l.ReadNext("t", lsn); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ReadNext with all replicas partitioned = %v, want ErrUnavailable", err)
	}
	if _, err := l.Read(lsn); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Read with all replicas partitioned = %v, want ErrUnavailable", err)
	}
	if _, err := l.ReadPrev("t", MaxLSN); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ReadPrev with all replicas partitioned = %v, want ErrUnavailable", err)
	}
	faults.Heal("client", s0)
	rec, err := l.ReadNext("t", lsn)
	if err != nil || rec == nil {
		t.Fatalf("ReadNext after heal = (%v, %v), want record", rec, err)
	}
}

// sleepRecorder is a clock that records Sleep charges instead of
// blocking, so delay-charging tests stay deterministic.
type sleepRecorder struct {
	sim.RealClock
	slept time.Duration
}

func (c *sleepRecorder) Sleep(d time.Duration) { c.slept += d }

// TestReadDelaySpike asserts an injected latency spike at the serving
// replica is actually charged to reads.
func TestReadDelaySpike(t *testing.T) {
	faults := sim.NewFaultInjector()
	clock := &sleepRecorder{}
	l := Open(Config{NumShards: 1, Faults: faults, Clock: clock})
	defer l.Close()

	lsn, err := l.Append([]Tag{"t"}, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	faults.SetDelay("shard/0", 5*time.Millisecond)
	before := clock.slept
	if _, err := l.ReadNext("t", lsn); err != nil {
		t.Fatal(err)
	}
	if got := clock.slept - before; got < 5*time.Millisecond {
		t.Fatalf("read charged %v, want >= 5ms spike", got)
	}
	faults.ClearDelay("shard/0")
	before = clock.slept
	if _, err := l.ReadNext("t", lsn); err != nil {
		t.Fatal(err)
	}
	if got := clock.slept - before; got != 0 {
		t.Fatalf("read charged %v after ClearDelay, want 0", got)
	}
}

// TestAppendSequencerDelaySpike asserts a sequencer spike delays appends.
func TestAppendSequencerDelaySpike(t *testing.T) {
	faults := sim.NewFaultInjector()
	clock := &sleepRecorder{}
	l := Open(Config{Faults: faults, Clock: clock})
	defer l.Close()

	faults.SetDelay("sequencer", 2*time.Millisecond)
	if _, err := l.Append([]Tag{"t"}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if clock.slept < 2*time.Millisecond {
		t.Fatalf("append charged %v, want >= 2ms spike", clock.slept)
	}
}
