package sharedlog

import (
	"context"
	"errors"
	"testing"
	"time"

	"impeller/internal/sim"
)

func TestIsRetryable(t *testing.T) {
	for _, err := range []error{ErrUnavailable, sim.ErrCrashed, sim.ErrPartitioned} {
		if !IsRetryable(err) {
			t.Errorf("IsRetryable(%v) = false, want true", err)
		}
	}
	for _, err := range []error{nil, ErrCondFailed, ErrTrimmed, ErrClosed,
		context.Canceled, context.DeadlineExceeded, errors.New("other")} {
		if IsRetryable(err) {
			t.Errorf("IsRetryable(%v) = true, want false", err)
		}
	}
}

// TestReadPartitionedShard asserts a partition between the client and
// every replica of a record makes reads fail ErrUnavailable, and that
// healing the partition restores them.
func TestReadPartitionedShard(t *testing.T) {
	faults := sim.NewFaultInjector()
	l := Open(Config{NumShards: 4, Replication: 2, Faults: faults})
	defer l.Close()

	lsn, err := l.Append([]Tag{"t"}, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// Record lsn lives on shards lsn%4 and (lsn+1)%4.
	s0 := l.shards[int(lsn)%4].name
	s1 := l.shards[(int(lsn)+1)%4].name
	faults.Partition("client", s0)
	if _, err := l.ReadNext("t", lsn); err != nil {
		t.Fatalf("one partitioned replica should not block reads: %v", err)
	}
	faults.Partition("client", s1)
	if _, err := l.ReadNext("t", lsn); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ReadNext with all replicas partitioned = %v, want ErrUnavailable", err)
	}
	if _, err := l.Read(lsn); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Read with all replicas partitioned = %v, want ErrUnavailable", err)
	}
	if _, err := l.ReadPrev("t", MaxLSN); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ReadPrev with all replicas partitioned = %v, want ErrUnavailable", err)
	}
	faults.Heal("client", s0)
	rec, err := l.ReadNext("t", lsn)
	if err != nil || rec == nil {
		t.Fatalf("ReadNext after heal = (%v, %v), want record", rec, err)
	}
}

// sleepRecorder is a clock that records Sleep charges instead of
// blocking, so delay-charging tests stay deterministic.
type sleepRecorder struct {
	sim.RealClock
	slept time.Duration
}

func (c *sleepRecorder) Sleep(d time.Duration) { c.slept += d }

// TestReadDelaySpike asserts an injected latency spike at the serving
// replica is actually charged to reads.
func TestReadDelaySpike(t *testing.T) {
	faults := sim.NewFaultInjector()
	clock := &sleepRecorder{}
	l := Open(Config{NumShards: 1, Faults: faults, Clock: clock})
	defer l.Close()

	lsn, err := l.Append([]Tag{"t"}, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	faults.SetDelay("shard/0", 5*time.Millisecond)
	before := clock.slept
	if _, err := l.ReadNext("t", lsn); err != nil {
		t.Fatal(err)
	}
	if got := clock.slept - before; got < 5*time.Millisecond {
		t.Fatalf("read charged %v, want >= 5ms spike", got)
	}
	faults.ClearDelay("shard/0")
	before = clock.slept
	if _, err := l.ReadNext("t", lsn); err != nil {
		t.Fatal(err)
	}
	if got := clock.slept - before; got != 0 {
		t.Fatalf("read charged %v after ClearDelay, want 0", got)
	}
}

// TestAppendSequencerDelaySpike asserts a sequencer spike delays appends.
func TestAppendSequencerDelaySpike(t *testing.T) {
	faults := sim.NewFaultInjector()
	clock := &sleepRecorder{}
	l := Open(Config{Faults: faults, Clock: clock})
	defer l.Close()

	faults.SetDelay("sequencer", 2*time.Millisecond)
	if _, err := l.Append([]Tag{"t"}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if clock.slept < 2*time.Millisecond {
		t.Fatalf("append charged %v, want >= 2ms spike", clock.slept)
	}
}

// TestReadPrevUsesWarmedCache verifies the recovery read-path fix:
// ReadPrev now resolves and serves through the same path as readNext,
// so a record already pulled by a forward read is a client-cache hit
// that charges no read latency. The old implementation bypassed the
// cache and charged the read latency unconditionally on top of the
// replica fault delay, double-charging recovery's backward marker scan
// over records its own forward reads had just warmed.
func TestReadPrevUsesWarmedCache(t *testing.T) {
	clock := &sleepRecorder{}
	const lat = time.Millisecond
	l := Open(Config{ReadLatency: sim.FixedLatency(lat), Clock: clock, CacheSize: 16})
	defer l.Close()
	if _, err := l.Append([]Tag{"t"}, []byte("x")); err != nil {
		t.Fatal(err)
	}

	// A cold backward read pays exactly one read charge.
	clock.slept = 0
	rec, err := l.ReadPrev("t", MaxLSN)
	if err != nil || rec == nil {
		t.Fatalf("cold ReadPrev = (%v, %v), want record", rec, err)
	}
	if clock.slept != lat {
		t.Fatalf("cold ReadPrev slept %v, want %v (one charge)", clock.slept, lat)
	}

	// The cold read populated the cache; the warmed backward read is
	// free. Before the fix this charged lat again.
	clock.slept = 0
	rec, err = l.ReadPrev("t", MaxLSN)
	if err != nil || rec == nil {
		t.Fatalf("warm ReadPrev = (%v, %v), want record", rec, err)
	}
	if clock.slept != 0 {
		t.Fatalf("warm ReadPrev slept %v, want 0 (cache hit)", clock.slept)
	}
	if hits, _ := l.CacheStats(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}

	// Same contract across directions: a forward read warms, the
	// backward scan of the same record stays uncharged under an injected
	// replica delay spike too (the delay is charged by the forward read).
	faults := sim.NewFaultInjector()
	clock2 := &sleepRecorder{}
	l2 := Open(Config{NumShards: 1, ReadLatency: sim.FixedLatency(lat), Clock: clock2, CacheSize: 16, Faults: faults})
	defer l2.Close()
	lsn, err := l2.Append([]Tag{"t"}, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	faults.SetDelay("shard/0", 5*time.Millisecond)
	clock2.slept = 0
	if rec, err := l2.ReadNext("t", lsn); err != nil || rec == nil {
		t.Fatalf("ReadNext = (%v, %v)", rec, err)
	}
	forward := clock2.slept
	if forward != lat+5*time.Millisecond {
		t.Fatalf("forward read slept %v, want %v", forward, lat+5*time.Millisecond)
	}
	clock2.slept = 0
	if rec, err := l2.ReadPrev("t", MaxLSN); err != nil || rec == nil {
		t.Fatalf("ReadPrev = (%v, %v)", rec, err)
	}
	// The backward read still traverses the replica (fault delay models
	// reaching it) but the record body is served from the warm cache.
	if clock2.slept != 5*time.Millisecond {
		t.Fatalf("warm ReadPrev under delay slept %v, want %v (no read-latency recharge)",
			clock2.slept, 5*time.Millisecond)
	}
}
