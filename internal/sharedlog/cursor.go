package sharedlog

import (
	"context"
	"errors"
	"sync/atomic"
)

// Streaming reads over the committed-read plane. A Cursor is the
// read-side dual of AppendBatch: where PR 3's group commit pays one
// append round trip per group, a cursor pays one index lookup, one
// fault check, and one read-latency charge per *batch* of records
// instead of per record. Tasks and recovery replay consume the log
// through cursors; the per-record ReadNext family remains for point
// reads and as the semantic reference the cursor is tested against
// (cursor ≡ singles property test in cursor_test.go).
//
// Concurrency contract: a Cursor is owned by one consumer goroutine.
// Opening many cursors concurrently (even over the same tags) is safe —
// all shared state they touch (index shards, store, counters) is
// concurrency-safe — but a single Cursor's methods must not be called
// concurrently.

// ErrCursorInvalidated reports that Trim advanced past the cursor's
// position: the next record the cursor would return was garbage-
// collected, so the stream has a hole and the consumer must re-seek
// (typically to TrimHorizon, whose prefix is covered by a checkpoint).
// The error is sticky until Seek.
//
// This is deliberately stricter than ReadNext, which silently skips a
// trimmed gap when a live candidate exists past it: a streaming
// consumer that missed records must find out.
var ErrCursorInvalidated = errors.New("sharedlog: cursor invalidated by trim")

// DefaultCursorPrefetch is the readahead bound (records buffered beyond
// the batch being served) when CursorOptions.Prefetch is 0.
const DefaultCursorPrefetch = 256

// CursorStats counts one consumer's cursor activity. All fields are
// atomic so a cursor owned by a task goroutine can share the struct
// with a metrics scraper. The log additionally folds every cursor's
// activity into Log.Stats().
type CursorStats struct {
	// Opens counts OpenCursor calls routing into this struct.
	Opens atomic.Uint64
	// BatchReads counts fetches against the log — the round trips a
	// deployment would pay. Each successful fetch charges read latency
	// once, however many records it returns.
	BatchReads atomic.Uint64
	// Records counts records returned to the consumer.
	Records atomic.Uint64
	// PrefetchHits counts records served from the readahead buffer;
	// PrefetchMisses counts records served straight from the fetch that
	// retrieved them. Hits + Misses = Records.
	PrefetchHits   atomic.Uint64
	PrefetchMisses atomic.Uint64
	// Invalidations counts trims that passed the cursor position.
	Invalidations atomic.Uint64
}

// CursorOptions tunes OpenCursor.
type CursorOptions struct {
	// Prefetch bounds the readahead buffer: a fetch may retrieve up to
	// max+Prefetch records, the surplus served from memory by later
	// NextBatch calls. 0 means DefaultCursorPrefetch; negative disables
	// readahead (every batch is a fetch — the per-record ablation uses
	// this with max=1).
	Prefetch int
	// Stats, if non-nil, additionally receives this cursor's counters
	// (e.g. a task's TaskMetrics). Log.Stats() is updated regardless.
	Stats *CursorStats
}

// Cursor is a streaming reader over one or more tag substreams, merged
// in global LSN order. See the package comment in this file for the
// ownership contract.
type Cursor struct {
	log      *Log
	tags     []Tag
	pos      LSN // next LSN to fetch from the log
	prefetch int
	stats    *CursorStats // consumer's sink; may be nil
	invalid  bool

	// buf holds fetched records; buf[head:] is the unserved readahead.
	// NextBatch returns subslices of buf, valid until the next fetch.
	buf  []*Record
	head int

	// Reused fetch scratch: per-tag candidate LSNs, the merge cursor
	// into each list, and the merged batch. The merge walks tagPos
	// instead of re-slicing perTag so each list keeps its full backing
	// capacity across fetches (the warm path allocates nothing).
	perTag [][]LSN
	tagPos []int
	merged []LSN
}

// OpenCursor opens a streaming reader over tags starting at from, with
// default options. The tag slice is copied.
func (l *Log) OpenCursor(tags []Tag, from LSN) *Cursor {
	return l.OpenCursorOpts(tags, from, CursorOptions{})
}

// OpenCursorOpts opens a streaming reader with explicit options.
func (l *Log) OpenCursorOpts(tags []Tag, from LSN, opts CursorOptions) *Cursor {
	prefetch := opts.Prefetch
	switch {
	case prefetch == 0:
		prefetch = DefaultCursorPrefetch
	case prefetch < 0:
		prefetch = 0
	}
	c := &Cursor{
		log:      l,
		tags:     append([]Tag(nil), tags...),
		pos:      from,
		prefetch: prefetch,
		stats:    opts.Stats,
		perTag:   make([][]LSN, len(tags)),
		tagPos:   make([]int, len(tags)),
	}
	l.stats.cursorOpens.Add(1)
	if c.stats != nil {
		c.stats.Opens.Add(1)
	}
	return c
}

// Pos returns the next LSN the cursor will fetch. Records still in the
// readahead buffer sit below Pos; it is a fetch position, not a
// consumption position.
func (c *Cursor) Pos() LSN { return c.pos }

// Buffered reports how many prefetched records are waiting in memory.
func (c *Cursor) Buffered() int { return len(c.buf) - c.head }

// Seek repositions the cursor to from, dropping the readahead buffer
// and clearing any invalidation. The typical recovery from
// ErrCursorInvalidated is Seek(log.TrimHorizon()).
func (c *Cursor) Seek(from LSN) {
	c.pos = from
	c.buf = c.buf[:0]
	c.head = 0
	c.invalid = false
}

// NextBatch returns up to max records in global LSN order, or nil when
// the cursor is at the committed tail. The returned slice is a view
// into the cursor's internal buffer: it is valid only until the next
// call that fetches (and must not be modified), which is what keeps the
// warm path allocation-free. Records themselves are shared and
// immutable, so callers may retain them.
//
// A batch is served either entirely from the readahead buffer or from
// one fetch; one fetch charges read latency once and performs one
// index lookup and one fault check for the whole batch.
func (c *Cursor) NextBatch(max int) ([]*Record, error) {
	if max <= 0 {
		max = 1
	}
	if c.invalid {
		return nil, ErrCursorInvalidated
	}
	if c.head >= len(c.buf) {
		if err := c.fetch(max); err != nil {
			return nil, err
		}
		if len(c.buf) == 0 {
			return nil, nil // at tail
		}
		return c.serve(max, false), nil
	}
	return c.serve(max, true), nil
}

// serve hands out the next run of buffered records.
func (c *Cursor) serve(max int, fromPrefetch bool) []*Record {
	n := len(c.buf) - c.head
	if n > max {
		n = max
	}
	out := c.buf[c.head : c.head+n]
	c.head += n
	l := c.log
	l.stats.cursorRecords.Add(uint64(n))
	if fromPrefetch {
		l.stats.cursorPrefetchHits.Add(uint64(n))
	} else {
		l.stats.cursorPrefetchMisses.Add(uint64(n))
	}
	if c.stats != nil {
		c.stats.Records.Add(uint64(n))
		if fromPrefetch {
			c.stats.PrefetchHits.Add(uint64(n))
		} else {
			c.stats.PrefetchMisses.Add(uint64(n))
		}
	}
	return out
}

// fetch refills the buffer with up to max+prefetch records starting at
// c.pos. On return either the buffer holds >= 1 record, or the buffer
// is empty and the cursor is at the committed tail, or an error is
// returned. The whole fetch is one simulated round trip: one read-
// latency charge and one fault check against the replica set serving
// the range.
func (c *Cursor) fetch(max int) error {
	l := c.log
	if l.closed.Load() {
		return ErrClosed
	}
	if c.pos < l.store.trimHorizon() {
		return c.invalidate()
	}
	want := max + c.prefetch
	// One index lookup per tag per fetch (each takes its shard's read
	// lock once), then a k-way merge in LSN order. A record carrying
	// several watched tags appears in several candidate lists; the merge
	// dedupes equal LSNs so it is returned once.
	for i, tag := range c.tags {
		c.perTag[i] = l.index.nextN(tag, c.pos, c.perTag[i][:0], want)
		c.tagPos[i] = 0
	}
	c.merged = c.merged[:0]
	for len(c.merged) < want {
		best := MaxLSN
		found := false
		for i, lsns := range c.perTag {
			if p := c.tagPos[i]; p < len(lsns) && lsns[p] < best {
				best = lsns[p]
				found = true
			}
		}
		if !found {
			break
		}
		c.merged = append(c.merged, best)
		for i, lsns := range c.perTag {
			if p := c.tagPos[i]; p < len(lsns) && lsns[p] == best {
				c.tagPos[i] = p + 1
			}
		}
	}
	c.buf = c.buf[:0]
	c.head = 0
	if len(c.merged) == 0 {
		return nil // at tail (pos >= horizon was checked above)
	}
	// Fault model: the batch is one round trip, so availability is
	// checked per record but the batch truncates at the first
	// unavailable record instead of failing wholesale — the records
	// before it sit on reachable replicas. An unavailable head means the
	// round trip itself fails. The injected per-replica delay, like the
	// read latency, is charged once per fetch.
	if l.cfg.Faults != nil {
		if !l.available(c.merged[0]) {
			return ErrUnavailable
		}
		l.chargeFaultDelay(c.merged[0])
		for i := 1; i < len(c.merged); i++ {
			if !l.available(c.merged[i]) {
				c.merged = c.merged[:i]
				break
			}
		}
	}
	for _, lsn := range c.merged {
		rec, err := l.store.get(lsn)
		if err != nil || rec == nil {
			// Trim retired an indexed candidate mid-fetch. The horizon is
			// monotonic, so it has passed this LSN — and therefore the
			// cursor's position unless earlier candidates survived.
			if len(c.buf) == 0 {
				return c.invalidate()
			}
			break
		}
		c.buf = append(c.buf, rec)
	}
	c.pos = c.buf[len(c.buf)-1].LSN + 1
	l.chargeRead()
	l.stats.cursorBatchReads.Add(1)
	if c.stats != nil {
		c.stats.BatchReads.Add(1)
	}
	return nil
}

func (c *Cursor) invalidate() error {
	c.invalid = true
	c.buf = c.buf[:0]
	c.head = 0
	c.log.stats.cursorInvalidations.Add(1)
	if c.stats != nil {
		c.stats.Invalidations.Add(1)
	}
	return ErrCursorInvalidated
}

// NextBatchBlocking behaves like NextBatch but waits until at least one
// record is readable, ctx is done, or the log closes. It parks on the
// same per-tag waiters as the blocking point reads, so a commit wakes
// the cursor only if it carries a watched tag.
func (c *Cursor) NextBatchBlocking(ctx context.Context, max int) ([]*Record, error) {
	l := c.log
	woken := false
	finish := func(recs []*Record, err error) ([]*Record, error) {
		if woken && (len(recs) > 0 || err != nil) {
			l.stats.usefulWakeups.Add(1)
		}
		return recs, err
	}
	for {
		recs, err := c.NextBatch(max)
		if err != nil || len(recs) > 0 {
			return finish(recs, err)
		}
		w := newWaiter()
		l.index.register(c.tags, w)
		// Re-check: a record may have committed between the miss above
		// and the registration; its commit saw no waiter to wake.
		recs, err = c.NextBatch(max)
		if err != nil || len(recs) > 0 {
			l.index.unregister(c.tags, w)
			return finish(recs, err)
		}
		select {
		case <-ctx.Done():
			l.index.unregister(c.tags, w)
			return nil, ctx.Err()
		case <-l.done:
			l.index.unregister(c.tags, w)
			return nil, ErrClosed
		case <-w.ch:
			woken = true
		}
		// The woken tag's commit detached w from that tag; drop the
		// registrations the other tags may still hold.
		l.index.unregister(c.tags, w)
	}
}
