package sharedlog

import (
	"context"
	"fmt"
	"testing"
	"time"

	"impeller/internal/sim"
)

// Micro-benchmarks for the shared log's hot paths. The refactor that
// split the ordering plane from the committed-read plane is judged by
// these: reads must scale with GOMAXPROCS instead of serializing on a
// global mutex. Before/after numbers are recorded in
// results/sharedlog_bench.md.

// BenchmarkAppendParallel measures raw append throughput under
// contention: every append is an ordering-plane operation and fully
// serialized by design (LSN assignment is the total order), so this
// bounds the win parallel appenders can expect.
func BenchmarkAppendParallel(b *testing.B) {
	l := Open(Config{})
	defer l.Close()
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		tags := []Tag{"bench"}
		for pb.Next() {
			if _, err := l.Append(tags, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAppendBatch measures group-commit throughput at several
// batch sizes. Compare ns/op ÷ batch size against BenchmarkAppendParallel
// to see the per-record amortization (results/sharedlog_bench.md).
func BenchmarkAppendBatch(b *testing.B) {
	for _, size := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			l := Open(Config{})
			defer l.Close()
			payload := make([]byte, 128)
			entries := make([]AppendEntry, size)
			for i := range entries {
				entries[i] = AppendEntry{Tags: []Tag{Tag(fmt.Sprintf("t%d", i%4))}, Payload: payload}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.AppendBatch(entries); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/record")
		})
	}
}

// BenchmarkAppendLatencyAmortization measures the group-commit win the
// paper actually claims (§5.3): with a calibrated append round trip
// charged per operation, single appends pay it per record while
// AppendBatch pays it per group. Latency is scaled to 1/20 of the Boki
// calibration to keep benchmark wall time sane; the ratio between the
// two subbenches is the amortization factor (per-record ns/op).
func BenchmarkAppendLatencyAmortization(b *testing.B) {
	open := func() *Log {
		return Open(Config{
			AppendLatency: sim.Scale{M: sim.DefaultBokiLatency(sim.NewRand(1).Fork()), F: 0.05},
		})
	}
	payload := make([]byte, 128)
	b.Run("single/clients=16", func(b *testing.B) {
		l := open()
		defer l.Close()
		b.SetParallelism(16) // 16 concurrent appenders, each blocked on its own round trip
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			tags := []Tag{"bench"}
			for pb.Next() {
				if _, err := l.Append(tags, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("batch=64", func(b *testing.B) {
		l := open()
		defer l.Close()
		entries := make([]AppendEntry, 64)
		for i := range entries {
			entries[i] = AppendEntry{Tags: []Tag{Tag(fmt.Sprintf("t%d", i%4))}, Payload: payload}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += len(entries) {
			if _, err := l.AppendBatch(entries); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAppendSequencerShards measures sequencer-mode append
// throughput against the number of ordering shards under a scaled
// local-persist latency: the serial per-shard resource that bounds one
// shard's bandwidth. Throughput should rise near-linearly in the shard
// count until the appender pool stops saturating the shards (the full
// calibrated curve is -exp scaling; see results/scaling.md).
func BenchmarkAppendSequencerShards(b *testing.B) {
	payload := make([]byte, 128)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			l := Open(Config{
				OrderingInterval:   100 * time.Microsecond,
				OrderingShards:     shards,
				ShardAppendLatency: sim.Scale{M: sim.DefaultLocalPersistLatency(sim.NewRand(1).Fork()), F: 0.05},
			})
			defer l.Close()
			b.SetParallelism(16)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				tags := []Tag{"bench"}
				for pb.Next() {
					if _, err := l.Append(tags, payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkReadNextHot measures parallel non-blocking reads of one hot
// tag — the marker-fanout pattern where every downstream task re-reads
// the same substream. On the committed path this must not take any
// global lock.
func BenchmarkReadNextHot(b *testing.B) {
	l := Open(Config{})
	defer l.Close()
	payload := make([]byte, 128)
	const n = 4096
	for i := 0; i < n; i++ {
		if _, err := l.Append([]Tag{"hot"}, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var cursor LSN
		for pb.Next() {
			rec, err := l.ReadNext("hot", cursor)
			if err != nil {
				b.Fatal(err)
			}
			if rec == nil {
				cursor = 0
				continue
			}
			cursor = rec.LSN + 1
		}
	})
}

// BenchmarkReadNextAnyFanIn measures the task read loop's shape: one
// cursor over several input substreams (ReadNextAny with a tag set).
func BenchmarkReadNextAnyFanIn(b *testing.B) {
	l := Open(Config{})
	defer l.Close()
	payload := make([]byte, 128)
	tags := []Tag{"in/0", "in/1", "in/2", "in/3"}
	const n = 4096
	for i := 0; i < n; i++ {
		if _, err := l.Append([]Tag{tags[i%len(tags)]}, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var cursor LSN
		for pb.Next() {
			rec, err := l.ReadNextAny(tags, cursor)
			if err != nil {
				b.Fatal(err)
			}
			if rec == nil {
				cursor = 0
				continue
			}
			cursor = rec.LSN + 1
		}
	})
}

// BenchmarkMixed90Read10Write is the steady-state mix: mostly reads with
// a trickle of appends. Under the old single-mutex log the writers
// stalled every reader; with the split planes only writers serialize.
func BenchmarkMixed90Read10Write(b *testing.B) {
	l := Open(Config{})
	defer l.Close()
	payload := make([]byte, 128)
	const n = 2048
	for i := 0; i < n; i++ {
		if _, err := l.Append([]Tag{"mix"}, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		var cursor LSN
		tags := []Tag{"mix"}
		for pb.Next() {
			i++
			if i%10 == 0 {
				if _, err := l.Append(tags, payload); err != nil {
					b.Fatal(err)
				}
				continue
			}
			rec, err := l.ReadNext("mix", cursor)
			if err != nil {
				b.Fatal(err)
			}
			if rec == nil {
				cursor = 0
				continue
			}
			cursor = rec.LSN + 1
		}
	})
}

// BenchmarkBlockingFanOut measures producer-consumer wakeup cost: one
// appender, many blocked tag readers. With the global broadcast every
// commit woke every reader; with per-tag waiters a commit wakes only
// readers registered on a carried tag.
func BenchmarkBlockingFanOut(b *testing.B) {
	for _, readers := range []int{1, 8} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			l := Open(Config{})
			defer l.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan struct{})
			for r := 0; r < readers; r++ {
				go func(r int) {
					tag := Tag(fmt.Sprintf("idle/%d", r))
					var cursor LSN
					for {
						rec, err := l.ReadNextBlocking(ctx, tag, cursor)
						if err != nil || rec == nil {
							return
						}
						cursor = rec.LSN + 1
						select {
						case done <- struct{}{}:
						case <-ctx.Done():
							return
						}
					}
				}(r)
			}
			payload := make([]byte, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Wake exactly one reader per append; the others must
				// not pay for it.
				tag := []Tag{Tag(fmt.Sprintf("idle/%d", i%readers))}
				if _, err := l.Append(tag, payload); err != nil {
					b.Fatal(err)
				}
				<-done
			}
		})
	}
}

// BenchmarkCursorHotTag measures the streaming hot path: one cursor
// draining one hot tag in batches of 64. Compare ns/record against
// BenchmarkReadNextHot for the per-record index/dispatch overhead a
// batch amortizes; allocs/op must stay 0 (the cursor alloc gate).
func BenchmarkCursorHotTag(b *testing.B) {
	l := Open(Config{})
	defer l.Close()
	payload := make([]byte, 128)
	const n = 1 << 14
	for i := 0; i < n; i++ {
		if _, err := l.Append([]Tag{"hot"}, payload); err != nil {
			b.Fatal(err)
		}
	}
	cur := l.OpenCursorOpts([]Tag{"hot"}, 0, CursorOptions{Prefetch: -1})
	records := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := cur.NextBatch(64)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) == 0 {
			cur.Seek(0)
			continue
		}
		records += len(recs)
	}
	if records > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(records), "ns/record")
	}
}

// BenchmarkCursorFanout measures many concurrent cursors merging the
// same four substreams — the task-per-core read pattern. Each parallel
// worker owns its cursor; the shared state under contention is the
// index's read locks and the lock-free store.
func BenchmarkCursorFanout(b *testing.B) {
	l := Open(Config{})
	defer l.Close()
	payload := make([]byte, 128)
	tags := []Tag{"in/0", "in/1", "in/2", "in/3"}
	const n = 1 << 14
	for i := 0; i < n; i++ {
		if _, err := l.Append([]Tag{tags[i%len(tags)]}, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cur := l.OpenCursorOpts(tags, 0, CursorOptions{Prefetch: 192})
		for pb.Next() {
			recs, err := cur.NextBatch(64)
			if err != nil {
				b.Fatal(err)
			}
			if len(recs) == 0 {
				cur.Seek(0)
			}
		}
	})
}

// BenchmarkReplayDepth is the recovery shape under calibrated latency
// (scaled like BenchmarkAppendLatencyAmortization): replay a 2048-deep
// change log once per iteration, per-record reads vs a prefetching
// cursor. The per-record ns gap is the round-trip amortization the
// -exp recovery experiment measures end to end.
func BenchmarkReplayDepth(b *testing.B) {
	const depth = 2048
	open := func() *Log {
		l := Open(Config{
			ReadLatency: sim.Scale{M: sim.DefaultBokiLatency(sim.NewRand(2).Fork()), F: 0.02},
		})
		payload := make([]byte, 128)
		entries := make([]AppendEntry, 64)
		for i := range entries {
			entries[i] = AppendEntry{Tags: []Tag{"change"}, Payload: payload}
		}
		for i := 0; i < depth; i += len(entries) {
			if _, err := l.AppendBatch(entries); err != nil {
				b.Fatal(err)
			}
		}
		return l
	}
	b.Run("singles", func(b *testing.B) {
		l := open()
		defer l.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var cursor LSN
			got := 0
			for {
				rec, err := l.ReadNext("change", cursor)
				if err != nil {
					b.Fatal(err)
				}
				if rec == nil {
					break
				}
				cursor = rec.LSN + 1
				got++
			}
			if got != depth {
				b.Fatalf("replayed %d, want %d", got, depth)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*depth), "ns/record")
	})
	b.Run("cursor", func(b *testing.B) {
		l := open()
		defer l.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cur := l.OpenCursor([]Tag{"change"}, 0)
			got := 0
			for {
				recs, err := cur.NextBatch(64)
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) == 0 {
					break
				}
				got += len(recs)
			}
			if got != depth {
				b.Fatalf("replayed %d, want %d", got, depth)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*depth), "ns/record")
	})
}
