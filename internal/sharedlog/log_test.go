package sharedlog

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"impeller/internal/sim"
)

func openTest(t *testing.T) *Log {
	t.Helper()
	l := Open(Config{})
	t.Cleanup(l.Close)
	return l
}

func mustAppend(t *testing.T, l *Log, payload string, tags ...Tag) LSN {
	t.Helper()
	lsn, err := l.Append(tags, []byte(payload))
	if err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
	return lsn
}

func TestAppendAssignsDenseLSNs(t *testing.T) {
	l := openTest(t)
	for i := 0; i < 100; i++ {
		lsn := mustAppend(t, l, fmt.Sprint(i), "a")
		if lsn != LSN(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if l.Tail() != 100 {
		t.Fatalf("Tail = %d, want 100", l.Tail())
	}
}

func TestAppendRequiresTag(t *testing.T) {
	l := openTest(t)
	if _, err := l.Append(nil, []byte("x")); err == nil {
		t.Fatal("append with no tags succeeded")
	}
}

func TestSelectiveReadByTag(t *testing.T) {
	l := openTest(t)
	mustAppend(t, l, "a0", "a")
	mustAppend(t, l, "b0", "b")
	mustAppend(t, l, "a1", "a")

	rec, err := l.ReadNext("a", 0)
	if err != nil || rec == nil || string(rec.Payload) != "a0" {
		t.Fatalf("ReadNext(a,0) = %v, %v", rec, err)
	}
	rec, err = l.ReadNext("a", rec.LSN+1)
	if err != nil || rec == nil || string(rec.Payload) != "a1" {
		t.Fatalf("ReadNext(a,1) = %v, %v", rec, err)
	}
	rec, err = l.ReadNext("a", rec.LSN+1)
	if err != nil || rec != nil {
		t.Fatalf("ReadNext past tail = %v, %v, want nil,nil", rec, err)
	}
}

func TestMultiTagAppendVisibleInAllSubstreams(t *testing.T) {
	// The key primitive for progress markers (§3.2): one record with
	// tags {A, B} is read by consumers of both substreams at one LSN.
	l := openTest(t)
	lsn := mustAppend(t, l, "marker", "X/2a", "X/2b", "T/1a")
	for _, tag := range []Tag{"X/2a", "X/2b", "T/1a"} {
		rec, err := l.ReadNext(tag, 0)
		if err != nil || rec == nil {
			t.Fatalf("ReadNext(%s) = %v, %v", tag, rec, err)
		}
		if rec.LSN != lsn {
			t.Fatalf("tag %s sees LSN %d, want %d", tag, rec.LSN, lsn)
		}
		if string(rec.Payload) != "marker" {
			t.Fatalf("tag %s payload = %q", tag, rec.Payload)
		}
	}
}

func TestReadPrevTail(t *testing.T) {
	l := openTest(t)
	if rec, err := l.ReadPrev("t", MaxLSN); err != nil || rec != nil {
		t.Fatalf("ReadPrev on empty = %v, %v", rec, err)
	}
	mustAppend(t, l, "m1", "t")
	mustAppend(t, l, "other", "u")
	last := mustAppend(t, l, "m2", "t")
	rec, err := l.ReadPrev("t", MaxLSN)
	if err != nil || rec == nil || rec.LSN != last {
		t.Fatalf("ReadPrev tail = %v, %v, want LSN %d", rec, err, last)
	}
	rec, err = l.ReadPrev("t", last-1)
	if err != nil || rec == nil || string(rec.Payload) != "m1" {
		t.Fatalf("ReadPrev bounded = %v, %v", rec, err)
	}
}

func TestReadExact(t *testing.T) {
	l := openTest(t)
	lsn := mustAppend(t, l, "x", "a")
	rec, err := l.Read(lsn)
	if err != nil || rec == nil || string(rec.Payload) != "x" {
		t.Fatalf("Read = %v, %v", rec, err)
	}
	rec, err = l.Read(lsn + 100)
	if err != nil || rec != nil {
		t.Fatalf("Read unassigned = %v, %v", rec, err)
	}
}

func TestReadNextBlockingWakesOnAppend(t *testing.T) {
	l := openTest(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got := make(chan *Record, 1)
	go func() {
		rec, err := l.ReadNextBlocking(ctx, "w", 0)
		if err != nil {
			t.Errorf("blocking read: %v", err)
		}
		got <- rec
	}()
	time.Sleep(10 * time.Millisecond)
	mustAppend(t, l, "late", "w")
	select {
	case rec := <-got:
		if rec == nil || string(rec.Payload) != "late" {
			t.Fatalf("blocking read got %v", rec)
		}
	case <-ctx.Done():
		t.Fatal("blocking read never woke")
	}
}

func TestReadNextBlockingHonorsContext(t *testing.T) {
	l := openTest(t)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := l.ReadNextBlocking(ctx, "never", 0)
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocking read ignored cancellation")
	}
}

func TestConditionalAppendFencesZombies(t *testing.T) {
	l := openTest(t)
	l.Meta().Set("task/1a", 1)
	if _, err := l.ConditionalAppend([]Tag{"t"}, []byte("ok"), "task/1a", 1); err != nil {
		t.Fatalf("valid conditional append: %v", err)
	}
	// Task manager restarts the task: instance number bumps to 2.
	l.Meta().Increment("task/1a")
	if _, err := l.ConditionalAppend([]Tag{"t"}, []byte("zombie"), "task/1a", 1); err != ErrCondFailed {
		t.Fatalf("zombie append err = %v, want ErrCondFailed", err)
	}
	if _, err := l.ConditionalAppend([]Tag{"t"}, []byte("new"), "task/1a", 2); err != nil {
		t.Fatalf("new instance append: %v", err)
	}
	if n := l.CountTag("t"); n != 2 {
		t.Fatalf("records with tag t = %d, want 2 (zombie excluded)", n)
	}
}

func TestConditionalAppendMissingKeyFails(t *testing.T) {
	l := openTest(t)
	if _, err := l.ConditionalAppend([]Tag{"t"}, nil, "nope", 1); err != ErrCondFailed {
		t.Fatalf("err = %v, want ErrCondFailed", err)
	}
}

func TestSetAuxRoundTrip(t *testing.T) {
	l := openTest(t)
	lsn := mustAppend(t, l, "m", "t")
	if err := l.SetAux(lsn, []byte("ckpt@42")); err != nil {
		t.Fatalf("SetAux: %v", err)
	}
	rec, err := l.Read(lsn)
	if err != nil || string(rec.Aux) != "ckpt@42" {
		t.Fatalf("aux = %q, %v", rec.Aux, err)
	}
	if err := l.SetAux(lsn+50, []byte("x")); err == nil {
		t.Fatal("SetAux at unassigned LSN succeeded")
	}
}

func TestTrimRemovesPrefix(t *testing.T) {
	l := openTest(t)
	for i := 0; i < 10; i++ {
		mustAppend(t, l, fmt.Sprint(i), "a")
	}
	if err := l.Trim(5); err != nil {
		t.Fatalf("Trim: %v", err)
	}
	if h := l.TrimHorizon(); h != 5 {
		t.Fatalf("TrimHorizon = %d, want 5", h)
	}
	if _, err := l.Read(3); err != ErrTrimmed {
		t.Fatalf("Read trimmed err = %v, want ErrTrimmed", err)
	}
	rec, err := l.ReadNext("a", 0)
	if err != nil || rec == nil || rec.LSN != 5 {
		t.Fatalf("ReadNext after trim = %v, %v, want LSN 5", rec, err)
	}
	// Idempotent + monotonic.
	if err := l.Trim(2); err != nil {
		t.Fatalf("backwards trim errored: %v", err)
	}
	if h := l.TrimHorizon(); h != 5 {
		t.Fatalf("TrimHorizon moved backwards: %d", h)
	}
	if n := l.CountTag("a"); n != 5 {
		t.Fatalf("CountTag = %d, want 5", n)
	}
}

func TestTrimBeyondTailClamps(t *testing.T) {
	l := openTest(t)
	mustAppend(t, l, "x", "a")
	if err := l.Trim(100); err != nil {
		t.Fatalf("Trim: %v", err)
	}
	if h := l.TrimHorizon(); h != 1 {
		t.Fatalf("TrimHorizon = %d, want clamp to tail 1", h)
	}
}

func TestReadNextOnFullyTrimmedRangeReportsTrimmed(t *testing.T) {
	l := openTest(t)
	mustAppend(t, l, "x", "only")
	if err := l.Trim(1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadNext("only", 0); err != ErrTrimmed {
		t.Fatalf("err = %v, want ErrTrimmed", err)
	}
}

func TestSequencerOrderingInterval(t *testing.T) {
	l := Open(Config{OrderingInterval: 2 * time.Millisecond})
	defer l.Close()
	var wg sync.WaitGroup
	lsns := make([]LSN, 20)
	for i := range lsns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append([]Tag{"t"}, []byte{byte(i)})
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			lsns[i] = lsn
		}(i)
	}
	wg.Wait()
	seen := make(map[LSN]bool)
	for _, lsn := range lsns {
		if seen[lsn] {
			t.Fatalf("duplicate LSN %d", lsn)
		}
		seen[lsn] = true
	}
	if l.Tail() != 20 {
		t.Fatalf("Tail = %d, want 20", l.Tail())
	}
}

func TestCloseUnblocksPendingAppends(t *testing.T) {
	l := Open(Config{OrderingInterval: time.Hour}) // cut never fires
	errc := make(chan error, 1)
	go func() {
		_, err := l.Append([]Tag{"t"}, []byte("x"))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending append never unblocked")
	}
}

func TestOperationsAfterClose(t *testing.T) {
	l := Open(Config{})
	l.Close()
	if _, err := l.Append([]Tag{"t"}, nil); err != ErrClosed {
		t.Fatalf("Append err = %v", err)
	}
	if _, err := l.ReadNext("t", 0); err != ErrClosed {
		t.Fatalf("ReadNext err = %v", err)
	}
	if err := l.Trim(1); err != ErrClosed {
		t.Fatalf("Trim err = %v", err)
	}
}

func TestStorageShardCrashMakesRecordsUnavailable(t *testing.T) {
	f := sim.NewFaultInjector()
	l := Open(Config{NumShards: 4, Replication: 1, Faults: f})
	defer l.Close()
	lsn := mustAppend(t, l, "x", "a")
	// Replication 1: the single replica lives on shard lsn%4.
	f.Crash(fmt.Sprintf("shard/%d", int(lsn)%4))
	if _, err := l.ReadNext("a", 0); err != ErrUnavailable {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

func TestReplicationSurvivesSingleShardCrash(t *testing.T) {
	f := sim.NewFaultInjector()
	l := Open(Config{NumShards: 4, Replication: 3, Faults: f})
	defer l.Close()
	lsn := mustAppend(t, l, "x", "a")
	f.Crash(fmt.Sprintf("shard/%d", int(lsn)%4))
	rec, err := l.ReadNext("a", 0)
	if err != nil || rec == nil {
		t.Fatalf("read with 2 live replicas failed: %v, %v", rec, err)
	}
}

func TestSequencerPartitionFailsAppends(t *testing.T) {
	f := sim.NewFaultInjector()
	l := Open(Config{Faults: f})
	defer l.Close()
	f.Partition("client", "sequencer")
	if _, err := l.Append([]Tag{"t"}, nil); err != sim.ErrPartitioned {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	f.Heal("client", "sequencer")
	if _, err := l.Append([]Tag{"t"}, nil); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
}

func TestAppendLatencyCharged(t *testing.T) {
	l := Open(Config{AppendLatency: sim.FixedLatency(5 * time.Millisecond)})
	defer l.Close()
	start := time.Now()
	mustAppend(t, l, "x", "a")
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("append took %v, want >= 5ms", d)
	}
}

func TestConcurrentAppendsTotalOrder(t *testing.T) {
	l := openTest(t)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tag := Tag(fmt.Sprintf("w%d", w))
			for i := 0; i < per; i++ {
				if _, err := l.Append([]Tag{tag, "all"}, []byte{byte(w), byte(i)}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Tail() != workers*per {
		t.Fatalf("Tail = %d, want %d", l.Tail(), workers*per)
	}
	// Per-worker substreams preserve each worker's append order.
	for w := 0; w < workers; w++ {
		tag := Tag(fmt.Sprintf("w%d", w))
		var from LSN
		for i := 0; i < per; i++ {
			rec, err := l.ReadNext(tag, from)
			if err != nil || rec == nil {
				t.Fatalf("worker %d read %d: %v %v", w, i, rec, err)
			}
			if int(rec.Payload[1]) != i {
				t.Fatalf("worker %d out of order at %d: got %d", w, i, rec.Payload[1])
			}
			from = rec.LSN + 1
		}
	}
	if n := l.CountTag("all"); n != workers*per {
		t.Fatalf(`CountTag("all") = %d`, n)
	}
}

// Property: for any sequence of tagged appends, reading a tag's substream
// via ReadNext yields exactly the records appended with that tag, in
// append order.
func TestPropertySelectiveReadEquivalence(t *testing.T) {
	check := func(tagChoices []uint8) bool {
		l := Open(Config{})
		defer l.Close()
		want := make(map[Tag][]string)
		for i, c := range tagChoices {
			tag := Tag(fmt.Sprintf("t%d", c%5))
			payload := fmt.Sprintf("p%d", i)
			if _, err := l.Append([]Tag{tag}, []byte(payload)); err != nil {
				return false
			}
			want[tag] = append(want[tag], payload)
		}
		for tag, payloads := range want {
			var from LSN
			for _, p := range payloads {
				rec, err := l.ReadNext(tag, from)
				if err != nil || rec == nil || string(rec.Payload) != p {
					return false
				}
				from = rec.LSN + 1
			}
			if rec, _ := l.ReadNext(tag, from); rec != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: trim at any point never affects records above the horizon.
func TestPropertyTrimPreservesSuffix(t *testing.T) {
	check := func(n uint8, cut uint8) bool {
		l := Open(Config{})
		defer l.Close()
		total := int(n%50) + 1
		for i := 0; i < total; i++ {
			if _, err := l.Append([]Tag{"t"}, []byte{byte(i)}); err != nil {
				return false
			}
		}
		horizon := LSN(int(cut) % (total + 1))
		if err := l.Trim(horizon); err != nil {
			return false
		}
		rec, err := l.ReadNext("t", horizon)
		if horizon == LSN(total) {
			return err == nil && rec == nil
		}
		return err == nil && rec != nil && rec.LSN == horizon && rec.Payload[0] == byte(horizon)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaStoreBasics(t *testing.T) {
	m := NewMetaStore()
	if _, ok := m.Get("k"); ok {
		t.Fatal("missing key reported present")
	}
	m.Set("k", 7)
	if v, ok := m.Get("k"); !ok || v != 7 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if !m.CompareAndSwap("k", 7, 8) {
		t.Fatal("CAS with correct old failed")
	}
	if m.CompareAndSwap("k", 7, 9) {
		t.Fatal("CAS with stale old succeeded")
	}
	if v := m.Increment("k"); v != 9 {
		t.Fatalf("Increment = %d, want 9", v)
	}
	if v := m.Increment("fresh"); v != 1 {
		t.Fatalf("Increment fresh = %d, want 1", v)
	}
	m.Delete("k")
	if _, ok := m.Get("k"); ok {
		t.Fatal("deleted key present")
	}
}

func TestMetaStoreConcurrentIncrementsUnique(t *testing.T) {
	m := NewMetaStore()
	const n = 100
	results := make(chan uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- m.Increment("inst")
		}()
	}
	wg.Wait()
	close(results)
	seen := make(map[uint64]bool)
	for v := range results {
		if seen[v] {
			t.Fatalf("duplicate instance number %d", v)
		}
		seen[v] = true
	}
}

func TestRecordCopyIsolation(t *testing.T) {
	l := openTest(t)
	payload := []byte("mutate-me")
	lsn, err := l.Append([]Tag{"t"}, payload)
	if err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X' // caller mutates its buffer after append
	rec, _ := l.Read(lsn)
	if string(rec.Payload) != "mutate-me" {
		t.Fatalf("log stored aliased payload: %q", rec.Payload)
	}
}
