package sharedlog

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"impeller/internal/testutil"
)

// The batched append path must be a pure amortization: the same records
// pushed through AppendBatch and through single Append/ConditionalAppend
// calls must produce identical per-tag histories, identical guard
// outcomes, and the same multi-tag atomicity. The property test below
// drives a batched log and a single-append log with the same entry
// stream (including metadata mutations between chunks) and compares.

func TestAppendBatchValidation(t *testing.T) {
	l := Open(Config{})
	defer l.Close()
	if res, err := l.AppendBatch(nil); res != nil || err != nil {
		t.Fatalf("empty batch = %v, %v", res, err)
	}
	_, err := l.AppendBatch([]AppendEntry{{Tags: []Tag{"a"}}, {}})
	if err == nil {
		t.Fatal("entry without tags accepted")
	}
	l.Close()
	if _, err := l.AppendBatch([]AppendEntry{{Tags: []Tag{"a"}}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v", err)
	}
}

func TestAppendBatchContiguousLSNs(t *testing.T) {
	l := Open(Config{})
	defer l.Close()
	entries := make([]AppendEntry, 16)
	for i := range entries {
		entries[i] = AppendEntry{Tags: []Tag{Tag(fmt.Sprintf("t%d", i%4))}, Payload: []byte{byte(i)}}
	}
	res, err := l.AppendBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(entries) {
		t.Fatalf("got %d results for %d entries", len(res), len(entries))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("entry %d: %v", i, r.Err)
		}
		if r.LSN != res[0].LSN+LSN(i) {
			t.Fatalf("entry %d: LSN %d, want contiguous from %d", i, r.LSN, res[0].LSN)
		}
	}
}

func TestAppendBatchMultiTagAtomicity(t *testing.T) {
	l := Open(Config{})
	defer l.Close()
	tags := []Tag{"x", "y", "z"}
	res, err := l.AppendBatch([]AppendEntry{
		{Tags: tags, Payload: []byte("all")},
		{Tags: []Tag{"x"}, Payload: []byte("only-x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range tags {
		rec, err := l.ReadNext(tag, 0)
		if err != nil || rec == nil {
			t.Fatalf("ReadNext(%s) = %v, %v", tag, rec, err)
		}
		if rec.LSN != res[0].LSN {
			t.Fatalf("tag %s sees LSN %d, want the single shared LSN %d", tag, rec.LSN, res[0].LSN)
		}
	}
}

// batchPropertyLog drives one log: chunks are appended either via
// AppendBatch or entry-by-entry, returning per-entry commit outcomes.
type batchPropertyLog struct {
	l       *Log
	batched bool
}

func (p *batchPropertyLog) apply(chunk []AppendEntry) ([]error, error) {
	if p.batched {
		res, err := p.l.AppendBatch(chunk)
		if err != nil {
			return nil, err
		}
		errs := make([]error, len(res))
		for i, r := range res {
			errs[i] = r.Err
		}
		return errs, nil
	}
	errs := make([]error, len(chunk))
	for i, e := range chunk {
		var err error
		if e.Conditional {
			_, err = p.l.ConditionalAppend(e.Tags, e.Payload, e.CondKey, e.CondWant)
		} else {
			_, err = p.l.Append(e.Tags, e.Payload)
		}
		if err != nil && !errors.Is(err, ErrCondFailed) {
			return nil, err
		}
		errs[i] = err
	}
	return errs, nil
}

func TestAppendBatchEquivalentToSingles(t *testing.T) {
	modes := []struct {
		name string
		cfg  Config
	}{
		{"immediate", Config{}},
		{"sequencer", Config{OrderingInterval: 100 * time.Microsecond}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			batched := &batchPropertyLog{l: Open(mode.cfg), batched: true}
			single := &batchPropertyLog{l: Open(mode.cfg)}
			defer batched.l.Close()
			defer single.l.Close()

			tagPool := []Tag{"t0", "t1", "t2", "t3"}
			const fenceKey = "instance/counter"
			chunks := 40
			if testing.Short() {
				chunks = 12
			}
			var n int // payload counter; payloads double as record identity
			for c := 0; c < chunks; c++ {
				// Mutate the guard key identically on both logs between
				// chunks, so conditional entries face the same fence state.
				if rng.Intn(2) == 0 {
					v := rng.Uint64() % 3
					batched.l.Meta().Set(fenceKey, v)
					single.l.Meta().Set(fenceKey, v)
				}
				chunk := make([]AppendEntry, 1+rng.Intn(8))
				for i := range chunk {
					n++
					nTags := 1 + rng.Intn(3)
					perm := rng.Perm(len(tagPool))[:nTags]
					tags := make([]Tag, nTags)
					for j, p := range perm {
						tags[j] = tagPool[p]
					}
					chunk[i] = AppendEntry{
						Tags:    tags,
						Payload: []byte{byte(n), byte(n >> 8)},
					}
					if rng.Intn(3) == 0 {
						chunk[i].Conditional = true
						chunk[i].CondKey = fenceKey
						chunk[i].CondWant = rng.Uint64() % 3
					}
				}
				bErrs, err := batched.apply(chunk)
				if err != nil {
					t.Fatal(err)
				}
				sErrs, err := single.apply(chunk)
				if err != nil {
					t.Fatal(err)
				}
				for i := range chunk {
					if (bErrs[i] == nil) != (sErrs[i] == nil) {
						t.Fatalf("chunk %d entry %d: batched err %v, single err %v — guard outcomes diverged",
							c, i, bErrs[i], sErrs[i])
					}
					if bErrs[i] != nil && !errors.Is(bErrs[i], ErrCondFailed) {
						t.Fatalf("chunk %d entry %d: unexpected batched error %v", c, i, bErrs[i])
					}
				}
			}

			// Per-tag histories must be byte-identical, and on the batched
			// log a multi-tag record must surface the same LSN from every
			// tag it carries (atomic visibility).
			lsnByPayload := make(map[string]LSN)
			for _, tag := range tagPool {
				var bSeq, sSeq []string
				for cur := LSN(0); ; {
					rec, err := batched.l.ReadNext(tag, cur)
					if err != nil {
						t.Fatal(err)
					}
					if rec == nil {
						break
					}
					key := string(rec.Payload)
					bSeq = append(bSeq, key)
					if prev, ok := lsnByPayload[key]; ok && prev != rec.LSN {
						t.Fatalf("tag %s: record %x at LSN %d, earlier tag saw LSN %d — multi-tag append not atomic", tag, rec.Payload, rec.LSN, prev)
					}
					lsnByPayload[key] = rec.LSN
					cur = rec.LSN + 1
				}
				for cur := LSN(0); ; {
					rec, err := single.l.ReadNext(tag, cur)
					if err != nil {
						t.Fatal(err)
					}
					if rec == nil {
						break
					}
					sSeq = append(sSeq, string(rec.Payload))
					cur = rec.LSN + 1
				}
				if len(bSeq) != len(sSeq) {
					t.Fatalf("tag %s: batched history has %d records, single has %d", tag, len(bSeq), len(sSeq))
				}
				for i := range bSeq {
					if bSeq[i] != sSeq[i] {
						t.Fatalf("tag %s: histories diverge at %d: batched %x, single %x", tag, i, bSeq[i], sSeq[i])
					}
				}
			}
		})
	}
}

// TestAppendBatchConcurrentStress mixes AppendBatch and single Append
// calls from many writers over shared tags while readers follow each
// tag; run under -race this exercises the batch path's interaction with
// the lock-free read plane. Readers assert per-tag LSN monotonicity and
// per-writer order; the final check counts every record exactly once.
func TestAppendBatchConcurrentStress(t *testing.T) {
	l := Open(Config{})
	defer l.Close()
	tagPool := []Tag{"s0", "s1", "s2"}
	const writers = 6
	iters := 150
	if testing.Short() {
		iters = 40
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: one per tag, continuously re-scanning.
	for _, tag := range tagPool {
		wg.Add(1)
		go func(tag Tag) {
			defer wg.Done()
			lastSeq := make(map[byte]uint32)
			var cur LSN
			for {
				rec, err := l.ReadNext(tag, cur)
				if err != nil {
					t.Errorf("reader %s: %v", tag, err)
					return
				}
				if rec == nil {
					select {
					case <-stop:
						return
					default:
						continue
					}
				}
				if rec.LSN < cur {
					t.Errorf("reader %s: LSN went backwards (%d after cursor %d)", tag, rec.LSN, cur)
					return
				}
				w, seq := rec.Payload[0], uint32(rec.Payload[1])|uint32(rec.Payload[2])<<8
				if prev, ok := lastSeq[w]; ok && seq <= prev {
					t.Errorf("reader %s: writer %d seq %d after %d — submission order lost", tag, w, seq, prev)
					return
				}
				lastSeq[w] = seq
				cur = rec.LSN + 1
			}
		}(tag)
	}

	wantPerTag := make(map[Tag]int)
	var wantMu sync.Mutex
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			seq := uint32(0)
			localWant := make(map[Tag]int)
			for i := 0; i < iters; i++ {
				if rng.Intn(2) == 0 {
					entries := make([]AppendEntry, 1+rng.Intn(6))
					for j := range entries {
						seq++
						tag := tagPool[rng.Intn(len(tagPool))]
						entries[j] = AppendEntry{
							Tags:    []Tag{tag},
							Payload: []byte{byte(w), byte(seq), byte(seq >> 8)},
						}
						localWant[tag]++
					}
					if _, err := l.AppendBatch(entries); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
				} else {
					seq++
					tag := tagPool[rng.Intn(len(tagPool))]
					if _, err := l.Append([]Tag{tag}, []byte{byte(w), byte(seq), byte(seq >> 8)}); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
					localWant[tag]++
				}
			}
			wantMu.Lock()
			for tag, n := range localWant {
				wantPerTag[tag] += n
			}
			wantMu.Unlock()
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	for _, tag := range tagPool {
		if got := l.CountTag(tag); got != wantPerTag[tag] {
			t.Fatalf("tag %s: %d records committed, want %d", tag, got, wantPerTag[tag])
		}
	}
	st := l.Stats()
	if st.BatchAppends == 0 || st.MeanAppendBatch <= 1 {
		t.Fatalf("batch stats not accounted: %+v", st)
	}
}

// TestAppendBatchAllocsPerRecord gates the batched append hot path's
// allocation budget. The path block-allocates one Record vector, one
// tag block, and one payload block per batch, so per-record cost is
// copying — the per-batch slices (blocks, pending entries, results)
// amortize to ~0.4 allocations per record at batch size 64, with
// index/store growth amortized doubling on top. Budget: 4 per record —
// loose enough to absorb growth spikes, tight enough that reintroducing
// per-entry allocation (3+/record) fails the gate.
func TestAppendBatchAllocsPerRecord(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; gate runs in non-race builds")
	}
	l := Open(Config{})
	defer l.Close()
	const batch = 64
	payload := make([]byte, 64)
	entries := make([]AppendEntry, batch)
	for i := range entries {
		entries[i] = AppendEntry{Tags: []Tag{Tag(fmt.Sprintf("t%d", i%4))}, Payload: payload}
	}
	if _, err := l.AppendBatch(entries); err != nil { // warm segments + index
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := l.AppendBatch(entries); err != nil {
			t.Fatal(err)
		}
	})
	perRecord := allocs / batch
	t.Logf("AppendBatch: %.1f allocs/batch, %.2f allocs/record (budget 4)", allocs, perRecord)
	if perRecord > 4 {
		t.Errorf("AppendBatch allocates %.2f/record, budget 4 — hot path regressed", perRecord)
	}
}
