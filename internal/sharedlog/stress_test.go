package sharedlog

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"impeller/internal/sim"
)

// TestStressConcurrentLogOperations hammers every plane at once:
// parallel appenders (plain and conditional), multi-tag blocking
// readers, concurrent prefix trims, aux attachment, and fault-injected
// shard crashes. Run under -race this is the refactor's main safety
// net: the committed-read plane takes no global lock, so any unsound
// publication order shows up here as a race or a torn read.
func TestStressConcurrentLogOperations(t *testing.T) {
	f := sim.NewFaultInjector()
	l := Open(Config{NumShards: 4, Replication: 3, Faults: f})
	defer l.Close()
	l.Meta().Set("inst/stress", 1)

	const (
		appenders = 4
		perApp    = 400
		readers   = 4
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	appendersDone := make(chan struct{})

	// Appenders: each writes its own tag plus the shared "all" tag, a
	// conditional append every 8th record.
	var appendWG sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		appendWG.Add(1)
		go func(a int) {
			defer wg.Done()
			defer appendWG.Done()
			tag := Tag(fmt.Sprintf("app/%d", a))
			for i := 0; i < perApp; i++ {
				payload := []byte{byte(a), byte(i), byte(i >> 8)}
				var err error
				if i%8 == 0 {
					_, err = l.ConditionalAppend([]Tag{tag, "all"}, payload, "inst/stress", 1)
				} else {
					_, err = l.Append([]Tag{tag, "all"}, payload)
				}
				if err != nil {
					t.Errorf("appender %d: %v", a, err)
					return
				}
			}
		}(a)
	}
	go func() { appendWG.Wait(); close(appendersDone) }()

	// Blocking readers: each follows two appender tags through one
	// cursor, tolerating trims (skip to horizon) and shard crashes
	// (retry) — exactly what the task read loop does.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tags := []Tag{
				Tag(fmt.Sprintf("app/%d", r%appenders)),
				Tag(fmt.Sprintf("app/%d", (r+1)%appenders)),
			}
			var cursor LSN
			var prev LSN
			seen := 0
			for seen < perApp { // plenty before ctx timeout ends it
				rctx, rcancel := context.WithTimeout(ctx, 50*time.Millisecond)
				rec, err := l.ReadNextAnyBlocking(rctx, tags, cursor)
				rcancel()
				if ctx.Err() != nil {
					return
				}
				switch {
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					select {
					case <-appendersDone:
						return // drained
					default:
						continue
					}
				case errors.Is(err, ErrTrimmed):
					cursor = l.TrimHorizon()
					continue
				case errors.Is(err, ErrUnavailable):
					continue // crashed shard; retry
				case err != nil:
					t.Errorf("reader %d: %v", r, err)
					return
				case rec == nil:
					continue
				}
				if seen > 0 && rec.LSN <= prev {
					t.Errorf("reader %d: LSN went backwards: %d after %d", r, rec.LSN, prev)
					return
				}
				prev = rec.LSN
				cursor = rec.LSN + 1
				seen++
			}
		}(r)
	}

	// Trimmer: advances the horizon behind the tail, with one final trim
	// after the appenders drain so short runs still exercise it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		trim := func() bool {
			tail := l.Tail()
			if tail <= 64 {
				return true
			}
			if err := l.Trim(tail - 64); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("trim: %v", err)
				return false
			}
			return true
		}
		for {
			select {
			case <-appendersDone:
				trim()
				return
			case <-time.After(500 * time.Microsecond):
			}
			if !trim() {
				return
			}
		}
	}()

	// Aux setter: annotates recent records, tolerating trims.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-appendersDone:
				return
			case <-time.After(time.Millisecond):
			}
			tail := l.Tail()
			if tail == 0 {
				continue
			}
			err := l.SetAux(tail-1, []byte("aux"))
			if err != nil && !errors.Is(err, ErrTrimmed) && !errors.Is(err, ErrClosed) {
				// The LSN came from Tail, so "unassigned" is impossible.
				t.Errorf("SetAux: %v", err)
				return
			}
		}
	}()

	// Chaos: crash and recover one shard at a time. Replication is 3 of
	// 4, so a single crash never makes records unavailable — readers
	// should keep flowing (ErrUnavailable tolerated above anyway).
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-appendersDone:
				return
			case <-time.After(3 * time.Millisecond):
			}
			name := fmt.Sprintf("shard/%d", i%4)
			f.Crash(name)
			time.Sleep(time.Millisecond)
			f.Recover(name)
			i++
		}
	}()

	wg.Wait()
	if ctx.Err() != nil {
		t.Fatal("stress test timed out")
	}

	// The total order stayed dense: every append got a unique LSN.
	if got, want := l.Tail(), LSN(appenders*perApp); got != want {
		t.Fatalf("Tail = %d, want %d", got, want)
	}
	s := l.Stats()
	if s.Appends != uint64(appenders*perApp) {
		t.Fatalf("Stats.Appends = %d, want %d", s.Appends, appenders*perApp)
	}
	if s.Trims == 0 {
		t.Fatal("trimmer never advanced the horizon")
	}
}

// TestPropertyTagIndexMatchesFullScan asserts the sharded tag index is
// read-equivalent to the naive implementation: scanning every committed
// LSN and filtering by tag membership (DESIGN.md §5's property list).
func TestPropertyTagIndexMatchesFullScan(t *testing.T) {
	check := func(choices []uint16, trimAt uint8) bool {
		l := Open(Config{})
		defer l.Close()
		tagsOf := func(c uint16) []Tag {
			// 1–3 distinct tags per record drawn from a pool of 6.
			n := int(c%3) + 1
			seen := map[Tag]bool{}
			out := make([]Tag, 0, n)
			for i := 0; i < n; i++ {
				tag := Tag(fmt.Sprintf("t%d", (int(c)>>uint(2*i))%6))
				if !seen[tag] {
					seen[tag] = true
					out = append(out, tag)
				}
			}
			return out
		}
		for i, c := range choices {
			if _, err := l.Append(tagsOf(c), []byte{byte(i)}); err != nil {
				return false
			}
		}
		horizon := LSN(0)
		if len(choices) > 0 {
			horizon = LSN(int(trimAt) % (len(choices) + 1))
			if err := l.Trim(horizon); err != nil {
				return false
			}
		}
		// Naive plane: full scan of live LSNs, filter by tag membership.
		naive := make(map[Tag][]LSN)
		for lsn := horizon; lsn < l.Tail(); lsn++ {
			rec, err := l.Read(lsn)
			if err != nil || rec == nil {
				return false
			}
			for _, tag := range rec.Tags {
				naive[tag] = append(naive[tag], lsn)
			}
		}
		// Index plane: ReadNext iteration per tag, plus CountTag.
		for d := 0; d < 6; d++ {
			tag := Tag(fmt.Sprintf("t%d", d))
			var got []LSN
			from := LSN(0)
			for {
				rec, err := l.ReadNext(tag, from)
				if errors.Is(err, ErrTrimmed) {
					from = l.TrimHorizon()
					continue
				}
				if err != nil {
					return false
				}
				if rec == nil {
					break
				}
				got = append(got, rec.LSN)
				from = rec.LSN + 1
			}
			want := naive[tag]
			if len(got) != len(want) || l.CountTag(tag) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestWakeupsOnlyForCarriedTags pins the thundering-herd fix: commits
// wake only readers registered on a tag the record carries, and every
// wakeup is useful. Under the old global broadcast, the reader blocked
// on "quiet" would have been woken by every "busy" commit.
func TestWakeupsOnlyForCarriedTags(t *testing.T) {
	l := openTest(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	got := make(chan *Record, 1)
	go func() {
		rec, err := l.ReadNextBlocking(ctx, "quiet", 0)
		if err != nil {
			t.Errorf("blocking read: %v", err)
		}
		got <- rec
	}()
	// Let the reader park.
	waitUntil(t, func() bool { return l.Stats().ReadNext == 1 })
	time.Sleep(10 * time.Millisecond)

	// Unrelated traffic: must wake nobody.
	for i := 0; i < 50; i++ {
		mustAppend(t, l, "noise", "busy")
	}
	time.Sleep(10 * time.Millisecond)
	if s := l.Stats(); s.ReaderWakeups != 0 {
		t.Fatalf("unrelated commits woke %d readers, want 0", s.ReaderWakeups)
	}

	// The carried tag wakes exactly the registered reader, usefully.
	mustAppend(t, l, "signal", "quiet")
	select {
	case rec := <-got:
		if rec == nil || string(rec.Payload) != "signal" {
			t.Fatalf("reader got %v", rec)
		}
	case <-ctx.Done():
		t.Fatal("reader never woke")
	}
	s := l.Stats()
	if s.ReaderWakeups != 1 {
		t.Fatalf("ReaderWakeups = %d, want 1", s.ReaderWakeups)
	}
	if s.UsefulWakeups != 1 {
		t.Fatalf("UsefulWakeups = %d, want 1 (ratio must be ~1)", s.UsefulWakeups)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestStatsCountersByKind sanity-checks the observability satellite:
// appends, reads by kind, cache traffic, and sequencer cut accounting.
func TestStatsCountersByKind(t *testing.T) {
	l := Open(Config{CacheSize: 8})
	defer l.Close()
	lsn := mustAppend(t, l, "a0", "a")
	mustAppend(t, l, "a1", "a")

	if _, err := l.ReadNext("a", 0); err != nil { // miss, fills cache
		t.Fatal(err)
	}
	if _, err := l.ReadNext("a", 0); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := l.ReadNextAny([]Tag{"a", "b"}, 0); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := l.Read(lsn); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadPrev("a", MaxLSN); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ConditionalAppend([]Tag{"a"}, nil, "missing", 1); err != ErrCondFailed {
		t.Fatalf("err = %v, want ErrCondFailed", err)
	}

	s := l.Stats()
	if s.Appends != 2 || s.CondFailed != 1 {
		t.Fatalf("Appends/CondFailed = %d/%d, want 2/1", s.Appends, s.CondFailed)
	}
	if s.ReadNext != 2 || s.ReadNextAny != 1 || s.ReadExact != 1 || s.ReadPrev != 1 {
		t.Fatalf("reads by kind = next %d any %d exact %d prev %d",
			s.ReadNext, s.ReadNextAny, s.ReadExact, s.ReadPrev)
	}
	// ReadPrev serves through the cache like the forward reads, so its
	// read of the (uncached) substream tail counts as the second miss.
	if s.CacheHits != 2 || s.CacheMisses != 2 {
		t.Fatalf("cache = %d hits / %d misses, want 2/2", s.CacheHits, s.CacheMisses)
	}
	if s.Tail != 2 || s.TrimHorizon != 0 {
		t.Fatalf("Tail/TrimHorizon = %d/%d", s.Tail, s.TrimHorizon)
	}
}

// TestStatsSequencerCuts checks cut count and mean batch size in
// Scalog-style ordering mode.
func TestStatsSequencerCuts(t *testing.T) {
	l := Open(Config{OrderingInterval: 2 * time.Millisecond})
	defer l.Close()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.Append([]Tag{"t"}, []byte{byte(i)}); err != nil {
				t.Errorf("append: %v", err)
			}
		}(i)
	}
	wg.Wait()
	s := l.Stats()
	if s.SequencerCuts == 0 {
		t.Fatal("no sequencer cuts recorded")
	}
	if s.MeanCutBatch <= 0 {
		t.Fatalf("MeanCutBatch = %v, want > 0", s.MeanCutBatch)
	}
	if got := uint64(s.MeanCutBatch*float64(s.SequencerCuts) + 0.5); got != 10 {
		t.Fatalf("cuts×mean = %d appends, want 10", got)
	}
}

// TestStressCursorsVsAppendBatchAndTrim races streaming cursors against
// group-commit appenders and a concurrent trimmer. Each cursor asserts
// the stream stays strictly LSN-monotonic and every record carries a
// watched tag; on ErrCursorInvalidated it re-seeks to the horizon like
// a recovering task would. Run under -race this guards the cursor's
// lock-free fetch path (index nextN + store resolve) against unsound
// publication orders.
func TestStressCursorsVsAppendBatchAndTrim(t *testing.T) {
	l := Open(Config{})
	defer l.Close()

	const (
		appenders = 3
		perApp    = 200 // AppendBatch calls per appender
		batchSize = 8
		readers   = 4
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	appendersDone := make(chan struct{})

	var appendWG sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		appendWG.Add(1)
		go func(a int) {
			defer wg.Done()
			defer appendWG.Done()
			entries := make([]AppendEntry, batchSize)
			for i := 0; i < perApp; i++ {
				for j := range entries {
					tag := Tag(fmt.Sprintf("cur/%d", (i+j)%4))
					entries[j] = AppendEntry{Tags: []Tag{tag, "cur/all"}, Payload: []byte{byte(a), byte(i), byte(j)}}
				}
				if _, err := l.AppendBatch(entries); err != nil {
					t.Errorf("appender %d: %v", a, err)
					return
				}
			}
		}(a)
	}
	go func() {
		appendWG.Wait()
		close(appendersDone)
	}()

	// Trimmer: periodically advances the horizon to half the tail.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-appendersDone:
				return
			case <-time.After(time.Millisecond):
				if err := l.Trim(l.Tail() / 2); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("trim: %v", err)
					return
				}
			}
		}
	}()

	// Readers run until shortly after the appenders stop; a trim can
	// skip records under them, so termination is by cancellation, not by
	// a consumed-record count.
	readerCtx, readerCancel := context.WithCancel(ctx)
	defer readerCancel()
	go func() {
		<-appendersDone
		time.Sleep(20 * time.Millisecond)
		readerCancel()
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			watch := []Tag{"cur/all"}
			if r%2 == 1 {
				watch = []Tag{Tag(fmt.Sprintf("cur/%d", r%4)), Tag(fmt.Sprintf("cur/%d", (r+1)%4))}
			}
			cur := l.OpenCursorOpts(watch, 0, CursorOptions{Prefetch: 64})
			last := LSN(0)
			seen := 0
			for {
				recs, err := cur.NextBatchBlocking(readerCtx, 16)
				switch {
				case errors.Is(err, ErrCursorInvalidated):
					h := l.TrimHorizon()
					if h < last {
						t.Errorf("reader %d: invalidated but horizon %d behind last seen %d", r, h, last)
						return
					}
					cur.Seek(h)
					continue
				case errors.Is(err, context.Canceled) || errors.Is(err, ErrClosed):
					if seen == 0 {
						t.Errorf("reader %d consumed nothing", r)
					}
					return
				case err != nil:
					t.Errorf("reader %d: %v", r, err)
					return
				}
				for _, rec := range recs {
					if seen > 0 && rec.LSN <= last {
						t.Errorf("reader %d: LSN %d not ahead of %d", r, rec.LSN, last)
						return
					}
					carried := false
					for _, rt := range rec.Tags {
						for _, wt := range watch {
							if rt == wt {
								carried = true
							}
						}
					}
					if !carried {
						t.Errorf("reader %d: record %d tags %v carry none of %v", r, rec.LSN, rec.Tags, watch)
						return
					}
					last = rec.LSN
					seen++
				}
			}
		}(r)
	}

	wg.Wait()
	if ctx.Err() != nil {
		t.Fatalf("stress timed out: %v", ctx.Err())
	}
}
