package sharedlog

import (
	"bytes"
	"testing"
)

// FuzzDecodeCutPayload asserts the cut-frame codec is total: arbitrary
// bytes either decode into records or return an error — never panic,
// never over-read — and every successful decode re-encodes to the exact
// input (the codec has one canonical form, so recovery's replay is
// byte-faithful).
func FuzzDecodeCutPayload(f *testing.F) {
	f.Add(encodeCutPayload(nil, []*Record{
		{LSN: 0, Tags: []Tag{"a", "bb"}, Payload: []byte("first")},
		{LSN: 1, Tags: []Tag{"a"}, Payload: nil},
	}))
	f.Add(encodeCutPayload(nil, []*Record{{LSN: 41, Tags: nil, Payload: bytes.Repeat([]byte{7}, 300)}}))
	seed := encodeCutPayload(nil, []*Record{{LSN: 9, Tags: []Tag{"t"}, Payload: []byte("x")}})
	f.Add(seed[:len(seed)-1]) // truncated
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 24)) // huge bogus counts

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := decodeCutPayload(data)
		if err != nil {
			return
		}
		if len(recs) == 0 {
			t.Fatal("decode accepted an empty cut")
		}
		for i, rec := range recs {
			if rec.LSN != recs[0].LSN+LSN(i) {
				t.Fatalf("LSNs not contiguous at %d", i)
			}
		}
		if !bytes.Equal(encodeCutPayload(nil, recs), data) {
			t.Fatal("decoded cut does not re-encode to its input")
		}
	})
}
