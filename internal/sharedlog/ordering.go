package sharedlog

// The ordering plane, split Scalog-style into two layers:
//
//   - The per-shard local-ordering layer (seqShard). In sequencer mode
//     every append is routed round-robin to one of OrderingShards local
//     sequencers. Each shard owns its pending list behind its own short
//     lock and models its local persist bandwidth by charging
//     ShardAppendLatency serially per shard — so appends on different
//     shards never contend on a lock or on simulated storage.
//
//   - The cut/publish layer (cutLoop). Every OrderingInterval the cut
//     aggregator steals each shard's pending batches and, under l.mu,
//     assigns each shard a contiguous range of global LSNs, re-validates
//     conditional-append guards against the metadata KV at that moment,
//     writes the records to the committed store, and indexes the whole
//     cut with one vectorized pass. LSN assignment is the global total
//     order, so it is a serial decision by construction — the committed
//     tail advances in total order by cut, and the lock-free read plane
//     (store.go, index.go, read.go) only ever observes fully published
//     state.
//
// Immediate mode (OrderingInterval == 0) bypasses the shard layer
// entirely: each append is ordered and published under one acquisition
// of l.mu, exactly as before the split.

import (
	"sync"
	"sync/atomic"
)

// seqShard is one local sequencer: the per-shard half of the ordering
// plane. Appends enqueue here without touching the global ordering
// mutex; the cut aggregator steals the pending list at each cut. The
// shard is a named fault-injection target ("sequencer/<i>") so chaos
// schedules can crash or slow an individual local sequencer mid-cut.
type seqShard struct {
	name string

	// mu guards pending only. It is held for O(1) per enqueue and one
	// pointer swap per cut, so it never becomes the contention point the
	// single ordering mutex used to be.
	mu      sync.Mutex
	pending []*pendingBatch

	// persistMu serializes the local persist simulation: a shard's
	// storage writes one group at a time, which is what makes aggregate
	// append throughput scale with the number of ordering shards.
	persistMu sync.Mutex

	// spare is the recycled backing array for pending, owned by the cut
	// loop between cuts.
	spare []*pendingBatch

	// cuts / records count the cuts this shard contributed >= 1 entry to
	// and the entries it pushed through them (Stats reports per-shard
	// cut counters and skew from these).
	cuts    atomic.Uint64
	records atomic.Uint64
}

// pendingBatch is a group of appends waiting on one shard for the next
// sequencer cut. A single Append is a batch of one (drawn from
// batchPool so the warm append path stays allocation-flat); AppendBatch
// enqueues many entries behind one response so the whole group is
// ordered contiguously within the cut.
//
// Ownership protocol: the submitter owns the batch until it is enqueued
// on a shard; stealing the shard's pending list (cut loop or Close,
// mutually exclusive under shard.mu) transfers ownership to exactly one
// stealer, which fills results and then performs the single send on
// resp; receiving on resp returns ownership to the submitter. resp is
// never closed, so pooled batches can be recycled safely.
type pendingBatch struct {
	entries []pendingEntry
	results []appendResult // one per entry, index-aligned; valid when resp delivers nil
	resp    chan error     // capacity 1: nil = ordered, ErrClosed = log shut down
}

// batchPool recycles single-entry batches for the ordering-mode Append
// hot path, eliminating the per-call response-channel and result-slice
// allocations.
var batchPool = sync.Pool{
	New: func() any {
		return &pendingBatch{
			entries: make([]pendingEntry, 1),
			results: make([]appendResult, 1),
			resp:    make(chan error, 1),
		}
	},
}

// pendingEntry is one record of a pending batch, with its
// conditional-append guard re-validated at ordering time.
type pendingEntry struct {
	rec         *Record
	conditional bool
	condKey     string
	condWant    uint64
}

type appendResult struct {
	lsn LSN
	err error
}

// Append appends payload with tags and returns the assigned LSN. The
// append is atomic with respect to every tag: the single record appears
// in each tag's substream at the same global position. tags must be
// non-empty.
func (l *Log) Append(tags []Tag, payload []byte) (LSN, error) {
	return l.append(tags, payload, "", 0, false)
}

// ConditionalAppend appends only if the metadata key still holds want.
// Impeller fences zombie tasks by guarding progress-marker appends on
// the task's instance number (paper §3.4). Returns ErrCondFailed if the
// guard no longer holds.
func (l *Log) ConditionalAppend(tags []Tag, payload []byte, key string, want uint64) (LSN, error) {
	return l.append(tags, payload, key, want, true)
}

func (l *Log) append(tags []Tag, payload []byte, condKey string, condWant uint64, conditional bool) (LSN, error) {
	if len(tags) == 0 {
		return 0, errAppendNeedsTag
	}
	if err := l.cfg.Faults.Check("client", "sequencer"); err != nil {
		return 0, err
	}
	if d := l.cfg.Faults.DelayOf("sequencer"); d > 0 {
		l.cfg.Clock.Sleep(d) // injected latency spike at the sequencer
	}
	if m := l.cfg.AppendLatency; m != nil {
		l.cfg.Clock.Sleep(m.Sample())
	}
	// The record owns copies of its inputs; once committed it is shared
	// with every reader and never mutated again.
	rec := &Record{
		Tags:    append([]Tag(nil), tags...),
		Payload: append([]byte(nil), payload...),
	}

	if !l.ordering {
		l.mu.Lock()
		if l.closed.Load() {
			l.mu.Unlock()
			return 0, ErrClosed
		}
		// The guard check and the ordering decision are atomic under
		// l.mu: together with FenceIncrement, two markers can never
		// both commit for the same (task, instance).
		if conditional && !l.condHoldsLocked(condKey, condWant) {
			l.mu.Unlock()
			l.stats.condFailed.Add(1)
			return 0, ErrCondFailed
		}
		lsn := l.commitLocked(rec)
		if l.dur != nil {
			// Durability: the cut-of-one is framed and synced before the
			// append returns (ack-after-durable). Still under l.mu, the
			// serial-persist path, so frames land in LSN order.
			one := [1]*Record{rec}
			l.dur.writeCut(one[:])
		}
		l.mu.Unlock()
		return lsn, nil
	}
	// Ordering mode: route to a local sequencer shard. The guard is
	// validated at the sequencer cut — the moment the LSN is assigned —
	// not at enqueue time, so a fence between enqueue and cut still
	// excludes the append.
	s := l.routeShard()
	if err := l.cfg.Faults.Check("client", s.name); err != nil {
		return 0, err // crashed local sequencer; retryable, a retry re-routes
	}
	l.chargeShardPersist(s)
	b := batchPool.Get().(*pendingBatch)
	b.entries[0] = pendingEntry{
		rec:         rec,
		conditional: conditional,
		condKey:     condKey,
		condWant:    condWant,
	}
	if err := s.enqueue(l, b); err != nil {
		b.entries[0] = pendingEntry{}
		batchPool.Put(b)
		return 0, err
	}
	if err := <-b.resp; err != nil {
		b.entries[0] = pendingEntry{}
		batchPool.Put(b)
		return 0, err
	}
	res := b.results[0]
	b.entries[0] = pendingEntry{} // drop the record reference before pooling
	batchPool.Put(b)
	return res.lsn, res.err
}

// routeShard picks the ordering shard for the next append. Round-robin
// keeps the shards load-balanced without any coordination beyond one
// atomic increment.
func (l *Log) routeShard() *seqShard {
	if len(l.seqShards) == 1 {
		return l.seqShards[0]
	}
	return l.seqShards[l.rr.Add(1)%uint64(len(l.seqShards))]
}

// chargeShardPersist models the local persist at an ordering shard: one
// group at a time per shard (serialized under persistMu), concurrent
// across shards. This — not the enqueue lock — is the per-shard
// resource that bounds a single shard's append bandwidth.
func (l *Log) chargeShardPersist(s *seqShard) {
	m := l.cfg.ShardAppendLatency
	if m == nil {
		return
	}
	d := m.Sample()
	if d <= 0 {
		return
	}
	s.persistMu.Lock()
	l.cfg.Clock.Sleep(d)
	s.persistMu.Unlock()
}

// enqueue adds b to the shard's pending list, failing fast with
// ErrClosed once the log is shut down. The closed check happens under
// shard.mu: Close marks the log closed before stealing each shard's
// pending list, so a batch either lands in a steal (and is failed by
// Close) or observes closed here — it can never be stranded.
func (s *seqShard) enqueue(l *Log, b *pendingBatch) error {
	s.mu.Lock()
	if l.closed.Load() {
		s.mu.Unlock()
		return ErrClosed
	}
	s.pending = append(s.pending, b)
	s.mu.Unlock()
	return nil
}

// steal takes the shard's entire pending list, leaving the recycled
// spare array in its place. Called by the cut loop each cut and by
// Close at shutdown; shard.mu makes the two exclusive, so every batch
// has exactly one stealer (and therefore exactly one resp send).
func (s *seqShard) steal() []*pendingBatch {
	s.mu.Lock()
	stolen := s.pending
	s.pending = s.spare
	s.spare = nil
	s.mu.Unlock()
	return stolen
}

// recycle hands a drained steal result back to the shard as the next
// pending backing array. Taken under shard.mu because steal (cut loop
// or Close) reads spare under the same lock.
func (s *seqShard) recycle(arr []*pendingBatch) {
	s.mu.Lock()
	if s.spare == nil {
		s.spare = arr[:0]
	}
	s.mu.Unlock()
}

// condHoldsLocked reports whether the metadata guard still holds.
func (l *Log) condHoldsLocked(key string, want uint64) bool {
	got, ok := l.meta.Get(key)
	return ok && got == want
}

// commitLocked assigns the next LSN, publishes the record to the
// committed store, indexes it by tag, and wakes readers blocked on the
// carried tags — only those. Caller holds l.mu.
//
// Publication order matters for the lock-free read plane: the record
// slot is written and the committed tail advanced (store.put) before
// the tag index learns the LSN, so any reader that finds the LSN
// through the index is guaranteed to see the record behind it.
func (l *Log) commitLocked(rec *Record) LSN {
	lsn := l.store.nextLSN()
	rec.LSN = lsn
	l.store.put(rec)
	woken := l.index.add(rec.Tags, lsn)
	l.stats.appends.Add(1)
	if woken > 0 {
		l.stats.wakeups.Add(uint64(woken))
	}
	return lsn
}

// orderLocked runs the ordering decision for a group of entries:
// validates each conditional guard, assigns contiguous LSNs, and
// publishes the records to the committed store. Index insertion is left
// to the caller (publishLocked) so a whole group — or a whole sequencer
// cut spanning many groups — gets one vectorized index pass. Committed
// records are appended to recs and returned; results is filled
// index-aligned with entries. Caller holds l.mu.
func (l *Log) orderLocked(entries []pendingEntry, results []appendResult, recs []*Record) []*Record {
	for i := range entries {
		e := &entries[i]
		if e.conditional && !l.condHoldsLocked(e.condKey, e.condWant) {
			results[i] = appendResult{err: ErrCondFailed}
			l.stats.condFailed.Add(1)
			continue
		}
		lsn := l.store.nextLSN()
		e.rec.LSN = lsn
		l.store.put(e.rec)
		results[i] = appendResult{lsn: lsn}
		recs = append(recs, e.rec)
	}
	return recs
}

// publishLocked indexes an ordered group of committed records with one
// vectorized pass and wakes the readers their tags unblock. Records are
// already in the store (orderLocked), so any reader that finds an LSN
// through the index sees the record behind it. Caller holds l.mu —
// index insertion must stay serialized in LSN order so per-tag LSN
// lists remain sorted.
func (l *Log) publishLocked(recs []*Record) {
	if len(recs) == 0 {
		return
	}
	woken := l.index.addRecords(recs)
	l.stats.appends.Add(uint64(len(recs)))
	if woken > 0 {
		l.stats.wakeups.Add(uint64(woken))
	}
}

// cutLoop is the cut/publish layer: Scalog-style global ordering over
// the local sequencer shards. Every OrderingInterval it collects each
// live shard's pending batches and assigns the whole cut global LSNs
// under one acquisition of l.mu — shard by shard, so each shard's
// committed records occupy a contiguous LSN range within the cut — then
// indexes everything with one vectorized pass.
//
// Fault semantics per shard:
//   - a crashed shard ("sequencer/<i>") is excluded from the cut; its
//     pending appends stay queued until it recovers and a later cut
//     picks them up (new appends to it fail fast with ErrCrashed);
//   - a delayed shard stalls the cut by its injected delay before its
//     list is stolen — the global cut advances at the pace of the
//     slowest live shard, which is exactly the coupling the Scalog
//     design accepts in exchange for contention-free appends.
func (l *Log) cutLoop() {
	stolen := make([][]*pendingBatch, len(l.seqShards))
	var recs []*Record
	for {
		select {
		case <-l.done:
			return
		case <-l.cfg.Clock.After(l.cfg.OrderingInterval):
		}
		// Local layer: collect per-shard pending lists.
		for i, s := range l.seqShards {
			stolen[i] = nil
			if l.cfg.Faults.Crashed(s.name) {
				continue // excluded from this cut; pending waits for recovery
			}
			if d := l.cfg.Faults.DelayOf(s.name); d > 0 {
				l.cfg.Clock.Sleep(d) // slow local sequencer stalls the cut
			}
			stolen[i] = s.steal()
		}
		// Global layer: one ordering decision for the whole cut.
		total := 0
		recs = recs[:0]
		l.mu.Lock()
		for i, s := range l.seqShards {
			shardEntries := 0
			for _, b := range stolen[i] {
				if cap(b.results) < len(b.entries) {
					b.results = make([]appendResult, len(b.entries))
				} else {
					b.results = b.results[:len(b.entries)]
				}
				recs = l.orderLocked(b.entries, b.results, recs)
				shardEntries += len(b.entries)
			}
			if shardEntries > 0 {
				s.cuts.Add(1)
				s.records.Add(uint64(shardEntries))
				total += shardEntries
			}
		}
		l.publishLocked(recs)
		l.mu.Unlock()
		// Durability: frame and sync the whole cut before any append
		// response is delivered (ack-after-durable). Off the global mutex —
		// the cut loop is the only committer in sequencer mode, so frames
		// still land in LSN order — and one flush covers the entire cut,
		// which is the group-commit amortization the durability plane
		// inherits from the ordering plane.
		if l.dur != nil {
			l.dur.writeCut(recs)
		}
		if total > 0 {
			l.stats.cuts.Add(1)
			l.stats.cutBatch.Add(uint64(total))
		}
		// Deliver results and recycle the stolen arrays as next cut's
		// spares. The send transfers batch ownership back to the
		// submitter; nothing may touch b afterwards.
		for i, s := range l.seqShards {
			if stolen[i] == nil {
				continue
			}
			for j, b := range stolen[i] {
				b.resp <- nil
				stolen[i][j] = nil // drop the reference before recycling
			}
			s.recycle(stolen[i])
		}
		for i := range recs {
			recs[i] = nil // don't pin records past their cut
		}
	}
}
