package sharedlog

// The ordering plane: the single writer into the committed store. LSN
// assignment is the global total order, so it is a serial decision by
// construction — everything here runs under l.mu. The committed-read
// plane (store.go, index.go, read.go) only ever observes fully
// published state.

// pendingBatch is a group of appends waiting for the next sequencer
// cut. A single Append is a batch of one; AppendBatch enqueues many
// entries behind one response channel so the whole group is ordered
// contiguously within the cut.
type pendingBatch struct {
	entries []pendingEntry
	resp    chan []appendResult // one result per entry, index-aligned
}

// pendingEntry is one record of a pending batch, with its
// conditional-append guard re-validated at ordering time.
type pendingEntry struct {
	rec         *Record
	conditional bool
	condKey     string
	condWant    uint64
}

type appendResult struct {
	lsn LSN
	err error
}

// Append appends payload with tags and returns the assigned LSN. The
// append is atomic with respect to every tag: the single record appears
// in each tag's substream at the same global position. tags must be
// non-empty.
func (l *Log) Append(tags []Tag, payload []byte) (LSN, error) {
	return l.append(tags, payload, "", 0, false)
}

// ConditionalAppend appends only if the metadata key still holds want.
// Impeller fences zombie tasks by guarding progress-marker appends on
// the task's instance number (paper §3.4). Returns ErrCondFailed if the
// guard no longer holds.
func (l *Log) ConditionalAppend(tags []Tag, payload []byte, key string, want uint64) (LSN, error) {
	return l.append(tags, payload, key, want, true)
}

func (l *Log) append(tags []Tag, payload []byte, condKey string, condWant uint64, conditional bool) (LSN, error) {
	if len(tags) == 0 {
		return 0, errAppendNeedsTag
	}
	if err := l.cfg.Faults.Check("client", "sequencer"); err != nil {
		return 0, err
	}
	if d := l.cfg.Faults.DelayOf("sequencer"); d > 0 {
		l.cfg.Clock.Sleep(d) // injected latency spike at the sequencer
	}
	if m := l.cfg.AppendLatency; m != nil {
		l.cfg.Clock.Sleep(m.Sample())
	}
	// The record owns copies of its inputs; once committed it is shared
	// with every reader and never mutated again.
	rec := &Record{
		Tags:    append([]Tag(nil), tags...),
		Payload: append([]byte(nil), payload...),
	}

	l.mu.Lock()
	if l.closed.Load() {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if !l.ordering {
		// The guard check and the ordering decision are atomic under
		// l.mu: together with FenceIncrement, two markers can never
		// both commit for the same (task, instance).
		if conditional && !l.condHoldsLocked(condKey, condWant) {
			l.mu.Unlock()
			l.stats.condFailed.Add(1)
			return 0, ErrCondFailed
		}
		lsn := l.commitLocked(rec)
		l.mu.Unlock()
		return lsn, nil
	}
	// Ordering mode: the guard is validated at the sequencer cut — the
	// moment the LSN is assigned — not at enqueue time, so a fence
	// between enqueue and cut still excludes the append.
	resp := make(chan []appendResult, 1)
	l.pending = append(l.pending, pendingBatch{
		entries: []pendingEntry{{
			rec:         rec,
			conditional: conditional,
			condKey:     condKey,
			condWant:    condWant,
		}},
		resp: resp,
	})
	l.mu.Unlock()

	res, ok := <-resp
	if !ok {
		return 0, ErrClosed
	}
	return res[0].lsn, res[0].err
}

// condHoldsLocked reports whether the metadata guard still holds.
func (l *Log) condHoldsLocked(key string, want uint64) bool {
	got, ok := l.meta.Get(key)
	return ok && got == want
}

// commitLocked assigns the next LSN, publishes the record to the
// committed store, indexes it by tag, and wakes readers blocked on the
// carried tags — only those. Caller holds l.mu.
//
// Publication order matters for the lock-free read plane: the record
// slot is written and the committed tail advanced (store.put) before
// the tag index learns the LSN, so any reader that finds the LSN
// through the index is guaranteed to see the record behind it.
func (l *Log) commitLocked(rec *Record) LSN {
	lsn := l.store.nextLSN()
	rec.LSN = lsn
	l.store.put(rec)
	woken := l.index.add(rec.Tags, lsn)
	l.stats.appends.Add(1)
	if woken > 0 {
		l.stats.wakeups.Add(uint64(woken))
	}
	return lsn
}

// orderLocked runs the ordering decision for a group of entries:
// validates each conditional guard, assigns contiguous LSNs, and
// publishes the records to the committed store. Index insertion is left
// to the caller (publishLocked) so a whole group — or a whole sequencer
// cut spanning many groups — gets one vectorized index pass. Committed
// records are appended to recs and returned; results is filled
// index-aligned with entries. Caller holds l.mu.
func (l *Log) orderLocked(entries []pendingEntry, results []appendResult, recs []*Record) []*Record {
	for i := range entries {
		e := &entries[i]
		if e.conditional && !l.condHoldsLocked(e.condKey, e.condWant) {
			results[i] = appendResult{err: ErrCondFailed}
			l.stats.condFailed.Add(1)
			continue
		}
		lsn := l.store.nextLSN()
		e.rec.LSN = lsn
		l.store.put(e.rec)
		results[i] = appendResult{lsn: lsn}
		recs = append(recs, e.rec)
	}
	return recs
}

// publishLocked indexes an ordered group of committed records with one
// vectorized pass and wakes the readers their tags unblock. Records are
// already in the store (orderLocked), so any reader that finds an LSN
// through the index sees the record behind it. Caller holds l.mu —
// index insertion must stay serialized in LSN order so per-tag LSN
// lists remain sorted.
func (l *Log) publishLocked(recs []*Record) {
	if len(recs) == 0 {
		return
	}
	woken := l.index.addRecords(recs)
	l.stats.appends.Add(uint64(len(recs)))
	if woken > 0 {
		l.stats.wakeups.Add(uint64(woken))
	}
}

// sequencerLoop implements Scalog-style ordering: locally persisted
// appends wait for the next cut, at which point the sequencer assigns a
// contiguous range of global LSNs to everything pending. All batches in
// the cut share one vectorized index pass.
func (l *Log) sequencerLoop() {
	for {
		select {
		case <-l.done:
			return
		case <-l.cfg.Clock.After(l.cfg.OrderingInterval):
		}
		l.mu.Lock()
		batches := l.pending
		l.pending = nil
		total := 0
		var recs []*Record
		results := make([][]appendResult, len(batches))
		for bi := range batches {
			b := &batches[bi]
			results[bi] = make([]appendResult, len(b.entries))
			recs = l.orderLocked(b.entries, results[bi], recs)
			total += len(b.entries)
		}
		l.publishLocked(recs)
		l.mu.Unlock()
		if total > 0 {
			l.stats.cuts.Add(1)
			l.stats.cutBatch.Add(uint64(total))
		}
		for bi := range batches {
			batches[bi].resp <- results[bi]
		}
	}
}
