package sharedlog

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"impeller/internal/sim"
	"impeller/internal/testutil"
)

// TestCursorEquivalentToSingles is the cursor's semantic anchor: over
// random appends (random tag subsets), random trim points, random
// watched tag sets, and random batch/prefetch sizes, draining a cursor
// yields the byte-identical record sequence a ReadNextAny loop yields.
// The one deliberate divergence — a cursor whose position a trim passed
// invalidates instead of silently skipping the hole — is asserted too.
func TestCursorEquivalentToSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pool := []Tag{"a", "b", "c", "d", "e", "f"}
	for trial := 0; trial < 25; trial++ {
		l := Open(Config{})
		n := 50 + rng.Intn(400)
		for i := 0; i < n; i++ {
			var tags []Tag
			for _, tg := range pool {
				if rng.Intn(3) == 0 {
					tags = append(tags, tg)
				}
			}
			if len(tags) == 0 {
				tags = append(tags, pool[rng.Intn(len(pool))])
			}
			if _, err := l.Append(tags, []byte(fmt.Sprintf("p%d-%d", trial, i))); err != nil {
				t.Fatal(err)
			}
		}
		horizon := LSN(0)
		if rng.Intn(2) == 0 {
			horizon = LSN(rng.Intn(n))
			if err := l.Trim(horizon); err != nil {
				t.Fatal(err)
			}
		}
		for q := 0; q < 8; q++ {
			k := 1 + rng.Intn(3)
			watch := make([]Tag, 0, k)
			for _, pi := range rng.Perm(len(pool))[:k] {
				watch = append(watch, pool[pi])
			}
			from := LSN(rng.Intn(n + 1))
			maxBatch := 1 + rng.Intn(7)
			prefetch := rng.Intn(32) - 1 // exercise disabled readahead too

			cur := l.OpenCursorOpts(watch, from, CursorOptions{Prefetch: prefetch})
			if from < horizon {
				if _, err := cur.NextBatch(maxBatch); !errors.Is(err, ErrCursorInvalidated) {
					t.Fatalf("trial %d: cursor below horizon: err = %v, want ErrCursorInvalidated", trial, err)
				}
				// Invalidation is sticky until Seek.
				if _, err := cur.NextBatch(maxBatch); !errors.Is(err, ErrCursorInvalidated) {
					t.Fatalf("trial %d: invalidation not sticky: %v", trial, err)
				}
				cur.Seek(horizon)
				from = horizon
			}

			var want []*Record
			pos := from
			for {
				rec, err := l.ReadNextAny(watch, pos)
				if err != nil {
					t.Fatal(err)
				}
				if rec == nil {
					break
				}
				want = append(want, rec)
				pos = rec.LSN + 1
			}

			var got []*Record
			for {
				recs, err := cur.NextBatch(maxBatch)
				if err != nil {
					t.Fatal(err)
				}
				if len(recs) == 0 {
					break
				}
				if len(recs) > maxBatch {
					t.Fatalf("NextBatch(%d) returned %d records", maxBatch, len(recs))
				}
				got = append(got, recs...)
			}

			if len(got) != len(want) {
				t.Fatalf("trial %d q %d: cursor yielded %d records, singles %d (watch=%v from=%d)",
					trial, q, len(got), len(want), watch, from)
			}
			for i := range want {
				if got[i].LSN != want[i].LSN {
					t.Fatalf("trial %d q %d rec %d: LSN %d != %d", trial, q, i, got[i].LSN, want[i].LSN)
				}
				if string(got[i].Payload) != string(want[i].Payload) {
					t.Fatalf("trial %d q %d rec %d: payload %q != %q", trial, q, i, got[i].Payload, want[i].Payload)
				}
			}
		}
		l.Close()
	}
}

// TestCursorInvalidatedMidStream asserts a trim that passes a live
// cursor's fetch position invalidates it on the next fetch, and that
// Seek to the horizon revives it.
func TestCursorInvalidatedMidStream(t *testing.T) {
	l := Open(Config{})
	defer l.Close()
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]Tag{"t"}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	cur := l.OpenCursorOpts([]Tag{"t"}, 0, CursorOptions{Prefetch: -1})
	recs, err := cur.NextBatch(5)
	if err != nil || len(recs) != 5 {
		t.Fatalf("NextBatch = (%d, %v), want 5 records", len(recs), err)
	}
	if err := l.Trim(10); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.NextBatch(5); !errors.Is(err, ErrCursorInvalidated) {
		t.Fatalf("NextBatch after trim past position = %v, want ErrCursorInvalidated", err)
	}
	cur.Seek(l.TrimHorizon())
	recs, err = cur.NextBatch(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 || recs[0].LSN != 10 {
		t.Fatalf("after Seek(horizon): %d records from %v, want 10 from LSN 10", len(recs), recs)
	}
	stats := l.Stats()
	if stats.CursorInvalidations != 1 {
		t.Fatalf("CursorInvalidations = %d, want 1", stats.CursorInvalidations)
	}
}

// TestCursorBatchIsOneRoundTrip asserts the latency contract: a fetch
// charges the read latency once however many records it returns, so a
// cursor drain pays ~ceil(n/batch) charges while a singles loop pays n.
func TestCursorBatchIsOneRoundTrip(t *testing.T) {
	clock := &sleepRecorder{}
	const lat = time.Millisecond
	l := Open(Config{ReadLatency: sim.FixedLatency(lat), Clock: clock})
	defer l.Close()
	const n = 64
	for i := 0; i < n; i++ {
		if _, err := l.Append([]Tag{"t"}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	clock.slept = 0
	cur := l.OpenCursorOpts([]Tag{"t"}, 0, CursorOptions{Prefetch: -1})
	total := 0
	for {
		recs, err := cur.NextBatch(16)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		total += len(recs)
	}
	if total != n {
		t.Fatalf("drained %d records, want %d", total, n)
	}
	if want := 4 * lat; clock.slept != want {
		t.Fatalf("cursor drain slept %v, want %v (one charge per fetch)", clock.slept, want)
	}
	st := l.Stats()
	if st.CursorBatchReads != 4 || st.CursorRecords != uint64(n) {
		t.Fatalf("stats = %d fetches / %d records, want 4 / %d", st.CursorBatchReads, st.CursorRecords, n)
	}
	if st.MeanReadBatch != 16 {
		t.Fatalf("MeanReadBatch = %v, want 16", st.MeanReadBatch)
	}
}

// TestCursorPrefetch asserts readahead accounting: with Prefetch >=
// remaining records, the first NextBatch fetches everything and later
// batches are served from memory as prefetch hits without further
// round trips.
func TestCursorPrefetch(t *testing.T) {
	clock := &sleepRecorder{}
	l := Open(Config{ReadLatency: sim.FixedLatency(time.Millisecond), Clock: clock})
	defer l.Close()
	const n = 48
	for i := 0; i < n; i++ {
		if _, err := l.Append([]Tag{"t"}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	clock.slept = 0
	cur := l.OpenCursor([]Tag{"t"}, 0) // default prefetch 256 covers all
	for drained := 0; drained < n; {
		recs, err := cur.NextBatch(16)
		if err != nil {
			t.Fatal(err)
		}
		drained += len(recs)
	}
	if clock.slept != time.Millisecond {
		t.Fatalf("drain slept %v, want 1ms (single prefetching fetch)", clock.slept)
	}
	st := l.Stats()
	if st.CursorBatchReads != 1 {
		t.Fatalf("CursorBatchReads = %d, want 1", st.CursorBatchReads)
	}
	if st.PrefetchHits != n-16 || st.PrefetchMisses != 16 {
		t.Fatalf("prefetch hits/misses = %d/%d, want %d/16", st.PrefetchHits, st.PrefetchMisses, n-16)
	}
	if cur.Buffered() != 0 {
		t.Fatalf("Buffered = %d after drain, want 0", cur.Buffered())
	}
}

// TestCursorBlocking asserts NextBatchBlocking parks on the per-tag
// waiters and wakes on a commit carrying a watched tag, and that ctx
// cancellation and log close unblock it.
func TestCursorBlocking(t *testing.T) {
	l := Open(Config{})
	defer l.Close()
	cur := l.OpenCursor([]Tag{"w"}, 0)

	type result struct {
		recs []*Record
		err  error
	}
	done := make(chan result, 1)
	go func() {
		recs, err := cur.NextBatchBlocking(context.Background(), 8)
		done <- result{recs, err}
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := l.Append([]Tag{"other"}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		t.Fatalf("blocked cursor woke on unrelated tag: %v", r)
	case <-time.After(20 * time.Millisecond):
	}
	lsn, err := l.Append([]Tag{"w"}, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil || len(r.recs) != 1 || r.recs[0].LSN != lsn {
			t.Fatalf("NextBatchBlocking = (%v, %v), want record at %d", r.recs, r.err, lsn)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cursor did not wake on watched tag")
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		recs, err := cur.NextBatchBlocking(ctx, 8)
		done <- result{recs, err}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case r := <-done:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("after cancel: %v, want context.Canceled", r.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled cursor did not unblock")
	}
}

// TestCursorUnavailableReplicas asserts the fault contract: a fetch
// whose head record has no reachable replica fails ErrUnavailable (the
// round trip itself fails), while a mid-batch unavailable record just
// truncates the batch so reachable records still flow.
func TestCursorUnavailableReplicas(t *testing.T) {
	faults := sim.NewFaultInjector()
	l := Open(Config{NumShards: 4, Replication: 1, Faults: faults})
	defer l.Close()
	for i := 0; i < 8; i++ {
		if _, err := l.Append([]Tag{"t"}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Replication 1: record i lives only on shard i%4. Partition shard 2:
	// LSNs 2 and 6 become unreachable.
	faults.Partition("client", "shard/2")

	cur := l.OpenCursorOpts([]Tag{"t"}, 0, CursorOptions{Prefetch: -1})
	recs, err := cur.NextBatch(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].LSN != 1 {
		t.Fatalf("batch = %d records, want truncation to [0 1] before unavailable LSN 2", len(recs))
	}
	// Head of the next fetch is the unavailable record itself.
	if _, err := cur.NextBatch(8); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("NextBatch at unavailable head = %v, want ErrUnavailable", err)
	}
	faults.Heal("client", "shard/2")
	recs, err = cur.NextBatch(8)
	if err != nil || len(recs) != 6 {
		t.Fatalf("after heal: (%d, %v), want 6 records", len(recs), err)
	}
}

// TestCursorNextBatchZeroAllocs is the read-path alloc gate (the dual
// of the write path's ~0.4 allocs/record): serving a warm NextBatch —
// index lookup, merge, resolve, serve — allocates nothing.
func TestCursorNextBatchZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	l := Open(Config{})
	defer l.Close()
	payload := make([]byte, 64)
	const n = 1 << 14
	for i := 0; i < n; i++ {
		if _, err := l.Append([]Tag{"hot"}, payload); err != nil {
			t.Fatal(err)
		}
	}
	cur := l.OpenCursorOpts([]Tag{"hot"}, 0, CursorOptions{Prefetch: -1})
	if _, err := cur.NextBatch(64); err != nil { // warm the scratch buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		recs, err := cur.NextBatch(64)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			cur.Seek(0)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm NextBatch allocates %v/op, want 0", allocs)
	}
}

// TestCursorMultiTagDedup asserts a record carrying several watched
// tags is returned exactly once by the k-way merge.
func TestCursorMultiTagDedup(t *testing.T) {
	l := Open(Config{})
	defer l.Close()
	if _, err := l.Append([]Tag{"a"}, []byte("0")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Tag{"a", "b"}, []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Tag{"b"}, []byte("2")); err != nil {
		t.Fatal(err)
	}
	cur := l.OpenCursor([]Tag{"a", "b"}, 0)
	recs, err := cur.NextBatch(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (multi-tag record deduped)", len(recs))
	}
	for i, rec := range recs {
		if rec.LSN != LSN(i) {
			t.Fatalf("rec %d at LSN %d, want %d", i, rec.LSN, i)
		}
	}
}
