package sharedlog

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// readCache is the client-side record cache (paper §5.3: "Boki has a
// storage cache on function nodes that reduces IO traffic"). Reads that
// hit skip the simulated storage round trip. The cache pays off where
// one record is read by many consumers — most of all progress markers,
// which every downstream substream reads (§3.3.1) — and during recovery
// replays of recently written change-log records.
//
// A plain LRU over LSN → record; safe for concurrent use.
type readCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are cacheEntry
	items    map[LSN]*list.Element

	hits, misses atomic.Uint64
}

type cacheEntry struct {
	lsn LSN
	rec *Record
}

func newReadCache(capacity int) *readCache {
	if capacity <= 0 {
		return nil
	}
	return &readCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[LSN]*list.Element, capacity),
	}
}

// get returns the cached record and whether it was present.
func (c *readCache) get(lsn LSN) (*Record, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[lsn]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(cacheEntry).rec, true
}

// put inserts a record, evicting the least recently used beyond
// capacity.
func (c *readCache) put(lsn LSN, rec *Record) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[lsn]; ok {
		c.order.MoveToFront(el)
		el.Value = cacheEntry{lsn: lsn, rec: rec}
		return
	}
	c.items[lsn] = c.order.PushFront(cacheEntry{lsn: lsn, rec: rec})
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(cacheEntry).lsn)
	}
}

// update replaces an existing entry in place (SetAux republished the
// record); absent entries are left absent so updates don't pollute the
// LRU order with unread records.
func (c *readCache) update(lsn LSN, rec *Record) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[lsn]; ok {
		el.Value = cacheEntry{lsn: lsn, rec: rec}
	}
}

// invalidate drops every cached record below the trim horizon.
func (c *readCache) invalidate(below LSN) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for lsn, el := range c.items {
		if lsn < below {
			c.order.Remove(el)
			delete(c.items, lsn)
		}
	}
}

// Stats reports cache hits and misses since the log opened.
func (c *readCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
