package sharedlog

import "sync/atomic"

// logStats is the log's internal counter set. Counters are atomic so
// the hot paths bump them without coordination; Stats() snapshots them.
type logStats struct {
	appends    atomic.Uint64
	condFailed atomic.Uint64

	readNext    atomic.Uint64
	readNextAny atomic.Uint64
	readExact   atomic.Uint64
	readPrev    atomic.Uint64

	cuts     atomic.Uint64 // sequencer cuts that ordered >= 1 append
	cutBatch atomic.Uint64 // appends ordered through cuts

	batchAppends atomic.Uint64 // AppendBatch calls (group commits)
	batchRecords atomic.Uint64 // records carried by AppendBatch calls

	wakeups       atomic.Uint64 // waiters woken by commits
	usefulWakeups atomic.Uint64 // wakeups after which the reader found data

	cursorOpens          atomic.Uint64 // OpenCursor calls
	cursorBatchReads     atomic.Uint64 // cursor fetches (read round trips)
	cursorRecords        atomic.Uint64 // records returned through cursors
	cursorPrefetchHits   atomic.Uint64 // records served from readahead buffers
	cursorPrefetchMisses atomic.Uint64 // records served straight from a fetch
	cursorInvalidations  atomic.Uint64 // cursors invalidated by Trim

	trims atomic.Uint64

	// Durability plane: what the last Recover replayed and truncated.
	// Device write counters (bytes/appends/flushes) live on the wal.Device
	// itself and are folded in by Stats().
	recoveredRecords  atomic.Uint64
	recoveredMetaOps  atomic.Uint64
	recoveredTrims    atomic.Uint64
	walTruncations    atomic.Uint64
	walTruncatedBytes atomic.Uint64
}

// Stats is a point-in-time snapshot of the log's observability counters
// (satellite of the ordering/read plane split: the wakeup pair verifies
// per-tag waiters replaced the global broadcast — a commit only wakes
// readers registered on a tag it carries, so UsefulWakeups tracks
// ReaderWakeups closely instead of trailing it by orders of magnitude).
type Stats struct {
	// Appends counts committed records; CondFailed counts conditional
	// appends rejected by their metadata guard.
	Appends    uint64
	CondFailed uint64

	// Reads by kind. Blocking variants count once per call, not per
	// internal retry.
	ReadNext    uint64
	ReadNextAny uint64
	ReadExact   uint64
	ReadPrev    uint64

	// CacheHits / CacheMisses fold in the client read cache (both zero
	// when the cache is disabled).
	CacheHits   uint64
	CacheMisses uint64

	// SequencerCuts counts non-empty ordering cuts; MeanCutBatch is the
	// mean number of appends ordered per cut (0 in immediate mode).
	SequencerCuts uint64
	MeanCutBatch  float64

	// Per-shard view of the ordering plane (sequencer mode only;
	// OrderingShards is 0 in immediate mode, which has no shard layer).
	// ShardCuts[i] counts the cuts shard i contributed at least one
	// entry to, ShardCutRecords[i] the entries it pushed through them,
	// and ShardMeanCut[i] their ratio. CutSkew is max(ShardCutRecords) /
	// mean(ShardCutRecords) — 1.0 means perfectly balanced routing, and
	// it stays near 1 under round-robin unless faults idle a shard.
	OrderingShards  int
	ShardCuts       []uint64
	ShardCutRecords []uint64
	ShardMeanCut    []float64
	CutSkew         float64

	// BatchAppends counts AppendBatch group commits; MeanAppendBatch is
	// the mean number of records per group (0 when callers only ever
	// append singly). Together with Appends this shows how much of the
	// write volume rode the batched dataplane.
	BatchAppends    uint64
	MeanAppendBatch float64

	// ReaderWakeups counts blocked readers woken by commits;
	// UsefulWakeups counts wakeups whose reader then found a record (or
	// a definite error). With per-tag waiters the ratio is ~1.
	ReaderWakeups uint64
	UsefulWakeups uint64

	// Streaming read plane (cursor.go). CursorBatchReads counts cursor
	// fetches — the read round trips a deployment would pay;
	// CursorRecords counts records delivered through them, so
	// MeanReadBatch = CursorRecords / CursorBatchReads is the read-side
	// amortization factor (the dual of MeanAppendBatch). PrefetchHits /
	// PrefetchMisses split CursorRecords by whether the record was
	// served from a readahead buffer or straight from its fetch.
	CursorOpens         uint64
	CursorBatchReads    uint64
	CursorRecords       uint64
	MeanReadBatch       float64
	PrefetchHits        uint64
	PrefetchMisses      uint64
	CursorInvalidations uint64

	// Trims counts Trim calls that advanced the horizon.
	Trims uint64

	// Durability plane (all zero when Config.WAL is unset). WALBytes,
	// WALAppends, and WALFlushes are the device's write counters;
	// RecoveredRecords / RecoveredMetaOps / RecoveredTrims count what
	// Recover replayed from the WAL; WALTruncations counts
	// truncate-at-corruption events during recovery and
	// WALTruncatedBytes the bytes they discarded.
	WALBytes          uint64
	WALAppends        uint64
	WALFlushes        uint64
	RecoveredRecords  uint64
	RecoveredMetaOps  uint64
	RecoveredTrims    uint64
	WALTruncations    uint64
	WALTruncatedBytes uint64

	// Tail and TrimHorizon locate the live window of the log.
	Tail        LSN
	TrimHorizon LSN
}

// Stats returns a snapshot of the log's counters. Counters are read
// individually, so a snapshot taken during activity is approximate
// across fields but each field is exact.
func (l *Log) Stats() Stats {
	hits, misses := l.cache.Stats()
	s := Stats{
		Appends:       l.stats.appends.Load(),
		CondFailed:    l.stats.condFailed.Load(),
		ReadNext:      l.stats.readNext.Load(),
		ReadNextAny:   l.stats.readNextAny.Load(),
		ReadExact:     l.stats.readExact.Load(),
		ReadPrev:      l.stats.readPrev.Load(),
		CacheHits:     hits,
		CacheMisses:   misses,
		SequencerCuts: l.stats.cuts.Load(),
		ReaderWakeups: l.stats.wakeups.Load(),
		UsefulWakeups: l.stats.usefulWakeups.Load(),
		Trims:         l.stats.trims.Load(),
		Tail:          l.Tail(),
		TrimHorizon:   l.TrimHorizon(),
	}
	if s.SequencerCuts > 0 {
		s.MeanCutBatch = float64(l.stats.cutBatch.Load()) / float64(s.SequencerCuts)
	}
	if n := len(l.seqShards); n > 0 {
		s.OrderingShards = n
		s.ShardCuts = make([]uint64, n)
		s.ShardCutRecords = make([]uint64, n)
		s.ShardMeanCut = make([]float64, n)
		var sum, max uint64
		for i, sh := range l.seqShards {
			s.ShardCuts[i] = sh.cuts.Load()
			s.ShardCutRecords[i] = sh.records.Load()
			if s.ShardCuts[i] > 0 {
				s.ShardMeanCut[i] = float64(s.ShardCutRecords[i]) / float64(s.ShardCuts[i])
			}
			sum += s.ShardCutRecords[i]
			if s.ShardCutRecords[i] > max {
				max = s.ShardCutRecords[i]
			}
		}
		if sum > 0 {
			s.CutSkew = float64(max) * float64(n) / float64(sum)
		}
	}
	s.BatchAppends = l.stats.batchAppends.Load()
	if s.BatchAppends > 0 {
		s.MeanAppendBatch = float64(l.stats.batchRecords.Load()) / float64(s.BatchAppends)
	}
	s.CursorOpens = l.stats.cursorOpens.Load()
	s.CursorBatchReads = l.stats.cursorBatchReads.Load()
	s.CursorRecords = l.stats.cursorRecords.Load()
	if s.CursorBatchReads > 0 {
		s.MeanReadBatch = float64(s.CursorRecords) / float64(s.CursorBatchReads)
	}
	s.PrefetchHits = l.stats.cursorPrefetchHits.Load()
	s.PrefetchMisses = l.stats.cursorPrefetchMisses.Load()
	s.CursorInvalidations = l.stats.cursorInvalidations.Load()
	if l.dur != nil {
		s.WALBytes, s.WALAppends, s.WALFlushes = l.dur.dev.Stats()
		s.RecoveredRecords = l.stats.recoveredRecords.Load()
		s.RecoveredMetaOps = l.stats.recoveredMetaOps.Load()
		s.RecoveredTrims = l.stats.recoveredTrims.Load()
		s.WALTruncations = l.stats.walTruncations.Load()
		s.WALTruncatedBytes = l.stats.walTruncatedBytes.Load()
	}
	return s
}

// CacheStats reports client-cache hits and misses (0, 0 when the cache
// is disabled). Kept alongside Stats for the cache ablation's narrower
// view.
func (l *Log) CacheStats() (hits, misses uint64) {
	return l.cache.Stats()
}
