package sharedlog

import (
	"context"
	"errors"
)

// The committed-read plane's public surface. None of these paths take
// the ordering mutex: candidates come from the sharded tag index and
// records from the lock-free committed store. Returned records are
// shared and immutable — callers must not modify them.

// ReadNext returns the first record carrying tag at an LSN >= from, or
// nil if no such record exists yet. It returns ErrTrimmed when the next
// record in range was garbage-collected.
func (l *Log) ReadNext(tag Tag, from LSN) (*Record, error) {
	l.stats.readNext.Add(1)
	rec, err := l.readNext(tag, from)
	return l.serveRead(rec, err)
}

func (l *Log) readNext(tag Tag, from LSN) (*Record, error) {
	if l.closed.Load() {
		return nil, ErrClosed
	}
	for {
		lsn, ok := l.index.next(tag, from)
		if !ok {
			if from < l.store.trimHorizon() {
				return nil, ErrTrimmed
			}
			return nil, nil
		}
		rec, err := l.resolve(lsn)
		if err == errRetryTrimmed {
			// Lost a race with Trim: the store retired lsn before the
			// index dropped it. Skip past it like the index will.
			from = lsn + 1
			continue
		}
		return rec, err
	}
}

// ReadNextAny returns the earliest record carrying any of the tags at an
// LSN >= from, or nil if none exists yet. Impeller tasks read all their
// input substreams through one global cursor this way: the shared log's
// total order interleaves a task's inputs and the upstream progress
// markers in a single sequence (paper §3.2, "Reading from multiple
// inputs").
func (l *Log) ReadNextAny(tags []Tag, from LSN) (*Record, error) {
	l.stats.readNextAny.Add(1)
	rec, err := l.readNextAny(tags, from)
	return l.serveRead(rec, err)
}

func (l *Log) readNextAny(tags []Tag, from LSN) (*Record, error) {
	if l.closed.Load() {
		return nil, ErrClosed
	}
	for {
		best := MaxLSN
		found := false
		for _, tag := range tags {
			if lsn, ok := l.index.next(tag, from); ok && lsn < best {
				best = lsn
				found = true
			}
		}
		if !found {
			if from < l.store.trimHorizon() {
				return nil, ErrTrimmed
			}
			return nil, nil
		}
		rec, err := l.resolve(best)
		if err == errRetryTrimmed {
			from = best + 1
			continue
		}
		return rec, err
	}
}

// errRetryTrimmed is an internal sentinel: the index offered an LSN the
// store had already retired (a Trim race). The search retries past it.
var errRetryTrimmed = errors.New("sharedlog: candidate trimmed mid-read")

// resolve turns an indexed candidate LSN into its record, checking
// replica availability first.
func (l *Log) resolve(lsn LSN) (*Record, error) {
	if !l.available(lsn) {
		return nil, ErrUnavailable
	}
	l.chargeFaultDelay(lsn)
	rec, err := l.store.get(lsn)
	if err != nil {
		return nil, errRetryTrimmed
	}
	if rec == nil {
		// The index never references unassigned LSNs; treat like a
		// trim race for safety.
		return nil, errRetryTrimmed
	}
	return rec, nil
}

// serveRead finishes a read: cache hits skip the storage latency, and
// misses both pay it and populate the cache. Records are immutable, so
// the cache stores the same shared instance the store publishes.
func (l *Log) serveRead(rec *Record, err error) (*Record, error) {
	if err != nil || rec == nil {
		if err == nil {
			l.chargeRead()
		}
		return rec, err
	}
	if cached, ok := l.cache.get(rec.LSN); ok {
		return cached, nil
	}
	l.chargeRead()
	l.cache.put(rec.LSN, rec)
	return rec, nil
}

func (l *Log) chargeRead() {
	if m := l.cfg.ReadLatency; m != nil {
		l.cfg.Clock.Sleep(m.Sample())
	}
}

// ReadNextBlocking behaves like ReadNext but waits until a record
// becomes readable or ctx is done.
func (l *Log) ReadNextBlocking(ctx context.Context, tag Tag, from LSN) (*Record, error) {
	l.stats.readNext.Add(1)
	return l.blockingRead(ctx, []Tag{tag}, from, func(from LSN) (*Record, error) {
		return l.readNext(tag, from)
	})
}

// ReadNextAnyBlocking behaves like ReadNextAny but waits until a record
// becomes readable or ctx is done.
func (l *Log) ReadNextAnyBlocking(ctx context.Context, tags []Tag, from LSN) (*Record, error) {
	l.stats.readNextAny.Add(1)
	return l.blockingRead(ctx, tags, from, func(from LSN) (*Record, error) {
		return l.readNextAny(tags, from)
	})
}

// blockingRead runs check until it yields a record or error, parking on
// a per-tag waiter between attempts. A commit wakes only the waiters of
// the tags it carries, so a reader is never woken by unrelated traffic
// (Stats' UsefulWakeups / ReaderWakeups ratio measures exactly this).
func (l *Log) blockingRead(ctx context.Context, tags []Tag, from LSN, check func(LSN) (*Record, error)) (*Record, error) {
	woken := false
	finish := func(rec *Record, err error) (*Record, error) {
		if woken {
			l.stats.usefulWakeups.Add(1)
		}
		if rec == nil {
			return nil, err
		}
		return l.serveRead(rec, err)
	}
	for {
		rec, err := check(from)
		if err != nil || rec != nil {
			return finish(rec, err)
		}
		w := newWaiter()
		l.index.register(tags, w)
		// Re-check: a record may have committed between the miss above
		// and the registration; its commit saw no waiter to wake.
		rec, err = check(from)
		if err != nil || rec != nil {
			l.index.unregister(tags, w)
			return finish(rec, err)
		}
		select {
		case <-ctx.Done():
			l.index.unregister(tags, w)
			return nil, ctx.Err()
		case <-l.done:
			l.index.unregister(tags, w)
			return nil, ErrClosed
		case <-w.ch:
			woken = true
		}
		// The woken tag's commit detached w from that tag; drop the
		// registrations the other tags may still hold.
		l.index.unregister(tags, w)
	}
}

// ReadPrev returns the last record carrying tag at an LSN <= from, or
// nil if none exists. Reading the tail of a task-log substream during
// recovery is ReadPrev(tag, MaxLSN). It resolves and serves through the
// same path as readNext, so a record already pulled by a forward read
// is a cache hit here too — recovery's backward marker scan used to
// bypass the cache and charge the read latency unconditionally on top
// of the replica fault delay, double-charging every warmed record.
func (l *Log) ReadPrev(tag Tag, from LSN) (*Record, error) {
	l.stats.readPrev.Add(1)
	rec, err := l.readPrev(tag, from)
	return l.serveRead(rec, err)
}

func (l *Log) readPrev(tag Tag, from LSN) (*Record, error) {
	if l.closed.Load() {
		return nil, ErrClosed
	}
	lsn, ok := l.index.prev(tag, from)
	if !ok {
		return nil, nil
	}
	if lsn < l.store.trimHorizon() {
		return nil, ErrTrimmed
	}
	rec, err := l.resolve(lsn)
	if err == errRetryTrimmed {
		// Lost a race with Trim; backward reads do not skip, so report it.
		return nil, ErrTrimmed
	}
	return rec, err
}

// Read returns the record at exactly lsn, or nil if that LSN has not
// been assigned. It returns ErrTrimmed below the trim horizon.
func (l *Log) Read(lsn LSN) (*Record, error) {
	l.stats.readExact.Add(1)
	l.chargeRead()
	if l.closed.Load() {
		return nil, ErrClosed
	}
	rec, err := l.store.get(lsn)
	if err != nil || rec == nil {
		return nil, err
	}
	if !l.available(lsn) {
		return nil, ErrUnavailable
	}
	l.chargeFaultDelay(lsn)
	return rec, nil
}

// SetAux attaches auxiliary data to the record at lsn (Boki aux-data).
// Aux data is advisory: it is not replicated with the record and may be
// overwritten by concurrent setters. Committed records are immutable,
// so the store republishes a copy carrying the aux bytes.
func (l *Log) SetAux(lsn LSN, aux []byte) error {
	if l.closed.Load() {
		return ErrClosed
	}
	if err := l.store.setAux(lsn, aux); err != nil {
		return err
	}
	// A cached stale instance would hide the freshly attached aux from
	// cache hits; refresh it if present.
	if rec, err := l.store.get(lsn); err == nil && rec != nil {
		l.cache.update(lsn, rec)
	}
	if l.dur != nil {
		l.dur.writeAux(lsn, aux)
	}
	return nil
}

// Trim garbage-collects every record with LSN < upTo (the shared log's
// prefix-trim API, paper §3.5). Trimming is idempotent and monotonic.
func (l *Log) Trim(upTo LSN) error {
	if l.closed.Load() {
		return ErrClosed
	}
	if tail := l.store.committedTail(); upTo > tail {
		upTo = tail
	}
	if upTo <= l.store.trimHorizon() {
		return nil
	}
	// Publication order: horizon first (readers classify the region as
	// trimmed), then the store retires records, then the index forgets
	// them. A reader racing in between sees ErrTrimmed or a still-live
	// record — never a torn lookup.
	l.store.trim(upTo)
	l.index.prune(upTo)
	l.cache.invalidate(upTo)
	l.stats.trims.Add(1)
	if l.dur != nil {
		l.dur.writeTrim(upTo)
	}
	return nil
}

// CountTag reports how many live records carry tag; used by tests and
// the GC ablation.
func (l *Log) CountTag(tag Tag) int {
	return l.index.count(tag)
}
