package sharedlog

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

var errAppendNeedsTag = errors.New("sharedlog: append requires at least one tag")

// The committed store: immutable records in fixed-size append-only
// segments. The ordering plane is the only writer; readers navigate a
// copy-on-write segment directory and load record slots atomically, so
// the committed path takes no lock at all.
//
// Publication protocol (writer side, serialized by the ordering mutex):
//
//	slot.Store(rec)  →  tail.Store(lsn+1)
//
// A reader that observes lsn < tail is therefore guaranteed to observe
// the slot write, and a reader that finds lsn through the tag index
// (which is updated after put returns) likewise. Trim retires records
// by nil-ing slots and dropping whole segments from the directory;
// readers distinguish "trimmed" (nil slot / dropped segment below the
// horizon) from "unassigned" (at or past the tail) structurally.

const (
	segShift = 10 // log2 of records per segment
	segSize  = 1 << segShift
	segMask  = segSize - 1
)

// segment is one fixed-size run of the global order. Slots are written
// exactly once by the ordering plane, then only ever swapped by SetAux
// (fresh immutable copy) or nil-ed by Trim.
type segment struct {
	slots [segSize]atomic.Pointer[Record]
}

// segDir is the copy-on-write segment directory. segs[i] covers LSNs
// [ (firstSeg+i) << segShift, (firstSeg+i+1) << segShift ).
type segDir struct {
	firstSeg uint64
	segs     []*segment
}

type store struct {
	// mu serializes structural mutation of the directory: segment
	// allocation (writer) and segment retirement (Trim). Readers never
	// take it.
	mu      sync.Mutex
	dir     atomic.Pointer[segDir]
	tail    atomic.Uint64 // next LSN to assign; all below are published
	trimmed atomic.Uint64 // records with LSN < trimmed are gone
}

func newStore() *store {
	s := &store{}
	s.dir.Store(&segDir{})
	return s
}

func (s *store) committedTail() LSN { return LSN(s.tail.Load()) }
func (s *store) trimHorizon() LSN   { return LSN(s.trimmed.Load()) }

// nextLSN returns the LSN the next put will assign. Only the ordering
// plane (under its mutex) may rely on this not moving.
func (s *store) nextLSN() LSN { return LSN(s.tail.Load()) }

// put publishes rec (whose LSN must be the current tail) and advances
// the committed tail. Called only by the ordering plane.
func (s *store) put(rec *Record) {
	lsn := uint64(rec.LSN)
	segnum := lsn >> segShift
	d := s.dir.Load()
	idx := segnum - d.firstSeg
	if idx >= uint64(len(d.segs)) {
		d = s.growTo(segnum)
		idx = segnum - d.firstSeg
	}
	d.segs[idx].slots[lsn&segMask].Store(rec)
	s.tail.Store(lsn + 1)
}

// growTo appends segments to the directory until segnum is covered and
// returns the new directory.
func (s *store) growTo(segnum uint64) *segDir {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dir.Load()
	for segnum-d.firstSeg >= uint64(len(d.segs)) {
		nd := &segDir{
			firstSeg: d.firstSeg,
			segs:     append(append([]*segment(nil), d.segs...), &segment{}),
		}
		s.dir.Store(nd)
		d = nd
	}
	return d
}

// get returns the committed record at lsn: (nil, nil) when lsn is not
// yet assigned, ErrTrimmed when it was garbage-collected. Lock-free.
func (s *store) get(lsn LSN) (*Record, error) {
	if uint64(lsn) >= s.tail.Load() {
		return nil, nil
	}
	d := s.dir.Load()
	segnum := uint64(lsn) >> segShift
	if segnum < d.firstSeg {
		return nil, ErrTrimmed // whole segment retired
	}
	idx := segnum - d.firstSeg
	if idx >= uint64(len(d.segs)) {
		// Raced with a concurrent put's directory growth; the tail said
		// the record exists, so reload the directory.
		d = s.dir.Load()
		idx = segnum - d.firstSeg
		if idx >= uint64(len(d.segs)) {
			return nil, nil
		}
	}
	rec := d.segs[idx].slots[uint64(lsn)&segMask].Load()
	if rec == nil {
		return nil, ErrTrimmed // slot nil-ed by Trim
	}
	return rec, nil
}

// setAux swaps the record at lsn for a copy carrying aux. Records are
// immutable once committed, so attaching aux data replaces the slot's
// record rather than mutating it; readers holding the old instance see
// stale aux, which the aux contract allows (advisory, last-writer-wins).
func (s *store) setAux(lsn LSN, aux []byte) error {
	if uint64(lsn) >= s.tail.Load() {
		return fmt.Errorf("sharedlog: SetAux at unassigned LSN %d", lsn)
	}
	d := s.dir.Load()
	segnum := uint64(lsn) >> segShift
	if segnum < d.firstSeg {
		return ErrTrimmed
	}
	slot := &d.segs[segnum-d.firstSeg].slots[uint64(lsn)&segMask]
	for {
		old := slot.Load()
		if old == nil {
			return ErrTrimmed
		}
		cp := *old
		cp.Aux = append([]byte(nil), aux...)
		if slot.CompareAndSwap(old, &cp) {
			return nil
		}
	}
}

// trim retires every record with LSN < upTo: slots in the partially
// trimmed segment are nil-ed, fully trimmed segments are dropped from
// the directory. Returns the previous horizon. Caller must have
// advanced nothing; trim itself publishes the new horizon first so
// racing readers classify the region as trimmed, not missing.
func (s *store) trim(upTo LSN) (from LSN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := LSN(s.trimmed.Load())
	if upTo <= old {
		return old
	}
	s.trimmed.Store(uint64(upTo))
	d := s.dir.Load()
	// Nil the slots of the partially trimmed tail of the range.
	firstLive := uint64(upTo) >> segShift
	for lsn := uint64(old); lsn < uint64(upTo); lsn++ {
		segnum := lsn >> segShift
		if segnum < d.firstSeg {
			continue // already dropped
		}
		if segnum < firstLive {
			// The whole segment goes away below; skip slot-by-slot work.
			lsn = (segnum+1)<<segShift - 1
			continue
		}
		idx := segnum - d.firstSeg
		if idx < uint64(len(d.segs)) {
			d.segs[idx].slots[lsn&segMask].Store(nil)
		}
	}
	// Drop fully retired segments.
	if firstLive > d.firstSeg {
		drop := firstLive - d.firstSeg
		if drop > uint64(len(d.segs)) {
			drop = uint64(len(d.segs))
		}
		nd := &segDir{
			firstSeg: d.firstSeg + drop,
			segs:     append([]*segment(nil), d.segs[drop:]...),
		}
		s.dir.Store(nd)
	}
	return old
}
