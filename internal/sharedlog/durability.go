package sharedlog

// The durability plane (opt-in): every committed cut, metadata-KV
// mutation, trim horizon, and aux attachment is appended to a
// CRC32C-checksummed, length-prefixed WAL (internal/wal) and synced
// before the append is acknowledged — ack-after-durable. The write
// sites sit on the ordering plane's existing serial paths (under l.mu
// in immediate mode, on the single cut-loop goroutine in sequencer
// mode), so cut frames land in LSN order and the single-writer
// invariant is untouched. Metadata and aux frames interleave freely:
// replay never re-validates guards, so only each key's final value
// matters, and an aux frame always follows the cut frame of the record
// it decorates.
//
// Recovery (Recover) replays the WAL's valid prefix: it rebuilds the
// committed segments, the tag index, the sequencer state (the next LSN
// is the rebuilt tail), and the metadata KV. The scan stops at the
// first torn or corrupt frame and truncates the device there instead of
// failing: everything before the bad frame is a verified prefix of the
// pre-crash log, and a prefix of a totally ordered log is itself a
// consistent log — which is exactly what the exactly-once protocols
// need (an unacknowledged suffix may be lost; nothing acknowledged is
// reordered or invented). Trim frames are buffered and applied after
// the scan, clamped to the rebuilt tail, so a trim whose covering cut
// frames were truncated away cannot leave the segment directory ahead
// of the store.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"impeller/internal/sim"
	"impeller/internal/wal"
)

// WAL frame kinds for the shared log's durability plane.
const (
	frameCut     byte = 1 // a committed cut: one or more records, contiguous LSNs
	frameMetaSet byte = 2 // metadata KV set (key, value)
	frameMetaDel byte = 3 // metadata KV delete (key)
	frameTrim    byte = 4 // trim horizon advanced
	frameAux     byte = 5 // aux data attached to a committed record
)

// durability is the log's WAL writer state. Cut writes are serialized
// by their call sites (l.mu or the cut loop); meta and aux writes rely
// on the device's internal lock for atomic frame interleaving.
type durability struct {
	dev       *wal.Device
	flushLat  sim.LatencyModel
	bandwidth int
	clock     sim.Clock
	scratch   []byte // cut-frame encode buffer; owned by the committer
}

// DefaultWALBandwidth approximates a local NVMe WAL partition's
// sequential write bandwidth, charged per synced byte when the
// durability plane runs under simulated latency.
const DefaultWALBandwidth = 400 << 20 // 400 MiB/s

// attachWAL arms the durability plane on an open (or freshly recovered)
// log: subsequent commits, metadata mutations, trims, and aux writes
// append frames to cfg.WAL.
func (l *Log) attachWAL() {
	l.dur = &durability{
		dev:       l.cfg.WAL,
		flushLat:  l.cfg.WALFlushLatency,
		bandwidth: l.cfg.WALBandwidth,
		clock:     l.cfg.Clock,
	}
	l.meta.journal = l.journalMeta
}

// chargeFlush models the WAL fsync: a fixed flush latency plus
// size-proportional bandwidth time, mirroring the kvstore's cost model.
func (d *durability) chargeFlush(bytes int) {
	var dur time.Duration
	if d.flushLat != nil {
		dur = d.flushLat.Sample()
	}
	if d.bandwidth > 0 {
		dur += time.Duration(float64(bytes) / float64(d.bandwidth) * float64(time.Second))
	}
	if dur > 0 {
		d.clock.Sleep(dur)
	}
}

// writeCut appends one cut frame covering recs (committed records with
// contiguous LSNs, in order) and syncs the device. Must be called from
// the committing path before append responses are delivered — the
// ack-after-durable invariant.
func (d *durability) writeCut(recs []*Record) {
	if len(recs) == 0 {
		return
	}
	d.scratch = encodeCutPayload(d.scratch[:0], recs)
	frame := wal.AppendFrame(nil, frameCut, d.scratch)
	d.dev.Append(frame)
	d.dev.Sync()
	d.chargeFlush(len(frame))
}

// journalMeta is the MetaStore's journal hook: one frame per mutation,
// synced immediately (metadata ops are control-plane rare; losing a
// fence to a power failure would be a correctness bug, not a perf
// trade).
func (l *Log) journalMeta(del bool, key string, value uint64) {
	d := l.dur
	payload := make([]byte, 8, 8+len(key))
	binary.LittleEndian.PutUint64(payload, value)
	payload = append(payload, key...)
	kind := frameMetaSet
	if del {
		kind = frameMetaDel
	}
	d.dev.Append(wal.AppendFrame(nil, kind, payload))
	d.dev.Sync()
}

// writeTrim journals an advanced trim horizon.
func (d *durability) writeTrim(upTo LSN) {
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], uint64(upTo))
	d.dev.Append(wal.AppendFrame(nil, frameTrim, payload[:]))
	d.dev.Sync()
}

// writeAux journals an aux attachment. Aux data is advisory
// (last-writer-wins), so frames may interleave with cuts freely; the
// record's own cut frame always precedes it in the device order.
func (d *durability) writeAux(lsn LSN, aux []byte) {
	payload := make([]byte, 8, 8+len(aux))
	binary.LittleEndian.PutUint64(payload, uint64(lsn))
	payload = append(payload, aux...)
	d.dev.Append(wal.AppendFrame(nil, frameAux, payload))
	d.dev.Sync()
}

// Cut payload layout (little-endian):
//
//	u64 firstLSN | u32 n | n × ( u16 ntags | ntags × (u16 len | tag) | u32 len | payload )
//
// LSNs within a cut are contiguous by construction: the ordering
// decision assigns them in one serial pass, and entries whose
// conditional guard failed receive no LSN at all.
func encodeCutPayload(buf []byte, recs []*Record) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(recs[0].LSN))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	for _, rec := range recs {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Tags)))
		for _, tag := range rec.Tags {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(tag)))
			buf = append(buf, tag...)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Payload)))
		buf = append(buf, rec.Payload...)
	}
	return buf
}

var errBadCutFrame = errors.New("sharedlog: malformed cut frame")

// decodeCutPayload parses one cut frame into fresh records. The decoder
// is total: arbitrary bytes either parse or return an error — recovery
// treats a parse failure like any other corrupt frame (truncate there).
func decodeCutPayload(b []byte) ([]*Record, error) {
	if len(b) < 12 {
		return nil, errBadCutFrame
	}
	first := LSN(binary.LittleEndian.Uint64(b))
	n := int(binary.LittleEndian.Uint32(b[8:]))
	b = b[12:]
	// Cuts are never empty, and a record costs at least 6 bytes (u16
	// ntags + u32 payload len); reject corrupt counts before allocating.
	if n <= 0 || n > len(b)/6+1 {
		return nil, errBadCutFrame
	}
	recs := make([]*Record, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return nil, errBadCutFrame
		}
		ntags := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		tags := make([]Tag, 0, ntags)
		for j := 0; j < ntags; j++ {
			if len(b) < 2 {
				return nil, errBadCutFrame
			}
			tl := int(binary.LittleEndian.Uint16(b))
			b = b[2:]
			if len(b) < tl {
				return nil, errBadCutFrame
			}
			tags = append(tags, Tag(b[:tl]))
			b = b[tl:]
		}
		if len(b) < 4 {
			return nil, errBadCutFrame
		}
		pl := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if pl < 0 || len(b) < pl {
			return nil, errBadCutFrame
		}
		recs = append(recs, &Record{
			LSN:     first + LSN(i),
			Tags:    tags,
			Payload: append([]byte(nil), b[:pl]...),
		})
		b = b[pl:]
	}
	if len(b) != 0 {
		return nil, errBadCutFrame
	}
	return recs, nil
}

// ErrNoWAL reports a Recover call without a WAL device to recover from.
var ErrNoWAL = errors.New("sharedlog: Recover requires Config.WAL")

// Recover rebuilds a log from the WAL in cfg.WAL and returns it with
// the durability plane attached, ready to append. The replay validates
// every frame; at the first torn or corrupt one it stops, truncates the
// device to the valid prefix, and counts the truncation in Stats —
// recovery degrades to the longest verified prefix rather than failing.
// An empty device yields a fresh, empty, durable log.
func Recover(cfg Config) (*Log, error) {
	if cfg.WAL == nil {
		return nil, ErrNoWAL
	}
	dev := cfg.WAL
	// Open quiescent: no WAL attached (replay rebuilds in-memory state
	// and must not re-append the frames it came from) and no cut loop
	// (nothing may commit concurrently with the replay). Both are armed
	// after the replay finishes.
	plain := cfg
	plain.WAL = nil
	plain.OrderingInterval = 0
	l := Open(plain)
	l.cfg = cfg.withDefaults()

	r := wal.NewReader(dev.Bytes())
	var maxTrim LSN
	trims := 0
	corrupt := false
	validEnd := 0
scan:
	for {
		kind, payload, ok := r.Next()
		if !ok {
			corrupt = r.Err() != nil
			validEnd = r.Offset()
			break
		}
		switch kind {
		case frameCut:
			recs, err := decodeCutPayload(payload)
			if err != nil {
				// Checksum held but the payload does not parse: treat as
				// corruption at this frame — the prefix before it is still
				// a verified log.
				corrupt = true
				break scan
			}
			for _, rec := range recs {
				l.store.put(rec)
			}
			l.index.addRecords(recs)
			l.stats.recoveredRecords.Add(uint64(len(recs)))
		case frameMetaSet:
			if len(payload) < 8 {
				corrupt = true
				break scan
			}
			l.meta.Set(string(payload[8:]), binary.LittleEndian.Uint64(payload))
			l.stats.recoveredMetaOps.Add(1)
		case frameMetaDel:
			if len(payload) < 8 {
				corrupt = true
				break scan
			}
			l.meta.Delete(string(payload[8:]))
			l.stats.recoveredMetaOps.Add(1)
		case frameTrim:
			if len(payload) != 8 {
				corrupt = true
				break scan
			}
			// Deferred: applying a trim mid-replay could race the segment
			// directory ahead of cut frames that were truncated away.
			if h := LSN(binary.LittleEndian.Uint64(payload)); h > maxTrim {
				maxTrim = h
			}
			trims++
		case frameAux:
			if len(payload) < 8 {
				corrupt = true
				break scan
			}
			// The record's cut frame precedes this one; a failure means
			// the LSN was trimmed (a later trim frame we have not applied
			// yet would have retired it anyway) — aux is advisory, skip.
			_ = l.store.setAux(LSN(binary.LittleEndian.Uint64(payload)), payload[8:])
		default:
			// Unknown frame kind with a valid checksum: written by a
			// newer format. Replaying past it could misinterpret the log;
			// stop at the last frame this format understands.
			corrupt = true
			break scan
		}
		validEnd = r.Offset()
	}
	if corrupt {
		total := dev.Size()
		l.stats.walTruncations.Add(1)
		l.stats.walTruncatedBytes.Add(uint64(total - validEnd))
		dev.TruncateTo(validEnd)
	}
	// Apply the newest trim horizon, clamped to the rebuilt tail.
	if maxTrim > 0 {
		if tail := l.store.committedTail(); maxTrim > tail {
			maxTrim = tail
		}
		if maxTrim > l.store.trimHorizon() {
			l.store.trim(maxTrim)
			l.index.prune(maxTrim)
			l.cache.invalidate(maxTrim)
		}
	}
	l.stats.recoveredTrims.Add(uint64(trims))
	// Replay done: arm the durability plane and, in sequencer mode, the
	// cut loop — the log is now open for appends.
	l.attachWAL()
	if l.cfg.OrderingInterval > 0 {
		l.ordering = true
		l.seqShards = make([]*seqShard, l.cfg.OrderingShards)
		for i := range l.seqShards {
			l.seqShards[i] = &seqShard{name: fmt.Sprintf("sequencer/%d", i)}
		}
		go l.cutLoop()
	}
	return l, nil
}
