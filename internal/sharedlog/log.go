// Package sharedlog implements a fault-tolerant, distributed, shared log
// in the style of Boki (SOSP '21) and Scalog (NSDI '20), the substrate
// Impeller's exactly-once protocol is built on (paper §2.3, §3.1).
//
// The log provides the four features Impeller depends on:
//
//  1. a global total order over all appended records (scalable consensus
//     via the shared-log abstraction),
//  2. high-throughput appends decoupled from ordering (a Scalog-style
//     sequencer periodically orders locally persisted batches),
//  3. selective reads by string tag, backed by a per-tag index so reads
//     are not limited by physical placement,
//  4. set-of-strings tag metadata on every record — one append carrying
//     several tags appears, atomically, in several logical substreams.
//
// It additionally provides the two Boki features Impeller's zombie
// fencing uses (paper §3.4): a key-value metadata store attached to the
// log configuration, and conditional appends that succeed only while a
// metadata key still holds an expected value.
//
// The deployment is simulated in-process: records are persisted on
// NumShards storage shards with a replication factor, and every append
// and read is charged a latency drawn from the configured models, so a
// produce-to-consume interaction costs what a two-RPC exchange costs on
// the paper's testbed.
package sharedlog

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"impeller/internal/sim"
)

// LSN is a log sequence number: the position of a record in the global
// total order. LSNs start at 0 and are dense (no gaps until trimmed).
type LSN uint64

// MaxLSN is the largest representable LSN; ReadPrev(tag, MaxLSN) reads
// the current tail of a substream.
const MaxLSN = LSN(^uint64(0))

// Tag is a string tag attached to a record. The log indexes records by
// tag; a selective read names one tag. Impeller encodes substreams as
// tags, e.g. "X/2a" for (Stream X, Substream 2a) — but the log itself
// attaches no meaning to tag contents (paper §2.3: "Tag format is not
// defined by the log").
type Tag string

// Record is one entry in the shared log.
type Record struct {
	// LSN is the record's position in the global total order.
	LSN LSN
	// Tags is the set of string tags the record was appended with.
	Tags []Tag
	// Payload is the opaque record body.
	Payload []byte
	// Aux is auxiliary data attached after the append (Boki's aux-data
	// feature); Impeller annotates progress markers that carry
	// checkpoints this way.
	Aux []byte
}

// Errors returned by log operations.
var (
	// ErrCondFailed reports a conditional append whose metadata guard no
	// longer held — e.g. a zombie task whose instance number was bumped.
	ErrCondFailed = errors.New("sharedlog: conditional append guard failed")
	// ErrTrimmed reports a read at an LSN below the trim horizon.
	ErrTrimmed = errors.New("sharedlog: position trimmed")
	// ErrUnavailable reports that a quorum of the record's replicas is
	// unreachable (crashed storage shards).
	ErrUnavailable = errors.New("sharedlog: storage quorum unavailable")
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("sharedlog: log closed")
)

// Config configures a Log. The zero value is usable: one shard,
// replication 1, immediate ordering, zero latency, real clock.
type Config struct {
	// NumShards is the number of storage shards; 0 means 1.
	NumShards int
	// Replication is how many shards hold each record; 0 means 1. The
	// paper's setup replicates 3 ways.
	Replication int
	// OrderingInterval is the sequencer cut interval (Scalog-style).
	// Zero orders every append immediately.
	OrderingInterval time.Duration
	// AppendLatency and ReadLatency charge simulated network+storage
	// time on each operation; nil charges nothing.
	AppendLatency sim.LatencyModel
	ReadLatency   sim.LatencyModel
	// Clock defaults to the real clock.
	Clock sim.Clock
	// Faults, if non-nil, lets experiments crash shards and partition
	// clients from the sequencer. Shards are named "shard/<i>";
	// the sequencer is named "sequencer".
	Faults *sim.FaultInjector
	// CacheSize enables a client-side record cache of that many entries
	// (Boki's function-node storage cache, paper §5.3); cache hits skip
	// the read latency. Zero disables caching.
	CacheSize int
}

func (c Config) withDefaults() Config {
	if c.NumShards <= 0 {
		c.NumShards = 1
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.Replication > c.NumShards {
		c.Replication = c.NumShards
	}
	if c.Clock == nil {
		c.Clock = sim.RealClock{}
	}
	return c
}

// Log is a shared log instance. Each Impeller stream query is backed by
// its own Log (paper §3.1). All methods are safe for concurrent use.
type Log struct {
	cfg Config

	mu      sync.Mutex
	records map[LSN]*Record
	byTag   map[Tag][]LSN // sorted ascending; LSNs assigned under mu
	next    LSN           // next LSN to assign
	trimmed LSN           // records with LSN < trimmed are gone
	closed  bool
	notify  chan struct{} // closed+replaced when new records become readable

	meta  *MetaStore
	cache *readCache

	pending   []pendingAppend // waiting for the sequencer cut
	ordering  bool            // sequencer loop running
	closeOnce sync.Once
	done      chan struct{}

	shards []*shard
}

type pendingAppend struct {
	rec  *Record
	resp chan appendResult
	// conditional-append guard, re-validated at ordering time.
	conditional bool
	condKey     string
	condWant    uint64
}

type appendResult struct {
	lsn LSN
	err error
}

// shard is a simulated storage node; it tracks which LSNs it stores so
// crash experiments can make records unavailable.
type shard struct {
	name string
	mu   sync.Mutex
	held map[LSN]bool
}

// Open creates a shared log with cfg.
func Open(cfg Config) *Log {
	cfg = cfg.withDefaults()
	l := &Log{
		cfg:     cfg,
		records: make(map[LSN]*Record),
		byTag:   make(map[Tag][]LSN),
		notify:  make(chan struct{}),
		meta:    NewMetaStore(),
		done:    make(chan struct{}),
	}
	l.cache = newReadCache(cfg.CacheSize)
	l.shards = make([]*shard, cfg.NumShards)
	for i := range l.shards {
		l.shards[i] = &shard{name: fmt.Sprintf("shard/%d", i), held: make(map[LSN]bool)}
	}
	if cfg.OrderingInterval > 0 {
		l.ordering = true
		go l.sequencerLoop()
	}
	return l
}

// Close shuts the log down; in-flight appends fail with ErrClosed.
func (l *Log) Close() {
	l.closeOnce.Do(func() {
		l.mu.Lock()
		l.closed = true
		pending := l.pending
		l.pending = nil
		close(l.done)
		l.broadcastLocked()
		l.mu.Unlock()
		for _, p := range pending {
			close(p.resp)
		}
	})
}

// Meta returns the log's key-value metadata store (Boki's per-log
// configuration metadata; Impeller stores task instance numbers here).
func (l *Log) Meta() *MetaStore { return l.meta }

// FenceIncrement atomically increments a metadata key with respect to
// conditional appends: once it returns, no conditional append guarded
// on the key's previous value can ever be ordered (paper §3.4:
// "Because the instance number is incremented atomically, it is
// impossible for two progress markers to be committed for the same
// outputs"). A bare Meta().Increment would leave a window where an
// in-flight conditional append has passed its guard check but not yet
// been ordered.
func (l *Log) FenceIncrement(key string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.meta.Increment(key)
}

// NumShards reports the number of storage shards.
func (l *Log) NumShards() int { return len(l.shards) }

// Append appends payload with tags and returns the assigned LSN. The
// append is atomic with respect to every tag: the single record appears
// in each tag's substream at the same global position. tags must be
// non-empty.
func (l *Log) Append(tags []Tag, payload []byte) (LSN, error) {
	return l.append(tags, payload, "", 0, false)
}

// ConditionalAppend appends only if the metadata key still holds want.
// Impeller fences zombie tasks by guarding progress-marker appends on
// the task's instance number (paper §3.4). Returns ErrCondFailed if the
// guard no longer holds.
func (l *Log) ConditionalAppend(tags []Tag, payload []byte, key string, want uint64) (LSN, error) {
	return l.append(tags, payload, key, want, true)
}

func (l *Log) append(tags []Tag, payload []byte, condKey string, condWant uint64, conditional bool) (LSN, error) {
	if len(tags) == 0 {
		return 0, errors.New("sharedlog: append requires at least one tag")
	}
	if err := l.cfg.Faults.Check("client", "sequencer"); err != nil {
		return 0, err
	}
	if m := l.cfg.AppendLatency; m != nil {
		l.cfg.Clock.Sleep(m.Sample())
	}
	rec := &Record{
		Tags:    append([]Tag(nil), tags...),
		Payload: append([]byte(nil), payload...),
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if !l.ordering {
		// The guard check and the ordering decision are atomic under
		// l.mu: together with FenceIncrement, two markers can never
		// both commit for the same (task, instance).
		if conditional && !l.condHoldsLocked(condKey, condWant) {
			l.mu.Unlock()
			return 0, ErrCondFailed
		}
		lsn := l.commitLocked(rec)
		l.mu.Unlock()
		return lsn, nil
	}
	// Ordering mode: the guard is validated at the sequencer cut — the
	// moment the LSN is assigned — not at enqueue time, so a fence
	// between enqueue and cut still excludes the append.
	resp := make(chan appendResult, 1)
	l.pending = append(l.pending, pendingAppend{
		rec: rec, resp: resp,
		conditional: conditional, condKey: condKey, condWant: condWant,
	})
	l.mu.Unlock()

	res, ok := <-resp
	if !ok {
		return 0, ErrClosed
	}
	return res.lsn, res.err
}

// condHoldsLocked reports whether the metadata guard still holds.
func (l *Log) condHoldsLocked(key string, want uint64) bool {
	got, ok := l.meta.Get(key)
	return ok && got == want
}

// commitLocked assigns the next LSN, indexes the record by tag, places
// replicas, and wakes blocked readers. Caller holds l.mu.
func (l *Log) commitLocked(rec *Record) LSN {
	lsn := l.next
	l.next++
	rec.LSN = lsn
	l.records[lsn] = rec
	for _, t := range rec.Tags {
		l.byTag[t] = append(l.byTag[t], lsn)
	}
	n := len(l.shards)
	for r := 0; r < l.cfg.Replication; r++ {
		s := l.shards[(int(lsn)+r)%n]
		s.mu.Lock()
		s.held[lsn] = true
		s.mu.Unlock()
	}
	l.broadcastLocked()
	return lsn
}

func (l *Log) broadcastLocked() {
	close(l.notify)
	l.notify = make(chan struct{})
}

// sequencerLoop implements Scalog-style ordering: locally persisted
// appends wait for the next cut, at which point the sequencer assigns a
// contiguous range of global LSNs to the batch.
func (l *Log) sequencerLoop() {
	for {
		select {
		case <-l.done:
			return
		case <-l.cfg.Clock.After(l.cfg.OrderingInterval):
		}
		l.mu.Lock()
		batch := l.pending
		l.pending = nil
		results := make([]appendResult, len(batch))
		for i, p := range batch {
			if p.conditional && !l.condHoldsLocked(p.condKey, p.condWant) {
				results[i] = appendResult{err: ErrCondFailed}
				continue
			}
			results[i] = appendResult{lsn: l.commitLocked(p.rec)}
		}
		l.mu.Unlock()
		for i, p := range batch {
			p.resp <- results[i]
		}
	}
}

// available reports whether a quorum (one live replica) of the record at
// lsn is reachable.
func (l *Log) available(lsn LSN) bool {
	if l.cfg.Faults == nil {
		return true
	}
	n := len(l.shards)
	for r := 0; r < l.cfg.Replication; r++ {
		s := l.shards[(int(lsn)+r)%n]
		if !l.cfg.Faults.Crashed(s.name) {
			return true
		}
	}
	return false
}

func (l *Log) chargeRead() {
	if m := l.cfg.ReadLatency; m != nil {
		l.cfg.Clock.Sleep(m.Sample())
	}
}

// ReadNext returns the first record carrying tag at an LSN >= from, or
// nil if no such record exists yet. It returns ErrTrimmed when the next
// record in range was garbage-collected.
func (l *Log) ReadNext(tag Tag, from LSN) (*Record, error) {
	l.mu.Lock()
	rec, err := l.readNextLocked(tag, from)
	l.mu.Unlock()
	return l.serveRead(rec, err)
}

// serveRead finishes a read: cache hits skip the storage latency, and
// misses both pay it and populate the cache.
func (l *Log) serveRead(rec *Record, err error) (*Record, error) {
	if err != nil || rec == nil {
		if err == nil {
			l.chargeRead()
		}
		return rec, err
	}
	if cached, ok := l.cache.get(rec.LSN); ok {
		return cached, nil
	}
	l.chargeRead()
	l.cache.put(rec.LSN, rec)
	return rec, nil
}

func (l *Log) readNextLocked(tag Tag, from LSN) (*Record, error) {
	if l.closed {
		return nil, ErrClosed
	}
	idx := l.byTag[tag]
	i := sort.Search(len(idx), func(i int) bool { return idx[i] >= from })
	if i == len(idx) {
		if from < l.trimmed {
			return nil, ErrTrimmed
		}
		return nil, nil
	}
	lsn := idx[i]
	if !l.available(lsn) {
		return nil, ErrUnavailable
	}
	return l.copyRecordLocked(lsn), nil
}

// ReadNextAny returns the earliest record carrying any of the tags at an
// LSN >= from, or nil if none exists yet. Impeller tasks read all their
// input substreams through one global cursor this way: the shared log's
// total order interleaves a task's inputs and the upstream progress
// markers in a single sequence (paper §3.2, "Reading from multiple
// inputs").
func (l *Log) ReadNextAny(tags []Tag, from LSN) (*Record, error) {
	l.mu.Lock()
	rec, err := l.readNextAnyLocked(tags, from)
	l.mu.Unlock()
	return l.serveRead(rec, err)
}

func (l *Log) readNextAnyLocked(tags []Tag, from LSN) (*Record, error) {
	if l.closed {
		return nil, ErrClosed
	}
	best := MaxLSN
	found := false
	for _, tag := range tags {
		idx := l.byTag[tag]
		i := sort.Search(len(idx), func(i int) bool { return idx[i] >= from })
		if i < len(idx) && idx[i] < best {
			best = idx[i]
			found = true
		}
	}
	if !found {
		if from < l.trimmed {
			return nil, ErrTrimmed
		}
		return nil, nil
	}
	if !l.available(best) {
		return nil, ErrUnavailable
	}
	return l.copyRecordLocked(best), nil
}

// ReadNextAnyBlocking behaves like ReadNextAny but waits until a record
// becomes readable or ctx is done.
func (l *Log) ReadNextAnyBlocking(ctx context.Context, tags []Tag, from LSN) (*Record, error) {
	for {
		l.mu.Lock()
		rec, err := l.readNextAnyLocked(tags, from)
		ch := l.notify
		l.mu.Unlock()
		if err != nil || rec != nil {
			if rec == nil {
				return nil, err
			}
			return l.serveRead(rec, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ch:
		}
	}
}

// ReadNextBlocking behaves like ReadNext but waits until a record
// becomes readable or ctx is done.
func (l *Log) ReadNextBlocking(ctx context.Context, tag Tag, from LSN) (*Record, error) {
	for {
		l.mu.Lock()
		rec, err := l.readNextLocked(tag, from)
		ch := l.notify
		l.mu.Unlock()
		if err != nil || rec != nil {
			if rec == nil {
				return nil, err
			}
			return l.serveRead(rec, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ch:
		}
	}
}

// ReadPrev returns the last record carrying tag at an LSN <= from, or
// nil if none exists. Reading the tail of a task-log substream during
// recovery is ReadPrev(tag, MaxLSN).
func (l *Log) ReadPrev(tag Tag, from LSN) (*Record, error) {
	l.chargeRead()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	idx := l.byTag[tag]
	i := sort.Search(len(idx), func(i int) bool { return idx[i] > from })
	if i == 0 {
		return nil, nil
	}
	lsn := idx[i-1]
	if lsn < l.trimmed {
		return nil, ErrTrimmed
	}
	if !l.available(lsn) {
		return nil, ErrUnavailable
	}
	return l.copyRecordLocked(lsn), nil
}

// Read returns the record at exactly lsn, or nil if that LSN has not
// been assigned. It returns ErrTrimmed below the trim horizon.
func (l *Log) Read(lsn LSN) (*Record, error) {
	l.chargeRead()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if lsn < l.trimmed {
		return nil, ErrTrimmed
	}
	if _, ok := l.records[lsn]; !ok {
		return nil, nil
	}
	if !l.available(lsn) {
		return nil, ErrUnavailable
	}
	return l.copyRecordLocked(lsn), nil
}

func (l *Log) copyRecordLocked(lsn LSN) *Record {
	r := l.records[lsn]
	cp := &Record{LSN: r.LSN, Tags: r.Tags, Payload: r.Payload, Aux: r.Aux}
	return cp
}

// SetAux attaches auxiliary data to the record at lsn (Boki aux-data).
// Aux data is advisory: it is not replicated with the record and may be
// overwritten by concurrent setters.
func (l *Log) SetAux(lsn LSN, aux []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	r, ok := l.records[lsn]
	if !ok {
		if lsn < l.trimmed {
			return ErrTrimmed
		}
		return fmt.Errorf("sharedlog: SetAux at unassigned LSN %d", lsn)
	}
	r.Aux = append([]byte(nil), aux...)
	return nil
}

// Trim garbage-collects every record with LSN < upTo (the shared log's
// prefix-trim API, paper §3.5). Trimming is idempotent and monotonic.
func (l *Log) Trim(upTo LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if upTo <= l.trimmed {
		return nil
	}
	if upTo > l.next {
		upTo = l.next
	}
	for lsn := l.trimmed; lsn < upTo; lsn++ {
		rec, ok := l.records[lsn]
		if !ok {
			continue
		}
		delete(l.records, lsn)
		for _, t := range rec.Tags {
			idx := l.byTag[t]
			i := sort.Search(len(idx), func(i int) bool { return idx[i] >= lsn })
			if i < len(idx) && idx[i] == lsn {
				l.byTag[t] = append(idx[:i], idx[i+1:]...)
			}
			if len(l.byTag[t]) == 0 {
				delete(l.byTag, t)
			}
		}
		n := len(l.shards)
		for r := 0; r < l.cfg.Replication; r++ {
			s := l.shards[(int(lsn)+r)%n]
			s.mu.Lock()
			delete(s.held, lsn)
			s.mu.Unlock()
		}
	}
	l.trimmed = upTo
	l.cache.invalidate(upTo)
	return nil
}

// TrimHorizon returns the lowest untrimmed LSN.
func (l *Log) TrimHorizon() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.trimmed
}

// Tail returns the next LSN to be assigned (i.e. one past the last
// record in the global order).
func (l *Log) Tail() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// CacheStats reports client-cache hits and misses (0, 0 when the cache
// is disabled).
func (l *Log) CacheStats() (hits, misses uint64) {
	return l.cache.Stats()
}

// CountTag reports how many live records carry tag; used by tests and
// the GC ablation.
func (l *Log) CountTag(tag Tag) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.byTag[tag])
}
