// Package sharedlog implements a fault-tolerant, distributed, shared log
// in the style of Boki (SOSP '21) and Scalog (NSDI '20), the substrate
// Impeller's exactly-once protocol is built on (paper §2.3, §3.1).
//
// The log provides the four features Impeller depends on:
//
//  1. a global total order over all appended records (scalable consensus
//     via the shared-log abstraction),
//  2. high-throughput appends decoupled from ordering (a Scalog-style
//     sequencer periodically orders locally persisted batches),
//  3. selective reads by string tag, backed by a per-tag index so reads
//     are not limited by physical placement,
//  4. set-of-strings tag metadata on every record — one append carrying
//     several tags appears, atomically, in several logical substreams.
//
// It additionally provides the two Boki features Impeller's zombie
// fencing uses (paper §3.4): a key-value metadata store attached to the
// log configuration, and conditional appends that succeed only while a
// metadata key still holds an expected value.
//
// Internally the log is split into two planes (Boki/Scalog separate
// ordering from storage the same way):
//
//   - The ordering plane (ordering.go) is the only writer. It is itself
//     split Scalog-style: in sequencer mode appends are routed across
//     OrderingShards local sequencer shards (own lock, own simulated
//     persist bandwidth — appends on different shards never contend),
//     and a periodic cut aggregator assigns each shard a contiguous
//     range of global LSNs under one mutex — the total order is a
//     serial decision by definition, but only the cut is serial, not
//     the appends feeding it.
//   - The committed-read plane (store.go, index.go, read.go) is
//     lock-free for readers: committed records live in immutable
//     segmented arrays behind an atomically published tail, and the
//     per-tag index shards its locks. ReadNext / ReadNextAny / Read /
//     CountTag never take the ordering mutex. Blocking readers register
//     per-tag waiters, so a commit wakes only readers whose tags it
//     carries — not every blocked reader in the process.
//
// Records are immutable once committed: readers all share one record
// instance and must not modify it. SetAux swaps in a fresh copy rather
// than mutating in place.
//
// The deployment is simulated in-process: records are persisted on
// NumShards storage shards with a replication factor, and every append
// and read is charged a latency drawn from the configured models, so a
// produce-to-consume interaction costs what a two-RPC exchange costs on
// the paper's testbed.
package sharedlog

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"impeller/internal/sim"
	"impeller/internal/wal"
)

// LSN is a log sequence number: the position of a record in the global
// total order. LSNs start at 0 and are dense (no gaps until trimmed).
type LSN uint64

// MaxLSN is the largest representable LSN; ReadPrev(tag, MaxLSN) reads
// the current tail of a substream.
const MaxLSN = LSN(^uint64(0))

// Tag is a string tag attached to a record. The log indexes records by
// tag; a selective read names one tag. Impeller encodes substreams as
// tags, e.g. "X/2a" for (Stream X, Substream 2a) — but the log itself
// attaches no meaning to tag contents (paper §2.3: "Tag format is not
// defined by the log").
type Tag string

// Record is one entry in the shared log. Once committed a record is
// immutable and shared by every reader; callers must not modify it.
type Record struct {
	// LSN is the record's position in the global total order.
	LSN LSN
	// Tags is the set of string tags the record was appended with.
	Tags []Tag
	// Payload is the opaque record body.
	Payload []byte
	// Aux is auxiliary data attached after the append (Boki's aux-data
	// feature); Impeller annotates progress markers that carry
	// checkpoints this way.
	Aux []byte
}

// Errors returned by log operations.
var (
	// ErrCondFailed reports a conditional append whose metadata guard no
	// longer held — e.g. a zombie task whose instance number was bumped.
	ErrCondFailed = errors.New("sharedlog: conditional append guard failed")
	// ErrTrimmed reports a read at an LSN below the trim horizon.
	ErrTrimmed = errors.New("sharedlog: position trimmed")
	// ErrUnavailable reports that a quorum of the record's replicas is
	// unreachable (crashed storage shards).
	ErrUnavailable = errors.New("sharedlog: storage quorum unavailable")
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("sharedlog: log closed")
)

// IsRetryable reports whether err is a transient fault a caller may
// retry: the crashed node can recover and the partition can heal, so
// the same operation can succeed later. Fatal outcomes — a fencing
// conflict (ErrCondFailed), a closed log, a trimmed position — are not
// retryable: retrying cannot change the answer.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrUnavailable) ||
		errors.Is(err, sim.ErrCrashed) ||
		errors.Is(err, sim.ErrPartitioned)
}

// Config configures a Log. The zero value is usable: one shard,
// replication 1, immediate ordering, zero latency, real clock.
type Config struct {
	// NumShards is the number of storage shards; 0 means 1.
	NumShards int
	// Replication is how many shards hold each record; 0 means 1. The
	// paper's setup replicates 3 ways.
	Replication int
	// OrderingInterval is the sequencer cut interval (Scalog-style).
	// Zero orders every append immediately.
	OrderingInterval time.Duration
	// OrderingShards is the number of local sequencer shards appends are
	// routed across in sequencer mode; 0 means 1. Ignored in immediate
	// mode (OrderingInterval == 0), which has no shard layer.
	OrderingShards int
	// AppendLatency and ReadLatency charge simulated network+storage
	// time on each operation; nil charges nothing.
	AppendLatency sim.LatencyModel
	ReadLatency   sim.LatencyModel
	// ShardAppendLatency models the local persist at an ordering shard:
	// samples are charged serially per shard (one group at a time, like
	// a local disk), concurrently across shards — the resource that
	// makes aggregate append throughput scale with OrderingShards. Only
	// charged in sequencer mode; nil charges nothing.
	ShardAppendLatency sim.LatencyModel
	// Clock defaults to the real clock.
	Clock sim.Clock
	// Faults, if non-nil, lets experiments crash shards and partition
	// clients from the sequencer. Storage shards are named "shard/<i>";
	// the cut aggregator is named "sequencer"; local sequencer shards
	// are named "sequencer/<i>" and can be crashed or delayed mid-cut
	// individually.
	Faults *sim.FaultInjector
	// CacheSize enables a client-side record cache of that many entries
	// (Boki's function-node storage cache, paper §5.3); cache hits skip
	// the read latency. Zero disables caching.
	CacheSize int
	// WAL, if non-nil, enables the durability plane: every committed cut,
	// metadata mutation, trim horizon, and aux attachment is appended to
	// the device as a checksummed frame and synced before the append is
	// acknowledged. Recover rebuilds a log from the same device.
	WAL *wal.Device
	// WALFlushLatency charges a fixed simulated latency per cut flush
	// (fsync); nil charges nothing. WALBandwidth additionally charges
	// bytes/second for the synced frame; 0 charges nothing.
	WALFlushLatency sim.LatencyModel
	WALBandwidth    int
}

func (c Config) withDefaults() Config {
	if c.NumShards <= 0 {
		c.NumShards = 1
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.Replication > c.NumShards {
		c.Replication = c.NumShards
	}
	if c.OrderingShards <= 0 {
		c.OrderingShards = 1
	}
	if c.Clock == nil {
		c.Clock = sim.RealClock{}
	}
	return c
}

// Log is a shared log instance. Each Impeller stream query is backed by
// its own Log (paper §3.1). All methods are safe for concurrent use.
type Log struct {
	cfg Config

	// Ordering plane. mu serializes the global half — LSN assignment,
	// conditional-append guard checks, and cut publication. Reads never
	// take it. In sequencer mode pending appends live on the local
	// sequencer shards (seqShards), each behind its own lock, and only
	// the cut aggregator touches mu on their behalf.
	mu        sync.Mutex
	seqShards []*seqShard   // local ordering layer (sequencer mode only)
	rr        atomic.Uint64 // round-robin append routing across seqShards
	ordering  bool          // cut loop running

	// Committed-read plane: lock-free segmented store + sharded index.
	store *store
	index *tagIndex

	meta  *MetaStore
	cache *readCache
	stats logStats

	// Durability plane (nil unless Config.WAL is set).
	dur *durability

	closed    atomic.Bool
	closeOnce sync.Once
	done      chan struct{} // closed when the log closes; wakes waiters

	shards []*shard
}

// shard is a simulated storage node. Replica placement is deterministic
// — record lsn lives on shards (lsn+r) mod NumShards for r < Replication
// — so the shard carries only its fault-injection name.
type shard struct {
	name string
}

// Open creates a shared log with cfg.
func Open(cfg Config) *Log {
	cfg = cfg.withDefaults()
	l := &Log{
		cfg:   cfg,
		store: newStore(),
		index: newTagIndex(),
		meta:  NewMetaStore(),
		done:  make(chan struct{}),
	}
	l.cache = newReadCache(cfg.CacheSize)
	l.shards = make([]*shard, cfg.NumShards)
	for i := range l.shards {
		l.shards[i] = &shard{name: fmt.Sprintf("shard/%d", i)}
	}
	if cfg.WAL != nil {
		l.attachWAL()
	}
	if cfg.OrderingInterval > 0 {
		l.ordering = true
		l.seqShards = make([]*seqShard, cfg.OrderingShards)
		for i := range l.seqShards {
			l.seqShards[i] = &seqShard{name: fmt.Sprintf("sequencer/%d", i)}
		}
		go l.cutLoop()
	}
	return l
}

// Close shuts the log down; in-flight appends fail with ErrClosed and
// blocked readers return ErrClosed.
func (l *Log) Close() {
	l.closeOnce.Do(func() {
		l.closed.Store(true)
		close(l.done) // stops the cut loop and wakes every blocked reader
		// Fail pending batches promptly on every ordering shard. closed
		// was set before the steals, so an append that misses a steal
		// observes closed under shard.mu and never enqueues — no batch
		// is stranded, no goroutine stays stuck in <-resp. A batch the
		// cut loop already stole still gets its real results delivered.
		for _, s := range l.seqShards {
			for _, b := range s.steal() {
				b.resp <- ErrClosed
			}
		}
	})
}

// Meta returns the log's key-value metadata store (Boki's per-log
// configuration metadata; Impeller stores task instance numbers here).
func (l *Log) Meta() *MetaStore { return l.meta }

// FenceIncrement atomically increments a metadata key with respect to
// conditional appends: once it returns, no conditional append guarded
// on the key's previous value can ever be ordered (paper §3.4:
// "Because the instance number is incremented atomically, it is
// impossible for two progress markers to be committed for the same
// outputs"). A bare Meta().Increment would leave a window where an
// in-flight conditional append has passed its guard check but not yet
// been ordered.
func (l *Log) FenceIncrement(key string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.meta.Increment(key)
}

// NumShards reports the number of storage shards.
func (l *Log) NumShards() int { return len(l.shards) }

// Tail returns the next LSN to be assigned (i.e. one past the last
// record in the global order).
func (l *Log) Tail() LSN { return l.store.committedTail() }

// TrimHorizon returns the lowest untrimmed LSN.
func (l *Log) TrimHorizon() LSN { return l.store.trimHorizon() }

// available reports whether a quorum (one live replica) of the record at
// lsn is reachable from the client: a replica is unreachable when its
// shard is crashed or the client↔shard link is partitioned. Placement
// is deterministic, so no shard state is consulted — only the fault
// injector.
func (l *Log) available(lsn LSN) bool {
	if l.cfg.Faults == nil {
		return true
	}
	n := len(l.shards)
	for r := 0; r < l.cfg.Replication; r++ {
		s := l.shards[(int(lsn)+r)%n]
		if l.cfg.Faults.Check("client", s.name) == nil {
			return true
		}
	}
	return false
}

// chargeFaultDelay sleeps for any latency spike injected at the first
// live replica serving lsn — the replica a read would actually hit.
func (l *Log) chargeFaultDelay(lsn LSN) {
	if l.cfg.Faults == nil {
		return
	}
	n := len(l.shards)
	for r := 0; r < l.cfg.Replication; r++ {
		s := l.shards[(int(lsn)+r)%n]
		if l.cfg.Faults.Check("client", s.name) == nil {
			if d := l.cfg.Faults.DelayOf(s.name); d > 0 {
				l.cfg.Clock.Sleep(d)
			}
			return
		}
	}
}
