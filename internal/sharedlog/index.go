package sharedlog

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The per-tag index of the committed-read plane. Lookups take only a
// sharded RWMutex read lock (hashed by tag), never the ordering mutex,
// so selective reads scale with readers. The ordering plane appends
// under the shard write lock — a short critical section per tag.
//
// Blocking readers register a waiter on each tag they watch; a commit
// detaches and wakes exactly the waiters of the tags it carries. This
// replaces the old global broadcast channel that woke every blocked
// reader on every commit (the thundering herd the wakeup counters in
// Stats make visible).

const indexShards = 16 // power of two; tags hash across these

type tagIndex struct {
	shards [indexShards]indexShard
}

type indexShard struct {
	mu sync.RWMutex
	m  map[Tag]*tagEntry
}

// tagEntry is one tag's substream: its committed LSNs in ascending
// order, plus the readers currently blocked on it.
type tagEntry struct {
	lsns    []LSN
	waiters []*waiter
}

// waiter is one blocked read. It may be registered on several tags
// (ReadNextAny); the first commit on any of them wins the CAS and
// closes the channel, so a waiter wakes at most once.
type waiter struct {
	ch    chan struct{}
	woken atomic.Bool
}

func newWaiter() *waiter { return &waiter{ch: make(chan struct{})} }

// wake signals the waiter; reports whether this call was the one that
// woke it (false if it was already woken through another tag).
func (w *waiter) wake() bool {
	if w.woken.CompareAndSwap(false, true) {
		close(w.ch)
		return true
	}
	return false
}

func newTagIndex() *tagIndex {
	idx := &tagIndex{}
	for i := range idx.shards {
		idx.shards[i].m = make(map[Tag]*tagEntry)
	}
	return idx
}

// shardIdx hashes tag onto a shard index (FNV-1a).
func shardIdx(tag Tag) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(tag); i++ {
		h ^= uint64(tag[i])
		h *= prime64
	}
	return h & (indexShards - 1)
}

func (x *tagIndex) shardFor(tag Tag) *indexShard {
	return &x.shards[shardIdx(tag)]
}

// add records lsn under every tag and wakes the readers blocked on those
// tags. Called by the ordering plane after the record is in the store.
// Returns how many waiters this commit woke.
func (x *tagIndex) add(tags []Tag, lsn LSN) int {
	woken := 0
	for _, tag := range tags {
		s := x.shardFor(tag)
		s.mu.Lock()
		e := s.m[tag]
		if e == nil {
			e = &tagEntry{}
			s.m[tag] = e
		}
		e.lsns = append(e.lsns, lsn)
		ws := e.waiters
		e.waiters = nil
		s.mu.Unlock()
		for _, w := range ws {
			if w.wake() {
				woken++
			}
		}
	}
	return woken
}

// tagInsert is one (tag, lsn) pair of a vectorized index pass.
type tagInsert struct {
	tag Tag
	lsn LSN
}

// addRecords indexes a group of committed records in one vectorized
// pass: the (tag, lsn) inserts are bucketed by shard first, so each
// touched shard's write lock is taken once per group instead of once
// per tag occurrence. recs must be in ascending LSN order and the call
// must be serialized with every other index insertion (the ordering
// plane calls it under l.mu) — that is what keeps each per-tag LSN list
// sorted for the read plane's binary searches. Returns how many waiters
// the group woke.
func (x *tagIndex) addRecords(recs []*Record) int {
	if len(recs) == 0 {
		return 0
	}
	if len(recs) == 1 {
		return x.add(recs[0].Tags, recs[0].LSN)
	}
	var buckets [indexShards][]tagInsert
	for _, rec := range recs {
		for _, tag := range rec.Tags {
			i := shardIdx(tag)
			buckets[i] = append(buckets[i], tagInsert{tag: tag, lsn: rec.LSN})
		}
	}
	woken := 0
	var toWake []*waiter
	for i := range buckets {
		ins := buckets[i]
		if len(ins) == 0 {
			continue
		}
		s := &x.shards[i]
		toWake = toWake[:0]
		s.mu.Lock()
		for _, in := range ins {
			e := s.m[in.tag]
			if e == nil {
				e = &tagEntry{}
				s.m[in.tag] = e
			}
			e.lsns = append(e.lsns, in.lsn)
			if len(e.waiters) > 0 {
				toWake = append(toWake, e.waiters...)
				e.waiters = nil
			}
		}
		s.mu.Unlock()
		for _, w := range toWake {
			if w.wake() {
				woken++
			}
		}
	}
	return woken
}

// next returns the first LSN carrying tag at or after from.
func (x *tagIndex) next(tag Tag, from LSN) (LSN, bool) {
	s := x.shardFor(tag)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e := s.m[tag]
	if e == nil {
		return 0, false
	}
	i := sort.Search(len(e.lsns), func(i int) bool { return e.lsns[i] >= from })
	if i == len(e.lsns) {
		return 0, false
	}
	return e.lsns[i], true
}

// nextN appends to dst up to max LSNs carrying tag at or after from, in
// ascending order, and returns the extended slice. One shard read lock
// and one binary search serve the whole run — the batched counterpart
// of next, used by cursor fetches.
func (x *tagIndex) nextN(tag Tag, from LSN, dst []LSN, max int) []LSN {
	s := x.shardFor(tag)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e := s.m[tag]
	if e == nil {
		return dst
	}
	i := sort.Search(len(e.lsns), func(i int) bool { return e.lsns[i] >= from })
	for ; i < len(e.lsns) && len(dst) < max; i++ {
		dst = append(dst, e.lsns[i])
	}
	return dst
}

// prev returns the last LSN carrying tag at or before from.
func (x *tagIndex) prev(tag Tag, from LSN) (LSN, bool) {
	s := x.shardFor(tag)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e := s.m[tag]
	if e == nil {
		return 0, false
	}
	i := sort.Search(len(e.lsns), func(i int) bool { return e.lsns[i] > from })
	if i == 0 {
		return 0, false
	}
	return e.lsns[i-1], true
}

// count reports how many live records carry tag.
func (x *tagIndex) count(tag Tag) int {
	s := x.shardFor(tag)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e := s.m[tag]
	if e == nil {
		return 0
	}
	return len(e.lsns)
}

// register subscribes w to every tag; the next commit carrying one of
// them wakes it. The caller must re-check for a committed record after
// registering — a record may have landed between its check and the
// registration.
func (x *tagIndex) register(tags []Tag, w *waiter) {
	for _, tag := range tags {
		s := x.shardFor(tag)
		s.mu.Lock()
		e := s.m[tag]
		if e == nil {
			e = &tagEntry{}
			s.m[tag] = e
		}
		e.waiters = append(e.waiters, w)
		s.mu.Unlock()
	}
}

// unregister removes w from every tag it was registered on. Safe to
// call after the waiter fired (commit detaches the woken tag's list,
// but w may still sit on the other tags of a multi-tag wait).
func (x *tagIndex) unregister(tags []Tag, w *waiter) {
	for _, tag := range tags {
		s := x.shardFor(tag)
		s.mu.Lock()
		if e := s.m[tag]; e != nil {
			for i, o := range e.waiters {
				if o == w {
					last := len(e.waiters) - 1
					e.waiters[i] = e.waiters[last]
					e.waiters[last] = nil
					e.waiters = e.waiters[:last]
					break
				}
			}
			if len(e.lsns) == 0 && len(e.waiters) == 0 {
				delete(s.m, tag)
			}
		}
		s.mu.Unlock()
	}
}

// prune drops every indexed LSN below upTo, deleting tags whose
// substream is now empty (unless readers still wait on them).
func (x *tagIndex) prune(upTo LSN) {
	for i := range x.shards {
		s := &x.shards[i]
		s.mu.Lock()
		for tag, e := range s.m {
			cut := sort.Search(len(e.lsns), func(i int) bool { return e.lsns[i] >= upTo })
			if cut == 0 {
				continue
			}
			if cut == len(e.lsns) && len(e.waiters) == 0 {
				delete(s.m, tag)
				continue
			}
			// Compact into a fresh slice so the trimmed prefix's backing
			// array is released.
			e.lsns = append([]LSN(nil), e.lsns[cut:]...)
		}
		s.mu.Unlock()
	}
}
