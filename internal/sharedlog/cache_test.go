package sharedlog

import (
	"testing"
	"time"

	"impeller/internal/sim"
)

func TestReadCacheHitSkipsLatency(t *testing.T) {
	l := Open(Config{
		ReadLatency: sim.FixedLatency(5 * time.Millisecond),
		CacheSize:   64,
	})
	defer l.Close()
	mustAppend(t, l, "payload", "t")

	start := time.Now()
	if _, err := l.ReadNext("t", 0); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)
	if cold < 5*time.Millisecond {
		t.Fatalf("cold read took %v, want >= 5ms", cold)
	}

	start = time.Now()
	if _, err := l.ReadNext("t", 0); err != nil {
		t.Fatal(err)
	}
	if warm := time.Since(start); warm >= 5*time.Millisecond {
		t.Fatalf("warm read took %v, want < 5ms", warm)
	}
	hits, misses := l.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses", hits, misses)
	}
}

func TestReadCacheLRUEviction(t *testing.T) {
	c := newReadCache(2)
	r := func(lsn LSN) *Record { return &Record{LSN: lsn} }
	c.put(1, r(1))
	c.put(2, r(2))
	if _, ok := c.get(1); !ok { // 1 becomes most recent
		t.Fatal("miss on fresh entry")
	}
	c.put(3, r(3)) // evicts 2
	if _, ok := c.get(2); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.get(3); !ok {
		t.Fatal("new entry missing")
	}
}

func TestReadCacheInvalidateOnTrim(t *testing.T) {
	l := Open(Config{CacheSize: 16})
	defer l.Close()
	lsn := mustAppend(t, l, "x", "t")
	if _, err := l.ReadNext("t", 0); err != nil { // populate
		t.Fatal(err)
	}
	if err := l.Trim(lsn + 1); err != nil {
		t.Fatal(err)
	}
	if rec, ok := l.cache.get(lsn); ok {
		t.Fatalf("trimmed record still cached: %v", rec)
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *readCache
	if _, ok := c.get(1); ok {
		t.Fatal("nil cache hit")
	}
	c.put(1, &Record{}) // must not panic
	c.invalidate(10)
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatal("nil cache has stats")
	}
}

func TestCacheSharedAcrossConsumers(t *testing.T) {
	// The marker-fanout case: one multi-tag record read through several
	// tags pays storage latency once.
	l := Open(Config{ReadLatency: sim.FixedLatency(3 * time.Millisecond), CacheSize: 8})
	defer l.Close()
	mustAppend(t, l, "marker", "a", "b", "c")
	if _, err := l.ReadNext("a", 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := l.ReadNext("b", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadNext("c", 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= 3*time.Millisecond {
		t.Fatalf("fanout reads not served from cache: %v", d)
	}
	hits, _ := l.CacheStats()
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
}
