package sharedlog

import "sync"

// MetaStore is the key-value metadata attached to a shared log's
// configuration state (paper §3.4: "the shared log itself has key-value
// metadata"). Impeller's task manager maps each task id to an instance
// number here and atomically increments it when restarting a task;
// conditional appends are guarded against these values to fence zombies.
//
// Values are uint64 counters — all Impeller needs — with atomic
// compare-and-swap and increment. The zero value is not usable; call
// NewMetaStore.
type MetaStore struct {
	mu sync.Mutex
	m  map[string]uint64
	// journal, when set by the durability plane, is invoked under mu for
	// every mutation so metadata changes reach the WAL in the order they
	// were applied (del=true for Delete, else a set of value).
	journal func(del bool, key string, value uint64)
}

// NewMetaStore returns an empty metadata store.
func NewMetaStore() *MetaStore {
	return &MetaStore{m: make(map[string]uint64)}
}

// Get returns the value for key and whether it is set.
func (s *MetaStore) Get(key string) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

// Set stores value for key unconditionally.
func (s *MetaStore) Set(key string, value uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = value
	if s.journal != nil {
		s.journal(false, key, value)
	}
}

// CompareAndSwap sets key to new iff it currently holds old. A missing
// key is treated as 0 with ok=false: CAS on a missing key succeeds only
// when old == 0.
func (s *MetaStore) CompareAndSwap(key string, old, new uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[key] != old {
		return false
	}
	s.m[key] = new
	if s.journal != nil {
		s.journal(false, key, new)
	}
	return true
}

// Increment atomically adds 1 to key (missing keys start at 0) and
// returns the new value. The task manager bumps instance numbers this
// way so no two live instances can share a number.
func (s *MetaStore) Increment(key string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key]++
	if s.journal != nil {
		s.journal(false, key, s.m[key])
	}
	return s.m[key]
}

// Delete removes key.
func (s *MetaStore) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	if s.journal != nil {
		s.journal(true, key, 0)
	}
}
