// Package wire holds the byte-level plumbing the batched dataplane
// shares between the engine's record encoder (internal/core) and the
// Kafka-like log's batched produce path (internal/kafkalog): pooled
// encode buffers, length-prefixed slice framing, and an arena for
// coalescing many small defensive copies into few allocations.
//
// The point of the pool is that the hot path — encode a record batch,
// hand the bytes to an append, recycle — should not allocate at steady
// state. Callers Get a buffer, append their encoding to buf.B, and Put
// it back once the bytes have been fully consumed (for an append: after
// the append, including any retries, has returned — the shared log
// copies payloads on entry, so the buffer is free the moment the call
// completes).
package wire

import (
	"encoding/binary"
	"sync"
)

// Buf is a pooled encode buffer. B is the live encoding; its backing
// array is recycled across uses.
type Buf struct {
	B []byte
}

// maxPooled caps the capacity of buffers returned to the pool, so one
// pathological batch does not pin a huge backing array forever.
const maxPooled = 1 << 20

var bufPool = sync.Pool{
	New: func() any { return &Buf{B: make([]byte, 0, 1024)} },
}

// GetBuf returns a pooled buffer with len(B) == 0.
func GetBuf() *Buf {
	return bufPool.Get().(*Buf)
}

// PutBuf recycles b. The caller must not touch b.B afterwards.
func PutBuf(b *Buf) {
	if b == nil || cap(b.B) > maxPooled {
		return
	}
	b.B = b.B[:0]
	bufPool.Put(b)
}

// AppendBytes32 appends a little-endian uint32 length prefix followed
// by b — the framing every variable-length field of the engine's batch
// encoding uses.
func AppendBytes32(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// Arena coalesces many small copies into chunk-sized allocations. The
// kafkalog produce path uses one per batch: N key/value copies cost
// O(batch bytes / chunk) allocations instead of 2N. Returned slices
// have no spare capacity, so an append on one cannot clobber a
// neighbor. An Arena is not safe for concurrent use.
type Arena struct {
	chunk []byte
}

const arenaChunk = 4096

// Copy returns a copy of b carved from the arena.
func (a *Arena) Copy(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	if len(a.chunk) < len(b) {
		n := arenaChunk
		if len(b) > n {
			n = len(b)
		}
		a.chunk = make([]byte, n)
	}
	c := a.chunk[:len(b):len(b)]
	a.chunk = a.chunk[len(b):]
	copy(c, b)
	return c
}
