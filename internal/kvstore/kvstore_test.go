package kvstore

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"impeller/internal/sim"
	"impeller/internal/wal"
)

func TestPutGetDelete(t *testing.T) {
	s := Open(Config{})
	if _, ok := s.Get("k"); ok {
		t.Fatal("missing key present")
	}
	if err := s.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("k"); !ok || string(v) != "v1" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("k"); string(v) != "v2" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key present")
	}
	if err := s.Delete("never"); err != nil {
		t.Fatalf("deleting missing key: %v", err)
	}
}

func TestValueCopyIsolation(t *testing.T) {
	s := Open(Config{})
	buf := []byte("orig")
	if err := s.Put("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "orig" {
		t.Fatalf("store aliased caller buffer: %q", v)
	}
	v[0] = 'Y'
	v2, _ := s.Get("k")
	if string(v2) != "orig" {
		t.Fatalf("Get returned aliased value: %q", v2)
	}
}

func TestRangePrefix(t *testing.T) {
	s := Open(Config{})
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("ckpt/task1/%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("other/x", nil); err != nil {
		t.Fatal(err)
	}
	n := 0
	s.Range("ckpt/task1/", func(k string, v []byte) bool {
		n++
		return true
	})
	if n != 5 {
		t.Fatalf("Range matched %d keys, want 5", n)
	}
	// Early stop.
	n = 0
	s.Range("ckpt/", func(k string, v []byte) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("Range did not stop early: %d", n)
	}
}

func TestLenAndDataSize(t *testing.T) {
	s := Open(Config{})
	if err := s.Put("ab", []byte("cdef")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.DataSize() != 6 {
		t.Fatalf("DataSize = %d, want 6", s.DataSize())
	}
}

func TestWALRecoverRebuildsState(t *testing.T) {
	s := Open(Config{})
	ops := map[string]string{"a": "1", "b": "2", "c": "3"}
	for k, v := range ops {
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("1b")); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(Config{}, s.WAL())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if v, ok := r.Get("a"); !ok || string(v) != "1b" {
		t.Fatalf("a = %q,%v", v, ok)
	}
	if _, ok := r.Get("b"); ok {
		t.Fatal("deleted key resurrected")
	}
	if v, ok := r.Get("c"); !ok || string(v) != "3" {
		t.Fatalf("c = %q,%v", v, ok)
	}
	if r.WALOps() != s.WALOps() {
		t.Fatalf("recovered WALOps = %d, want %d", r.WALOps(), s.WALOps())
	}
}

func TestRecoverCorruptTailTruncates(t *testing.T) {
	// Tail-only damage — a torn final write — recovers gracefully by
	// truncating at the last valid entry instead of failing.
	s := Open(Config{})
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	prefixLen := len(s.WAL())
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	image := s.WAL()
	torn := image[:len(image)-3] // last frame loses its final bytes

	r, err := Recover(Config{}, torn)
	if err != nil {
		t.Fatalf("torn tail should recover: %v", err)
	}
	if v, ok := r.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("surviving entry a = %q,%v", v, ok)
	}
	if _, ok := r.Get("b"); ok {
		t.Fatal("torn entry replayed")
	}
	if got, want := r.TruncatedBytes(), len(torn)-prefixLen; got != want {
		t.Fatalf("TruncatedBytes = %d, want %d", got, want)
	}
	// The kept WAL is the valid prefix: a second recovery is clean and a
	// new mutation extends it without burying corrupt bytes.
	if err := r.Put("c", []byte("3")); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(Config{}, r.WAL())
	if err != nil {
		t.Fatal(err)
	}
	if r2.TruncatedBytes() != 0 || r2.Len() != 2 {
		t.Fatalf("second recovery: truncated=%d len=%d", r2.TruncatedBytes(), r2.Len())
	}
}

func TestRecoverMidLogCorruptionFails(t *testing.T) {
	// Corruption with valid frames after it means committed mutations
	// were destroyed mid-log; truncation cannot mask that, so Recover
	// must fail hard.
	s := Open(Config{})
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	image := s.WAL()
	image[wal.HeaderSize+1] ^= 0xff // flip a byte inside the first frame's payload
	if _, err := Recover(Config{}, image); err == nil {
		t.Fatal("mid-log corruption recovered silently")
	}
}

func TestRecoverFullyCorruptSingleFrame(t *testing.T) {
	// One frame, corrupted: nothing valid follows, so this is tail
	// damage — recover to the empty store.
	s := Open(Config{})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	image := s.WAL()
	image[0] = 99 // destroy the magic
	r, err := Recover(Config{}, image)
	if err != nil {
		t.Fatalf("single corrupt frame should degrade to empty store: %v", err)
	}
	if r.Len() != 0 || r.TruncatedBytes() != len(image) {
		t.Fatalf("len=%d truncated=%d", r.Len(), r.TruncatedBytes())
	}
}

func TestRecoverEmptyWAL(t *testing.T) {
	s, err := Recover(Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSyncWritesChargeFlushLatency(t *testing.T) {
	s := Open(Config{SyncWrites: true, FlushLatency: sim.FixedLatency(3 * time.Millisecond)})
	start := time.Now()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 3*time.Millisecond {
		t.Fatalf("sync put took %v, want >= 3ms", d)
	}
}

func TestSyncWritesDefaultLatency(t *testing.T) {
	s := Open(Config{SyncWrites: true})
	if s.cfg.FlushLatency == nil {
		t.Fatal("default flush latency not applied")
	}
}

func TestClosedStoreRejectsMutations(t *testing.T) {
	s := Open(Config{})
	s.Close()
	if err := s.Put("k", nil); err != ErrClosed {
		t.Fatalf("Put err = %v", err)
	}
	if err := s.Delete("k"); err != ErrClosed {
		t.Fatalf("Delete err = %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := Open(Config{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", w)
			for i := 0; i < 500; i++ {
				if err := s.Put(key, []byte{byte(i)}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if v, ok := s.Get(key); !ok || len(v) != 1 {
					t.Errorf("get = %v,%v", v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	// WAL must replay to the same final state even after interleaving.
	r, err := Recover(Config{}, s.WAL())
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 8 {
		t.Fatalf("recovered Len = %d", r.Len())
	}
}

// Property: for any sequence of put/delete operations, replaying the WAL
// yields exactly the same live state.
func TestPropertyWALReplayEquivalence(t *testing.T) {
	type op struct {
		Key    uint8
		Value  uint16
		Delete bool
	}
	check := func(ops []op) bool {
		s := Open(Config{})
		want := make(map[string]string)
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%16)
			if o.Delete {
				if s.Delete(k) != nil {
					return false
				}
				delete(want, k)
			} else {
				v := fmt.Sprint(o.Value)
				if s.Put(k, []byte(v)) != nil {
					return false
				}
				want[k] = v
			}
		}
		r, err := Recover(Config{}, s.WAL())
		if err != nil {
			return false
		}
		if r.Len() != len(want) {
			return false
		}
		for k, v := range want {
			got, ok := r.Get(k)
			if !ok || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
